# Tier-1 verification is `make test`; `make check` is the CI gate the
# parallel engine added: vet, the race detector over the short-mode
# subset (which includes the engine's determinism regression), and a
# one-iteration smoke pass over every benchmark target.

GO ?= go

.PHONY: build test check vet race bench clean

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Short-mode subset under the race detector: exercises the parallel
# experiment engine, the CMP sweep, and every unit test, while skipping
# the multi-minute full figure sweeps.
race:
	$(GO) test -race -short ./...

# Compile and run every benchmark once (no measurement) so bench_test.go
# can never rot silently.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

check: vet race bench

clean:
	$(GO) clean ./...

# Tier-1 verification is `make test`; `make check` is the CI gate: gofmt,
# vet, the race detector over the short-mode subset (which includes the
# engine's determinism regressions) plus full race passes over the
# graph/routing, cache-protocol, fleet/placement, and serving layers, the
# protocol conformance matrix, a one-iteration smoke pass over every
# benchmark target, a telemetry smoke run with every probe on, a
# deterministic placement-search smoke, and an end-to-end nucad/nucaload
# serving smoke that requires cache hits.

GO ?= go
BENCH_COUNT ?= 3
BENCH_LABEL ?= after

.PHONY: build test check fmt vet race racegraph racecache racerouter racefleet raceshard racecmp serverace conformance bench benchsmoke smoke shard-smoke cmp-smoke pareto-smoke opt-smoke serve-smoke verify clean

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Fail when any file is not gofmt-clean, printing the offenders.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Short-mode subset under the race detector: exercises the parallel
# experiment engine, the CMP sweep, and every unit test, while skipping
# the multi-minute full figure sweeps.
race:
	$(GO) test -race -short ./...

# Full (non-short) race pass over the graph/routing layer: topology
# builders and the deadlock verifier are shared read-only across the
# parallel engine's workers, so data races here would corrupt every
# sweep. These packages are quick even un-shortened.
racegraph:
	$(GO) test -race ./internal/topology/ ./internal/routing/

# Full (non-short) race pass over the cache protocol: the typed-message
# engines and the conformance harness share the policy registry and the
# per-run telemetry probes across the engine's workers.
racecache:
	$(GO) test -race ./internal/cache/

# Full (non-short) race pass over the router-engine layer: the registry
# is read concurrently by the parallel engine's workers while engines
# themselves are per-run state, and the network-level engine tests pin
# the conservation/livelock/multicast contracts that would be the first
# casualties of a data race.
racerouter:
	$(GO) test -race ./internal/router/ ./internal/network/

# Full (non-short) race pass over the fleet evaluator and the placement
# optimizer built on it: stripes run on concurrent workers sharing the
# immutable prepared artifacts, and the bit-identity tests compare the
# lockstep path against the sequential reference under the detector.
racefleet:
	$(GO) test -race ./internal/fleet/ ./internal/place/

# Race pass over the sharded execution path: the kernel-level wavefront
# and mailbox tests, the partition planner, the network's cut wiring,
# and the short-mode core determinism matrix with the parallel worker
# path forced on — the detector audits the cross-shard ordering
# protocol itself, not just the results.
raceshard:
	$(GO) test -race -run 'Shard|Partition' ./internal/sim/ ./internal/topology/ ./internal/network/
	$(GO) test -race -short -run TestShardedRunMatchesSequential ./internal/core/

# Full (non-short) race pass over the CMP layer: the fabric's ports and
# hub demux are the only cross-core state of a full-system run, the
# multi-requester conformance matrix drives them with the protocol
# invariants enforced, and the trace-driven core model supplies every
# stream — all under the detector, together with the CMP run tests
# (analytic golden, hierarchical sharding, directory attribution).
racecmp:
	$(GO) test -race ./internal/cmp/ ./internal/cpu/
	$(GO) test -race -run 'TestCMP' ./internal/core/

# Full (non-short) race pass over the serving layer (and the canonical
# hashing it keys on): the scheduler, the result cache, and the
# coalescing map are the only cross-goroutine state the daemon has, and
# the determinism/fairness/shutdown tests exercise all of it under
# concurrent HTTP clients.
serverace:
	$(GO) test -race ./internal/serve/
	$(GO) test -race -run TestCanonicalKey ./internal/core/

# Protocol conformance: the full micro-scenario matrix (every registered
# policy × mode × hit position × occupancy × set fullness) against the
# golden model with the runtime protocol invariants enforced, plus the
# pre-refactor byte-identity goldens.
conformance:
	$(GO) test -run 'TestConformance|TestCatalogueGoldens' -v -count=1 ./internal/cache/

# Compile and run every benchmark once (no measurement) so bench files
# can never rot silently.
benchsmoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Measure the hot-path benchmarks (kernel, router steady state, full
# CoreRun on designs A/D/F). The raw output is benchstat-compatible —
# save two runs and feed them to benchstat to compare — and the averaged
# numbers land in BENCH_kernel.json under $(BENCH_LABEL), merged with
# existing labels (see EXPERIMENTS.md "Benchmarking").
bench:
	$(GO) test -run=NONE -benchmem -count=$(BENCH_COUNT) \
		-bench='BenchmarkKernelRun|BenchmarkRouterSteadyState|BenchmarkRouterEngines|BenchmarkCoreRun' . \
		| tee /tmp/nucanet-bench-$(BENCH_LABEL).txt
	$(GO) run ./cmd/benchjson -o BENCH_kernel.json -label $(BENCH_LABEL) \
		< /tmp/nucanet-bench-$(BENCH_LABEL).txt
	$(GO) test -run=NONE -benchmem -count=$(BENCH_COUNT) \
		-bench='BenchmarkServe' ./internal/serve/ \
		| tee /tmp/nucanet-bench-serve-$(BENCH_LABEL).txt
	$(GO) run ./cmd/benchjson -o BENCH_serve.json -label $(BENCH_LABEL) \
		< /tmp/nucanet-bench-serve-$(BENCH_LABEL).txt
	$(GO) test -run=NONE -benchmem -count=$(BENCH_COUNT) \
		-bench='BenchmarkFleetStep' ./internal/fleet/ \
		| tee /tmp/nucanet-bench-fleet-$(BENCH_LABEL).txt
	$(GO) run ./cmd/benchjson -o BENCH_fleet.json -label $(BENCH_LABEL) \
		< /tmp/nucanet-bench-fleet-$(BENCH_LABEL).txt
	$(GO) test -run=NONE -benchmem -count=$(BENCH_COUNT) \
		-bench='BenchmarkShardedRun' . \
		| tee /tmp/nucanet-bench-shard-$(BENCH_LABEL).txt
	$(GO) run ./cmd/benchjson -o BENCH_shard.json -label $(BENCH_LABEL) \
		< /tmp/nucanet-bench-shard-$(BENCH_LABEL).txt
	$(GO) test -run=NONE -benchmem -count=$(BENCH_COUNT) \
		-bench='BenchmarkCMP' . \
		| tee /tmp/nucanet-bench-cmp-$(BENCH_LABEL).txt
	$(GO) run ./cmd/benchjson -o BENCH_cmp.json -label $(BENCH_LABEL) \
		< /tmp/nucanet-bench-cmp-$(BENCH_LABEL).txt

# Tiny end-to-end run with every telemetry probe on: trace, heatmap,
# time series, at j=2 — exercises the full probe plumbing through the
# CLI so flag wiring can never rot silently.
smoke:
	$(GO) run ./cmd/nucasim -design A -n 500 -j 2 \
		-heatmap -sample 100 -trace /tmp/nucasim-smoke.jsonl >/dev/null
	@rm -f /tmp/nucasim-smoke.jsonl
	@echo "telemetry smoke: ok"

# Sharded-execution smoke through the real CLI: the same nucasim run at
# -shards 1 and -shards 4 must print identical reports (timing stripped)
# — the end-to-end bit-identity promise, exercised through the flag
# plumbing rather than the test harness.
shard-smoke:
	$(GO) build -o /tmp/nucasim-shard ./cmd/nucasim
	@/tmp/nucasim-shard -design A -n 600 -shards 1 | sed 's/ \[[0-9.]*s\]//' > /tmp/nucasim-shard-1.txt
	@/tmp/nucasim-shard -design A -n 600 -shards 4 | sed 's/ \[[0-9.]*s\]//' > /tmp/nucasim-shard-4.txt
	@diff /tmp/nucasim-shard-1.txt /tmp/nucasim-shard-4.txt || \
		{ echo "shard smoke: -shards 4 diverged from -shards 1"; exit 1; }
	@rm -f /tmp/nucasim-shard /tmp/nucasim-shard-1.txt /tmp/nucasim-shard-4.txt
	@echo "shard smoke: ok"

# Full-system CMP smoke through the real CLI: a 4-core directory-policy
# run on the two-chiplet hierarchy (design H2), timing stripped, diffed
# against the committed golden — so the whole chain (flags, hierarchical
# topology build, bridge-ring routing, fabric injection, directory
# attribution, per-core reporting) is pinned end to end. The same run at
# -shards 2 must reproduce the golden too (CMP bit-identity under
# sharding), and a tiny paperbench -exp cmp exercises the
# sharing-contention sweep.
cmp-smoke:
	$(GO) build -o /tmp/nucasim-cmp ./cmd/nucasim
	@/tmp/nucasim-cmp -design H2 -policy directory -cores 4 -n 500 \
		| sed 's/ \[[0-9.]*s\]//' > /tmp/nucasim-cmp-1.txt
	@diff cmd/nucasim/testdata/cmp_smoke.golden /tmp/nucasim-cmp-1.txt || \
		{ echo "cmp smoke: output drifted from the committed golden"; exit 1; }
	@/tmp/nucasim-cmp -design H2 -policy directory -cores 4 -n 500 -shards 2 \
		| sed 's/ \[[0-9.]*s\]//' > /tmp/nucasim-cmp-2.txt
	@diff cmd/nucasim/testdata/cmp_smoke.golden /tmp/nucasim-cmp-2.txt || \
		{ echo "cmp smoke: -shards 2 diverged from the sequential golden"; exit 1; }
	$(GO) run ./cmd/paperbench -exp cmp -n 300 >/dev/null
	@rm -f /tmp/nucasim-cmp /tmp/nucasim-cmp-1.txt /tmp/nucasim-cmp-2.txt
	@echo "cmp smoke: ok"

# Tiny router-engine Pareto sweep (every registered engine over designs
# A/D/F/R under both schemes) so the area/latency/energy frontier
# plumbing — registry, Supports gating, area scaling, dominance check —
# can never rot silently.
pareto-smoke:
	$(GO) run ./cmd/paperbench -exp pareto -n 400 >/dev/null
	@echo "pareto smoke: ok"

# Tiny-budget placement search, twice with the same seed: both runs must
# land on the same best candidate (the final line carries its canonical
# encoding and hash), pinning the optimizer's end-to-end determinism —
# annealing schedule, safety gating, area gating, fleet scoring — through
# the real CLI.
opt-smoke:
	$(GO) build -o /tmp/nucaopt-smoke ./cmd/nucaopt
	@/tmp/nucaopt-smoke -budget 6 -wave 4 -screen 60 -confirm 150 -q \
		| sed 's/ (wall [0-9.]*s)//' > /tmp/nucaopt-smoke-1.txt
	@/tmp/nucaopt-smoke -budget 6 -wave 4 -screen 60 -confirm 150 -q \
		| sed 's/ (wall [0-9.]*s)//' > /tmp/nucaopt-smoke-2.txt
	@diff /tmp/nucaopt-smoke-1.txt /tmp/nucaopt-smoke-2.txt || \
		{ echo "opt smoke: same seed produced different searches"; exit 1; }
	@grep -q '^best: ' /tmp/nucaopt-smoke-1.txt || \
		{ echo "opt smoke: no best-candidate line"; cat /tmp/nucaopt-smoke-1.txt; exit 1; }
	@grep '^best: ' /tmp/nucaopt-smoke-1.txt
	@rm -f /tmp/nucaopt-smoke /tmp/nucaopt-smoke-1.txt /tmp/nucaopt-smoke-2.txt
	@echo "opt smoke: ok"

# End-to-end serving smoke: build the daemon and the load driver, boot
# the daemon on an ephemeral port, fire a short mixed load at it, and
# require at least one content-addressed cache hit. Exercises the whole
# stack — flags, listener, scheduler, cache, graceful drain — so the
# service wiring can never rot silently.
serve-smoke:
	@rm -f /tmp/nucad-smoke-addr
	$(GO) build -o /tmp/nucad-smoke ./cmd/nucad
	$(GO) build -o /tmp/nucaload-smoke ./cmd/nucaload
	@/tmp/nucad-smoke -addr 127.0.0.1:0 -addr-file /tmp/nucad-smoke-addr & \
	pid=$$!; \
	for i in $$(seq 1 100); do [ -s /tmp/nucad-smoke-addr ] && break; sleep 0.1; done; \
	[ -s /tmp/nucad-smoke-addr ] || { echo "nucad did not come up"; kill $$pid; exit 1; }; \
	/tmp/nucaload-smoke -addr "http://$$(cat /tmp/nucad-smoke-addr)" \
		-n 60 -c 4 -clients 3 -unique 6 -accesses 300 -require-hits; rc=$$?; \
	kill -TERM $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	rm -f /tmp/nucad-smoke /tmp/nucaload-smoke /tmp/nucad-smoke-addr; \
	exit $$rc
	@echo "serve smoke: ok"

# Static verification of the whole design catalogue: the
# channel-dependence deadlock check for the buffered default engine,
# then the productive-route livelock check for the deflecting engine.
verify:
	$(GO) run ./cmd/nucasim -verify-routing
	$(GO) run ./cmd/nucasim -router bufferless -verify-routing

check: fmt vet race racegraph racecache racerouter racefleet raceshard racecmp serverace conformance benchsmoke smoke shard-smoke cmp-smoke pareto-smoke opt-smoke serve-smoke verify

clean:
	$(GO) clean ./...

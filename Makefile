# Tier-1 verification is `make test`; `make check` is the CI gate: gofmt,
# vet, the race detector over the short-mode subset (which includes the
# engine's determinism regressions), a one-iteration smoke pass over
# every benchmark target, and a telemetry smoke run with every probe on.

GO ?= go

.PHONY: build test check fmt vet race bench smoke clean

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# Fail when any file is not gofmt-clean, printing the offenders.
fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Short-mode subset under the race detector: exercises the parallel
# experiment engine, the CMP sweep, and every unit test, while skipping
# the multi-minute full figure sweeps.
race:
	$(GO) test -race -short ./...

# Compile and run every benchmark once (no measurement) so bench_test.go
# can never rot silently.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Tiny end-to-end run with every telemetry probe on: trace, heatmap,
# time series, at j=2 — exercises the full probe plumbing through the
# CLI so flag wiring can never rot silently.
smoke:
	$(GO) run ./cmd/nucasim -design A -n 500 -j 2 \
		-heatmap -sample 100 -trace /tmp/nucasim-smoke.jsonl >/dev/null
	@rm -f /tmp/nucasim-smoke.jsonl
	@echo "telemetry smoke: ok"

check: fmt vet race bench smoke

clean:
	$(GO) clean ./...

// Hot-path benchmarks and allocation guards: the measurements behind
// BENCH_kernel.json (see `make bench` and EXPERIMENTS.md "Benchmarking").
//
// Three layers, innermost first:
//
//   - BenchmarkKernelRun: the raw sim.Kernel event loop (Step, Activate,
//     WakeAt) with a mixed population of self-rearming components;
//   - BenchmarkRouterSteadyState: a saturated 16x16 mesh moving multicast
//     block packets down every column — switch allocation, VC allocation,
//     hybrid replication, and credit return, with the cache protocol out
//     of the picture;
//   - BenchmarkCoreRun: the full simulation (cache protocol + CPU model)
//     on designs A, D, and F — the end-to-end number the ROADMAP's
//     "as fast as the hardware allows" goal is graded on.
//
// The allocation guards pin the zero-allocation steady-state contract:
// once traffic is in flight, stepping the kernel allocates nothing — no
// scratch slices, no queue growth, no closure captures, no replica
// packets from the GC heap. On top of that, the cache-protocol guard
// bounds the allocations of one full operation to an exact, explainable
// sum (typed messages are embedded in the op, so dispatch and chain hops
// never allocate payloads), and the pool-balance tests prove no pooled
// replica packet leaks across a full Fast-LRU multicast run.
package nucanet

import (
	"fmt"
	"testing"

	"nucanet/internal/bank"
	"nucanet/internal/cache"
	"nucanet/internal/config"
	"nucanet/internal/core"
	"nucanet/internal/flit"
	"nucanet/internal/network"
	"nucanet/internal/router"
	"nucanet/internal/routing"
	"nucanet/internal/sim"
	"nucanet/internal/topology"
	"nucanet/internal/trace"
)

// coreRunAccesses matches the acceptance configuration: design X / gcc /
// 10k measured accesses.
const coreRunAccesses = 10000

// steadyMesh builds a 16x16 mesh network with null endpoints everywhere
// and returns an injector that launches one multicast block packet down
// every column.
func steadyMesh() (*sim.Kernel, *network.Network, func()) {
	return steadyMeshEngine(router.DefaultEngine)
}

// steadyMeshEngine is steadyMesh with a registry router engine selected.
func steadyMeshEngine(engine string) (*sim.Kernel, *network.Network, func()) {
	topo := topology.NewMesh(topology.MeshSpec{W: 16, H: 16, CoreX: 7, MemX: 8})
	k := sim.NewKernel()
	cfg := router.DefaultConfig()
	cfg.Engine = engine
	net := network.MustNew(k, topo, routing.XY{}, cfg)
	sink := nullEndpoint{}
	for id := 0; id < topo.NumNodes(); id++ {
		net.Attach(id, flit.ToBank, sink)
	}
	inject := func() {
		for c := 0; c < 16; c++ {
			net.Send(&flit.Packet{
				Kind: flit.WriteData, Src: topo.Core,
				Dst: topo.NodeAt(c, 15), DstEp: flit.ToBank,
				PathDeliver: true,
			}, k.Now())
		}
	}
	return k, net, inject
}

// BenchmarkRouterSteadyState measures per-cycle router cost on a mesh
// kept saturated with multicast block traffic; ns/op is one kernel step
// (one active cycle across all routers with buffered flits).
func BenchmarkRouterSteadyState(b *testing.B) {
	k, net, inject := steadyMesh()
	inject()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !k.Step() {
			inject()
		}
	}
	b.StopTimer()
	st := net.Stats()
	b.ReportMetric(float64(st.Router.FlitsRouted)/float64(b.N), "flit-hops/cycle")
	b.ReportMetric(float64(st.Router.ReplicasSpawned)/float64(b.N), "replicas/cycle")
}

// kernelBenchComp is a self-rearming component: two of three ticks stay
// hot (Activate), every third parks on a future event (WakeAt) — the mix
// that exercises the scheduled-id list and the event heap together.
type kernelBenchComp struct {
	k      *sim.Kernel
	id     int
	period int64
	n      int
}

func (c *kernelBenchComp) Tick(now int64) bool {
	c.n++
	if c.n%3 == 0 {
		c.k.WakeAt(now+c.period, c.id)
		return false
	}
	return true
}

func kernelBenchPopulation(k *sim.Kernel, n int) {
	for i := 0; i < n; i++ {
		c := &kernelBenchComp{k: k, period: int64(1 + i%5)}
		c.id = k.Register(c)
		k.WakeAt(c.period, c.id)
	}
}

// BenchmarkKernelRun measures the simulation kernel's event loop with 64
// components cycling between next-cycle activations and future events.
func BenchmarkKernelRun(b *testing.B) {
	k := sim.NewKernel()
	kernelBenchPopulation(k, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Step()
	}
}

// TestRouterSteadyStateZeroAlloc pins the tentpole contract: once warm,
// a router/network cycle allocates nothing — no switch-allocation
// scratch, no VC queue growth, no credit-return closures, no replica
// packets from the GC heap. Injection reuses a fixed set of packets
// (legal once each prior flight has fully drained), so the measured
// region is exactly the steady-state network.
//
// testing.AllocsPerRun invokes the function once as warm-up before
// measuring, which absorbs the one-time growth paths (injection-VC ring
// high-water mark, replica pool population, event-heap capacity).
func TestRouterSteadyStateZeroAlloc(t *testing.T) {
	k, net, _ := steadyMesh()
	topo := net.Topo
	pkts := make([]*flit.Packet, 16)
	for c := range pkts {
		pkts[c] = &flit.Packet{
			Kind: flit.WriteData, Src: topo.Core,
			Dst: topo.NodeAt(c, 15), DstEp: flit.ToBank,
			PathDeliver: true,
		}
	}
	inject := func() {
		for _, p := range pkts {
			net.Send(p, k.Now())
		}
	}
	inject()
	avg := testing.AllocsPerRun(50, func() {
		for i := 0; i < 200; i++ {
			if !k.Step() {
				inject()
			}
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state network cycle allocates: %.2f allocs per 200 cycles, want 0", avg)
	}
}

// TestBufferlessSteadyStateZeroAlloc extends the zero-allocation
// steady-state contract to the bufferless deflection engine — the cycle
// kernel the Pareto sweep sells as the cheapest one, which it only is if
// deflection arbitration runs entirely on preallocated scratch. Warm-up
// absorbs the latch-ring high-water marks and the source-expansion
// replica pool; after that, route computation, age sorting, deflection,
// and ejection must allocate nothing. The 200-cycle rounds do not align
// with the network's drain period, so high-water marks (latch rings, the
// replica pool) keep creeping for a couple of rounds — the explicit warm
// loop below runs the population past them before AllocsPerRun measures.
func TestBufferlessSteadyStateZeroAlloc(t *testing.T) {
	k, net, _ := steadyMeshEngine("bufferless")
	topo := net.Topo
	pkts := make([]*flit.Packet, 16)
	for c := range pkts {
		pkts[c] = &flit.Packet{
			Kind: flit.WriteData, Src: topo.Core,
			Dst: topo.NodeAt(c, 15), DstEp: flit.ToBank,
			PathDeliver: true,
		}
	}
	inject := func() {
		for _, p := range pkts {
			net.Send(p, k.Now())
		}
	}
	inject()
	round := func() {
		for i := 0; i < 200; i++ {
			if !k.Step() {
				inject()
			}
		}
	}
	for i := 0; i < 5; i++ {
		round()
	}
	avg := testing.AllocsPerRun(50, round)
	if avg != 0 {
		t.Fatalf("steady-state bufferless cycle allocates: %.2f allocs per 200 cycles, want 0", avg)
	}
}

// TestBufferlessSteadyMeshPoolBalanced is the replica-freelist leak
// invariant for source-expanded multicast: every pooled replica the
// bufferless injector minted came back exactly once after drain.
func TestBufferlessSteadyMeshPoolBalanced(t *testing.T) {
	k, net, inject := steadyMeshEngine("bufferless")
	for round := 0; round < 20; round++ {
		inject()
		for k.Step() {
		}
	}
	if got := net.InFlight(); got != 0 {
		t.Fatalf("network did not drain: %d flits in flight", got)
	}
	ps := net.PoolStats()
	if ps.Gets == 0 {
		t.Fatal("no replicas were spawned; source-expanded multicast did not run")
	}
	if ps.Live != 0 || ps.Gets != ps.Puts {
		t.Fatalf("replica pool leak: gets=%d puts=%d live=%d", ps.Gets, ps.Puts, ps.Live)
	}
}

// TestKernelStepZeroAlloc pins the kernel's half of the contract: Step
// with a self-rearming component population touches only reused slices
// and the typed event heap — zero allocations per cycle.
func TestKernelStepZeroAlloc(t *testing.T) {
	k := sim.NewKernel()
	kernelBenchPopulation(k, 64)
	avg := testing.AllocsPerRun(50, func() {
		for i := 0; i < 200; i++ {
			k.Step()
		}
	})
	if avg != 0 {
		t.Fatalf("kernel Step allocates: %.2f allocs per 200 cycles, want 0", avg)
	}
}

// TestSteadyMeshReplicaPoolBalanced drains the saturated mesh and checks
// the replica freelist's leak invariant at the network level: every
// pooled packet handed out came back exactly once.
func TestSteadyMeshReplicaPoolBalanced(t *testing.T) {
	k, net, inject := steadyMesh()
	for round := 0; round < 20; round++ {
		inject()
		for k.Step() {
		}
	}
	if got := net.InFlight(); got != 0 {
		t.Fatalf("network did not drain: %d flits in flight", got)
	}
	ps := net.PoolStats()
	if ps.Gets == 0 {
		t.Fatal("no replicas were spawned; the multicast path did not run")
	}
	if ps.Live != 0 || ps.Gets != ps.Puts {
		t.Fatalf("replica pool leak: gets=%d puts=%d live=%d", ps.Gets, ps.Puts, ps.Live)
	}
}

// allocGuardDesign is a small 4x4 mesh (4 single-way banks per column)
// so the per-access allocation count below stays an exact, explainable
// sum rather than a noisy Design-A-sized number.
func allocGuardDesign() config.Design {
	banks := make([]bank.Spec, 4)
	for i := range banks {
		banks[i] = bank.Spec{SizeKB: 64, Ways: 1}
	}
	return config.Design{
		ID: "AG", Description: "alloc-guard mesh",
		Topology: "mesh",
		Params: topology.Params{W: 4, H: 4, CoreX: 2, MemX: 2,
			HorizDelay: 1, VertDelay: []int{1}},
		Banks: banks, Router: router.DefaultConfig(),
	}
}

// TestCacheAccessAllocBound pins the protocol-layer allocation contract
// after the typed-message refactor: one operation allocates exactly its
// Request, its op (every protocol message plus the memory read request
// is embedded in the op, so dispatch never allocates a payload), one
// probed bitmap, and one packet-literal-plus-timer-closure pair per
// scheduled send. Cycles in between — flits in flight, bank bookings,
// stash replay, message dispatch — allocate nothing; the network's own
// zero-alloc guard above covers the router half. Any per-hop payload
// allocation creeping back into the replacement chain (the pre-refactor
// design allocated a fresh block message per hop, and boxed the memory
// read request per miss) trips the miss-path bound.
func TestCacheAccessAllocBound(t *testing.T) {
	d := allocGuardDesign()
	k := sim.NewKernel()
	sys := cache.MustNew(k, d, cache.FastLRU, cache.Multicast)
	p, err := trace.ProfileByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.NewSynthetic(p, sys.AM, 1)
	sys.Warm(gen.WarmBlocks(d.Ways()))
	warm := gen.WarmBlocks(1)

	// MRU hits: every access takes the identical minimal path, so the
	// average over runs is the exact per-access count.
	hitAddr := sys.AM.Compose(warm[0*sys.AM.Columns+1][0], 0, 1)
	hit := testing.AllocsPerRun(100, func() {
		sys.Issue(hitAddr, false, nil)
		for k.Step() {
		}
	})
	// 1 Request + 1 op + 1 probed bitmap + the probe packet, then one
	// (closure, packet) pair per send: the MRU bank's data reply plus a
	// miss notification from each of the other three banks.
	const maxHitAllocs = 14
	if hit > maxHitAllocs {
		t.Fatalf("MRU hit allocates %.1f objects per access, want <= %d", hit, maxHitAllocs)
	}

	// Misses exercise the long path: full multicast miss, off-chip read
	// (embedded in the op — no boxing), fill, and a full-length eviction
	// chain reusing one chain message end to end.
	tag := uint64(1 << 20)
	miss := testing.AllocsPerRun(100, func() {
		sys.Issue(sys.AM.Compose(tag, 3, 2), false, nil)
		tag++
		for k.Step() {
		}
	})
	const maxMissAllocs = 26
	if miss > maxMissAllocs {
		t.Fatalf("full miss allocates %.1f objects per access, want <= %d", miss, maxMissAllocs)
	}
	t.Logf("allocations per access: MRU hit %.1f, full miss %.1f", hit, miss)
}

// TestCacheRunPacketPoolBalanced runs a full Fast-LRU multicast workload
// on Design A and checks the replica freelist's leak invariant end to
// end through the cache protocol: every pooled packet the multicast
// probes borrowed came back exactly once, and none is live after drain.
func TestCacheRunPacketPoolBalanced(t *testing.T) {
	d, err := config.DesignByID("A")
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	sys := cache.MustNew(k, d, cache.FastLRU, cache.Multicast)
	p, err := trace.ProfileByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	gen := trace.NewSynthetic(p, sys.AM, 7)
	sys.Warm(gen.WarmBlocks(d.Ways()))
	for _, a := range trace.Take(gen, 2000) {
		sys.Issue(a.Addr, a.Write, nil)
	}
	if err := sys.Drain(1 << 30); err != nil {
		t.Fatal(err)
	}
	ps := sys.Net.PoolStats()
	if ps.Gets == 0 {
		t.Fatal("no replicas were spawned; the multicast tag-match did not run")
	}
	if ps.Live != 0 || ps.Gets != ps.Puts {
		t.Fatalf("replica pool leak after full run: gets=%d puts=%d live=%d", ps.Gets, ps.Puts, ps.Live)
	}
}

// routerEngineBenchAccesses keeps the engine x design product affordable
// in `make bench` while still long enough for steady-state rates.
const routerEngineBenchAccesses = 2000

// BenchmarkRouterEngines measures the end-to-end cost of every
// registered router microarchitecture on the mesh (A), simplified-mesh
// (D), and halo (F) representatives — the per-engine latency axis of the
// Pareto sweep, pinned in BENCH_kernel.json next to the wormhole
// steady-state numbers.
func BenchmarkRouterEngines(b *testing.B) {
	for _, eng := range router.Names() {
		for _, id := range []string{"A", "D", "F"} {
			eng, id := eng, id
			b.Run(eng+"/design-"+id, func(b *testing.B) {
				var r core.Result
				for i := 0; i < b.N; i++ {
					var err error
					r, err = core.Run(core.Options{
						DesignID: id, Policy: cache.FastLRU, Mode: cache.Multicast,
						Benchmark: "gcc", Accesses: routerEngineBenchAccesses,
						Seed: 42, Router: eng,
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(r.IPC, "IPC")
				b.ReportMetric(float64(r.Cycles)/float64(routerEngineBenchAccesses), "cycles/access")
			})
		}
	}
}

// bigMeshDesign is the 32x32 scaling fabric of BenchmarkShardedRun: a
// 4x-node Design A (1024 routers, 32 banks per column). Big fabrics are
// where conservative-window sharding pays — more routers per window
// amortize the barrier.
func bigMeshDesign() config.Design {
	banks := make([]bank.Spec, 32)
	for i := range banks {
		banks[i] = bank.Spec{SizeKB: 64, Ways: 1}
	}
	return config.Design{
		ID: "A32", Description: "32x32 mesh, uniform 64KB banks (scaling fabric)",
		Topology: "mesh",
		Params: topology.Params{W: 32, H: 32, CoreX: 15, MemX: 16,
			HorizDelay: 1, VertDelay: []int{1}},
		Banks: banks, Router: router.DefaultConfig(),
	}
}

// BenchmarkShardedRun measures the sharded kernel against the
// sequential baseline (shards=1 runs the plain kernel) on the paper's
// 16x16 mesh and on the 32x32 scaling fabric. Results are bit-identical
// across the axis, so ns/op differences are pure execution cost; the
// parallel worker path engages only when GOMAXPROCS > 1 (see
// EXPERIMENTS.md "Big-fabric scaling runs" for the recorded numbers and
// the single-core caveat).
func BenchmarkShardedRun(b *testing.B) {
	fabrics := []struct {
		name   string
		design *config.Design
		id     string
		n      int
	}{
		{name: "mesh16", id: "A", n: 4000},
		{name: "mesh32", design: func() *config.Design { d := bigMeshDesign(); return &d }(), n: 4000},
	}
	for _, f := range fabrics {
		for _, shards := range []int{1, 2, 4, 8} {
			f, shards := f, shards
			b.Run(fmt.Sprintf("%s/shards-%d", f.name, shards), func(b *testing.B) {
				var r core.Result
				for i := 0; i < b.N; i++ {
					var err error
					r, err = core.Run(core.Options{
						DesignID: f.id, Design: f.design,
						Policy: cache.FastLRU, Mode: cache.Multicast,
						Benchmark: "gcc", Accesses: f.n, Seed: 42,
						Shards: shards,
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(r.IPC, "IPC")
				b.ReportMetric(float64(r.Cycles)/float64(f.n), "cycles/access")
			})
		}
	}
}

// BenchmarkCoreRun measures the full simulation end to end — the
// acceptance configuration for the hot-path work: gcc, 10k accesses,
// multicast Fast-LRU, on the mesh (A), simplified-mesh (D), and halo (F)
// representatives.
func BenchmarkCoreRun(b *testing.B) {
	for _, id := range []string{"A", "D", "F"} {
		id := id
		b.Run("design-"+id, func(b *testing.B) {
			var r core.Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = core.Run(core.Options{
					DesignID: id, Policy: cache.FastLRU, Mode: cache.Multicast,
					Benchmark: "gcc", Accesses: coreRunAccesses, Seed: 42,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.IPC, "IPC")
			b.ReportMetric(float64(r.Cycles)/float64(coreRunAccesses), "cycles/access")
		})
	}
}

// Hot-path benchmarks and allocation guards: the measurements behind
// BENCH_kernel.json (see `make bench` and EXPERIMENTS.md "Benchmarking").
//
// Three layers, innermost first:
//
//   - BenchmarkKernelRun: the raw sim.Kernel event loop (Step, Activate,
//     WakeAt) with a mixed population of self-rearming components;
//   - BenchmarkRouterSteadyState: a saturated 16x16 mesh moving multicast
//     block packets down every column — switch allocation, VC allocation,
//     hybrid replication, and credit return, with the cache protocol out
//     of the picture;
//   - BenchmarkCoreRun: the full simulation (cache protocol + CPU model)
//     on designs A, D, and F — the end-to-end number the ROADMAP's
//     "as fast as the hardware allows" goal is graded on.
//
// The allocation guards pin the zero-allocation steady-state contract:
// once traffic is in flight, stepping the kernel allocates nothing — no
// scratch slices, no queue growth, no closure captures, no replica
// packets from the GC heap.
package nucanet

import (
	"testing"

	"nucanet/internal/cache"
	"nucanet/internal/core"
	"nucanet/internal/flit"
	"nucanet/internal/network"
	"nucanet/internal/router"
	"nucanet/internal/routing"
	"nucanet/internal/sim"
	"nucanet/internal/topology"
)

// coreRunAccesses matches the acceptance configuration: design X / gcc /
// 10k measured accesses.
const coreRunAccesses = 10000

// steadyMesh builds a 16x16 mesh network with null endpoints everywhere
// and returns an injector that launches one multicast block packet down
// every column.
func steadyMesh() (*sim.Kernel, *network.Network, func()) {
	topo := topology.NewMesh(topology.MeshSpec{W: 16, H: 16, CoreX: 7, MemX: 8})
	k := sim.NewKernel()
	net := network.MustNew(k, topo, routing.XY{}, router.DefaultConfig())
	sink := nullEndpoint{}
	for id := 0; id < topo.NumNodes(); id++ {
		net.Attach(id, flit.ToBank, sink)
	}
	inject := func() {
		for c := 0; c < 16; c++ {
			net.Send(&flit.Packet{
				Kind: flit.WriteData, Src: topo.Core,
				Dst: topo.NodeAt(c, 15), DstEp: flit.ToBank,
				PathDeliver: true,
			}, k.Now())
		}
	}
	return k, net, inject
}

// BenchmarkRouterSteadyState measures per-cycle router cost on a mesh
// kept saturated with multicast block traffic; ns/op is one kernel step
// (one active cycle across all routers with buffered flits).
func BenchmarkRouterSteadyState(b *testing.B) {
	k, net, inject := steadyMesh()
	inject()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !k.Step() {
			inject()
		}
	}
	b.StopTimer()
	st := net.Stats()
	b.ReportMetric(float64(st.Router.FlitsRouted)/float64(b.N), "flit-hops/cycle")
	b.ReportMetric(float64(st.Router.ReplicasSpawned)/float64(b.N), "replicas/cycle")
}

// kernelBenchComp is a self-rearming component: two of three ticks stay
// hot (Activate), every third parks on a future event (WakeAt) — the mix
// that exercises the scheduled-id list and the event heap together.
type kernelBenchComp struct {
	k      *sim.Kernel
	id     int
	period int64
	n      int
}

func (c *kernelBenchComp) Tick(now int64) bool {
	c.n++
	if c.n%3 == 0 {
		c.k.WakeAt(now+c.period, c.id)
		return false
	}
	return true
}

func kernelBenchPopulation(k *sim.Kernel, n int) {
	for i := 0; i < n; i++ {
		c := &kernelBenchComp{k: k, period: int64(1 + i%5)}
		c.id = k.Register(c)
		k.WakeAt(c.period, c.id)
	}
}

// BenchmarkKernelRun measures the simulation kernel's event loop with 64
// components cycling between next-cycle activations and future events.
func BenchmarkKernelRun(b *testing.B) {
	k := sim.NewKernel()
	kernelBenchPopulation(k, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Step()
	}
}

// TestRouterSteadyStateZeroAlloc pins the tentpole contract: once warm,
// a router/network cycle allocates nothing — no switch-allocation
// scratch, no VC queue growth, no credit-return closures, no replica
// packets from the GC heap. Injection reuses a fixed set of packets
// (legal once each prior flight has fully drained), so the measured
// region is exactly the steady-state network.
//
// testing.AllocsPerRun invokes the function once as warm-up before
// measuring, which absorbs the one-time growth paths (injection-VC ring
// high-water mark, replica pool population, event-heap capacity).
func TestRouterSteadyStateZeroAlloc(t *testing.T) {
	k, net, _ := steadyMesh()
	topo := net.Topo
	pkts := make([]*flit.Packet, 16)
	for c := range pkts {
		pkts[c] = &flit.Packet{
			Kind: flit.WriteData, Src: topo.Core,
			Dst: topo.NodeAt(c, 15), DstEp: flit.ToBank,
			PathDeliver: true,
		}
	}
	inject := func() {
		for _, p := range pkts {
			net.Send(p, k.Now())
		}
	}
	inject()
	avg := testing.AllocsPerRun(50, func() {
		for i := 0; i < 200; i++ {
			if !k.Step() {
				inject()
			}
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state network cycle allocates: %.2f allocs per 200 cycles, want 0", avg)
	}
}

// TestKernelStepZeroAlloc pins the kernel's half of the contract: Step
// with a self-rearming component population touches only reused slices
// and the typed event heap — zero allocations per cycle.
func TestKernelStepZeroAlloc(t *testing.T) {
	k := sim.NewKernel()
	kernelBenchPopulation(k, 64)
	avg := testing.AllocsPerRun(50, func() {
		for i := 0; i < 200; i++ {
			k.Step()
		}
	})
	if avg != 0 {
		t.Fatalf("kernel Step allocates: %.2f allocs per 200 cycles, want 0", avg)
	}
}

// TestSteadyMeshReplicaPoolBalanced drains the saturated mesh and checks
// the replica freelist's leak invariant at the network level: every
// pooled packet handed out came back exactly once.
func TestSteadyMeshReplicaPoolBalanced(t *testing.T) {
	k, net, inject := steadyMesh()
	for round := 0; round < 20; round++ {
		inject()
		for k.Step() {
		}
	}
	if got := net.InFlight(); got != 0 {
		t.Fatalf("network did not drain: %d flits in flight", got)
	}
	ps := net.PoolStats()
	if ps.Gets == 0 {
		t.Fatal("no replicas were spawned; the multicast path did not run")
	}
	if ps.Live != 0 || ps.Gets != ps.Puts {
		t.Fatalf("replica pool leak: gets=%d puts=%d live=%d", ps.Gets, ps.Puts, ps.Live)
	}
}

// BenchmarkCoreRun measures the full simulation end to end — the
// acceptance configuration for the hot-path work: gcc, 10k accesses,
// multicast Fast-LRU, on the mesh (A), simplified-mesh (D), and halo (F)
// representatives.
func BenchmarkCoreRun(b *testing.B) {
	for _, id := range []string{"A", "D", "F"} {
		id := id
		b.Run("design-"+id, func(b *testing.B) {
			var r core.Result
			for i := 0; i < b.N; i++ {
				var err error
				r, err = core.Run(core.Options{
					DesignID: id, Policy: cache.FastLRU, Mode: cache.Multicast,
					Benchmark: "gcc", Accesses: coreRunAccesses, Seed: 42,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.IPC, "IPC")
			b.ReportMetric(float64(r.Cycles)/float64(coreRunAccesses), "cycles/access")
		})
	}
}

module nucanet

go 1.23

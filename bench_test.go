// Package nucanet's root benchmarks regenerate, one testing.B target per
// paper artifact, the measurements behind every table and figure of the
// evaluation section. Custom metrics carry the experiment outputs
// (cycles/access, IPC, mm2) alongside the usual ns/op:
//
//	go test -bench=. -benchmem
//
// Full-resolution sweeps (all 12 benchmarks) live in cmd/paperbench; the
// benchmarks here run one representative workload per configuration so
// the whole suite stays in CI-friendly time.
package nucanet

import (
	"testing"

	"nucanet/internal/area"
	"nucanet/internal/cache"
	"nucanet/internal/config"
	"nucanet/internal/core"
	"nucanet/internal/cpu"
	"nucanet/internal/flit"
	"nucanet/internal/network"
	"nucanet/internal/router"
	"nucanet/internal/routing"
	"nucanet/internal/sim"
	"nucanet/internal/telemetry"
	"nucanet/internal/topology"
	"nucanet/internal/trace"
)

const benchAccesses = 2000

func runOnce(b *testing.B, design string, p cache.Policy, m cache.Mode, bench string) core.Result {
	b.Helper()
	r, err := core.Run(core.Options{
		DesignID: design, Policy: p, Mode: m,
		Benchmark: bench, Accesses: benchAccesses, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkFig7LatencySplit regenerates the Figure 7 measurement: the
// bank/network/memory split of the unicast LRU baseline.
func BenchmarkFig7LatencySplit(b *testing.B) {
	var r core.Result
	for i := 0; i < b.N; i++ {
		r = runOnce(b, "A", cache.LRU, cache.Unicast, "gcc")
	}
	b.ReportMetric(100*r.BankShare, "bank%")
	b.ReportMetric(100*r.NetworkShare, "network%")
	b.ReportMetric(100*r.MemShare, "memory%")
}

// BenchmarkFig8 regenerates Figure 8: one sub-benchmark per replacement
// scheme on Design A, reporting average access latency and IPC.
func BenchmarkFig8(b *testing.B) {
	for _, s := range core.Fig8Schemes() {
		s := s
		b.Run(s.Name, func(b *testing.B) {
			var r core.Result
			for i := 0; i < b.N; i++ {
				r = runOnce(b, "A", s.Policy, s.Mode, "gcc")
			}
			b.ReportMetric(r.AvgLatency, "cycles/access")
			b.ReportMetric(r.AvgHit, "cycles/hit")
			b.ReportMetric(r.AvgMiss, "cycles/miss")
			b.ReportMetric(r.AvgOccupancy, "cycles/occupancy")
			b.ReportMetric(r.IPC, "IPC")
		})
	}
}

// BenchmarkFig9 regenerates Figure 9: one sub-benchmark per Table 3
// design under multicast Fast-LRU.
func BenchmarkFig9(b *testing.B) {
	for _, d := range config.Designs() {
		d := d
		b.Run("design-"+d.ID, func(b *testing.B) {
			var r core.Result
			for i := 0; i < b.N; i++ {
				r = runOnce(b, d.ID, cache.FastLRU, cache.Multicast, "gcc")
			}
			b.ReportMetric(r.IPC, "IPC")
			b.ReportMetric(r.AvgLatency, "cycles/access")
		})
	}
}

// BenchmarkTable4Area regenerates the Table 4 area model.
func BenchmarkTable4Area(b *testing.B) {
	var reps []area.Report
	for i := 0; i < b.N; i++ {
		reps, _ = area.Table4(area.DefaultModel())
	}
	for _, r := range reps {
		b.ReportMetric(r.L2MM2(), r.DesignID+"-L2-mm2")
	}
}

// BenchmarkTable2Generator measures the Table 2 synthetic workload
// generator's throughput (accesses generated per op).
func BenchmarkTable2Generator(b *testing.B) {
	p, err := trace.ProfileByName("mcf")
	if err != nil {
		b.Fatal(err)
	}
	g := trace.NewSynthetic(p, trace.AddrMap{Columns: 16, Sets: 1024}, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

// BenchmarkRouterHop measures raw single-cycle router throughput: packets
// crossing a 16x16 mesh column under XY routing.
func BenchmarkRouterHop(b *testing.B) {
	topo := topology.NewMesh(topology.MeshSpec{W: 16, H: 16, CoreX: 7, MemX: 8})
	k := sim.NewKernel()
	net := network.MustNew(k, topo, routing.XY{}, router.DefaultConfig())
	sink := nullEndpoint{}
	for id := 0; id < topo.NumNodes(); id++ {
		net.Attach(id, flit.ToBank, sink)
	}
	dst := topo.NodeAt(7, 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Send(&flit.Packet{Kind: flit.ReadReq, Src: topo.Core, Dst: dst, DstEp: flit.ToBank}, k.Now())
		k.Run(64)
	}
	st := net.Stats()
	b.ReportMetric(float64(st.Router.FlitsRouted)/float64(b.N), "flit-hops/pkt")
}

// BenchmarkMulticastColumn measures the multicast router delivering one
// request to all 16 banks of a column (replication included).
func BenchmarkMulticastColumn(b *testing.B) {
	topo := topology.NewMesh(topology.MeshSpec{W: 16, H: 16, CoreX: 7, MemX: 8})
	k := sim.NewKernel()
	net := network.MustNew(k, topo, routing.XY{}, router.DefaultConfig())
	sink := nullEndpoint{}
	for id := 0; id < topo.NumNodes(); id++ {
		net.Attach(id, flit.ToBank, sink)
	}
	dst := topo.NodeAt(3, 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := &flit.Packet{Kind: flit.ReadReq, Src: topo.Core, Dst: dst, DstEp: flit.ToBank, PathDeliver: true}
		net.Send(p, k.Now())
		k.Run(64)
	}
}

// BenchmarkCacheHitOp measures one full multicast Fast-LRU hit operation
// end to end on Design A (request, probes, data return, replacement).
func BenchmarkCacheHitOp(b *testing.B) {
	d, err := config.DesignByID("A")
	if err != nil {
		b.Fatal(err)
	}
	k := sim.NewKernel()
	sys := cache.MustNew(k, d, cache.FastLRU, cache.Multicast)
	p, _ := trace.ProfileByName("art")
	gen := trace.NewSynthetic(p, sys.AM, 1)
	sys.Warm(gen.WarmBlocks(d.Ways()))
	accs := trace.Take(gen, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := accs[i%len(accs)]
		sys.Issue(a.Addr, a.Write, nil)
		if err := sys.Drain(1 << 30); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sys.Lat.Avg(), "cycles/access")
}

// BenchmarkCMP scales the shared cache from 1 to 8 cores (the paper's
// future-work experiment), reporting aggregate throughput — on the flat
// Design A mesh and on the hierarchical two-chiplet H2 fabric.
func BenchmarkCMP(b *testing.B) {
	for _, design := range []string{"A", "H2"} {
		for _, cores := range []int{1, 2, 4, 8} {
			design, cores := design, cores
			b.Run(design+"/"+fmtCores(cores), func(b *testing.B) {
				var res core.Result
				for i := 0; i < b.N; i++ {
					var err error
					res, err = core.Run(core.Options{
						DesignID: design, Policy: cache.FastLRU, Mode: cache.Multicast,
						Cores: cores, Benchmark: "gcc", Accesses: 1000, Seed: 7,
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(res.IPC, "throughput-IPC")
				b.ReportMetric(100*res.HitRate, "hit%")
			})
		}
	}
}

func fmtCores(n int) string {
	return string(rune('0'+n)) + "-cores"
}

// BenchmarkAblationRouterStages contrasts the paper's single-cycle router
// with a conventional 3-stage pipelined router on Design A.
func BenchmarkAblationRouterStages(b *testing.B) {
	for _, stages := range []int{1, 3} {
		stages := stages
		b.Run(fmtCores(stages)[:1]+"-stage", func(b *testing.B) {
			d, err := config.DesignByID("A")
			if err != nil {
				b.Fatal(err)
			}
			d.Router.Stages = stages
			var avg float64
			for i := 0; i < b.N; i++ {
				k := sim.NewKernel()
				sys := cache.MustNew(k, d, cache.FastLRU, cache.Multicast)
				p, _ := trace.ProfileByName("gcc")
				gen := trace.NewSynthetic(p, sys.AM, 3)
				sys.Warm(gen.WarmBlocks(d.Ways()))
				c := cpuNew(k, sys, p, trace.Take(gen, 1500))
				if _, err := c.Run(1 << 40); err != nil {
					b.Fatal(err)
				}
				avg = sys.Lat.Avg()
			}
			b.ReportMetric(avg, "cycles/access")
		})
	}
}

// BenchmarkAblationEnergy reports the energy split of mesh vs halo — the
// extension analysis (the paper's stated future work).
func BenchmarkAblationEnergy(b *testing.B) {
	for _, id := range []string{"A", "F"} {
		id := id
		b.Run("design-"+id, func(b *testing.B) {
			var r core.Result
			for i := 0; i < b.N; i++ {
				r = runOnce(b, id, cache.FastLRU, cache.Multicast, "gcc")
			}
			b.ReportMetric(r.Energy.PerAccessNJ(), "nJ/access")
			b.ReportMetric(100*r.Energy.NetworkShare(), "network-energy%")
		})
	}
}

func cpuNew(k *sim.Kernel, sys *cache.System, p trace.Profile, accs []trace.Access) *cpu.Core {
	return cpu.New(k, sys, p, accs, cpu.DefaultConfig())
}

// BenchmarkParallelSweep measures the experiment engine's fan-out on a
// Figure 7-style 12-benchmark sweep: j=1 is the sequential reference,
// j=0 one worker per core. The reported speedup metric is Work/Wall.
func BenchmarkParallelSweep(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
	}{{"j-1", 1}, {"j-all", 0}} {
		bc := bc
		b.Run(bc.name, func(b *testing.B) {
			var rep core.SweepReport
			for i := 0; i < b.N; i++ {
				var err error
				_, rep, err = core.Fig7(core.ExpConfig{Accesses: 500, Seed: 42, Workers: bc.workers})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rep.Speedup(), "speedup")
		})
	}
}

// BenchmarkTelemetryProbes measures the cost of the telemetry layer on a
// full Design A run: probes-off is the nil-collector fast path every
// normal run takes (one branch per probe site); probes-on collects the
// heatmap and time series (the trace is excluded — its memory growth
// makes cross-iteration numbers incomparable).
func BenchmarkTelemetryProbes(b *testing.B) {
	for _, bc := range []struct {
		name string
		cfg  telemetry.Config
	}{
		{"off", telemetry.Config{}},
		{"on", telemetry.Config{Heatmap: true, SampleEvery: 100}},
	} {
		bc := bc
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := core.Run(core.Options{
					DesignID: "A", Policy: cache.FastLRU, Mode: cache.Multicast,
					Benchmark: "gcc", Accesses: benchAccesses, Seed: 42,
					Telemetry: bc.cfg,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestDisabledProbeHotPathAllocFree pins the telemetry contract the
// simulator's hot loops rely on: with probes disabled (nil collector),
// every probe site is a branch-and-return that allocates nothing.
func TestDisabledProbeHotPathAllocFree(t *testing.T) {
	var c *telemetry.Collector
	f := flit.Flit{Pkt: &flit.Packet{ID: 9, Kind: flit.ReadReq}, Seq: 0, Head: true}
	allocs := testing.AllocsPerRun(1000, func() {
		c.FlitInjected(3, f, 12)
		c.VCAllocated(3, f.Pkt, 12, 1, 2)
		c.FlitRouted(3, f, 12, 1, 2)
		c.FlitEjected(4, f, 13, 0)
		c.ReplicaForked(4, f, 13, 2, 1)
		c.BankAccess(5, 7)
		c.BankHit(5, 7)
		c.Sample(100, 17, 3)
		c.Finish(200)
	})
	if allocs != 0 {
		t.Fatalf("disabled probe path allocates %.1f per op, want 0", allocs)
	}
}

// BenchmarkKernelTick measures the simulation kernel's raw tick rate.
func BenchmarkKernelTick(b *testing.B) {
	k := sim.NewKernel()
	id := k.Register(spinComp{})
	k.Activate(id)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Step()
	}
}

type spinComp struct{}

func (spinComp) Tick(now int64) bool { return true }

type nullEndpoint struct{}

func (nullEndpoint) Deliver(*flit.Packet, int64) {}

package area

import (
	"math"
	"testing"

	"nucanet/internal/config"
	"nucanet/internal/router"
)

// analyze unwraps Analyze for designs the tests know to be valid.
func analyze(t *testing.T, m Model, d config.Design) Report {
	t.Helper()
	r, err := m.Analyze(d)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestBankAreaScaling(t *testing.T) {
	m := DefaultModel()
	if got := m.BankArea(64); math.Abs(got-1.06) > 1e-9 {
		t.Fatalf("64KB bank = %v, want 1.06", got)
	}
	// Sublinear: doubling capacity must less-than-double... i.e. density
	// improves: area(128)/area(64) < 2 but > 1.
	r := m.BankArea(128) / m.BankArea(64)
	if r <= 1.5 || r >= 2 {
		t.Fatalf("capacity scaling ratio = %v, want in (1.5, 2)", r)
	}
	// A full non-uniform column (1 MB) must be smaller than sixteen
	// 64 KB banks (1 MB), reflecting Design F's density win.
	nonUniform := m.BankArea(64)*2 + m.BankArea(128) + m.BankArea(256) + m.BankArea(512)
	uniform := 16 * m.BankArea(64)
	if nonUniform >= uniform {
		t.Fatalf("non-uniform column %v should beat uniform %v", nonUniform, uniform)
	}
}

func TestThreePortRouterNearHalf(t *testing.T) {
	// Paper Section 6.3: the simple 3-port router takes ~48% of the
	// normal (5-port) router area.
	m := DefaultModel()
	ratio := m.RouterArea(3) / m.RouterArea(5)
	if ratio < 0.42 || ratio > 0.54 {
		t.Fatalf("3-port/5-port = %.3f, want ~0.48", ratio)
	}
}

func TestLinkWidth(t *testing.T) {
	// 128-bit bidirectional link at 1 um pitch = 256 um.
	if got := DefaultModel().LinkWidthMM(); math.Abs(got-0.256) > 1e-9 {
		t.Fatalf("link width = %v mm, want 0.256", got)
	}
}

func TestDesignANetworkShare(t *testing.T) {
	// Headline observation: the network occupies ~52% of the cache area
	// in the 16x16 mesh design.
	d, _ := config.DesignByID("A")
	r := analyze(t, DefaultModel(), d)
	share := (r.RouterPct() + r.LinkPct()) / 100
	if share < 0.44 || share < 0 || share > 0.60 {
		t.Fatalf("design A network share = %.3f, want ~0.52", share)
	}
	// And the paper's absolute scale: L2 around 550-590 mm^2.
	if r.L2MM2() < 480 || r.L2MM2() > 650 {
		t.Fatalf("design A L2 = %.1f mm^2, want near 567.7", r.L2MM2())
	}
}

func TestTable4Shape(t *testing.T) {
	reps, err := Table4(DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 4 {
		t.Fatalf("rows = %d, want 4", len(reps))
	}
	byID := map[string]Report{}
	for _, r := range reps {
		byID[r.DesignID] = r
		// Percentages must sum to 100.
		if s := r.BankPct() + r.RouterPct() + r.LinkPct(); math.Abs(s-100) > 1e-6 {
			t.Fatalf("%s: percentages sum to %v", r.DesignID, s)
		}
		if r.ChipMM2 < r.L2MM2()-1e-9 {
			t.Fatalf("%s: chip smaller than L2", r.DesignID)
		}
	}
	a, b, e, f := byID["A"], byID["B"], byID["E"], byID["F"]
	// Bank share: the baseline mesh lowest, the non-uniform halo highest.
	// (Our model makes B and E nearly equal — both are 256 banks with
	// 3-port routers and ~one link per bank; the paper's B row appears
	// to retain the unidirectional reply wires of Figure 4(b), see
	// EXPERIMENTS.md.)
	for _, r := range []Report{b, e, f} {
		if a.BankPct() >= r.BankPct() {
			t.Fatalf("design A bank share %.1f should be the lowest (vs %s %.1f)",
				a.BankPct(), r.DesignID, r.BankPct())
		}
	}
	if f.BankPct() <= b.BankPct() || f.BankPct() <= e.BankPct() {
		t.Fatalf("design F bank share %.1f should be the highest", f.BankPct())
	}
	if rel := math.Abs(b.L2MM2()-e.L2MM2()) / b.L2MM2(); rel > 0.15 {
		t.Fatalf("B and E should be near-equal in our model; differ by %.2f", rel)
	}
	// L2 area shrinks from the baseline to the halo designs.
	if !(a.L2MM2() > b.L2MM2() && a.L2MM2() > e.L2MM2() && e.L2MM2() > f.L2MM2() && b.L2MM2() > f.L2MM2()) {
		t.Fatalf("L2 area ordering wrong: A=%.1f B=%.1f E=%.1f F=%.1f",
			a.L2MM2(), b.L2MM2(), e.L2MM2(), f.L2MM2())
	}
	// Headline: Design F uses ~23% of Design A's interconnection area.
	ratio := f.NetworkMM2() / a.NetworkMM2()
	if ratio < 0.12 || ratio > 0.34 {
		t.Fatalf("F/A network area = %.3f, want ~0.23", ratio)
	}
	// Design E's die is mostly empty: chip far larger than its L2
	// (paper: the L2 uses only about a quarter of the die).
	if e.ChipMM2 < 2.5*e.L2MM2() {
		t.Fatalf("E chip %.1f should dwarf its L2 %.1f", e.ChipMM2, e.L2MM2())
	}
	// Design F's compact layout: chip within ~2x of its L2 and around
	// 6x smaller unused area than E.
	wasteE := e.ChipMM2 - e.L2MM2()
	wasteF := f.ChipMM2 - f.L2MM2()
	if wasteF*4 > wasteE {
		t.Fatalf("F waste %.1f not far below E waste %.1f", wasteF, wasteE)
	}
}

func TestHaloChipUsesCoreEdge(t *testing.T) {
	m := DefaultModel()
	e, _ := config.DesignByID("E")
	small := m
	small.CoreEdgeMM = 0
	if analyze(t, small, e).ChipMM2 >= analyze(t, m, e).ChipMM2 {
		t.Fatal("core edge must enlarge the halo die")
	}
}

func TestMeshChipEqualsPackedRows(t *testing.T) {
	// Uniform mesh: chip should be close to the L2 itself (square tiles
	// pack perfectly).
	a, _ := config.DesignByID("A")
	r := analyze(t, DefaultModel(), a)
	if r.ChipMM2 > r.L2MM2()*1.02 {
		t.Fatalf("design A chip %.1f should pack tight vs L2 %.1f", r.ChipMM2, r.L2MM2())
	}
}

func TestNonUniformMeshLayouts(t *testing.T) {
	// Designs C and D exercise the mixed-tile-size mesh layout path.
	m := DefaultModel()
	for _, id := range []string{"C", "D"} {
		d, _ := config.DesignByID(id)
		r := analyze(t, m, d)
		if r.L2MM2() <= 0 || r.ChipMM2 < r.L2MM2() {
			t.Fatalf("design %s layout broken: %+v", id, r)
		}
		// Fewer routers and links than Design A in both.
		a, _ := config.DesignByID("A")
		ra := analyze(t, m, a)
		if r.RouterMM2 >= ra.RouterMM2 || r.LinkMM2 >= ra.LinkMM2 {
			t.Fatalf("design %s should have a smaller network than A", id)
		}
	}
	// D's non-uniform banks beat C's uniform 256KB banks on density.
	c, _ := config.DesignByID("C")
	dd, _ := config.DesignByID("D")
	if analyze(t, m, dd).BankMM2 >= analyze(t, m, c).BankMM2 {
		t.Fatal("non-uniform column should pack denser than uniform 256KB")
	}
}

func TestSimplifiedMeshSavesNetwork(t *testing.T) {
	m := DefaultModel()
	a, _ := config.DesignByID("A")
	b, _ := config.DesignByID("B")
	ra, rb := analyze(t, m, a), analyze(t, m, b)
	if rb.RouterMM2 >= ra.RouterMM2 {
		t.Fatal("3-port routers must shrink router area")
	}
	if rb.LinkMM2 >= ra.LinkMM2 {
		t.Fatal("removing horizontal links must shrink link area")
	}
	if rb.BankMM2 != ra.BankMM2 {
		t.Fatal("banks unchanged between A and B")
	}
}

// TestRouterAreaPerEngine pins the per-engine buffer cost model: the
// default configuration reproduces the calibrated RouterArea exactly
// (Table 4 stays bit-identical), and the low-cost engines order strictly
// below the wormhole — the area axis the Pareto sweep trades against
// latency.
func TestRouterAreaPerEngine(t *testing.T) {
	m := DefaultModel()
	cfg := router.DefaultConfig()
	areaOf := func(engine string) float64 {
		t.Helper()
		c := cfg
		c.Engine = engine
		a, err := m.RouterAreaFor(c, 5)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	if got, want := areaOf(""), m.RouterArea(5); got != want {
		t.Errorf("default engine router area = %v, want RouterArea's %v", got, want)
	}
	if got, want := areaOf("vc-wormhole"), m.RouterArea(5); got != want {
		t.Errorf("explicit wormhole router area = %v, want RouterArea's %v", got, want)
	}
	bl, rl, wh := areaOf("bufferless"), areaOf("ring-lite"), areaOf("vc-wormhole")
	if !(bl < rl && rl < wh) {
		t.Errorf("engine areas not ordered: bufferless %v, ring-lite %v, wormhole %v", bl, rl, wh)
	}
	if _, err := m.RouterAreaFor(router.Config{Engine: "optical"}, 5); err == nil {
		t.Error("unknown engine accepted by RouterAreaFor")
	}

	// A whole-design check: Design A rebuilt with the bufferless engine
	// must shed router area but keep bank area untouched.
	d, err := config.DesignByID("A")
	if err != nil {
		t.Fatal(err)
	}
	base := analyze(t, m, d)
	d.Router.Engine = "bufferless"
	lean := analyze(t, m, d)
	if !(lean.RouterMM2 < base.RouterMM2) {
		t.Errorf("bufferless design A router area %v not below wormhole's %v", lean.RouterMM2, base.RouterMM2)
	}
	if lean.BankMM2 != base.BankMM2 {
		t.Errorf("bank area changed with the router engine: %v vs %v", lean.BankMM2, base.BankMM2)
	}
}

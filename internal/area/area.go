// Package area is the analytical "cacti-lite" model behind Table 4: it
// estimates bank, router, and link areas of each network design and the
// minimal rectangular die that contains the L2.
//
// Banks follow a calibrated capacity power law (Cacti 3.0 at 65 nm gives
// ~1.06 mm^2 for a 64 KB bank; density improves with capacity). Routers
// split into buffer area (linear in ports: VCs x depth x flit bits per PC)
// and crossbar area (quadratic in ports), calibrated so a 3-port router is
// ~48% of a 5-port router as the paper reports. A bidirectional link of
// 128-bit flits at 1 um wire pitch is 256 um wide and spans one tile edge;
// tile edges are solved by fixed point since links enlarge the tiles they
// cross. Wires are not routed over banks, so no repeater/latch area is
// added (Section 6.3).
package area

import (
	"fmt"
	"math"

	"nucanet/internal/config"
	"nucanet/internal/router"
)

// Model holds the calibrated constants.
type Model struct {
	Bank64KB float64 // mm^2 of a 64 KB bank
	BankExp  float64 // capacity exponent (sublinear density scaling)

	RouterPortLinear float64 // mm^2 per port (input buffers)
	RouterPortQuad   float64 // mm^2 per port^2 (crossbar)

	WirePitchUM float64 // wire pitch in um
	FlitBits    int     // link width in bits (bidirectional pairs)

	CoreEdgeMM float64 // processor core edge for halo layouts
}

// DefaultModel returns the 65 nm calibration used for Table 4.
func DefaultModel() Model {
	return Model{
		Bank64KB:         1.06,
		BankExp:          0.93,
		RouterPortLinear: 0.04611,
		RouterPortQuad:   0.00923,
		WirePitchUM:      1.0,
		FlitBits:         128,
		CoreEdgeMM:       4.0,
	}
}

// BankArea returns the area of one bank in mm^2.
func (m Model) BankArea(sizeKB int) float64 {
	return m.Bank64KB * math.Pow(float64(sizeKB)/64, m.BankExp)
}

// RouterArea returns the area of a router with the given port count
// (neighbor ports + injection), at the calibrated wormhole buffering.
func (m Model) RouterArea(ports int) float64 {
	p := float64(ports)
	return m.RouterPortLinear*p + m.RouterPortQuad*p*p
}

// RouterAreaFor returns the area of a router with the given port count
// under a specific router configuration. The linear term models the input
// buffers, so it scales with the engine's buffer flits per port relative
// to the calibration point (the default wormhole router's 16 flits: 4 VCs
// x 4 slots); the quadratic crossbar term is engine-independent. The
// default configuration therefore reproduces RouterArea exactly, keeping
// Table 4 bit-identical, while bufferless (1 latch flit) and ring-lite (2)
// shed most of the buffer area — the area axis of the Pareto sweep.
func (m Model) RouterAreaFor(cfg router.Config, ports int) (float64, error) {
	eng, err := router.ByName(cfg.Engine)
	if err != nil {
		return 0, err
	}
	calib, err := router.ByName(router.DefaultEngine)
	if err != nil {
		return 0, err
	}
	scale := float64(eng.BufferFlits(cfg)) / float64(calib.BufferFlits(router.DefaultConfig()))
	p := float64(ports)
	return m.RouterPortLinear*p*scale + m.RouterPortQuad*p*p, nil
}

// LinkWidthMM returns the physical width of one bidirectional link.
func (m Model) LinkWidthMM() float64 {
	return 2 * float64(m.FlitBits) * m.WirePitchUM / 1000
}

// Report is one row of Table 4.
type Report struct {
	DesignID  string
	BankMM2   float64
	RouterMM2 float64
	LinkMM2   float64
	ChipMM2   float64 // minimal rectangle containing the L2 (and core for halos)
}

// L2MM2 returns the total L2 area.
func (r Report) L2MM2() float64 { return r.BankMM2 + r.RouterMM2 + r.LinkMM2 }

// BankPct, RouterPct and LinkPct return the Table 4 percentage split.
func (r Report) BankPct() float64   { return 100 * r.BankMM2 / r.L2MM2() }
func (r Report) RouterPct() float64 { return 100 * r.RouterMM2 / r.L2MM2() }
func (r Report) LinkPct() float64   { return 100 * r.LinkMM2 / r.L2MM2() }

// NetworkMM2 returns the interconnect (router + link) area.
func (r Report) NetworkMM2() float64 { return r.RouterMM2 + r.LinkMM2 }

func (r Report) String() string {
	return fmt.Sprintf("%s: bank %.1f%% router %.1f%% link %.1f%% L2 %.2fmm2 chip %.2fmm2",
		r.DesignID, r.BankPct(), r.RouterPct(), r.LinkPct(), r.L2MM2(), r.ChipMM2)
}

// Analyze computes the Table 4 row for a design. It errors when the
// design's topology cannot be built.
func (m Model) Analyze(d config.Design) (Report, error) {
	topo, err := d.Build()
	if err != nil {
		return Report{}, err
	}
	rep := Report{DesignID: d.ID}

	// Routers: the fixed part of each tile.
	n := topo.NumNodes()
	tileFixed := make([]float64, n)
	for id := 0; id < n; id++ {
		ports := 1 // injection
		for p := 0; p < topo.NumPorts(id); p++ {
			if _, ok := topo.Link(id, p); ok {
				ports++
			}
		}
		ra, err := m.RouterAreaFor(d.Router, ports)
		if err != nil {
			return Report{}, fmt.Errorf("area: design %s: %w", d.ID, err)
		}
		rep.RouterMM2 += ra
		tileFixed[id] = ra
	}
	// Banks: walk the columns so a concentrated node accumulates one
	// bank area per column position it hosts.
	for c := 0; c < topo.Columns(); c++ {
		for pos, node := range topo.Column(c) {
			ba := m.BankArea(d.Banks[pos].SizeKB)
			rep.BankMM2 += ba
			tileFixed[node] += ba
		}
	}

	// Links: length spans a tile edge; tiles grow to accommodate the
	// links crossing them, so solve by fixed point. The link area is
	// spread over the tiles proportionally to keep edges consistent.
	width := m.LinkWidthMM()
	fixedTotal := rep.BankMM2 + rep.RouterMM2
	linkTotal := 0.0
	edge := func(id int, scale float64) float64 {
		return math.Sqrt(tileFixed[id] * scale)
	}
	for iter := 0; iter < 30; iter++ {
		scale := (fixedTotal + linkTotal) / fixedTotal
		sum := 0.0
		for id := 0; id < n; id++ {
			for p := 0; p < topo.NumPorts(id); p++ {
				l, ok := topo.Link(id, p)
				if !ok || l.To < id {
					continue // count each bidirectional pair once
				}
				length := (edge(id, scale) + edge(l.To, scale)) / 2
				sum += length * width
			}
		}
		if math.Abs(sum-linkTotal) < 1e-9 {
			linkTotal = sum
			break
		}
		linkTotal = sum
	}
	rep.LinkMM2 = linkTotal

	// Die layout.
	scale := (fixedTotal + linkTotal) / fixedTotal
	if topo.Radial {
		// Spikes radiate from a central core; the die is the square
		// containing the two longest opposite spikes plus the core. On a
		// concentrated spike one router tile may appear several times in
		// the column; count each tile edge once.
		maxRadial := 0.0
		for s := 0; s < topo.Columns(); s++ {
			radial := 0.0
			prev := -1
			for _, node := range topo.Column(s) {
				if node != prev {
					radial += edge(node, scale)
				}
				prev = node
			}
			if radial > maxRadial {
				maxRadial = radial
			}
		}
		side := 2*maxRadial + m.CoreEdgeMM
		rep.ChipMM2 = side * side
	} else {
		// Planar topologies: tiles pack into the render grid's rows, and
		// the die is the widest row times the summed row heights. Meshes
		// render at their mesh coordinates, so this reproduces the
		// original row packing exactly.
		_, rh := topo.RenderSize()
		rowW := make([]float64, rh)
		rowH := make([]float64, rh)
		for id := 0; id < n; id++ {
			_, y := topo.RenderCoord(id)
			e := edge(id, scale)
			rowW[y] += e
			if e > rowH[y] {
				rowH[y] = e
			}
		}
		maxW, totalH := 0.0, 0.0
		for y := 0; y < rh; y++ {
			if rowW[y] > maxW {
				maxW = rowW[y]
			}
			totalH += rowH[y]
		}
		rep.ChipMM2 = maxW * totalH
	}
	if rep.ChipMM2 < rep.L2MM2() {
		rep.ChipMM2 = rep.L2MM2()
	}
	return rep, nil
}

// Table4 analyzes the four designs the paper reports (A, B, E, F).
func Table4(m Model) ([]Report, error) {
	var out []Report
	for _, id := range []string{"A", "B", "E", "F"} {
		d, err := config.DesignByID(id)
		if err != nil {
			return nil, err
		}
		rep, err := m.Analyze(d)
		if err != nil {
			return nil, err
		}
		out = append(out, rep)
	}
	return out, nil
}

package mem

import (
	"testing"

	"nucanet/internal/flit"
	"nucanet/internal/network"
	"nucanet/internal/router"
	"nucanet/internal/routing"
	"nucanet/internal/sim"
	"nucanet/internal/topology"
)

type sink struct {
	got []*flit.Packet
	at  []int64
}

// cookie is a test protocol payload passed through the memory.
type cookie struct{ id string }

func (*cookie) ProtocolMessage() {}

func (s *sink) Deliver(p *flit.Packet, now int64) {
	s.got = append(s.got, p)
	s.at = append(s.at, now)
}

func build(t *testing.T, wire int) (*sim.Kernel, *network.Network, *Memory, *sink) {
	t.Helper()
	topo := topology.NewMesh(topology.MeshSpec{W: 4, H: 4, CoreX: 1, MemX: 2})
	topo.MemWireDelay = wire
	k := sim.NewKernel()
	net := network.MustNew(k, topo, routing.XY{}, router.DefaultConfig())
	m := New(k, net, DefaultConfig())
	s := &sink{}
	for id := 0; id < topo.NumNodes(); id++ {
		net.Attach(id, flit.ToBank, s)
	}
	net.Attach(topo.Core, flit.ToCore, s)
	return k, net, m, s
}

func TestConfigDerived(t *testing.T) {
	c := DefaultConfig()
	if c.TransferCycles() != 32 {
		t.Fatalf("TransferCycles = %d, want 32 (4 cycles per 8B x 64B)", c.TransferCycles())
	}
	if c.ReadLatency() != 162 {
		t.Fatalf("ReadLatency = %d, want 162", c.ReadLatency())
	}
}

func TestReadRoundTrip(t *testing.T) {
	k, net, m, s := build(t, 0)
	mru := net.Topo.NodeAt(2, 0)
	req := &flit.Packet{
		Kind: flit.MemReadReq, Src: net.Topo.Core, Dst: m.Node(), DstEp: flit.ToMem,
		Addr: 0x1000, Payload: &ReadReq{ReplyTo: mru, ReplyEp: flit.ToBank, Cookie: &cookie{"c1"}},
	}
	net.Send(req, 0)
	k.Run(10000)
	if len(s.got) != 1 {
		t.Fatalf("replies = %d, want 1", len(s.got))
	}
	rep := s.got[0]
	if c, ok := rep.Payload.(*cookie); rep.Kind != flit.MemBlock || rep.Addr != 0x1000 || !ok || c.id != "c1" {
		t.Fatalf("bad reply %v payload=%v", rep, rep.Payload)
	}
	// Request: (1,0)->(2,3) = 4 hops + eject = 5. Reply ready at
	// 5+162=167; reply head travels (2,3)->(2,0) = 3 hops + eject
	// => 167+3+1 = 171 (cut-through delivery at the head flit).
	if s.at[0] != 171 {
		t.Fatalf("reply delivered at %d, want 171", s.at[0])
	}
	if m.Stats().Reads != 1 {
		t.Fatal("read not counted")
	}
}

func TestWireDelayAddsBothWays(t *testing.T) {
	_, _, _, _ = build(t, 0)
	k, net, m, s := build(t, 9)
	mru := net.Topo.NodeAt(2, 0)
	req := &flit.Packet{
		Kind: flit.MemReadReq, Src: net.Topo.Core, Dst: m.Node(), DstEp: flit.ToMem,
		Addr: 0x40, Payload: &ReadReq{ReplyTo: mru, ReplyEp: flit.ToBank},
	}
	net.Send(req, 0)
	k.Run(10000)
	if s.at[0] != 171+18 {
		t.Fatalf("reply at %d, want %d (2x9 wire cycles added)", s.at[0], 171+18)
	}
}

func TestPipelinedPortSerializes(t *testing.T) {
	k, net, m, s := build(t, 0)
	mru := net.Topo.NodeAt(2, 0)
	for i := 0; i < 3; i++ {
		req := &flit.Packet{
			Kind: flit.MemReadReq, Src: net.Topo.Core, Dst: m.Node(), DstEp: flit.ToMem,
			Addr: uint64(i) * 64, Payload: &ReadReq{ReplyTo: mru, ReplyEp: flit.ToBank},
		}
		net.Send(req, 0)
	}
	k.Run(100000)
	if len(s.got) != 3 {
		t.Fatalf("replies = %d, want 3", len(s.got))
	}
	// Port initiation interval is the 32-cycle transfer: replies must be
	// spaced at least ~32 cycles apart (pipelined, not fully parallel).
	if s.at[1] < s.at[0]+30 || s.at[2] < s.at[1]+30 {
		t.Fatalf("reply times %v not pipelined at the port", s.at)
	}
	if m.Stats().BusyStall == 0 {
		t.Fatal("expected port busy stalls")
	}
}

func TestWriteBackAbsorbed(t *testing.T) {
	k, net, m, s := build(t, 0)
	wb := &flit.Packet{
		Kind: flit.WriteBack, Src: net.Topo.NodeAt(2, 3), Dst: m.Node(),
		DstEp: flit.ToMem, Addr: 0xbeef,
	}
	net.Send(wb, 0)
	k.Run(10000)
	if len(s.got) != 0 {
		t.Fatal("writeback must not generate a reply")
	}
	if m.Stats().WriteBacks != 1 {
		t.Fatal("writeback not counted")
	}
}

func TestHaloWireDelayPickedUpFromTopology(t *testing.T) {
	topo := topology.NewHalo(topology.HaloSpec{Spikes: 4, Length: 4, MemWireDelay: 16})
	k := sim.NewKernel()
	net := network.MustNew(k, topo, routing.Spike{}, router.DefaultConfig())
	m := New(k, net, DefaultConfig())
	s := &sink{}
	for id := 0; id < topo.NumNodes(); id++ {
		net.Attach(id, flit.ToBank, s)
	}
	mru := topo.Column(0)[0]
	req := &flit.Packet{
		Kind: flit.MemReadReq, Src: topo.Hub(), Dst: m.Node(), DstEp: flit.ToMem,
		Addr: 0, Payload: &ReadReq{ReplyTo: mru, ReplyEp: flit.ToBank},
	}
	net.Send(req, 0)
	k.Run(10000)
	// Hub == mem node: request ejects at cycle 1; +16 wire, +162, +16
	// wire = ready 195; reply head 1 hop + eject = 195+2 = 197.
	if s.at[0] != 197 {
		t.Fatalf("reply at %d, want 197", s.at[0])
	}
}

func TestBadPayloadPanics(t *testing.T) {
	k, net, m, _ := build(t, 0)
	req := &flit.Packet{
		Kind: flit.MemReadReq, Src: net.Topo.Core, Dst: m.Node(), DstEp: flit.ToMem,
	}
	net.Send(req, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on missing payload")
		}
	}()
	k.Run(10000)
}

// Package mem models the off-chip memory of Table 1: a pipelined port
// with 130 cycles of access latency plus 4 cycles per 8 B transferred
// (32 cycles for a 64 B block), fronted by the memory controller's wire
// delay to the pins (large when the controller sits at the die centre of
// a halo: 16 cycles in Design E, 9 in Design F).
//
// The memory is a network endpoint: it consumes MemReadReq and WriteBack
// packets and answers reads with a MemBlock packet to the requested
// router (normally the MRU bank of the missing column).
package mem

import (
	"fmt"

	"nucanet/internal/flit"
	"nucanet/internal/network"
	"nucanet/internal/sim"
	"nucanet/internal/topology"
)

// Config sets the memory timing (Table 1 defaults via DefaultConfig).
type Config struct {
	AccessCycles int // pipelined access latency
	CyclesPer8B  int
	BlockBytes   int
	WireDelay    int // per direction, controller <-> pins
}

// DefaultConfig returns the Table 1 memory parameters.
func DefaultConfig() Config {
	return Config{AccessCycles: 130, CyclesPer8B: 4, BlockBytes: 64, WireDelay: 0}
}

// TransferCycles returns the pipelined occupancy of one block transfer.
func (c Config) TransferCycles() int {
	return c.CyclesPer8B * c.BlockBytes / 8
}

// ReadLatency returns the unloaded latency of one block read, excluding
// wire delay: access + transfer.
func (c Config) ReadLatency() int {
	return c.AccessCycles + c.TransferCycles()
}

// ReadReq is the payload of a MemReadReq packet: where the MemBlock reply
// should go and an opaque protocol cookie passed through unchanged as the
// reply's payload. ReplyPos is the bank position at ReplyTo for
// concentrated topologies (several banks per router); single-bank nodes
// leave it 0. Protocol layers embed the ReadReq in their per-operation
// state and send a pointer, keeping the miss path allocation-free.
type ReadReq struct {
	ReplyTo  topology.NodeID
	ReplyEp  flit.Endpoint
	ReplyPos int16
	Cookie   flit.Payload
}

// ProtocolMessage brands *ReadReq as a member of the protocol message
// catalogue (see flit.Payload).
func (*ReadReq) ProtocolMessage() {}

// Stats counts memory activity.
type Stats struct {
	Reads      uint64
	WriteBacks uint64
	// BusyStall accumulates cycles requests waited for the pipelined port.
	BusyStall uint64
}

type pendingReply struct {
	sendAt int64
	pkt    *flit.Packet
}

// Memory is the off-chip memory endpoint and component.
type Memory struct {
	cfg  Config
	k    *sim.Kernel
	kid  int
	net  *network.Network
	node topology.NodeID // router hosting the memory controller

	portFree int64
	replies  []pendingReply
	stats    Stats
}

// New attaches a memory to the topology's memory router and registers it.
func New(k *sim.Kernel, net *network.Network, cfg Config) *Memory {
	m := &Memory{cfg: cfg, k: k, net: net, node: net.Topo.Mem}
	if net.Topo.MemWireDelay > 0 && cfg.WireDelay == 0 {
		m.cfg.WireDelay = net.Topo.MemWireDelay
	}
	m.kid = k.Register(m)
	net.Attach(m.node, flit.ToMem, m)
	return m
}

// Node returns the router the memory controller attaches to.
func (m *Memory) Node() topology.NodeID { return m.node }

// Stats returns a copy of the counters.
func (m *Memory) Stats() Stats { return m.stats }

// Deliver consumes a memory-bound packet.
func (m *Memory) Deliver(pkt *flit.Packet, now int64) {
	switch pkt.Kind {
	case flit.MemReadReq:
		req, ok := pkt.Payload.(*ReadReq)
		if !ok {
			panic(fmt.Sprintf("mem: MemReadReq without ReadReq payload: %v", pkt))
		}
		m.stats.Reads++
		// Request reaches the pins after the controller's wire delay;
		// the pipelined port serializes transfers.
		arrive := now + int64(m.cfg.WireDelay)
		start := arrive
		if start < m.portFree {
			m.stats.BusyStall += uint64(m.portFree - start)
			start = m.portFree
		}
		m.portFree = start + int64(m.cfg.TransferCycles())
		ready := start + int64(m.cfg.ReadLatency()) + int64(m.cfg.WireDelay)
		// Attribute the full service span (wire both ways + port stall +
		// access) to the requesting operation's latency breakdown.
		if c, ok := req.Cookie.(interface{ AddMemCycles(int64) }); ok {
			c.AddMemCycles(ready - now)
		}
		reply := &flit.Packet{
			Kind: flit.MemBlock, Src: m.node, Dst: req.ReplyTo,
			DstEp: req.ReplyEp, DstPos: req.ReplyPos,
			Addr: pkt.Addr, Payload: req.Cookie,
		}
		m.replies = append(m.replies, pendingReply{sendAt: ready, pkt: reply})
		m.k.WakeAt(ready, m.kid)
	case flit.WriteBack:
		m.stats.WriteBacks++
		arrive := now + int64(m.cfg.WireDelay)
		start := arrive
		if start < m.portFree {
			m.stats.BusyStall += uint64(m.portFree - start)
			start = m.portFree
		}
		m.portFree = start + int64(m.cfg.TransferCycles())
	default:
		panic(fmt.Sprintf("mem: unexpected packet %v", pkt))
	}
}

// Tick sends replies whose time has come.
func (m *Memory) Tick(now int64) bool {
	rest := m.replies[:0]
	for _, r := range m.replies {
		if r.sendAt <= now {
			m.net.Send(r.pkt, now)
		} else {
			rest = append(rest, r)
		}
	}
	m.replies = rest
	return false // parked; WakeAt re-arms per reply
}

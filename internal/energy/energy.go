// Package energy estimates the energy consumed by a networked cache run —
// the analysis the paper lists as future work ("another direction for
// future work is energy consumption analysis of the networked cache
// systems"). It is an activity-based model: every flit-hop pays link +
// switch energy, every buffered flit pays an SRAM write/read pair, every
// bank access pays a capacity-scaled array access, and every off-chip
// block transfer pays DRAM energy.
//
// Absolute joules are indicative (65 nm-era constants); the model's value
// is comparative — e.g. the halo designs move far fewer flit-hops per
// access than the mesh, so their network energy collapses along with
// their network area.
package energy

import (
	"fmt"
	"math"
	"sort"
)

// Model holds per-event energies in picojoules.
type Model struct {
	FlitHopPJ  float64 // one flit through one link + crossbar
	FlitBufPJ  float64 // one flit written to and read from a VC buffer
	Bank64KBPJ float64 // one access to a 64 KB bank array
	BankExp    float64 // capacity exponent for larger banks
	MemBlockPJ float64 // one 64 B block to/from off-chip memory
}

// DefaultModel returns 65 nm-flavored constants.
func DefaultModel() Model {
	return Model{
		FlitHopPJ:  50,    // 128-bit flit, ~1 mm link + switch
		FlitBufPJ:  20,    // 128-bit SRAM write + read
		Bank64KBPJ: 400,   // Cacti-era 64 KB read
		BankExp:    0.5,   // access energy grows sublinearly with capacity
		MemBlockPJ: 15000, // off-chip 64 B transfer
	}
}

// BankAccessPJ returns the energy of one access to a bank of the given
// capacity.
func (m Model) BankAccessPJ(sizeKB int) float64 {
	return m.Bank64KBPJ * math.Pow(float64(sizeKB)/64, m.BankExp)
}

// Activity is the event counts of one run, harvested from the simulator's
// statistics.
type Activity struct {
	FlitHops uint64 // router.Stats.FlitsRouted
	// BankAccesses maps bank capacity (KB) to access count.
	BankAccesses map[int]uint64
	MemBlocks    uint64 // reads + writebacks
	Accesses     uint64 // CPU-visible L2 accesses (for per-access figures)
}

// Report is the energy split of one run.
type Report struct {
	NetworkPJ float64
	BankPJ    float64
	MemoryPJ  float64
	Accesses  uint64
}

// TotalPJ returns the summed energy.
func (r Report) TotalPJ() float64 { return r.NetworkPJ + r.BankPJ + r.MemoryPJ }

// PerAccessNJ returns nanojoules per L2 access.
func (r Report) PerAccessNJ() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return r.TotalPJ() / float64(r.Accesses) / 1000
}

// NetworkShare returns the network's fraction of total energy.
func (r Report) NetworkShare() float64 {
	if r.TotalPJ() == 0 {
		return 0
	}
	return r.NetworkPJ / r.TotalPJ()
}

func (r Report) String() string {
	return fmt.Sprintf("%.1f nJ/access (network %.0f%%, banks %.0f%%, memory %.0f%%)",
		r.PerAccessNJ(), 100*r.NetworkShare(),
		100*r.BankPJ/r.TotalPJ(), 100*r.MemoryPJ/r.TotalPJ())
}

// Estimate converts activity counts to energy.
func (m Model) Estimate(a Activity) Report {
	rep := Report{Accesses: a.Accesses}
	rep.NetworkPJ = float64(a.FlitHops) * (m.FlitHopPJ + m.FlitBufPJ)
	// Sum bank sizes in sorted order: float addition is not associative,
	// and ranging the map directly made the low bits of BankPJ depend on
	// Go's randomized map iteration — the one nondeterministic result
	// field in an otherwise bit-reproducible simulator.
	kbs := make([]int, 0, len(a.BankAccesses))
	for kb := range a.BankAccesses {
		kbs = append(kbs, kb)
	}
	sort.Ints(kbs)
	for _, kb := range kbs {
		rep.BankPJ += float64(a.BankAccesses[kb]) * m.BankAccessPJ(kb)
	}
	rep.MemoryPJ = float64(a.MemBlocks) * m.MemBlockPJ
	return rep
}

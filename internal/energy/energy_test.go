package energy

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestBankAccessScaling(t *testing.T) {
	m := DefaultModel()
	if got := m.BankAccessPJ(64); got != m.Bank64KBPJ {
		t.Fatalf("64KB access = %v", got)
	}
	// Sublinear: a 512 KB access costs less than 8x a 64 KB access.
	r := m.BankAccessPJ(512) / m.BankAccessPJ(64)
	if r <= 1 || r >= 8 {
		t.Fatalf("512/64 energy ratio = %v, want in (1, 8)", r)
	}
	if math.Abs(r-math.Sqrt(8)) > 0.01 {
		t.Fatalf("exponent 0.5 should give sqrt(8), got %v", r)
	}
}

func TestEstimateSplit(t *testing.T) {
	m := Model{FlitHopPJ: 10, FlitBufPJ: 5, Bank64KBPJ: 100, BankExp: 0.5, MemBlockPJ: 1000}
	rep := m.Estimate(Activity{
		FlitHops:     20,
		BankAccesses: map[int]uint64{64: 3},
		MemBlocks:    2,
		Accesses:     4,
	})
	if rep.NetworkPJ != 20*15 {
		t.Fatalf("network = %v", rep.NetworkPJ)
	}
	if rep.BankPJ != 300 {
		t.Fatalf("bank = %v", rep.BankPJ)
	}
	if rep.MemoryPJ != 2000 {
		t.Fatalf("memory = %v", rep.MemoryPJ)
	}
	if got := rep.TotalPJ(); got != 300+300+2000 {
		t.Fatalf("total = %v", got)
	}
	if got := rep.PerAccessNJ(); math.Abs(got-2600.0/4/1000) > 1e-12 {
		t.Fatalf("per access = %v", got)
	}
	if s := rep.String(); !strings.Contains(s, "nJ/access") {
		t.Fatalf("String() = %q", s)
	}
}

func TestEmptyReport(t *testing.T) {
	var r Report
	if r.PerAccessNJ() != 0 || r.NetworkShare() != 0 {
		t.Fatal("empty report must read zero")
	}
}

func TestEstimateNonNegativeProperty(t *testing.T) {
	m := DefaultModel()
	if err := quick.Check(func(hops, banks, mems, accs uint32) bool {
		rep := m.Estimate(Activity{
			FlitHops:     uint64(hops),
			BankAccesses: map[int]uint64{64: uint64(banks), 512: uint64(banks / 2)},
			MemBlocks:    uint64(mems),
			Accesses:     uint64(accs),
		})
		return rep.TotalPJ() >= 0 && rep.NetworkShare() >= 0 && rep.NetworkShare() <= 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

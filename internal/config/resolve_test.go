package config

import (
	"strings"
	"testing"
)

func TestResolveByID(t *testing.T) {
	for _, want := range Designs() {
		d, err := Resolve(want.ID, nil)
		if err != nil {
			t.Fatalf("Resolve(%q): %v", want.ID, err)
		}
		if d.ID != want.ID || d.Description != want.Description {
			t.Fatalf("Resolve(%q) returned design %q", want.ID, d.ID)
		}
	}
}

func TestResolveUnknownID(t *testing.T) {
	if _, err := Resolve("Z", nil); err == nil || !strings.Contains(err.Error(), "unknown design") {
		t.Fatalf("Resolve(Z): got %v, want unknown-design error", err)
	}
	if _, err := Resolve("", nil); err == nil {
		t.Fatal("Resolve(\"\"): expected an error")
	}
}

func TestResolveOverrideWins(t *testing.T) {
	ad, err := DesignByID("F")
	if err != nil {
		t.Fatal(err)
	}
	ad.ID = "F-custom"
	// The id names a different (and valid) design; the override must win.
	d, err := Resolve("A", &ad)
	if err != nil {
		t.Fatal(err)
	}
	if d.ID != "F-custom" {
		t.Fatalf("override lost: resolved %q", d.ID)
	}
	if d == &ad {
		t.Fatal("Resolve returned the caller's pointer, not a copy")
	}
	d.ID = "mutated"
	if ad.ID != "F-custom" {
		t.Fatal("mutating the resolved design changed the caller's override")
	}
}

func TestResolveValidatesOverride(t *testing.T) {
	bad, err := DesignByID("A")
	if err != nil {
		t.Fatal(err)
	}
	bad.Banks = nil
	if _, err := Resolve("", &bad); err == nil {
		t.Fatal("Resolve accepted an override with no banks")
	}
	short, _ := DesignByID("A")
	short.Banks = short.Banks[:3] // 3 bank specs for 16 rows
	if _, err := Resolve("", &short); err == nil {
		t.Fatal("Resolve accepted a bank/row mismatch")
	}
}

// Package config defines the six evaluated network designs of Table 3 and
// the Table 1 system parameters, and builds their topologies.
//
// Every design is a 16 MB L2: 256 x 64 KB banks (A, B, E), 64 x 256 KB
// banks (C), or 16 columns of {64,64,128,256,512} KB non-uniform banks
// (D, F). All keep 16 bank-set columns of total associativity 16 and 1024
// sets per bank, so one address map fits all.
package config

import (
	"fmt"

	"nucanet/internal/bank"
	"nucanet/internal/router"
	"nucanet/internal/topology"
	"nucanet/internal/trace"
)

// Design is one row of Table 3: a topology recipe plus the bank sizes of
// one column.
type Design struct {
	ID          string
	Description string

	Kind topology.Kind
	// Mesh parameters.
	W, H        int
	CoreX, MemX int
	HorizDelay  int
	VertDelay   []int
	// Halo parameters.
	Spikes, SpikeLen int
	SpikeDelay       []int
	MemWireDelay     int

	// Banks lists the bank specs of one column, MRU to LRU position.
	Banks []bank.Spec

	Router router.Config
}

// Build constructs the design's topology.
func (d Design) Build() *topology.Topology {
	switch d.Kind {
	case topology.Mesh:
		return topology.NewMesh(topology.MeshSpec{
			W: d.W, H: d.H, CoreX: d.CoreX, MemX: d.MemX,
			HorizDelay: d.HorizDelay, VertDelay: d.VertDelay,
		})
	case topology.SimplifiedMesh:
		return topology.NewSimplifiedMesh(topology.MeshSpec{
			W: d.W, H: d.H, CoreX: d.CoreX, MemX: d.MemX,
			HorizDelay: d.HorizDelay, VertDelay: d.VertDelay,
		})
	case topology.MinimalMesh:
		return topology.NewMinimalMesh(topology.MeshSpec{
			W: d.W, H: d.H, CoreX: d.CoreX, MemX: d.MemX,
			HorizDelay: d.HorizDelay, VertDelay: d.VertDelay,
		})
	case topology.Halo:
		return topology.NewHalo(topology.HaloSpec{
			Spikes: d.Spikes, Length: d.SpikeLen,
			LinkDelay: d.SpikeDelay, MemWireDelay: d.MemWireDelay,
		})
	}
	panic(fmt.Sprintf("config: unknown kind %v", d.Kind))
}

// Columns returns the number of bank-set columns.
func (d Design) Columns() int {
	if d.Kind == topology.Halo {
		return d.Spikes
	}
	return d.W
}

// Ways returns the total bank-set associativity.
func (d Design) Ways() int {
	total := 0
	for _, b := range d.Banks {
		total += b.Ways
	}
	return total
}

// CapacityKB returns the total L2 capacity.
func (d Design) CapacityKB() int {
	per := 0
	for _, b := range d.Banks {
		per += b.SizeKB
	}
	return per * d.Columns()
}

// AddrMap returns the address decomposition for this design.
func (d Design) AddrMap() trace.AddrMap {
	return trace.AddrMap{Columns: d.Columns(), Sets: d.Banks[0].Sets()}
}

// uniform64 is sixteen 64 KB direct-mapped banks per column.
func uniform64(n int) []bank.Spec {
	out := make([]bank.Spec, n)
	for i := range out {
		out[i] = bank.Spec{SizeKB: 64, Ways: 1}
	}
	return out
}

// nonUniform is the Design D/F column: two 1-way 64 KB banks, one 2-way
// 128 KB, one 4-way 256 KB, one 8-way 512 KB — 16 ways total.
func nonUniform() []bank.Spec {
	return []bank.Spec{
		{SizeKB: 64, Ways: 1},
		{SizeKB: 64, Ways: 1},
		{SizeKB: 128, Ways: 2},
		{SizeKB: 256, Ways: 4},
		{SizeKB: 512, Ways: 8},
	}
}

// Designs returns Table 3: the six evaluated configurations.
func Designs() []Design {
	rc := router.DefaultConfig()
	return []Design{
		{
			ID: "A", Description: "16x16 mesh, uniform 64KB banks (baseline)",
			Kind: topology.Mesh, W: 16, H: 16, CoreX: 7, MemX: 8,
			HorizDelay: 1, VertDelay: []int{1},
			Banks: uniform64(16), Router: rc,
		},
		{
			ID: "B", Description: "16x16 simplified mesh (XYX), uniform 64KB banks",
			Kind: topology.SimplifiedMesh, W: 16, H: 16, CoreX: 7, MemX: 7,
			HorizDelay: 1, VertDelay: []int{1},
			Banks: uniform64(16), Router: rc,
		},
		{
			ID: "C", Description: "16x4 simplified mesh, uniform 256KB banks",
			Kind: topology.SimplifiedMesh, W: 16, H: 4, CoreX: 7, MemX: 7,
			HorizDelay: 2, VertDelay: []int{2},
			Banks: []bank.Spec{
				{SizeKB: 256, Ways: 4}, {SizeKB: 256, Ways: 4},
				{SizeKB: 256, Ways: 4}, {SizeKB: 256, Ways: 4},
			},
			Router: rc,
		},
		{
			ID: "D", Description: "16x5 simplified mesh, non-uniform banks",
			Kind: topology.SimplifiedMesh, W: 16, H: 5, CoreX: 7, MemX: 7,
			HorizDelay: 3, VertDelay: []int{0, 1, 2, 2, 3},
			Banks: nonUniform(), Router: rc,
		},
		{
			ID: "E", Description: "16-spike halo, spike length 16, uniform 64KB banks",
			Kind: topology.Halo, Spikes: 16, SpikeLen: 16,
			SpikeDelay: []int{1}, MemWireDelay: 16,
			Banks: uniform64(16), Router: rc,
		},
		{
			ID: "F", Description: "16-spike halo, spike length 5, non-uniform banks",
			Kind: topology.Halo, Spikes: 16, SpikeLen: 5,
			SpikeDelay: []int{1, 1, 2, 2, 3}, MemWireDelay: 9,
			Banks: nonUniform(), Router: rc,
		},
	}
}

// DesignByID looks up one of A-F.
func DesignByID(id string) (Design, error) {
	for _, d := range Designs() {
		if d.ID == id {
			return d, nil
		}
	}
	return Design{}, fmt.Errorf("config: unknown design %q", id)
}

// Resolve unifies the two ways a caller names a design — a Table 3 id or
// an ad-hoc override — into one validated configuration. The override
// wins when non-nil (its contents are validated, catching malformed
// ad-hoc designs like the power-gating sweep's truncated columns before
// they reach the simulator); otherwise the id is looked up in Table 3.
// The returned Design is a private copy: mutating it does not affect the
// caller's override or the Table 3 catalogue.
func Resolve(id string, override *Design) (*Design, error) {
	var d Design
	if override != nil {
		d = *override
	} else {
		var err error
		if d, err = DesignByID(id); err != nil {
			return nil, err
		}
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Validate checks a design's internal consistency.
func (d Design) Validate() error {
	if len(d.Banks) == 0 {
		return fmt.Errorf("config %s: no banks", d.ID)
	}
	rows := d.H
	if d.Kind == topology.Halo {
		rows = d.SpikeLen
	}
	if len(d.Banks) != rows {
		return fmt.Errorf("config %s: %d bank specs for %d rows", d.ID, len(d.Banks), rows)
	}
	sets := d.Banks[0].Sets()
	for _, b := range d.Banks {
		if b.Sets() != sets {
			return fmt.Errorf("config %s: bank %v has %d sets, want %d", d.ID, b, b.Sets(), sets)
		}
	}
	topo := d.Build()
	if err := topo.Validate(); err != nil {
		return fmt.Errorf("config %s: %v", d.ID, err)
	}
	return nil
}

// Package config defines the six evaluated network designs of Table 3 and
// the Table 1 system parameters, and builds their topologies.
//
// Every design is a 16 MB L2: 256 x 64 KB banks (A, B, E), 64 x 256 KB
// banks (C), or 16 columns of {64,64,128,256,512} KB non-uniform banks
// (D, F). All keep 16 bank-set columns of total associativity 16 and 1024
// sets per bank, so one address map fits all.
//
// A design names its topology family (the topology package's registry)
// and carries one topology.Params value; Build resolves the name. Beyond
// Table 3, the catalogue carries extra registered-family designs (ring,
// concentrated mesh) reachable through DesignByID but excluded from
// Designs(), so paper table iterations stay exactly A-F.
package config

import (
	"fmt"

	"nucanet/internal/bank"
	"nucanet/internal/router"
	"nucanet/internal/topology"
	"nucanet/internal/trace"
)

// Design is one row of Table 3: a topology recipe plus the bank sizes of
// one column.
type Design struct {
	ID          string
	Description string

	// Topology names the registered topology family ("mesh",
	// "simplified-mesh", "minimal-mesh", "halo", "ring", "cmesh", or any
	// family the embedding program registered); Params feeds its builder.
	Topology string
	Params   topology.Params

	// Banks lists the bank specs of one column, MRU to LRU position.
	Banks []bank.Spec

	Router router.Config
}

// Build constructs the design's topology through the family registry.
func (d Design) Build() (*topology.Topology, error) {
	t, err := topology.Build(d.Topology, d.Params)
	if err != nil {
		return nil, fmt.Errorf("config %s: %w", d.ID, err)
	}
	return t, nil
}

// Columns returns the number of bank-set columns (Params.W for every
// registered family: mesh width, spike count, ring size, cmesh columns).
func (d Design) Columns() int { return d.Params.W }

// Ways returns the total bank-set associativity.
func (d Design) Ways() int {
	total := 0
	for _, b := range d.Banks {
		total += b.Ways
	}
	return total
}

// CapacityKB returns the total L2 capacity.
func (d Design) CapacityKB() int {
	per := 0
	for _, b := range d.Banks {
		per += b.SizeKB
	}
	return per * d.Columns()
}

// AddrMap returns the address decomposition for this design.
func (d Design) AddrMap() trace.AddrMap {
	return trace.AddrMap{Columns: d.Columns(), Sets: d.Banks[0].Sets()}
}

// uniform64 is sixteen 64 KB direct-mapped banks per column.
func uniform64(n int) []bank.Spec {
	out := make([]bank.Spec, n)
	for i := range out {
		out[i] = bank.Spec{SizeKB: 64, Ways: 1}
	}
	return out
}

// nonUniform is the Design D/F column: two 1-way 64 KB banks, one 2-way
// 128 KB, one 4-way 256 KB, one 8-way 512 KB — 16 ways total.
func nonUniform() []bank.Spec {
	return []bank.Spec{
		{SizeKB: 64, Ways: 1},
		{SizeKB: 64, Ways: 1},
		{SizeKB: 128, Ways: 2},
		{SizeKB: 256, Ways: 4},
		{SizeKB: 512, Ways: 8},
	}
}

// Designs returns Table 3: the six evaluated configurations.
func Designs() []Design {
	rc := router.DefaultConfig()
	return []Design{
		{
			ID: "A", Description: "16x16 mesh, uniform 64KB banks (baseline)",
			Topology: "mesh",
			Params: topology.Params{W: 16, H: 16, CoreX: 7, MemX: 8,
				HorizDelay: 1, VertDelay: []int{1}},
			Banks: uniform64(16), Router: rc,
		},
		{
			ID: "B", Description: "16x16 simplified mesh (XYX), uniform 64KB banks",
			Topology: "simplified-mesh",
			Params: topology.Params{W: 16, H: 16, CoreX: 7, MemX: 7,
				HorizDelay: 1, VertDelay: []int{1}},
			Banks: uniform64(16), Router: rc,
		},
		{
			ID: "C", Description: "16x4 simplified mesh, uniform 256KB banks",
			Topology: "simplified-mesh",
			Params: topology.Params{W: 16, H: 4, CoreX: 7, MemX: 7,
				HorizDelay: 2, VertDelay: []int{2}},
			Banks: []bank.Spec{
				{SizeKB: 256, Ways: 4}, {SizeKB: 256, Ways: 4},
				{SizeKB: 256, Ways: 4}, {SizeKB: 256, Ways: 4},
			},
			Router: rc,
		},
		{
			ID: "D", Description: "16x5 simplified mesh, non-uniform banks",
			Topology: "simplified-mesh",
			Params: topology.Params{W: 16, H: 5, CoreX: 7, MemX: 7,
				HorizDelay: 3, VertDelay: []int{0, 1, 2, 2, 3}},
			Banks: nonUniform(), Router: rc,
		},
		{
			ID: "E", Description: "16-spike halo, spike length 16, uniform 64KB banks",
			Topology: "halo",
			Params: topology.Params{W: 16, H: 16,
				VertDelay: []int{1}, MemWireDelay: 16},
			Banks: uniform64(16), Router: rc,
		},
		{
			ID: "F", Description: "16-spike halo, spike length 5, non-uniform banks",
			Topology: "halo",
			Params: topology.Params{W: 16, H: 5,
				VertDelay: []int{1, 1, 2, 2, 3}, MemWireDelay: 9},
			Banks: nonUniform(), Router: rc,
		},
	}
}

// ExtraDesigns returns registered-family configurations beyond Table 3:
// a bidirectional ring and a concentrated mesh. They run the same
// protocols, sweeps, and telemetry as A-F but stay out of Designs() so
// paper-table iterations reproduce exactly the published six rows.
func ExtraDesigns() []Design {
	rc := router.DefaultConfig()
	return []Design{
		{
			ID: "R", Description: "16-node bidirectional ring, one 64KB bank per node",
			Topology: "ring",
			Params: topology.Params{W: 16, H: 1, CoreX: 0, MemX: 8,
				HorizDelay: 1},
			Banks: uniform64(1), Router: rc,
		},
		{
			ID: "G", Description: "4x4 concentrated mesh, 4 banks per router, 64KB banks",
			Topology: "cmesh",
			Params: topology.Params{W: 4, H: 16, CoreX: 1, MemX: 2,
				HorizDelay: 1, VertDelay: []int{1}, Concentration: 4},
			Banks: uniform64(16), Router: rc,
		},
		{
			// CoreX 3 puts the ring dateline on an interior chiplet-1 mesh
			// link, so all four bridges carry through traffic.
			ID: "H2", Description: "2-chiplet hierarchical: two 8x4 meshes + 4-bridge ring, 256KB banks",
			Topology: "hier",
			Params: topology.Params{W: 16, H: 4, CoreX: 3, MemX: 3,
				HorizDelay: 2, VertDelay: []int{2}, Chiplets: 2},
			Banks: []bank.Spec{
				{SizeKB: 256, Ways: 4}, {SizeKB: 256, Ways: 4},
				{SizeKB: 256, Ways: 4}, {SizeKB: 256, Ways: 4},
			},
			Router: rc,
		},
	}
}

// DesignByID looks up a design: A-F from Table 3, or an extra
// registered-family design (R, G).
func DesignByID(id string) (Design, error) {
	for _, d := range Designs() {
		if d.ID == id {
			return d, nil
		}
	}
	for _, d := range ExtraDesigns() {
		if d.ID == id {
			return d, nil
		}
	}
	return Design{}, fmt.Errorf("config: unknown design %q", id)
}

// Resolve unifies the two ways a caller names a design — a catalogue id
// or an ad-hoc override — into one validated configuration. The override
// wins when non-nil (its contents are validated, catching malformed
// ad-hoc designs like the power-gating sweep's truncated columns before
// they reach the simulator); otherwise the id is looked up in the
// catalogue. The returned Design is a private copy: mutating it does not
// affect the caller's override or the catalogue.
func Resolve(id string, override *Design) (*Design, error) {
	var d Design
	if override != nil {
		d = *override
	} else {
		var err error
		if d, err = DesignByID(id); err != nil {
			return nil, err
		}
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Validate checks a design's internal consistency: a buildable topology
// whose column shape matches the bank specs, uniform set counts, and
// structural graph invariants. Malformed designs surface here as errors
// (never panics), so Resolve rejects them before a simulator is built.
func (d Design) Validate() error {
	if len(d.Banks) == 0 {
		return fmt.Errorf("config %s: no banks", d.ID)
	}
	sets := d.Banks[0].Sets()
	for _, b := range d.Banks {
		if b.Sets() != sets {
			return fmt.Errorf("config %s: bank %v has %d sets, want %d", d.ID, b, b.Sets(), sets)
		}
	}
	topo, err := d.Build()
	if err != nil {
		return err
	}
	if len(d.Banks) != topo.Ways() {
		return fmt.Errorf("config %s: %d bank specs for %d column positions", d.ID, len(d.Banks), topo.Ways())
	}
	if err := topo.Validate(); err != nil {
		return fmt.Errorf("config %s: %v", d.ID, err)
	}
	eng, err := router.ByName(d.Router.Engine)
	if err != nil {
		return fmt.Errorf("config %s: %v", d.ID, err)
	}
	if eng.Supports != nil {
		if err := eng.Supports(topo, d.Router); err != nil {
			return fmt.Errorf("config %s: router engine %q cannot run this design: %v", d.ID, eng.Name, err)
		}
	}
	return nil
}

package config

import (
	"testing"

	"nucanet/internal/topology"
)

func TestAllDesignsValid(t *testing.T) {
	ds := Designs()
	if len(ds) != 6 {
		t.Fatalf("designs = %d, want 6 (Table 3)", len(ds))
	}
	for _, d := range ds {
		if err := d.Validate(); err != nil {
			t.Errorf("design %s: %v", d.ID, err)
		}
	}
}

func TestAllDesigns16MB16Way(t *testing.T) {
	for _, d := range Designs() {
		if got := d.CapacityKB(); got != 16*1024 {
			t.Errorf("design %s capacity = %d KB, want 16384", d.ID, got)
		}
		if got := d.Ways(); got != 16 {
			t.Errorf("design %s ways = %d, want 16", d.ID, got)
		}
		if got := d.Columns(); got != 16 {
			t.Errorf("design %s columns = %d, want 16", d.ID, got)
		}
		am := d.AddrMap()
		if am.Sets != 1024 || am.Columns != 16 {
			t.Errorf("design %s addr map = %+v", d.ID, am)
		}
	}
}

func TestDesignTopologies(t *testing.T) {
	want := map[string]string{
		"A": "mesh",
		"B": "simplified-mesh",
		"C": "simplified-mesh",
		"D": "simplified-mesh",
		"E": "halo",
		"F": "halo",
	}
	for _, d := range Designs() {
		if d.Topology != want[d.ID] {
			t.Errorf("design %s topology = %q, want %q", d.ID, d.Topology, want[d.ID])
		}
		if !contains(topology.Names(), d.Topology) {
			t.Errorf("design %s topology %q is not a registered builder", d.ID, d.Topology)
		}
	}
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func TestDesignByID(t *testing.T) {
	d, err := DesignByID("F")
	if err != nil {
		t.Fatal(err)
	}
	if d.Params.H != 5 || d.Params.MemWireDelay != 9 {
		t.Fatalf("design F = %+v", d)
	}
	if _, err := DesignByID("Z"); err == nil {
		t.Fatal("expected error for unknown design")
	}
}

func TestBankCounts(t *testing.T) {
	counts := map[string]int{"A": 256, "B": 256, "C": 64, "D": 80, "E": 256, "F": 80}
	for _, d := range Designs() {
		topo, err := d.Build()
		if err != nil {
			t.Fatal(err)
		}
		if got := topo.NumBanks(); got != counts[d.ID] {
			t.Errorf("design %s banks = %d, want %d", d.ID, got, counts[d.ID])
		}
	}
}

func TestDesignAMemoryAtBottom(t *testing.T) {
	a, _ := DesignByID("A")
	topo, err := a.Build()
	if err != nil {
		t.Fatal(err)
	}
	if topo.Mem == topo.Core {
		t.Fatal("design A memory must be at the bottom row, not at the core")
	}
	b, _ := DesignByID("B")
	tb, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if tb.Mem != tb.Core {
		t.Fatal("design B must co-locate memory with the core")
	}
}

func TestNonUniformColumnLayout(t *testing.T) {
	d, _ := DesignByID("D")
	wantKB := []int{64, 64, 128, 256, 512}
	wantWays := []int{1, 1, 2, 4, 8}
	for i, b := range d.Banks {
		if b.SizeKB != wantKB[i] || b.Ways != wantWays[i] {
			t.Errorf("design D bank %d = %v", i, b)
		}
	}
}

package cpu

import (
	"testing"

	"nucanet/internal/bank"
	"nucanet/internal/cache"
	"nucanet/internal/config"
	"nucanet/internal/router"
	"nucanet/internal/sim"
	"nucanet/internal/topology"
	"nucanet/internal/trace"
)

func testDesign() config.Design {
	banks := make([]bank.Spec, 4)
	for i := range banks {
		banks[i] = bank.Spec{SizeKB: 64, Ways: 1}
	}
	return config.Design{
		ID: "T", Topology: "mesh",
		Params: topology.Params{W: 4, H: 4, CoreX: 2, MemX: 2,
			HorizDelay: 1, VertDelay: []int{1}},
		Banks: banks, Router: router.DefaultConfig(),
	}
}

func runBench(t *testing.T, name string, n int, seed uint64) (Result, *cache.System) {
	t.Helper()
	prof, err := trace.ProfileByName(name)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	sys := cache.MustNew(k, testDesign(), cache.FastLRU, cache.Multicast)
	gen := trace.NewSynthetic(prof, sys.AM, seed)
	sys.Warm(gen.WarmBlocks(sys.Design.Ways()))
	core := New(k, sys, prof, trace.Take(gen, n), DefaultConfig())
	res, err := core.Run(1_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return res, sys
}

func TestIPCBelowPerfect(t *testing.T) {
	res, _ := runBench(t, "gcc", 2000, 1)
	if res.IPC() <= 0 {
		t.Fatal("IPC must be positive")
	}
	if res.IPC() >= res.PerfectIPC {
		t.Fatalf("IPC %.3f cannot exceed perfect %.3f", res.IPC(), res.PerfectIPC)
	}
}

func TestLowAccessRateNearsPerfectIPC(t *testing.T) {
	// mesa touches L2 every ~333 instructions: stalls barely matter.
	res, _ := runBench(t, "mesa", 800, 1)
	if got := res.IPC() / res.PerfectIPC; got < 0.80 {
		t.Fatalf("mesa IPC/perfect = %.3f, want > 0.80", got)
	}
}

func TestHighAccessRateSuffers(t *testing.T) {
	// mcf touches L2 every ~5.5 instructions with a high miss rate.
	mesa, _ := runBench(t, "mesa", 800, 1)
	mcf, _ := runBench(t, "mcf", 2000, 1)
	if mcf.IPC()/mcf.PerfectIPC >= mesa.IPC()/mesa.PerfectIPC {
		t.Fatalf("mcf relative IPC (%.3f) should be below mesa's (%.3f)",
			mcf.IPC()/mcf.PerfectIPC, mesa.IPC()/mesa.PerfectIPC)
	}
}

func TestInstructionAccounting(t *testing.T) {
	prof, _ := trace.ProfileByName("vpr")
	k := sim.NewKernel()
	sys := cache.MustNew(k, testDesign(), cache.FastLRU, cache.Multicast)
	gen := trace.NewSynthetic(prof, sys.AM, 3)
	sys.Warm(gen.WarmBlocks(sys.Design.Ways()))
	accs := trace.Take(gen, 500)
	var wantInstr int64
	for _, a := range accs {
		wantInstr += a.Gap
	}
	core := New(k, sys, prof, accs, DefaultConfig())
	res, err := core.Run(1_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions != wantInstr {
		t.Fatalf("instructions = %d, want %d", res.Instructions, wantInstr)
	}
	if res.Accesses != 500 {
		t.Fatalf("accesses = %d, want 500", res.Accesses)
	}
	if res.Cycles <= 0 {
		t.Fatal("cycles must be positive")
	}
}

func TestDeterministic(t *testing.T) {
	a, _ := runBench(t, "twolf", 700, 9)
	b, _ := runBench(t, "twolf", 700, 9)
	if a.Cycles != b.Cycles || a.Instructions != b.Instructions {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestWindowLimitsOverlap(t *testing.T) {
	// A window of 1 serializes everything; IPC must drop versus 8.
	prof, _ := trace.ProfileByName("mcf")
	run := func(window int) float64 {
		k := sim.NewKernel()
		sys := cache.MustNew(k, testDesign(), cache.FastLRU, cache.Multicast)
		gen := trace.NewSynthetic(prof, sys.AM, 4)
		sys.Warm(gen.WarmBlocks(sys.Design.Ways()))
		cfg := DefaultConfig()
		cfg.Window = window
		core := New(k, sys, prof, trace.Take(gen, 1200), cfg)
		res, err := core.Run(1_000_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return res.IPC()
	}
	if w1, w8 := run(1), run(8); w1 >= w8 {
		t.Fatalf("window 1 IPC %.3f should be below window 8 IPC %.3f", w1, w8)
	}
}

func TestBlockingProbSlowsCore(t *testing.T) {
	prof, _ := trace.ProfileByName("art")
	run := func(p float64) float64 {
		k := sim.NewKernel()
		sys := cache.MustNew(k, testDesign(), cache.FastLRU, cache.Multicast)
		gen := trace.NewSynthetic(prof, sys.AM, 4)
		sys.Warm(gen.WarmBlocks(sys.Design.Ways()))
		cfg := DefaultConfig()
		cfg.BlockingProb = p
		core := New(k, sys, prof, trace.Take(gen, 1500), cfg)
		res, err := core.Run(1_000_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return res.IPC()
	}
	if all, none := run(1.0), run(0.0); all >= none {
		t.Fatalf("fully blocking IPC %.3f should be below non-blocking %.3f", all, none)
	}
}

func TestEmptyAccessListPanics(t *testing.T) {
	prof, _ := trace.ProfileByName("gcc")
	k := sim.NewKernel()
	sys := cache.MustNew(k, testDesign(), cache.FastLRU, cache.Multicast)
	core := New(k, sys, prof, nil, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	core.Start()
}

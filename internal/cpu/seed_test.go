package cpu

import "testing"

// TestCoreSeedZeroIsRoot pins the compatibility contract every
// single-core golden in the repo depends on: core 0's seed — and hence
// its trace and RNG streams — is exactly the root seed.
func TestCoreSeedZeroIsRoot(t *testing.T) {
	for _, root := range []uint64{0, 1, 7, 42, 1 << 40, ^uint64(0)} {
		if got := CoreSeed(root, 0); got != root {
			t.Fatalf("CoreSeed(%d, 0) = %d, want the root unchanged", root, got)
		}
	}
}

// TestCoreSeedDistinct checks the derived seeds collide neither with each
// other nor across nearby roots — the failure mode of the weaker
// root^(i*prime) derivation this replaced.
func TestCoreSeedDistinct(t *testing.T) {
	seen := map[uint64]string{}
	for root := uint64(40); root < 48; root++ {
		for core := 0; core < 16; core++ {
			s := CoreSeed(root, core)
			key := string(rune(root)) + "/" + string(rune(core))
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: (root,core) %s and %s both derive %d", prev, key, s)
			}
			seen[s] = key
		}
	}
}

// TestCoreSeedAvalanche: adjacent cores must differ in roughly half
// their seed bits, not just a few low ones.
func TestCoreSeedAvalanche(t *testing.T) {
	for core := 1; core < 8; core++ {
		x := CoreSeed(42, core) ^ CoreSeed(42, core+1)
		bits := 0
		for ; x != 0; x &= x - 1 {
			bits++
		}
		if bits < 16 {
			t.Fatalf("cores %d/%d differ in only %d seed bits", core, core+1, bits)
		}
	}
}

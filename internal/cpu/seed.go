package cpu

// CoreSeed derives core i's seed from a root seed. Core 0 keeps the root
// unchanged, so every existing single-core golden — which seeded its one
// core with the root directly — reproduces bit-for-bit. Higher cores mix
// the index through a splitmix64 finalizer: a plain `root ^ i*prime`
// keeps the low bits of nearby cores correlated (the generators consume
// seeds bit by bit), whereas the finalizer's avalanche makes every
// derived stream statistically independent of its neighbors.
func CoreSeed(root uint64, core int) uint64 {
	if core == 0 {
		return root
	}
	z := root + uint64(core)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ (z >> 31)
}

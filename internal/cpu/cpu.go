// Package cpu is the trace-driven core model that turns L2 access
// latencies into IPC, substituting for the paper's sim-alpha Alpha 21264.
//
// The core executes instructions at the benchmark's perfect-L2 IPC
// (Table 2) between L2 accesses, keeps at most Window accesses
// outstanding (an MSHR-style limit), and stalls on the fraction of reads
// whose consumers are immediately dependent (BlockingProb). Writes are
// buffered and never stall the core directly. Because every design is
// evaluated with the same core model, relative IPC — the paper's Figure 9
// metric — is preserved.
package cpu

import (
	"fmt"

	"nucanet/internal/cache"
	"nucanet/internal/sim"
	"nucanet/internal/trace"
)

// Config sets the core parameters.
type Config struct {
	Window       int     // max outstanding L2 accesses (MSHRs)
	BlockingProb float64 // fraction of reads that stall the core until data
	Seed         uint64
}

// DefaultConfig returns the model used for all experiments. An Alpha
// 21264's ~80-entry window at these perfect-L2 IPCs (0.3-0.4) covers only
// ~25-30 cycles of load latency — far below any L2 access here — so most
// L2 reads eventually stall the pipeline; BlockingProb 0.6 reflects that
// while leaving some overlap for independent misses.
func DefaultConfig() Config {
	return Config{Window: 8, BlockingProb: 0.6, Seed: 1}
}

// Result summarizes one run.
type Result struct {
	Benchmark    string
	Instructions int64
	Cycles       int64
	Accesses     int64
	PerfectIPC   float64
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// L2 is the cache interface the core drives: the single-core
// cache.System, or a per-core port of a CMP system.
type L2 interface {
	Issue(addr uint64, write bool, done func(*cache.Request, int64)) *cache.Request
}

// Core drives an L2 with a fixed access list.
type Core struct {
	k   *sim.Kernel
	kid int
	cfg Config
	sys L2
	rng *sim.RNG

	prof trace.Profile
	cpi  float64
	accs []trace.Access

	idx         int // next access to issue
	outstanding int
	stalledFull bool
	blockedOn   *cache.Request
	frac        float64
	completed   int
	instrIssued int64
	endCycle    int64
}

// New prepares a core over sys that will replay accs (drawn from a
// generator for prof).
func New(k *sim.Kernel, sys L2, prof trace.Profile, accs []trace.Access, cfg Config) *Core {
	if cfg.Window <= 0 {
		cfg.Window = 8
	}
	c := &Core{
		k: k, cfg: cfg, sys: sys, prof: prof, accs: accs,
		cpi: 1 / prof.PerfectIPC,
		rng: sim.NewRNG(cfg.Seed ^ 0xc0de),
	}
	c.kid = k.Register(c)
	return c
}

// Start arms the first access; call once before running the kernel.
func (c *Core) Start() {
	if len(c.accs) == 0 {
		panic("cpu: empty access list")
	}
	c.k.WakeAt(c.k.Now()+c.gapCycles(c.accs[0].Gap), c.kid)
}

// gapCycles converts an instruction gap to perfect-IPC execute cycles,
// carrying the fractional remainder for exactness over the run.
func (c *Core) gapCycles(gap int64) int64 {
	v := float64(gap)*c.cpi + c.frac
	n := int64(v)
	c.frac = v - float64(n)
	if n < 1 {
		n = 1
	}
	return n
}

// Tick attempts to issue the pending access.
func (c *Core) Tick(now int64) bool {
	c.tryIssue(now)
	return false
}

func (c *Core) tryIssue(now int64) {
	if c.idx >= len(c.accs) || c.blockedOn != nil {
		return
	}
	if c.outstanding >= c.cfg.Window {
		c.stalledFull = true
		return
	}
	a := c.accs[c.idx]
	c.idx++
	c.instrIssued += a.Gap
	c.outstanding++
	req := c.sys.Issue(a.Addr, a.Write, c.onData)
	if !a.Write && c.rng.Bool(c.cfg.BlockingProb) {
		// A dependent load: the core cannot run ahead.
		c.blockedOn = req
		return
	}
	c.scheduleNext(now)
}

func (c *Core) scheduleNext(now int64) {
	if c.idx >= len(c.accs) {
		return
	}
	c.k.WakeAt(now+c.gapCycles(c.accs[c.idx].Gap), c.kid)
}

// onData is the completion callback from the cache controller.
func (c *Core) onData(req *cache.Request, now int64) {
	c.outstanding--
	c.completed++
	if c.completed == len(c.accs) {
		c.endCycle = now
	}
	if req == c.blockedOn {
		c.blockedOn = nil
		if c.stalledFull {
			c.stalledFull = false
			c.tryIssue(now)
		} else {
			c.scheduleNext(now)
		}
		return
	}
	if c.stalledFull {
		c.stalledFull = false
		c.tryIssue(now)
	}
}

// Run executes the whole access list to completion and returns the result.
func (c *Core) Run(maxCycles int64) (Result, error) {
	c.Start()
	if _, idle := c.k.Run(maxCycles); !idle {
		return Result{}, fmt.Errorf("cpu: run did not complete within %d cycles (%d/%d accesses)",
			maxCycles, c.completed, len(c.accs))
	}
	return c.Result()
}

// Result returns the outcome once the kernel has drained. Multi-core
// drivers Start several cores, run the shared kernel to idle, then
// collect each core's Result. It errors if the core has pending accesses.
func (c *Core) Result() (Result, error) {
	if c.completed != len(c.accs) {
		return Result{}, fmt.Errorf("cpu: only %d/%d accesses completed", c.completed, len(c.accs))
	}
	return Result{
		Benchmark:    c.prof.Name,
		Instructions: c.instrIssued,
		Cycles:       c.endCycle,
		Accesses:     int64(len(c.accs)),
		PerfectIPC:   c.prof.PerfectIPC,
	}, nil
}

package network

import (
	"testing"

	"nucanet/internal/flit"
	"nucanet/internal/router"
	"nucanet/internal/sim"
	"nucanet/internal/topology"
)

// TestXYXNoDeadlockUnderSaturation empirically exercises the channel-order
// proof: saturate a simplified mesh with simultaneous downward requests
// and upward replies (the two XYX traffic classes) and require the
// network to drain completely.
func TestXYXNoDeadlockUnderSaturation(t *testing.T) {
	topo := topology.NewSimplifiedMesh(topology.MeshSpec{W: 8, H: 8, CoreX: 3, MemX: 3})
	r := newRig(topo)
	rng := sim.NewRNG(5)
	const N = 400
	for i := 0; i < N; i++ {
		col := rng.Intn(8)
		row := rng.Intn(8)
		n := topo.NodeAt(col, row)
		if i%2 == 0 {
			// Downward 5-flit data (requests, fills).
			p := r.net.NewPacket(flit.ReplaceBlock, topo.Core, n, flit.ToBank, uint64(i))
			r.net.Send(p, int64(i/8))
		} else {
			// Upward replies to the core.
			p := r.net.NewPacket(flit.HitData, n, topo.Core, flit.ToCore, uint64(i))
			r.net.Send(p, int64(i/8))
		}
	}
	r.run(t, 500000)
	st := r.net.Stats()
	if st.PacketsDelivered != N {
		t.Fatalf("delivered %d of %d packets", st.PacketsDelivered, N)
	}
}

// TestHaloHubArbitration drives all 16 spikes through the hub at once.
func TestHaloHubArbitration(t *testing.T) {
	topo := topology.NewHalo(topology.HaloSpec{Spikes: 16, Length: 5})
	r := newRig(topo)
	const per = 10
	for s := 0; s < 16; s++ {
		for i := 0; i < per; i++ {
			// Requests out of the hub and replies back in, concurrently.
			out := r.net.NewPacket(flit.ReadReq, topo.Hub(), topo.Column(s)[4], flit.ToBank, uint64(s*100+i))
			out.PathDeliver = true
			r.net.Send(out, int64(i))
			in := r.net.NewPacket(flit.HitData, topo.Column(s)[2], topo.Hub(), flit.ToCore, uint64(s*100+i))
			r.net.Send(in, int64(i))
		}
	}
	r.run(t, 500000)
	// Every bank of every spike gets `per` multicast deliveries; the
	// core endpoint at the hub gets all replies.
	for s := 0; s < 16; s++ {
		for pos, n := range topo.Column(s) {
			if got := len(r.banks[n].got); got != per {
				t.Fatalf("spike %d pos %d got %d deliveries, want %d", s, pos, got, per)
			}
		}
	}
	if got := len(r.core.got); got != 16*per {
		t.Fatalf("hub core endpoint got %d, want %d", got, 16*per)
	}
}

// TestMinimalMeshRemovesPaperLinkCount checks the Section 4 arithmetic:
// the minimal mesh removes (n-2)^2 of the full mesh's directed links when
// the core and memory columns are adjacent.
func TestMinimalMeshRemovesPaperLinkCount(t *testing.T) {
	for _, n := range []int{4, 8, 16} {
		spec := topology.MeshSpec{W: n, H: n, CoreX: n/2 - 1, MemX: n / 2}
		full := topology.NewMesh(spec).CountLinks()
		minimal := topology.NewMinimalMesh(spec).CountLinks()
		if removed := full - minimal; removed != (n-2)*(n-2) {
			t.Errorf("n=%d: removed %d links, want (n-2)^2 = %d", n, removed, (n-2)*(n-2))
		}
	}
}

func TestMissingEndpointPanics(t *testing.T) {
	topo := topology.NewMesh(topology.MeshSpec{W: 4, H: 4, CoreX: 1, MemX: 2})
	k := sim.NewKernel()
	net := MustNew(k, topo, mustFor(topo), router.DefaultConfig())
	// No endpoints attached: delivery must panic loudly rather than
	// silently dropping protocol packets.
	net.Send(net.NewPacket(flit.ReadReq, topo.Core, topo.NodeAt(1, 3), flit.ToBank, 0), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on missing endpoint")
		}
	}()
	k.Run(1000)
}

// TestInjectionFairness: packets injected to different destinations from
// one node all make progress (no VC starvation at the injection port).
func TestInjectionFairness(t *testing.T) {
	r := newRig(mesh16())
	for i := 0; i < 64; i++ {
		dst := r.topo.NodeAt(i%16, 15)
		r.net.Send(r.net.NewPacket(flit.ReplaceBlock, r.topo.Core, dst, flit.ToBank, uint64(i)), 0)
	}
	r.run(t, 100000)
	for i := 0; i < 16; i++ {
		if got := len(r.banks[r.topo.NodeAt(i, 15)].got); got != 4 {
			t.Fatalf("column %d received %d packets, want 4", i, got)
		}
	}
}

// Package network assembles routers over a topology into a working
// interconnect: it wires links, registers routers with the simulation
// kernel, attaches protocol endpoints (banks, the cache controller, the
// memory controller) to routers, and provides packet injection.
package network

import (
	"fmt"

	"nucanet/internal/flit"
	"nucanet/internal/router"
	"nucanet/internal/routing"
	"nucanet/internal/sim"
	"nucanet/internal/telemetry"
	"nucanet/internal/topology"
)

// Endpoint receives packets ejected at its router.
type Endpoint interface {
	Deliver(pkt *flit.Packet, now int64)
}

// Stats aggregates network-level counters.
type Stats struct {
	PacketsInjected  uint64
	PacketsDelivered uint64
	FlitsInjected    uint64
	Router           router.Stats // summed over all routers
}

// Merge adds o's counters into s, including the per-router rollup.
// Commutative and associative: multi-run aggregates combine in any order.
func (s *Stats) Merge(o Stats) {
	s.PacketsInjected += o.PacketsInjected
	s.PacketsDelivered += o.PacketsDelivered
	s.FlitsInjected += o.FlitsInjected
	s.Router.Merge(o.Router)
}

// Clone returns an independent copy (Stats is a plain value; Clone keeps
// the aggregation API uniform across stats types).
func (s Stats) Clone() Stats { return s }

// Network owns the routers and endpoint bindings of one interconnect.
type Network struct {
	K       *sim.Kernel
	Topo    *topology.Topology
	Alg     routing.Algorithm
	Routers []router.Engine

	eps [][3]Endpoint // [node][flit.Endpoint]
	// pools recycle multicast replica packets: one pool per shard so
	// phase-1 sweeps never share a freelist (length 1 on a sequential
	// kernel). Sharded pools run in deferred mode — see windowFlush.
	pools []*flit.PacketPool
	// staged holds each shard's phase-1 endpoint deliveries; nil on a
	// sequential kernel.
	staged []stagedDeliveries
	// Traffic counters. Per-Network state, mutated only from Send and
	// deliver, both of which run on the goroutine driving this network's
	// kernel — parallel sweeps give every run its own Network, and on a
	// sharded kernel deliveries are staged until the single-threaded
	// window boundary — so these need no synchronization (audited: go
	// test -race plus the engine's determinism regression test in
	// internal/core).
	nextPktID uint64
	injected  uint64
	delivered uint64
	flitsInj  uint64
}

// stagedDelivery is one phase-1 endpoint delivery: kid (the ejecting
// router's kernel id) reconstructs the sequential delivery order at the
// window boundary.
type stagedDelivery struct {
	kid  int
	node topology.NodeID
	pkt  *flit.Packet
}

// stagedDeliveries is one shard's phase-1 delivery mailbox, padded so
// neighboring shards' append-heavy slice headers sit on separate cache
// lines.
type stagedDeliveries struct {
	items []stagedDelivery
	pos   int
	_     [32]byte
}

// New builds and wires a network over topo using alg and router config cfg,
// registering every router with k. The router microarchitecture is
// selected from the registry by cfg.Engine (empty selects the default VC
// wormhole router). Construction fails if the engine name is unknown, the
// routing table cannot be built, the engine's Supports check rejects the
// (topology, config) pair, or — the static safety gate — the routes fail
// the engine's progress proof: blocking engines must pass the
// channel-dependence cycle check (routing.VerifyDeadlockFree), deflecting
// engines the livelock-freedom argument
// (routing.VerifyDeflectionLivelockFree). A configuration that could
// deadlock or livelock is rejected before a single cycle is simulated.
func New(k *sim.Kernel, topo *topology.Topology, alg routing.Algorithm, cfg router.Config) (*Network, error) {
	return NewOpts(k, topo, alg, cfg, BuildOpts{})
}

// BuildOpts tunes network construction for batch evaluation; the zero
// value is the ordinary single-run path.
type BuildOpts struct {
	// Arena, when non-nil, supplies the backing storage every router
	// carves its construction-time state from, laying a batch of
	// networks out contiguously (see router.Arena and internal/fleet).
	Arena *router.Arena
	// Prechecked skips the static progress proof and Supports gate. Only
	// set it when Check already accepted this exact (topology, routing,
	// config) triple — the fleet evaluator verifies once per design and
	// then builds one network per lane.
	Prechecked bool
	// Plan, when non-nil with more than one shard, wires each router to
	// its home shard's kernel facade and routes cut-link interactions
	// through the sharded kernel's window machinery: cut-adjacent
	// routers get wavefront cut waits, endpoint deliveries stage in
	// per-shard mailboxes replayed at window boundaries, and packet
	// recycling defers to the boundary. k must have been built by
	// sim.NewShardedKernel with exactly Plan.Shards shards.
	Plan *topology.Plan
}

// Check runs New's static construction gates — engine lookup, routing
// table precompute, the engine's progress proof (deadlock or livelock
// check), and its Supports test — without building a single router. It
// returns the precomputed table so callers can reuse it across many
// constructions of the same design.
func Check(topo *topology.Topology, alg routing.Algorithm, cfg router.Config) (*routing.Table, error) {
	eng, err := router.ByName(cfg.Engine)
	if err != nil {
		return nil, err
	}
	// Precompute the routing table once so the per-flit hot path is a
	// flat array lookup; idempotent if the caller already passed a table.
	tb, err := routing.Precompute(topo, alg)
	if err != nil {
		return nil, err
	}
	if eng.Deflecting {
		err = routing.VerifyDeflectionLivelockFree(topo, tb, eng.AgeMonotone)
	} else {
		err = routing.VerifyDeadlockFree(topo, tb)
	}
	if err != nil {
		return nil, fmt.Errorf("network: engine %q on %s: %w", eng.Name, topo.Name, err)
	}
	if eng.Supports != nil {
		if err := eng.Supports(topo, cfg); err != nil {
			return nil, fmt.Errorf("network: engine %q does not support topology %s: %w", eng.Name, topo.Name, err)
		}
	}
	return tb, nil
}

// NewOpts is New with batch-construction options (see BuildOpts).
func NewOpts(k *sim.Kernel, topo *topology.Topology, alg routing.Algorithm, cfg router.Config, o BuildOpts) (*Network, error) {
	eng, err := router.ByName(cfg.Engine)
	if err != nil {
		return nil, err
	}
	var tb *routing.Table
	if o.Prechecked {
		if tb, err = routing.Precompute(topo, alg); err != nil {
			return nil, err
		}
	} else if tb, err = Check(topo, alg, cfg); err != nil {
		return nil, err
	}
	plan := o.Plan
	if plan != nil && plan.Shards <= 1 {
		plan = nil
	}
	if plan != nil && k.Shards() != plan.Shards {
		return nil, fmt.Errorf("network: partition plan has %d shards but the kernel has %d", plan.Shards, k.Shards())
	}
	if plan != nil && len(plan.ShardOf) != topo.NumNodes() {
		return nil, fmt.Errorf("network: partition plan covers %d nodes, topology %s has %d", len(plan.ShardOf), topo.Name, topo.NumNodes())
	}
	n := &Network{K: k, Topo: topo, Alg: tb}
	shards := 1
	if plan != nil {
		shards = plan.Shards
	}
	n.pools = make([]*flit.PacketPool, shards)
	for i := range n.pools {
		n.pools[i] = &flit.PacketPool{}
		if plan != nil {
			n.pools[i].SetDeferred(true)
		}
	}
	facade := func(id int) *sim.Kernel {
		if plan == nil {
			return k
		}
		return k.ShardFacade(plan.ShardOf[id])
	}
	n.Routers = make([]router.Engine, topo.NumNodes())
	n.eps = make([][3]Endpoint, topo.NumNodes())
	for id := 0; id < topo.NumNodes(); id++ {
		shard := 0
		if plan != nil {
			shard = plan.ShardOf[id]
		}
		n.Routers[id] = eng.New(id, topo, tb, cfg, facade(id), o.Arena)
		n.Routers[id].SetPool(n.pools[shard])
	}
	for id := 0; id < topo.NumNodes(); id++ {
		for p := 0; p < topo.NumPorts(id); p++ {
			l, ok := topo.Link(id, p)
			if !ok {
				continue
			}
			n.Routers[id].Wire(p, n.Routers[l.To], l.ToPort, l.Delay)
		}
	}
	// Registration order is the node id order either way, so kernel ids —
	// and with them the within-cycle tick order — are independent of the
	// plan.
	for id := 0; id < topo.NumNodes(); id++ {
		node := id
		n.Routers[id].SetKernelID(facade(id).Register(n.Routers[id]))
		if plan == nil {
			n.Routers[id].SetDeliver(func(pkt *flit.Packet, now int64) {
				n.deliver(node, pkt, now)
			})
			continue
		}
		shard := plan.ShardOf[id]
		kid := n.Routers[id].KernelID()
		n.Routers[id].SetDeliver(func(pkt *flit.Packet, now int64) {
			if n.K.ShardPhase() {
				st := &n.staged[shard]
				st.items = append(st.items, stagedDelivery{kid: kid, node: node, pkt: pkt})
				return
			}
			n.deliver(node, pkt, now)
		})
	}
	if plan != nil {
		n.staged = make([]stagedDeliveries, plan.Shards)
		n.wireCutWaits(plan)
		k.SetOnWindow(n.windowFlush)
	}
	return n, nil
}

// wireCutWaits installs the sharded kernel's within-cycle ordering: two
// cross-shard routers must tick in ascending id order — the sequential
// order — whenever their sweeps could touch the same state in one
// cycle. That is the case at distance 1 (a router reads and writes its
// link neighbors' queues, credits, and latches directly) and at
// distance 2 through a common neighbor (two upstream routers pushing
// into the same node both bump its occupancy). Every router in any such
// pair publishes wavefront progress; the higher id of each pair waits
// on the lower.
func (n *Network) wireCutWaits(plan *topology.Plan) {
	nn := n.Topo.NumNodes()
	adj := make([][]int, nn)
	addEdge := func(a, b int) {
		for _, x := range adj[a] {
			if x == b {
				return
			}
		}
		adj[a] = append(adj[a], b)
	}
	for id := 0; id < nn; id++ {
		for p := 0; p < n.Topo.NumPorts(topology.NodeID(id)); p++ {
			if l, ok := n.Topo.Link(topology.NodeID(id), p); ok {
				addEdge(id, int(l.To))
				addEdge(int(l.To), id)
			}
		}
	}
	peers := make([][]bool, nn)
	add := func(a, b int) {
		if a == b || plan.ShardOf[a] == plan.ShardOf[b] {
			return
		}
		if peers[a] == nil {
			peers[a] = make([]bool, nn)
		}
		peers[a][b] = true
	}
	for a := 0; a < nn; a++ {
		for _, b := range adj[a] {
			add(a, b)
			add(b, a)
			for _, c := range adj[a] { // b and c share neighbor a
				add(b, c)
				add(c, b)
			}
		}
	}
	for id := 0; id < nn; id++ {
		if peers[id] == nil {
			continue
		}
		kid := n.Routers[id].KernelID()
		var waits []sim.CutWait
		for p := 0; p < nn; p++ {
			if !peers[id][p] {
				continue
			}
			if pk := n.Routers[p].KernelID(); pk < kid {
				waits = append(waits, sim.CutWait{Shard: plan.ShardOf[p], Kid: pk})
			}
		}
		// Publish progress even with no one to wait on: lower-id cut
		// routers are what higher-id peers in other shards spin on.
		n.K.SetCutWaits(kid, waits)
	}
}

// windowFlush runs at every window boundary of a sharded kernel: it
// replays the deliveries staged during the parallel phase in ejecting-
// router kernel-id order — each shard's mailbox is already ascending,
// so a k-way merge reconstructs exactly the order a sequential sweep
// would have delivered in — then recycles the packets returned during
// the window (deferred so staged deliveries could still read them).
func (n *Network) windowFlush(now int64) {
	for {
		best, bestKid := -1, 0
		for s := range n.staged {
			st := &n.staged[s]
			if st.pos < len(st.items) {
				if kid := st.items[st.pos].kid; best < 0 || kid < bestKid {
					best, bestKid = s, kid
				}
			}
		}
		if best < 0 {
			break
		}
		st := &n.staged[best]
		for st.pos < len(st.items) && st.items[st.pos].kid == bestKid {
			d := st.items[st.pos]
			st.pos++
			n.deliver(d.node, d.pkt, now)
		}
	}
	for s := range n.staged {
		st := &n.staged[s]
		for i := range st.items {
			st.items[i].pkt = nil
		}
		st.items = st.items[:0]
		st.pos = 0
	}
	for _, p := range n.pools {
		p.Flush()
	}
}

// MustNew is New for topology/algorithm pairs the caller knows to be
// valid (tests, examples); it panics on construction errors.
func MustNew(k *sim.Kernel, topo *topology.Topology, alg routing.Algorithm, cfg router.Config) *Network {
	n, err := New(k, topo, alg, cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// SetTelemetry installs the probe collector on every router (nil
// disables all probes). Call before the simulation starts.
func (n *Network) SetTelemetry(c *telemetry.Collector) {
	for _, r := range n.Routers {
		r.SetTelemetry(c)
	}
}

// Attach binds an endpoint to a router for one endpoint class.
func (n *Network) Attach(node topology.NodeID, which flit.Endpoint, ep Endpoint) {
	n.eps[node][which] = ep
}

func (n *Network) deliver(node topology.NodeID, pkt *flit.Packet, now int64) {
	ep := n.eps[node][pkt.DstEp]
	if ep == nil {
		panic(fmt.Sprintf("network: no %v endpoint at node %d for %v", pkt.DstEp, node, pkt))
	}
	n.delivered++
	ep.Deliver(pkt, now)
}

// Send flitizes and injects a packet at its source router. The packet ID
// and injection time are stamped here.
func (n *Network) Send(pkt *flit.Packet, now int64) {
	n.nextPktID++
	pkt.ID = n.nextPktID
	pkt.Injected = now
	n.injected++
	n.flitsInj += uint64(pkt.Flits())
	n.Routers[pkt.Src].Inject(pkt, now)
}

// NewPacket is a convenience constructor for protocol agents.
func (n *Network) NewPacket(kind flit.Kind, src, dst topology.NodeID, ep flit.Endpoint, addr uint64) *flit.Packet {
	return &flit.Packet{Kind: kind, Src: src, Dst: dst, DstEp: ep, Addr: addr}
}

// InFlight returns the number of flits buffered anywhere in the network.
// Zero after quiescence — the conservation invariant checked by tests.
func (n *Network) InFlight() int {
	total := 0
	for _, r := range n.Routers {
		total += r.Occupancy()
	}
	return total
}

// PoolStats returns the replica packet pools' summed accounting. After
// the network quiesces every replica has been returned: Live == 0 (the
// leak invariant checked by tests). A replica may be minted by one
// shard's pool and returned to another's; the sums still balance.
func (n *Network) PoolStats() flit.PoolStats {
	var s flit.PoolStats
	for _, p := range n.pools {
		ps := p.Stats()
		s.Gets += ps.Gets
		s.Puts += ps.Puts
		s.Allocated += ps.Allocated
	}
	s.Live = s.Gets - s.Puts
	return s
}

// Stats sums per-router counters with the network totals. Delivered counts
// include multicast replicas (one delivery per bank reached).
func (n *Network) Stats() Stats {
	s := Stats{
		PacketsInjected:  n.injected,
		PacketsDelivered: n.delivered,
		FlitsInjected:    n.flitsInj,
	}
	for _, r := range n.Routers {
		s.Router.Merge(r.Stats())
	}
	return s
}

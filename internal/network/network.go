// Package network assembles routers over a topology into a working
// interconnect: it wires links, registers routers with the simulation
// kernel, attaches protocol endpoints (banks, the cache controller, the
// memory controller) to routers, and provides packet injection.
package network

import (
	"fmt"

	"nucanet/internal/flit"
	"nucanet/internal/router"
	"nucanet/internal/routing"
	"nucanet/internal/sim"
	"nucanet/internal/telemetry"
	"nucanet/internal/topology"
)

// Endpoint receives packets ejected at its router.
type Endpoint interface {
	Deliver(pkt *flit.Packet, now int64)
}

// Stats aggregates network-level counters.
type Stats struct {
	PacketsInjected  uint64
	PacketsDelivered uint64
	FlitsInjected    uint64
	Router           router.Stats // summed over all routers
}

// Merge adds o's counters into s, including the per-router rollup.
// Commutative and associative: multi-run aggregates combine in any order.
func (s *Stats) Merge(o Stats) {
	s.PacketsInjected += o.PacketsInjected
	s.PacketsDelivered += o.PacketsDelivered
	s.FlitsInjected += o.FlitsInjected
	s.Router.Merge(o.Router)
}

// Clone returns an independent copy (Stats is a plain value; Clone keeps
// the aggregation API uniform across stats types).
func (s Stats) Clone() Stats { return s }

// Network owns the routers and endpoint bindings of one interconnect.
type Network struct {
	K       *sim.Kernel
	Topo    *topology.Topology
	Alg     routing.Algorithm
	Routers []router.Engine

	eps  [][3]Endpoint    // [node][flit.Endpoint]
	pool *flit.PacketPool // recycles multicast replica packets; one per run
	// Traffic counters. Per-Network state, mutated only from Send and
	// deliver, both of which run on the goroutine driving this network's
	// kernel — parallel sweeps give every run its own Network, so these
	// need no synchronization (audited: go test -race plus the engine's
	// determinism regression test in internal/core).
	nextPktID uint64
	injected  uint64
	delivered uint64
	flitsInj  uint64
}

// New builds and wires a network over topo using alg and router config cfg,
// registering every router with k. The router microarchitecture is
// selected from the registry by cfg.Engine (empty selects the default VC
// wormhole router). Construction fails if the engine name is unknown, the
// routing table cannot be built, the engine's Supports check rejects the
// (topology, config) pair, or — the static safety gate — the routes fail
// the engine's progress proof: blocking engines must pass the
// channel-dependence cycle check (routing.VerifyDeadlockFree), deflecting
// engines the livelock-freedom argument
// (routing.VerifyDeflectionLivelockFree). A configuration that could
// deadlock or livelock is rejected before a single cycle is simulated.
func New(k *sim.Kernel, topo *topology.Topology, alg routing.Algorithm, cfg router.Config) (*Network, error) {
	return NewOpts(k, topo, alg, cfg, BuildOpts{})
}

// BuildOpts tunes network construction for batch evaluation; the zero
// value is the ordinary single-run path.
type BuildOpts struct {
	// Arena, when non-nil, supplies the backing storage every router
	// carves its construction-time state from, laying a batch of
	// networks out contiguously (see router.Arena and internal/fleet).
	Arena *router.Arena
	// Prechecked skips the static progress proof and Supports gate. Only
	// set it when Check already accepted this exact (topology, routing,
	// config) triple — the fleet evaluator verifies once per design and
	// then builds one network per lane.
	Prechecked bool
}

// Check runs New's static construction gates — engine lookup, routing
// table precompute, the engine's progress proof (deadlock or livelock
// check), and its Supports test — without building a single router. It
// returns the precomputed table so callers can reuse it across many
// constructions of the same design.
func Check(topo *topology.Topology, alg routing.Algorithm, cfg router.Config) (*routing.Table, error) {
	eng, err := router.ByName(cfg.Engine)
	if err != nil {
		return nil, err
	}
	// Precompute the routing table once so the per-flit hot path is a
	// flat array lookup; idempotent if the caller already passed a table.
	tb, err := routing.Precompute(topo, alg)
	if err != nil {
		return nil, err
	}
	if eng.Deflecting {
		err = routing.VerifyDeflectionLivelockFree(topo, tb, eng.AgeMonotone)
	} else {
		err = routing.VerifyDeadlockFree(topo, tb)
	}
	if err != nil {
		return nil, fmt.Errorf("network: engine %q on %s: %w", eng.Name, topo.Name, err)
	}
	if eng.Supports != nil {
		if err := eng.Supports(topo, cfg); err != nil {
			return nil, fmt.Errorf("network: engine %q does not support topology %s: %w", eng.Name, topo.Name, err)
		}
	}
	return tb, nil
}

// NewOpts is New with batch-construction options (see BuildOpts).
func NewOpts(k *sim.Kernel, topo *topology.Topology, alg routing.Algorithm, cfg router.Config, o BuildOpts) (*Network, error) {
	eng, err := router.ByName(cfg.Engine)
	if err != nil {
		return nil, err
	}
	var tb *routing.Table
	if o.Prechecked {
		if tb, err = routing.Precompute(topo, alg); err != nil {
			return nil, err
		}
	} else if tb, err = Check(topo, alg, cfg); err != nil {
		return nil, err
	}
	n := &Network{K: k, Topo: topo, Alg: tb, pool: &flit.PacketPool{}}
	n.Routers = make([]router.Engine, topo.NumNodes())
	n.eps = make([][3]Endpoint, topo.NumNodes())
	for id := 0; id < topo.NumNodes(); id++ {
		n.Routers[id] = eng.New(id, topo, tb, cfg, k, o.Arena)
		n.Routers[id].SetPool(n.pool)
	}
	for id := 0; id < topo.NumNodes(); id++ {
		for p := 0; p < topo.NumPorts(id); p++ {
			l, ok := topo.Link(id, p)
			if !ok {
				continue
			}
			n.Routers[id].Wire(p, n.Routers[l.To], l.ToPort, l.Delay)
		}
	}
	for id := 0; id < topo.NumNodes(); id++ {
		node := id
		n.Routers[id].SetKernelID(k.Register(n.Routers[id]))
		n.Routers[id].SetDeliver(func(pkt *flit.Packet, now int64) {
			n.deliver(node, pkt, now)
		})
	}
	return n, nil
}

// MustNew is New for topology/algorithm pairs the caller knows to be
// valid (tests, examples); it panics on construction errors.
func MustNew(k *sim.Kernel, topo *topology.Topology, alg routing.Algorithm, cfg router.Config) *Network {
	n, err := New(k, topo, alg, cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// SetTelemetry installs the probe collector on every router (nil
// disables all probes). Call before the simulation starts.
func (n *Network) SetTelemetry(c *telemetry.Collector) {
	for _, r := range n.Routers {
		r.SetTelemetry(c)
	}
}

// Attach binds an endpoint to a router for one endpoint class.
func (n *Network) Attach(node topology.NodeID, which flit.Endpoint, ep Endpoint) {
	n.eps[node][which] = ep
}

func (n *Network) deliver(node topology.NodeID, pkt *flit.Packet, now int64) {
	ep := n.eps[node][pkt.DstEp]
	if ep == nil {
		panic(fmt.Sprintf("network: no %v endpoint at node %d for %v", pkt.DstEp, node, pkt))
	}
	n.delivered++
	ep.Deliver(pkt, now)
}

// Send flitizes and injects a packet at its source router. The packet ID
// and injection time are stamped here.
func (n *Network) Send(pkt *flit.Packet, now int64) {
	n.nextPktID++
	pkt.ID = n.nextPktID
	pkt.Injected = now
	n.injected++
	n.flitsInj += uint64(pkt.Flits())
	n.Routers[pkt.Src].Inject(pkt, now)
}

// NewPacket is a convenience constructor for protocol agents.
func (n *Network) NewPacket(kind flit.Kind, src, dst topology.NodeID, ep flit.Endpoint, addr uint64) *flit.Packet {
	return &flit.Packet{Kind: kind, Src: src, Dst: dst, DstEp: ep, Addr: addr}
}

// InFlight returns the number of flits buffered anywhere in the network.
// Zero after quiescence — the conservation invariant checked by tests.
func (n *Network) InFlight() int {
	total := 0
	for _, r := range n.Routers {
		total += r.Occupancy()
	}
	return total
}

// PoolStats returns the replica packet pool's accounting. After the
// network quiesces every replica has been returned: Live == 0 (the leak
// invariant checked by tests).
func (n *Network) PoolStats() flit.PoolStats { return n.pool.Stats() }

// Stats sums per-router counters with the network totals. Delivered counts
// include multicast replicas (one delivery per bank reached).
func (n *Network) Stats() Stats {
	s := Stats{
		PacketsInjected:  n.injected,
		PacketsDelivered: n.delivered,
		FlitsInjected:    n.flitsInj,
	}
	for _, r := range n.Routers {
		s.Router.Merge(r.Stats())
	}
	return s
}

package network

import (
	"testing"

	"nucanet/internal/flit"
	"nucanet/internal/router"
	"nucanet/internal/sim"
	"nucanet/internal/topology"
)

// shardDelivery snapshots one delivery's identifying fields at Deliver
// time: packets are pooled, so holding the pointer (like collector
// does) would read recycled contents after the run.
type shardDelivery struct {
	kind flit.Kind
	dst  topology.NodeID
	addr uint64
	at   int64
}

type shardCollector struct {
	got []shardDelivery
}

func (c *shardCollector) Deliver(pkt *flit.Packet, now int64) {
	c.got = append(c.got, shardDelivery{pkt.Kind, pkt.Dst, pkt.Addr, now})
}

// shardRig is the rig pattern with snapshotting collectors, buildable
// on the plain kernel or on a partitioned one (worker path forced),
// where every router lands on its plan shard's facade and cut links
// route through the window machinery.
type shardRig struct {
	k     *sim.Kernel
	topo  *topology.Topology
	net   *Network
	banks []*shardCollector
}

func newShardRig(t *testing.T, topo *topology.Topology, shards int) *shardRig {
	t.Helper()
	k := sim.NewKernel()
	opts := BuildOpts{}
	if shards > 1 {
		plan := topology.Partition(topo, shards)
		if plan.Shards != shards {
			t.Fatalf("Partition produced %d shards, want %d", plan.Shards, shards)
		}
		k = sim.NewShardedKernel(plan.Shards)
		k.SetParallel(true)
		opts.Plan = plan
	}
	n, err := NewOpts(k, topo, mustFor(topo), router.DefaultConfig(), opts)
	if err != nil {
		t.Fatal(err)
	}
	r := &shardRig{k: k, topo: topo, net: n}
	r.banks = make([]*shardCollector, topo.NumNodes())
	for id := 0; id < topo.NumNodes(); id++ {
		r.banks[id] = &shardCollector{}
		n.Attach(id, flit.ToBank, r.banks[id])
	}
	n.Attach(topo.Core, flit.ToCore, &shardCollector{})
	n.Attach(topo.Mem, flit.ToMem, &shardCollector{})
	return r
}

// floodColumns launches one multicast block packet down every column
// plus a spray of unicast reads, then runs to quiescence — enough
// traffic that every cut link carries flits in both directions.
func floodColumns(t *testing.T, r *shardRig) {
	t.Helper()
	for c := 0; c < 16; c++ {
		r.net.Send(&flit.Packet{
			Kind: flit.WriteData, Src: r.topo.Core,
			Dst: r.topo.NodeAt(c, 15), DstEp: flit.ToBank,
			PathDeliver: true,
		}, r.k.Now())
		p := r.net.NewPacket(flit.ReadReq, r.topo.Core, r.topo.NodeAt(c, 7), flit.ToBank, uint64(0x40*(c+1)))
		r.net.Send(p, r.k.Now())
	}
	if _, idle := r.k.Run(4000); !idle {
		t.Fatal("network did not quiesce within 4000 cycles")
	}
	if got := r.net.InFlight(); got != 0 {
		t.Fatalf("in-flight flits after quiescence = %d, want 0", got)
	}
}

// TestShardedNetworkMatchesSequential floods a 16x16 mesh on the plain
// kernel and on 2- and 4-shard partitioned kernels (worker path forced)
// and requires identical per-endpoint delivery sequences — packet kind,
// destination, and arrival cycle — plus identical router statistics.
func TestShardedNetworkMatchesSequential(t *testing.T) {
	seq := newShardRig(t, mesh16(), 1)
	floodColumns(t, seq)
	seqStats := seq.net.Stats()

	for _, shards := range []int{2, 4} {
		sh := newShardRig(t, mesh16(), shards)
		floodColumns(t, sh)
		if got, want := sh.net.Stats(), seqStats; got != want {
			t.Errorf("shards=%d: stats = %+v, want %+v", shards, got, want)
		}
		for id := range sh.banks {
			a, b := seq.banks[id].got, sh.banks[id].got
			if len(a) != len(b) {
				t.Fatalf("shards=%d: bank %d got %d deliveries, sequential %d", shards, id, len(b), len(a))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("shards=%d: bank %d delivery %d = %+v, sequential %+v",
						shards, id, i, b[i], a[i])
				}
			}
		}
		if live := sh.net.PoolStats().Live; live != 0 {
			t.Errorf("shards=%d: %d pooled packets leaked", shards, live)
		}
	}
}

package network

import (
	"testing"

	"nucanet/internal/flit"
	"nucanet/internal/router"
	"nucanet/internal/routing"
	"nucanet/internal/sim"
	"nucanet/internal/topology"
)

// collector records deliveries.
type collector struct {
	got []delivery
}

type delivery struct {
	pkt *flit.Packet
	at  int64
}

func (c *collector) Deliver(pkt *flit.Packet, now int64) {
	c.got = append(c.got, delivery{pkt, now})
}

// rig builds a network with one collector attached as the bank endpoint of
// every node, plus core/mem endpoints at their routers.
type rig struct {
	k     *sim.Kernel
	topo  *topology.Topology
	net   *Network
	banks []*collector
	core  *collector
	mem   *collector
}

func newRig(topo *topology.Topology) *rig {
	k := sim.NewKernel()
	n := MustNew(k, topo, mustFor(topo), router.DefaultConfig())
	r := &rig{k: k, topo: topo, net: n, core: &collector{}, mem: &collector{}}
	r.banks = make([]*collector, topo.NumNodes())
	for id := 0; id < topo.NumNodes(); id++ {
		r.banks[id] = &collector{}
		n.Attach(id, flit.ToBank, r.banks[id])
	}
	n.Attach(topo.Core, flit.ToCore, r.core)
	n.Attach(topo.Mem, flit.ToMem, r.mem)
	return r
}

func (r *rig) run(t *testing.T, budget int64) {
	t.Helper()
	if _, idle := r.k.Run(budget); !idle {
		t.Fatalf("network did not quiesce within %d cycles", budget)
	}
	if got := r.net.InFlight(); got != 0 {
		t.Fatalf("in-flight flits after quiescence = %d, want 0", got)
	}
}

func mustFor(topo *topology.Topology) routing.Algorithm {
	alg, err := routing.For(topo)
	if err != nil {
		panic(err)
	}
	return alg
}

func mesh16() *topology.Topology {
	return topology.NewMesh(topology.MeshSpec{W: 16, H: 16, CoreX: 7, MemX: 8})
}

func TestUnicastZeroLoadLatency(t *testing.T) {
	r := newRig(mesh16())
	dst := r.topo.NodeAt(7, 15)
	p := r.net.NewPacket(flit.ReadReq, r.topo.Core, dst, flit.ToBank, 0x40)
	r.net.Send(p, 0)
	r.run(t, 1000)
	got := r.banks[dst].got
	if len(got) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(got))
	}
	// Single-cycle router: hops + 1 ejection cycle at zero load.
	if got[0].at != 16 {
		t.Fatalf("delivered at %d, want 16 (15 hops + eject)", got[0].at)
	}
	if p.Delivered != 16 || p.Injected != 0 {
		t.Fatalf("packet stamps = %d/%d", p.Injected, p.Delivered)
	}
}

func TestFiveFlitPacketLatency(t *testing.T) {
	r := newRig(mesh16())
	dst := r.topo.NodeAt(7, 15)
	p := r.net.NewPacket(flit.HitData, r.topo.Core, dst, flit.ToBank, 0x40)
	r.net.Send(p, 0)
	r.run(t, 1000)
	// Cut-through endpoint delivery: the head arrives like a 1-flit
	// packet; the 4 body flits drain behind it.
	if got := r.banks[dst].got[0].at; got != 16 {
		t.Fatalf("head delivered at %d, want 16", got)
	}
}

func TestWireDelayAddsLatency(t *testing.T) {
	topo := topology.NewMesh(topology.MeshSpec{W: 4, H: 4, CoreX: 1, MemX: 2, VertDelay: []int{3}})
	r := newRig(topo)
	dst := topo.NodeAt(1, 3)
	p := r.net.NewPacket(flit.ReadReq, topo.Core, dst, flit.ToBank, 0)
	r.net.Send(p, 0)
	r.run(t, 1000)
	// 3 vertical hops of 3 cycles each + eject.
	if got := r.banks[dst].got[0].at; got != 10 {
		t.Fatalf("delivered at %d, want 10", got)
	}
}

func TestSelfDelivery(t *testing.T) {
	r := newRig(mesh16())
	p := r.net.NewPacket(flit.ReadReq, r.topo.Core, r.topo.Core, flit.ToBank, 0)
	r.net.Send(p, 0)
	r.run(t, 100)
	if got := r.banks[r.topo.Core].got[0].at; got != 1 {
		t.Fatalf("self delivery at %d, want 1", got)
	}
}

func TestMulticastColumnDelivery(t *testing.T) {
	r := newRig(mesh16())
	col := 7
	last := r.topo.NodeAt(col, 15)
	p := r.net.NewPacket(flit.ReadReq, r.topo.Core, last, flit.ToBank, 0x1c0)
	p.PathDeliver = true
	r.net.Send(p, 0)
	r.run(t, 1000)

	var prev int64 = -1
	for row := 0; row < 16; row++ {
		n := r.topo.NodeAt(col, row)
		got := r.banks[n].got
		if len(got) != 1 {
			t.Fatalf("row %d: deliveries = %d, want 1", row, len(got))
		}
		if got[0].pkt.Addr != 0x1c0 {
			t.Fatalf("row %d: wrong addr", row)
		}
		if got[0].at < prev {
			t.Fatalf("row %d delivered at %d, before previous %d", row, got[0].at, prev)
		}
		prev = got[0].at
	}
	// The final bank receives the original; earlier rows get replicas at
	// roughly one cycle per hop.
	if final := r.banks[last].got[0].at; final != 16 {
		t.Fatalf("final bank delivered at %d, want 16", final)
	}
	st := r.net.Stats()
	if st.Router.ReplicasSpawned != 15 {
		t.Fatalf("replicas spawned = %d, want 15", st.Router.ReplicasSpawned)
	}
	// Banks off the column must see nothing.
	for row := 0; row < 16; row++ {
		if n := r.topo.NodeAt(3, row); len(r.banks[n].got) != 0 {
			t.Fatalf("off-column bank received a replica")
		}
	}
}

func TestMulticastOnSimplifiedMesh(t *testing.T) {
	topo := topology.NewSimplifiedMesh(topology.MeshSpec{W: 16, H: 16, CoreX: 7, MemX: 7})
	r := newRig(topo)
	last := topo.NodeAt(2, 15)
	p := r.net.NewPacket(flit.ReadReq, topo.Core, last, flit.ToBank, 0x80)
	p.PathDeliver = true
	r.net.Send(p, 0)
	r.run(t, 1000)
	for row := 0; row < 16; row++ {
		if got := r.banks[topo.NodeAt(2, row)].got; len(got) != 1 {
			t.Fatalf("row %d deliveries = %d, want 1", row, len(got))
		}
	}
}

func TestMulticastOnHaloSpike(t *testing.T) {
	topo := topology.NewHalo(topology.HaloSpec{Spikes: 16, Length: 16})
	r := newRig(topo)
	spike := 5
	last := topo.Column(spike)[15]
	p := r.net.NewPacket(flit.ReadReq, topo.Hub(), last, flit.ToBank, 0x140)
	p.PathDeliver = true
	r.net.Send(p, 0)
	r.run(t, 1000)
	for pos, n := range topo.Column(spike) {
		if got := r.banks[n].got; len(got) != 1 {
			t.Fatalf("spike pos %d deliveries = %d, want 1", pos, len(got))
		}
	}
}

func TestManyPacketsConserved(t *testing.T) {
	r := newRig(mesh16())
	const N = 200
	rng := sim.NewRNG(99)
	for i := 0; i < N; i++ {
		dst := rng.Intn(r.topo.NumNodes())
		kind := flit.ReadReq
		if rng.Bool(0.5) {
			kind = flit.ReplaceBlock
		}
		p := r.net.NewPacket(kind, r.topo.Core, dst, flit.ToBank, uint64(i)*64)
		r.net.Send(p, int64(i/4))
	}
	r.run(t, 100000)
	st := r.net.Stats()
	if st.PacketsInjected != N {
		t.Fatalf("injected = %d, want %d", st.PacketsInjected, N)
	}
	if st.PacketsDelivered != N {
		t.Fatalf("delivered = %d, want %d", st.PacketsDelivered, N)
	}
	total := 0
	for _, b := range r.banks {
		total += len(b.got)
	}
	if total != N {
		t.Fatalf("endpoint deliveries = %d, want %d", total, N)
	}
}

func TestContentionSerializesOutput(t *testing.T) {
	// Two 5-flit packets fighting for the same path share link
	// bandwidth: heads arrive staggered, and the network stays busy
	// until all 10 flits drain through the 15-hop path.
	r := newRig(mesh16())
	dst := r.topo.NodeAt(7, 15)
	p1 := r.net.NewPacket(flit.HitData, r.topo.Core, dst, flit.ToBank, 0)
	p2 := r.net.NewPacket(flit.HitData, r.topo.Core, dst, flit.ToBank, 64)
	r.net.Send(p1, 0)
	r.net.Send(p2, 0)
	r.run(t, 1000)
	got := r.banks[dst].got
	if len(got) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(got))
	}
	if got[1].at <= got[0].at {
		t.Fatalf("heads not staggered: %d then %d", got[0].at, got[1].at)
	}
	// Drain time: the second tail needs at least 15 hops + 9 extra
	// flit-times of serialization on the shared links.
	if r.k.Now() < 24 {
		t.Fatalf("network drained at %d, want >= 24 (bandwidth sharing)", r.k.Now())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		r := newRig(mesh16())
		rng := sim.NewRNG(7)
		for i := 0; i < 100; i++ {
			dst := rng.Intn(r.topo.NumNodes())
			p := r.net.NewPacket(flit.ReplaceBlock, r.topo.Core, dst, flit.ToBank, uint64(i))
			p.PathDeliver = false
			r.net.Send(p, int64(i))
		}
		r.run(t, 100000)
		var times []int64
		for _, b := range r.banks {
			for _, d := range b.got {
				times = append(times, d.at, int64(d.pkt.ID))
			}
		}
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different delivery counts across identical runs")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic delivery schedule")
		}
	}
}

func TestCoreAndMemEndpoints(t *testing.T) {
	r := newRig(mesh16())
	p1 := r.net.NewPacket(flit.MissNotify, r.topo.NodeAt(3, 9), r.topo.Core, flit.ToCore, 0)
	p2 := r.net.NewPacket(flit.WriteBack, r.topo.NodeAt(8, 15), r.topo.Mem, flit.ToMem, 0)
	r.net.Send(p1, 0)
	r.net.Send(p2, 0)
	r.run(t, 1000)
	if len(r.core.got) != 1 || r.core.got[0].pkt.Kind != flit.MissNotify {
		t.Fatal("core endpoint did not receive its packet")
	}
	if len(r.mem.got) != 1 || r.mem.got[0].pkt.Kind != flit.WriteBack {
		t.Fatal("mem endpoint did not receive its packet")
	}
}

func TestHeavyMulticastLoadCompletes(t *testing.T) {
	// Saturate one column with multicasts and unicasts; hybrid
	// replication must make progress (possibly with blocked cycles).
	r := newRig(mesh16())
	for i := 0; i < 50; i++ {
		p := r.net.NewPacket(flit.ReadReq, r.topo.Core, r.topo.NodeAt(7, 15), flit.ToBank, uint64(i)*64)
		p.PathDeliver = true
		r.net.Send(p, int64(i))
	}
	r.run(t, 100000)
	for row := 0; row < 16; row++ {
		if got := len(r.banks[r.topo.NodeAt(7, row)].got); got != 50 {
			t.Fatalf("row %d deliveries = %d, want 50", row, got)
		}
	}
	st := r.net.Stats()
	if st.Router.ReplicasSpawned != 50*15 {
		t.Fatalf("replicas = %d, want %d", st.Router.ReplicasSpawned, 50*15)
	}
}

func TestPipelinedRouterIsSlower(t *testing.T) {
	// Ablation knob: a 3-stage pipelined router must triple per-hop cost.
	topo := mesh16()
	k := sim.NewKernel()
	cfg := router.DefaultConfig()
	cfg.Stages = 3
	n := MustNew(k, topo, routing.XY{}, cfg)
	sink := &collector{}
	dst := topo.NodeAt(7, 15)
	for id := 0; id < topo.NumNodes(); id++ {
		n.Attach(id, flit.ToBank, sink)
	}
	p := n.NewPacket(flit.ReadReq, topo.Core, dst, flit.ToBank, 0)
	n.Send(p, 0)
	k.Run(10000)
	if p.Delivered != 16*3 {
		t.Fatalf("3-stage delivery at %d, want 48", p.Delivered)
	}
}

package network

import (
	"strings"
	"testing"

	"nucanet/internal/flit"
	"nucanet/internal/router"
	"nucanet/internal/routing"
	"nucanet/internal/sim"
	"nucanet/internal/topology"
)

// Two deliberately broken engines exercise the construction gates: one
// deflecting engine without an age-monotone arbiter (the livelock
// verifier must reject it) and one whose Supports check refuses every
// topology. Their constructors must never run.
func init() {
	mustNotBuild := func(id topology.NodeID, topo *topology.Topology, tb *routing.Table, cfg router.Config, k *sim.Kernel, ar *router.Arena) router.Engine {
		panic("test engine constructed despite failing its construction gate")
	}
	router.Register(router.Builder{
		Name:        "test-unfair-deflect",
		Description: "deflection without age priority (must be rejected)",
		New:         mustNotBuild,
		Deflecting:  true,
		AgeMonotone: false,
	})
	router.Register(router.Builder{
		Name:        "test-picky",
		Description: "supports nothing (must be rejected)",
		New:         mustNotBuild,
		Supports: func(topo *topology.Topology, cfg router.Config) error {
			return errTestPicky
		},
	})
}

var errTestPicky = &pickyErr{}

type pickyErr struct{}

func (*pickyErr) Error() string { return "this engine supports no topology at all" }

// newRigEngine is newRig with a registry engine selected.
func newRigEngine(topo *topology.Topology, engine string) *rig {
	k := sim.NewKernel()
	cfg := router.DefaultConfig()
	cfg.Engine = engine
	n := MustNew(k, topo, mustFor(topo), cfg)
	r := &rig{k: k, topo: topo, net: n, core: &collector{}, mem: &collector{}}
	r.banks = make([]*collector, topo.NumNodes())
	for id := 0; id < topo.NumNodes(); id++ {
		r.banks[id] = &collector{}
		n.Attach(id, flit.ToBank, r.banks[id])
	}
	n.Attach(topo.Core, flit.ToCore, r.core)
	n.Attach(topo.Mem, flit.ToMem, r.mem)
	return r
}

// TestEngineConstructionGates pins the three descriptive construction
// failures: an unknown engine name, a deflecting engine whose arbiter is
// not age-monotone, and an engine whose Supports check rejects the
// topology. None may reach a router constructor.
func TestEngineConstructionGates(t *testing.T) {
	topo := mesh16()
	alg := mustFor(topo)

	cfg := router.DefaultConfig()
	cfg.Engine = "optical"
	if _, err := New(sim.NewKernel(), topo, alg, cfg); err == nil || !strings.Contains(err.Error(), "unknown engine") {
		t.Errorf("unknown engine: err = %v, want unknown-engine error", err)
	}

	cfg.Engine = "test-unfair-deflect"
	if _, err := New(sim.NewKernel(), topo, alg, cfg); err == nil || !strings.Contains(err.Error(), "age-monotone") {
		t.Errorf("non-age-monotone deflection: err = %v, want livelock rejection", err)
	}

	cfg.Engine = "test-picky"
	if _, err := New(sim.NewKernel(), topo, alg, cfg); err == nil || !strings.Contains(err.Error(), "does not support") {
		t.Errorf("unsupported topology: err = %v, want Supports rejection", err)
	}
}

// TestEnginesCannotMix pins the wiring contract: all engines of one
// network come from one builder, and wiring across microarchitectures
// panics loudly instead of corrupting flow control.
func TestEnginesCannotMix(t *testing.T) {
	topo := mesh16()
	tb, err := routing.Precompute(topo, mustFor(topo))
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel()
	wh, err := router.ByName(router.DefaultEngine)
	if err != nil {
		t.Fatal(err)
	}
	bl, err := router.ByName("bufferless")
	if err != nil {
		t.Fatal(err)
	}
	a := wh.New(0, topo, tb, router.DefaultConfig(), k, nil)
	b := bl.New(1, topo, tb, router.DefaultConfig(), k, nil)
	defer func() {
		if recover() == nil {
			t.Error("wiring a wormhole router to a bufferless router did not panic")
		}
	}()
	a.Wire(topology.PortEast, b, topology.PortWest, 1)
}

// TestBufferlessLivelockBound is the dynamic half of the livelock
// argument (routing.VerifyDeflectionLivelockFree is the static half):
// under bursty saturation from every node, every injected packet must
// eject, and no packet's network time may exceed the age-induction bound
// of packets x diameter cycles. A deflection arbiter that ever let a
// younger packet displace the oldest would blow through the bound (or
// never drain at all).
func TestBufferlessLivelockBound(t *testing.T) {
	r := newRigEngine(mesh16(), "bufferless")
	nodes := r.topo.NumNodes()
	var pkts []*flit.Packet
	// Five waves of all-node crossfire: node i fires at the antipode and
	// at a stride-7 scatter target, with two cycles between waves.
	for wave := 0; wave < 5; wave++ {
		for i := 0; i < nodes; i++ {
			for _, dst := range []int{nodes - 1 - i, (i*7 + 3*wave + 5) % nodes} {
				if dst == i {
					continue
				}
				p := r.net.NewPacket(flit.ReadReq, i, dst, flit.ToBank, uint64(i)*64)
				r.net.Send(p, r.k.Now())
				pkts = append(pkts, p)
			}
		}
		r.k.Step()
		r.k.Step()
	}

	const diameter = 30 // 16x16 mesh: (W-1)+(H-1)
	bound := int64(len(pkts)) * diameter
	if _, idle := r.k.Run(bound); !idle {
		t.Fatalf("bufferless network did not drain %d packets within the %d-cycle livelock bound", len(pkts), bound)
	}
	if got := r.net.InFlight(); got != 0 {
		t.Fatalf("in-flight flits after quiescence = %d, want 0", got)
	}

	var maxLat int64
	for _, p := range pkts {
		if p.Delivered == 0 && p.Dst != p.Src {
			t.Fatalf("packet %v never delivered", p)
		}
		if lat := p.Delivered - p.Injected; lat > maxLat {
			maxLat = lat
		}
	}
	if maxLat > bound {
		t.Fatalf("max packet latency %d exceeds livelock bound %d", maxLat, bound)
	}
	st := r.net.Stats()
	if st.Router.Deflections == 0 {
		t.Fatal("saturation produced no deflections; the test did not exercise misrouting")
	}
	t.Logf("%d packets, max latency %d (bound %d), %d deflections",
		len(pkts), maxLat, bound, st.Router.Deflections)
}

// TestBufferlessMulticastExactlyOnce pins the protocol-critical property
// of source-expanded multicast: a PathDeliver probe reaches the bank of
// every column router exactly once — never skipped, never duplicated —
// even though deflection makes the original's route unpredictable. The
// cache controller counts one response per bank position, so a duplicate
// corrupts the miss protocol and a skip hangs it.
func TestBufferlessMulticastExactlyOnce(t *testing.T) {
	r := newRigEngine(mesh16(), "bufferless")
	col := 7
	last := r.topo.NodeAt(col, 15)
	p := r.net.NewPacket(flit.ReadReq, r.topo.Core, last, flit.ToBank, 0x1c0)
	p.PathDeliver = true
	r.net.Send(p, 0)
	r.run(t, 10000)

	for row := 0; row < 16; row++ {
		n := r.topo.NodeAt(col, row)
		if got := r.banks[n].got; len(got) != 1 {
			t.Fatalf("row %d: deliveries = %d, want exactly 1", row, len(got))
		}
	}
	for row := 0; row < 16; row++ {
		if n := r.topo.NodeAt(3, row); len(r.banks[n].got) != 0 {
			t.Fatalf("off-column bank received a replica")
		}
	}
	st := r.net.Stats()
	if st.Router.ReplicasSpawned != 15 {
		t.Fatalf("replicas spawned = %d, want 15", st.Router.ReplicasSpawned)
	}
	ps := r.net.PoolStats()
	if ps.Live != 0 || ps.Gets != ps.Puts {
		t.Fatalf("replica pool leak: gets=%d puts=%d live=%d", ps.Gets, ps.Puts, ps.Live)
	}
}

// TestRingLiteMulticastExactlyOnce is the same exactly-once pin for
// ring-lite's forward-time replication (the store-and-forward analogue of
// the wormhole's stolen-VC scheme).
func TestRingLiteMulticastExactlyOnce(t *testing.T) {
	r := newRigEngine(mesh16(), "ring-lite")
	col := 7
	last := r.topo.NodeAt(col, 15)
	p := r.net.NewPacket(flit.ReadReq, r.topo.Core, last, flit.ToBank, 0x1c0)
	p.PathDeliver = true
	r.net.Send(p, 0)
	r.run(t, 10000)

	for row := 0; row < 16; row++ {
		n := r.topo.NodeAt(col, row)
		if got := r.banks[n].got; len(got) != 1 {
			t.Fatalf("row %d: deliveries = %d, want exactly 1", row, len(got))
		}
	}
	st := r.net.Stats()
	if st.Router.ReplicasSpawned != 15 {
		t.Fatalf("replicas spawned = %d, want 15", st.Router.ReplicasSpawned)
	}
	ps := r.net.PoolStats()
	if ps.Live != 0 || ps.Gets != ps.Puts {
		t.Fatalf("replica pool leak: gets=%d puts=%d live=%d", ps.Gets, ps.Puts, ps.Live)
	}
}

// TestRingLiteStoreAndForwardSerialization pins the latency model that
// justifies ring-lite's tiny buffers: a multi-flit packet pays the
// (Flits-1)-cycle serialization penalty at every hop, so it must arrive
// strictly later than a single-flit packet over the same path — unlike
// the wormhole router, whose cut-through head arrival is flit-count
// independent.
func TestRingLiteStoreAndForwardSerialization(t *testing.T) {
	lat := func(kind flit.Kind) int64 {
		r := newRigEngine(mesh16(), "ring-lite")
		dst := r.topo.NodeAt(7, 15)
		p := r.net.NewPacket(kind, r.topo.Core, dst, flit.ToBank, 0)
		r.net.Send(p, 0)
		r.run(t, 10000)
		return p.Delivered - p.Injected
	}
	short := lat(flit.ReadReq) // 1 flit
	long := lat(flit.HitData)  // block-sized, multi-flit
	if long <= short {
		t.Fatalf("store-and-forward: %d-cycle block packet not slower than %d-cycle request", long, short)
	}
}

// TestEnginesConserveUnderLoad runs the conservation invariant for both
// new engines over mixed unicast traffic on their natural topologies:
// everything injected is delivered, nothing stays in flight.
func TestEnginesConserveUnderLoad(t *testing.T) {
	cases := []struct {
		name   string
		engine string
		topo   *topology.Topology
	}{
		{"bufferless-mesh", "bufferless", mesh16()},
		{"ring-lite-mesh", "ring-lite", mesh16()},
		{"bufferless-ring", "bufferless", topology.NewRing(topology.RingSpec{N: 16, CoreX: 0, MemX: 8})},
		{"ring-lite-ring", "ring-lite", topology.NewRing(topology.RingSpec{N: 16, CoreX: 0, MemX: 8})},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			r := newRigEngine(tc.topo, tc.engine)
			const N = 200
			rng := sim.NewRNG(99)
			for i := 0; i < N; i++ {
				dst := rng.Intn(r.topo.NumNodes())
				kind := flit.ReadReq
				if rng.Bool(0.5) {
					kind = flit.ReplaceBlock
				}
				p := r.net.NewPacket(kind, r.topo.Core, dst, flit.ToBank, uint64(i)*64)
				r.net.Send(p, int64(i/4))
			}
			r.run(t, 100000)
			st := r.net.Stats()
			if st.PacketsInjected != uint64(N) || st.PacketsDelivered != uint64(N) {
				t.Fatalf("injected=%d delivered=%d, want %d/%d",
					st.PacketsInjected, st.PacketsDelivered, N, N)
			}
		})
	}
}

// Package place encodes topology-placement candidates — which bank
// stack fills each column, where the core and memory controller sit,
// and the link budgets between them — and registers the "placement"
// experiment that searches the space with deterministic simulated
// annealing (cmd/nucaopt drives it). Importing the package links the
// fleet evaluator, so candidate waves score through the lockstep path.
package place

package place

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"nucanet/internal/bank"
	"nucanet/internal/cmp"
	"nucanet/internal/config"
	"nucanet/internal/network"
	"nucanet/internal/router"
	"nucanet/internal/routing"
	"nucanet/internal/sim"
	"nucanet/internal/topology"
)

// Columns is the bank-set column count of every candidate: the paper's
// 16-way address interleave is fixed, the optimizer searches what fills
// each column and where the endpoints sit.
const Columns = 16

// waysTotal is the per-column associativity every candidate must reach:
// with the allowed bank specs each way is 64 KB, so 16 ways per column x
// 16 columns is exactly the paper's 16 MB L2 at 1024 sets per bank.
const waysTotal = 16

// Families lists the topology families the optimizer searches. All three
// appear in Table 3, so the search space is "the paper's designs and
// everything between them": Design A is (mesh, 16x1-way, core 7, mem 8),
// Design C is (simplified-mesh, 4x4-way, core 7), and Design F is (halo,
// [1 1 2 4 8]) — see TestDesignFInSpace.
var Families = []string{"halo", "simplified-mesh", "mesh"}

// Candidate encodes one point of the placement space: a topology family,
// the bank stack of one column (MRU to LRU, in ways; the spec of a w-way
// bank is 64*w KB), and the endpoint columns. Wire delays are not free
// variables — they derive from the bank geometry (bigger banks are
// physically longer, so their links are slower), exactly how Table 3
// assigns them.
type Candidate struct {
	Family string
	// Stack is the ways of each bank position, MRU first; every entry is
	// 1, 2, 4, or 8 and the entries sum to 16.
	Stack []int
	// CoreX is the column hosting the core (meshes; the halo hub hosts
	// the core by construction). MemX is the memory controller column
	// (full mesh only; the simplified mesh moves memory next to the core
	// and the halo centres it).
	CoreX, MemX int
}

// wireDelay is the link wire delay entering a w-way (64*w KB) bank: the
// Table 3 calibration (64 KB rows cost 1 cycle, 128-256 KB rows 2, the
// 512 KB row 3).
func wireDelay(ways int) int {
	switch {
	case ways <= 1:
		return 1
	case ways <= 4:
		return 2
	default:
		return 3
	}
}

// Canon returns the candidate in canonical form: endpoint fields a
// family ignores are zeroed, so two candidates that build the same
// machine compare (and hash, and cache) equal.
func (c Candidate) Canon() Candidate {
	out := c
	out.Stack = append([]int(nil), c.Stack...)
	switch c.Family {
	case "halo":
		out.CoreX, out.MemX = 0, 0
	case "simplified-mesh":
		out.MemX = c.CoreX // memory rides with the core
	}
	return out
}

// String is the canonical one-line encoding, e.g.
// "halo[1-1-2-4-8]" or "mesh[4-4-4-4] core=7 mem=8".
func (c Candidate) String() string {
	c = c.Canon()
	parts := make([]string, len(c.Stack))
	for i, w := range c.Stack {
		parts[i] = strconv.Itoa(w)
	}
	s := fmt.Sprintf("%s[%s]", c.Family, strings.Join(parts, "-"))
	switch c.Family {
	case "simplified-mesh":
		s += fmt.Sprintf(" core=%d", c.CoreX)
	case "mesh":
		s += fmt.Sprintf(" core=%d mem=%d", c.CoreX, c.MemX)
	}
	return s
}

// Hash is a stable 64-bit digest of the canonical encoding; opt-smoke
// diffs it across runs to pin search determinism.
func (c Candidate) Hash() uint64 {
	h := fnv.New64a()
	h.Write([]byte(c.String()))
	return h.Sum64()
}

// Design lowers the candidate to a full config.Design: bank specs from
// the stack, wire delays from the bank geometry (VertDelay[i] is the
// delay entering bank i, HorizDelay the slowest such link since
// horizontal links span a full column pitch), and for halos the
// centre-die memory wire (4 cycles to the hub plus one per spike
// position) that makes Design F exactly in-space.
func (c Candidate) Design() config.Design {
	c = c.Canon()
	banks := make([]bank.Spec, len(c.Stack))
	vd := make([]int, len(c.Stack))
	maxd := 1
	for i, w := range c.Stack {
		banks[i] = bank.Spec{SizeKB: 64 * w, Ways: w}
		vd[i] = wireDelay(w)
		if vd[i] > maxd {
			maxd = vd[i]
		}
	}
	p := topology.Params{W: Columns, H: len(c.Stack), VertDelay: vd}
	switch c.Family {
	case "halo":
		p.MemWireDelay = 4 + len(c.Stack)
	default:
		p.CoreX, p.MemX = c.CoreX, c.MemX
		p.HorizDelay = maxd
	}
	return config.Design{
		ID:          "OPT",
		Description: "optimizer candidate " + c.String(),
		Topology:    c.Family,
		Params:      p,
		Banks:       banks,
		Router:      router.DefaultConfig(),
	}
}

// Valid reports whether the encoding itself is well-formed (family,
// stack alphabet and sum, endpoint ranges). Verify is the stronger
// network-safety gate.
func (c Candidate) Valid() bool {
	ok := false
	for _, f := range Families {
		if c.Family == f {
			ok = true
		}
	}
	if !ok || len(c.Stack) == 0 {
		return false
	}
	sum := 0
	for _, w := range c.Stack {
		if w != 1 && w != 2 && w != 4 && w != 8 {
			return false
		}
		sum += w
	}
	if sum != waysTotal {
		return false
	}
	if c.Family != "halo" && (c.CoreX < 0 || c.CoreX >= Columns || c.MemX < 0 || c.MemX >= Columns) {
		return false
	}
	return true
}

// Verify is the static safety gate every candidate passes before a
// single cycle is simulated: config validation, then the routing
// progress proof network construction itself enforces — the
// channel-dependence cycle check (routing.VerifyDeadlockFree) for
// blocking engines, the livelock-freedom argument for deflecting ones —
// via network.Check. The optimizer never scores a candidate this
// rejects.
func (c Candidate) Verify() error {
	if !c.Valid() {
		return fmt.Errorf("place: malformed candidate %s", c)
	}
	d := c.Design()
	if err := d.Validate(); err != nil {
		return err
	}
	topo, err := d.Build()
	if err != nil {
		return err
	}
	alg, err := routing.For(topo)
	if err != nil {
		return err
	}
	if _, err := network.Check(topo, alg, d.Router); err != nil {
		return err
	}
	return nil
}

// Seed returns the search's starting point: the halo of Design F, which
// is exactly in-space, so the best found candidate can never score below
// the paper's winner.
func Seed() Candidate {
	return Candidate{Family: "halo", Stack: []int{1, 1, 2, 4, 8}}
}

// SeedCMP is the starting point of a multi-core search: the full mesh of
// Design A, the best grid design in Table 3. Halos cannot host a CMP
// fabric (a single hub would serve every core), so a Cores > 0 search
// starts — and stays — inside the grid families.
func SeedCMP() Candidate {
	stack := make([]int, waysTotal)
	for i := range stack {
		stack[i] = 1
	}
	return Candidate{Family: "mesh", Stack: stack, CoreX: 7, MemX: 8}
}

// HostsCores reports whether the candidate's topology can host an n-core
// CMP fabric (see cmp.SupportsHost); nil when n is 0 (classic run) or
// the grid fits.
func (c Candidate) HostsCores(n int) error {
	if n <= 0 {
		return nil
	}
	d := c.Design()
	topo, err := d.Build()
	if err != nil {
		return err
	}
	return cmp.SupportsHost(topo, d.ID, n)
}

// Mutate returns a neighbor of c drawn with rng: split a bank into two
// half-size banks, merge two adjacent equal banks, swap two adjacent
// banks, switch the topology family, or slide an endpoint column. The
// result is always Valid (capacity and associativity are conserved by
// construction); it may still fail Verify or the area gate, which is the
// caller's job to check. Returns c unchanged only if rng is spectacularly
// unlucky (every attempted move degenerate), which the retry bound makes
// effectively impossible.
func Mutate(c Candidate, rng *sim.RNG) Candidate {
	for attempt := 0; attempt < 32; attempt++ {
		n := c.Canon()
		switch rng.Intn(6) {
		case 0: // split a multi-way bank in two
			idx := splittable(n.Stack, rng)
			if idx < 0 {
				continue
			}
			w := n.Stack[idx] / 2
			n.Stack = append(n.Stack[:idx], append([]int{w, w}, n.Stack[idx+1:]...)...)
		case 1: // merge two adjacent equal banks
			idx := mergeable(n.Stack, rng)
			if idx < 0 {
				continue
			}
			n.Stack[idx] *= 2
			n.Stack = append(n.Stack[:idx+1], n.Stack[idx+2:]...)
		case 2: // swap two adjacent unequal banks
			if len(n.Stack) < 2 {
				continue
			}
			i := rng.Intn(len(n.Stack) - 1)
			if n.Stack[i] == n.Stack[i+1] {
				continue
			}
			n.Stack[i], n.Stack[i+1] = n.Stack[i+1], n.Stack[i]
		case 3: // switch family
			f := Families[rng.Intn(len(Families))]
			if f == n.Family {
				continue
			}
			n.Family = f
			if f != "halo" && c.Family == "halo" {
				n.CoreX, n.MemX = Columns/2-1, Columns/2
			}
		case 4: // slide the core column
			if n.Family == "halo" {
				continue
			}
			n.CoreX = slide(n.CoreX, rng)
		case 5: // slide the memory column (full mesh only)
			if n.Family != "mesh" {
				continue
			}
			n.MemX = slide(n.MemX, rng)
		}
		n = n.Canon()
		if n.Valid() && n.String() != c.String() {
			return n
		}
	}
	return c
}

// splittable picks a random index holding a multi-way bank, or -1.
func splittable(stack []int, rng *sim.RNG) int {
	var idxs []int
	for i, w := range stack {
		if w > 1 {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) == 0 {
		return -1
	}
	return idxs[rng.Intn(len(idxs))]
}

// mergeable picks a random index i with stack[i] == stack[i+1] and the
// merged bank still in the alphabet, or -1.
func mergeable(stack []int, rng *sim.RNG) int {
	var idxs []int
	for i := 0; i+1 < len(stack); i++ {
		if stack[i] == stack[i+1] && stack[i]*2 <= 8 {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) == 0 {
		return -1
	}
	return idxs[rng.Intn(len(idxs))]
}

// slide moves a column index one step, clamped to the die.
func slide(x int, rng *sim.RNG) int {
	if rng.Intn(2) == 0 {
		x--
	} else {
		x++
	}
	if x < 0 {
		x = 0
	}
	if x >= Columns {
		x = Columns - 1
	}
	return x
}

package place

import (
	"reflect"
	"testing"

	"nucanet/internal/config"
	"nucanet/internal/sim"
)

// TestDesignFInSpace pins the encoding's anchor: the seed candidate
// lowers to exactly the paper's Design F — same banks, same derived wire
// delays, same memory wire — so the published winner is a point of the
// search space, not an external baseline.
func TestDesignFInSpace(t *testing.T) {
	d := Seed().Design()
	f, err := config.DesignByID("F")
	if err != nil {
		t.Fatal(err)
	}
	if d.Topology != f.Topology {
		t.Errorf("seed family %q, want %q", d.Topology, f.Topology)
	}
	if !reflect.DeepEqual(d.Params, f.Params) {
		t.Errorf("seed params %+v, want Design F's %+v", d.Params, f.Params)
	}
	if !reflect.DeepEqual(d.Banks, f.Banks) {
		t.Errorf("seed banks %v, want Design F's %v", d.Banks, f.Banks)
	}
	if err := Seed().Verify(); err != nil {
		t.Errorf("seed failed the safety gate: %v", err)
	}
}

// TestDesignAInSpace checks the mesh corner the same way: a uniform
// 16x1-way stack at Design A's endpoints builds the identical graph
// (A's broadcast VertDelay{1} and our per-row [1 x16] are the same wires).
func TestDesignAInSpace(t *testing.T) {
	c := Candidate{Family: "mesh", Stack: []int{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}, CoreX: 7, MemX: 8}
	a, err := config.DesignByID("A")
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Design().Build()
	if err != nil {
		t.Fatal(err)
	}
	want, err := a.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Ports, want.Ports) || got.Core != want.Core || got.Mem != want.Mem {
		t.Error("mesh candidate at Design A's coordinates builds a different graph")
	}
}

// TestMutateClosedAndDeterministic: mutation stays inside the valid
// encoding (alphabet, capacity, endpoint ranges) and identical seeds
// walk identical paths.
func TestMutateClosedAndDeterministic(t *testing.T) {
	walk := func(seed uint64) []string {
		rng := sim.NewRNG(seed)
		c := Seed()
		var path []string
		for i := 0; i < 200; i++ {
			c = Mutate(c, rng)
			if !c.Valid() {
				t.Fatalf("step %d: mutation left the space: %s", i, c)
			}
			path = append(path, c.String())
		}
		return path
	}
	if !reflect.DeepEqual(walk(3), walk(3)) {
		t.Error("identical seeds produced different mutation walks")
	}
}

// TestCandidateCanonHash: representational freedom (halo endpoint
// columns, simplified-mesh MemX) never splits one machine into two cache
// keys.
func TestCandidateCanonHash(t *testing.T) {
	a := Candidate{Family: "halo", Stack: []int{1, 1, 2, 4, 8}, CoreX: 3, MemX: 9}
	b := Seed()
	if a.String() != b.String() || a.Hash() != b.Hash() {
		t.Errorf("halo canon split: %q vs %q", a, b)
	}
	sm1 := Candidate{Family: "simplified-mesh", Stack: []int{4, 4, 4, 4}, CoreX: 7, MemX: 0}
	sm2 := Candidate{Family: "simplified-mesh", Stack: []int{4, 4, 4, 4}, CoreX: 7, MemX: 12}
	if sm1.String() != sm2.String() {
		t.Errorf("simplified-mesh canon split: %q vs %q", sm1, sm2)
	}
}

// TestVerifyRejectsMalformed: the gate refuses encodings outside the
// space before any simulation.
func TestVerifyRejectsMalformed(t *testing.T) {
	bad := []Candidate{
		{Family: "halo", Stack: []int{8, 8, 8}},                  // 24 ways
		{Family: "mesh", Stack: []int{16}},                       // off-alphabet bank
		{Family: "torus", Stack: []int{8, 8}},                    // unknown family
		{Family: "mesh", Stack: []int{8, 8}, CoreX: 20, MemX: 0}, // endpoint off-die
	}
	for _, c := range bad {
		if err := c.Verify(); err == nil {
			t.Errorf("Verify accepted malformed candidate %+v", c)
		}
	}
}

// TestSearchDeterministicAndSound runs a tiny search twice: identical
// winners (same hash, same scores), accounting consistent, and the
// confirmed best never below the Design F baseline — the baseline is in
// the space and always confirmed alongside the shortlist.
func TestSearchDeterministicAndSound(t *testing.T) {
	cfg := Config{
		Seed: 5, Budget: 6, Wave: 3,
		ScreenAccesses: 60, ConfirmAccesses: 120,
		Benchmarks: []string{"gcc"}, Workers: 2,
	}
	run := func() *Result {
		res, err := Search(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(), run()
	if r1.Best.Hash() != r2.Best.Hash() || r1.BestScore != r2.BestScore || r1.Screened != r2.Screened {
		t.Errorf("search not deterministic: (%s %.6f n=%d) vs (%s %.6f n=%d)",
			r1.Best, r1.BestScore, r1.Screened, r2.Best, r2.BestScore, r2.Screened)
	}
	if r1.BestScore < r1.BaselineScore {
		t.Errorf("best %.6f below the seeded baseline %.6f", r1.BestScore, r1.BaselineScore)
	}
	if r1.BestArea.L2MM2() > r1.BaselineArea.L2MM2()*(1+1e-9) {
		t.Errorf("best area %.3f exceeds the baseline gate %.3f", r1.BestArea.L2MM2(), r1.BaselineArea.L2MM2())
	}
	if r1.Screened > cfg.Budget {
		t.Errorf("screened %d candidates over the %d budget", r1.Screened, cfg.Budget)
	}
}

// TestSearchWithCoresScreensCMP pins the multi-core screening path: a
// Cores > 0 search starts from the Design A mesh, scores candidates as
// CMP runs through the fleet, stays deterministic, and never graduates a
// radial candidate (halos cannot host a core grid).
func TestSearchWithCoresScreensCMP(t *testing.T) {
	cfg := Config{
		Seed: 5, Budget: 5, Wave: 3,
		ScreenAccesses: 60, ConfirmAccesses: 120,
		Benchmarks: []string{"gcc"}, Workers: 2,
		Cores: 2,
	}
	run := func() *Result {
		res, err := Search(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(), run()
	if r1.Best.Hash() != r2.Best.Hash() || r1.BestScore != r2.BestScore || r1.Screened != r2.Screened {
		t.Errorf("cores=2 search not deterministic: (%s %.6f n=%d) vs (%s %.6f n=%d)",
			r1.Best, r1.BestScore, r1.Screened, r2.Best, r2.BestScore, r2.Screened)
	}
	for _, s := range r1.Confirmed {
		if s.Candidate.Family == "halo" {
			t.Errorf("radial candidate %s survived a cores=2 search", s.Candidate)
		}
		if err := s.Candidate.HostsCores(cfg.Cores); err != nil {
			t.Errorf("confirmed candidate %s cannot host %d cores: %v", s.Candidate, cfg.Cores, err)
		}
	}
	if r1.BestScore < r1.BaselineScore {
		t.Errorf("best %.6f below the seeded baseline %.6f", r1.BestScore, r1.BaselineScore)
	}
	// The single-core and 2-core searches answer different questions:
	// the per-core score under sharing must sit below the solo score.
	solo := Config{
		Seed: 5, Budget: 5, Wave: 3,
		ScreenAccesses: 60, ConfirmAccesses: 120,
		Benchmarks: []string{"gcc"}, Workers: 2,
	}
	rs, err := Search(solo)
	if err != nil {
		t.Fatal(err)
	}
	if r1.BestScore >= rs.BestScore {
		t.Errorf("per-core IPC under 2-way sharing (%.6f) not below solo IPC (%.6f)",
			r1.BestScore, rs.BestScore)
	}
}

// TestHostsCores pins the gate itself: grids host up to their width,
// halos never do.
func TestHostsCores(t *testing.T) {
	mesh := SeedCMP()
	if err := mesh.HostsCores(4); err != nil {
		t.Errorf("mesh rejects 4 cores: %v", err)
	}
	if err := mesh.HostsCores(Columns + 1); err == nil {
		t.Error("mesh accepted more cores than columns")
	}
	if err := Seed().HostsCores(2); err == nil {
		t.Error("halo accepted a CMP fabric")
	}
	if err := Seed().HostsCores(0); err != nil {
		t.Errorf("cores=0 must always pass: %v", err)
	}
}

package place

import (
	"fmt"
	"math"
	"sort"

	"nucanet/internal/area"
	"nucanet/internal/cache"
	"nucanet/internal/config"
	"nucanet/internal/core"
	"nucanet/internal/fleet"
	"nucanet/internal/sim"
)

// DefaultBenchmarks is the scoring mix: two integer and two FP profiles
// spanning the Table 2 access-intensity range, the same wave the fleet
// benchmark models. A candidate's score is the geometric-mean IPC over
// the mix.
var DefaultBenchmarks = []string{"gcc", "mcf", "art", "apsi"}

// Config tunes one optimizer search; zero fields take the listed
// defaults. The search is deterministic: same Config, same result, same
// Hash (pinned by make opt-smoke and TestSearchDeterministic).
type Config struct {
	Seed uint64 // RNG seed for the annealing schedule (default 1)

	// Budget is how many distinct candidates the search may score with
	// screening runs before it stops (default 48). The seed candidate
	// counts.
	Budget int
	// Wave is how many mutations each annealing step proposes; the whole
	// wave screens as one fleet batch of Wave x len(Benchmarks) lanes
	// (default 8).
	Wave int

	// ScreenAccesses is the per-run length of screening scores (default
	// 150: the regime the fleet's shared preparation is built for).
	// ConfirmAccesses re-scores the shortlist and the baseline at full
	// length before the winner is declared (default 4000).
	ScreenAccesses  int
	ConfirmAccesses int
	// Shortlist is how many top screening candidates graduate to
	// confirmation (default 3; the baseline always confirms too).
	Shortlist int

	Benchmarks []string // scoring mix (default DefaultBenchmarks)
	Workers    int      // fleet workers; 0 selects GOMAXPROCS

	// Shards runs every scored simulation on N kernel shards. Scores are
	// bit-identical at any value (sharding is an execution knob), so the
	// search result and its hash do not move; >1 routes scoring through
	// the per-run engine because the fleet's lockstep schedule already
	// interleaves runs on one core.
	Shards int

	// Policy and Mode name the replacement scheme of every scored run;
	// empty selects the paper's winner (multicast Fast-LRU).
	Policy string
	Mode   string

	// Cores > 0 scores every candidate as a full-system CMP run: N
	// trace-driven cores share each candidate's fabric, the benchmark
	// score is the geometric mean over the per-core IPCs (so a placement
	// that starves one core scores below one that shares fairly), and the
	// search starts from the Design A mesh instead of the halo — radial
	// candidates cannot host a core grid and are gated out as unsafe.
	Cores int

	// InitTemp and Cool shape the annealing schedule: acceptance
	// temperature starts at InitTemp (as a fraction of the current
	// score) and multiplies by Cool each wave (defaults 0.02, 0.85).
	InitTemp, Cool float64

	// Log, when non-nil, receives one line per wave.
	Log func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Budget <= 0 {
		c.Budget = 48
	}
	if c.Wave <= 0 {
		c.Wave = 8
	}
	if c.ScreenAccesses <= 0 {
		c.ScreenAccesses = 150
	}
	if c.ConfirmAccesses <= 0 {
		c.ConfirmAccesses = 4000
	}
	if c.Shortlist <= 0 {
		c.Shortlist = 3
	}
	if len(c.Benchmarks) == 0 {
		c.Benchmarks = DefaultBenchmarks
	}
	if c.InitTemp <= 0 {
		c.InitTemp = 0.02
	}
	if c.Cool <= 0 || c.Cool >= 1 {
		c.Cool = 0.85
	}
	return c
}

// maxStalledWaves bounds the restart attempts after the reachable
// neighborhood is exhausted: the search terminates even when the gated
// space around the optimum is smaller than the budget.
const maxStalledWaves = 8

// Scored is one evaluated candidate.
type Scored struct {
	Candidate Candidate
	// Score is the geometric-mean IPC over the benchmark mix.
	Score float64
	// AreaMM2 is the candidate's L2 area (banks + routers + links) under
	// the Table 4 model.
	AreaMM2 float64
}

// Result is the outcome of one Search.
type Result struct {
	// Best is the confirmed winner: the shortlist candidate (baseline
	// included) with the highest full-length score. Its score can never
	// fall below Baseline's, because the baseline is always confirmed
	// with it.
	Best Candidate
	// BestScore and BaselineScore are confirmation-length geomean IPCs;
	// Baseline is the search's starting point (the Design F halo, or the
	// Design A mesh when Cores > 0).
	BestScore, BaselineScore float64
	BestArea, BaselineArea   area.Report

	// Confirmed is the full confirmation table, best first.
	Confirmed []Scored

	// Search accounting: candidates scored with screening runs, proposals
	// rejected by the safety verifier, proposals rejected by the area
	// gate, and total simulations dispatched.
	Screened       int
	RejectedUnsafe int
	RejectedArea   int
	Sims           int

	// Report aggregates the fleet batches' sweep accounting.
	Report core.SweepReport
}

// Search runs deterministic simulated annealing over the candidate
// space. Every proposal passes the static safety gate
// (Candidate.Verify: deadlock/livelock-freedom of its routed topology)
// and the area gate (L2 area no larger than the Design F baseline's)
// before it is scored; scores come from the real engine via the fleet's
// lockstep batch evaluator. Screening runs are short; the shortlist is
// re-scored at confirmation length together with the baseline, so the
// returned Best is a confirmed, not screened, winner.
func Search(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	policy, mode, err := scheme(cfg)
	if err != nil {
		return nil, err
	}

	model := area.DefaultModel()
	baseline := Seed().Canon()
	if cfg.Cores > 0 {
		baseline = SeedCMP().Canon()
		if err := baseline.HostsCores(cfg.Cores); err != nil {
			return nil, fmt.Errorf("place: cores=%d: %w", cfg.Cores, err)
		}
	}
	baseRep, err := model.Analyze(baseline.Design())
	if err != nil {
		return nil, fmt.Errorf("place: baseline area: %w", err)
	}
	// The area gate: candidates may spend at most the baseline's L2 area
	// (tiny tolerance for the fixed-point link solve).
	budgetMM2 := baseRep.L2MM2() * (1 + 1e-9)

	res := &Result{BaselineArea: baseRep}
	rng := sim.NewRNG(cfg.Seed)
	scores := map[string]Scored{} // canonical encoding -> screening score

	eval := func(cands []Candidate, accesses int) ([]Scored, error) {
		return res.score(cands, accesses, policy, mode, cfg)
	}

	// Screen the seed.
	first, err := eval([]Candidate{baseline}, cfg.ScreenAccesses)
	if err != nil {
		return nil, err
	}
	cur := first[0]
	scores[cur.Candidate.String()] = cur
	res.Screened = 1

	logf := func(format string, args ...any) {
		if cfg.Log != nil {
			cfg.Log(format, args...)
		}
	}
	logf("seed   %-40s ipc %.4f area %.1fmm2 (gate %.1fmm2)",
		cur.Candidate, cur.Score, cur.AreaMM2, budgetMM2)

	temp := cfg.InitTemp
	stalled := 0
	for wave := 0; res.Screened < cfg.Budget && stalled < maxStalledWaves; wave++ {
		// Propose a wave of gated, unscored neighbors.
		var fresh []Candidate
		proposed := map[string]bool{}
		for try := 0; try < cfg.Wave*8 && len(fresh) < cfg.Wave && res.Screened+len(fresh) < cfg.Budget; try++ {
			n := Mutate(cur.Candidate, rng)
			key := n.String()
			if proposed[key] || key == cur.Candidate.String() {
				continue
			}
			proposed[key] = true
			if _, done := scores[key]; done {
				continue // already screened in an earlier wave
			}
			if err := n.Verify(); err != nil {
				res.RejectedUnsafe++
				continue
			}
			if err := n.HostsCores(cfg.Cores); err != nil {
				res.RejectedUnsafe++
				continue
			}
			rep, err := model.Analyze(n.Design())
			if err != nil {
				res.RejectedUnsafe++
				continue
			}
			if rep.L2MM2() > budgetMM2 {
				res.RejectedArea++
				continue
			}
			fresh = append(fresh, n)
		}
		if len(fresh) == 0 {
			// Every proposal was already screened or gated out: the
			// neighborhood of cur is exhausted. Reheat and hop to a random
			// already-screened candidate to escape; give up for good after
			// maxStalledWaves consecutive dry waves.
			stalled++
			temp = cfg.InitTemp
			if keys := sortedKeys(scores); len(keys) > 0 {
				cur = scores[keys[rng.Intn(len(keys))]]
			}
			continue
		}
		stalled = 0

		// One fleet batch screens the whole wave.
		wv, err := eval(fresh, cfg.ScreenAccesses)
		if err != nil {
			return nil, err
		}
		res.Screened += len(wv)

		// Metropolis pass over the wave in proposal order.
		for _, s := range wv {
			scores[s.Candidate.String()] = s
			delta := (s.Score - cur.Score) / math.Max(cur.Score, 1e-12)
			if delta >= 0 || rng.Float64() < math.Exp(delta/temp) {
				cur = s
			}
		}
		logf("wave %2d: %d screened (%d/%d budget), cur %-40s ipc %.4f T=%.4f",
			wave, len(wv), res.Screened, cfg.Budget, cur.Candidate, cur.Score, temp)
		temp *= cfg.Cool
	}

	// Shortlist: top screening scores (ties broken by encoding for
	// determinism), with the baseline always included.
	short := topK(scores, cfg.Shortlist)
	if !containsCand(short, baseline) {
		short = append(short, baseline)
	}
	confirmed, err := eval(short, cfg.ConfirmAccesses)
	if err != nil {
		return nil, err
	}
	sortScored(confirmed)
	res.Confirmed = confirmed
	res.Best = confirmed[0].Candidate
	res.BestScore = confirmed[0].Score
	for _, s := range confirmed {
		if s.Candidate.String() == baseline.String() {
			res.BaselineScore = s.Score
		}
	}
	res.BestArea, err = model.Analyze(res.Best.Design())
	if err != nil {
		return nil, err
	}
	logf("best   %-40s ipc %.4f (baseline %.4f) area %.1fmm2 (baseline %.1fmm2)",
		res.Best, res.BestScore, res.BaselineScore, res.BestArea.L2MM2(), baseRep.L2MM2())
	return res, nil
}

// score evaluates candidates on the benchmark mix through the fleet: one
// lockstep batch of len(cands) x len(benchmarks) lanes.
func (res *Result) score(cands []Candidate, accesses int, policy cache.Policy, mode cache.Mode, cfg Config) ([]Scored, error) {
	model := area.DefaultModel()
	opts := make([]core.Options, 0, len(cands)*len(cfg.Benchmarks))
	designs := make([]config.Design, len(cands))
	for i, c := range cands {
		designs[i] = c.Design()
		for _, bench := range cfg.Benchmarks {
			opt := core.DefaultOptions()
			opt.DesignID = designs[i].ID
			opt.Design = &designs[i]
			opt.Policy, opt.Mode = policy, mode
			opt.Benchmark = bench
			opt.Accesses = accesses
			opt.Seed = 42
			opt.Shards = cfg.Shards
			opt.Cores = cfg.Cores
			opts = append(opts, opt)
		}
	}
	var (
		results []core.Result
		rep     core.SweepReport
		err     error
	)
	if cfg.Shards > 1 {
		// Sharded kernels parallelize within a run; the per-run engine
		// keeps that useful. Results are bit-identical to the fleet path.
		results, rep, err = core.NewEngine(cfg.Workers).RunAll(opts)
	} else {
		results, rep, err = fleet.RunAll(opts, fleet.Config{Workers: cfg.Workers})
	}
	if err != nil {
		return nil, err
	}
	res.Sims += len(opts)
	res.Report.Runs += rep.Runs
	res.Report.Workers = rep.Workers
	res.Report.Wall += rep.Wall
	res.Report.Work += rep.Work

	out := make([]Scored, len(cands))
	for i, c := range cands {
		logSum := 0.0
		for j := range cfg.Benchmarks {
			r := results[i*len(cfg.Benchmarks)+j]
			ipc := r.IPC
			if len(r.Cores) > 0 {
				// Multi-core screening: the benchmark's score is the geomean
				// over per-core IPCs, not the aggregate — unfair sharing
				// (one starved core) drags the geomean down even when the
				// sum looks healthy.
				cl := 0.0
				for _, cr := range r.Cores {
					cl += math.Log(cr.IPC)
				}
				ipc = math.Exp(cl / float64(len(r.Cores)))
			}
			logSum += math.Log(ipc)
		}
		rep, err := model.Analyze(designs[i])
		if err != nil {
			return nil, err
		}
		out[i] = Scored{
			Candidate: c,
			Score:     math.Exp(logSum / float64(len(cfg.Benchmarks))),
			AreaMM2:   rep.L2MM2(),
		}
	}
	return out, nil
}

// scheme resolves the configured replacement scheme, defaulting to the
// paper's multicast Fast-LRU.
func scheme(cfg Config) (cache.Policy, cache.Mode, error) {
	policy, mode := cache.FastLRU, cache.Multicast
	var err error
	if cfg.Policy != "" {
		if policy, err = cache.PolicyByName(cfg.Policy); err != nil {
			return policy, mode, err
		}
	}
	if cfg.Mode != "" {
		if mode, err = cache.ParseMode(cfg.Mode); err != nil {
			return policy, mode, err
		}
	}
	return policy, mode, nil
}

// topK returns the k highest screening scores, deterministically (score
// descending, then canonical encoding ascending).
func topK(scores map[string]Scored, k int) []Candidate {
	all := make([]Scored, 0, len(scores))
	for _, s := range scores {
		all = append(all, s)
	}
	sortScored(all)
	if k > len(all) {
		k = len(all)
	}
	out := make([]Candidate, k)
	for i := range out {
		out[i] = all[i].Candidate
	}
	return out
}

// sortScored orders by score descending, canonical encoding ascending on
// ties — a total order, so map iteration above cannot leak
// nondeterminism.
func sortScored(s []Scored) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Score != s[j].Score {
			return s[i].Score > s[j].Score
		}
		return s[i].Candidate.String() < s[j].Candidate.String()
	})
}

// sortedKeys lists the screened encodings in sorted order — the
// deterministic index the restart hop draws from.
func sortedKeys(scores map[string]Scored) []string {
	keys := make([]string, 0, len(scores))
	for k := range scores {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func containsCand(cands []Candidate, c Candidate) bool {
	for _, x := range cands {
		if x.String() == c.String() {
			return true
		}
	}
	return false
}

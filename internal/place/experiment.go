package place

import (
	"fmt"
	"io"

	"nucanet/internal/core"
)

// init registers the "placement" experiment: a bounded optimizer search
// reachable from paperbench (-exp placement) and nucad's catalogue.
// cmd/nucaopt exposes the full knob set; the experiment form runs a
// fixed small budget so it completes in tens of seconds. It registers
// InAll=false — a search is a study, not a paper table.
func init() {
	core.RegisterExperiment(core.Experiment{
		Name:  "placement",
		About: "simulated-annealing search for a cache placement beating the Design F halo",
		Title: func(cfg core.ExpConfig) string {
			return "Placement search: annealing over (family, bank stack, endpoints)"
		},
		Run: runExperiment,
	})
}

// runExperiment adapts the experiment interface to Search: a small fixed
// budget, screening at the fleet's home regime, confirmation at the
// configured access count, and the configured scheme/benchmark override.
func runExperiment(cfg core.ExpConfig) (core.Rows, core.SweepReport, error) {
	scfg := Config{
		Seed:            cfg.Seed,
		Budget:          24,
		ConfirmAccesses: cfg.Accesses,
		Workers:         cfg.Workers,
		Policy:          cfg.PolicyName,
		Mode:            cfg.ModeName,
	}
	if cfg.Bench != "" {
		scfg.Benchmarks = []string{cfg.Bench}
	}
	res, err := Search(scfg)
	if err != nil {
		return nil, core.SweepReport{}, err
	}
	return Rows{Result: res, Benchmarks: scfg.withDefaults().Benchmarks}, res.Report, nil
}

// Rows renders a search result for paperbench.
type Rows struct {
	Result     *Result
	Benchmarks []string
}

// Render writes the confirmation table and the search accounting.
func (r Rows) Render(w io.Writer) {
	res := r.Result
	fmt.Fprintf(w, "mix: %v; score = geomean IPC; area gate = baseline L2 %.2f mm2\n",
		r.Benchmarks, res.BaselineArea.L2MM2())
	fmt.Fprintln(w, "confirmed candidates (best first):")
	for _, s := range res.Confirmed {
		mark := " "
		if s.Candidate.String() == res.Best.String() {
			mark = "*"
		}
		fmt.Fprintf(w, " %s %-44s ipc %.4f  area %6.2f mm2\n", mark, s.Candidate, s.Score, s.AreaMM2)
	}
	fmt.Fprintf(w, "best %s: ipc %.4f vs baseline %.4f (%+.2f%%), area %.2f vs %.2f mm2\n",
		res.Best, res.BestScore, res.BaselineScore,
		100*(res.BestScore/res.BaselineScore-1),
		res.BestArea.L2MM2(), res.BaselineArea.L2MM2())
	fmt.Fprintf(w, "search: %d screened, %d rejected unsafe, %d rejected by area, %d simulations, hash %016x\n",
		res.Screened, res.RejectedUnsafe, res.RejectedArea, res.Sims, res.Best.Hash())
}

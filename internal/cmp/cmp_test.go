package cmp

import (
	"strings"
	"testing"

	"nucanet/internal/cache"
	"nucanet/internal/config"
	"nucanet/internal/sim"
	"nucanet/internal/trace"
)

// fabricOn builds an n-core fabric over a fresh system of the named
// design.
func fabricOn(t *testing.T, designID string, n int) *Fabric {
	t.Helper()
	d, err := config.DesignByID(designID)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := cache.New(sim.NewKernel(), d, cache.FastLRU, cache.Multicast)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Attach(cs, n)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestHomeAssignmentNearest(t *testing.T) {
	f := fabricOn(t, "A", 4)
	// Cores sit at x = 2, 6, 10, 14; columns split into four runs.
	for col := 0; col < 16; col++ {
		got := f.Home(col)
		if got < 0 || got > 3 {
			t.Fatalf("home(%d) = %d", col, got)
		}
	}
	if f.Home(0) != 0 || f.Home(15) != 3 {
		t.Fatalf("edge homes wrong: %d %d", f.Home(0), f.Home(15))
	}
	for col := 1; col < 16; col++ {
		if f.Home(col) < f.Home(col-1) {
			t.Fatal("home assignment must be monotone along the row")
		}
	}
}

// TestHomeAssignmentHier: on the hierarchical design the home map works
// off global columns exactly as on a flat mesh — bridges host no banks
// and never own columns.
func TestHomeAssignmentHier(t *testing.T) {
	f := fabricOn(t, "H2", 4)
	for col := 1; col < 16; col++ {
		if f.Home(col) < f.Home(col-1) {
			t.Fatal("home assignment must be monotone along the row")
		}
	}
	for i := 0; i < 4; i++ {
		node := f.ControllerNode(i)
		if f.Sys.Topo.Nodes[node].Y != 0 {
			t.Fatalf("controller %d not on the mesh's top row (node %d)", i, node)
		}
	}
}

func TestOffsetAddrDisjoint(t *testing.T) {
	f := fabricOn(t, "A", 2)
	am := f.Sys.AM
	addr := am.Compose(42, 13, 5)
	a0 := f.OffsetAddr(addr, 0)
	a1 := f.OffsetAddr(addr, 1)
	if a0 != addr {
		t.Fatal("core 0's tag range must be the identity (single-core compatibility)")
	}
	if a0 == a1 {
		t.Fatal("cores must get disjoint tag ranges")
	}
	if am.SetOf(a0) != am.SetOf(a1) || am.ColumnOf(a0) != am.ColumnOf(a1) {
		t.Fatal("offset must preserve set and column")
	}
	if am.TagOf(a0) == am.TagOf(a1) {
		t.Fatal("tags must differ")
	}
}

func TestHaloRejected(t *testing.T) {
	// Radial designs have a single hub: CMP must refuse them with a
	// descriptive error (not a panic) so batch sweeps can skip-and-report.
	d, _ := config.DesignByID("E")
	cs, err := cache.New(sim.NewKernel(), d, cache.FastLRU, cache.Multicast)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Attach(cs, 2); err == nil {
		t.Fatal("halo CMP must be rejected")
	} else if !strings.Contains(err.Error(), "radial") {
		t.Fatalf("error should explain the radial rejection, got: %v", err)
	}
}

func TestBadCoreCounts(t *testing.T) {
	d, _ := config.DesignByID("A")
	cs, err := cache.New(sim.NewKernel(), d, cache.FastLRU, cache.Multicast)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, -1, 17} {
		if _, err := Attach(cs, n); err == nil {
			t.Errorf("core count %d must be rejected", n)
		}
	}
}

func TestWarmSplitsWays(t *testing.T) {
	f := fabricOn(t, "A", 4)
	prof, err := trace.ProfileByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	warms := make([][][]uint64, 4)
	for i := range warms {
		g := trace.NewSynthetic(prof, f.Sys.AM, uint64(i+1))
		warms[i] = g.WarmBlocks(16)
	}
	f.Warm(warms)
	// Every set holds 16 blocks, 4 from each core's tag range.
	counts := map[uint64]int{}
	for _, bankTags := range f.Sys.Contents(3, 7) {
		for _, tag := range bankTags {
			counts[tag/OwnerStride]++
		}
	}
	total := 0
	for c := 0; c < 4; c++ {
		if counts[uint64(c)] != 4 {
			t.Fatalf("core %d holds %d ways of set, want 4 (%v)", c, counts[uint64(c)], counts)
		}
		total += counts[uint64(c)]
	}
	if total != 16 {
		t.Fatalf("set holds %d blocks, want 16", total)
	}
}

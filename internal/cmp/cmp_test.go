package cmp

import (
	"strings"
	"testing"

	"nucanet/internal/cache"
	"nucanet/internal/config"
	"nucanet/internal/cpu"
	"nucanet/internal/sim"
	"nucanet/internal/trace"
)

func opts(cores, n int) Options {
	return Options{
		DesignID: "A", Policy: cache.FastLRU, Mode: cache.Multicast,
		Cores: cores, Benchmark: "gcc", Accesses: n, Seed: 9,
		CPU: cpu.DefaultConfig(),
	}
}

func TestSingleCoreMatchesStructure(t *testing.T) {
	res, err := Run(opts(1, 800))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 1 {
		t.Fatalf("cores = %d", len(res.Cores))
	}
	c := res.Cores[0]
	if c.IPC <= 0 || c.AvgLatency <= 0 {
		t.Fatalf("bad core result: %+v", c)
	}
	// One core homes every column: nothing is remote.
	if c.RemoteShare != 0 {
		t.Fatalf("single core remote share = %v, want 0", c.RemoteShare)
	}
}

func TestHomeAssignmentNearest(t *testing.T) {
	d, _ := config.DesignByID("A")
	k := sim.NewKernel()
	s, err := New(k, d, cache.FastLRU, cache.Multicast, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Cores sit at x = 2, 6, 10, 14; columns split into four runs.
	for col := 0; col < 16; col++ {
		want := 0
		switch {
		case col >= 4 && col <= 8:
			want = 1
		case col > 8 && col <= 12:
			want = 2
		case col > 12:
			want = 3
		}
		// Boundaries can tie; just require monotonicity and range.
		got := s.Home(col)
		if got < 0 || got > 3 {
			t.Fatalf("home(%d) = %d", col, got)
		}
		_ = want
	}
	if s.Home(0) != 0 || s.Home(15) != 3 {
		t.Fatalf("edge homes wrong: %d %d", s.Home(0), s.Home(15))
	}
	for col := 1; col < 16; col++ {
		if s.Home(col) < s.Home(col-1) {
			t.Fatal("home assignment must be monotone along the row")
		}
	}
}

func TestRemoteIssuesCrossTheRow(t *testing.T) {
	res, err := Run(opts(4, 600))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cores {
		// With 16 columns over 4 cores, ~3/4 of uniformly spread
		// accesses are remote.
		if c.RemoteShare < 0.4 || c.RemoteShare > 0.95 {
			t.Errorf("core %d remote share = %.2f, want ~0.75", c.Core, c.RemoteShare)
		}
	}
}

func TestInterferenceRaisesMissRate(t *testing.T) {
	one, err := Run(opts(1, 900))
	if err != nil {
		t.Fatal(err)
	}
	four, err := Run(opts(4, 900))
	if err != nil {
		t.Fatal(err)
	}
	// Four disjoint working sets share 16 ways: per-core hit rates drop.
	if four.CacheHitRate >= one.CacheHitRate {
		t.Errorf("4-core hit rate %.3f not below 1-core %.3f",
			four.CacheHitRate, one.CacheHitRate)
	}
	// But aggregate throughput still rises with cores.
	if four.ThroughputIPC <= one.ThroughputIPC {
		t.Errorf("4-core throughput %.3f not above 1-core %.3f",
			four.ThroughputIPC, one.ThroughputIPC)
	}
}

func TestDeterministicCMP(t *testing.T) {
	a, err := Run(opts(2, 500))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(opts(2, 500))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Cores {
		if a.Cores[i] != b.Cores[i] {
			t.Fatalf("nondeterministic core %d: %+v vs %+v", i, a.Cores[i], b.Cores[i])
		}
	}
}

func TestOffsetAddrDisjoint(t *testing.T) {
	d, _ := config.DesignByID("A")
	k := sim.NewKernel()
	s, err := New(k, d, cache.FastLRU, cache.Multicast, 2)
	if err != nil {
		t.Fatal(err)
	}
	am := s.Cache.AM
	addr := am.Compose(42, 13, 5)
	a0 := s.OffsetAddr(addr, 0)
	a1 := s.OffsetAddr(addr, 1)
	if a0 == a1 {
		t.Fatal("cores must get disjoint tag ranges")
	}
	if am.SetOf(a0) != am.SetOf(a1) || am.ColumnOf(a0) != am.ColumnOf(a1) {
		t.Fatal("offset must preserve set and column")
	}
	if am.TagOf(a0) == am.TagOf(a1) {
		t.Fatal("tags must differ")
	}
}

func TestCMPOnSimplifiedMesh(t *testing.T) {
	o := opts(2, 500)
	o.DesignID = "B"
	res, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputIPC <= 0 {
		t.Fatal("no throughput")
	}
}

func TestHaloRejected(t *testing.T) {
	// Radial designs have a single hub: CMP must refuse them with a
	// descriptive error (not a panic) so batch sweeps can skip-and-report.
	d, _ := config.DesignByID("E")
	_, err := New(sim.NewKernel(), d, cache.FastLRU, cache.Multicast, 2)
	if err == nil {
		t.Fatal("halo CMP must be rejected")
	}
	if !strings.Contains(err.Error(), "radial") {
		t.Fatalf("error should explain the radial rejection, got: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	bad := opts(0, 100)
	if _, err := Run(bad); err == nil {
		t.Fatal("zero cores must error")
	}
	bad2 := opts(2, 100)
	bad2.Benchmark = "doom"
	if _, err := Run(bad2); err == nil {
		t.Fatal("bad benchmark must error")
	}
}

func TestWarmSplitsWays(t *testing.T) {
	d, _ := config.DesignByID("A")
	k := sim.NewKernel()
	s, err := New(k, d, cache.FastLRU, cache.Multicast, 4)
	if err != nil {
		t.Fatal(err)
	}
	gens := make([][][]uint64, 4)
	for i := range gens {
		g := trace.NewSynthetic(mustProf(t), s.Cache.AM, uint64(i+1))
		gens[i] = g.WarmBlocks(16)
	}
	s.Warm(gens)
	// Every set holds 16 blocks, 4 from each core's tag range.
	counts := map[uint64]int{}
	for _, bankTags := range s.Cache.Contents(3, 7) {
		for _, tag := range bankTags {
			counts[tag/coreTagStride]++
		}
	}
	total := 0
	for c := 0; c < 4; c++ {
		if counts[uint64(c)] != 4 {
			t.Fatalf("core %d holds %d ways of set, want 4 (%v)", c, counts[uint64(c)], counts)
		}
		total += counts[uint64(c)]
	}
	if total != 16 {
		t.Fatalf("set holds %d blocks, want 16", total)
	}
}

func mustProf(t *testing.T) trace.Profile {
	t.Helper()
	p, err := trace.ProfileByName("gcc")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

package cmp

import (
	"fmt"

	"nucanet/internal/cache"
	"nucanet/internal/config"
	"nucanet/internal/cpu"
	"nucanet/internal/sim"
	"nucanet/internal/stats"
	"nucanet/internal/trace"
)

// Options configures a CMP run.
type Options struct {
	DesignID  string // a mesh design: A-D
	Policy    cache.Policy
	Mode      cache.Mode
	Cores     int
	Benchmark string // every core runs this profile on a private tag range
	Accesses  int    // per core
	Seed      uint64
	CPU       cpu.Config
}

// CoreResult is one core's outcome.
type CoreResult struct {
	Core         int
	IPC          float64
	AvgLatency   float64
	HitRate      float64
	RemoteShare  float64 // fraction of issues homed on another controller
	Instructions int64
	Cycles       int64
}

// Result aggregates a CMP run.
type Result struct {
	Options Options
	Cores   []CoreResult
	// ThroughputIPC sums the cores' IPCs — the CMP's aggregate.
	ThroughputIPC float64
	CacheHitRate  float64
	// Latency snapshots the shared cache's accumulator; merge runs of a
	// sweep with Latency.Merge.
	Latency *stats.Latency
}

// RunMany executes independent CMP configurations on a bounded worker
// pool (workers <= 0 uses all cores), returning results in submission
// order. Each Run owns its kernel and cache system, so runs share no
// mutable state and any worker count yields identical results.
func RunMany(opts []Options, workers int) ([]Result, error) {
	return sim.ParMap(workers, len(opts), func(i int) (Result, error) {
		return Run(opts[i])
	})
}

// Run executes an n-core workload to completion.
func Run(opt Options) (Result, error) {
	d, err := config.DesignByID(opt.DesignID)
	if err != nil {
		return Result{}, err
	}
	prof, err := trace.ProfileByName(opt.Benchmark)
	if err != nil {
		return Result{}, err
	}
	if opt.Accesses <= 0 || opt.Cores < 1 {
		return Result{}, fmt.Errorf("cmp: bad accesses/cores %d/%d", opt.Accesses, opt.Cores)
	}
	cpuCfg := opt.CPU
	if cpuCfg.Window == 0 {
		cpuCfg = cpu.DefaultConfig()
	}

	k := sim.NewKernel()
	s, err := New(k, d, opt.Policy, opt.Mode, opt.Cores)
	if err != nil {
		return Result{}, err
	}

	// Per-core workloads on private tag ranges, warmed interleaved.
	gens := make([]*trace.Synthetic, opt.Cores)
	warms := make([][][]uint64, opt.Cores)
	for i := range gens {
		gens[i] = trace.NewSynthetic(prof, s.Cache.AM, opt.Seed+uint64(i)*977)
		warms[i] = gens[i].WarmBlocks(d.Ways())
	}
	s.Warm(warms)

	cores := make([]*cpu.Core, opt.Cores)
	for i := range cores {
		accs := trace.Take(gens[i], opt.Accesses)
		for j := range accs {
			accs[j].Addr = s.OffsetAddr(accs[j].Addr, i)
		}
		cfg := cpuCfg
		cfg.Seed = opt.Seed + uint64(i)*31
		cores[i] = cpu.New(k, s.Port(i), prof, accs, cfg)
		cores[i].Start()
	}
	if _, idle := k.Run(1 << 40); !idle {
		return Result{}, fmt.Errorf("cmp: run did not complete")
	}

	res := Result{Options: opt, CacheHitRate: s.Cache.Lat.HitRate(), Latency: s.Cache.Lat.Clone()}
	for i, c := range cores {
		cr, err := c.Result()
		if err != nil {
			return Result{}, fmt.Errorf("cmp: core %d: %w", i, err)
		}
		p := s.Port(i)
		total := p.RemoteIssues + p.LocalIssues
		res.Cores = append(res.Cores, CoreResult{
			Core:         i,
			IPC:          cr.IPC(),
			AvgLatency:   p.Lat.Avg(),
			HitRate:      p.Lat.HitRate(),
			RemoteShare:  float64(p.RemoteIssues) / float64(total),
			Instructions: cr.Instructions,
			Cycles:       cr.Cycles,
		})
		res.ThroughputIPC += cr.IPC()
	}
	return res, nil
}

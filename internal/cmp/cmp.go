// Package cmp extends the networked cache to chip multiprocessors — the
// paper's primary stated future work ("we are planning to expand the
// study ... to include CMP environments by first analyzing the traffic
// patterns and finding suitable interconnects").
//
// N cores attach along the top row of a grid design, each co-located
// with a cache controller. Every bank-set column is *homed* on exactly
// one controller (the nearest one), preserving the single-writer column
// serialization the replacement protocols require. A core accessing a
// remotely-homed column sends its request across the top row — and, on
// hierarchical designs, over the inter-chiplet bridge ring — to the home
// controller, which runs the usual protocol and forwards the data back.
// The sharing cost is therefore *measured* on the simulated fabric,
// contention included, not approximated by an extra-hop latency model.
//
// Cores run disjoint working sets (a multiprogrammed workload, the
// common shared-NUCA evaluation): each core's tags live in a private tag
// range (OwnerStride apart), and the warm state interleaves the cores'
// hot blocks so they compete for the shared capacity from the first
// access.
//
// The package is a fabric layer, not a runner: Attach grafts ports and
// controllers onto a prebuilt cache.System, and internal/core threads it
// through Prepare/NewInstance so CMP runs inherit warm-image caching,
// sharded kernels, telemetry, and the experiment registry unchanged.
package cmp

import (
	"fmt"

	"nucanet/internal/cache"
	"nucanet/internal/flit"
	"nucanet/internal/stats"
	"nucanet/internal/topology"
	"nucanet/internal/trace"
)

// OwnerStride separates the cores' tag spaces (far above any tag a
// generator produces in a bounded run): core i's blocks carry tags in
// [i*OwnerStride, (i+1)*OwnerStride). It aliases the cache package's
// stride so the directory policy recovers each block's owning core from
// its tag (cache.OwnerOf).
const OwnerStride = cache.OwnerStride

// OffsetAddr relocates an address into a core's private tag range. It is
// a pure function of the address map, so trace preparation can apply it
// without a built fabric.
func OffsetAddr(am trace.AddrMap, addr uint64, core int) uint64 {
	return am.Compose(am.TagOf(addr)+uint64(core)*OwnerStride,
		am.SetOf(addr), am.ColumnOf(addr))
}

// MergeWarm interleaves per-core warm sets into one shared warm table:
// each set's ways round-robin over the cores' MRU blocks, so the cores
// compete for capacity from the first access. warms[i] is core i's
// WarmBlocks table (ways entries per set); the result feeds
// (*cache.System).Warm or cache.BuildWarmImage directly.
func MergeWarm(am trace.AddrMap, ways int, warms [][][]uint64) [][]uint64 {
	merged := make([][]uint64, am.Columns*am.Sets)
	for idx := range merged {
		var tags []uint64
		for w := 0; w < ways; w++ {
			c := w % len(warms)
			d := w / len(warms)
			if c >= len(warms) || d >= len(warms[c][idx]) {
				continue
			}
			tags = append(tags, warms[c][idx][d]+uint64(c)*OwnerStride)
		}
		merged[idx] = tags
	}
	return merged
}

// coreReq carries a remote core's request to the home controller.
type coreReq struct {
	req  *cache.Request
	home int // controller index
}

// coreData carries the completed data notice back to the requesting core.
type coreData struct {
	req  *cache.Request
	port *Port
}

// The CMP forwarding envelopes are protocol messages (flit.Payload).
func (*coreReq) ProtocolMessage() {}

func (*coreData) ProtocolMessage() {}

// Fabric is the CMP attachment over a shared cache system: N ports, N
// co-located controllers, and the column home map.
type Fabric struct {
	Sys *cache.System
	N   int

	ports []*Port
	ctrls []*cache.Controller
	nodes []topology.NodeID // controller/core routers
	home  []int             // column -> controller index
}

// Port is one core's interface to the shared cache; it satisfies cpu.L2.
type Port struct {
	fab  *Fabric
	id   int
	node topology.NodeID
	ctrl *cache.Controller

	// Lat records the core-observed latency (including the trips to and
	// from a remote home controller).
	Lat *stats.Latency

	RemoteIssues uint64
	LocalIssues  uint64

	pend map[*cache.Request]portPending
}

// hub is the ToCore endpoint at a controller's router: it demultiplexes
// protocol packets to the controller and CMP packets to the port logic.
type hub struct {
	ctrl *cache.Controller
	port *Port
}

func (h *hub) Deliver(pkt *flit.Packet, now int64) {
	switch p := pkt.Payload.(type) {
	case *coreReq:
		h.ctrl.Issue(p.req, now)
	case *coreData:
		p.port.complete(p.req, now)
	default:
		h.ctrl.Deliver(pkt, now)
	}
}

// Attach grafts n cores onto a prebuilt system. Cores spread evenly
// along the top row; the topology's own core attachment point is ignored
// in favor of the computed positions. It errors — rather than panicking
// — on designs CMP cannot host (radial topologies have a single hub,
// gridless topologies no top row) and on out-of-range core counts, so
// batch runners can skip and report unsupported combinations.
func Attach(cs *cache.System, n int) (*Fabric, error) {
	if err := SupportsHost(cs.Topo, cs.Design.ID, n); err != nil {
		return nil, err
	}
	f := &Fabric{Sys: cs, N: n}
	w := cs.Topo.W

	for i := 0; i < n; i++ {
		x := (2*i + 1) * w / (2 * n) // evenly spread along the top row
		node := cs.Topo.NodeAt(x, 0)
		ctrl := cs.Ctrl
		if node != ctrl.Node || i > 0 {
			ctrl = cache.NewControllerAt(cs, node)
		}
		port := &Port{fab: f, id: i, node: node, ctrl: ctrl,
			Lat: stats.NewLatency(len(cs.Design.Banks))}
		f.ports = append(f.ports, port)
		f.ctrls = append(f.ctrls, ctrl)
		f.nodes = append(f.nodes, node)
		cs.Net.Attach(node, flit.ToCore, &hub{ctrl: ctrl, port: port})
	}
	// Home every column on the nearest controller.
	f.home = make([]int, w)
	for col := 0; col < w; col++ {
		best, bestDist := 0, 1<<30
		for i, node := range f.nodes {
			d := abs(cs.Topo.Nodes[node].X - col)
			if d < bestDist {
				best, bestDist = i, d
			}
		}
		f.home[col] = best
	}
	return f, nil
}

// SupportsHost reports whether topology t can host an n-core fabric —
// the same gates Attach applies, exposed so preparation layers can fail
// fast before building a system. designID labels the errors.
func SupportsHost(t *topology.Topology, designID string, n int) error {
	if t.Radial {
		return fmt.Errorf("cmp: design %s is radial (%s): a single hub hosts every core; CMP needs a grid design",
			designID, t.Name)
	}
	if !t.HasGrid() {
		return fmt.Errorf("cmp: design %s (%s) has no full router grid to place cores on",
			designID, t.Name)
	}
	if n < 1 || n > t.W {
		return fmt.Errorf("cmp: core count %d out of range [1,%d]", n, t.W)
	}
	return nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Port returns core i's cache interface.
func (f *Fabric) Port(i int) *Port { return f.ports[i] }

// Home returns the controller index owning a column.
func (f *Fabric) Home(col int) int { return f.home[col] }

// ControllerNode returns the router of controller i.
func (f *Fabric) ControllerNode(i int) topology.NodeID { return f.nodes[i] }

// OffsetAddr relocates an address into core i's private tag range.
func (f *Fabric) OffsetAddr(addr uint64, core int) uint64 {
	return OffsetAddr(f.Sys.AM, addr, core)
}

// Warm interleaves the cores' warm sets into the shared cache (see
// MergeWarm).
func (f *Fabric) Warm(warms [][][]uint64) {
	f.Sys.Warm(MergeWarm(f.Sys.AM, f.Sys.Design.Ways(), warms))
}

// Pending returns outstanding work across every port and controller —
// the fabric-wide complement of (*cache.Controller).Pending that a
// multi-controller drain must check.
func (f *Fabric) Pending() int {
	n := 0
	for _, p := range f.ports {
		n += len(p.pend)
	}
	for _, c := range f.ctrls {
		n += c.Pending()
	}
	return n
}

// Issue submits core-side access i: local columns go straight to the
// co-located controller; remote columns cross the top row to their home.
func (p *Port) Issue(addr uint64, write bool, done func(*cache.Request, int64)) *cache.Request {
	now := p.fab.Sys.K.Now()
	col := p.fab.Sys.AM.ColumnOf(addr)
	h := p.fab.home[col]
	r := &cache.Request{Addr: addr, Write: write}
	issued := now
	r.Done = func(req *cache.Request, t int64) {
		// Runs at the home controller when the data arrives there.
		if h == p.id {
			p.complete(req, t)
			return
		}
		// Forward the data (or write ack) to the requesting core.
		kind := flit.DataToCore
		if req.Write {
			kind = flit.WriteDone
		}
		p.fab.Sys.Net.Send(&flit.Packet{
			Kind: kind, Src: p.fab.nodes[h], Dst: p.node, DstEp: flit.ToCore,
			Addr: req.Addr, Payload: &coreData{req: req, port: p},
		}, t)
	}
	p.userDone(r, done, issued)

	if h == p.id {
		p.LocalIssues++
		p.ctrl.Issue(r, now)
		return r
	}
	p.RemoteIssues++
	kind := flit.ReadReq
	if write {
		kind = flit.WriteData
	}
	p.fab.Sys.Net.Send(&flit.Packet{
		Kind: kind, Src: p.node, Dst: p.fab.nodes[h], DstEp: flit.ToCore,
		Addr: addr, Payload: &coreReq{req: r, home: h},
	}, now)
	return r
}

// pending bookkeeping: the port-level done callback and issue stamp.
type portPending struct {
	done   func(*cache.Request, int64)
	issued int64
}

func (p *Port) userDone(r *cache.Request, done func(*cache.Request, int64), issued int64) {
	if p.pend == nil {
		p.pend = make(map[*cache.Request]portPending)
	}
	p.pend[r] = portPending{done: done, issued: issued}
}

// complete fires when the data reaches this core's router.
func (p *Port) complete(r *cache.Request, now int64) {
	pp, ok := p.pend[r]
	if !ok {
		panic("cmp: completion for unknown request")
	}
	delete(p.pend, r)
	lat := now - pp.issued
	if r.Hit {
		p.Lat.RecordHit(lat, r.HitBank, r.Breakdown)
	} else {
		p.Lat.RecordMiss(lat, r.Breakdown)
	}
	if pp.done != nil {
		pp.done(r, now)
	}
}

// Pending returns outstanding core-side requests.
func (p *Port) Pending() int { return len(p.pend) }

// Package cmp extends the networked cache to chip multiprocessors — the
// paper's primary stated future work ("we are planning to expand the
// study ... to include CMP environments by first analyzing the traffic
// patterns and finding suitable interconnects").
//
// N cores attach along the top row of a mesh design, each co-located with
// a cache controller. Every bank-set column is *homed* on exactly one
// controller (the nearest one), preserving the single-writer column
// serialization the replacement protocols require. A core accessing a
// remotely-homed column sends its request across the top row to the home
// controller, which runs the usual protocol and forwards the data back —
// two extra row traversals that model the CMP's sharing cost.
//
// Cores run disjoint working sets (a multiprogrammed workload, the common
// shared-NUCA evaluation): each core's tags live in a private tag range,
// and the warm state interleaves the cores' hot blocks so they compete
// for the shared capacity from the first access.
package cmp

import (
	"fmt"

	"nucanet/internal/cache"
	"nucanet/internal/config"
	"nucanet/internal/flit"
	"nucanet/internal/sim"
	"nucanet/internal/stats"
	"nucanet/internal/topology"
)

// coreTagStride separates the cores' tag spaces (far above any tag a
// generator produces in a bounded run).
const coreTagStride = uint64(1) << 32

// coreReq carries a remote core's request to the home controller.
type coreReq struct {
	req  *cache.Request
	home int // controller index
}

// coreData carries the completed data notice back to the requesting core.
type coreData struct {
	req  *cache.Request
	port *Port
}

// The CMP forwarding envelopes are protocol messages (flit.Payload).
func (*coreReq) ProtocolMessage() {}

func (*coreData) ProtocolMessage() {}

// System is a shared networked L2 with N cores.
type System struct {
	K     *sim.Kernel
	Cache *cache.System
	N     int

	ports []*Port
	ctrls []*cache.Controller
	nodes []topology.NodeID // controller/core routers
	home  []int             // column -> controller index
}

// Port is one core's interface to the shared cache; it satisfies cpu.L2.
type Port struct {
	sys  *System
	id   int
	node topology.NodeID
	ctrl *cache.Controller

	// Lat records the core-observed latency (including the trips to and
	// from a remote home controller).
	Lat *stats.Latency

	RemoteIssues uint64
	LocalIssues  uint64

	pend map[*cache.Request]portPending
}

// hub is the ToCore endpoint at a controller's router: it demultiplexes
// protocol packets to the controller and CMP packets to the port logic.
type hub struct {
	ctrl *cache.Controller
	port *Port
}

func (h *hub) Deliver(pkt *flit.Packet, now int64) {
	switch p := pkt.Payload.(type) {
	case *coreReq:
		h.ctrl.Issue(p.req, now)
	case *coreData:
		p.port.complete(p.req, now)
	default:
		h.ctrl.Deliver(pkt, now)
	}
}

// New builds an n-core system over a grid design (A-D, G). Cores spread
// evenly along the top row; the topology's own core attachment point is
// ignored in favor of the computed positions. It errors — rather than
// panicking — on designs CMP cannot host (radial topologies have a
// single hub, gridless topologies no top row) and on out-of-range core
// counts, so batch runners can skip and report unsupported combinations.
func New(k *sim.Kernel, d config.Design, policy cache.Policy, mode cache.Mode, n int) (*System, error) {
	cs, err := cache.New(k, d, policy, mode)
	if err != nil {
		return nil, err
	}
	if cs.Topo.Radial {
		return nil, fmt.Errorf("cmp: design %s is radial (%s): a single hub hosts every core; CMP needs a grid design (A-D, G)",
			d.ID, cs.Topo.Name)
	}
	if !cs.Topo.HasGrid() {
		return nil, fmt.Errorf("cmp: design %s (%s) has no full router grid to place cores on",
			d.ID, cs.Topo.Name)
	}
	w := cs.Topo.W
	if n < 1 || n > w {
		return nil, fmt.Errorf("cmp: core count %d out of range [1,%d]", n, w)
	}
	s := &System{K: k, Cache: cs, N: n}

	for i := 0; i < n; i++ {
		x := (2*i + 1) * w / (2 * n) // evenly spread along the top row
		node := cs.Topo.NodeAt(x, 0)
		ctrl := cs.Ctrl
		if node != ctrl.Node || i > 0 {
			ctrl = cache.NewControllerAt(cs, node)
		}
		port := &Port{sys: s, id: i, node: node, ctrl: ctrl,
			Lat: stats.NewLatency(len(d.Banks))}
		s.ports = append(s.ports, port)
		s.ctrls = append(s.ctrls, ctrl)
		s.nodes = append(s.nodes, node)
		cs.Net.Attach(node, flit.ToCore, &hub{ctrl: ctrl, port: port})
	}
	// Home every column on the nearest controller.
	s.home = make([]int, w)
	for col := 0; col < w; col++ {
		best, bestDist := 0, 1<<30
		for i, node := range s.nodes {
			d := abs(cs.Topo.Nodes[node].X - col)
			if d < bestDist {
				best, bestDist = i, d
			}
		}
		s.home[col] = best
	}
	return s, nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Port returns core i's cache interface.
func (s *System) Port(i int) *Port { return s.ports[i] }

// Home returns the controller index owning a column.
func (s *System) Home(col int) int { return s.home[col] }

// ControllerNode returns the router of controller i.
func (s *System) ControllerNode(i int) topology.NodeID { return s.nodes[i] }

// OffsetAddr relocates an address into core i's private tag range.
func (s *System) OffsetAddr(addr uint64, core int) uint64 {
	am := s.Cache.AM
	return am.Compose(am.TagOf(addr)+uint64(core)*coreTagStride,
		am.SetOf(addr), am.ColumnOf(addr))
}

// Warm interleaves the cores' warm sets into the shared cache: each set's
// ways split evenly among the cores' most recent blocks, so the cores
// compete for capacity from the first access. warms[i] is core i's
// WarmBlocks table (ways entries per set).
func (s *System) Warm(warms [][][]uint64) {
	am := s.Cache.AM
	ways := s.Cache.Design.Ways()
	per := ways / len(warms)
	if per == 0 {
		per = 1
	}
	merged := make([][]uint64, am.Columns*am.Sets)
	for idx := range merged {
		var tags []uint64
		// Round-robin the cores' MRU blocks into the set.
		for w := 0; w < ways; w++ {
			c := w % len(warms)
			d := w / len(warms)
			if c >= len(warms) || d >= len(warms[c][idx]) {
				continue
			}
			tag := warms[c][idx][d] + uint64(c)*coreTagStride
			tags = append(tags, tag)
		}
		merged[idx] = tags
	}
	s.Cache.Warm(merged)
}

// Issue submits core-side access i: local columns go straight to the
// co-located controller; remote columns cross the top row to their home.
func (p *Port) Issue(addr uint64, write bool, done func(*cache.Request, int64)) *cache.Request {
	now := p.sys.K.Now()
	col := p.sys.Cache.AM.ColumnOf(addr)
	h := p.sys.home[col]
	r := &cache.Request{Addr: addr, Write: write}
	issued := now
	r.Done = func(req *cache.Request, t int64) {
		// Runs at the home controller when the data arrives there.
		if h == p.id {
			p.complete(req, t)
			return
		}
		// Forward the data (or write ack) to the requesting core.
		kind := flit.DataToCore
		if req.Write {
			kind = flit.WriteDone
		}
		p.sys.Cache.Net.Send(&flit.Packet{
			Kind: kind, Src: p.sys.nodes[h], Dst: p.node, DstEp: flit.ToCore,
			Addr: req.Addr, Payload: &coreData{req: req, port: p},
		}, t)
	}
	p.userDone(r, done, issued)

	if h == p.id {
		p.LocalIssues++
		p.ctrl.Issue(r, now)
		return r
	}
	p.RemoteIssues++
	kind := flit.ReadReq
	if write {
		kind = flit.WriteData
	}
	p.sys.Cache.Net.Send(&flit.Packet{
		Kind: kind, Src: p.node, Dst: p.sys.nodes[h], DstEp: flit.ToCore,
		Addr: addr, Payload: &coreReq{req: r, home: h},
	}, now)
	return r
}

// pending bookkeeping: the port-level done callback and issue stamp.
type portPending struct {
	done   func(*cache.Request, int64)
	issued int64
}

func (p *Port) userDone(r *cache.Request, done func(*cache.Request, int64), issued int64) {
	if p.pend == nil {
		p.pend = make(map[*cache.Request]portPending)
	}
	p.pend[r] = portPending{done: done, issued: issued}
}

// complete fires when the data reaches this core's router.
func (p *Port) complete(r *cache.Request, now int64) {
	pp, ok := p.pend[r]
	if !ok {
		panic("cmp: completion for unknown request")
	}
	delete(p.pend, r)
	lat := now - pp.issued
	if r.Hit {
		p.Lat.RecordHit(lat, r.HitBank, r.Breakdown)
	} else {
		p.Lat.RecordMiss(lat, r.Breakdown)
	}
	if pp.done != nil {
		pp.done(r, now)
	}
}

// Pending returns outstanding core-side requests.
func (p *Port) Pending() int { return len(p.pend) }

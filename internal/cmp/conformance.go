// Multi-requester protocol conformance: the cache package's harness
// checks every policy against the golden model under a single
// controller; this file extends it to the CMP fabric — several cores
// with private tag ranges issuing through their ports, local and remote
// column homes, overlapping sets — with the directory policy's ownership
// bookkeeping reconciled against the ground truth at the end.
package cmp

import (
	"fmt"

	"nucanet/internal/bank"
	"nucanet/internal/cache"
	"nucanet/internal/config"
	"nucanet/internal/router"
	"nucanet/internal/sim"
	"nucanet/internal/telemetry"
	"nucanet/internal/topology"
)

// MCAccess is one scripted access: core Core touches (Col, Set, Tag) in
// its own tag range (the harness applies the owner offset).
type MCAccess struct {
	Core  int
	Col   int
	Set   int
	Tag   uint64
	Write bool
}

// MCWarm preloads one core's blocks into a set: tags are owner-relative,
// MRU to LRU; entries for the same (Col, Set) stack in script order.
type MCWarm struct {
	Core int
	Col  int
	Set  int
	Tags []uint64
}

// MCScenario is one multi-requester conformance micro-scenario.
type MCScenario struct {
	Name  string
	Mode  cache.Mode
	Cores int
	Warm  []MCWarm
	// Pipelined issues the whole script before draining: cross-core
	// traffic is concurrently in flight, so only the runtime invariants
	// and the directory reconciliation are checked (arrival order at a
	// shared column is timing-defined, not script-defined).
	Pipelined bool
	Accesses  []MCAccess

	// tamperGolden (tests only) skips the golden warm-up, making every
	// warm hit disagree with the model — proof the harness is alive.
	tamperGolden bool
}

// ConformanceDesign is the scaled-down mesh the multi-core scenarios run
// on: 4 columns of four 1-way banks give two-to-four cores local and
// remote homes with full replacement-chain depth while running fast.
func ConformanceDesign() config.Design {
	banks := make([]bank.Spec, 4)
	for i := range banks {
		banks[i] = bank.Spec{SizeKB: 64, Ways: 1}
	}
	return config.Design{
		ID: "CONF-CMP", Description: "multi-core conformance mesh",
		Topology: "mesh",
		Params: topology.Params{W: 4, H: 4, CoreX: 2, MemX: 2,
			HorizDelay: 1, VertDelay: []int{1}},
		Banks: banks, Router: router.DefaultConfig(),
	}
}

// MultiCoreScenarios enumerates the matrix: for each mode, every
// (core, local/remote home) pair is probed at every hit depth and on
// misses, read and write; plus overlapping-set interleavings (two- and
// four-core), a cross-core dirty-writeback chase, and a pipelined script
// with concurrent cross-fabric traffic.
func MultiCoreScenarios() []MCScenario {
	warm4 := func(core, col int) MCWarm {
		base := uint64(100 * (core + 1))
		return MCWarm{Core: core, Col: col,
			Tags: []uint64{base + 1, base + 2, base + 3, base + 4}}
	}

	var scs []MCScenario
	for _, mode := range []cache.Mode{cache.Unicast, cache.Multicast} {
		// Two cores at x=1 and x=3: columns 0-2 are homed on core 0,
		// column 3 on core 1.
		for _, pl := range []struct {
			core, col int
			kind      string
		}{
			{0, 0, "local"}, {0, 3, "remote"},
			{1, 3, "local"}, {1, 0, "remote"},
		} {
			w := warm4(pl.core, pl.col)
			for _, write := range []bool{false, true} {
				rw := "read"
				if write {
					rw = "write"
				}
				scs = append(scs, MCScenario{
					Name: fmt.Sprintf("%v/core%d/%s/miss/%s", mode, pl.core, pl.kind, rw),
					Mode: mode, Cores: 2, Warm: []MCWarm{w},
					Accesses: []MCAccess{{Core: pl.core, Col: pl.col, Tag: 999, Write: write}},
				})
				for hp, tag := range w.Tags {
					scs = append(scs, MCScenario{
						Name: fmt.Sprintf("%v/core%d/%s/hit@%d/%s", mode, pl.core, pl.kind, hp, rw),
						Mode: mode, Cores: 2, Warm: []MCWarm{w},
						Accesses: []MCAccess{{Core: pl.core, Col: pl.col, Tag: tag, Write: write}},
					})
				}
			}
		}

		// Overlapping set: both cores' working sets share (col 2, set 0);
		// misses push the other core's blocks out (cross-core evictions
		// the directory must attribute).
		scs = append(scs, MCScenario{
			Name: fmt.Sprintf("%v/overlap2", mode),
			Mode: mode, Cores: 2,
			Warm: []MCWarm{
				{Core: 0, Col: 2, Tags: []uint64{11, 12}},
				{Core: 1, Col: 2, Tags: []uint64{99, 98}},
			},
			Accesses: []MCAccess{
				{Core: 0, Col: 2, Tag: 11},              // hit
				{Core: 1, Col: 2, Tag: 99},              // hit
				{Core: 0, Col: 2, Tag: 77},              // miss, evicts
				{Core: 1, Col: 2, Tag: 88, Write: true}, // miss, evicts
				{Core: 0, Col: 2, Tag: 12},              // golden decides
				{Core: 1, Col: 2, Tag: 98},              // golden decides
			},
		})

		// Cross-core writeback chase: core 0 dirties its LRU-most block
		// on core 1's home column, then core 1 streams misses until the
		// dirty victim is pushed out of the cache by the other owner.
		scs = append(scs, MCScenario{
			Name: fmt.Sprintf("%v/writeback-cross", mode),
			Mode: mode, Cores: 2,
			Warm: []MCWarm{warm4(0, 3)},
			Accesses: []MCAccess{
				{Core: 0, Col: 3, Tag: 104, Write: true},
				{Core: 1, Col: 3, Tag: 301}, {Core: 1, Col: 3, Tag: 302},
				{Core: 1, Col: 3, Tag: 303}, {Core: 1, Col: 3, Tag: 304},
				{Core: 1, Col: 3, Tag: 305},
			},
		})

		// Four cores, one column: every core owns one warm way of
		// (col 0, set 0), hits it, then misses — maximal interleaving of
		// owners within a single replacement chain.
		fourWarm := make([]MCWarm, 4)
		var fourAcc []MCAccess
		for c := 0; c < 4; c++ {
			fourWarm[c] = MCWarm{Core: c, Col: 0, Tags: []uint64{uint64(10*c + 1)}}
			fourAcc = append(fourAcc, MCAccess{Core: c, Col: 0, Tag: uint64(10*c + 1)})
		}
		for c := 0; c < 4; c++ {
			fourAcc = append(fourAcc, MCAccess{Core: c, Col: 0, Tag: uint64(10*c + 7), Write: c%2 == 1})
		}
		scs = append(scs, MCScenario{
			Name: fmt.Sprintf("%v/overlap4", mode),
			Mode: mode, Cores: 4, Warm: fourWarm, Accesses: fourAcc,
		})

		// Pipelined: both cores issue to their remote homes at once, so
		// request, data, and replacement traffic from different owners
		// share the fabric concurrently.
		scs = append(scs, MCScenario{
			Name: fmt.Sprintf("%v/pipelined", mode),
			Mode: mode, Cores: 2, Pipelined: true,
			Warm: []MCWarm{
				{Core: 0, Col: 3, Set: 1, Tags: []uint64{111, 112}},
				{Core: 1, Col: 0, Set: 1, Tags: []uint64{211, 212}},
			},
			Accesses: []MCAccess{
				{Core: 0, Col: 3, Set: 1, Tag: 111},
				{Core: 1, Col: 0, Set: 1, Tag: 211},
				{Core: 0, Col: 3, Set: 1, Tag: 113, Write: true},
				{Core: 1, Col: 0, Set: 1, Tag: 213},
				{Core: 0, Col: 3, Set: 1, Tag: 112},
				{Core: 1, Col: 0, Set: 1, Tag: 214, Write: true},
			},
		})
	}
	return scs
}

// RunMultiCoreScenario executes one scenario on a fresh fabric under the
// directory policy, comparing drain-separated accesses and final
// contents with the golden model, enforcing the runtime protocol
// invariants through the cache package's probe, and reconciling the
// ownership directory against the resident blocks. It returns the
// directory report and the violations found (nil on full conformance).
func RunMultiCoreScenario(sc MCScenario) (cache.DirReport, []string) {
	d := ConformanceDesign()
	k := sim.NewKernel()
	sys, err := cache.New(k, d, cache.Directory, sc.Mode)
	if err != nil {
		return cache.DirReport{}, []string{fmt.Sprintf("build system: %v", err)}
	}
	probe := cache.NewInvariantProbe()
	sys.EnableTelemetry(&telemetry.Collector{Protocol: probe})
	f, err := Attach(sys, sc.Cores)
	if err != nil {
		return cache.DirReport{}, []string{fmt.Sprintf("attach fabric: %v", err)}
	}

	cols := sys.AM.Columns
	warm := make([][]uint64, sys.AM.Sets*cols)
	for _, w := range sc.Warm {
		idx := w.Set*cols + w.Col
		for _, tag := range w.Tags {
			warm[idx] = append(warm[idx], tag+uint64(w.Core)*OwnerStride)
		}
	}
	g := sys.NewGoldenFor()
	if !sc.tamperGolden {
		for idx, tags := range warm {
			if len(tags) > 0 {
				g.Warm(idx%cols, idx/cols, tags)
			}
		}
	}
	sys.Warm(warm)
	probe.Seed(sys)

	var violations []string
	drain := func() {
		if _, idle := k.Run(1_000_000); !idle {
			violations = append(violations, "fabric did not quiesce")
			return
		}
		if n := f.Pending(); n != 0 {
			violations = append(violations, fmt.Sprintf("%d requests stuck across the fabric", n))
		}
		if fl := sys.Net.InFlight(); fl != 0 {
			violations = append(violations, fmt.Sprintf("%d flits stuck in the network", fl))
		}
	}
	touched := map[[2]int]bool{}
	for _, w := range sc.Warm {
		touched[[2]int{w.Col, w.Set}] = true
	}
	for _, acc := range sc.Accesses {
		touched[[2]int{acc.Col, acc.Set}] = true
		owned := acc.Tag + uint64(acc.Core)*OwnerStride
		addr := sys.AM.Compose(owned, acc.Set, acc.Col)
		req := f.Port(acc.Core).Issue(addr, acc.Write, nil)
		if sc.Pipelined {
			continue
		}
		hit, bankPos, _, _ := g.Access(acc.Col, acc.Set, owned)
		drain()
		if req.Hit != hit || (hit && req.HitBank != bankPos) {
			violations = append(violations,
				fmt.Sprintf("core %d tag %d col %d set %d: sim hit=%v bank=%d, golden hit=%v bank=%d",
					acc.Core, acc.Tag, acc.Col, acc.Set, req.Hit, req.HitBank, hit, bankPos))
		}
	}
	if sc.Pipelined {
		drain()
	} else {
		// Final contents must match the golden model on every touched set.
		for cs := range touched {
			got := sys.Contents(cs[0], cs[1])
			want := g.Contents(cs[0], cs[1])
			if fmt.Sprint(got) != fmt.Sprint(want) {
				violations = append(violations,
					fmt.Sprintf("col %d set %d contents: sim %v, golden %v", cs[0], cs[1], got, want))
			}
		}
	}

	violations = append(violations, probe.Finish(sys)...)
	if st := sys.Net.PoolStats(); st.Live != 0 {
		violations = append(violations,
			fmt.Sprintf("packet pool leak: %d live replica packets after drain", st.Live))
	}
	violations = append(violations, sys.Dir.Verify(sys)...)
	return sys.Dir.Report(), violations
}

// RunMultiCoreConformance runs the full matrix, returning the scenario
// count and every violation prefixed with its scenario name.
func RunMultiCoreConformance() (scenarios int, violations []string) {
	scs := MultiCoreScenarios()
	for _, sc := range scs {
		_, vs := RunMultiCoreScenario(sc)
		for _, v := range vs {
			violations = append(violations, sc.Name+": "+v)
		}
	}
	return len(scs), violations
}

package cmp

import (
	"fmt"
	"testing"

	"nucanet/internal/cache"
)

// TestRunManyDeterministicAcrossWorkers runs the same CMP sweep
// sequentially and on the pool: results must match field for field, and
// each run's latency snapshot must be mergeable into an order-invariant
// aggregate.
func TestRunManyDeterministicAcrossWorkers(t *testing.T) {
	var opts []Options
	for _, cores := range []int{1, 2, 4} {
		opts = append(opts, Options{
			DesignID: "A", Policy: cache.FastLRU, Mode: cache.Multicast,
			Cores: cores, Benchmark: "gcc", Accesses: 300, Seed: 7,
		})
	}
	seq, err := RunMany(opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunMany(opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range opts {
		a := fmt.Sprintf("%v %v %+v %s", seq[i].ThroughputIPC, seq[i].CacheHitRate, seq[i].Cores, seq[i].Latency)
		b := fmt.Sprintf("%v %v %+v %s", par[i].ThroughputIPC, par[i].CacheHitRate, par[i].Cores, par[i].Latency)
		if a != b {
			t.Errorf("run %d (%d cores) diverges:\nj=1: %s\nj=4: %s", i, opts[i].Cores, a, b)
		}
	}
	if seq[0].Latency == nil || seq[0].Latency.Count == 0 {
		t.Fatal("latency snapshot missing")
	}
	// Merged sweep totals are the sums of the parts, either direction.
	fwd := seq[0].Latency.Clone()
	fwd.Merge(seq[1].Latency)
	fwd.Merge(seq[2].Latency)
	rev := seq[2].Latency.Clone()
	rev.Merge(seq[1].Latency)
	rev.Merge(seq[0].Latency)
	if fwd.Count != rev.Count || fwd.Sum != rev.Sum || fwd.String() != rev.String() {
		t.Errorf("merge order changed the aggregate: %s vs %s", fwd, rev)
	}
}

package cmp

import (
	"strings"
	"testing"

	"nucanet/internal/cache"
)

// TestMultiCoreConformance runs the full multi-requester matrix: every
// (core, local/remote home) pair at every hit depth and on misses,
// overlapping sets with two and four cores, cross-core writebacks, and
// a pipelined concurrent script — all in golden lock-step under the
// directory policy with the runtime protocol invariants enforced.
func TestMultiCoreConformance(t *testing.T) {
	scs := MultiCoreScenarios()
	if len(scs) < 80 {
		t.Fatalf("multi-core matrix has %d scenarios, want >= 80", len(scs))
	}
	n, violations := RunMultiCoreConformance()
	if n != len(scs) {
		t.Fatalf("ran %d scenarios, enumerated %d", n, len(scs))
	}
	if len(violations) > 0 {
		max := len(violations)
		if max > 20 {
			max = 20
		}
		t.Fatalf("%d violations across %d scenarios; first %d:\n%s",
			len(violations), n, max, strings.Join(violations[:max], "\n"))
	}
	t.Logf("%d scenarios, 0 violations", n)
}

// TestDirectoryAttributesCrossEvictions pins the directory's reason to
// exist: in the overlapping-set scenario, the ownership matrix must
// record blocks of one core pushed out by the other.
func TestDirectoryAttributesCrossEvictions(t *testing.T) {
	for _, sc := range MultiCoreScenarios() {
		if !strings.HasSuffix(sc.Name, "/overlap2") {
			continue
		}
		rep, violations := RunMultiCoreScenario(sc)
		if len(violations) != 0 {
			t.Fatalf("%s: %v", sc.Name, violations)
		}
		if rep.CrossDrops == 0 {
			t.Errorf("%s: no cross-core evictions attributed (%+v)", sc.Name, rep)
		}
		if len(rep.Owners) < 2 {
			t.Errorf("%s: directory saw %d owners, want 2", sc.Name, rep.Owners)
		}
		for _, o := range rep.Owners {
			if rep.Hits[o] == 0 {
				t.Errorf("%s: owner %d recorded no hits", sc.Name, o)
			}
		}
	}
}

// TestMultiCoreConformanceCatchesTampering proves the harness is alive:
// warming only the simulated system (not the golden model) must produce
// hit-decision and contents violations.
func TestMultiCoreConformanceCatchesTampering(t *testing.T) {
	sc := MCScenario{
		Name: "tamper", Mode: cache.Multicast, Cores: 2,
		Warm:     []MCWarm{{Core: 0, Col: 0, Tags: []uint64{11, 12}}},
		Accesses: []MCAccess{{Core: 0, Col: 0, Tag: 11}},
	}
	if _, v := RunMultiCoreScenario(sc); len(v) != 0 {
		t.Fatalf("control scenario should pass, got %v", v)
	}
	sc.tamperGolden = true
	if _, v := RunMultiCoreScenario(sc); len(v) == 0 {
		t.Fatal("tampered golden state produced no violations; the harness is dead")
	}
}

package flit

import (
	"strings"
	"testing"
)

func TestKindFlits(t *testing.T) {
	oneFlit := []Kind{ReadReq, MissNotify, CompleteNotify, WriteDone, MemReadReq}
	for _, k := range oneFlit {
		if k.Flits() != 1 {
			t.Errorf("%v.Flits() = %d, want 1", k, k.Flits())
		}
		if k.CarriesBlock() {
			t.Errorf("%v should not carry a block", k)
		}
	}
	fiveFlit := []Kind{WriteData, ReplaceBlock, BlockToMRU, HitData, MemBlock, DataToCore, WriteBack}
	for _, k := range fiveFlit {
		if k.Flits() != BlockFlits {
			t.Errorf("%v.Flits() = %d, want %d", k, k.Flits(), BlockFlits)
		}
		if !k.CarriesBlock() {
			t.Errorf("%v should carry a block", k)
		}
	}
}

func TestKindStringsUnique(t *testing.T) {
	seen := map[string]bool{}
	for k := Kind(0); k < numKinds; k++ {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "Kind(") {
			t.Errorf("kind %d has no name", k)
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
}

func TestFlitize(t *testing.T) {
	p := &Packet{ID: 9, Kind: HitData}
	fs := Flitize(p)
	if len(fs) != BlockFlits {
		t.Fatalf("len = %d, want %d", len(fs), BlockFlits)
	}
	if !fs[0].Head || fs[0].Tail {
		t.Error("first flit must be head only")
	}
	if !fs[len(fs)-1].Tail || fs[len(fs)-1].Head {
		t.Error("last flit must be tail only")
	}
	for i, f := range fs {
		if f.Seq != i {
			t.Errorf("flit %d has Seq %d", i, f.Seq)
		}
		if f.Pkt != p {
			t.Errorf("flit %d lost packet pointer", i)
		}
	}
}

func TestFlitizeSingle(t *testing.T) {
	p := &Packet{Kind: ReadReq}
	fs := Flitize(p)
	if len(fs) != 1 {
		t.Fatalf("len = %d, want 1", len(fs))
	}
	if !fs[0].Head || !fs[0].Tail {
		t.Error("single flit must be both head and tail")
	}
}

func TestEndpointString(t *testing.T) {
	if ToBank.String() != "bank" || ToCore.String() != "core" || ToMem.String() != "mem" {
		t.Error("endpoint names wrong")
	}
}

func TestPacketString(t *testing.T) {
	p := &Packet{ID: 1, Kind: ReadReq, Src: 2, Dst: 3, DstEp: ToBank, Addr: 0x40, PathDeliver: true}
	s := p.String()
	for _, want := range []string{"ReadReq", "2->3", "bank", "mcast"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

package flit

// PacketPool recycles Packets through a freelist so hot paths that mint
// short-lived packets every cycle — the router's hybrid multicast
// replicator — stop reaching the garbage collector. One pool belongs to
// one simulation run (one kernel) and is only touched from the goroutine
// driving that kernel, so it needs no synchronization — the same
// per-run ownership discipline as the rest of the simulator state.
//
// Packets from Get are marked internally; Put on a packet that did not
// come from a pool (or was already returned) is a no-op, so drain paths
// may call Put unconditionally on every ejected packet. A nil *PacketPool
// degrades gracefully: Get falls back to a plain heap allocation and Put
// does nothing, so unwired routers keep working without a pool.
type PacketPool struct {
	free []*Packet

	gets uint64 // packets handed out
	puts uint64 // packets returned
	news uint64 // gets that had to allocate (freelist empty)
}

// Get returns a zeroed pooled packet (or a plain allocation when p is nil).
func (p *PacketPool) Get() *Packet {
	if p == nil {
		return &Packet{}
	}
	p.gets++
	if n := len(p.free); n > 0 {
		pkt := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		*pkt = Packet{pooled: true}
		return pkt
	}
	p.news++
	return &Packet{pooled: true}
}

// Put returns a pooled packet to the freelist, dropping its payload
// reference. Non-pooled, already-returned, and nil packets are ignored.
func (p *PacketPool) Put(pkt *Packet) {
	if p == nil || pkt == nil || !pkt.pooled {
		return
	}
	pkt.pooled = false
	pkt.Payload = nil
	p.puts++
	p.free = append(p.free, pkt)
}

// PoolStats is a snapshot of a pool's accounting, the basis of the leak
// invariant: after a run drains, Gets == Puts and Live == 0.
type PoolStats struct {
	Gets      uint64 // packets handed out
	Puts      uint64 // packets returned exactly once
	Allocated uint64 // gets served by a fresh allocation
	Live      uint64 // packets currently out (Gets - Puts)
}

// Stats returns the pool's accounting snapshot (zero for a nil pool).
func (p *PacketPool) Stats() PoolStats {
	if p == nil {
		return PoolStats{}
	}
	return PoolStats{Gets: p.gets, Puts: p.puts, Allocated: p.news, Live: p.gets - p.puts}
}

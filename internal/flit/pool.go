package flit

// PacketPool recycles Packets through a freelist so hot paths that mint
// short-lived packets every cycle — the router's hybrid multicast
// replicator — stop reaching the garbage collector. One pool belongs to
// one simulation run (one kernel) and is only touched from the goroutine
// driving that kernel, so it needs no synchronization — the same
// per-run ownership discipline as the rest of the simulator state.
//
// Packets from Get are marked internally; Put on a packet that did not
// come from a pool (or was already returned) is a no-op, so drain paths
// may call Put unconditionally on every ejected packet. A nil *PacketPool
// degrades gracefully: Get falls back to a plain heap allocation and Put
// does nothing, so unwired routers keep working without a pool.
type PacketPool struct {
	free []*Packet
	held []*Packet // returned but not yet recycled (deferred mode)

	deferred bool // see SetDeferred

	gets uint64 // packets handed out
	puts uint64 // packets returned
	news uint64 // gets that had to allocate (freelist empty)
}

// SetDeferred switches the pool to deferred recycling: Put still marks
// the packet returned immediately (so double-Put stays a no-op and the
// leak accounting is unchanged), but the packet keeps its payload and
// stays off the freelist until Flush. The sharded kernel needs this —
// a router returns a packet in the same cycle its delivery is staged,
// and the endpoint must still read the packet when the staged delivery
// executes at the window boundary, after which the network Flushes.
func (p *PacketPool) SetDeferred(on bool) {
	if p != nil {
		p.deferred = on
	}
}

// Flush recycles every deferred-returned packet onto the freelist,
// dropping payload references. A no-op for pools not in deferred mode.
func (p *PacketPool) Flush() {
	if p == nil {
		return
	}
	for i, pkt := range p.held {
		pkt.Payload = nil
		p.free = append(p.free, pkt)
		p.held[i] = nil
	}
	p.held = p.held[:0]
}

// Get returns a zeroed pooled packet (or a plain allocation when p is nil).
func (p *PacketPool) Get() *Packet {
	if p == nil {
		return &Packet{}
	}
	p.gets++
	if n := len(p.free); n > 0 {
		pkt := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		*pkt = Packet{pooled: true}
		return pkt
	}
	p.news++
	return &Packet{pooled: true}
}

// Put returns a pooled packet to the freelist, dropping its payload
// reference. Non-pooled, already-returned, and nil packets are ignored.
func (p *PacketPool) Put(pkt *Packet) {
	if p == nil || pkt == nil || !pkt.pooled {
		return
	}
	pkt.pooled = false
	p.puts++
	if p.deferred {
		p.held = append(p.held, pkt)
		return
	}
	pkt.Payload = nil
	p.free = append(p.free, pkt)
}

// PoolStats is a snapshot of a pool's accounting, the basis of the leak
// invariant: after a run drains, Gets == Puts and Live == 0.
type PoolStats struct {
	Gets      uint64 // packets handed out
	Puts      uint64 // packets returned exactly once
	Allocated uint64 // gets served by a fresh allocation
	Live      uint64 // packets currently out (Gets - Puts)
}

// Stats returns the pool's accounting snapshot (zero for a nil pool).
func (p *PacketPool) Stats() PoolStats {
	if p == nil {
		return PoolStats{}
	}
	return PoolStats{Gets: p.gets, Puts: p.puts, Allocated: p.news, Live: p.gets - p.puts}
}

// Package flit defines the messages carried by the on-chip network:
// packets, their flitization (Section 5 of the paper), and the message
// kinds exchanged by the networked cache protocol.
//
// The link width is 16 B (128-bit flits). An address-only message (read
// request, notification) fits in one flit including the overhead fields
// (type, size, routing, communication type). A message carrying a 64 B
// cache block plus its address is five flits.
package flit

import "fmt"

// Kind enumerates every message exchanged between the core (cache
// controller), the banks, and the off-chip memory.
type Kind uint8

const (
	// ReadReq asks a bank (or a column of banks, when multicast) to
	// tag-match a block address. 1 flit. Under unicast Fast-LRU the
	// forwarded request travels glued to the evicted block as a
	// ReplaceBlock packet instead.
	ReadReq Kind = iota
	// WriteData is a write request: the tag-match probe carrying the
	// store data with it. 5 flits.
	WriteData
	// ReplaceBlock carries an evicted block to the next-farther bank in
	// a replacement chain (under unicast Fast-LRU it also carries the
	// data request onward). 5 flits.
	ReplaceBlock
	// BlockToMRU carries the hit block from the hit bank to the MRU
	// bank, whose frame is already empty under Fast-LRU. 5 flits.
	BlockToMRU
	// HitData carries the requested block from the hit bank to the
	// core. 5 flits.
	HitData
	// MissNotify tells the core a bank missed (multicast tag-match). 1 flit.
	MissNotify
	// CompleteNotify tells the core a replacement chain finished. 1 flit.
	CompleteNotify
	// WriteDone tells the core a write has been performed (the write
	// counterpart of HitData/DataToCore; only the address). 1 flit.
	WriteDone
	// MemReadReq asks the off-chip memory for a block. 1 flit.
	MemReadReq
	// MemBlock carries a fresh block from memory to the MRU bank. 5 flits.
	MemBlock
	// DataToCore forwards a freshly-filled block from the MRU bank to
	// the core. 5 flits.
	DataToCore
	// WriteBack carries a dirty victim from the LRU bank to memory. 5 flits.
	WriteBack
	numKinds
)

var kindNames = [numKinds]string{
	"ReadReq", "WriteData", "ReplaceBlock", "BlockToMRU", "HitData",
	"MissNotify", "CompleteNotify", "WriteDone", "MemReadReq",
	"MemBlock", "DataToCore", "WriteBack",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// BlockFlits is the flit count of a packet carrying a 64 B block: 32-bit
// address + 64 B data + overhead, split over 128-bit flits.
const BlockFlits = 5

// Flits returns the number of flits a packet of this kind occupies.
func (k Kind) Flits() int {
	switch k {
	case WriteData, ReplaceBlock, BlockToMRU, HitData, MemBlock, DataToCore, WriteBack:
		return BlockFlits
	default:
		return 1
	}
}

// CarriesBlock reports whether the packet payload includes cache-block data.
func (k Kind) CarriesBlock() bool { return k.Flits() == BlockFlits }

// Payload is the closed set of protocol message types a Packet may
// carry. The network treats payloads as opaque; the marker method keeps
// the set explicit and typed — every payload producer (the cache
// protocol's typed messages, the memory controller's read requests, the
// CMP layer's forwarding envelopes) declares itself by implementing it,
// and every consumer dispatches with an exhaustive type switch instead
// of blind any-assertions. Payload implementations are pointer-shaped,
// so storing one in a Packet never boxes a value onto the heap.
type Payload interface {
	// ProtocolMessage brands the type as a member of the protocol
	// message catalogue (see the cache package's message definitions).
	ProtocolMessage()
}

// Endpoint selects which agent attached to the destination router receives
// the packet.
type Endpoint uint8

const (
	ToBank Endpoint = iota // the cache bank at the router
	ToCore                 // the cache controller / core
	ToMem                  // the off-chip memory controller
)

func (e Endpoint) String() string {
	switch e {
	case ToBank:
		return "bank"
	case ToCore:
		return "core"
	case ToMem:
		return "mem"
	}
	return fmt.Sprintf("Endpoint(%d)", uint8(e))
}

// Packet is one network message. Packets are flitized on injection and
// reassembled on ejection; the Payload travels opaque to the network.
type Packet struct {
	ID   uint64
	Kind Kind
	// Src and Dst are router node ids. DstEp selects the agent at Dst.
	Src, Dst int
	DstEp    Endpoint
	// DstPos disambiguates bank endpoints on concentrated topologies,
	// where one router hosts several banks of a column: it is the
	// column position (0 = MRU side) of the addressed bank, or -1 to
	// address every bank at the node (multicast tag-match probes).
	// Topologies with one bank per router leave it 0.
	DstPos int16
	// PathDeliver marks a path-based multicast: a copy of the packet is
	// delivered to the bank at every router on the final straight
	// segment of the route (the bank column / spike), ending at Dst.
	PathDeliver bool
	// Addr is the block address the message concerns.
	Addr uint64
	// Payload carries protocol state opaque to the network.
	Payload Payload

	// Injected and Delivered are set by the network for latency
	// accounting (injection cycle, final-flit delivery cycle).
	Injected  int64
	Delivered int64

	// pooled marks a packet checked out of a PacketPool; only such
	// packets re-enter a freelist on Put.
	pooled bool
}

// Flits returns the flit count of the packet.
func (p *Packet) Flits() int { return p.Kind.Flits() }

func (p *Packet) String() string {
	mc := ""
	if p.PathDeliver {
		mc = " mcast"
	}
	return fmt.Sprintf("pkt#%d %s %d->%d/%s addr=%#x%s", p.ID, p.Kind, p.Src, p.Dst, p.DstEp, p.Addr, mc)
}

// Flit is one link-width slice of a packet.
type Flit struct {
	Pkt  *Packet
	Seq  int // 0-based position within the packet
	Head bool
	Tail bool
}

// Flitize splits a packet into its flits in order.
func Flitize(p *Packet) []Flit {
	n := p.Flits()
	fs := make([]Flit, n)
	for i := 0; i < n; i++ {
		fs[i] = Flit{Pkt: p, Seq: i, Head: i == 0, Tail: i == n-1}
	}
	return fs
}

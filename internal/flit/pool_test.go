package flit

import "testing"

// testPayload is a stand-in protocol message for pool tests.
type testPayload struct{ tag string }

func (*testPayload) ProtocolMessage() {}

func TestPoolGetPutRecycles(t *testing.T) {
	p := &PacketPool{}
	a := p.Get()
	a.Kind, a.Addr, a.Payload = WriteData, 0x40, &testPayload{tag: "x"}
	p.Put(a)
	b := p.Get()
	if b != a {
		t.Fatal("Get did not reuse the returned packet")
	}
	if b.Kind != ReadReq || b.Addr != 0 || b.Payload != nil {
		t.Fatalf("reused packet not zeroed: %+v", b)
	}
	if !b.pooled {
		t.Fatal("reused packet lost its pool mark")
	}
	st := p.Stats()
	if st.Gets != 2 || st.Puts != 1 || st.Allocated != 1 || st.Live != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestPoolDoublePutIgnored pins the exactly-once return property: a
// second Put of the same packet is a no-op, so a drain path calling Put
// unconditionally cannot corrupt the freelist with duplicates.
func TestPoolDoublePutIgnored(t *testing.T) {
	p := &PacketPool{}
	a := p.Get()
	p.Put(a)
	p.Put(a)
	if st := p.Stats(); st.Puts != 1 {
		t.Fatalf("double Put counted: %+v", st)
	}
	b, c := p.Get(), p.Get()
	if b == c {
		t.Fatal("freelist handed the same packet out twice")
	}
}

func TestPoolForeignAndNilPutIgnored(t *testing.T) {
	p := &PacketPool{}
	p.Put(&Packet{}) // never came from a pool
	p.Put(nil)
	if st := p.Stats(); st.Puts != 0 {
		t.Fatalf("foreign/nil Put counted: %+v", st)
	}
	if got := p.Get(); !got.pooled {
		t.Fatal("pool handed out an unmarked packet")
	}
}

func TestPoolNilReceiver(t *testing.T) {
	var p *PacketPool
	a := p.Get()
	if a == nil || a.pooled {
		t.Fatalf("nil pool Get: %+v", a)
	}
	p.Put(a) // must not panic
	if st := p.Stats(); st != (PoolStats{}) {
		t.Fatalf("nil pool stats: %+v", st)
	}
}

// TestPoolLeakInvariant cycles many packets through the pool and checks
// the accounting identity Gets == Puts + Live, with Live == 0 after a
// full drain and allocations bounded by the peak working set.
func TestPoolLeakInvariant(t *testing.T) {
	p := &PacketPool{}
	const rounds, width = 50, 8
	live := make([]*Packet, 0, width)
	for r := 0; r < rounds; r++ {
		for i := 0; i < width; i++ {
			live = append(live, p.Get())
		}
		for _, pkt := range live {
			p.Put(pkt)
		}
		live = live[:0]
	}
	st := p.Stats()
	if st.Gets != rounds*width || st.Puts != st.Gets || st.Live != 0 {
		t.Fatalf("leak: %+v", st)
	}
	if st.Allocated > width {
		t.Fatalf("allocated %d fresh packets for a working set of %d", st.Allocated, width)
	}
}

func TestPoolPutDropsPayload(t *testing.T) {
	p := &PacketPool{}
	a := p.Get()
	a.Payload = &testPayload{tag: "held"}
	p.Put(a)
	if a.Payload != nil {
		t.Fatal("Put kept the payload reference alive")
	}
}

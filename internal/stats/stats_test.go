package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAverages(t *testing.T) {
	l := NewLatency(16)
	l.RecordHit(10, 0, Breakdown{Bank: 2, Network: 8})
	l.RecordHit(20, 3, Breakdown{Bank: 5, Network: 15})
	l.RecordMiss(200, Breakdown{Bank: 30, Network: 40, Memory: 130})
	if l.Count != 3 || l.Hits != 2 || l.Misses != 1 {
		t.Fatalf("counts wrong: %+v", l)
	}
	if got := l.Avg(); math.Abs(got-230.0/3) > 1e-9 {
		t.Fatalf("Avg = %v", got)
	}
	if got := l.AvgHit(); got != 15 {
		t.Fatalf("AvgHit = %v", got)
	}
	if got := l.AvgMiss(); got != 200 {
		t.Fatalf("AvgMiss = %v", got)
	}
	if got := l.HitRate(); math.Abs(got-2.0/3) > 1e-9 {
		t.Fatalf("HitRate = %v", got)
	}
	if l.MaxLat != 200 {
		t.Fatalf("MaxLat = %d", l.MaxLat)
	}
}

func TestSharesSumToOne(t *testing.T) {
	if err := quick.Check(func(vals [][3]uint8) bool {
		l := NewLatency(4)
		any := false
		for _, v := range vals {
			b := Breakdown{Bank: int64(v[0]), Network: int64(v[1]), Memory: int64(v[2])}
			if b.Total() == 0 {
				continue
			}
			any = true
			l.RecordHit(b.Total(), 0, b)
		}
		bk, nw, mm := l.Shares()
		if !any {
			return bk == 0 && nw == 0 && mm == 0
		}
		return math.Abs(bk+nw+mm-1) < 1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHitWayHistogram(t *testing.T) {
	l := NewLatency(4)
	l.RecordHit(1, 0, Breakdown{Network: 1})
	l.RecordHit(1, 0, Breakdown{Network: 1})
	l.RecordHit(1, 3, Breakdown{Network: 1})
	l.RecordHit(1, 99, Breakdown{Network: 1}) // out of range: dropped
	if got := l.HitWayShare(0); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("way 0 share = %v", got)
	}
	if got := l.HitWayShare(3); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("way 3 share = %v", got)
	}
	hw := l.HitWays()
	if len(hw) != 4 || hw[0] != 2 || hw[3] != 1 {
		t.Fatalf("histogram = %v", hw)
	}
}

func TestEmptyIsZero(t *testing.T) {
	l := NewLatency(2)
	if l.Avg() != 0 || l.AvgHit() != 0 || l.AvgMiss() != 0 || l.HitRate() != 0 {
		t.Fatal("empty stats must read zero")
	}
}

func TestBreakdownTotal(t *testing.T) {
	b := Breakdown{Bank: 1, Network: 2, Memory: 3}
	if b.Total() != 6 {
		t.Fatal("Total wrong")
	}
}

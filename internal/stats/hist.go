package stats

import "math/bits"

// Histogram is a log-bucketed latency histogram: values below 32 cycles
// get exact buckets, larger values fall into 16 linear sub-buckets per
// power of two, bounding the relative quantile error at ~6%. The bucket
// array is a fixed-size value (no pointers), so recording is a single
// array increment — allocation-free and cheap enough to run on every
// access of the default path — and Clone-by-copy works via plain struct
// assignment.
//
// Merge adds bucket counts element-wise, making it commutative and
// associative: percentiles of a merged histogram are exactly the
// percentiles of the combined sample, which is what lets the parallel
// experiment engine report p50/p99 over a whole sweep (pinned by
// TestHistogramMergeTable).

const (
	histSubBits = 4                // 16 linear sub-buckets per octave
	histSub     = 1 << histSubBits // sub-buckets per power of two
	histExact   = 2 * histSub      // values < 32 are bucketed exactly
	histMaxLen  = 42               // max value bit-length before clamping
	histBuckets = histExact + (histMaxLen-histSubBits-1)*histSub
)

// Histogram accumulates non-negative int64 samples.
type Histogram struct {
	N      int64
	counts [histBuckets]int64
}

// histBucket maps a value to its bucket index.
func histBucket(v uint64) int {
	if v < histExact {
		return int(v)
	}
	r := bits.Len64(v)
	if r > histMaxLen {
		return histBuckets - 1
	}
	sub := int((v >> uint(r-1-histSubBits)) & (histSub - 1))
	return histExact + (r-histSubBits-2)*histSub + sub
}

// histUpper returns the largest value mapping to bucket b — the value
// Percentile reports, so quantiles are conservative (never understate).
func histUpper(b int) int64 {
	if b < histExact {
		return int64(b)
	}
	region := (b - histExact) / histSub
	sub := (b - histExact) % histSub
	r := region + histSubBits + 2
	return int64(uint64(histSub+sub+1)<<uint(r-1-histSubBits) - 1)
}

// Record adds one sample. Negative samples clamp to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[histBucket(uint64(v))]++
	h.N++
}

// Merge adds o's buckets into h element-wise.
func (h *Histogram) Merge(o *Histogram) {
	h.N += o.N
	for i, c := range o.counts {
		h.counts[i] += c
	}
}

// Percentile returns an upper bound on the q-quantile (0 < q <= 1) of
// the recorded samples, exact below 32 and within ~6% above. An empty
// histogram reports 0.
func (h *Histogram) Percentile(q float64) int64 {
	if h.N == 0 {
		return 0
	}
	target := int64(q*float64(h.N) + 0.5)
	if target < 1 {
		target = 1
	}
	if target > h.N {
		target = h.N
	}
	var cum int64
	for b, c := range h.counts {
		cum += c
		if cum >= target {
			return histUpper(b)
		}
	}
	return histUpper(histBuckets - 1)
}

// Buckets returns the non-empty buckets as (upper bound, count) pairs in
// ascending value order — for tests and external renderers.
func (h *Histogram) Buckets() (uppers []int64, counts []int64) {
	for b, c := range h.counts {
		if c != 0 {
			uppers = append(uppers, histUpper(b))
			counts = append(counts, c)
		}
	}
	return uppers, counts
}

// Package stats aggregates per-access measurements into the quantities
// the paper reports: average access/hit/miss latency (Figure 8), the
// bank/network/memory breakdown of the total latency (Figure 7), and the
// hit-way distribution that explains why LRU beats Promotion.
package stats

import "fmt"

// Breakdown splits cycles of one access among the three latency sources.
type Breakdown struct {
	Bank    int64
	Network int64
	Memory  int64
}

// Total returns the summed cycles.
func (b Breakdown) Total() int64 { return b.Bank + b.Network + b.Memory }

// Latency accumulates access latencies for one run.
type Latency struct {
	Count  int64
	Sum    int64
	MaxLat int64

	Hits    int64
	HitSum  int64
	Misses  int64
	MissSum int64

	Bank    int64
	Network int64
	Memory  int64

	// Occupancy tracks how long each operation held its bank-set column
	// (request issue to replacement-chain completion). Fast-LRU's
	// structural advantage over classic LRU is exactly here: tag-match
	// overlaps replacement, so the column frees much earlier.
	OccCount int64
	OccSum   int64

	// Hist buckets every access latency so the tail (p50/p90/p99) is
	// reportable, not just the mean; Merge combines bucket-exactly across
	// runs of a parallel sweep.
	Hist Histogram

	hitWays []int64
}

// NewLatency sizes the hit-way histogram for a bank-set associativity.
func NewLatency(ways int) *Latency {
	return &Latency{hitWays: make([]int64, ways)}
}

// RecordHit logs a hit at the given bank-set way.
func (l *Latency) RecordHit(lat int64, way int, b Breakdown) {
	l.record(lat, b)
	l.Hits++
	l.HitSum += lat
	if way >= 0 && way < len(l.hitWays) {
		l.hitWays[way]++
	}
}

// RecordMiss logs a miss serviced by memory.
func (l *Latency) RecordMiss(lat int64, b Breakdown) {
	l.record(lat, b)
	l.Misses++
	l.MissSum += lat
}

func (l *Latency) record(lat int64, b Breakdown) {
	l.Count++
	l.Sum += lat
	l.Hist.Record(lat)
	if lat > l.MaxLat {
		l.MaxLat = lat
	}
	l.Bank += b.Bank
	l.Network += b.Network
	l.Memory += b.Memory
}

// Clone returns an independent deep copy (the hit-way histogram is the
// only reference field). Snapshotting a run's Latency through Clone lets
// a parallel sweep hand stats across goroutines without aliasing.
func (l *Latency) Clone() *Latency {
	c := *l
	c.hitWays = append([]int64(nil), l.hitWays...)
	return &c
}

// Merge folds o into l: counters and sums add, MaxLat takes the maximum,
// and the hit-way histograms add element-wise (l grows to o's
// associativity if needed). Merge is commutative and associative up to
// hitWays length, so multi-run aggregates combined in submission order
// equal any other combination order — the property the parallel
// experiment engine relies on (and the merge-order invariance test pins).
func (l *Latency) Merge(o *Latency) {
	l.Count += o.Count
	l.Sum += o.Sum
	if o.MaxLat > l.MaxLat {
		l.MaxLat = o.MaxLat
	}
	l.Hits += o.Hits
	l.HitSum += o.HitSum
	l.Misses += o.Misses
	l.MissSum += o.MissSum
	l.Bank += o.Bank
	l.Network += o.Network
	l.Memory += o.Memory
	l.OccCount += o.OccCount
	l.OccSum += o.OccSum
	l.Hist.Merge(&o.Hist)
	if len(o.hitWays) > len(l.hitWays) {
		grown := make([]int64, len(o.hitWays))
		copy(grown, l.hitWays)
		l.hitWays = grown
	}
	for i, v := range o.hitWays {
		l.hitWays[i] += v
	}
}

// AddOccupancy logs one operation's column-occupancy span.
func (l *Latency) AddOccupancy(span int64) {
	l.OccCount++
	l.OccSum += span
}

// AvgOccupancy returns the mean column-occupancy span.
func (l *Latency) AvgOccupancy() float64 { return ratio(l.OccSum, l.OccCount) }

// Avg returns the mean access latency.
func (l *Latency) Avg() float64 { return ratio(l.Sum, l.Count) }

// AvgHit returns the mean hit latency.
func (l *Latency) AvgHit() float64 { return ratio(l.HitSum, l.Hits) }

// AvgMiss returns the mean miss latency.
func (l *Latency) AvgMiss() float64 { return ratio(l.MissSum, l.Misses) }

// HitRate returns hits / accesses.
func (l *Latency) HitRate() float64 { return ratio(l.Hits, l.Count) }

// Percentile returns the q-quantile of the access-latency distribution
// (see Histogram.Percentile for the error bound).
func (l *Latency) Percentile(q float64) int64 { return l.Hist.Percentile(q) }

// Shares returns the bank/network/memory fractions of total latency —
// the Figure 7 split. They sum to 1 for a non-empty run.
func (l *Latency) Shares() (bank, network, memory float64) {
	total := l.Bank + l.Network + l.Memory
	if total == 0 {
		return 0, 0, 0
	}
	return float64(l.Bank) / float64(total),
		float64(l.Network) / float64(total),
		float64(l.Memory) / float64(total)
}

// HitWayShare returns the fraction of hits landing on bank-set way w
// (way 0 = the MRU bank).
func (l *Latency) HitWayShare(w int) float64 {
	if w < 0 || w >= len(l.hitWays) {
		return 0
	}
	return ratio(l.hitWays[w], l.Hits)
}

// HitWays returns a copy of the hit-way histogram.
func (l *Latency) HitWays() []int64 {
	out := make([]int64, len(l.hitWays))
	copy(out, l.hitWays)
	return out
}

func (l *Latency) String() string {
	return fmt.Sprintf("n=%d avg=%.1f hit=%.1f(%.1f%%) miss=%.1f",
		l.Count, l.Avg(), l.AvgHit(), 100*l.HitRate(), l.AvgMiss())
}

func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

package stats

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestHistogramExactBelow32(t *testing.T) {
	var h Histogram
	for v := int64(0); v < 32; v++ {
		h.Record(v)
	}
	uppers, counts := h.Buckets()
	if len(uppers) != 32 {
		t.Fatalf("got %d buckets, want 32 exact ones", len(uppers))
	}
	for i, u := range uppers {
		if u != int64(i) || counts[i] != 1 {
			t.Errorf("bucket %d: upper=%d count=%d, want upper=%d count=1", i, u, counts[i], i)
		}
	}
}

func TestHistogramPercentileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	var vals []int64
	for i := 0; i < 20000; i++ {
		// Latency-shaped: mostly tens of cycles, a heavy tail into the
		// hundreds (misses) and occasional thousands.
		v := int64(10 + rng.ExpFloat64()*60)
		if rng.Intn(100) == 0 {
			v += int64(rng.Intn(5000))
		}
		vals = append(vals, v)
		h.Record(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 1} {
		idx := int(q*float64(len(vals))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		exact := vals[idx]
		got := h.Percentile(q)
		if got < exact {
			t.Errorf("p%.0f = %d understates exact %d", 100*q, got, exact)
		}
		// Upper-bound reporting plus 16 sub-buckets per octave: within
		// 1/16 of the exact quantile (and spot-on below 32).
		if float64(got) > float64(exact)*(1+1.0/histSub)+1 {
			t.Errorf("p%.0f = %d overshoots exact %d beyond the error bound", 100*q, got, exact)
		}
	}
}

func TestHistogramPercentileEdgeCases(t *testing.T) {
	var h Histogram
	if got := h.Percentile(0.99); got != 0 {
		t.Errorf("empty histogram p99 = %d, want 0", got)
	}
	h.Record(-5) // clamps to 0
	h.Record(17)
	if got := h.Percentile(1); got != 17 {
		t.Errorf("p100 = %d, want 17", got)
	}
	if got := h.Percentile(0.01); got != 0 {
		t.Errorf("p1 = %d, want 0 (the clamped sample)", got)
	}
	// A gigantic value clamps into the last bucket rather than indexing
	// out of range.
	h.Record(1 << 60)
	if got := h.Percentile(1); got < 1<<41 {
		t.Errorf("clamped huge sample reports p100 = %d", got)
	}
}

// TestHistogramMergeTable pins commutativity and associativity of Merge
// over the new buckets: any combination order of sub-histograms yields
// identical bucket contents, the property sweep aggregation relies on.
func TestHistogramMergeTable(t *testing.T) {
	mk := func(vals ...int64) *Histogram {
		var h Histogram
		for _, v := range vals {
			h.Record(v)
		}
		return &h
	}
	tests := []struct {
		name    string
		parts   [][]int64
		wantN   int64
		wantP99 int64
	}{
		{"empty+empty", [][]int64{{}, {}}, 0, 0},
		{"empty+loaded", [][]int64{{}, {5, 10, 500}}, 3, 511},
		{"disjoint ranges", [][]int64{{1, 2, 3}, {1000, 2000}, {40}}, 6, 2047},
		{"overlapping", [][]int64{{25, 25, 31}, {25, 32, 33}, {26}}, 7, 33},
		{"tail heavy", [][]int64{{10, 10, 10, 10}, {100000}}, 5, 102399},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			// Forward order.
			var fwd Histogram
			for _, p := range tt.parts {
				fwd.Merge(mk(p...))
			}
			// Reverse order (commutativity).
			var rev Histogram
			for i := len(tt.parts) - 1; i >= 0; i-- {
				rev.Merge(mk(tt.parts[i]...))
			}
			// Right-leaning tree (associativity): a+(b+(c+...)).
			tree := &Histogram{}
			for i := len(tt.parts) - 1; i >= 0; i-- {
				next := mk(tt.parts[i]...)
				next.Merge(tree)
				tree = next
			}
			if !reflect.DeepEqual(&fwd, &rev) || !reflect.DeepEqual(&fwd, tree) {
				t.Fatalf("merge order changes buckets:\nfwd  %+v\nrev  %+v\ntree %+v",
					fwd.counts, rev.counts, tree.counts)
			}
			if fwd.N != tt.wantN {
				t.Errorf("merged N = %d, want %d", fwd.N, tt.wantN)
			}
			if got := fwd.Percentile(0.99); got != tt.wantP99 {
				t.Errorf("merged p99 = %d, want %d", got, tt.wantP99)
			}
			// The merged histogram equals recording every sample into one.
			var all []int64
			for _, p := range tt.parts {
				all = append(all, p...)
			}
			if one := mk(all...); !reflect.DeepEqual(&fwd, one) {
				t.Errorf("merge != single-histogram recording:\nmerged %+v\nsingle %+v",
					fwd.counts, one.counts)
			}
		})
	}
}

// TestLatencyMergeCombinesHist pins that Latency.Merge carries the
// histogram: combined percentiles are exact over both runs.
func TestLatencyMergeCombinesHist(t *testing.T) {
	a, b := NewLatency(2), NewLatency(2)
	for i := 0; i < 99; i++ {
		a.RecordHit(10, 0, Breakdown{Bank: 10})
	}
	b.RecordMiss(800, Breakdown{Memory: 800})
	a.Merge(b)
	if got := a.Percentile(0.5); got != 10 {
		t.Errorf("merged p50 = %d, want 10", got)
	}
	if got := a.Percentile(1); got < 800 {
		t.Errorf("merged p100 = %d, want >= 800", got)
	}
	if a.Hist.N != 100 {
		t.Errorf("merged Hist.N = %d, want 100", a.Hist.N)
	}
}

package stats

import (
	"reflect"
	"testing"
)

// fill populates an accumulator with a deterministic access pattern so
// merge results can be computed by hand.
func fill(l *Latency, hits []int64, misses []int64, occ []int64) {
	for i, lat := range hits {
		l.RecordHit(lat, i%max(len(l.hitWays), 1), Breakdown{Bank: 1, Network: lat - 2, Memory: 1})
	}
	for _, lat := range misses {
		l.RecordMiss(lat, Breakdown{Bank: 2, Network: 3, Memory: lat - 5})
	}
	for _, s := range occ {
		l.AddOccupancy(s)
	}
}

func TestLatencyMergeTable(t *testing.T) {
	tests := []struct {
		name     string
		a, b     func() *Latency
		wantN    int64
		wantSum  int64
		wantMax  int64
		wantHits int64
		wantOcc  int64
	}{
		{
			name: "empty+empty",
			a:    func() *Latency { return NewLatency(4) },
			b:    func() *Latency { return NewLatency(4) },
		},
		{
			name: "empty+nonempty",
			a:    func() *Latency { return NewLatency(4) },
			b: func() *Latency {
				l := NewLatency(4)
				fill(l, []int64{10, 20}, []int64{100}, []int64{30})
				return l
			},
			wantN: 3, wantSum: 130, wantMax: 100, wantHits: 2, wantOcc: 1,
		},
		{
			name: "nonempty+empty",
			a: func() *Latency {
				l := NewLatency(4)
				fill(l, []int64{10, 20}, []int64{100}, []int64{30})
				return l
			},
			b:     func() *Latency { return NewLatency(4) },
			wantN: 3, wantSum: 130, wantMax: 100, wantHits: 2, wantOcc: 1,
		},
		{
			name: "max and occupancy combine",
			a: func() *Latency {
				l := NewLatency(2)
				fill(l, []int64{50}, nil, []int64{60, 70})
				return l
			},
			b: func() *Latency {
				l := NewLatency(2)
				fill(l, []int64{10}, []int64{200}, []int64{5})
				return l
			},
			wantN: 3, wantSum: 260, wantMax: 200, wantHits: 2, wantOcc: 3,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a, b := tt.a(), tt.b()
			a.Merge(b)
			if a.Count != tt.wantN || a.Sum != tt.wantSum || a.MaxLat != tt.wantMax ||
				a.Hits != tt.wantHits || a.OccCount != tt.wantOcc {
				t.Errorf("merged = n%d sum%d max%d hits%d occ%d, want n%d sum%d max%d hits%d occ%d",
					a.Count, a.Sum, a.MaxLat, a.Hits, a.OccCount,
					tt.wantN, tt.wantSum, tt.wantMax, tt.wantHits, tt.wantOcc)
			}
			// Breakdown fields must stay consistent with the totals.
			if got := a.Bank + a.Network + a.Memory; got != a.Sum {
				t.Errorf("breakdown sums to %d, want %d", got, a.Sum)
			}
		})
	}
}

func TestLatencyMergeOrderInvariance(t *testing.T) {
	mk := func() []*Latency {
		l1, l2, l3 := NewLatency(4), NewLatency(4), NewLatency(4)
		fill(l1, []int64{10, 12, 14}, []int64{150}, []int64{20})
		fill(l2, []int64{8}, []int64{170, 180}, nil)
		fill(l3, nil, nil, []int64{33, 44})
		return []*Latency{l1, l2, l3}
	}
	fwd := NewLatency(4)
	for _, l := range mk() {
		fwd.Merge(l)
	}
	rev := NewLatency(4)
	ls := mk()
	for i := len(ls) - 1; i >= 0; i-- {
		rev.Merge(ls[i])
	}
	if !reflect.DeepEqual(fwd, rev) {
		t.Errorf("merge is order-dependent:\nfwd %+v hitways %v\nrev %+v hitways %v",
			fwd, fwd.HitWays(), rev, rev.HitWays())
	}
}

func TestLatencyMergeGrowsHitWays(t *testing.T) {
	small, big := NewLatency(2), NewLatency(8)
	small.RecordHit(5, 1, Breakdown{Network: 5})
	big.RecordHit(7, 6, Breakdown{Network: 7})
	small.Merge(big)
	ways := small.HitWays()
	if len(ways) != 8 || ways[1] != 1 || ways[6] != 1 {
		t.Errorf("hitWays after merge = %v, want len 8 with ways 1 and 6 set", ways)
	}
}

func TestLatencyCloneIsDeep(t *testing.T) {
	l := NewLatency(4)
	fill(l, []int64{10, 20}, []int64{90}, []int64{15})
	c := l.Clone()
	if !reflect.DeepEqual(l, c) {
		t.Fatalf("clone differs: %+v vs %+v", l, c)
	}
	// Mutating the clone must not touch the original's histogram.
	c.RecordHit(5, 0, Breakdown{Bank: 5})
	if l.Count != 3 || l.HitWays()[0] == c.HitWays()[0] {
		t.Errorf("clone aliases the original: orig %v clone %v", l.HitWays(), c.HitWays())
	}
}

func TestLatencyCloneEmpty(t *testing.T) {
	l := NewLatency(0)
	c := l.Clone()
	c.Merge(l)
	if c.Count != 0 {
		t.Errorf("empty clone+merge produced counts: %+v", c)
	}
}

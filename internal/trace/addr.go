package trace

import (
	"fmt"
	"math/bits"
)

// BlockShift is log2 of the 64 B block size: the address offset field.
const BlockShift = 6

// AddrMap decomposes a block address into the paper's fields
// (Section 5): offset (6 b) | bank-column | index | tag. The bank-column
// selects one of the bank-set columns; the index selects the set within
// every bank of the column.
type AddrMap struct {
	Columns int // power of two
	Sets    int // power of two
}

func log2(v int) int {
	if v <= 0 || v&(v-1) != 0 {
		panic(fmt.Sprintf("trace: %d is not a positive power of two", v))
	}
	return bits.TrailingZeros(uint(v))
}

// ColumnOf extracts the bank-set column of a byte address.
func (a AddrMap) ColumnOf(addr uint64) int {
	return int((addr >> BlockShift) & uint64(a.Columns-1))
}

// SetOf extracts the set index of a byte address.
func (a AddrMap) SetOf(addr uint64) int {
	return int((addr >> (BlockShift + log2(a.Columns))) & uint64(a.Sets-1))
}

// TagOf extracts the tag of a byte address.
func (a AddrMap) TagOf(addr uint64) uint64 {
	return addr >> (BlockShift + log2(a.Columns) + log2(a.Sets))
}

// Compose builds a block-aligned byte address from tag, set and column.
func (a AddrMap) Compose(tag uint64, set, col int) uint64 {
	cb, sb := log2(a.Columns), log2(a.Sets)
	return (tag<<(sb+cb) | uint64(set)<<cb | uint64(col)) << BlockShift
}

package trace

import (
	"math"

	"nucanet/internal/sim"
)

// Access is one L2 reference.
type Access struct {
	Addr  uint64 // block-aligned byte address
	Write bool
	Gap   int64 // instructions executed since the previous access
}

// Generator produces an access stream.
type Generator interface {
	Next() Access
}

// maxStack caps the per-set reuse stack: reuse depths beyond twice the
// deepest associativity we simulate are indistinguishable misses.
const maxStack = 48

// hitDepth is the associativity against which the profile's MissRate is
// defined: reuse within the top hitDepth stack positions hits a warm
// 16-way LRU cache; deeper reuse and fresh blocks miss it.
const hitDepth = 16

// Synthetic generates the per-benchmark stream described in the package
// comment: a uniformly chosen (column, hot set), then with probability
// 1-MissRate a reuse at a Zipf-distributed depth within the 16 resident
// ways (an LRU hit), otherwise a miss — half brand-new blocks, half deep
// reuse beyond the cache's reach. Replacement policies other than exact
// LRU (Promotion) keep different contents and therefore see different
// hit rates on the same stream, as in the paper.
type Synthetic struct {
	// SetsPerColumn bounds how many sets of each column the stream
	// touches. Programs concentrate on a working set far smaller than
	// the 16K sets of the cache; bounding it keeps per-set access counts
	// at scaled-down trace lengths comparable to the paper's full runs
	// (where replacement-policy dynamics have time to diverge).
	// Mutate before the first Next call. Default 16.
	SetsPerColumn int

	prof Profile
	am   AddrMap
	rng  *sim.RNG

	cdf     []float64 // Zipf CDF over depths 1..maxStack
	stacks  [][]uint64
	nextTag uint64
	meanGap float64
}

// NewSynthetic builds a generator for a benchmark profile over the given
// address map, seeded deterministically.
//
// Every per-set reuse stack is prefilled with distinct warm tags so the
// stream models a program past its cold-start (the paper warms the L2
// with 100 M instructions before measuring). Use WarmBlocks to preload a
// cache with the same state.
func NewSynthetic(p Profile, am AddrMap, seed uint64) *Synthetic {
	g := &Synthetic{prof: p, am: am, rng: sim.NewRNG(seed), nextTag: 1, SetsPerColumn: 16}
	if g.SetsPerColumn > am.Sets {
		g.SetsPerColumn = am.Sets
	}
	g.stacks = make([][]uint64, am.Columns*am.Sets)
	for i := range g.stacks {
		st := make([]uint64, maxStack)
		for j := range st {
			st[j] = g.nextTag
			g.nextTag++
		}
		g.stacks[i] = st
	}
	g.cdf = make([]float64, hitDepth)
	sum := 0.0
	for d := 1; d <= hitDepth; d++ {
		sum += 1.0 / math.Pow(float64(d), p.Alpha)
		g.cdf[d-1] = sum
	}
	for i := range g.cdf {
		g.cdf[i] /= sum
	}
	if p.AccPerInstr > 0 {
		g.meanGap = 1.0 / p.AccPerInstr
	} else {
		g.meanGap = 1
	}
	return g
}

// Profile returns the generator's profile.
func (g *Synthetic) Profile() Profile { return g.prof }

// WarmBlocks returns, for each (column, set), the `ways` most recently
// used tags in MRU-to-LRU order — the warm cache contents matching the
// generator's prefilled reuse stacks. Index the result with
// set*Columns+col.
func (g *Synthetic) WarmBlocks(ways int) [][]uint64 {
	out := make([][]uint64, len(g.stacks))
	for i, st := range g.stacks {
		n := ways
		if n > len(st) {
			n = len(st)
		}
		cp := make([]uint64, n)
		copy(cp, st[:n])
		out[i] = cp
	}
	return out
}

// Next produces the next access.
func (g *Synthetic) Next() Access {
	col := g.rng.Intn(g.am.Columns)
	n := g.SetsPerColumn
	if n < 1 || n > g.am.Sets {
		n = g.am.Sets
	}
	set := g.rng.Intn(n)
	stack := &g.stacks[set*g.am.Columns+col]

	var tag uint64
	if g.rng.Bool(g.prof.MissRate) {
		// A miss: half compulsory (fresh block), half capacity (reuse
		// from beyond the cache's 16 resident ways).
		if g.rng.Bool(0.5) {
			tag = g.nextTag
			g.nextTag++
		} else {
			d := hitDepth + 1 + g.rng.Intn(maxStack-hitDepth)
			tag = (*stack)[d-1]
		}
	} else {
		// A hit: Zipf-distributed reuse within the resident ways.
		tag = (*stack)[g.sampleDepth()-1]
	}
	// Move (or insert) the tag to the stack front.
	s := *stack
	pos := -1
	for i, t := range s {
		if t == tag {
			pos = i
			break
		}
	}
	if pos < 0 {
		pos = len(s) - 1 // fresh: the oldest entry falls off
	}
	copy(s[1:pos+1], s[:pos])
	s[0] = tag

	gap := g.geometricGap()
	return Access{
		Addr:  g.am.Compose(tag, set, col),
		Write: g.rng.Bool(g.prof.WriteFrac()),
		Gap:   gap,
	}
}

// sampleDepth draws a Zipf-distributed stack depth in [1, maxStack].
func (g *Synthetic) sampleDepth() int {
	u := g.rng.Float64()
	lo, hi := 0, len(g.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if g.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}

// burstFrac is the fraction of accesses that arrive in bursts (back to
// back, as after a cluster of L1 misses); the remainder carry long gaps
// chosen to preserve the profile's overall accesses-per-instruction.
const (
	burstFrac    = 0.6
	burstGapMean = 2.0
)

// geometricGap draws the instruction gap with mean 1/AccPerInstr using a
// bursty mixture: L2 accesses cluster after L1 miss bursts rather than
// arriving uniformly, which is what exposes column and bank contention.
func (g *Synthetic) geometricGap() int64 {
	if g.meanGap <= burstGapMean+1 {
		return g.geom(g.meanGap)
	}
	if g.rng.Bool(burstFrac) {
		return g.geom(burstGapMean)
	}
	long := (g.meanGap - burstFrac*burstGapMean) / (1 - burstFrac)
	return g.geom(long)
}

// geom draws a geometric value >= 1 with the given mean.
func (g *Synthetic) geom(mean float64) int64 {
	if mean <= 1 {
		return 1
	}
	p := 1.0 / mean
	u := g.rng.Float64()
	n := int64(math.Log(1-u)/math.Log(1-p)) + 1
	if n < 1 {
		n = 1
	}
	return n
}

// Uniform generates uniformly random block accesses over a working set —
// a stress generator for protocol and network tests.
type Uniform struct {
	am        AddrMap
	rng       *sim.RNG
	tags      int
	writeFrac float64
	gap       int64
}

// NewUniform builds a uniform generator touching `tags` distinct tags per
// set with the given write fraction and fixed instruction gap.
func NewUniform(am AddrMap, tags int, writeFrac float64, gap int64, seed uint64) *Uniform {
	if tags < 1 {
		panic("trace: NewUniform needs tags >= 1")
	}
	return &Uniform{am: am, rng: sim.NewRNG(seed), tags: tags, writeFrac: writeFrac, gap: gap}
}

// Next produces the next access.
func (u *Uniform) Next() Access {
	return Access{
		Addr:  u.am.Compose(uint64(u.rng.Intn(u.tags)+1), u.rng.Intn(u.am.Sets), u.rng.Intn(u.am.Columns)),
		Write: u.rng.Bool(u.writeFrac),
		Gap:   u.gap,
	}
}

// Sequential streams through blocks in address order — the pathological
// no-reuse workload (every access a compulsory miss once past the cache).
type Sequential struct {
	am   AddrMap
	next uint64
	gap  int64
}

// NewSequential builds a sequential streamer.
func NewSequential(am AddrMap, gap int64) *Sequential {
	return &Sequential{am: am, gap: gap, next: 0}
}

// Next produces the next access.
func (s *Sequential) Next() Access {
	a := Access{Addr: s.next << BlockShift, Gap: s.gap}
	s.next++
	return a
}

// Slice replays a fixed access slice (loaded traces, tests).
type Slice struct {
	acc []Access
	i   int
}

// NewSlice wraps a slice; Next wraps around at the end.
func NewSlice(acc []Access) *Slice {
	if len(acc) == 0 {
		panic("trace: empty slice")
	}
	return &Slice{acc: acc}
}

// Next produces the next access, cycling.
func (s *Slice) Next() Access {
	a := s.acc[s.i]
	s.i = (s.i + 1) % len(s.acc)
	return a
}

// Take drains n accesses from a generator into a slice.
func Take(g Generator, n int) []Access {
	out := make([]Access, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

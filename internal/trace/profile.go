// Package trace generates the L2 access streams that drive the simulator.
//
// The paper drives its cache simulator with L2 accesses produced by
// sim-alpha running SPEC2000. Neither is available here, so each benchmark
// becomes a profile carrying exactly the quantities Table 2 reports
// (instructions executed, perfect-L2 IPC, L2 reads and writes, accesses
// per instruction) plus a two-parameter locality model — the probability
// of touching a brand-new block (PNew) and a Zipf exponent (Alpha) over
// LRU stack depth — tuned to the qualitative facts stated in the paper:
// art has essentially no misses beyond compulsory ones, applu and lucas
// have low hit rates, and most hits concentrate near the MRU ways under
// LRU ordering. The protocols under test observe only the resulting
// {address, read/write} stream.
package trace

import "fmt"

// Profile describes one benchmark workload.
type Profile struct {
	Name string
	FP   bool // floating-point (vs integer) suite

	// Table 2 columns.
	InstrTotal  int64   // instructions executed in the paper's window
	PerfectIPC  float64 // IPC with a perfect L2
	ReadsM      float64 // L2 reads, millions
	WritesM     float64 // L2 writes, millions
	AccPerInstr float64 // L2 accesses per instruction

	// Synthetic locality model (substitution; see package comment).
	// MissRate is the target 16-way LRU miss rate of the stream; Alpha
	// is the Zipf exponent over the 16 resident ways for hits (higher =
	// more MRU-concentrated).
	MissRate float64
	Alpha    float64
}

// WriteFrac returns the fraction of accesses that are writes.
func (p Profile) WriteFrac() float64 {
	return p.WritesM / (p.ReadsM + p.WritesM)
}

// billion and million scale Table 2 instruction counts.
const (
	million = 1_000_000
	billion = 1_000_000_000
)

// profiles is Table 2 of the paper plus the locality parameters of the
// synthetic substitution.
var profiles = []Profile{
	{Name: "applu", FP: true, InstrTotal: 500 * million, PerfectIPC: 0.43, ReadsM: 9.444, WritesM: 4.428, AccPerInstr: 0.028, MissRate: 0.18, Alpha: 0.9},
	{Name: "apsi", FP: true, InstrTotal: 1 * billion, PerfectIPC: 0.40, ReadsM: 12.375, WritesM: 8.204, AccPerInstr: 0.021, MissRate: 0.06, Alpha: 1.3},
	{Name: "art", FP: true, InstrTotal: 500 * million, PerfectIPC: 0.40, ReadsM: 63.877, WritesM: 13.578, AccPerInstr: 0.155, MissRate: 0.002, Alpha: 2.5},
	{Name: "galgel", FP: true, InstrTotal: 2 * billion, PerfectIPC: 0.43, ReadsM: 19.415, WritesM: 4.137, AccPerInstr: 0.012, MissRate: 0.03, Alpha: 1.4},
	{Name: "lucas", FP: true, InstrTotal: 1 * billion, PerfectIPC: 0.44, ReadsM: 19.506, WritesM: 13.226, AccPerInstr: 0.033, MissRate: 0.18, Alpha: 0.9},
	{Name: "mesa", FP: true, InstrTotal: 2 * billion, PerfectIPC: 0.40, ReadsM: 2.907, WritesM: 2.656, AccPerInstr: 0.003, MissRate: 0.02, Alpha: 1.5},
	{Name: "bzip2", FP: false, InstrTotal: 2 * billion, PerfectIPC: 0.39, ReadsM: 16.301, WritesM: 4.233, AccPerInstr: 0.010, MissRate: 0.03, Alpha: 1.3},
	{Name: "gcc", FP: false, InstrTotal: 500 * million, PerfectIPC: 0.29, ReadsM: 26.201, WritesM: 14.827, AccPerInstr: 0.082, MissRate: 0.05, Alpha: 1.2},
	{Name: "mcf", FP: false, InstrTotal: 250 * million, PerfectIPC: 0.34, ReadsM: 29.500, WritesM: 15.755, AccPerInstr: 0.181, MissRate: 0.1, Alpha: 1.0},
	{Name: "parser", FP: false, InstrTotal: 2 * billion, PerfectIPC: 0.38, ReadsM: 18.257, WritesM: 6.915, AccPerInstr: 0.013, MissRate: 0.03, Alpha: 1.3},
	{Name: "twolf", FP: false, InstrTotal: 1 * billion, PerfectIPC: 0.38, ReadsM: 20.283, WritesM: 7.653, AccPerInstr: 0.028, MissRate: 0.025, Alpha: 1.4},
	{Name: "vpr", FP: false, InstrTotal: 1 * billion, PerfectIPC: 0.41, ReadsM: 12.459, WritesM: 5.024, AccPerInstr: 0.017, MissRate: 0.03, Alpha: 1.4},
}

// Profiles returns the 12 SPEC2000 benchmark profiles of Table 2 in the
// paper's order.
func Profiles() []Profile {
	out := make([]Profile, len(profiles))
	copy(out, profiles)
	return out
}

// ProfileByName looks up one benchmark.
func ProfileByName(name string) (Profile, error) {
	for _, p := range profiles {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("trace: unknown benchmark %q", name)
}

// Names returns the benchmark names in Table 2 order.
func Names() []string {
	out := make([]string, len(profiles))
	for i, p := range profiles {
		out[i] = p.Name
	}
	return out
}

package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Encode writes accesses in the textual trace format, one per line:
//
//	R 0x<addr> <gap>
//	W 0x<addr> <gap>
func Encode(w io.Writer, acc []Access) error {
	bw := bufio.NewWriter(w)
	for _, a := range acc {
		op := "R"
		if a.Write {
			op = "W"
		}
		if _, err := fmt.Fprintf(bw, "%s 0x%x %d\n", op, a.Addr, a.Gap); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode parses the textual trace format produced by Encode. Blank lines
// and lines starting with '#' are ignored.
func Decode(r io.Reader) ([]Access, error) {
	var out []Access
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("trace: line %d: want 3 fields, got %d", lineNo, len(fields))
		}
		var a Access
		switch fields[0] {
		case "R":
		case "W":
			a.Write = true
		default:
			return nil, fmt.Errorf("trace: line %d: bad op %q", lineNo, fields[0])
		}
		addr, err := strconv.ParseUint(strings.TrimPrefix(fields[1], "0x"), 16, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad address: %v", lineNo, err)
		}
		a.Addr = addr
		gap, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil || gap < 0 {
			return nil, fmt.Errorf("trace: line %d: bad gap %q", lineNo, fields[2])
		}
		a.Gap = gap
		out = append(out, a)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

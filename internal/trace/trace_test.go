package trace

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func am16() AddrMap { return AddrMap{Columns: 16, Sets: 1024} }

func TestProfilesMatchTable2(t *testing.T) {
	ps := Profiles()
	if len(ps) != 12 {
		t.Fatalf("profiles = %d, want 12", len(ps))
	}
	// Spot-check the Table 2 rows used most in the text.
	art, err := ProfileByName("art")
	if err != nil {
		t.Fatal(err)
	}
	if art.AccPerInstr != 0.155 || art.PerfectIPC != 0.40 || !art.FP {
		t.Fatalf("art profile wrong: %+v", art)
	}
	mcf, _ := ProfileByName("mcf")
	if mcf.AccPerInstr != 0.181 || mcf.InstrTotal != 250_000_000 || mcf.FP {
		t.Fatalf("mcf profile wrong: %+v", mcf)
	}
	// Consistency: reads+writes per instruction approximately matches
	// the printed accesses-per-instruction column.
	for _, p := range ps {
		derived := (p.ReadsM + p.WritesM) * 1e6 / float64(p.InstrTotal)
		if math.Abs(derived-p.AccPerInstr)/p.AccPerInstr > 0.12 {
			t.Errorf("%s: derived acc/instr %.4f vs table %.4f", p.Name, derived, p.AccPerInstr)
		}
	}
}

func TestProfileByNameUnknown(t *testing.T) {
	if _, err := ProfileByName("doom"); err == nil {
		t.Fatal("expected error")
	}
}

func TestNamesOrder(t *testing.T) {
	names := Names()
	if names[0] != "applu" || names[11] != "vpr" {
		t.Fatalf("order wrong: %v", names)
	}
}

func TestAddrMapRoundTrip(t *testing.T) {
	am := am16()
	if err := quick.Check(func(tag uint64, s, c uint16) bool {
		tag &= 0xfff
		set := int(s) % am.Sets
		col := int(c) % am.Columns
		addr := am.Compose(tag, set, col)
		return am.TagOf(addr) == tag && am.SetOf(addr) == set &&
			am.ColumnOf(addr) == col && addr%64 == 0
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrMapPaperLayout(t *testing.T) {
	// 32-bit address: tag(12) index(10) bank-column(4) offset(6).
	am := am16()
	addr := am.Compose(0xABC, 0x3FF, 0xF)
	if addr != 0xABC<<20|0x3FF<<10|0xF<<6 {
		t.Fatalf("compose = %#x", addr)
	}
}

func TestAddrMapNonPow2Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AddrMap{Columns: 12, Sets: 1024}.SetOf(0)
}

func TestSyntheticDeterminism(t *testing.T) {
	p, _ := ProfileByName("gcc")
	a := Take(NewSynthetic(p, am16(), 42), 2000)
	b := Take(NewSynthetic(p, am16(), 42), 2000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same stream")
		}
	}
	c := Take(NewSynthetic(p, am16(), 43), 2000)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds gave identical stream")
	}
}

func TestSyntheticWriteFraction(t *testing.T) {
	p, _ := ProfileByName("lucas") // writes/(r+w) = 13.226/32.732 = 0.404
	acc := Take(NewSynthetic(p, am16(), 1), 20000)
	writes := 0
	for _, a := range acc {
		if a.Write {
			writes++
		}
	}
	got := float64(writes) / float64(len(acc))
	if math.Abs(got-p.WriteFrac()) > 0.02 {
		t.Fatalf("write fraction = %.3f, want ~%.3f", got, p.WriteFrac())
	}
}

func TestSyntheticGapMatchesAccessRate(t *testing.T) {
	for _, name := range []string{"mesa", "mcf"} {
		p, _ := ProfileByName(name)
		acc := Take(NewSynthetic(p, am16(), 7), 20000)
		var total int64
		for _, a := range acc {
			total += a.Gap
		}
		gotRate := float64(len(acc)) / float64(total)
		if math.Abs(gotRate-p.AccPerInstr)/p.AccPerInstr > 0.08 {
			t.Errorf("%s: accesses/instr = %.4f, want ~%.4f", name, gotRate, p.AccPerInstr)
		}
	}
}

// reuseStats measures, with a reference 16-way LRU per set warmed from the
// generator's initial WarmBlocks, the hit rate and MRU-way concentration
// of the next n accesses. Call on a fresh generator.
func reuseStats(g *Synthetic, n int, am AddrMap) (hitRate, mruShare float64) {
	type set struct{ stack []uint64 }
	sets := make([]set, am.Columns*am.Sets)
	for i, warm := range g.WarmBlocks(16) {
		sets[i].stack = append(sets[i].stack, warm...)
	}
	acc := Take(g, n)
	hits, mru := 0, 0
	for _, a := range acc {
		s := &sets[am.SetOf(a.Addr)*am.Columns+am.ColumnOf(a.Addr)]
		tag := am.TagOf(a.Addr)
		found := -1
		for i, t := range s.stack {
			if t == tag {
				found = i
				break
			}
		}
		if found >= 0 {
			hits++
			if found == 0 {
				mru++
			}
			copy(s.stack[1:found+1], s.stack[:found])
			s.stack[0] = tag
		} else {
			if len(s.stack) < 16 {
				s.stack = append(s.stack, 0)
			}
			copy(s.stack[1:], s.stack)
			s.stack[0] = tag
		}
	}
	if hits == 0 {
		return 0, 0
	}
	return float64(hits) / float64(len(acc)), float64(mru) / float64(hits)
}

func TestSyntheticLocalityShapes(t *testing.T) {
	am := am16()
	// art: essentially no misses beyond compulsory (paper Section 6,
	// footnote 5). applu/lucas: low hit rates.
	art, _ := ProfileByName("art")
	hr, mru := reuseStats(NewSynthetic(art, am, 3), 60000, am)
	if hr < 0.95 {
		t.Errorf("art hit rate = %.3f, want > 0.95", hr)
	}
	if mru < 0.5 {
		t.Errorf("art MRU share = %.3f, want strong MRU concentration", mru)
	}
	applu, _ := ProfileByName("applu")
	hrA, _ := reuseStats(NewSynthetic(applu, am, 3), 60000, am)
	if hrA > 1-applu.MissRate+0.03 || hrA < 1-applu.MissRate-0.03 {
		t.Errorf("applu hit rate = %.3f, want ~%.2f (the profile's target)", hrA, 1-applu.MissRate)
	}
	if hrA >= hr-0.1 {
		t.Error("applu must have a clearly lower hit rate than art")
	}
}

func TestSetsPerColumnBoundsHotSets(t *testing.T) {
	am := am16()
	p, _ := ProfileByName("gcc")
	g := NewSynthetic(p, am, 4)
	g.SetsPerColumn = 4
	seen := map[int]bool{}
	for _, a := range Take(g, 5000) {
		set := am.SetOf(a.Addr)
		if set >= 4 {
			t.Fatalf("access touched set %d beyond the hot pool", set)
		}
		seen[set] = true
	}
	if len(seen) != 4 {
		t.Fatalf("hot pool used %d sets, want 4", len(seen))
	}
}

func TestSetsPerColumnClampsToSets(t *testing.T) {
	am := AddrMap{Columns: 4, Sets: 8}
	p, _ := ProfileByName("gcc")
	g := NewSynthetic(p, am, 4) // default 16 > 8 sets: must clamp
	for _, a := range Take(g, 500) {
		if s := am.SetOf(a.Addr); s >= 8 {
			t.Fatalf("set %d out of range", s)
		}
	}
}

func TestUniformGenerator(t *testing.T) {
	am := am16()
	g := NewUniform(am, 8, 0.3, 10, 5)
	acc := Take(g, 5000)
	cols := map[int]int{}
	for _, a := range acc {
		if a.Gap != 10 {
			t.Fatal("gap must be fixed")
		}
		if tag := am.TagOf(a.Addr); tag < 1 || tag > 8 {
			t.Fatalf("tag %d out of range", tag)
		}
		cols[am.ColumnOf(a.Addr)]++
	}
	if len(cols) != 16 {
		t.Fatalf("uniform generator touched %d columns, want 16", len(cols))
	}
}

func TestSequentialGenerator(t *testing.T) {
	g := NewSequential(am16(), 4)
	prev := uint64(0)
	for i := 0; i < 100; i++ {
		a := g.Next()
		if i > 0 && a.Addr != prev+64 {
			t.Fatalf("not sequential: %#x after %#x", a.Addr, prev)
		}
		prev = a.Addr
	}
}

func TestSliceGeneratorCycles(t *testing.T) {
	acc := []Access{{Addr: 64}, {Addr: 128}}
	g := NewSlice(acc)
	if g.Next().Addr != 64 || g.Next().Addr != 128 || g.Next().Addr != 64 {
		t.Fatal("slice generator must cycle in order")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p, _ := ProfileByName("twolf")
	acc := Take(NewSynthetic(p, am16(), 11), 500)
	var buf bytes.Buffer
	if err := Encode(&buf, acc); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(acc) {
		t.Fatalf("decoded %d, want %d", len(got), len(acc))
	}
	for i := range acc {
		if got[i] != acc[i] {
			t.Fatalf("entry %d: %+v != %+v", i, got[i], acc[i])
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := []string{
		"X 0x40 1\n",
		"R zzz 1\n",
		"R 0x40\n",
		"R 0x40 -2\n",
	}
	for _, s := range bad {
		if _, err := Decode(bytes.NewBufferString(s)); err == nil {
			t.Errorf("Decode(%q) should fail", s)
		}
	}
	ok := "# comment\n\nR 0x40 1\n"
	got, err := Decode(bytes.NewBufferString(ok))
	if err != nil || len(got) != 1 {
		t.Fatalf("comment/blank handling broken: %v %v", got, err)
	}
}

package cache

import (
	"nucanet/internal/bank"
)

// Golden is the functional reference model of a bank-set column hierarchy:
// it applies the replacement policies to plain slices with no timing or
// network, and must agree exactly with the protocol simulation on every
// hit/miss decision and on final contents. Property tests enforce this.
//
// The model is hierarchical: each bank keeps its own MRU-to-LRU order; a
// block leaving a bank is that bank's LRU, a block entering becomes its
// MRU. With 1-way banks this degenerates to exact set-wide LRU (for the
// LRU and Fast-LRU policies) — and Fast-LRU is functionally identical to
// LRU by construction, only its timing differs.
type Golden struct {
	policy Policy
	specs  []bank.Spec
	cols   int
	sets   int
	// state[col*sets+set][bankPos] = tags, MRU first within the bank.
	state [][][]uint64
}

// NewGolden builds an empty reference model for a column layout.
func NewGolden(policy Policy, specs []bank.Spec, cols, sets int) *Golden {
	g := &Golden{policy: policy, specs: specs, cols: cols, sets: sets}
	g.state = make([][][]uint64, cols*sets)
	for i := range g.state {
		g.state[i] = make([][]uint64, len(specs))
	}
	return g
}

// Ways returns the total bank-set associativity.
func (g *Golden) Ways() int {
	t := 0
	for _, s := range g.specs {
		t += s.Ways
	}
	return t
}

// Warm fills a set with tags in MRU-to-LRU order, distributing them over
// the banks by distance (closest bank gets the most recent tags).
func (g *Golden) Warm(col, set int, tags []uint64) {
	st := g.state[col*g.sets+set]
	i := 0
	for b, spec := range g.specs {
		for w := 0; w < spec.Ways && i < len(tags); w++ {
			st[b] = append(st[b], tags[i])
			i++
		}
	}
}

// Access applies one reference to the model and returns whether it hit and
// at which bank position (way -1 on miss). Evicted is the victim tag that
// left the cache entirely (valid only when evictedOK).
func (g *Golden) Access(col, set int, tag uint64) (hit bool, bankPos int, evicted uint64, evictedOK bool) {
	st := g.state[col*g.sets+set]
	last := len(st) - 1

	// Tag match across the column.
	hb, hw := -1, -1
	for b := range st {
		for w, t := range st[b] {
			if t == tag {
				hb, hw = b, w
				break
			}
		}
		if hb >= 0 {
			break
		}
	}

	switch g.policy {
	case LRU, FastLRU:
		if hb == 0 {
			g.touch(st, 0, hw)
			return true, 0, 0, false
		}
		if hb > 0 {
			// Hit block to MRU bank; banks 0..hb-1 shift one farther;
			// the shifted-out block of hb-1 fills the hole at hb. A
			// non-full bank absorbs the chain early (cold sets only).
			hitTag := g.remove(st, hb, hw)
			carry := hitTag
			for b := 0; b <= hb; b++ {
				if b == hb || len(st[b]) < g.specs[b].Ways {
					g.insertMRU(st, b, carry)
					break
				}
				victim := g.evictLRU(st, b)
				g.insertMRU(st, b, carry)
				carry = victim
			}
			return true, hb, 0, false
		}
		// Miss: new block to MRU; everything shifts one farther; the
		// victim of the last bank leaves.
		carry := tag
		for b := 0; b <= last; b++ {
			var victim uint64
			full := len(st[b]) >= g.specs[b].Ways
			if full {
				victim = g.evictLRU(st, b)
			}
			g.insertMRU(st, b, carry)
			if !full {
				return false, -1, 0, false
			}
			carry = victim
		}
		return false, -1, carry, true

	case Promotion:
		if hb == 0 {
			g.touch(st, 0, hw)
			return true, 0, 0, false
		}
		if hb > 0 {
			// Swap with the next-closer bank: hit block becomes the MRU
			// of bank hb-1; that bank's LRU moves to bank hb. If the
			// closer bank has room (cold sets), the block just promotes.
			hitTag := g.remove(st, hb, hw)
			if len(st[hb-1]) < g.specs[hb-1].Ways {
				g.insertMRU(st, hb-1, hitTag)
				return true, hb, 0, false
			}
			victim := g.evictLRU(st, hb-1)
			g.insertMRU(st, hb-1, hitTag)
			g.insertMRU(st, hb, victim)
			return true, hb, 0, false
		}
		// Miss: fill the MRU bank and push recursively.
		carry := tag
		for b := 0; b <= last; b++ {
			var victim uint64
			full := len(st[b]) >= g.specs[b].Ways
			if full {
				victim = g.evictLRU(st, b)
			}
			g.insertMRU(st, b, carry)
			if !full {
				return false, -1, 0, false
			}
			carry = victim
		}
		return false, -1, carry, true
	}
	panic("cache: unknown policy")
}

// Contents returns the per-bank tags of a set, MRU first within each bank.
func (g *Golden) Contents(col, set int) [][]uint64 {
	st := g.state[col*g.sets+set]
	out := make([][]uint64, len(st))
	for b := range st {
		out[b] = append([]uint64(nil), st[b]...)
	}
	return out
}

func (g *Golden) touch(st [][]uint64, b, w int) {
	tag := st[b][w]
	copy(st[b][1:w+1], st[b][:w])
	st[b][0] = tag
}

func (g *Golden) remove(st [][]uint64, b, w int) uint64 {
	tag := st[b][w]
	st[b] = append(st[b][:w], st[b][w+1:]...)
	return tag
}

func (g *Golden) evictLRU(st [][]uint64, b int) uint64 {
	n := len(st[b])
	tag := st[b][n-1]
	st[b] = st[b][:n-1]
	return tag
}

func (g *Golden) insertMRU(st [][]uint64, b int, tag uint64) {
	st[b] = append(st[b], 0)
	copy(st[b][1:], st[b])
	st[b][0] = tag
}

package cache

import (
	"nucanet/internal/bank"
)

// Golden is the functional reference model of a bank-set column hierarchy:
// it applies the replacement policies to plain slices with no timing or
// network, and must agree exactly with the protocol simulation on every
// hit/miss decision and on final contents. Property tests and the
// conformance harness enforce this.
//
// The model is hierarchical: each bank keeps its own MRU-to-LRU order; a
// block leaving a bank is that bank's LRU, a block entering becomes its
// MRU. With 1-way banks this degenerates to exact set-wide LRU (for the
// LRU and Fast-LRU policies) — and Fast-LRU is functionally identical to
// LRU by construction, only its timing differs.
//
// The policy-specific semantics live in the same PolicyEngine that
// drives the timing simulation (GoldenAccess), so a registered policy
// automatically brings its own reference model.
type Golden struct {
	policy Policy
	eng    PolicyEngine
	specs  []bank.Spec
	cols   int
	sets   int
	// state[col*sets+set][bankPos] = tags, MRU first within the bank.
	state [][][]uint64
}

// NewGolden builds an empty reference model for a column layout. It
// panics on an unregistered policy (test-facing construction).
func NewGolden(policy Policy, specs []bank.Spec, cols, sets int) *Golden {
	g := &Golden{policy: policy, eng: policy.engine(), specs: specs, cols: cols, sets: sets}
	g.state = make([][][]uint64, cols*sets)
	for i := range g.state {
		g.state[i] = make([][]uint64, len(specs))
	}
	return g
}

// Ways returns the total bank-set associativity.
func (g *Golden) Ways() int {
	t := 0
	for _, s := range g.specs {
		t += s.Ways
	}
	return t
}

// Warm fills a set with tags in MRU-to-LRU order, distributing them over
// the banks by distance (closest bank gets the most recent tags).
func (g *Golden) Warm(col, set int, tags []uint64) {
	st := g.state[col*g.sets+set]
	i := 0
	for b, spec := range g.specs {
		for w := 0; w < spec.Ways && i < len(tags); w++ {
			st[b] = append(st[b], tags[i])
			i++
		}
	}
}

// Access applies one reference to the model and returns whether it hit and
// at which bank position (way -1 on miss). Evicted is the victim tag that
// left the cache entirely (valid only when evictedOK). The tag match is
// policy-independent; the state transition is the engine's.
func (g *Golden) Access(col, set int, tag uint64) (hit bool, bankPos int, evicted uint64, evictedOK bool) {
	st := g.state[col*g.sets+set]

	// Tag match across the column.
	hb, hw := -1, -1
	for b := range st {
		for w, t := range st[b] {
			if t == tag {
				hb, hw = b, w
				break
			}
		}
		if hb >= 0 {
			break
		}
	}
	return g.eng.GoldenAccess(g, st, hb, hw, tag)
}

// Contents returns the per-bank tags of a set, MRU first within each bank.
func (g *Golden) Contents(col, set int) [][]uint64 {
	st := g.state[col*g.sets+set]
	out := make([][]uint64, len(st))
	for b := range st {
		out[b] = append([]uint64(nil), st[b]...)
	}
	return out
}

func (g *Golden) touch(st [][]uint64, b, w int) {
	tag := st[b][w]
	copy(st[b][1:w+1], st[b][:w])
	st[b][0] = tag
}

func (g *Golden) remove(st [][]uint64, b, w int) uint64 {
	tag := st[b][w]
	st[b] = append(st[b][:w], st[b][w+1:]...)
	return tag
}

func (g *Golden) evictLRU(st [][]uint64, b int) uint64 {
	n := len(st[b])
	tag := st[b][n-1]
	st[b] = st[b][:n-1]
	return tag
}

func (g *Golden) insertMRU(st [][]uint64, b int, tag uint64) {
	st[b] = append(st[b], 0)
	copy(st[b][1:], st[b])
	st[b][0] = tag
}

package cache

import (
	"nucanet/internal/bank"
	"nucanet/internal/stats"
)

// Request is one CPU-visible L2 access handed to the Controller.
type Request struct {
	Addr  uint64
	Write bool

	// Issued is stamped when the controller accepts the request;
	// DataAt when the data (or write acknowledgment) reaches the core.
	Issued int64
	DataAt int64

	Hit     bool
	HitBank int // bank position in the column (0 = MRU), -1 on miss

	// Breakdown splits the access latency into its three sources.
	Breakdown stats.Breakdown

	// Done, if set, runs when the data arrives at the core (the
	// CPU-visible completion; replacement may still be draining).
	Done func(r *Request, now int64)
}

// Latency returns the CPU-visible access latency.
func (r *Request) Latency() int64 { return r.DataAt - r.Issued }

// op is the shared protocol state of one in-flight column operation; every
// packet of the operation carries a pointer to it.
type op struct {
	req *Request
	col int
	set int
	tag uint64

	// ctrl is the router hosting the controller that owns this
	// operation; banks address notifications and data there. Single-core
	// systems use the topology's core router; CMP systems home each
	// column on one of several controllers.
	ctrl int

	hitPos int // bank position of the hit, -1 while unknown / miss

	// Critical-path accounting. Bank and memory cycles accumulate as the
	// access proceeds; network time falls out as the remainder.
	bankCycles int64
	memCycles  int64

	// Controller-side completion tracking. chainNeeded is the number of
	// CompleteNotify packets that must arrive before the column's
	// replacement traffic has fully drained: usually one, but a
	// multicast Fast-LRU hit beyond the MRU bank produces two (the hit
	// block landing at the MRU bank, and the push chain terminating at
	// the hit bank's hole).
	missCount   int
	dataDone    bool
	chainNeeded int
	chainRecv   int
	finished    bool

	// probed[pos] records that the bank at position pos has performed
	// its tag-match for this operation. Multicast delivery order is not
	// guaranteed between a bank's probe replica (which may queue at a
	// congested ejection port) and later replacement traffic, so agents
	// stash chain/store messages until their probe has run.
	probed []bool
}

func (o *op) chainDone() bool { return o.chainRecv >= o.chainNeeded }

// AddMemCycles lets the memory model attribute its service time (wire +
// access + port stalls) to this operation; called through the cookie
// interface in package mem.
func (o *op) AddMemCycles(n int64) { o.memCycles += n }

// blockMsg is the payload of every block-carrying protocol packet.
type blockMsg struct {
	op  *op
	blk bank.Block
	// hasBlock is false when a unicast Fast-LRU request is forwarded
	// from a non-full bank that had nothing to evict.
	hasBlock bool
	// withReq marks the unicast Fast-LRU combined unit: the data request
	// traveling together with the evicted block.
	withReq bool
	// promoUp marks a Promotion hit block moving one bank closer;
	// promoDown marks the displaced block returning to the hit bank.
	promoUp   bool
	promoDown bool
}

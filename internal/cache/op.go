package cache

import (
	"nucanet/internal/mem"
	"nucanet/internal/stats"
)

// Request is one CPU-visible L2 access handed to the Controller.
type Request struct {
	Addr  uint64
	Write bool

	// Issued is stamped when the controller accepts the request;
	// DataAt when the data (or write acknowledgment) reaches the core.
	Issued int64
	DataAt int64

	Hit     bool
	HitBank int // bank position in the column (0 = MRU), -1 on miss

	// Breakdown splits the access latency into its three sources.
	Breakdown stats.Breakdown

	// Done, if set, runs when the data arrives at the core (the
	// CPU-visible completion; replacement may still be draining).
	Done func(r *Request, now int64)
}

// Latency returns the CPU-visible access latency.
func (r *Request) Latency() int64 { return r.DataAt - r.Issued }

// op is the shared protocol state of one in-flight column operation; every
// packet of the operation carries a typed message pointing back to it.
type op struct {
	req *Request
	id  uint64 // system-wide operation serial (telemetry correlation)
	col int
	set int
	tag uint64

	// ctrl is the router hosting the controller that owns this
	// operation; banks address notifications and data there. Single-core
	// systems use the topology's core router; CMP systems home each
	// column on one of several controllers.
	ctrl int

	hitPos int // bank position of the hit, -1 while unknown / miss

	// Critical-path accounting. Bank and memory cycles accumulate as the
	// access proceeds; network time falls out as the remainder.
	bankCycles int64
	memCycles  int64

	// Controller-side completion tracking. chainNeeded is the number of
	// CompleteNotify packets that must arrive before the column's
	// replacement traffic has fully drained: usually one, but a
	// multicast Fast-LRU hit beyond the MRU bank produces two (the hit
	// block landing at the MRU bank, and the push chain terminating at
	// the hit bank's hole), and an MRU-bank hit needs none.
	missCount   int
	dataDone    bool
	chainNeeded int
	chainRecv   int
	finished    bool

	// probed[pos] records that the bank at position pos has performed
	// its tag-match for this operation. Multicast delivery order is not
	// guaranteed between a bank's probe replica (which may queue at a
	// congested ejection port) and later replacement traffic, so agents
	// stash chain/store messages until their probe has run.
	probed []bool

	// One instance of every protocol message, pre-wired to this op by
	// newOp. Chain-style messages are mutated in place and resent hop by
	// hop (replacement chains are strictly sequential), so the whole
	// operation costs a single allocation. memReq is the embedded
	// off-chip read request; its cookie is the fill message, which
	// memory echoes back as the MemBlock payload.
	probe   probeMsg
	data    dataMsg
	miss    missMsg
	done    doneMsg
	fill    fillMsg
	chain   chainMsg
	unit    unitMsg
	store   storeMsg
	promote promoteMsg
	demote  demoteMsg
	memReq  mem.ReadReq
}

// newOp builds the per-access protocol state with every embedded message
// pointing back at it.
func newOp() *op {
	o := &op{}
	o.probe.o = o
	o.data.o = o
	o.miss.o = o
	o.done.o = o
	o.fill.o = o
	o.chain.o = o
	o.unit.o = o
	o.store.o = o
	o.promote.o = o
	o.demote.o = o
	return o
}

func (o *op) chainDone() bool { return o.chainRecv >= o.chainNeeded }

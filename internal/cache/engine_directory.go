package cache

import (
	"fmt"
	"sort"

	"nucanet/internal/bank"
)

// OwnerStride separates per-owner tag spaces: owner i's blocks carry
// tags in [i*OwnerStride, (i+1)*OwnerStride). The CMP fabric relocates
// each core's trace into its own range with this stride, so a block's
// owner is recoverable from its tag alone — the property the directory
// policy's bookkeeping relies on.
const OwnerStride = uint64(1) << 32

// OwnerOf recovers the owning requester from a block tag.
func OwnerOf(tag uint64) uint64 { return tag / OwnerStride }

// directoryEngine is the CMP-aware policy: Fast-LRU's exact protocol and
// golden model (it delegates every message to the shared lruEngine), plus
// a directory of block ownership maintained alongside the replacement
// state. The directory attributes every fill, hit, and capacity eviction
// to the owning core, turning "whose working set displaced whose" from a
// guess into a measured matrix. It registers like any other policy; the
// agent and controller shells are untouched.
type directoryEngine struct {
	inner lruEngine
}

// Directory is the registered id of the ownership-tracking CMP policy.
// Its initializer's dependency on builtinPolicies orders registration
// after the built-ins, keeping their ids equal to the package constants.
var Directory = registerDirectory(builtinPolicies)

func registerDirectory(builtinsDone) Policy {
	return RegisterPolicy("directory", &directoryEngine{inner: lruEngine{fast: true}})
}

func (e *directoryEngine) Probe(a *agent, o *op, now int64) {
	if d := a.sys.Dir; d != nil {
		if _, hit := a.bk.Lookup(o.set, o.tag); hit {
			d.cols[a.col].hits[OwnerOf(o.tag)]++
		}
	}
	e.inner.Probe(a, o, now)
}

func (e *directoryEngine) Fill(a *agent, o *op, now int64) {
	if d := a.sys.Dir; d != nil {
		// The only path a new block enters the cache on: attribute the
		// fill and raise the owner's occupancy.
		own := OwnerOf(o.tag)
		d.cols[a.col].fills[own]++
		d.cols[a.col].live[own]++
	}
	e.inner.Fill(a, o, now)
}

func (e *directoryEngine) Unit(a *agent, m *unitMsg, now int64) {
	if d := a.sys.Dir; d != nil {
		if _, hit := a.bk.Lookup(m.o.set, m.o.tag); hit {
			d.cols[a.col].hits[OwnerOf(m.o.tag)]++
		}
	}
	e.inner.Unit(a, m, now)
}

func (e *directoryEngine) Chain(a *agent, m *chainMsg, now int64)     { e.inner.Chain(a, m, now) }
func (e *directoryEngine) Store(a *agent, m *storeMsg, now int64)     { e.inner.Store(a, m, now) }
func (e *directoryEngine) Promote(a *agent, m *promoteMsg, now int64) { e.inner.Promote(a, m, now) }
func (e *directoryEngine) Demote(a *agent, m *demoteMsg, now int64)   { e.inner.Demote(a, m, now) }

func (e *directoryEngine) GoldenAccess(g *Golden, st [][]uint64, hb, hw int, tag uint64) (bool, int, uint64, bool) {
	return e.inner.GoldenAccess(g, st, hb, hw, tag)
}

// DirStats is the per-system directory state. Columns accumulate
// independently — a column's agents all live on one kernel shard, so the
// sharded engines mutate disjoint accumulators without synchronization
// and Report merges them in deterministic column order.
type DirStats struct {
	cols []dirCol
}

type dirCol struct {
	live  map[uint64]int64 // owner -> blocks currently resident
	fills map[uint64]int64 // owner -> miss fills
	hits  map[uint64]int64 // owner -> tag-match hits
	drops map[uint64]int64 // owner -> blocks evicted out of the cache
	cross map[OwnerPair]int64
}

// OwnerPair attributes one capacity eviction: Victim's block was pushed
// out of the cache by Evictor's access.
type OwnerPair struct{ Victim, Evictor uint64 }

// MarshalText encodes the pair as "victim<-evictor" so the eviction
// matrix survives the JSON round trip of the serving layer's result
// cache (JSON map keys must be text).
func (p OwnerPair) MarshalText() ([]byte, error) {
	return []byte(fmt.Sprintf("%d<-%d", p.Victim, p.Evictor)), nil
}

// UnmarshalText decodes MarshalText's form.
func (p *OwnerPair) UnmarshalText(b []byte) error {
	_, err := fmt.Sscanf(string(b), "%d<-%d", &p.Victim, &p.Evictor)
	return err
}

func newDirStats(columns int) *DirStats {
	d := &DirStats{cols: make([]dirCol, columns)}
	for i := range d.cols {
		d.cols[i] = dirCol{
			live:  make(map[uint64]int64),
			fills: make(map[uint64]int64),
			hits:  make(map[uint64]int64),
			drops: make(map[uint64]int64),
			cross: make(map[OwnerPair]int64),
		}
	}
	return d
}

// seed (re)builds the occupancy baseline from the resident blocks —
// called after warm-up, whichever path produced it (per-block Warm or
// the cloned WarmImage of batch runs).
func (d *DirStats) seed(s *System) {
	for col := range d.cols {
		live := d.cols[col].live
		for o := range live {
			delete(live, o)
		}
		for pos := 0; pos <= s.lastPos(); pos++ {
			bk := s.Bank(col, pos)
			for set := 0; set < bk.NumSets(); set++ {
				for _, blk := range bk.Blocks(set) {
					live[OwnerOf(blk.Tag)]++
				}
			}
		}
	}
}

// dropped records a victim leaving the cache, attributed to the access
// that pushed it out.
func (c *dirCol) dropped(victimTag, byTag uint64) {
	vo := OwnerOf(victimTag)
	c.drops[vo]++
	c.live[vo]--
	c.cross[OwnerPair{Victim: vo, Evictor: OwnerOf(byTag)}]++
}

// DirReport is the merged directory view: per-owner occupancy and the
// eviction-attribution matrix.
type DirReport struct {
	Owners []uint64 // every owner observed, ascending
	Live   map[uint64]int64
	Fills  map[uint64]int64
	Hits   map[uint64]int64
	Drops  map[uint64]int64
	Cross  map[OwnerPair]int64

	// SelfDrops and CrossDrops split the eviction matrix's diagonal from
	// its off-diagonal mass — the sharing-interference headline number.
	SelfDrops  int64
	CrossDrops int64
}

// Report merges the per-column accumulators.
func (d *DirStats) Report() DirReport {
	r := DirReport{
		Live:  make(map[uint64]int64),
		Fills: make(map[uint64]int64),
		Hits:  make(map[uint64]int64),
		Drops: make(map[uint64]int64),
		Cross: make(map[OwnerPair]int64),
	}
	owners := make(map[uint64]bool)
	for _, c := range d.cols {
		for o, n := range c.live {
			r.Live[o] += n
			owners[o] = true
		}
		for o, n := range c.fills {
			r.Fills[o] += n
			owners[o] = true
		}
		for o, n := range c.hits {
			r.Hits[o] += n
			owners[o] = true
		}
		for o, n := range c.drops {
			r.Drops[o] += n
			owners[o] = true
		}
		for p, n := range c.cross {
			r.Cross[p] += n
			if p.Victim == p.Evictor {
				r.SelfDrops += n
			} else {
				r.CrossDrops += n
			}
		}
	}
	for o := range owners {
		r.Owners = append(r.Owners, o)
	}
	sort.Slice(r.Owners, func(i, j int) bool { return r.Owners[i] < r.Owners[j] })
	return r
}

// Verify reconciles the directory against the ground truth: every
// owner's live count must equal the blocks of that owner actually
// resident in the banks. It returns the discrepancies found (nil when
// the directory is exact) — the protocol-invariant check the
// multi-requester conformance harness enforces.
func (d *DirStats) Verify(s *System) []string {
	actual := make(map[uint64]int64)
	for col := 0; col < s.AM.Columns; col++ {
		for pos := 0; pos <= s.lastPos(); pos++ {
			bk := s.Bank(col, pos)
			for set := 0; set < bk.NumSets(); set++ {
				for _, blk := range bk.Blocks(set) {
					actual[OwnerOf(blk.Tag)]++
				}
			}
		}
	}
	rep := d.Report()
	var violations []string
	for _, o := range rep.Owners {
		if rep.Live[o] != actual[o] {
			violations = append(violations,
				fmt.Sprintf("directory: owner %d live count %d, but %d blocks resident", o, rep.Live[o], actual[o]))
		}
	}
	for o, n := range actual {
		if rep.Live[o] == 0 && n != 0 {
			violations = append(violations,
				fmt.Sprintf("directory: owner %d untracked with %d blocks resident", o, n))
		}
	}
	return violations
}

// dropVictim records a victim leaving the cache entirely, attributed to
// the access that displaced it. Inert unless the directory policy is
// active; every policy's drop sites route through here so the directory
// needs no hooks of its own in the protocol flow.
func (a *agent) dropVictim(o *op, blk bank.Block) {
	if d := a.sys.Dir; d != nil {
		d.cols[a.col].dropped(blk.Tag, o.tag)
	}
}

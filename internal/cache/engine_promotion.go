package cache

import (
	"nucanet/internal/bank"
	"nucanet/internal/flit"
)

// promotionEngine implements D-NUCA's generational promotion: a hit
// block swaps with the LRU block of the next-closer bank; a miss fills
// the MRU bank and recursively pushes every block one bank farther.
type promotionEngine struct {
	baseEngine
}

func (e *promotionEngine) Probe(a *agent, o *op, now int64) {
	lat := a.bk.Latency()
	way, hit := a.bk.Lookup(o.set, o.tag)
	if hit {
		fin := a.bookHit(o, now, lat.TagRepl)
		if a.pos == 0 {
			a.touchInPlace(o, way, fin)
			return
		}
		blk := a.removeWay(o.set, way)
		if o.req.Write {
			blk.Dirty = true
		}
		a.sendData(o, fin, true)
		o.promote.blk = blk
		a.sendBank(fin, flit.ReplaceBlock, a.pos-1, o.req.Addr, &o.promote)
		return
	}
	if a.sys.Mode == Multicast {
		a.missNotify(o, now, lat)
		return
	}
	a.missForward(o, now, lat)
}

// Promote handles the hit block arriving one bank closer.
func (e *promotionEngine) Promote(a *agent, m *promoteMsg, now int64) {
	o := m.o
	lat := a.bk.Latency()
	fin := a.access(now, lat.TagRepl)
	if !a.full(o.set) {
		a.insert(o.set, m.blk)
		a.sendDone(o, fin)
		return
	}
	victim := a.evictLRU(o.set)
	a.insert(o.set, m.blk)
	o.demote.blk = victim
	a.sendBank(fin, flit.ReplaceBlock, a.pos+1, o.req.Addr, &o.demote)
}

// Demote stores the displaced block back into the hit bank's hole.
func (e *promotionEngine) Demote(a *agent, m *demoteMsg, now int64) {
	o := m.o
	lat := a.bk.Latency()
	fin := a.access(now, lat.TagRepl)
	a.insert(o.set, m.blk)
	a.sendDone(o, fin)
}

// Chain handles the miss-fill shift (promotion swaps never chain beyond
// one hop, but fills push recursively like LRU).
func (e *promotionEngine) Chain(a *agent, m *chainMsg, now int64) {
	chainStep(a, m, now)
}

// Fill stores the block returning from memory into the MRU bank.
func (e *promotionEngine) Fill(a *agent, o *op, now int64) {
	lat := a.bk.Latency()
	fin := a.access(now, lat.TagRepl)
	o.bankCycles += int64(lat.TagRepl)
	fillEvictChain(a, o, bank.Block{Tag: o.tag, Dirty: o.req.Write}, fin)
	a.sendData(o, fin, false)
}

func (e *promotionEngine) GoldenAccess(g *Golden, st [][]uint64, hb, hw int, tag uint64) (bool, int, uint64, bool) {
	if hb == 0 {
		g.touch(st, 0, hw)
		return true, 0, 0, false
	}
	if hb > 0 {
		// Swap with the next-closer bank: hit block becomes the MRU
		// of bank hb-1; that bank's LRU moves to bank hb. If the
		// closer bank has room (cold sets), the block just promotes.
		hitTag := g.remove(st, hb, hw)
		if len(st[hb-1]) < g.specs[hb-1].Ways {
			g.insertMRU(st, hb-1, hitTag)
			return true, hb, 0, false
		}
		victim := g.evictLRU(st, hb-1)
		g.insertMRU(st, hb-1, hitTag)
		g.insertMRU(st, hb, victim)
		return true, hb, 0, false
	}
	evicted, ok := goldenMissFill(g, st, tag)
	return false, -1, evicted, ok
}

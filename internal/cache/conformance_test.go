package cache

import (
	"strings"
	"testing"
)

// TestConformance runs the full micro-scenario matrix: every registered
// policy (including ones added purely through RegisterPolicy) against
// the golden model with the runtime protocol invariants enforced.
func TestConformance(t *testing.T) {
	scs := ConformanceScenarios()
	if len(scs) < 100 {
		t.Fatalf("conformance matrix has %d scenarios, want >= 100", len(scs))
	}
	perPolicy := make(map[Policy]int)
	for _, sc := range scs {
		perPolicy[sc.Policy]++
	}
	for _, name := range PolicyNames() {
		p, err := PolicyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if perPolicy[p] == 0 {
			t.Errorf("registered policy %s has no conformance scenarios", name)
		}
	}

	n, violations := RunConformance()
	if n != len(scs) {
		t.Fatalf("ran %d scenarios, enumerated %d", n, len(scs))
	}
	if len(violations) > 0 {
		max := len(violations)
		if max > 20 {
			max = 20
		}
		t.Fatalf("%d invariant violations across %d scenarios; first %d:\n%s",
			len(violations), n, max, strings.Join(violations[:max], "\n"))
	}
	t.Logf("%d scenarios, 0 violations", n)
}

// TestConformanceCatchesViolations pins that the harness is alive: a
// scenario scripted against a deliberately wrong expectation must
// produce violations (guarding against a checker that silently passes
// everything).
func TestConformanceCatchesViolations(t *testing.T) {
	// An access to a warm tag is a hit; claiming it misses must trip the
	// golden comparison. Build the scenario against golden state that
	// differs from the sim's warm state by warming the golden only.
	sc := Scenario{
		Name:   "tamper",
		Policy: LRU, Mode: Multicast,
		Warm:     [][]uint64{{100, 101, 102, 103}},
		Accesses: []ScriptedAccess{{Tag: 100}},
	}
	if v := RunScenario(sc); len(v) != 0 {
		t.Fatalf("control scenario should pass, got %v", v)
	}
	// Now corrupt: access a tag the golden was never warmed with by
	// bypassing the shared warm table — simulate by accessing tag 103
	// after an eviction the golden did not see. Simplest reliable
	// corruption: run the scenario with a checker-visible double insert.
	ck := newInvariantChecker()
	ck.BlockInserted(0, 0, 0, 42)
	ck.BlockInserted(0, 0, 0, 42)
	if len(ck.violations) == 0 {
		t.Fatal("double insert not flagged")
	}
	ck2 := newInvariantChecker()
	ck2.BlockEvicted(0, 0, 0, 7)
	if len(ck2.violations) == 0 {
		t.Fatal("evicting a non-resident block not flagged")
	}
	ck3 := newInvariantChecker()
	ck3.OpData(0, 5, false, -1)
	if len(ck3.violations) == 0 {
		t.Fatal("data for an unissued op not flagged")
	}
	ck3.OpIssued(0, 6, 0, 0, false)
	ck3.OpFinished(1, 6)
	found := false
	for _, v := range ck3.violations {
		if strings.Contains(v, "without delivering data") {
			found = true
		}
	}
	if !found {
		t.Fatalf("finish-before-data not flagged: %v", ck3.violations)
	}
}

package cache

import (
	"testing"
	"testing/quick"

	"nucanet/internal/bank"
)

func specs1way(n int) []bank.Spec {
	out := make([]bank.Spec, n)
	for i := range out {
		out[i] = bank.Spec{SizeKB: 64, Ways: 1}
	}
	return out
}

// flatLRU is an independent, trivially-correct 16-way LRU used to check
// the hierarchical golden model degenerates to exact LRU with 1-way banks.
type flatLRU struct {
	ways  int
	stack []uint64
}

func (f *flatLRU) access(tag uint64) (hit bool, depth int) {
	for i, t := range f.stack {
		if t == tag {
			copy(f.stack[1:i+1], f.stack[:i])
			f.stack[0] = tag
			return true, i
		}
	}
	if len(f.stack) < f.ways {
		f.stack = append(f.stack, 0)
	}
	copy(f.stack[1:], f.stack)
	f.stack[0] = tag
	return false, -1
}

func TestGoldenLRUMatchesFlatLRU(t *testing.T) {
	if err := quick.Check(func(ops []uint8, seed uint8) bool {
		g := NewGolden(LRU, specs1way(4), 1, 1)
		f := &flatLRU{ways: 4}
		for _, op := range ops {
			tag := uint64(op%11) + 1
			gHit, gPos, _, _ := g.Access(0, 0, tag)
			fHit, fDepth := f.access(tag)
			if gHit != fHit {
				return false
			}
			if gHit && gPos != fDepth {
				// With 1-way banks the bank position IS the LRU depth.
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGoldenFastLRUIdenticalToLRU(t *testing.T) {
	if err := quick.Check(func(ops []uint8) bool {
		a := NewGolden(LRU, specs1way(4), 1, 1)
		b := NewGolden(FastLRU, specs1way(4), 1, 1)
		for _, op := range ops {
			tag := uint64(op%13) + 1
			h1, p1, e1, ok1 := a.Access(0, 0, tag)
			h2, p2, e2, ok2 := b.Access(0, 0, tag)
			if h1 != h2 || p1 != p2 || e1 != e2 || ok1 != ok2 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGoldenPromotionSemantics(t *testing.T) {
	g := NewGolden(Promotion, specs1way(4), 1, 1)
	g.Warm(0, 0, []uint64{10, 20, 30, 40})
	// Hit at bank 2 swaps with bank 1.
	hit, pos, _, _ := g.Access(0, 0, 30)
	if !hit || pos != 2 {
		t.Fatalf("hit=%v pos=%d", hit, pos)
	}
	want := [][]uint64{{10}, {30}, {20}, {40}}
	got := g.Contents(0, 0)
	for b := range want {
		if got[b][0] != want[b][0] {
			t.Fatalf("after swap: %v, want %v", got, want)
		}
	}
	// A second hit promotes it to the MRU bank.
	g.Access(0, 0, 30)
	if got := g.Contents(0, 0); got[0][0] != 30 || got[1][0] != 10 {
		t.Fatalf("after second swap: %v", got)
	}
	// A miss pushes everything one bank farther and evicts the last.
	_, _, evicted, ok := g.Access(0, 0, 99)
	if !ok || evicted != 40 {
		t.Fatalf("evicted %v/%v, want 40", evicted, ok)
	}
	if got := g.Contents(0, 0); got[0][0] != 99 || got[3][0] != 20 {
		t.Fatalf("after miss: %v", got)
	}
}

func TestGoldenPromotionHitAtMRUTouches(t *testing.T) {
	g := NewGolden(Promotion, []bank.Spec{{SizeKB: 128, Ways: 2}, {SizeKB: 128, Ways: 2}}, 1, 1)
	g.Warm(0, 0, []uint64{1, 2, 3, 4})
	hit, pos, _, _ := g.Access(0, 0, 2)
	if !hit || pos != 0 {
		t.Fatalf("hit=%v pos=%d", hit, pos)
	}
	if got := g.Contents(0, 0); got[0][0] != 2 || got[0][1] != 1 {
		t.Fatalf("MRU-bank hit must reorder within the bank: %v", got)
	}
}

func TestGoldenLRUMultiWayChain(t *testing.T) {
	// Two 2-way banks: a hit in the far bank moves the block to the MRU
	// bank; the MRU bank's LRU way shifts to the far bank.
	g := NewGolden(LRU, []bank.Spec{{SizeKB: 128, Ways: 2}, {SizeKB: 128, Ways: 2}}, 1, 1)
	g.Warm(0, 0, []uint64{1, 2, 3, 4})
	hit, pos, _, _ := g.Access(0, 0, 4)
	if !hit || pos != 1 {
		t.Fatalf("hit=%v pos=%d", hit, pos)
	}
	got := g.Contents(0, 0)
	// Bank 0 was [1 2]; hit tag 4 becomes its MRU, evicting 2 into bank 1.
	if got[0][0] != 4 || got[0][1] != 1 {
		t.Fatalf("bank 0 = %v, want [4 1]", got[0])
	}
	if got[1][0] != 2 || got[1][1] != 3 {
		t.Fatalf("bank 1 = %v, want [2 3]", got[1])
	}
}

func TestGoldenWarmDistribution(t *testing.T) {
	g := NewGolden(FastLRU, []bank.Spec{{SizeKB: 64, Ways: 1}, {SizeKB: 128, Ways: 2}}, 2, 4)
	g.Warm(1, 3, []uint64{7, 8, 9})
	got := g.Contents(1, 3)
	if got[0][0] != 7 || got[1][0] != 8 || got[1][1] != 9 {
		t.Fatalf("warm distribution wrong: %v", got)
	}
	if g.Ways() != 3 {
		t.Fatalf("ways = %d", g.Ways())
	}
}

func TestGoldenColdMiss(t *testing.T) {
	g := NewGolden(LRU, specs1way(2), 1, 1)
	hit, _, _, evictedOK := g.Access(0, 0, 5)
	if hit || evictedOK {
		t.Fatal("cold access must miss without eviction")
	}
	hit, pos, _, _ := g.Access(0, 0, 5)
	if !hit || pos != 0 {
		t.Fatal("refetch must hit at the MRU bank")
	}
}

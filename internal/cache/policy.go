// Package cache implements the networked L2 cache protocols of the paper:
// the classic LRU and Promotion replacement schemes of D-NUCA and the
// proposed Fast-LRU replacement (Section 3.2), each in unicast and
// multicast form, running over the interconnect of the network package.
//
// A bank set is one column of banks; the cache controller at the core
// serializes operations per column (replacement chains are stateful) while
// different columns proceed in parallel. All protocol state travels in the
// packets; bank agents are stateless between messages, so late or stale
// packets (e.g. miss notifications racing a completed multicast hit) are
// harmless.
//
// Replacement policies are pluggable: each is a PolicyEngine registered
// under a name with RegisterPolicy, mirroring topology.Register and
// routing.RegisterAlgorithm. The agent and controller shells are
// policy-free; adding a policy means adding one engine file (see
// engine_static.go for the smallest example).
package cache

import "fmt"

// Policy identifies a registered replacement scheme. Ids are assigned in
// registration order; the built-in policies below register first, so
// their constants are stable.
type Policy uint8

const (
	// Promotion is D-NUCA's scheme: a hit block swaps with the block in
	// the next-closer bank; a miss fills the MRU bank and recursively
	// pushes every block one bank farther.
	Promotion Policy = iota
	// LRU is exact (hierarchical) LRU ordering maintained with explicit
	// block moves after each hit: the hit block moves to the MRU bank
	// and all closer blocks shift one bank farther.
	LRU
	// FastLRU is the paper's scheme: identical ordering to LRU, but each
	// bank evicts during the tag-match access and pushes its victim
	// along with the request, overlapping replacement with the search.
	FastLRU
)

// String returns the policy's registered display name.
func (p Policy) String() string {
	if int(p) < len(policyReg) {
		return policyReg[p].name
	}
	return fmt.Sprintf("Policy(%d)", uint8(p))
}

// Mode selects how tag-match requests reach the banks of a column.
type Mode uint8

const (
	// Unicast probes banks one by one, closest first.
	Unicast Mode = iota
	// Multicast delivers the request to every bank of the column using
	// the router's path-multicast support; banks tag-match in parallel.
	Multicast
)

func (m Mode) String() string {
	if m == Unicast {
		return "unicast"
	}
	return "multicast"
}

// Valid reports whether p is a registered policy.
func (p Policy) Valid() bool { return int(p) < len(policyReg) }

// Valid reports whether m is one of the defined modes.
func (m Mode) Valid() bool { return m <= Multicast }

// Set parses a policy name, making *Policy a flag.Value:
//
//	fs.Var(&opt.Policy, "policy", "replacement policy")
func (p *Policy) Set(s string) error {
	v, err := ParsePolicy(s)
	if err != nil {
		return err
	}
	*p = v
	return nil
}

// Set parses a mode name, making *Mode a flag.Value.
func (m *Mode) Set(s string) error {
	v, err := ParseMode(s)
	if err != nil {
		return err
	}
	*m = v
	return nil
}

// ParsePolicy resolves a registered policy name ("promotion", "lru",
// "fastlru", "static", ...); it is PolicyByName under the parse-style
// name the flag helpers expect.
func ParsePolicy(s string) (Policy, error) {
	return PolicyByName(s)
}

// ParseMode reads a mode name ("unicast", "multicast").
func ParseMode(s string) (Mode, error) {
	switch s {
	case "unicast":
		return Unicast, nil
	case "multicast":
		return Multicast, nil
	}
	return 0, fmt.Errorf("cache: unknown mode %q", s)
}

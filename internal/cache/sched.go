package cache

import "nucanet/internal/sim"

// scheduler runs closures at future cycles; each protocol agent owns one
// so bank-access completions and packet sends happen at their modeled
// times. It is a sim.Component.
type scheduler struct {
	k   *sim.Kernel
	kid int
	q   timedHeap
	seq int
}

type timedFn struct {
	at  int64
	seq int
	f   func(now int64)
}

// timedHeap is a hand-rolled binary min-heap ordered by (at, seq).
// container/heap would box every timedFn through `any` on Push/Pop — a
// heap allocation per scheduled closure — so the sift loops are inlined
// here, mirroring the kernel's event heap.
type timedHeap struct {
	s []timedFn
}

func (h *timedHeap) less(i, j int) bool {
	if h.s[i].at != h.s[j].at {
		return h.s[i].at < h.s[j].at
	}
	return h.s[i].seq < h.s[j].seq
}

func (h *timedHeap) push(e timedFn) {
	h.s = append(h.s, e)
	i := len(h.s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.s[i], h.s[parent] = h.s[parent], h.s[i]
		i = parent
	}
}

func (h *timedHeap) pop() timedFn {
	top := h.s[0]
	n := len(h.s) - 1
	h.s[0] = h.s[n]
	h.s[n] = timedFn{} // drop the closure reference for the GC
	h.s = h.s[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.s[i], h.s[smallest] = h.s[smallest], h.s[i]
		i = smallest
	}
	return top
}

func (s *scheduler) register(k *sim.Kernel) {
	s.k = k
	s.kid = k.Register(s)
}

// at schedules f to run at cycle t (or next cycle if t has passed).
func (s *scheduler) at(t int64, f func(now int64)) {
	s.seq++
	s.q.push(timedFn{at: t, seq: s.seq, f: f})
	s.k.WakeAt(t, s.kid)
}

// Tick runs all due closures in schedule order.
func (s *scheduler) Tick(now int64) bool {
	for len(s.q.s) > 0 && s.q.s[0].at <= now {
		tf := s.q.pop()
		tf.f(now)
	}
	return false // WakeAt re-arms per entry
}

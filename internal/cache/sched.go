package cache

import (
	"container/heap"

	"nucanet/internal/sim"
)

// scheduler runs closures at future cycles; each protocol agent owns one
// so bank-access completions and packet sends happen at their modeled
// times. It is a sim.Component.
type scheduler struct {
	k   *sim.Kernel
	kid int
	q   timedHeap
	seq int
}

type timedFn struct {
	at  int64
	seq int
	f   func(now int64)
}

type timedHeap []timedFn

func (h timedHeap) Len() int { return len(h) }
func (h timedHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timedHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timedHeap) Push(x any)   { *h = append(*h, x.(timedFn)) }
func (h *timedHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func (s *scheduler) register(k *sim.Kernel) {
	s.k = k
	s.kid = k.Register(s)
}

// at schedules f to run at cycle t (or next cycle if t has passed).
func (s *scheduler) at(t int64, f func(now int64)) {
	s.seq++
	heap.Push(&s.q, timedFn{at: t, seq: s.seq, f: f})
	s.k.WakeAt(t, s.kid)
}

// Tick runs all due closures in schedule order.
func (s *scheduler) Tick(now int64) bool {
	for len(s.q) > 0 && s.q[0].at <= now {
		tf := heap.Pop(&s.q).(timedFn)
		tf.f(now)
	}
	return false // WakeAt re-arms per entry
}

package cache

import (
	"fmt"

	"nucanet/internal/bank"
	"nucanet/internal/config"
	"nucanet/internal/router"
	"nucanet/internal/sim"
	"nucanet/internal/telemetry"
	"nucanet/internal/topology"
)

// This file is the protocol conformance harness: it enumerates
// micro-scenarios over (policy, mode, hit position, set occupancy,
// pipelining), runs each against a fresh system with the golden model in
// lock-step, and checks runtime protocol invariants through the
// telemetry probe layer —
//
//   - every issued operation completes exactly once (one data delivery,
//     one finish, nothing after the finish);
//   - replacement chains conserve blocks (no bank evicts a block it
//     does not hold, no bank-set ever holds a tag twice, and the
//     event-reconstructed contents equal the final bank state);
//   - the network's packet pool drains to zero live packets.
//
// Every registered policy is covered automatically: the scenario
// enumeration walks the registry, so a policy added through
// RegisterPolicy is conformance-checked without touching this file.

// ScriptedAccess is one access of a conformance script.
type ScriptedAccess struct {
	Tag   uint64
	Set   int
	Write bool
}

// Scenario is one conformance micro-scenario: a warm state and an
// access script for column 0 of a small uniform design.
type Scenario struct {
	Name   string
	Policy Policy
	Mode   Mode
	// Warm[s] lists set s's initial tags, MRU to LRU (hierarchical warm
	// order: tag i lands at bank position i on the 1-way banks of the
	// conformance design).
	Warm [][]uint64
	// Pipelined issues the whole script at once — exercising the
	// controller's ColumnWindow and the multicast probe stash — instead
	// of draining between accesses.
	Pipelined bool
	Accesses  []ScriptedAccess
}

// conformanceDesign is a scaled-down 4x4 mesh of 1-way 64 KB banks:
// four bank positions per column give every policy its full repertoire
// (MRU hit, interior hit, LRU hit, full chains) while running fast.
func conformanceDesign() config.Design {
	banks := make([]bank.Spec, 4)
	for i := range banks {
		banks[i] = bank.Spec{SizeKB: 64, Ways: 1}
	}
	return config.Design{
		ID: "CONF", Description: "conformance mesh",
		Topology: "mesh",
		Params: topology.Params{W: 4, H: 4, CoreX: 2, MemX: 2,
			HorizDelay: 1, VertDelay: []int{1}},
		Banks: banks, Router: router.DefaultConfig(),
	}
}

// ConformanceScenarios enumerates the micro-scenario matrix for every
// registered policy: (policy x mode x occupancy x hit position x
// read/write), plus a dirty-writeback script and a pipelined stress
// script per (policy, mode).
func ConformanceScenarios() []Scenario {
	warmTags := func(n int) []uint64 {
		tags := make([]uint64, n)
		for i := range tags {
			tags[i] = uint64(100 + i)
		}
		return tags
	}
	const missTag = 999

	var scs []Scenario
	for id := range policyReg {
		p := Policy(id)
		for _, mode := range []Mode{Unicast, Multicast} {
			for _, occ := range []int{0, 1, 2, 4} {
				warm := warmTags(occ)
				for _, write := range []bool{false, true} {
					rw := "read"
					if write {
						rw = "write"
					}
					// A miss against this occupancy.
					scs = append(scs, Scenario{
						Name:   fmt.Sprintf("%v/%v/occ%d/miss/%s", p, mode, occ, rw),
						Policy: p, Mode: mode,
						Warm:     [][]uint64{warm},
						Accesses: []ScriptedAccess{{Tag: missTag, Write: write}},
					})
					// A hit at every occupied position.
					for hp := 0; hp < occ; hp++ {
						scs = append(scs, Scenario{
							Name:   fmt.Sprintf("%v/%v/occ%d/hit@%d/%s", p, mode, occ, hp, rw),
							Policy: p, Mode: mode,
							Warm:     [][]uint64{warm},
							Accesses: []ScriptedAccess{{Tag: warm[hp], Write: write}},
						})
					}
				}
			}

			// Dirty writeback: dirty the LRU-most block of a full set,
			// then stream misses until the dirty victim leaves the cache.
			full := warmTags(4)
			scs = append(scs, Scenario{
				Name:   fmt.Sprintf("%v/%v/writeback", p, mode),
				Policy: p, Mode: mode,
				Warm: [][]uint64{full},
				Accesses: []ScriptedAccess{
					{Tag: full[3], Write: true},
					{Tag: 900}, {Tag: 901}, {Tag: 902}, {Tag: 903}, {Tag: 904},
				},
			})

			// Pipelined stress: two sets of one column in flight at once
			// (the ColumnWindow), mixing hits at every depth with misses;
			// under multicast this also exercises the probe stash.
			scs = append(scs, Scenario{
				Name:   fmt.Sprintf("%v/%v/pipelined", p, mode),
				Policy: p, Mode: mode,
				Warm:      [][]uint64{warmTags(4), warmTags(2)},
				Pipelined: true,
				Accesses: []ScriptedAccess{
					{Tag: 103, Set: 0}, {Tag: 910, Set: 1},
					{Tag: 911, Set: 0, Write: true}, {Tag: 101, Set: 1},
					{Tag: 100, Set: 0}, {Tag: 912, Set: 1, Write: true},
					{Tag: 102, Set: 0, Write: true}, {Tag: 100, Set: 1},
				},
			})
		}
	}
	return scs
}

// RunScenario executes one scenario against a fresh system, comparing
// every access and the final contents with the golden model and
// enforcing the runtime protocol invariants. It returns the violations
// found (nil on full conformance).
func RunScenario(sc Scenario) []string {
	d := conformanceDesign()
	k := sim.NewKernel()
	sys, err := New(k, d, sc.Policy, sc.Mode)
	if err != nil {
		return []string{fmt.Sprintf("build system: %v", err)}
	}
	ck := newInvariantChecker()
	sys.EnableTelemetry(&telemetry.Collector{Protocol: ck})

	warm := make([][]uint64, sys.AM.Sets*sys.AM.Columns)
	g := sys.NewGoldenFor()
	for set, tags := range sc.Warm {
		warm[set*sys.AM.Columns] = tags // column 0
		g.Warm(0, set, tags)
	}
	sys.Warm(warm)
	ck.seed(sys)

	var violations []string
	type expectation struct {
		acc  ScriptedAccess
		req  *Request
		hit  bool
		bank int
	}
	var exps []expectation
	drain := func() {
		if err := sys.Drain(1_000_000); err != nil {
			violations = append(violations, err.Error())
		}
	}
	check := func(e expectation) {
		if e.req.Hit != e.hit || (e.hit && e.req.HitBank != e.bank) {
			violations = append(violations,
				fmt.Sprintf("access tag %d set %d: sim hit=%v bank=%d, golden hit=%v bank=%d",
					e.acc.Tag, e.acc.Set, e.req.Hit, e.req.HitBank, e.hit, e.bank))
		}
	}
	for _, acc := range sc.Accesses {
		addr := sys.AM.Compose(acc.Tag, acc.Set, 0)
		req := sys.Issue(addr, acc.Write, nil)
		hit, bankPos, _, _ := g.Access(0, acc.Set, acc.Tag)
		e := expectation{acc: acc, req: req, hit: hit, bank: bankPos}
		if sc.Pipelined {
			exps = append(exps, e)
			continue
		}
		drain()
		check(e)
	}
	if sc.Pipelined {
		drain()
		for _, e := range exps {
			check(e)
		}
	}

	// Final contents must match the golden model everywhere.
	for set := range sc.Warm {
		got := sys.Contents(0, set)
		want := g.Contents(0, set)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			violations = append(violations,
				fmt.Sprintf("set %d contents: sim %v, golden %v", set, got, want))
		}
	}
	violations = append(violations, ck.finish(sys)...)
	if st := sys.Net.PoolStats(); st.Live != 0 {
		violations = append(violations,
			fmt.Sprintf("packet pool leak: %d live replica packets after drain", st.Live))
	}
	return violations
}

// RunConformance runs the full scenario matrix and returns the number of
// scenarios executed plus every violation, prefixed with its scenario
// name.
func RunConformance() (scenarios int, violations []string) {
	scs := ConformanceScenarios()
	for _, sc := range scs {
		for _, v := range RunScenario(sc) {
			violations = append(violations, sc.Name+": "+v)
		}
	}
	return len(scs), violations
}

// InvariantProbe exposes the runtime protocol-invariant checker to
// external harnesses (the cmp package's multi-requester conformance):
// install it as the telemetry collector's Protocol probe, Seed it after
// warming, and Finish it after the final drain. It enforces the same
// invariants the in-package harness does — exactly-once operation
// completion, block conservation, event/state reconciliation.
type InvariantProbe struct {
	*invariantChecker
}

// NewInvariantProbe returns a fresh checker.
func NewInvariantProbe() *InvariantProbe {
	return &InvariantProbe{newInvariantChecker()}
}

// Seed snapshots the warm contents as the conservation baseline; call
// after System.Warm and before the first access.
func (p *InvariantProbe) Seed(sys *System) { p.seed(sys) }

// Finish closes the run and returns every violation found.
func (p *InvariantProbe) Finish(sys *System) []string { return p.finish(sys) }

// bankSetKey addresses one set of one bank for conservation tracking.
type bankSetKey struct{ col, pos, set int }

type opTrack struct {
	data     int
	finished int
}

// invariantChecker implements telemetry.ProtocolProbe, reconstructing
// block residency and operation lifecycles from the probe stream.
type invariantChecker struct {
	ops        map[uint64]*opTrack
	blocks     map[bankSetKey]map[uint64]int
	violations []string
}

func newInvariantChecker() *invariantChecker {
	return &invariantChecker{
		ops:    make(map[uint64]*opTrack),
		blocks: make(map[bankSetKey]map[uint64]int),
	}
}

// seed snapshots the warm contents as the conservation baseline; call
// after System.Warm and before the first access.
func (ck *invariantChecker) seed(sys *System) {
	for col := 0; col < sys.AM.Columns; col++ {
		for pos := 0; pos <= sys.lastPos(); pos++ {
			bk := sys.Bank(col, pos)
			for set := 0; set < bk.NumSets(); set++ {
				for _, blk := range bk.Blocks(set) {
					ck.add(bankSetKey{col, pos, set}, blk.Tag)
				}
			}
		}
	}
}

func (ck *invariantChecker) add(key bankSetKey, tag uint64) {
	m := ck.blocks[key]
	if m == nil {
		m = make(map[uint64]int)
		ck.blocks[key] = m
	}
	m[tag]++
	if m[tag] > 1 {
		ck.violationf("bank %d/%d set %d holds tag %d twice", key.col, key.pos, key.set, tag)
	}
}

func (ck *invariantChecker) violationf(format string, args ...any) {
	ck.violations = append(ck.violations, fmt.Sprintf(format, args...))
}

func (ck *invariantChecker) OpIssued(now int64, id uint64, col, set int, write bool) {
	if _, dup := ck.ops[id]; dup {
		ck.violationf("op %d issued twice", id)
		return
	}
	ck.ops[id] = &opTrack{}
}

func (ck *invariantChecker) OpData(now int64, id uint64, hit bool, hitBank int) {
	t := ck.ops[id]
	if t == nil {
		ck.violationf("op %d delivered data without being issued", id)
		return
	}
	t.data++
	if t.data > 1 {
		ck.violationf("op %d delivered data %d times", id, t.data)
	}
	if t.finished > 0 {
		ck.violationf("op %d delivered data after finishing", id)
	}
}

func (ck *invariantChecker) OpFinished(now int64, id uint64) {
	t := ck.ops[id]
	if t == nil {
		ck.violationf("op %d finished without being issued", id)
		return
	}
	t.finished++
	if t.finished > 1 {
		ck.violationf("op %d finished %d times", id, t.finished)
	}
	if t.data == 0 {
		ck.violationf("op %d finished without delivering data", id)
	}
}

func (ck *invariantChecker) BlockInserted(col, pos, set int, tag uint64) {
	ck.add(bankSetKey{col, pos, set}, tag)
}

func (ck *invariantChecker) BlockEvicted(col, pos, set int, tag uint64) {
	key := bankSetKey{col, pos, set}
	if ck.blocks[key][tag] == 0 {
		ck.violationf("bank %d/%d set %d evicted non-resident tag %d", col, pos, set, tag)
		return
	}
	ck.blocks[key][tag]--
}

// finish closes the run: every issued operation must have completed
// exactly once, and the event-reconstructed residency must equal the
// final bank contents.
func (ck *invariantChecker) finish(sys *System) []string {
	for id, t := range ck.ops {
		if t.data != 1 || t.finished != 1 {
			ck.violationf("op %d ended with data=%d finished=%d (want exactly once each)",
				id, t.data, t.finished)
		}
	}
	for col := 0; col < sys.AM.Columns; col++ {
		for pos := 0; pos <= sys.lastPos(); pos++ {
			bk := sys.Bank(col, pos)
			for set := 0; set < bk.NumSets(); set++ {
				key := bankSetKey{col, pos, set}
				resident := make(map[uint64]bool)
				for _, blk := range bk.Blocks(set) {
					resident[blk.Tag] = true
					if ck.blocks[key][blk.Tag] != 1 {
						ck.violationf("bank %d/%d set %d: tag %d resident but event count %d",
							col, pos, set, blk.Tag, ck.blocks[key][blk.Tag])
					}
				}
				for tag, n := range ck.blocks[key] {
					if n > 0 && !resident[tag] {
						ck.violationf("bank %d/%d set %d: tag %d counted %d by events but not resident",
							col, pos, set, tag, n)
					}
				}
			}
		}
	}
	return ck.violations
}

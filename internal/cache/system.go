package cache

import (
	"fmt"

	"nucanet/internal/bank"
	"nucanet/internal/config"
	"nucanet/internal/flit"
	"nucanet/internal/mem"
	"nucanet/internal/network"
	"nucanet/internal/router"
	"nucanet/internal/routing"
	"nucanet/internal/sim"
	"nucanet/internal/stats"
	"nucanet/internal/telemetry"
	"nucanet/internal/topology"
	"nucanet/internal/trace"
)

// System is one complete networked L2 cache: topology, routers, banks,
// protocol agents, controller, and off-chip memory, assembled from a
// Table 3 design and a (policy, mode) pair.
type System struct {
	K      *sim.Kernel
	Design config.Design
	Policy Policy
	Mode   Mode
	Topo   *topology.Topology
	Net    *network.Network
	Memory *mem.Memory
	Ctrl   *Controller
	AM     trace.AddrMap
	Lat    *stats.Latency

	// Dir is the ownership directory, non-nil only under the Directory
	// policy (see engine_directory.go).
	Dir *DirStats

	agents [][]*agent // [column][position]
	tel    *telemetry.Collector
	eng    PolicyEngine // the registered engine driving Policy
	opSeq  uint64       // operation serial counter (telemetry correlation)
}

// New builds a system over a fresh kernel-registered network. It errors
// when the design's topology cannot be built or its routing fails the
// static deadlock-freedom check.
func New(k *sim.Kernel, d config.Design, policy Policy, mode Mode) (*System, error) {
	return NewPrebuilt(k, d, policy, mode, Prebuilt{})
}

// Prebuilt carries construction artifacts a caller has already produced
// so batch evaluation (internal/fleet) can share the immutable ones
// across many systems of the same design. The zero value builds
// everything fresh — the ordinary single-run path.
type Prebuilt struct {
	// Topo, when non-nil, must be the design's own topology (d.Build()
	// output); it is shared read-only across systems.
	Topo *topology.Topology
	// Alg, when non-nil, is the routing algorithm or precomputed
	// *routing.Table to use instead of routing.For(Topo).
	Alg routing.Algorithm
	// Arena and Prechecked pass through to network.BuildOpts.
	Arena      *router.Arena
	Prechecked bool
	// Plan passes through to network.BuildOpts.Plan: when non-nil the
	// kernel must be a sim.NewShardedKernel root facade with matching
	// shard count, and the network wires each router to its home shard.
	Plan *topology.Plan
}

// ValidatePair reports the same errors New would raise for an
// unregistered policy or an unknown mode, letting callers fail in New's
// error order before building any artifacts.
func ValidatePair(policy Policy, mode Mode) error {
	if !policy.Valid() {
		return fmt.Errorf("cache: unregistered policy id %d (registered: %v)", policy, PolicyNames())
	}
	if !mode.Valid() {
		return fmt.Errorf("cache: unknown mode id %d", mode)
	}
	return nil
}

// NewPrebuilt is New with shared construction artifacts (see Prebuilt).
func NewPrebuilt(k *sim.Kernel, d config.Design, policy Policy, mode Mode, pre Prebuilt) (*System, error) {
	if err := ValidatePair(policy, mode); err != nil {
		return nil, err
	}
	topo := pre.Topo
	if topo == nil {
		var err error
		if topo, err = d.Build(); err != nil {
			return nil, err
		}
	}
	s := &System{
		K: k, Design: d, Policy: policy, Mode: mode,
		Topo: topo,
		AM:   d.AddrMap(),
		Lat:  stats.NewLatency(len(d.Banks)),
		eng:  policy.engine(),
	}
	if _, ok := s.eng.(*directoryEngine); ok {
		s.Dir = newDirStats(topo.Columns())
	}
	alg := pre.Alg
	if alg == nil {
		var err error
		if alg, err = routing.For(topo); err != nil {
			return nil, err
		}
	}
	var err error
	s.Net, err = network.NewOpts(k, topo, alg, d.Router,
		network.BuildOpts{Arena: pre.Arena, Prechecked: pre.Prechecked, Plan: pre.Plan})
	if err != nil {
		return nil, err
	}
	muxes := make(map[topology.NodeID]*bankMux)
	s.agents = make([][]*agent, topo.Columns())
	for c := 0; c < topo.Columns(); c++ {
		col := topo.Column(c)
		s.agents[c] = make([]*agent, len(col))
		for p, node := range col {
			a := &agent{
				sys: s, node: node, col: c, pos: p, last: len(col) - 1,
				bk: bank.NewIn(d.Banks[p], pre.Arena.BankArena()),
			}
			a.sched.register(k)
			s.agents[c][p] = a
			// Concentrated topologies place several banks of one column
			// on a router; a mux demuxes ToBank deliveries by DstPos.
			// Single-bank nodes attach the agent directly, keeping the
			// one-bank-per-router fast path allocation-free.
			if m, ok := muxes[node]; ok {
				m.agents = append(m.agents, a)
			} else if topo.BanksAt(node) > 1 {
				m = &bankMux{agents: []*agent{a}}
				muxes[node] = m
				s.Net.Attach(node, flit.ToBank, m)
			} else {
				s.Net.Attach(node, flit.ToBank, a)
			}
		}
	}
	s.Ctrl = newController(s)
	s.Net.Attach(topo.Core, flit.ToCore, s.Ctrl)
	s.Memory = mem.New(k, s.Net, mem.DefaultConfig())
	return s, nil
}

// MustNew is New for tests and examples with known-good designs.
func MustNew(k *sim.Kernel, d config.Design, policy Policy, mode Mode) *System {
	s, err := New(k, d, policy, mode)
	if err != nil {
		panic(err)
	}
	return s
}

// bankMux fans ToBank deliveries at one router out to the banks hosted
// there (concentrated topologies). DstPos selects the bank by column
// position; -1 delivers to every hosted bank in ascending position
// order — the node-local leg of a multicast tag-match.
type bankMux struct {
	agents []*agent // ascending column-position order
}

func (m *bankMux) Deliver(pkt *flit.Packet, now int64) {
	if pkt.DstPos < 0 {
		for _, a := range m.agents {
			a.Deliver(pkt, now)
		}
		return
	}
	for _, a := range m.agents {
		if int16(a.pos) == pkt.DstPos {
			a.Deliver(pkt, now)
			return
		}
	}
	panic(fmt.Sprintf("cache: no bank at position %d of node %d for %v", pkt.DstPos, pkt.Dst, pkt))
}

// EnableTelemetry installs the probe collector across the system: the
// routers (flit trace, link heatmap), the bank agents (per-bank access
// and hit counts), and — when sampling is on — a sim.Observer polling
// queue occupancy and in-flight operations. Call after New and before
// issuing traffic; registering here keeps the observer's component id
// above every working component, so it ticks last within a cycle.
func (s *System) EnableTelemetry(c *telemetry.Collector) {
	s.tel = c
	s.Net.SetTelemetry(c)
	if every := c.SampleEvery(); every > 0 {
		sim.Observe(s.K, every, func(now int64) {
			c.Sample(now, s.Net.InFlight(), s.Ctrl.Pending())
		})
	}
}

// bankNode returns the router of the bank at (column, position).
func (s *System) bankNode(col, pos int) topology.NodeID {
	return s.Topo.Column(col)[pos]
}

// lastPos returns the position of the LRU bank in every column.
func (s *System) lastPos() int { return len(s.Design.Banks) - 1 }

// Bank returns the bank state at (column, position) — for tests and
// validation against the golden model.
func (s *System) Bank(col, pos int) *bank.Bank { return s.agents[col][pos].bk }

// BankAccesses sums bank accesses across the cache (Fast-LRU roughly
// halves this versus classic LRU, a claim of the paper).
func (s *System) BankAccesses() uint64 {
	var n uint64
	for _, col := range s.agents {
		for _, a := range col {
			n += a.Accesses
		}
	}
	return n
}

// BankAccessesBySize splits the bank-access counts by bank capacity (KB),
// as the energy model needs.
func (s *System) BankAccessesBySize() map[int]uint64 {
	out := make(map[int]uint64)
	for _, col := range s.agents {
		for _, a := range col {
			out[a.bk.Spec().SizeKB] += a.Accesses
		}
	}
	return out
}

// Issue submits one access; done (optional) fires when the data reaches
// the core.
func (s *System) Issue(addr uint64, write bool, done func(*Request, int64)) *Request {
	r := &Request{Addr: addr, Write: write, Done: done}
	s.Ctrl.Issue(r, s.K.Now())
	return r
}

// Warm preloads every bank from a warm-state table as produced by
// (*trace.Synthetic).WarmBlocks: warm[set*Columns+col] lists tags in
// MRU-to-LRU order. The same table warms a Golden model, keeping the two
// in lock-step from the first access.
func (s *System) Warm(warm [][]uint64) {
	cols := s.AM.Columns
	for set := 0; set < s.AM.Sets; set++ {
		for c := 0; c < cols; c++ {
			tags := warm[set*cols+c]
			i := 0
			for p, a := range s.agents[c] {
				ways := s.Design.Banks[p].Ways
				for w := 0; w < ways && i < len(tags); w++ {
					a.bk.InsertLRU(set, bank.Block{Tag: tags[i]})
					i++
				}
			}
		}
	}
	if s.Dir != nil {
		s.Dir.seed(s)
	}
}

// NewGoldenFor builds a golden reference model matching this system's
// geometry and policy.
func (s *System) NewGoldenFor() *Golden {
	return NewGolden(s.Policy, s.Design.Banks, s.AM.Columns, s.AM.Sets)
}

// Drain runs the kernel until all protocol activity quiesces or the cycle
// budget is exhausted; it errors on a stuck protocol.
func (s *System) Drain(maxCycles int64) error {
	if _, idle := s.K.Run(maxCycles); !idle {
		return fmt.Errorf("cache: system did not quiesce within %d cycles (pending=%d, inflight=%d)",
			maxCycles, s.Ctrl.Pending(), s.Net.InFlight())
	}
	if p := s.Ctrl.Pending(); p != 0 {
		return fmt.Errorf("cache: %d requests stuck after quiescence", p)
	}
	if f := s.Net.InFlight(); f != 0 {
		return fmt.Errorf("cache: %d flits stuck in the network", f)
	}
	return nil
}

// Contents returns the tags of one set across the column's banks, MRU
// first within each bank — comparable with Golden.Contents.
func (s *System) Contents(col, set int) [][]uint64 {
	out := make([][]uint64, len(s.agents[col]))
	for p, a := range s.agents[col] {
		blocks := a.bk.Blocks(set)
		tags := make([]uint64, len(blocks))
		for i, b := range blocks {
			tags[i] = b.Tag
		}
		out[p] = tags
	}
	return out
}

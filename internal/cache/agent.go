package cache

import (
	"fmt"

	"nucanet/internal/bank"
	"nucanet/internal/flit"
	"nucanet/internal/mem"
	"nucanet/internal/topology"
)

// agent is the policy-free protocol shell of one cache bank. It receives
// protocol packets at its router, books bank accesses (serialized
// through busyUntil), keeps the multicast probe stash, and hands each
// typed message to the system's PolicyEngine, which mutates the bank and
// emits follow-on messages through the shell's send helpers.
type agent struct {
	sys  *System
	node topology.NodeID
	col  int
	pos  int // position within the column, 0 = MRU bank
	last int // position of the LRU bank
	bk   *bank.Bank

	busyUntil int64
	sched     scheduler
	stash     []*flit.Packet // replacement traffic awaiting this bank's probe

	// Accesses counts bank accesses performed (Fast-LRU roughly halves
	// this versus classic LRU — a paper claim worth measuring).
	Accesses uint64
}

// access books one bank access of the given duration and returns its
// completion time.
func (a *agent) access(now int64, dur int) int64 {
	start := now
	if start < a.busyUntil {
		start = a.busyUntil
	}
	a.busyUntil = start + int64(dur)
	a.Accesses++
	a.sys.tel.BankAccess(a.col, a.pos)
	return a.busyUntil
}

func (a *agent) full(set int) bool {
	return a.bk.Occupancy(set) >= a.bk.Ways()
}

// send schedules a packet injection at cycle t.
func (a *agent) send(t int64, kind flit.Kind, dst topology.NodeID, ep flit.Endpoint, addr uint64, payload flit.Payload) {
	a.sched.at(t, func(now int64) {
		a.sys.Net.Send(&flit.Packet{
			Kind: kind, Src: a.node, Dst: dst, DstEp: ep, Addr: addr, Payload: payload,
		}, now)
	})
}

// sendBank schedules a packet to the bank at position pos of this
// agent's column, addressing it both by router (Dst) and by column
// position (DstPos) so nodes hosting several banks demux correctly.
func (a *agent) sendBank(t int64, kind flit.Kind, pos int, addr uint64, payload flit.Payload) {
	a.sched.at(t, func(now int64) {
		a.sys.Net.Send(&flit.Packet{
			Kind: kind, Src: a.node, Dst: a.sys.bankNode(a.col, pos), DstEp: flit.ToBank,
			DstPos: int16(pos), Addr: addr, Payload: payload,
		}, now)
	})
}

// dataKind returns the packet kind answering the core: block data for
// reads, a one-flit acknowledgment for writes.
func dataKind(o *op, fromHit bool) flit.Kind {
	if o.req.Write {
		return flit.WriteDone
	}
	if fromHit {
		return flit.HitData
	}
	return flit.DataToCore
}

// Deliver dispatches one protocol packet. Under multicast, replacement and
// store messages for an operation are stashed until this bank's tag-match
// probe for that operation has run: the probe travels as a router replica
// that can queue at a congested ejection port, so unlike the paper's
// single downward path, arrival order is not inherently guaranteed here.
func (a *agent) Deliver(pkt *flit.Packet, now int64) {
	if o := stashableOp(pkt.Payload); o != nil && o.probed != nil && !o.probed[a.pos] {
		a.stash = append(a.stash, pkt)
		return
	}
	a.dispatch(pkt, now)
}

// dispatch hands a bank-bound message to the policy engine — an
// exhaustive type switch over the bank-side message catalogue. The probe
// case marks the bank probed (replaying stashed traffic) after the
// engine's tag-match has run, policy-independently.
func (a *agent) dispatch(pkt *flit.Packet, now int64) {
	switch m := pkt.Payload.(type) {
	case *probeMsg:
		a.sys.eng.Probe(a, m.o, now)
		a.markProbed(m.o, now)
	case *fillMsg:
		a.sys.eng.Fill(a, m.o, now)
	case *chainMsg:
		a.sys.eng.Chain(a, m, now)
	case *unitMsg:
		a.sys.eng.Unit(a, m, now)
	case *storeMsg:
		a.sys.eng.Store(a, m, now)
	case *promoteMsg:
		a.sys.eng.Promote(a, m, now)
	case *demoteMsg:
		a.sys.eng.Demote(a, m, now)
	default:
		panic(fmt.Sprintf("cache: bank %d/%d got unexpected %v", a.col, a.pos, pkt))
	}
}

// markProbed records this bank's probe and replays any stashed messages
// that were waiting for it.
func (a *agent) markProbed(o *op, now int64) {
	if o.probed == nil {
		return
	}
	o.probed[a.pos] = true
	if len(a.stash) == 0 {
		return
	}
	pending := a.stash
	a.stash = a.stash[:0]
	for _, pkt := range pending {
		if stashableOp(pkt.Payload) == o {
			a.dispatch(pkt, now)
		} else {
			a.stash = append(a.stash, pkt)
		}
	}
}

// bookHit records a tag-match hit at this bank: telemetry, the combined
// tag+data access, critical-path accounting, and the request's
// CPU-visible hit fields. Returns the access completion time.
func (a *agent) bookHit(o *op, now int64, dur int) int64 {
	a.sys.tel.BankHit(a.col, a.pos)
	fin := a.access(now, dur)
	o.bankCycles += int64(dur)
	o.hitPos = a.pos
	o.req.Hit = true
	o.req.HitBank = a.pos
	return fin
}

// touchInPlace completes a hit whose block stays in this bank: promote
// it to the bank-local MRU way, answer the core, and release the column
// immediately (no replacement chain runs).
func (a *agent) touchInPlace(o *op, way int, fin int64) {
	a.bk.Touch(o.set, way)
	if o.req.Write {
		a.bk.SetDirty(o.set, 0)
	}
	o.chainNeeded = 0
	a.sendData(o, fin, true)
}

// sendData answers the core: block data for reads, an acknowledgment
// for writes.
func (a *agent) sendData(o *op, fin int64, fromHit bool) {
	a.send(fin, dataKind(o, fromHit), o.ctrl, flit.ToCore, o.req.Addr, &o.data)
}

// sendDone reports one replacement chain drained.
func (a *agent) sendDone(o *op, fin int64) {
	a.send(fin, flit.CompleteNotify, o.ctrl, flit.ToCore, o.req.Addr, &o.done)
}

// writeBack sends a dirty victim leaving the cache to memory.
func (a *agent) writeBack(o *op, fin int64) {
	a.send(fin, flit.WriteBack, a.sys.Topo.Mem, flit.ToMem, o.req.Addr, nil)
}

// missNotify books a multicast miss probe (tag-only access), reports it
// to the controller, and returns the access completion time. Only the
// farthest bank's probe is on the miss decision's critical path — and
// only when no closer bank has already hit.
func (a *agent) missNotify(o *op, now int64, lat bank.Latency) int64 {
	fin := a.access(now, lat.TagOnly)
	if a.pos == a.last && o.hitPos < 0 {
		o.bankCycles += int64(lat.TagOnly)
	}
	a.send(fin, flit.MissNotify, o.ctrl, flit.ToCore, o.req.Addr, &o.miss)
	return fin
}

// missForward books a unicast miss probe (tag-only access) and forwards
// the search to the next bank, or asks memory at the last one.
func (a *agent) missForward(o *op, now int64, lat bank.Latency) {
	fin := a.access(now, lat.TagOnly)
	o.bankCycles += int64(lat.TagOnly)
	if a.pos < a.last {
		a.forwardProbe(o, fin)
		return
	}
	a.requestMemory(o, fin)
}

// forwardProbe sends the tag-match request on to the next-farther bank.
func (a *agent) forwardProbe(o *op, fin int64) {
	kind := flit.ReadReq
	if o.req.Write {
		kind = flit.WriteData
	}
	a.sendBank(fin, kind, a.pos+1, o.req.Addr, &o.probe)
}

// insert installs a block as this bank's set MRU, emitting the
// conservation probe the protocol invariant checker reconciles.
func (a *agent) insert(set int, blk bank.Block) {
	a.bk.Insert(set, blk)
	a.sys.tel.BlockInserted(a.col, a.pos, set, blk.Tag)
}

// evictLRU removes and returns this bank's set LRU (the set must be
// non-empty — engines evict only from full sets).
func (a *agent) evictLRU(set int) bank.Block {
	blk, _ := a.bk.EvictLRU(set)
	a.sys.tel.BlockEvicted(a.col, a.pos, set, blk.Tag)
	return blk
}

// removeWay extracts a resident way (the hit block leaving for another
// bank).
func (a *agent) removeWay(set, way int) bank.Block {
	blk := a.bk.Remove(set, way)
	a.sys.tel.BlockEvicted(a.col, a.pos, set, blk.Tag)
	return blk
}

// requestMemory asks the off-chip memory for the block, directing the
// reply to the column's MRU bank. The read request and its cookie (the
// fill message memory echoes back) are embedded in the op, so the miss
// path allocates nothing.
func (a *agent) requestMemory(o *op, fin int64) {
	o.memReq = mem.ReadReq{
		ReplyTo:  a.sys.bankNode(o.col, 0),
		ReplyEp:  flit.ToBank,
		ReplyPos: 0,
		Cookie:   &o.fill,
	}
	a.send(fin, flit.MemReadReq, a.sys.Topo.Mem, flit.ToMem, o.req.Addr, &o.memReq)
}

package cache

import (
	"fmt"

	"nucanet/internal/bank"
	"nucanet/internal/flit"
	"nucanet/internal/mem"
	"nucanet/internal/topology"
)

// agent is the protocol engine of one cache bank. It receives protocol
// packets at its router, performs bank accesses (serialized through
// busyUntil), mutates the bank, and emits follow-on packets when the
// access completes.
type agent struct {
	sys  *System
	node topology.NodeID
	col  int
	pos  int // position within the column, 0 = MRU bank
	last int // position of the LRU bank
	bk   *bank.Bank

	busyUntil int64
	sched     scheduler
	stash     []*flit.Packet // replacement traffic awaiting this bank's probe

	// Accesses counts bank accesses performed (Fast-LRU roughly halves
	// this versus classic LRU — a paper claim worth measuring).
	Accesses uint64
}

// access books one bank access of the given duration and returns its
// completion time.
func (a *agent) access(now int64, dur int) int64 {
	start := now
	if start < a.busyUntil {
		start = a.busyUntil
	}
	a.busyUntil = start + int64(dur)
	a.Accesses++
	a.sys.tel.BankAccess(a.col, a.pos)
	return a.busyUntil
}

func (a *agent) full(set int) bool {
	return a.bk.Occupancy(set) >= a.bk.Ways()
}

// send schedules a packet injection at cycle t.
func (a *agent) send(t int64, kind flit.Kind, dst topology.NodeID, ep flit.Endpoint, addr uint64, payload any) {
	a.sched.at(t, func(now int64) {
		a.sys.Net.Send(&flit.Packet{
			Kind: kind, Src: a.node, Dst: dst, DstEp: ep, Addr: addr, Payload: payload,
		}, now)
	})
}

// sendBank schedules a packet to the bank at position pos of this
// agent's column, addressing it both by router (Dst) and by column
// position (DstPos) so nodes hosting several banks demux correctly.
func (a *agent) sendBank(t int64, kind flit.Kind, pos int, addr uint64, payload any) {
	a.sched.at(t, func(now int64) {
		a.sys.Net.Send(&flit.Packet{
			Kind: kind, Src: a.node, Dst: a.sys.bankNode(a.col, pos), DstEp: flit.ToBank,
			DstPos: int16(pos), Addr: addr, Payload: payload,
		}, now)
	})
}

// dataKind returns the packet kind answering the core: block data for
// reads, a one-flit acknowledgment for writes.
func dataKind(o *op, fromHit bool) flit.Kind {
	if o.req.Write {
		return flit.WriteDone
	}
	if fromHit {
		return flit.HitData
	}
	return flit.DataToCore
}

// Deliver dispatches one protocol packet. Under multicast, replacement and
// store messages for an operation are stashed until this bank's tag-match
// probe for that operation has run: the probe travels as a router replica
// that can queue at a congested ejection port, so unlike the paper's
// single downward path, arrival order is not inherently guaranteed here.
func (a *agent) Deliver(pkt *flit.Packet, now int64) {
	if o := opOf(pkt.Payload); o != nil && o.probed != nil && !o.probed[a.pos] {
		switch pkt.Kind {
		case flit.ReplaceBlock, flit.BlockToMRU, flit.MemBlock:
			a.stash = append(a.stash, pkt)
			return
		}
	}
	a.dispatch(pkt, now)
}

func opOf(payload any) *op {
	switch p := payload.(type) {
	case *op:
		return p
	case *blockMsg:
		return p.op
	}
	return nil
}

func (a *agent) dispatch(pkt *flit.Packet, now int64) {
	switch pkt.Kind {
	case flit.ReadReq, flit.WriteData:
		a.probe(pkt.Payload.(*op), now)
	case flit.ReplaceBlock:
		m := pkt.Payload.(*blockMsg)
		switch {
		case m.withReq:
			a.combined(m, now)
		case m.promoUp:
			a.promoUp(m, now)
		case m.promoDown:
			a.promoDown(m, now)
		default:
			a.chain(m, now)
		}
	case flit.BlockToMRU:
		a.storeMRU(pkt.Payload.(*blockMsg), now)
	case flit.MemBlock:
		a.fill(pkt.Payload.(*op), now)
	default:
		panic(fmt.Sprintf("cache: bank %d/%d got unexpected %v", a.col, a.pos, pkt))
	}
}

// markProbed records this bank's probe and replays any stashed messages
// that were waiting for it.
func (a *agent) markProbed(o *op, now int64) {
	if o.probed == nil {
		return
	}
	o.probed[a.pos] = true
	if len(a.stash) == 0 {
		return
	}
	pending := a.stash
	a.stash = a.stash[:0]
	for _, pkt := range pending {
		if po := opOf(pkt.Payload); po == o {
			a.dispatch(pkt, now)
		} else {
			a.stash = append(a.stash, pkt)
		}
	}
}

// probe handles a tag-match request: the unicast first hop (always bank 0
// for Fast-LRU; any bank for LRU/Promotion) or a multicast delivery.
func (a *agent) probe(o *op, now int64) {
	defer a.markProbed(o, now)
	lat := a.bk.Latency()
	way, hit := a.bk.Lookup(o.set, o.tag)
	if hit {
		a.sys.tel.BankHit(a.col, a.pos)
		fin := a.access(now, lat.TagRepl) // tag match + data read
		o.bankCycles += int64(lat.TagRepl)
		o.hitPos = a.pos
		o.req.Hit = true
		o.req.HitBank = a.pos
		if a.pos == 0 {
			a.bk.Touch(o.set, way)
			if o.req.Write {
				a.bk.SetDirty(o.set, 0)
			}
			a.send(fin, dataKind(o, true), o.ctrl, flit.ToCore, o.req.Addr, o)
			return
		}
		blk := a.bk.Remove(o.set, way)
		if o.req.Write {
			blk.Dirty = true
		}
		a.send(fin, dataKind(o, true), o.ctrl, flit.ToCore, o.req.Addr, o)
		switch a.sys.Policy {
		case LRU, FastLRU:
			if a.sys.Policy == FastLRU && a.sys.Mode == Multicast {
				// Two chain drains must complete: the hit block landing
				// at the MRU bank, and the push chain terminating here.
				o.chainNeeded = 2
			}
			a.sendBank(fin, flit.BlockToMRU, 0,
				o.req.Addr, &blockMsg{op: o, blk: blk, hasBlock: true})
		case Promotion:
			a.sendBank(fin, flit.ReplaceBlock, a.pos-1,
				o.req.Addr, &blockMsg{op: o, blk: blk, hasBlock: true, promoUp: true})
		}
		return
	}

	// Miss at this bank.
	if a.sys.Mode == Multicast {
		fin := a.access(now, lat.TagOnly)
		if a.pos == a.last && o.hitPos < 0 {
			// The farthest bank's probe closes the miss decision; when a
			// closer bank already hit, this probe is off the critical path.
			o.bankCycles += int64(lat.TagOnly)
		}
		a.send(fin, flit.MissNotify, o.ctrl, flit.ToCore, o.req.Addr, o)
		if a.sys.Policy == FastLRU && a.pos == 0 {
			a.startFastChain(o, fin)
		}
		return
	}

	// Unicast.
	if a.sys.Policy == FastLRU {
		// Only the MRU bank sees a bare request under unicast Fast-LRU;
		// the combined request+block unit travels on from here.
		fin := a.access(now, lat.TagRepl)
		o.bankCycles += int64(lat.TagRepl)
		a.forwardFastUnit(o, fin)
		return
	}
	fin := a.access(now, lat.TagOnly)
	o.bankCycles += int64(lat.TagOnly)
	if a.pos < a.last {
		kind := flit.ReadReq
		if o.req.Write {
			kind = flit.WriteData
		}
		a.sendBank(fin, kind, a.pos+1, o.req.Addr, o)
		return
	}
	a.requestMemory(o, fin)
}

// startFastChain initiates the Fast-LRU replacement chain at the MRU bank
// after a multicast miss there.
func (a *agent) startFastChain(o *op, fin int64) {
	if !a.full(o.set) {
		// Nothing to push; the chain is trivially complete and the
		// frame for the eventual fill already exists.
		a.send(fin, flit.CompleteNotify, o.ctrl, flit.ToCore, o.req.Addr, o)
		return
	}
	blk, _ := a.bk.EvictLRU(o.set)
	if a.last == 0 {
		// Single-bank column: the victim leaves the cache.
		if blk.Dirty {
			a.send(fin, flit.WriteBack, a.sys.Topo.Mem, flit.ToMem, o.req.Addr, o)
		}
		a.send(fin, flit.CompleteNotify, o.ctrl, flit.ToCore, o.req.Addr, o)
		return
	}
	a.sendBank(fin, flit.ReplaceBlock, 1,
		o.req.Addr, &blockMsg{op: o, blk: blk, hasBlock: true})
}

// forwardFastUnit evicts (if full) and forwards the unicast Fast-LRU
// request+block unit, or terminates at the LRU bank with a memory access.
func (a *agent) forwardFastUnit(o *op, fin int64) {
	out := &blockMsg{op: o, withReq: true}
	if a.full(o.set) {
		blk, _ := a.bk.EvictLRU(o.set)
		out.blk = blk
		out.hasBlock = true
	}
	if a.pos < a.last {
		a.sendBank(fin, flit.ReplaceBlock, a.pos+1, o.req.Addr, out)
		return
	}
	// LRU bank: replacement is complete; the victim leaves the cache.
	if out.hasBlock && out.blk.Dirty {
		a.send(fin, flit.WriteBack, a.sys.Topo.Mem, flit.ToMem, o.req.Addr, o)
	}
	a.send(fin, flit.CompleteNotify, o.ctrl, flit.ToCore, o.req.Addr, o)
	a.requestMemory(o, fin)
}

// combined handles the unicast Fast-LRU request+block unit at banks > 0:
// one access tag-matches, stores the incoming block, and evicts onward.
func (a *agent) combined(m *blockMsg, now int64) {
	o := m.op
	lat := a.bk.Latency()
	fin := a.access(now, lat.TagRepl)
	o.bankCycles += int64(lat.TagRepl)

	way, hit := a.bk.Lookup(o.set, o.tag)
	if hit {
		a.sys.tel.BankHit(a.col, a.pos)
		blk := a.bk.Remove(o.set, way)
		if o.req.Write {
			blk.Dirty = true
		}
		if m.hasBlock {
			a.bk.Insert(o.set, m.blk)
		}
		o.hitPos = a.pos
		o.req.Hit = true
		o.req.HitBank = a.pos
		a.send(fin, dataKind(o, true), o.ctrl, flit.ToCore, o.req.Addr, o)
		a.sendBank(fin, flit.BlockToMRU, 0,
			o.req.Addr, &blockMsg{op: o, blk: blk, hasBlock: true})
		return
	}
	out := &blockMsg{op: o, withReq: true}
	if a.full(o.set) {
		blk, _ := a.bk.EvictLRU(o.set)
		out.blk = blk
		out.hasBlock = true
	}
	if m.hasBlock {
		a.bk.Insert(o.set, m.blk)
	}
	if a.pos < a.last {
		a.sendBank(fin, flit.ReplaceBlock, a.pos+1, o.req.Addr, out)
		return
	}
	if out.hasBlock && out.blk.Dirty {
		a.send(fin, flit.WriteBack, a.sys.Topo.Mem, flit.ToMem, o.req.Addr, o)
	}
	a.send(fin, flit.CompleteNotify, o.ctrl, flit.ToCore, o.req.Addr, o)
	a.requestMemory(o, fin)
}

// chain handles a plain replacement-chain block: the multicast Fast-LRU
// push, the classic-LRU shift after a hit, and the miss-fill shift.
func (a *agent) chain(m *blockMsg, now int64) {
	o := m.op
	lat := a.bk.Latency()
	fin := a.access(now, lat.TagRepl)

	if o.hitPos == a.pos {
		// The hit bank's hole terminates the chain.
		a.bk.Insert(o.set, m.blk)
		a.send(fin, flit.CompleteNotify, o.ctrl, flit.ToCore, o.req.Addr, o)
		return
	}
	if !a.full(o.set) {
		// A non-full bank absorbs the chain (cold sets only).
		a.bk.Insert(o.set, m.blk)
		a.send(fin, flit.CompleteNotify, o.ctrl, flit.ToCore, o.req.Addr, o)
		return
	}
	victim, _ := a.bk.EvictLRU(o.set)
	a.bk.Insert(o.set, m.blk)
	if a.pos == a.last {
		if victim.Dirty {
			a.send(fin, flit.WriteBack, a.sys.Topo.Mem, flit.ToMem, o.req.Addr, o)
		}
		a.send(fin, flit.CompleteNotify, o.ctrl, flit.ToCore, o.req.Addr, o)
		return
	}
	a.sendBank(fin, flit.ReplaceBlock, a.pos+1,
		o.req.Addr, &blockMsg{op: o, blk: victim, hasBlock: true})
}

// promoUp handles the Promotion hit block arriving one bank closer.
func (a *agent) promoUp(m *blockMsg, now int64) {
	o := m.op
	lat := a.bk.Latency()
	fin := a.access(now, lat.TagRepl)
	if !a.full(o.set) {
		a.bk.Insert(o.set, m.blk)
		a.send(fin, flit.CompleteNotify, o.ctrl, flit.ToCore, o.req.Addr, o)
		return
	}
	victim, _ := a.bk.EvictLRU(o.set)
	a.bk.Insert(o.set, m.blk)
	a.sendBank(fin, flit.ReplaceBlock, a.pos+1,
		o.req.Addr, &blockMsg{op: o, blk: victim, hasBlock: true, promoDown: true})
}

// promoDown stores the displaced block back into the hit bank's hole.
func (a *agent) promoDown(m *blockMsg, now int64) {
	o := m.op
	lat := a.bk.Latency()
	fin := a.access(now, lat.TagRepl)
	a.bk.Insert(o.set, m.blk)
	a.send(fin, flit.CompleteNotify, o.ctrl, flit.ToCore, o.req.Addr, o)
}

// storeMRU stores the hit block arriving at the MRU bank.
func (a *agent) storeMRU(m *blockMsg, now int64) {
	o := m.op
	lat := a.bk.Latency()
	fin := a.access(now, lat.TagRepl)
	switch a.sys.Policy {
	case FastLRU:
		// The frame was freed by the probe's eviction (or was free).
		a.bk.Insert(o.set, m.blk)
		a.send(fin, flit.CompleteNotify, o.ctrl, flit.ToCore, o.req.Addr, o)
	case LRU:
		if !a.full(o.set) {
			a.bk.Insert(o.set, m.blk)
			a.send(fin, flit.CompleteNotify, o.ctrl, flit.ToCore, o.req.Addr, o)
			return
		}
		victim, _ := a.bk.EvictLRU(o.set)
		a.bk.Insert(o.set, m.blk)
		if a.last == 0 {
			if victim.Dirty {
				a.send(fin, flit.WriteBack, a.sys.Topo.Mem, flit.ToMem, o.req.Addr, o)
			}
			a.send(fin, flit.CompleteNotify, o.ctrl, flit.ToCore, o.req.Addr, o)
			return
		}
		a.sendBank(fin, flit.ReplaceBlock, 1,
			o.req.Addr, &blockMsg{op: o, blk: victim, hasBlock: true})
	default:
		panic("cache: BlockToMRU under promotion")
	}
}

// fill stores the block returning from memory into the MRU bank and
// forwards the data to the core.
func (a *agent) fill(o *op, now int64) {
	lat := a.bk.Latency()
	fin := a.access(now, lat.TagRepl)
	o.bankCycles += int64(lat.TagRepl)
	blk := bank.Block{Tag: o.tag, Dirty: o.req.Write}
	switch a.sys.Policy {
	case FastLRU:
		// The probe's eviction chain already made room everywhere.
		a.bk.Insert(o.set, blk)
	case LRU, Promotion:
		if a.full(o.set) {
			victim, _ := a.bk.EvictLRU(o.set)
			a.bk.Insert(o.set, blk)
			if a.last == 0 {
				if victim.Dirty {
					a.send(fin, flit.WriteBack, a.sys.Topo.Mem, flit.ToMem, o.req.Addr, o)
				}
				a.send(fin, flit.CompleteNotify, o.ctrl, flit.ToCore, o.req.Addr, o)
			} else {
				a.sendBank(fin, flit.ReplaceBlock, 1,
					o.req.Addr, &blockMsg{op: o, blk: victim, hasBlock: true})
			}
		} else {
			a.bk.Insert(o.set, blk)
			a.send(fin, flit.CompleteNotify, o.ctrl, flit.ToCore, o.req.Addr, o)
		}
	}
	a.send(fin, dataKind(o, false), o.ctrl, flit.ToCore, o.req.Addr, o)
}

// requestMemory asks the off-chip memory for the block, directing the
// reply to the column's MRU bank.
func (a *agent) requestMemory(o *op, fin int64) {
	a.send(fin, flit.MemReadReq, a.sys.Topo.Mem, flit.ToMem, o.req.Addr, mem.ReadReq{
		ReplyTo:  a.sys.bankNode(o.col, 0),
		ReplyEp:  flit.ToBank,
		ReplyPos: 0,
		Cookie:   o,
	})
}

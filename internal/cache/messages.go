package cache

import (
	"nucanet/internal/bank"
	"nucanet/internal/flit"
)

// This file defines the closed catalogue of protocol messages the
// networked cache exchanges, replacing the former untyped payloads (the
// shared *op plus a *blockMsg with mode flags). Each message is its own
// type implementing flit.Payload, so every consumer dispatches with an
// exhaustive type switch and the compiler rejects a payload outside the
// catalogue.
//
// Message <-> packet-kind correspondence:
//
//	probeMsg    ReadReq / WriteData   tag-match request (1 or 5 flits)
//	chainMsg    ReplaceBlock          plain replacement-chain block
//	unitMsg     ReplaceBlock          unicast Fast-LRU request+block unit
//	promoteMsg  ReplaceBlock          Promotion hit block moving closer
//	demoteMsg   ReplaceBlock          Promotion displaced block moving back
//	storeMsg    BlockToMRU            hit block bound for the MRU bank
//	dataMsg     HitData / DataToCore / WriteDone   CPU-visible completion
//	missMsg     MissNotify            one bank's multicast miss report
//	doneMsg     CompleteNotify        one replacement chain drained
//	fillMsg     MemBlock              memory fill (also the mem cookie)
//
// Every message embeds a pointer to its operation's shared state. One
// instance of each message type lives inside the op itself (see op.go):
// a replacement chain is strictly sequential, so each hop mutates the
// block field of the instance it received and sends the same instance
// onward — the steady-state protocol allocates exactly one op per access
// and nothing per hop. Instances that can be in flight several times at
// once (missMsg from every probed bank, doneMsg from two concurrent
// chain drains under multicast Fast-LRU) are immutable after creation,
// so sharing is safe.

// probeMsg asks a bank (or, multicast, a column) to tag-match.
type probeMsg struct{ o *op }

// dataMsg carries the CPU-visible completion to the controller: block
// data for reads, the one-flit acknowledgment for writes.
type dataMsg struct{ o *op }

// missMsg reports one bank's multicast tag-match miss.
type missMsg struct{ o *op }

// doneMsg reports one replacement chain fully drained.
type doneMsg struct{ o *op }

// fillMsg is the MemBlock payload: it rides to memory as the ReadReq
// cookie and comes back as the fill delivered to the MRU bank.
type fillMsg struct{ o *op }

// chainMsg carries a replacement-chain block to the next-farther bank:
// the multicast Fast-LRU push, the classic-LRU shift after a hit, and
// the miss-fill shift.
type chainMsg struct {
	o   *op
	blk bank.Block
}

// unitMsg is the unicast Fast-LRU combined unit: the data request
// traveling glued to the evicted block. hasBlock is false when the
// sending bank was not full and had nothing to evict.
type unitMsg struct {
	o        *op
	blk      bank.Block
	hasBlock bool
}

// storeMsg carries the hit block from the hit bank to the MRU bank.
type storeMsg struct {
	o   *op
	blk bank.Block
}

// promoteMsg carries a Promotion hit block one bank closer.
type promoteMsg struct {
	o   *op
	blk bank.Block
}

// demoteMsg carries the block a promotion displaced back to the hit
// bank's hole.
type demoteMsg struct {
	o   *op
	blk bank.Block
}

func (*probeMsg) ProtocolMessage()   {}
func (*dataMsg) ProtocolMessage()    {}
func (*missMsg) ProtocolMessage()    {}
func (*doneMsg) ProtocolMessage()    {}
func (*fillMsg) ProtocolMessage()    {}
func (*chainMsg) ProtocolMessage()   {}
func (*unitMsg) ProtocolMessage()    {}
func (*storeMsg) ProtocolMessage()   {}
func (*promoteMsg) ProtocolMessage() {}
func (*demoteMsg) ProtocolMessage()  {}

// AddMemCycles lets the memory model attribute its service time (wire +
// access + port stalls) to the filling operation; package mem calls it
// through the read-request cookie.
func (m *fillMsg) AddMemCycles(n int64) { m.o.memCycles += n }

// stashableOp returns the operation of a bank-bound message that must
// wait for the bank's own tag-match probe under multicast (replacement,
// store, and fill traffic), or nil for everything else.
func stashableOp(p flit.Payload) *op {
	switch m := p.(type) {
	case *chainMsg:
		return m.o
	case *unitMsg:
		return m.o
	case *storeMsg:
		return m.o
	case *promoteMsg:
		return m.o
	case *demoteMsg:
		return m.o
	case *fillMsg:
		return m.o
	}
	return nil
}

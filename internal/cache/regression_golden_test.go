// Golden regression proof for the protocol-engine refactor: every
// catalogue design (Table 3's A-F plus the extra registered families R,
// G, and H2) under every (policy, mode) scheme must produce byte-identical
// IPC, cycle counts, and latency statistics across refactors of the
// protocol layer. The goldens in testdata/regression_goldens.json were
// captured from the pre-engine (hard-coded switch) protocol code;
// regenerate deliberately with
//
//	go test ./internal/cache/ -run TestCatalogueGoldens -update-goldens
//
// only when a change is *intended* to alter timing or placement.
//
// The file lives in package cache_test (not cache) so it can drive the
// full core.Run pipeline — CPU model, network, memory — whose IPC and
// cycle outputs are the numbers the paper's figures are built from.
package cache_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"testing"

	"nucanet/internal/cache"
	"nucanet/internal/config"
	"nucanet/internal/core"
)

var updateGoldens = flag.Bool("update-goldens", false,
	"rewrite testdata/regression_goldens.json from the current simulator")

// goldenAccesses keeps the 54-run sweep quick while still exercising
// warm-up, replacement chains, misses, and writebacks on every design.
const goldenAccesses = 1200

// goldenRow is one (design, policy, mode) measurement. Floating-point
// fields are serialized with strconv.FormatFloat(v, 'g', -1, 64), which
// round-trips exactly, so equality below is bit-equality.
type goldenRow struct {
	Design string `json:"design"`
	Policy string `json:"policy"`
	Mode   string `json:"mode"`

	IPC        string `json:"ipc"`
	Cycles     int64  `json:"cycles"`
	AvgLatency string `json:"avg_latency"`
	AvgHit     string `json:"avg_hit"`
	AvgMiss    string `json:"avg_miss"`
	AvgOcc     string `json:"avg_occupancy"`
	HitRate    string `json:"hit_rate"`
	P50        int64  `json:"p50"`
	P99        int64  `json:"p99"`
	MaxLat     int64  `json:"max_latency"`

	BankAccesses uint64 `json:"bank_accesses"`
	Flits        uint64 `json:"flits_injected"`
	Packets      uint64 `json:"packets_injected"`
	MemReads     uint64 `json:"mem_reads"`
	MemWB        uint64 `json:"mem_writebacks"`
}

func ff(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func goldenKey(design string, p cache.Policy, m cache.Mode) string {
	return fmt.Sprintf("%s/%v/%v", design, p, m)
}

func rowOf(design string, p cache.Policy, m cache.Mode, r core.Result) goldenRow {
	return goldenRow{
		Design: design, Policy: p.String(), Mode: m.String(),
		IPC:        ff(r.IPC),
		Cycles:     r.Cycles,
		AvgLatency: ff(r.AvgLatency), AvgHit: ff(r.AvgHit), AvgMiss: ff(r.AvgMiss),
		AvgOcc: ff(r.AvgOccupancy), HitRate: ff(r.HitRate),
		P50: r.Latency.Percentile(0.50), P99: r.Latency.Percentile(0.99),
		MaxLat:       r.Latency.MaxLat,
		BankAccesses: r.BankAccesses,
		Flits:        r.Network.FlitsInjected,
		Packets:      r.Network.PacketsInjected,
		MemReads:     r.Memory.Reads,
		MemWB:        r.Memory.WriteBacks,
	}
}

// catalogueOpts enumerates the full regression matrix: 9 designs x
// {Promotion, LRU, FastLRU} x {Unicast, Multicast} = 54 runs.
func catalogueOpts() []core.Options {
	var opts []core.Options
	for _, d := range append(config.Designs(), config.ExtraDesigns()...) {
		for _, p := range []cache.Policy{cache.Promotion, cache.LRU, cache.FastLRU} {
			for _, m := range []cache.Mode{cache.Unicast, cache.Multicast} {
				opts = append(opts, core.Options{
					DesignID: d.ID, Policy: p, Mode: m,
					Benchmark: "gcc", Accesses: goldenAccesses, Seed: 42,
				})
			}
		}
	}
	return opts
}

func TestCatalogueGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("54-run catalogue sweep; skipped in -short mode")
	}
	opts := catalogueOpts()
	results, _, err := core.NewEngine(runtime.NumCPU()).RunAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]goldenRow, len(results))
	for i, r := range results {
		o := opts[i]
		got[goldenKey(o.DesignID, o.Policy, o.Mode)] = rowOf(o.DesignID, o.Policy, o.Mode, r)
	}

	path := filepath.Join("testdata", "regression_goldens.json")
	if *updateGoldens {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden rows to %s", len(got), path)
		return
	}

	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read goldens (regenerate with -update-goldens): %v", err)
	}
	var want map[string]goldenRow
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden file has %d rows, sweep produced %d", len(want), len(got))
	}
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Errorf("%s: missing from sweep", key)
			continue
		}
		if g != w {
			t.Errorf("%s: stats drifted from golden\n got %+v\nwant %+v", key, g, w)
		}
	}
}

// TestCatalogueGoldensSharded reruns the full 54-row catalogue sweep at
// 2 and 4 kernel shards against the same pre-refactor golden file: the
// sharded execution path must leave every golden byte unmoved. Designs
// the partitioner cannot split further (small fabrics clamp to fewer
// effective shards) still run through the shard plumbing, which is the
// point — Shards is an execution knob the goldens must not see.
func TestCatalogueGoldensSharded(t *testing.T) {
	if testing.Short() {
		t.Skip("108-run catalogue sweep; skipped in -short mode")
	}
	path := filepath.Join("testdata", "regression_goldens.json")
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read goldens (regenerate with -update-goldens): %v", err)
	}
	var want map[string]goldenRow
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 4} {
		opts := catalogueOpts()
		for i := range opts {
			opts[i].Shards = shards
		}
		results, _, err := core.NewEngine(runtime.NumCPU()).RunAll(opts)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		for i, r := range results {
			o := opts[i]
			key := goldenKey(o.DesignID, o.Policy, o.Mode)
			w, ok := want[key]
			if !ok {
				t.Fatalf("shards=%d: %s missing from golden file", shards, key)
			}
			if g := rowOf(o.DesignID, o.Policy, o.Mode, r); g != w {
				t.Errorf("shards=%d: %s drifted from golden\n got %+v\nwant %+v", shards, key, g, w)
			}
		}
	}
}

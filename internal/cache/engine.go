package cache

import (
	"fmt"
	"strings"
)

// PolicyEngine is one replacement policy's protocol behavior. The agent
// and controller shells own everything policy-independent — column
// serialization, bank access booking, the multicast probe stash,
// critical-path accounting, completion tracking — and call into the
// engine at each protocol message. Engines are stateless singletons
// (every per-operation datum lives in the op), so one instance serves
// every System concurrently, including parallel sweeps.
//
// New policies register through RegisterPolicy and need no changes to
// the shells; see DESIGN.md ("Protocol engines as a registry") and the
// staticEngine for a worked example.
type PolicyEngine interface {
	// Probe handles a tag-match request at a bank: the unicast first
	// hop or a multicast delivery. The shell marks the bank probed
	// (replaying stashed traffic) after Probe returns.
	Probe(a *agent, o *op, now int64)
	// Fill stores the block returning from memory into the MRU bank and
	// forwards the data to the core.
	Fill(a *agent, o *op, now int64)
	// Chain handles a plain replacement-chain block arriving from the
	// next-closer bank.
	Chain(a *agent, m *chainMsg, now int64)
	// Unit handles the unicast Fast-LRU combined request+block unit at
	// banks beyond the MRU bank.
	Unit(a *agent, m *unitMsg, now int64)
	// Store handles the hit block arriving at the MRU bank.
	Store(a *agent, m *storeMsg, now int64)
	// Promote handles a Promotion hit block arriving one bank closer.
	Promote(a *agent, m *promoteMsg, now int64)
	// Demote stores a displaced block back into the hit bank's hole.
	Demote(a *agent, m *demoteMsg, now int64)

	// GoldenAccess applies one access to the functional reference model
	// (no timing, no network): st is the per-bank tag state of the
	// accessed set, MRU first within each bank; (hb, hw) locate the tag
	// (hb == -1 on miss). It must agree exactly with the engine's
	// timing-side protocol on the hit decision, the hit bank, and the
	// final contents — the conformance harness enforces this.
	GoldenAccess(g *Golden, st [][]uint64, hb, hw int, tag uint64) (hit bool, bankPos int, evicted uint64, evictedOK bool)
}

// baseEngine supplies panicking handlers for the messages a policy never
// produces; embedding it keeps every engine exhaustive over the message
// catalogue while documenting which messages its protocol actually uses
// (an unexpected one fails loudly instead of being silently dropped).
type baseEngine struct{}

func (baseEngine) Chain(a *agent, m *chainMsg, now int64) {
	panic(fmt.Sprintf("cache: %v sent no ReplaceBlock chain, bank %d/%d got one", a.sys.Policy, a.col, a.pos))
}

func (baseEngine) Unit(a *agent, m *unitMsg, now int64) {
	panic(fmt.Sprintf("cache: %v sent no Fast-LRU unit, bank %d/%d got one", a.sys.Policy, a.col, a.pos))
}

func (baseEngine) Store(a *agent, m *storeMsg, now int64) {
	panic(fmt.Sprintf("cache: %v sent no BlockToMRU, bank %d/%d got one", a.sys.Policy, a.col, a.pos))
}

func (baseEngine) Promote(a *agent, m *promoteMsg, now int64) {
	panic(fmt.Sprintf("cache: %v sent no promotion, bank %d/%d got one", a.sys.Policy, a.col, a.pos))
}

func (baseEngine) Demote(a *agent, m *demoteMsg, now int64) {
	panic(fmt.Sprintf("cache: %v sent no demotion, bank %d/%d got one", a.sys.Policy, a.col, a.pos))
}

// policyInfo is one registry entry; the slice index is the Policy id.
type policyInfo struct {
	name string
	eng  PolicyEngine
}

var policyReg []policyInfo

// normalizePolicyName folds case and dashes so "fastLRU", "fastlru", and
// "fast-lru" name the same policy.
func normalizePolicyName(s string) string {
	return strings.ReplaceAll(strings.ToLower(s), "-", "")
}

// RegisterPolicy adds a replacement policy under a display name and
// returns its Policy id. Ids are assigned in registration order; the
// built-in policies register first so their ids match the package
// constants. Call from an init path; the registry is read-only once
// simulation starts. It panics on a duplicate (normalized) name.
func RegisterPolicy(name string, eng PolicyEngine) Policy {
	if eng == nil {
		panic("cache: RegisterPolicy with nil engine")
	}
	key := normalizePolicyName(name)
	if key == "" {
		panic("cache: RegisterPolicy with empty name")
	}
	for _, p := range policyReg {
		if normalizePolicyName(p.name) == key {
			panic(fmt.Sprintf("cache: policy %q already registered", name))
		}
	}
	policyReg = append(policyReg, policyInfo{name: name, eng: eng})
	return Policy(len(policyReg) - 1)
}

// PolicyByName resolves a registered policy name (case- and
// dash-insensitive: "fastLRU" == "fast-lru" == "fastlru").
func PolicyByName(s string) (Policy, error) {
	key := normalizePolicyName(s)
	for i, p := range policyReg {
		if normalizePolicyName(p.name) == key {
			return Policy(i), nil
		}
	}
	return 0, fmt.Errorf("cache: unknown policy %q (registered: %s)", s, strings.Join(PolicyNames(), ", "))
}

// PolicyNames lists the registered policy display names in registration
// order (the built-ins first).
func PolicyNames() []string {
	out := make([]string, len(policyReg))
	for i, p := range policyReg {
		out[i] = p.name
	}
	return out
}

// engine returns the policy's registered engine; it panics on an
// unregistered id (New validates ids before any packet flows).
func (p Policy) engine() PolicyEngine {
	if int(p) < len(policyReg) {
		return policyReg[p].eng
	}
	panic(fmt.Sprintf("cache: unknown policy %v", p))
}

// builtinsDone orders registration: variables initialized from it (the
// extra policies, e.g. Static) are guaranteed to register after the
// built-ins, keeping the built-in ids equal to the package constants
// regardless of file names.
type builtinsDone struct{}

var builtinPolicies = registerBuiltins()

func registerBuiltins() builtinsDone {
	for _, r := range []struct {
		name string
		want Policy
		eng  PolicyEngine
	}{
		{"promotion", Promotion, &promotionEngine{}},
		{"LRU", LRU, &lruEngine{}},
		{"fastLRU", FastLRU, &lruEngine{fast: true}},
	} {
		if got := RegisterPolicy(r.name, r.eng); got != r.want {
			panic(fmt.Sprintf("cache: built-in policy %s registered as id %d, want %d", r.name, got, r.want))
		}
	}
	return builtinsDone{}
}

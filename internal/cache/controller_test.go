package cache

import (
	"testing"

	"nucanet/internal/flit"
	"nucanet/internal/sim"
	"nucanet/internal/trace"
)

func TestQueueWaitAccumulatesUnderSetContention(t *testing.T) {
	d := testDesign(4, 4)
	k := sim.NewKernel()
	s := MustNew(k, d, FastLRU, Multicast)
	gen := trace.NewSynthetic(mustProfile(t, "gcc"), s.AM, 1)
	s.Warm(gen.WarmBlocks(s.Design.Ways()))
	warm := gen.WarmBlocks(4)
	// Four same-set requests serialize; the later ones must accumulate
	// queue wait.
	tags := warm[5*s.AM.Columns+2]
	for i := 0; i < 4; i++ {
		s.Issue(s.AM.Compose(tags[i], 5, 2), false, nil)
	}
	if err := s.Drain(1000000); err != nil {
		t.Fatal(err)
	}
	if s.Ctrl.QueueWait <= 0 {
		t.Fatalf("queue wait = %d, want > 0", s.Ctrl.QueueWait)
	}
	if s.Ctrl.Issued != 4 {
		t.Fatalf("issued = %d", s.Ctrl.Issued)
	}
}

func TestPendingDrainsToZero(t *testing.T) {
	d := testDesign(4, 4)
	k := sim.NewKernel()
	s := MustNew(k, d, LRU, Unicast)
	gen := trace.NewSynthetic(mustProfile(t, "vpr"), s.AM, 2)
	s.Warm(gen.WarmBlocks(s.Design.Ways()))
	for _, a := range trace.Take(gen, 50) {
		s.Issue(a.Addr, a.Write, nil)
	}
	if s.Ctrl.Pending() == 0 {
		t.Fatal("requests should be pending before the kernel runs")
	}
	if err := s.Drain(10_000_000); err != nil {
		t.Fatal(err)
	}
	if got := s.Ctrl.Pending(); got != 0 {
		t.Fatalf("pending after drain = %d", got)
	}
}

func TestControllerAtCustomNode(t *testing.T) {
	// The CMP building block: a second controller at another router
	// owns its own column state and receives its own notifications.
	d := testDesign(4, 4)
	k := sim.NewKernel()
	s := MustNew(k, d, FastLRU, Multicast)
	gen := trace.NewSynthetic(mustProfile(t, "gcc"), s.AM, 3)
	s.Warm(gen.WarmBlocks(s.Design.Ways()))

	other := NewControllerAt(s, s.Topo.NodeAt(0, 0))
	s.Net.Attach(s.Topo.NodeAt(0, 0), flit.ToCore, other)
	warm := gen.WarmBlocks(1)
	r := &Request{Addr: s.AM.Compose(warm[3*s.AM.Columns+1][0], 3, 1)}
	other.Issue(r, 0)
	if err := s.Drain(1000000); err != nil {
		t.Fatal(err)
	}
	if !r.Hit || r.DataAt == 0 {
		t.Fatalf("request via custom controller failed: %+v", r)
	}
	if other.Issued != 1 {
		t.Fatal("custom controller must own the request")
	}
}

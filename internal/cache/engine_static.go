package cache

import "nucanet/internal/bank"

// staticEngine is the no-migration baseline (S-NUCA-style placement with
// bank-local LRU): a hit promotes the block within its own bank only —
// no inter-bank movement, no replacement chain — while a miss fills the
// MRU bank and pushes down like classic LRU. It exists both as the
// paper's natural "is migration worth its traffic?" control and as the
// registry's proof of extensibility: the engine registers itself through
// RegisterPolicy and touches neither the agent nor the controller shell.
type staticEngine struct {
	baseEngine
}

// Static is the registered id of the no-migration baseline policy. Its
// initializer's dependency on builtinPolicies orders registration after
// the built-ins, so their ids keep matching the package constants.
var Static = registerStatic(builtinPolicies)

func registerStatic(builtinsDone) Policy {
	return RegisterPolicy("static", &staticEngine{})
}

func (e *staticEngine) Probe(a *agent, o *op, now int64) {
	lat := a.bk.Latency()
	way, hit := a.bk.Lookup(o.set, o.tag)
	if hit {
		// Promote within the bank; no blocks cross the network.
		fin := a.bookHit(o, now, lat.TagRepl)
		a.touchInPlace(o, way, fin)
		return
	}
	if a.sys.Mode == Multicast {
		a.missNotify(o, now, lat)
		return
	}
	a.missForward(o, now, lat)
}

// Chain handles the miss-fill shift; hits never chain under static
// placement.
func (e *staticEngine) Chain(a *agent, m *chainMsg, now int64) {
	chainStep(a, m, now)
}

// Fill stores the block returning from memory into the MRU bank.
func (e *staticEngine) Fill(a *agent, o *op, now int64) {
	lat := a.bk.Latency()
	fin := a.access(now, lat.TagRepl)
	o.bankCycles += int64(lat.TagRepl)
	fillEvictChain(a, o, bank.Block{Tag: o.tag, Dirty: o.req.Write}, fin)
	a.sendData(o, fin, false)
}

func (e *staticEngine) GoldenAccess(g *Golden, st [][]uint64, hb, hw int, tag uint64) (bool, int, uint64, bool) {
	if hb >= 0 {
		g.touch(st, hb, hw)
		return true, hb, 0, false
	}
	evicted, ok := goldenMissFill(g, st, tag)
	return false, -1, evicted, ok
}

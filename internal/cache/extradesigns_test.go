package cache

import (
	"fmt"
	"testing"

	"nucanet/internal/config"
	"nucanet/internal/sim"
	"nucanet/internal/trace"
)

// TestGoldenEquivalenceExtraDesigns runs the full replacement protocols
// over the registered non-paper topologies — the bidirectional ring (R)
// and the concentrated mesh (G) — and checks every access outcome
// against the golden functional model. G is the key multi-bank-per-router
// exercise: its bankMux demultiplexes column positions sharing a router,
// and multicast probes fan out to all four banks of each node.
func TestGoldenEquivalenceExtraDesigns(t *testing.T) {
	for _, id := range []string{"R", "G"} {
		d, err := config.DesignByID(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		for _, policy := range []Policy{Promotion, LRU, FastLRU} {
			for _, mode := range []Mode{Unicast, Multicast} {
				if id == "R" && policy != FastLRU {
					continue // single-way columns: policies coincide; keep the run short
				}
				d, policy, mode := d, policy, mode
				t.Run(fmt.Sprintf("%s-%v-%v", id, policy, mode), func(t *testing.T) {
					k := sim.NewKernel()
					s, err := New(k, d, policy, mode)
					if err != nil {
						t.Fatal(err)
					}
					gen := trace.NewSynthetic(mustProfile(t, "gcc"), s.AM, 13)
					warm := gen.WarmBlocks(s.Design.Ways())
					s.Warm(warm)
					g := s.NewGoldenFor()
					for set := 0; set < s.AM.Sets; set++ {
						for c := 0; c < s.AM.Columns; c++ {
							g.Warm(c, set, warm[set*s.AM.Columns+c])
						}
					}
					accs := trace.Take(gen, 900)
					var reqs []*Request
					var want []outcome
					for _, a := range accs {
						col, set, tag := s.AM.ColumnOf(a.Addr), s.AM.SetOf(a.Addr), s.AM.TagOf(a.Addr)
						hit, pos, _, _ := g.Access(col, set, tag)
						want = append(want, outcome{hit, pos})
						reqs = append(reqs, s.Issue(a.Addr, a.Write, nil))
					}
					if err := s.Drain(50_000_000); err != nil {
						t.Fatal(err)
					}
					for i, r := range reqs {
						if r.Hit != want[i].hit || (r.Hit && r.HitBank != want[i].bank) {
							t.Fatalf("access %d (%#x): sim (%v,%d) vs golden (%v,%d)",
								i, accs[i].Addr, r.Hit, r.HitBank, want[i].hit, want[i].bank)
						}
					}
				})
			}
		}
	}
}

// TestExtraDesignsDeterministic pins run-to-run determinism on the new
// topologies: two identical runs must produce byte-identical outcome
// streams (the bankMux fan-out order is part of the contract).
func TestExtraDesignsDeterministic(t *testing.T) {
	for _, id := range []string{"R", "G"} {
		d, err := config.DesignByID(id)
		if err != nil {
			t.Fatal(err)
		}
		run := func() []int64 {
			k := sim.NewKernel()
			s, err := New(k, d, FastLRU, Multicast)
			if err != nil {
				t.Fatal(err)
			}
			gen := trace.NewSynthetic(mustProfile(t, "twolf"), s.AM, 7)
			s.Warm(gen.WarmBlocks(s.Design.Ways()))
			var reqs []*Request
			for _, a := range trace.Take(gen, 600) {
				reqs = append(reqs, s.Issue(a.Addr, a.Write, nil))
			}
			if err := s.Drain(50_000_000); err != nil {
				t.Fatal(err)
			}
			out := make([]int64, len(reqs))
			for i, r := range reqs {
				out[i] = r.DataAt
			}
			return out
		}
		a, b := run(), run()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("design %s: completion time diverges at access %d: %d vs %d", id, i, a[i], b[i])
			}
		}
	}
}

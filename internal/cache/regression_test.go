package cache

import (
	"testing"

	"nucanet/internal/sim"
	"nucanet/internal/trace"
)

// TestMulticastReplicaReordering is a regression test for a protocol race:
// the probe replica at the MRU bank (which shares its router with the
// congested core ejection interface) can be overtaken by the returning
// hit-block store. Agents must stash replacement traffic until their probe
// has run. A long hot-set run on a small mesh reproduces the reordering.
func TestMulticastReplicaReordering(t *testing.T) {
	d := testDesign(4, 4)
	for _, policy := range []Policy{FastLRU, LRU, Promotion} {
		k := sim.NewKernel()
		s := MustNew(k, d, policy, Multicast)
		p, _ := trace.ProfileByName("gcc")
		gen := trace.NewSynthetic(p, s.AM, 1)
		warm := gen.WarmBlocks(s.Design.Ways())
		s.Warm(warm)
		g := s.NewGoldenFor()
		for set := 0; set < s.AM.Sets; set++ {
			for c := 0; c < s.AM.Columns; c++ {
				g.Warm(c, set, warm[set*s.AM.Columns+c])
			}
		}
		var reqs []*Request
		var want []outcome
		for _, a := range trace.Take(gen, 4000) {
			col, set, tag := s.AM.ColumnOf(a.Addr), s.AM.SetOf(a.Addr), s.AM.TagOf(a.Addr)
			hit, pos, _, _ := g.Access(col, set, tag)
			want = append(want, outcome{hit, pos})
			reqs = append(reqs, s.Issue(a.Addr, a.Write, nil))
		}
		if err := s.Drain(500_000_000); err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		for i, r := range reqs {
			if r.Hit != want[i].hit || (r.Hit && r.HitBank != want[i].bank) {
				t.Fatalf("%v access %d: sim (%v,%d) vs golden (%v,%d)",
					policy, i, r.Hit, r.HitBank, want[i].hit, want[i].bank)
			}
		}
	}
}

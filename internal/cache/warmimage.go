package cache

import (
	"nucanet/internal/bank"
	"nucanet/internal/config"
)

// WarmImage is the precomputed post-warm-up bank state of one design
// geometry: template banks warmed from a WarmBlocks table exactly as
// System.Warm would warm them. Batch evaluation (internal/fleet) builds
// the image once per (bank stack, warm table) and clones it into every
// lane's banks, replacing the per-block insert replay — the dominant
// per-lane construction cost for short screening runs — with one slab
// copy per bank. The image is immutable after construction and safe to
// share read-only across goroutines.
type WarmImage struct {
	banks [][]*bank.Bank // [column][position], never mutated after build
}

// BuildWarmImage warms template banks for the design from a warm-state
// table as produced by (*trace.Synthetic).WarmBlocks. It replays the
// exact insertion loop of System.Warm, so WarmClone of the result is
// bit-identical to Warm of the table.
func BuildWarmImage(d config.Design, warm [][]uint64) *WarmImage {
	am := d.AddrMap()
	img := &WarmImage{banks: make([][]*bank.Bank, am.Columns)}
	for c := range img.banks {
		col := make([]*bank.Bank, len(d.Banks))
		for p, spec := range d.Banks {
			col[p] = bank.New(spec)
		}
		img.banks[c] = col
	}
	for set := 0; set < am.Sets; set++ {
		for c := 0; c < am.Columns; c++ {
			tags := warm[set*am.Columns+c]
			i := 0
			for p, bk := range img.banks[c] {
				ways := d.Banks[p].Ways
				for w := 0; w < ways && i < len(tags); w++ {
					bk.InsertLRU(set, bank.Block{Tag: tags[i]})
					i++
				}
			}
		}
	}
	return img
}

// WarmClone preloads every bank by cloning the image's template banks —
// equivalent to Warm on the table the image was built from, at memcpy
// cost. The image's geometry must match the system's.
func (s *System) WarmClone(img *WarmImage) {
	for c, col := range s.agents {
		for p, a := range col {
			a.bk.CloneState(img.banks[c][p])
		}
	}
	if s.Dir != nil {
		s.Dir.seed(s)
	}
}

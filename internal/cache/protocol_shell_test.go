package cache

import (
	"testing"

	"nucanet/internal/bank"
	"nucanet/internal/flit"
	"nucanet/internal/sim"
	"nucanet/internal/trace"
)

// TestStashHoldsReplacementUntilProbe drives the agent shell directly:
// under multicast, a replacement message arriving before the bank's own
// tag-match probe must be stashed untouched, and replayed the moment the
// probe marks the bank — and only messages of the probed operation may
// replay; traffic stashed for other operations stays put.
func TestStashHoldsReplacementUntilProbe(t *testing.T) {
	d := testDesign(2, 2)
	k := sim.NewKernel()
	s := MustNew(k, d, FastLRU, Multicast)
	a := s.agents[0][1]

	mkOp := func(tag uint64) *op {
		o := newOp()
		o.req = &Request{Addr: s.AM.Compose(tag, 0, 0)}
		o.col, o.set, o.tag = 0, 0, tag
		o.ctrl = s.Topo.Core
		o.hitPos = -1
		o.chainNeeded = 1
		o.probed = make([]bool, s.lastPos()+1)
		return o
	}
	o1 := mkOp(7)
	o1.chain.blk = bank.Block{Tag: 42}
	o2 := mkOp(8)
	o2.chain.blk = bank.Block{Tag: 43}

	chainPkt := func(o *op) *flit.Packet {
		return &flit.Packet{
			Kind: flit.ReplaceBlock, Src: a.node, Dst: a.node, DstEp: flit.ToBank,
			DstPos: int16(a.pos), Addr: o.req.Addr, Payload: &o.chain,
		}
	}
	a.Deliver(chainPkt(o1), 0)
	a.Deliver(chainPkt(o2), 0)
	if len(a.stash) != 2 {
		t.Fatalf("pre-probe replacement not stashed: stash has %d packets, want 2", len(a.stash))
	}
	if got := a.bk.Occupancy(0); got != 0 {
		t.Fatalf("stashed replacement mutated the bank: occupancy %d, want 0", got)
	}

	// o1's probe arrives: its chain replays (the set has room, so the
	// block is absorbed), o2's chain keeps waiting for o2's probe.
	a.Deliver(&flit.Packet{
		Kind: flit.ReadReq, Src: s.Topo.Core, Dst: a.node, DstEp: flit.ToBank,
		DstPos: int16(a.pos), Addr: o1.req.Addr, Payload: &o1.probe,
	}, 0)
	if !o1.probed[a.pos] {
		t.Fatal("probe did not mark the bank probed")
	}
	if len(a.stash) != 1 || stashableOp(a.stash[0].Payload) != o2 {
		t.Fatalf("stash after o1's probe should hold exactly o2's packet, has %d", len(a.stash))
	}
	blocks := a.bk.Blocks(0)
	if len(blocks) != 1 || blocks[0].Tag != 42 {
		t.Fatalf("o1's replacement chain did not replay into the bank: %v", blocks)
	}
}

// TestColumnWindowCapsInFlightOps pins the controller's issue window: at
// most ColumnWindow operations of one column run concurrently; the rest
// queue FIFO, accrue queue wait, and dispatch as slots free up.
func TestColumnWindowCapsInFlightOps(t *testing.T) {
	d := testDesign(4, 4)
	k := sim.NewKernel()
	s := MustNew(k, d, FastLRU, Multicast)
	gen := trace.NewSynthetic(mustProfile(t, "gcc"), s.AM, 1)
	s.Warm(gen.WarmBlocks(s.Design.Ways()))
	warm := gen.WarmBlocks(1)

	const col = 2
	var reqs []*Request
	for _, set := range []int{1, 2, 3} {
		addr := s.AM.Compose(warm[set*s.AM.Columns+col][0], set, col)
		reqs = append(reqs, s.Issue(addr, false, nil))
	}
	cs := &s.Ctrl.cols[col]
	if len(cs.active) != ColumnWindow {
		t.Fatalf("column has %d in-flight ops, want window of %d", len(cs.active), ColumnWindow)
	}
	if len(cs.q) != 1 {
		t.Fatalf("third request should queue behind the window, queue has %d", len(cs.q))
	}
	if err := s.Drain(1_000_000); err != nil {
		t.Fatal(err)
	}
	// All three are warm MRU hits with identical service latency, so the
	// queued request — dispatched only when a slot freed — finishes last.
	if reqs[2].DataAt <= reqs[0].DataAt || reqs[2].DataAt <= reqs[1].DataAt {
		t.Fatalf("queued request did not wait for the window: data at %d, %d, %d",
			reqs[0].DataAt, reqs[1].DataAt, reqs[2].DataAt)
	}
	if s.Ctrl.QueueWait == 0 {
		t.Fatal("queued request accrued no QueueWait")
	}
}

package cache

import (
	"nucanet/internal/bank"
	"nucanet/internal/flit"
)

// lruEngine implements exact hierarchical LRU ordering in its two
// protocol forms: the classic scheme (fast == false; the hit block moves
// to the MRU bank and every closer block shifts one bank farther after
// the search) and the paper's Fast-LRU (fast == true; each bank evicts
// during its tag-match access, overlapping replacement with the search).
// Both maintain identical ordering — only the message flow and timing
// differ — so they share one engine and one golden-model semantics.
type lruEngine struct {
	baseEngine
	fast bool
}

func (e *lruEngine) Probe(a *agent, o *op, now int64) {
	lat := a.bk.Latency()
	way, hit := a.bk.Lookup(o.set, o.tag)
	if hit {
		fin := a.bookHit(o, now, lat.TagRepl)
		if a.pos == 0 {
			a.touchInPlace(o, way, fin)
			return
		}
		blk := a.removeWay(o.set, way)
		if o.req.Write {
			blk.Dirty = true
		}
		a.sendData(o, fin, true)
		if e.fast && a.sys.Mode == Multicast {
			// Two chain drains must complete: the hit block landing
			// at the MRU bank, and the push chain terminating here.
			o.chainNeeded = 2
		}
		o.store.blk = blk
		a.sendBank(fin, flit.BlockToMRU, 0, o.req.Addr, &o.store)
		return
	}

	// Miss at this bank.
	if a.sys.Mode == Multicast {
		fin := a.missNotify(o, now, lat)
		if e.fast && a.pos == 0 {
			e.startFastChain(a, o, fin)
		}
		return
	}
	if e.fast {
		// Only the MRU bank sees a bare request under unicast Fast-LRU;
		// the combined request+block unit travels on from here.
		fin := a.access(now, lat.TagRepl)
		o.bankCycles += int64(lat.TagRepl)
		e.forwardUnit(a, o, fin)
		return
	}
	a.missForward(o, now, lat)
}

// startFastChain initiates the Fast-LRU replacement chain at the MRU bank
// after a multicast miss there.
func (e *lruEngine) startFastChain(a *agent, o *op, fin int64) {
	if !a.full(o.set) {
		// Nothing to push; the chain is trivially complete and the
		// frame for the eventual fill already exists.
		a.sendDone(o, fin)
		return
	}
	blk := a.evictLRU(o.set)
	if a.last == 0 {
		// Single-bank column: the victim leaves the cache.
		a.dropVictim(o, blk)
		if blk.Dirty {
			a.writeBack(o, fin)
		}
		a.sendDone(o, fin)
		return
	}
	o.chain.blk = blk
	a.sendBank(fin, flit.ReplaceBlock, 1, o.req.Addr, &o.chain)
}

// forwardUnit evicts (if full) and forwards the unicast Fast-LRU
// request+block unit, or terminates at the LRU bank with a memory access.
func (e *lruEngine) forwardUnit(a *agent, o *op, fin int64) {
	m := &o.unit
	m.hasBlock = false
	if a.full(o.set) {
		m.blk = a.evictLRU(o.set)
		m.hasBlock = true
	}
	if a.pos < a.last {
		a.sendBank(fin, flit.ReplaceBlock, a.pos+1, o.req.Addr, m)
		return
	}
	// LRU bank: replacement is complete; the victim leaves the cache.
	if m.hasBlock {
		a.dropVictim(o, m.blk)
		if m.blk.Dirty {
			a.writeBack(o, fin)
		}
	}
	a.sendDone(o, fin)
	a.requestMemory(o, fin)
}

// Unit handles the unicast Fast-LRU request+block unit at banks > 0:
// one access tag-matches, stores the incoming block, and evicts onward.
func (e *lruEngine) Unit(a *agent, m *unitMsg, now int64) {
	o := m.o
	lat := a.bk.Latency()
	fin := a.access(now, lat.TagRepl)
	o.bankCycles += int64(lat.TagRepl)

	incoming, hasIncoming := m.blk, m.hasBlock
	way, hit := a.bk.Lookup(o.set, o.tag)
	if hit {
		a.sys.tel.BankHit(a.col, a.pos)
		blk := a.removeWay(o.set, way)
		if o.req.Write {
			blk.Dirty = true
		}
		if hasIncoming {
			a.insert(o.set, incoming)
		}
		o.hitPos = a.pos
		o.req.Hit = true
		o.req.HitBank = a.pos
		a.sendData(o, fin, true)
		o.store.blk = blk
		a.sendBank(fin, flit.BlockToMRU, 0, o.req.Addr, &o.store)
		return
	}
	// Evict first, then absorb the incoming block, then travel on: the
	// unit message is reused in place for the next hop.
	m.hasBlock = false
	if a.full(o.set) {
		m.blk = a.evictLRU(o.set)
		m.hasBlock = true
	}
	if hasIncoming {
		a.insert(o.set, incoming)
	}
	if a.pos < a.last {
		a.sendBank(fin, flit.ReplaceBlock, a.pos+1, o.req.Addr, m)
		return
	}
	if m.hasBlock {
		a.dropVictim(o, m.blk)
		if m.blk.Dirty {
			a.writeBack(o, fin)
		}
	}
	a.sendDone(o, fin)
	a.requestMemory(o, fin)
}

// Chain handles a plain replacement-chain block: the multicast Fast-LRU
// push and the classic-LRU shift after a hit or a miss fill.
func (e *lruEngine) Chain(a *agent, m *chainMsg, now int64) {
	chainStep(a, m, now)
}

// Store handles the hit block arriving at the MRU bank.
func (e *lruEngine) Store(a *agent, m *storeMsg, now int64) {
	o := m.o
	lat := a.bk.Latency()
	fin := a.access(now, lat.TagRepl)
	if e.fast {
		// The frame was freed by the probe's eviction (or was free).
		a.insert(o.set, m.blk)
		a.sendDone(o, fin)
		return
	}
	if !a.full(o.set) {
		a.insert(o.set, m.blk)
		a.sendDone(o, fin)
		return
	}
	victim := a.evictLRU(o.set)
	a.insert(o.set, m.blk)
	if a.last == 0 {
		a.dropVictim(o, victim)
		if victim.Dirty {
			a.writeBack(o, fin)
		}
		a.sendDone(o, fin)
		return
	}
	o.chain.blk = victim
	a.sendBank(fin, flit.ReplaceBlock, 1, o.req.Addr, &o.chain)
}

// Fill stores the block returning from memory into the MRU bank.
func (e *lruEngine) Fill(a *agent, o *op, now int64) {
	lat := a.bk.Latency()
	fin := a.access(now, lat.TagRepl)
	o.bankCycles += int64(lat.TagRepl)
	blk := bank.Block{Tag: o.tag, Dirty: o.req.Write}
	if e.fast {
		// The probe's eviction chain already made room everywhere.
		a.insert(o.set, blk)
	} else {
		fillEvictChain(a, o, blk, fin)
	}
	a.sendData(o, fin, false)
}

func (e *lruEngine) GoldenAccess(g *Golden, st [][]uint64, hb, hw int, tag uint64) (bool, int, uint64, bool) {
	if hb == 0 {
		g.touch(st, 0, hw)
		return true, 0, 0, false
	}
	if hb > 0 {
		// Hit block to MRU bank; banks 0..hb-1 shift one farther;
		// the shifted-out block of hb-1 fills the hole at hb. A
		// non-full bank absorbs the chain early (cold sets only).
		carry := g.remove(st, hb, hw)
		for b := 0; b <= hb; b++ {
			if b == hb || len(st[b]) < g.specs[b].Ways {
				g.insertMRU(st, b, carry)
				break
			}
			victim := g.evictLRU(st, b)
			g.insertMRU(st, b, carry)
			carry = victim
		}
		return true, hb, 0, false
	}
	evicted, ok := goldenMissFill(g, st, tag)
	return false, -1, evicted, ok
}

// chainStep is the policy-shared replacement-chain hop: absorb the block
// into this bank's hole (the hit bank or a non-full set) or evict onward.
func chainStep(a *agent, m *chainMsg, now int64) {
	o := m.o
	lat := a.bk.Latency()
	fin := a.access(now, lat.TagRepl)

	if o.hitPos == a.pos {
		// The hit bank's hole terminates the chain.
		a.insert(o.set, m.blk)
		a.sendDone(o, fin)
		return
	}
	if !a.full(o.set) {
		// A non-full bank absorbs the chain (cold sets only).
		a.insert(o.set, m.blk)
		a.sendDone(o, fin)
		return
	}
	victim := a.evictLRU(o.set)
	a.insert(o.set, m.blk)
	if a.pos == a.last {
		a.dropVictim(o, victim)
		if victim.Dirty {
			a.writeBack(o, fin)
		}
		a.sendDone(o, fin)
		return
	}
	m.blk = victim
	a.sendBank(fin, flit.ReplaceBlock, a.pos+1, o.req.Addr, m)
}

// fillEvictChain is the policy-shared miss fill for schemes that make
// room at fill time (classic LRU, Promotion, static): insert at the MRU
// bank, pushing a full set's victim down the replacement chain.
func fillEvictChain(a *agent, o *op, blk bank.Block, fin int64) {
	if !a.full(o.set) {
		a.insert(o.set, blk)
		a.sendDone(o, fin)
		return
	}
	victim := a.evictLRU(o.set)
	a.insert(o.set, blk)
	if a.last == 0 {
		a.dropVictim(o, victim)
		if victim.Dirty {
			a.writeBack(o, fin)
		}
		a.sendDone(o, fin)
		return
	}
	o.chain.blk = victim
	a.sendBank(fin, flit.ReplaceBlock, 1, o.req.Addr, &o.chain)
}

// goldenMissFill is the shared reference-model miss: the new block
// becomes the MRU of bank 0 and every full bank pushes its LRU one bank
// farther; the last bank's victim leaves the cache.
func goldenMissFill(g *Golden, st [][]uint64, tag uint64) (evicted uint64, evictedOK bool) {
	carry := tag
	for b := range st {
		full := len(st[b]) >= g.specs[b].Ways
		var victim uint64
		if full {
			victim = g.evictLRU(st, b)
		}
		g.insertMRU(st, b, carry)
		if !full {
			return 0, false
		}
		carry = victim
	}
	return carry, true
}

package cache

import (
	"fmt"
	"strings"
	"testing"

	"nucanet/internal/bank"
	"nucanet/internal/config"
	"nucanet/internal/router"
	"nucanet/internal/sim"
	"nucanet/internal/topology"
	"nucanet/internal/trace"
)

// testDesign is a scaled-down mesh (w columns x h banks of 64KB) that keeps
// protocol behaviour identical to Design A while running fast.
func testDesign(w, h int) config.Design {
	banks := make([]bank.Spec, h)
	for i := range banks {
		banks[i] = bank.Spec{SizeKB: 64, Ways: 1}
	}
	return config.Design{
		ID: "T", Description: "test mesh",
		Topology: "mesh",
		Params: topology.Params{W: w, H: h, CoreX: w / 2, MemX: w / 2,
			HorizDelay: 1, VertDelay: []int{1}},
		Banks: banks, Router: router.DefaultConfig(),
	}
}

// nonUniformTestDesign exercises multi-way banks (Design D shape, smaller).
func nonUniformTestDesign() config.Design {
	return config.Design{
		ID: "TN", Description: "test non-uniform mesh",
		Topology: "simplified-mesh",
		Params: topology.Params{W: 4, H: 3, CoreX: 1, MemX: 1,
			HorizDelay: 1, VertDelay: []int{1}},
		Banks: []bank.Spec{
			{SizeKB: 64, Ways: 1}, {SizeKB: 128, Ways: 2}, {SizeKB: 256, Ways: 4},
		},
		Router: router.DefaultConfig(),
	}
}

type outcome struct {
	hit  bool
	bank int
}

func mustProfile(t *testing.T, name string) trace.Profile {
	t.Helper()
	p, err := trace.ProfileByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// genAccesses builds a deterministic access stream on the design's map.
func genAccesses(t *testing.T, d config.Design, n int, seed uint64) []trace.Access {
	t.Helper()
	am := d.AddrMap()
	g := trace.NewSynthetic(mustProfile(t, "gcc"), am, seed)
	return trace.Take(g, n)
}

func TestGoldenEquivalenceAllCombos(t *testing.T) {
	d := testDesign(4, 4)
	for _, policy := range []Policy{Promotion, LRU, FastLRU} {
		for _, mode := range []Mode{Unicast, Multicast} {
			policy, mode := policy, mode
			t.Run(fmt.Sprintf("%v-%v", policy, mode), func(t *testing.T) {
				k := sim.NewKernel()
				s := MustNew(k, d, policy, mode)
				gen := trace.NewSynthetic(mustProfile(t, "gcc"), s.AM, 11)
				warm := gen.WarmBlocks(s.Design.Ways())
				s.Warm(warm)
				g := s.NewGoldenFor()
				for set := 0; set < s.AM.Sets; set++ {
					for c := 0; c < s.AM.Columns; c++ {
						g.Warm(c, set, warm[set*s.AM.Columns+c])
					}
				}
				accs := trace.Take(gen, 1500)
				var reqs []*Request
				var want []outcome
				for _, a := range accs {
					col, set, tag := s.AM.ColumnOf(a.Addr), s.AM.SetOf(a.Addr), s.AM.TagOf(a.Addr)
					hit, pos, _, _ := g.Access(col, set, tag)
					want = append(want, outcome{hit, pos})
					reqs = append(reqs, s.Issue(a.Addr, a.Write, nil))
				}
				if err := s.Drain(50_000_000); err != nil {
					t.Fatal(err)
				}
				for i, r := range reqs {
					if r.Hit != want[i].hit {
						t.Fatalf("access %d (%#x): sim hit=%v, golden hit=%v",
							i, accs[i].Addr, r.Hit, want[i].hit)
					}
					if r.Hit && r.HitBank != want[i].bank {
						t.Fatalf("access %d: sim bank=%d, golden bank=%d",
							i, r.HitBank, want[i].bank)
					}
				}
				// Final contents must match exactly.
				mismatches := 0
				for set := 0; set < s.AM.Sets && mismatches == 0; set++ {
					for c := 0; c < s.AM.Columns; c++ {
						simC := s.Contents(c, set)
						goldC := g.Contents(c, set)
						for b := range simC {
							if len(simC[b]) != len(goldC[b]) {
								t.Fatalf("col %d set %d bank %d: sim %v vs golden %v",
									c, set, b, simC, goldC)
							}
							for w := range simC[b] {
								if simC[b][w] != goldC[b][w] {
									t.Fatalf("col %d set %d bank %d way %d: sim %v vs golden %v",
										c, set, b, w, simC, goldC)
								}
							}
						}
					}
				}
			})
		}
	}
}

func TestGoldenEquivalenceNonUniform(t *testing.T) {
	d := nonUniformTestDesign()
	for _, policy := range []Policy{Promotion, FastLRU} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			k := sim.NewKernel()
			s := MustNew(k, d, policy, Multicast)
			gen := trace.NewSynthetic(mustProfile(t, "twolf"), s.AM, 5)
			warm := gen.WarmBlocks(s.Design.Ways())
			s.Warm(warm)
			g := s.NewGoldenFor()
			for set := 0; set < s.AM.Sets; set++ {
				for c := 0; c < s.AM.Columns; c++ {
					g.Warm(c, set, warm[set*s.AM.Columns+c])
				}
			}
			accs := trace.Take(gen, 1200)
			var reqs []*Request
			var want []outcome
			for _, a := range accs {
				col, set, tag := s.AM.ColumnOf(a.Addr), s.AM.SetOf(a.Addr), s.AM.TagOf(a.Addr)
				hit, pos, _, _ := g.Access(col, set, tag)
				want = append(want, outcome{hit, pos})
				reqs = append(reqs, s.Issue(a.Addr, a.Write, nil))
			}
			if err := s.Drain(50_000_000); err != nil {
				t.Fatal(err)
			}
			for i, r := range reqs {
				if r.Hit != want[i].hit || (r.Hit && r.HitBank != want[i].bank) {
					t.Fatalf("access %d: sim (%v,%d) vs golden (%v,%d)",
						i, r.Hit, r.HitBank, want[i].hit, want[i].bank)
				}
			}
		})
	}
}

func TestFastLRUFunctionallyEqualsLRU(t *testing.T) {
	// Fast-LRU must produce the same hit/miss stream as classic LRU —
	// only the timing differs (Section 3.2).
	d := testDesign(4, 4)
	outcomes := func(policy Policy, mode Mode) []outcome {
		k := sim.NewKernel()
		s := MustNew(k, d, policy, mode)
		gen := trace.NewSynthetic(mustProfile(t, "bzip2"), s.AM, 21)
		s.Warm(gen.WarmBlocks(s.Design.Ways()))
		var reqs []*Request
		for _, a := range trace.Take(gen, 1500) {
			reqs = append(reqs, s.Issue(a.Addr, a.Write, nil))
		}
		if err := s.Drain(50_000_000); err != nil {
			t.Fatal(err)
		}
		out := make([]outcome, len(reqs))
		for i, r := range reqs {
			out[i] = outcome{r.Hit, r.HitBank}
		}
		return out
	}
	lru := outcomes(LRU, Unicast)
	fastU := outcomes(FastLRU, Unicast)
	fastM := outcomes(FastLRU, Multicast)
	for i := range lru {
		if lru[i] != fastU[i] {
			t.Fatalf("access %d: LRU %+v vs unicast Fast-LRU %+v", i, lru[i], fastU[i])
		}
		if lru[i] != fastM[i] {
			t.Fatalf("access %d: LRU %+v vs multicast Fast-LRU %+v", i, lru[i], fastM[i])
		}
	}
}

func TestSingleHitMRULatency(t *testing.T) {
	d := testDesign(4, 4)
	k := sim.NewKernel()
	s := MustNew(k, d, FastLRU, Multicast)
	// Place one block at the MRU bank of column 2.
	addr := s.AM.Compose(7, 9, 2)
	s.Bank(2, 0).InsertLRU(9, bank.Block{Tag: 7})
	r := s.Issue(addr, false, nil)
	if err := s.Drain(100000); err != nil {
		t.Fatal(err)
	}
	if !r.Hit || r.HitBank != 0 {
		t.Fatalf("want MRU hit, got hit=%v bank=%d", r.Hit, r.HitBank)
	}
	// Zero-load: request 1 hop + eject, 3-cycle bank, reply 5 flits.
	if lat := r.Latency(); lat < 5 || lat > 20 {
		t.Fatalf("MRU hit latency = %d, want a handful of cycles", lat)
	}
	if r.Breakdown.Bank != 3 {
		t.Fatalf("bank cycles = %d, want 3 (64KB tag+replacement)", r.Breakdown.Bank)
	}
	if r.Breakdown.Memory != 0 {
		t.Fatal("MRU hit must not touch memory")
	}
}

func TestMissGoesToMemoryAndFills(t *testing.T) {
	for _, mode := range []Mode{Unicast, Multicast} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			d := testDesign(4, 4)
			k := sim.NewKernel()
			s := MustNew(k, d, FastLRU, mode)
			gen := trace.NewSynthetic(mustProfile(t, "gcc"), s.AM, 31)
			s.Warm(gen.WarmBlocks(s.Design.Ways()))
			addr := s.AM.Compose(999999, 5, 1) // never-seen tag
			r := s.Issue(addr, false, nil)
			if err := s.Drain(1000000); err != nil {
				t.Fatal(err)
			}
			if r.Hit {
				t.Fatal("expected a miss")
			}
			if s.Memory.Stats().Reads != 1 {
				t.Fatalf("memory reads = %d, want 1", s.Memory.Stats().Reads)
			}
			if r.Breakdown.Memory < 162 {
				t.Fatalf("memory cycles = %d, want >= 162", r.Breakdown.Memory)
			}
			// The block must now be resident at the MRU bank.
			if _, ok := s.Bank(1, 0).Lookup(5, 999999); !ok {
				t.Fatal("fill did not land in the MRU bank")
			}
			// And a second access must hit at the MRU bank.
			r2 := s.Issue(addr, false, nil)
			if err := s.Drain(1000000); err != nil {
				t.Fatal(err)
			}
			if !r2.Hit || r2.HitBank != 0 {
				t.Fatalf("refetch: hit=%v bank=%d, want MRU hit", r2.Hit, r2.HitBank)
			}
		})
	}
}

func TestDirtyVictimWritesBack(t *testing.T) {
	d := testDesign(4, 2) // 2-way columns: quick to evict
	k := sim.NewKernel()
	s := MustNew(k, d, FastLRU, Multicast)
	set, col := 3, 1
	// Write to a block (makes it dirty), then push it out with misses.
	wa := s.AM.Compose(50, set, col)
	s.Bank(col, 0).InsertLRU(set, bank.Block{Tag: 50})
	s.Bank(col, 1).InsertLRU(set, bank.Block{Tag: 51})
	s.Issue(wa, true, nil)
	if err := s.Drain(1000000); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		s.Issue(s.AM.Compose(uint64(100+i), set, col), false, nil)
		if err := s.Drain(1000000); err != nil {
			t.Fatal(err)
		}
	}
	if wb := s.Memory.Stats().WriteBacks; wb != 1 {
		t.Fatalf("writebacks = %d, want 1 (the dirty block)", wb)
	}
}

func TestSetSerializationAndColumnWindow(t *testing.T) {
	d := testDesign(4, 4)
	k := sim.NewKernel()
	s := MustNew(k, d, FastLRU, Multicast)
	gen := trace.NewSynthetic(mustProfile(t, "gcc"), s.AM, 1)
	s.Warm(gen.WarmBlocks(s.Design.Ways()))
	warm := gen.WarmBlocks(2)
	// Two requests to the same (column, set) must serialize: replacement
	// chains are stateful. A request to another column overlaps fully.
	tags := warm[5*s.AM.Columns+2] // set 5, column 2: MRU and way-1 tags
	r1 := s.Issue(s.AM.Compose(tags[0], 5, 2), false, nil)
	r2 := s.Issue(s.AM.Compose(tags[1], 5, 2), false, nil)
	r3 := s.Issue(s.AM.Compose(warm[5*s.AM.Columns+3][0], 5, 3), false, nil)
	if err := s.Drain(1000000); err != nil {
		t.Fatal(err)
	}
	if r2.DataAt <= r1.DataAt {
		t.Fatalf("same-set requests did not serialize: %d vs %d", r2.DataAt, r1.DataAt)
	}
	if r3.DataAt >= r2.DataAt {
		t.Fatalf("cross-column requests did not overlap: r3 at %d, r2 at %d", r3.DataAt, r2.DataAt)
	}
	// Different sets of one column pipeline within the column window.
	k2 := sim.NewKernel()
	s2 := MustNew(k2, d, FastLRU, Multicast)
	gen2 := trace.NewSynthetic(mustProfile(t, "gcc"), s2.AM, 1)
	s2.Warm(gen2.WarmBlocks(s2.Design.Ways()))
	w2 := gen2.WarmBlocks(1)
	q1 := s2.Issue(s2.AM.Compose(w2[5*s2.AM.Columns+2][0], 5, 2), false, nil)
	q2 := s2.Issue(s2.AM.Compose(w2[6*s2.AM.Columns+2][0], 6, 2), false, nil)
	if err := s2.Drain(1000000); err != nil {
		t.Fatal(err)
	}
	if q2.DataAt >= q1.DataAt+q1.Latency() {
		t.Fatalf("different-set requests should pipeline: q1 [%d,%d], q2 at %d",
			q1.Issued, q1.DataAt, q2.DataAt)
	}
}

// pacer issues accesses at a fixed cycle interval, modeling a loaded but
// unsaturated core (tests that assert latency orderings need pacing:
// dumping the whole trace at cycle 0 measures drain throughput instead).
type pacer struct {
	k    *sim.Kernel
	kid  int
	sys  *System
	accs []trace.Access
	i    int
	gap  int64
}

func (p *pacer) Tick(now int64) bool {
	if p.i >= len(p.accs) {
		return false
	}
	a := p.accs[p.i]
	p.i++
	p.sys.Issue(a.Addr, a.Write, nil)
	if p.i < len(p.accs) {
		p.k.WakeAt(now+p.gap, p.kid)
	}
	return false
}

func runPaced(t *testing.T, s *System, accs []trace.Access, gap int64) {
	t.Helper()
	p := &pacer{k: s.K, sys: s, accs: accs, gap: gap}
	p.kid = s.K.Register(p)
	s.K.Activate(p.kid)
	if err := s.Drain(500_000_000); err != nil {
		t.Fatal(err)
	}
}

func TestFastLRUShortensColumnOccupancy(t *testing.T) {
	// Section 3.2's structural claim: Fast-LRU overlaps replacement with
	// the tag-match, so the bank set frees far earlier than under
	// classic LRU (21 vs 12 hops in the paper's Figure 2 example). This
	// holds at any load.
	d := testDesign(8, 8)
	occ := func(policy Policy, mode Mode) float64 {
		k := sim.NewKernel()
		s := MustNew(k, d, policy, mode)
		gen := trace.NewSynthetic(mustProfile(t, "gcc"), s.AM, 77)
		s.Warm(gen.WarmBlocks(s.Design.Ways()))
		runPaced(t, s, trace.Take(gen, 1000), 25)
		return s.Lat.AvgOccupancy()
	}
	uLRU := occ(LRU, Unicast)
	uFast := occ(FastLRU, Unicast)
	mFast := occ(FastLRU, Multicast)
	t.Logf("occupancy: unicast LRU=%.1f unicast fastLRU=%.1f multicast fastLRU=%.1f",
		uLRU, uFast, mFast)
	if uFast >= uLRU {
		t.Errorf("unicast Fast-LRU occupancy (%.1f) must beat unicast LRU (%.1f)", uFast, uLRU)
	}
	if mFast >= uLRU {
		t.Errorf("multicast Fast-LRU occupancy (%.1f) must beat unicast LRU (%.1f)", mFast, uLRU)
	}
}

func TestFastLRUWinsUnderLoad(t *testing.T) {
	// Under heavy load the shorter column occupancy turns into lower
	// access latency: classic LRU requests queue behind long chains.
	d := testDesign(8, 8)
	avg := func(policy Policy, mode Mode) float64 {
		k := sim.NewKernel()
		s := MustNew(k, d, policy, mode)
		gen := trace.NewSynthetic(mustProfile(t, "gcc"), s.AM, 77)
		s.Warm(gen.WarmBlocks(s.Design.Ways()))
		runPaced(t, s, trace.Take(gen, 1200), 9)
		return s.Lat.Avg()
	}
	uLRU := avg(LRU, Unicast)
	uFast := avg(FastLRU, Unicast)
	t.Logf("loaded avg latency: unicast LRU=%.1f unicast fastLRU=%.1f", uLRU, uFast)
	if uFast >= uLRU {
		t.Errorf("unicast Fast-LRU (%.1f) must beat unicast LRU (%.1f) under load", uFast, uLRU)
	}
}

func TestFastLRUHalvesBankAccesses(t *testing.T) {
	// Section 3.2: Fast-LRU "almost halves the number of bank accesses"
	// versus classic LRU (tag-match and replacement share one access).
	d := testDesign(4, 8)
	accesses := func(policy Policy) uint64 {
		k := sim.NewKernel()
		s := MustNew(k, d, policy, Unicast)
		gen := trace.NewSynthetic(mustProfile(t, "gcc"), s.AM, 13)
		s.Warm(gen.WarmBlocks(s.Design.Ways()))
		for _, a := range trace.Take(gen, 800) {
			s.Issue(a.Addr, a.Write, nil)
		}
		if err := s.Drain(100_000_000); err != nil {
			t.Fatal(err)
		}
		return s.BankAccesses()
	}
	lru := accesses(LRU)
	fast := accesses(FastLRU)
	ratio := float64(fast) / float64(lru)
	t.Logf("bank accesses: LRU=%d fastLRU=%d ratio=%.2f", lru, fast, ratio)
	if ratio > 0.75 {
		t.Errorf("Fast-LRU should come close to halving bank accesses; ratio = %.2f", ratio)
	}
}

func TestLRUConcentratesHitsAtMRU(t *testing.T) {
	// Section 6.1: LRU shows a 5-19% hit increase at the MRU banks over
	// Promotion.
	d := testDesign(4, 8)
	mruShare := func(policy Policy) float64 {
		k := sim.NewKernel()
		s := MustNew(k, d, policy, Multicast)
		gen := trace.NewSynthetic(mustProfile(t, "twolf"), s.AM, 3)
		s.Warm(gen.WarmBlocks(s.Design.Ways()))
		for _, a := range trace.Take(gen, 2000) {
			s.Issue(a.Addr, a.Write, nil)
		}
		if err := s.Drain(100_000_000); err != nil {
			t.Fatal(err)
		}
		return s.Lat.HitWayShare(0)
	}
	lru := mruShare(FastLRU)
	promo := mruShare(Promotion)
	t.Logf("MRU hit share: LRU=%.3f promotion=%.3f", lru, promo)
	if lru <= promo {
		t.Errorf("LRU MRU-hit share (%.3f) must exceed Promotion's (%.3f)", lru, promo)
	}
}

func TestBlockConservation(t *testing.T) {
	// After any run on a warmed cache, every set still holds exactly
	// `ways` distinct blocks: chains never lose or duplicate one.
	d := testDesign(4, 4)
	for _, policy := range []Policy{Promotion, LRU, FastLRU} {
		k := sim.NewKernel()
		s := MustNew(k, d, policy, Multicast)
		gen := trace.NewSynthetic(mustProfile(t, "mcf"), s.AM, 17)
		s.Warm(gen.WarmBlocks(s.Design.Ways()))
		for _, a := range trace.Take(gen, 1000) {
			s.Issue(a.Addr, a.Write, nil)
		}
		if err := s.Drain(100_000_000); err != nil {
			t.Fatal(err)
		}
		for set := 0; set < s.AM.Sets; set += 97 {
			for c := 0; c < s.AM.Columns; c++ {
				seen := map[uint64]bool{}
				total := 0
				for _, bankTags := range s.Contents(c, set) {
					for _, tag := range bankTags {
						if seen[tag] {
							t.Fatalf("%v: duplicate tag %d in col %d set %d", policy, tag, c, set)
						}
						seen[tag] = true
						total++
					}
				}
				if total != s.Design.Ways() {
					t.Fatalf("%v: col %d set %d holds %d blocks, want %d",
						policy, c, set, total, s.Design.Ways())
				}
			}
		}
	}
}

func TestBreakdownConsistency(t *testing.T) {
	d := testDesign(4, 4)
	k := sim.NewKernel()
	s := MustNew(k, d, FastLRU, Multicast)
	gen := trace.NewSynthetic(mustProfile(t, "gcc"), s.AM, 9)
	s.Warm(gen.WarmBlocks(s.Design.Ways()))
	var reqs []*Request
	for _, a := range trace.Take(gen, 400) {
		reqs = append(reqs, s.Issue(a.Addr, a.Write, nil))
	}
	if err := s.Drain(100_000_000); err != nil {
		t.Fatal(err)
	}
	for i, r := range reqs {
		if got := r.Breakdown.Total(); got != r.Latency() {
			t.Fatalf("access %d: breakdown total %d != latency %d", i, got, r.Latency())
		}
		if r.Breakdown.Bank <= 0 {
			t.Fatalf("access %d: no bank cycles", i)
		}
		if !r.Hit && r.Breakdown.Memory < 162 {
			t.Fatalf("access %d: miss with %d memory cycles", i, r.Breakdown.Memory)
		}
		if r.Hit && r.Breakdown.Memory != 0 {
			t.Fatalf("access %d: hit with memory cycles", i)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	d := testDesign(4, 4)
	run := func() (float64, uint64) {
		k := sim.NewKernel()
		s := MustNew(k, d, FastLRU, Multicast)
		gen := trace.NewSynthetic(mustProfile(t, "vpr"), s.AM, 23)
		s.Warm(gen.WarmBlocks(s.Design.Ways()))
		for _, a := range trace.Take(gen, 600) {
			s.Issue(a.Addr, a.Write, nil)
		}
		if err := s.Drain(100_000_000); err != nil {
			t.Fatal(err)
		}
		return s.Lat.Avg(), s.Net.Stats().Router.FlitsRouted
	}
	a1, f1 := run()
	a2, f2 := run()
	if a1 != a2 || f1 != f2 {
		t.Fatalf("nondeterministic: (%v,%v) vs (%v,%v)", a1, f1, a2, f2)
	}
}

func TestWorksOnAllSixDesigns(t *testing.T) {
	// Smoke: multicast Fast-LRU completes correctly on every Table 3
	// design, including halos and non-uniform banks.
	for _, d := range config.Designs() {
		d := d
		t.Run(d.ID, func(t *testing.T) {
			k := sim.NewKernel()
			s := MustNew(k, d, FastLRU, Multicast)
			gen := trace.NewSynthetic(mustProfile(t, "gcc"), s.AM, 2)
			s.Warm(gen.WarmBlocks(s.Design.Ways()))
			var reqs []*Request
			for _, a := range trace.Take(gen, 300) {
				reqs = append(reqs, s.Issue(a.Addr, a.Write, nil))
			}
			if err := s.Drain(100_000_000); err != nil {
				t.Fatal(err)
			}
			for _, r := range reqs {
				if r.DataAt == 0 {
					t.Fatal("request never completed")
				}
			}
			if s.Lat.Count != 300 {
				t.Fatalf("recorded %d accesses, want 300", s.Lat.Count)
			}
		})
	}
}

func TestParsePolicyAndMode(t *testing.T) {
	if p, err := ParsePolicy("fastlru"); err != nil || p != FastLRU {
		t.Fatal("ParsePolicy failed")
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("expected error")
	}
	if m, err := ParseMode("multicast"); err != nil || m != Multicast {
		t.Fatal("ParseMode failed")
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("expected error")
	}

	// Every registered policy — built-ins and registry additions alike —
	// round-trips through String and ParsePolicy, so CLI flags, JSON
	// reports, and error messages always agree on the registered name.
	names := PolicyNames()
	if len(names) < 4 {
		t.Fatalf("expected at least 4 registered policies, got %v", names)
	}
	for _, name := range names {
		p, err := PolicyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if !p.Valid() {
			t.Fatalf("policy %q resolves to invalid id %d", name, p)
		}
		if p.String() != name {
			t.Fatalf("policy %q prints as %q", name, p.String())
		}
		rt, err := ParsePolicy(p.String())
		if err != nil || rt != p {
			t.Fatalf("policy %q does not round-trip: got %v, %v", name, rt, err)
		}
		// Parsing is case- and hyphen-insensitive ("Fast-LRU" == "fastlru").
		loose, err := ParsePolicy(strings.ToUpper(name))
		if err != nil || loose != p {
			t.Fatalf("policy %q not parsed case-insensitively: %v, %v", name, loose, err)
		}
	}
	for _, m := range []Mode{Unicast, Multicast} {
		rt, err := ParseMode(m.String())
		if err != nil || rt != m {
			t.Fatalf("mode %v does not round-trip: got %v, %v", m, rt, err)
		}
	}
}

package cache

import (
	"fmt"

	"nucanet/internal/flit"
	"nucanet/internal/mem"
	"nucanet/internal/stats"
)

// Controller is the cache controller at the core: it accepts CPU requests,
// serializes operations per bank-set column, launches the tag-match
// (unicast probe or multicast), invokes memory after a full multicast
// miss, and tracks completion (data at core + replacement chain drained).
// The controller is policy-free: which banks move which blocks is the
// PolicyEngine's business; the controller only counts the completions the
// engine's protocol announces.
type Controller struct {
	sys   *System
	sched scheduler
	cols  []colState

	// Node is the router this controller attaches to (the topology's
	// core router for single-core systems; CMP systems place several
	// controllers at different routers).
	Node int

	// Issued counts accepted requests; QueueWait accumulates cycles
	// requests waited for their column to free up.
	Issued    uint64
	QueueWait int64
}

// ColumnWindow is how many operations may be in flight per bank-set
// column: the paper's controller keeps a small (2-entry) issue queue per
// spike so requests to different sets of one column pipeline. Operations
// on the same set always serialize (replacement chains are stateful).
const ColumnWindow = 2

type colState struct {
	q      []*Request
	active []*op
}

func newController(sys *System) *Controller {
	return NewControllerAt(sys, sys.Topo.Core)
}

// NewControllerAt creates an additional controller attached at a given
// router — the CMP building block. The caller attaches it to the network
// and routes requests to it (each column must be owned by exactly one
// controller; column state is controller-local).
func NewControllerAt(sys *System, node int) *Controller {
	c := &Controller{sys: sys, Node: node, cols: make([]colState, sys.Topo.Columns())}
	c.sched.register(sys.K)
	return c
}

// Issue accepts one CPU request. The request's Done callback (if any)
// fires when the data or write acknowledgment reaches the core.
func (c *Controller) Issue(r *Request, now int64) {
	r.Issued = now
	r.HitBank = -1
	c.Issued++
	col := c.sys.AM.ColumnOf(r.Addr)
	cs := &c.cols[col]
	cs.q = append(cs.q, r)
	c.dispatch(col, now)
}

// dispatch starts queued requests of a column while the column window has
// room and the head of the queue does not conflict on its set with an
// in-flight operation. Requests to one column stay FIFO.
func (c *Controller) dispatch(col int, now int64) {
	cs := &c.cols[col]
	for len(cs.active) < ColumnWindow && len(cs.q) > 0 {
		r := cs.q[0]
		set := c.sys.AM.SetOf(r.Addr)
		conflict := false
		for _, a := range cs.active {
			if a.set == set {
				conflict = true
				break
			}
		}
		if conflict {
			return
		}
		cs.q = cs.q[1:]
		c.QueueWait += now - r.Issued
		o := newOp()
		o.req = r
		o.col = col
		o.set = set
		o.tag = c.sys.AM.TagOf(r.Addr)
		o.ctrl = c.Node
		o.hitPos = -1
		o.chainNeeded = 1
		c.sys.opSeq++
		o.id = c.sys.opSeq
		if c.sys.Mode == Multicast {
			o.probed = make([]bool, c.sys.lastPos()+1)
		}
		cs.active = append(cs.active, o)
		c.sys.tel.OpIssued(now, o.id, o.col, o.set, r.Write)

		kind := flit.ReadReq
		if r.Write {
			kind = flit.WriteData
		}
		pkt := &flit.Packet{
			Kind: kind, Src: c.Node, DstEp: flit.ToBank,
			Addr: r.Addr, Payload: &o.probe,
		}
		if c.sys.Mode == Multicast {
			// The probe addresses every bank of the column: all routers on
			// the path deliver replicas, and DstPos -1 fans each delivery
			// out to all banks sharing the router (concentrated nodes).
			pkt.Dst = c.sys.bankNode(col, c.sys.lastPos())
			pkt.PathDeliver = c.sys.lastPos() > 0
			pkt.DstPos = -1
		} else {
			pkt.Dst = c.sys.bankNode(col, 0)
			pkt.DstPos = 0
		}
		c.sys.Net.Send(pkt, now)
	}
}

// Deliver consumes core-bound protocol packets — an exhaustive type
// switch over the controller-side message catalogue. Messages from a
// completed multicast operation (e.g. a miss notification from a bank
// probed after the hit landed) are stale and dropped.
func (c *Controller) Deliver(pkt *flit.Packet, now int64) {
	switch m := pkt.Payload.(type) {
	case *dataMsg:
		if m.o.finished {
			return
		}
		c.dataArrived(m.o, now)
	case *doneMsg:
		if m.o.finished {
			return
		}
		m.o.chainRecv++
		c.checkComplete(m.o, now)
	case *missMsg:
		o := m.o
		if o.finished {
			return
		}
		o.missCount++
		if o.missCount == c.sys.lastPos()+1 && o.hitPos < 0 {
			// Every bank reported a miss: invoke the off-chip memory
			// (multicast only; unicast asks from the LRU bank).
			o.memReq = mem.ReadReq{
				ReplyTo:  c.sys.bankNode(o.col, 0),
				ReplyEp:  flit.ToBank,
				ReplyPos: 0,
				Cookie:   &o.fill,
			}
			c.sys.Net.Send(&flit.Packet{
				Kind: flit.MemReadReq, Src: c.Node,
				Dst: c.sys.Topo.Mem, DstEp: flit.ToMem, Addr: o.req.Addr,
				Payload: &o.memReq,
			}, now)
		}
	default:
		panic(fmt.Sprintf("cache: controller got unexpected %v", pkt))
	}
}

// dataArrived is the CPU-visible completion: record latency and stats.
func (c *Controller) dataArrived(o *op, now int64) {
	if o.dataDone {
		return
	}
	o.dataDone = true
	r := o.req
	r.DataAt = now
	total := now - r.Issued
	net := total - o.bankCycles - o.memCycles
	if net < 0 {
		net = 0
	}
	r.Breakdown = stats.Breakdown{Bank: o.bankCycles, Network: net, Memory: o.memCycles}
	if r.Hit {
		c.sys.Lat.RecordHit(total, r.HitBank, r.Breakdown)
	} else {
		c.sys.Lat.RecordMiss(total, r.Breakdown)
	}
	c.sys.tel.OpData(now, o.id, r.Hit, r.HitBank)
	if r.Done != nil {
		r.Done(r, now)
	}
	c.checkComplete(o, now)
}

// checkComplete frees the column when both the data and the replacement
// chain have finished, and dispatches the next queued request.
func (c *Controller) checkComplete(o *op, now int64) {
	if !o.dataDone || !o.chainDone() || o.finished {
		return
	}
	o.finished = true
	c.sys.tel.OpFinished(now, o.id)
	c.sys.Lat.AddOccupancy(now - o.req.Issued)
	cs := &c.cols[o.col]
	for i, a := range cs.active {
		if a == o {
			cs.active = append(cs.active[:i], cs.active[i+1:]...)
			break
		}
	}
	c.dispatch(o.col, now)
}

// Pending returns the number of requests queued or in flight.
func (c *Controller) Pending() int {
	n := 0
	for i := range c.cols {
		n += len(c.cols[i].q) + len(c.cols[i].active)
	}
	return n
}

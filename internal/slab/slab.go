// Package slab is the typed chunk allocator behind batch-construction
// arenas (router.Arena, bank.Arena): it carves many small slices out of
// large typed chunks so a fleet of simulations lays its state side by
// side in memory instead of scattering thousands of heap objects, and it
// recycles those chunks across construction rounds so a long-running
// batch stops allocating once it reaches its high-water mark.
package slab

// Chunk is one growable typed backing store. Carves that outgrow the
// active chunk move on to the next retained chunk (after a Reset) or
// allocate a fresh one; previously carved slices keep their own backing
// windows, so growth never invalidates them. The zero value is ready to
// use. A Chunk is single-goroutine state.
type Chunk[T any] struct {
	chunks [][]T // every allocation, oldest first; retained across Reset
	idx    int   // index of the active chunk
	buf    []T   // un-carved tail of chunks[idx]
}

// chunkMin is the minimum chunk size in elements: large enough that one
// construction round carves from a handful of allocations, small enough
// not to waste memory on tiny batches.
const chunkMin = 4096

// Grab carves an n-element slice, zeroed, with capacity exactly n — the
// three-index carve keeps an overflowing append from bleeding into a
// neighboring slice.
func Grab[T any](c *Chunk[T], n int) []T {
	for n > len(c.buf) {
		if c.idx+1 < len(c.chunks) {
			c.idx++
			c.buf = c.chunks[c.idx]
			continue
		}
		sz := n
		if sz < chunkMin {
			sz = chunkMin
		}
		fresh := make([]T, sz)
		c.chunks = append(c.chunks, fresh)
		c.idx = len(c.chunks) - 1
		c.buf = fresh
	}
	out := c.buf[:n:n]
	c.buf = c.buf[n:]
	return out
}

// Reset recycles every chunk for a fresh round of carving: all memory is
// zeroed and carving restarts from the first chunk, so no allocation
// happens until usage exceeds the high-water mark. Every slice
// previously carved is invalidated — only Reset once nothing carved from
// the chunk is referenced. Zeroing warm, already-faulted pages is far
// cheaper than the fresh allocations it replaces, and reused memory
// never adds to the garbage collector's sweep load.
func (c *Chunk[T]) Reset() {
	for _, ch := range c.chunks {
		clear(ch)
	}
	if len(c.chunks) > 0 {
		c.idx, c.buf = 0, c.chunks[0]
	}
}

// Package cliutil holds small helpers shared by the command-line tools
// (cmd/nucasim, cmd/paperbench), so flag conventions stay identical
// across binaries.
package cliutil

import (
	"flag"
	"fmt"
	"runtime"
)

// Jobs registers the standard -j worker-count flag on fs and returns its
// destination. Both CLIs register exactly this flag; validate the parsed
// value with ResolveJobs.
func Jobs(fs *flag.FlagSet) *int {
	return fs.Int("j", 0, "parallel runs (0 = one per core, 1 = sequential)")
}

// ResolveJobs validates and resolves a parsed -j value: negative counts
// are rejected with a clear error, 0 resolves to one worker per core
// (GOMAXPROCS), and positive counts pass through unchanged.
func ResolveJobs(j int) (int, error) {
	if j < 0 {
		return 0, fmt.Errorf("invalid -j %d: want 0 (one worker per core) or a positive worker count", j)
	}
	if j == 0 {
		return runtime.GOMAXPROCS(0), nil
	}
	return j, nil
}

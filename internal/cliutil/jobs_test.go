package cliutil

import (
	"flag"
	"runtime"
	"strings"
	"testing"
)

func TestJobsFlagRegistration(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	j := Jobs(fs)
	if err := fs.Parse([]string{"-j", "8"}); err != nil {
		t.Fatal(err)
	}
	if *j != 8 {
		t.Fatalf("parsed -j = %d, want 8", *j)
	}
}

func TestResolveJobs(t *testing.T) {
	cases := []struct {
		in      int
		want    int
		wantErr string
	}{
		{in: 0, want: runtime.GOMAXPROCS(0)},
		{in: 1, want: 1},
		{in: 16, want: 16},
		{in: -1, wantErr: "invalid -j -1"},
		{in: -100, wantErr: "invalid -j -100"},
	}
	for _, c := range cases {
		got, err := ResolveJobs(c.in)
		if c.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("ResolveJobs(%d) err = %v, want containing %q", c.in, err, c.wantErr)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("ResolveJobs(%d) = %d, %v, want %d", c.in, got, err, c.want)
		}
	}
}

package cliutil

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"nucanet/internal/config"
	"nucanet/internal/core"
	"nucanet/internal/topology"
)

// listCategories is the dispatch table of the unified -list flag, in
// print order for "all". Every entry reads a live registry, so anything
// added with RegisterPolicy / router.Register / topology.Register /
// RegisterExperiment / ExtraDesigns shows up with no flag plumbing.
var listCategories = []struct {
	name  string
	print func(io.Writer)
}{
	{"designs", ListDesigns},
	{"topologies", ListTopologies},
	{"routers", ListRouters},
	{"policies", ListSchemes},
	{"experiments", ListExperiments},
}

// ListCategoryNames returns the categories -list accepts, in print order.
func ListCategoryNames() []string {
	names := make([]string, len(listCategories))
	for i, c := range listCategories {
		names[i] = c.name
	}
	return names
}

// ListFlag is the unified registry catalogue flag shared by the
// binaries: `-list=<what>` prints one catalogue, `-list=all` prints them
// all, and a bare `-list` prints the binary's default category (which
// keeps paperbench's historical `-list` = experiments working). The
// old per-category flags (-list-policies, -list-routers) remain as
// aliases on the binaries that had them.
type ListFlag struct {
	what string // "" until set
	dflt string
}

// List registers the unified -list flag on fs; dflt is the category a
// bare -list selects.
func List(fs *flag.FlagSet, dflt string) *ListFlag {
	l := &ListFlag{dflt: dflt}
	fs.Var(l, "list", "print a registry catalogue and exit: "+
		strings.Join(ListCategoryNames(), ", ")+", or all (bare -list = "+dflt+")")
	return l
}

func (l *ListFlag) String() string { return l.what }

// Set accepts a category name; the flag package passes "true" for a bare
// -list, which selects the default category.
func (l *ListFlag) Set(s string) error {
	if s == "true" {
		l.what = l.dflt
		return nil
	}
	l.what = s
	return nil
}

// IsBoolFlag lets a bare -list parse (as the default category); use
// -list=<what> to name one explicitly.
func (l *ListFlag) IsBoolFlag() bool { return true }

// Handle prints the requested catalogue(s). It returns true when the
// flag was given (the binary should exit afterwards) and an error for an
// unknown category.
func (l *ListFlag) Handle(w io.Writer) (bool, error) {
	if l.what == "" {
		return false, nil
	}
	if l.what == "all" {
		for i, c := range listCategories {
			if i > 0 {
				fmt.Fprintln(w)
			}
			c.print(w)
		}
		return true, nil
	}
	for _, c := range listCategories {
		if c.name == l.what {
			c.print(w)
			return true, nil
		}
	}
	return true, fmt.Errorf("unknown -list category %q (want %s, or all)",
		l.what, strings.Join(ListCategoryNames(), ", "))
}

// ListDesigns prints the design catalogue: Table 3's A-F plus the extra
// registered families (ring, cmesh, hierarchical chiplets).
func ListDesigns(w io.Writer) {
	fmt.Fprintln(w, "catalogue designs:")
	for _, d := range append(config.Designs(), config.ExtraDesigns()...) {
		fmt.Fprintf(w, "  %-4s %s\n", d.ID, d.Description)
	}
}

// ListTopologies prints the registered topology builders.
func ListTopologies(w io.Writer) {
	fmt.Fprintln(w, "registered topology families:")
	for _, name := range topology.Names() {
		fmt.Fprintf(w, "  %s\n", name)
	}
}

// ListExperiments prints the experiment registry — the same catalogue
// paperbench -exp and nucad's GET /v1/experiments dispatch through.
func ListExperiments(w io.Writer) {
	fmt.Fprintln(w, "registered experiments:")
	for _, name := range core.ExperimentNames() {
		e, err := core.ExperimentByName(name)
		if err != nil {
			continue
		}
		fmt.Fprintf(w, "  %-10s %s\n", e.Name, e.About)
	}
}

package cliutil

import (
	"strings"
	"testing"
)

// parseList parses args against a fresh flag set carrying only the
// unified -list flag and returns it.
func parseList(t *testing.T, dflt string, args ...string) *ListFlag {
	t.Helper()
	fs := quietFlagSet()
	l := List(fs, dflt)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return l
}

func TestListFlagAbsent(t *testing.T) {
	l := parseList(t, "experiments")
	var b strings.Builder
	done, err := l.Handle(&b)
	if done || err != nil || b.Len() != 0 {
		t.Fatalf("absent -list: done=%v err=%v out=%q", done, err, b.String())
	}
}

// TestListFlagBareSelectsDefault pins the alias contract: a bare -list
// behaves exactly like the binary's historical listing (paperbench's
// -list = experiments).
func TestListFlagBareSelectsDefault(t *testing.T) {
	l := parseList(t, "experiments", "-list")
	var b strings.Builder
	done, err := l.Handle(&b)
	if !done || err != nil {
		t.Fatalf("bare -list: done=%v err=%v", done, err)
	}
	if !strings.Contains(b.String(), "registered experiments:") {
		t.Fatalf("bare -list with default experiments printed:\n%s", b.String())
	}
}

// TestListFlagCategories pins that every advertised category prints its
// registry, registry-driven: catalogue entries added elsewhere appear
// with no changes here.
func TestListFlagCategories(t *testing.T) {
	wantSubstring := map[string]string{
		"designs":     "H2", // the hierarchical chiplet design registers via ExtraDesigns
		"topologies":  "mesh",
		"routers":     "bufferless",
		"policies":    "directory", // the CMP ownership policy registers via RegisterPolicy
		"experiments": "cmp",       // the sharing-contention experiment registers via RegisterExperiment
	}
	for _, cat := range ListCategoryNames() {
		l := parseList(t, "experiments", "-list="+cat)
		var b strings.Builder
		done, err := l.Handle(&b)
		if !done || err != nil {
			t.Fatalf("-list=%s: done=%v err=%v", cat, done, err)
		}
		if want := wantSubstring[cat]; want == "" || !strings.Contains(b.String(), want) {
			t.Errorf("-list=%s output missing %q:\n%s", cat, want, b.String())
		}
	}
}

func TestListFlagAllPrintsEveryCategory(t *testing.T) {
	l := parseList(t, "experiments", "-list=all")
	var b strings.Builder
	done, err := l.Handle(&b)
	if !done || err != nil {
		t.Fatalf("-list=all: done=%v err=%v", done, err)
	}
	for _, s := range []string{"catalogue designs:", "registered topology families:",
		"registered router engines:", "registered replacement policies:", "registered experiments:"} {
		if !strings.Contains(b.String(), s) {
			t.Errorf("-list=all missing section %q", s)
		}
	}
}

func TestListFlagRejectsUnknownCategory(t *testing.T) {
	l := parseList(t, "experiments", "-list=bogus")
	var b strings.Builder
	done, err := l.Handle(&b)
	if !done || err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("-list=bogus: done=%v err=%v", done, err)
	}
}

package cliutil

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"nucanet/internal/cache"
	"nucanet/internal/router"
	"nucanet/internal/telemetry"
)

// Design registers the standard -design flag (a Table 3 id) and returns
// its destination.
func Design(fs *flag.FlagSet) *string {
	return fs.String("design", "A", "network design (A-F from Table 3, or extra: R ring, G cmesh)")
}

// Scheme registers the typed -policy and -mode flags. cache.Policy and
// cache.Mode implement flag.Value, so parse errors surface through the
// flag package with the registered names — no per-binary ParsePolicy /
// ParseMode plumbing. The help text enumerates the registry, so a policy
// added with cache.RegisterPolicy shows up (and parses) on every binary
// automatically.
func Scheme(fs *flag.FlagSet) (*cache.Policy, *cache.Mode) {
	p, m := cache.FastLRU, cache.Multicast
	fs.Var(&p, "policy", "replacement policy: "+strings.Join(cache.PolicyNames(), ", "))
	fs.Var(&m, "mode", "request mode: unicast, multicast")
	return &p, &m
}

// ListSchemes prints the registered replacement policies and the request
// modes — the -list-policies output shared by the binaries.
func ListSchemes(w io.Writer) {
	fmt.Fprintln(w, "registered replacement policies:")
	for _, name := range cache.PolicyNames() {
		fmt.Fprintf(w, "  %s\n", name)
	}
	fmt.Fprintln(w, "request modes:")
	for _, m := range []cache.Mode{cache.Unicast, cache.Multicast} {
		fmt.Fprintf(w, "  %s\n", m)
	}
}

// Router registers the standard -router flag (a registered router
// microarchitecture; empty keeps the design's engine) and returns its
// destination. The help text enumerates the registry, so an engine added
// with router.Register shows up on every binary automatically.
func Router(fs *flag.FlagSet) *string {
	return fs.String("router", "", "router microarchitecture: "+
		strings.Join(router.Names(), ", ")+" (default: the design's engine, "+router.DefaultEngine+")")
}

// ListRouters prints the registered router microarchitectures — the
// -list-routers output shared by the binaries.
func ListRouters(w io.Writer) {
	fmt.Fprintln(w, "registered router engines:")
	for _, name := range router.Names() {
		b, err := router.ByName(name)
		if err != nil {
			continue
		}
		fmt.Fprintf(w, "  %-12s %s\n", name, b.Description)
	}
}

// Cores registers the standard -cores flag (core.Options.Cores) and
// returns its destination: N > 0 runs the full-system CMP fabric with N
// trace-driven cores sharing the cache; 0 keeps the classic single-core
// path.
func Cores(fs *flag.FlagSet) *int {
	return fs.Int("cores", 0, "run as an N-core CMP (trace-driven cores sharing the fabric; 0 = classic single-core)")
}

// Shards registers the standard -shards flag and returns its
// destination. Sharding is an execution knob, not a model parameter:
// results are bit-identical at any shard count, so the flag never
// appears in canonical run keys.
func Shards(fs *flag.FlagSet) *int {
	return fs.Int("shards", 1, "execute each run on N kernel shards (bit-identical; >1 needs multiple CPUs to pay off)")
}

// TelemetryFlags holds the destinations of the standard telemetry flag
// trio (-trace, -heatmap, -sample); read them after fs.Parse.
type TelemetryFlags struct {
	TracePath *string // output file for the flit-level JSONL trace, '-' = stdout
	Heatmap   *bool
	Sample    *int
}

// Telemetry registers the telemetry flag trio on fs. Both CLIs accept
// exactly these flags with these semantics; build the run configuration
// with Config.
func Telemetry(fs *flag.FlagSet) *TelemetryFlags {
	return &TelemetryFlags{
		TracePath: fs.String("trace", "", "write the flit-level JSONL event trace to this file ('-' = stdout)"),
		Heatmap:   fs.Bool("heatmap", false, "print ASCII link/bank heatmaps per run"),
		Sample:    fs.Int("sample", 0, "sample queue occupancy every N cycles and print the time series"),
	}
}

// Config converts the parsed flags into the run configuration: tracing is
// enabled exactly when a trace path was given.
func (t *TelemetryFlags) Config() telemetry.Config {
	return telemetry.Config{
		Trace:       *t.TracePath != "",
		Heatmap:     *t.Heatmap,
		SampleEvery: *t.Sample,
	}
}

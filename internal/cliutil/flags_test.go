package cliutil

import (
	"flag"
	"io"
	"testing"

	"nucanet/internal/cache"
	"nucanet/internal/telemetry"
)

func quietFlagSet() *flag.FlagSet {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

func TestSchemeDefaults(t *testing.T) {
	fs := quietFlagSet()
	p, m := Scheme(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if *p != cache.FastLRU || *m != cache.Multicast {
		t.Fatalf("defaults: %v/%v, want fastLRU/multicast", *p, *m)
	}
}

func TestSchemeParsesNames(t *testing.T) {
	fs := quietFlagSet()
	p, m := Scheme(fs)
	if err := fs.Parse([]string{"-policy", "promotion", "-mode", "unicast"}); err != nil {
		t.Fatal(err)
	}
	if *p != cache.Promotion || *m != cache.Unicast {
		t.Fatalf("parsed %v/%v, want promotion/unicast", *p, *m)
	}
}

func TestSchemeRejectsUnknown(t *testing.T) {
	fs := quietFlagSet()
	Scheme(fs)
	if err := fs.Parse([]string{"-policy", "bogus"}); err == nil {
		t.Fatal("accepted unknown policy")
	}
	fs = quietFlagSet()
	Scheme(fs)
	if err := fs.Parse([]string{"-mode", "broadcast"}); err == nil {
		t.Fatal("accepted unknown mode")
	}
}

func TestTelemetryConfig(t *testing.T) {
	fs := quietFlagSet()
	tf := Telemetry(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if got := tf.Config(); got != (telemetry.Config{}) || got.Enabled() {
		t.Fatalf("default config not disabled: %+v", got)
	}

	fs = quietFlagSet()
	tf = Telemetry(fs)
	if err := fs.Parse([]string{"-trace", "-", "-heatmap", "-sample", "50"}); err != nil {
		t.Fatal(err)
	}
	got := tf.Config()
	want := telemetry.Config{Trace: true, Heatmap: true, SampleEvery: 50}
	if got != want {
		t.Fatalf("config %+v, want %+v", got, want)
	}
	if *tf.TracePath != "-" {
		t.Fatalf("trace path %q", *tf.TracePath)
	}
}

func TestDesignDefault(t *testing.T) {
	fs := quietFlagSet()
	d := Design(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if *d != "A" {
		t.Fatalf("default design %q, want A", *d)
	}
}

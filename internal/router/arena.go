package router

import (
	"nucanet/internal/bank"
	"nucanet/internal/flit"
	"nucanet/internal/slab"
)

// Arena carves the slices a router engine allocates at construction time
// out of large typed chunks (see internal/slab), so a batch of routers —
// or a whole fleet of lockstep simulations (see internal/fleet) — lays
// its VC rings, credit counters, and arbitration scratch side by side in
// memory instead of scattering thousands of small heap objects.
// Construction from an arena is behavior-identical to per-router
// allocation: every carved slice starts zeroed with the exact length and
// capacity the direct make call produced, and engines never grow a
// carved slice past its capacity (credit flow control bounds
// neighbor-fed VCs).
//
// Banks is the cache-bank construction arena riding along: one Arena per
// worker provisions everything a lane builds, and one Reset recycles it
// all.
//
// An Arena is single-goroutine state: share one per worker, never across
// workers. A nil *Arena falls back to plain allocation, so every existing
// construction path is unchanged.
type Arena struct {
	entries slab.Chunk[entry]
	rings   slab.Chunk[flitRing]
	vcs     slab.Chunk[vcState]
	outs    slab.Chunk[outState]
	ints    slab.Chunk[int]
	bools   slab.Chunk[bool]
	words   slab.Chunk[uint64]
	pkts    slab.Chunk[*flit.Packet]

	// Banks carves cache-bank state (frame slabs, set headers); see
	// bank.NewIn. Access through BankArena for nil-safety.
	Banks bank.Arena
}

// BankArena returns the embedded cache-bank arena, nil for a nil Arena.
func (a *Arena) BankArena() *bank.Arena {
	if a == nil {
		return nil
	}
	return &a.Banks
}

// Reset recycles every chunk for a fresh round of construction: all
// memory is zeroed and carving restarts from the first chunk, so no new
// allocations happen until usage exceeds the arena's high-water mark.
// Every slice previously carved from the arena is invalidated — callers
// must only Reset once nothing built from the arena is referenced (the
// fleet resets between lane cohorts, whose instances are complete and
// dropped).
func (a *Arena) Reset() {
	a.entries.Reset()
	a.rings.Reset()
	a.vcs.Reset()
	a.outs.Reset()
	a.ints.Reset()
	a.bools.Reset()
	a.words.Reset()
	a.pkts.Reset()
	a.Banks.Reset()
}

func (a *Arena) entrySlab(n int) []entry {
	if a == nil {
		return make([]entry, n)
	}
	return slab.Grab(&a.entries, n)
}

func (a *Arena) ringSlab(n int) []flitRing {
	if a == nil {
		return make([]flitRing, n)
	}
	return slab.Grab(&a.rings, n)
}

func (a *Arena) vcSlab(n int) []vcState {
	if a == nil {
		return make([]vcState, n)
	}
	return slab.Grab(&a.vcs, n)
}

func (a *Arena) outSlab(n int) []outState {
	if a == nil {
		return make([]outState, n)
	}
	return slab.Grab(&a.outs, n)
}

func (a *Arena) intSlab(n int) []int {
	if a == nil {
		return make([]int, n)
	}
	return slab.Grab(&a.ints, n)
}

func (a *Arena) boolSlab(n int) []bool {
	if a == nil {
		return make([]bool, n)
	}
	return slab.Grab(&a.bools, n)
}

func (a *Arena) wordSlab(n int) []uint64 {
	if a == nil {
		return make([]uint64, n)
	}
	return slab.Grab(&a.words, n)
}

func (a *Arena) pktSlab(n int) []*flit.Packet {
	if a == nil {
		return make([]*flit.Packet, n)
	}
	return slab.Grab(&a.pkts, n)
}

package router

// flitRing is the flit FIFO of one virtual channel: a circular buffer that
// reuses its backing array across cycles instead of append-growing and
// re-slicing like the previous []entry queues (which drifted through
// their backing arrays and reallocated every few packets). Neighbor-fed
// VCs never exceed BufDepth (credit flow control bounds them), so their
// slab-carved initial capacity is final; the unbounded injection VCs
// grow geometrically and then stay at their high-water capacity for the
// rest of the run — zero allocations per steady-state cycle.
type flitRing struct {
	buf  []entry
	head int // index of the front entry
	n    int // occupied entries
}

// len returns the number of buffered entries.
func (r *flitRing) len() int { return r.n }

// front returns the oldest entry. Call only when len() > 0.
func (r *flitRing) front() *entry {
	return &r.buf[r.head]
}

// push appends an entry at the back, growing the buffer when full.
func (r *flitRing) push(e entry) {
	if r.n == len(r.buf) {
		r.grow()
	}
	i := r.head + r.n
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	r.buf[i] = e
	r.n++
}

// pop removes and returns the front entry, clearing the vacated slot so
// the flitRing does not pin delivered packets for the garbage collector.
func (r *flitRing) pop() entry {
	e := r.buf[r.head]
	r.buf[r.head] = entry{}
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	return e
}

// grow doubles the capacity, linearizing the contents to index 0.
func (r *flitRing) grow() {
	cap := len(r.buf) * 2
	if cap < 4 {
		cap = 4
	}
	buf := make([]entry, cap)
	for i := 0; i < r.n; i++ {
		j := r.head + i
		if j >= len(r.buf) {
			j -= len(r.buf)
		}
		buf[i] = r.buf[j]
	}
	r.buf = buf
	r.head = 0
}

package router

import (
	"fmt"
	"sort"

	"nucanet/internal/flit"
	"nucanet/internal/routing"
	"nucanet/internal/sim"
	"nucanet/internal/telemetry"
	"nucanet/internal/topology"
)

// Engine is the router-microarchitecture contract: everything the
// network layer needs to build, wire, and tick one node of the
// interconnect, independent of how the node buffers, arbitrates, or
// flow-controls its traffic. The VC wormhole router, the bufferless
// deflection router, and the ring-lite latch router all implement it;
// new microarchitectures register a Builder and slot into every design,
// CLI, and sweep with no further plumbing (the same shape as the
// topology, routing, and cache-policy registries).
//
// An Engine is a sim.Component: Tick runs one router cycle and reports
// whether the node needs the next cycle. Wire connects out-port p to the
// neighbor engine (all engines of one network are built by the same
// Builder, so implementations may type-assert the neighbor to their own
// concrete type — mixing microarchitectures within one network is not a
// supported configuration and panics loudly).
type Engine interface {
	sim.Component

	// Inject queues a packet at the node's injection interface (the NI
	// is the source: injection queues are unbounded).
	Inject(p *flit.Packet, now int64)
	// Occupancy returns the number of flits buffered in the node,
	// injection queue included — the conservation invariant's summand.
	Occupancy() int
	// Stats returns a copy of the node's activity counters.
	Stats() Stats
	// Wire connects out-port p to neighbor n's in-port np over a link of
	// the given delay.
	Wire(p int, n Engine, np, delay int)

	// SetDeliver installs the local ejection callback.
	SetDeliver(f func(*flit.Packet, int64))
	// SetKernelID records the component id used for activations;
	// KernelID returns it.
	SetKernelID(id int)
	KernelID() int
	// SetTelemetry installs the probe collector (nil disables probes).
	SetTelemetry(c *telemetry.Collector)
	// SetPool installs the per-run packet freelist for multicast
	// replicas; a nil pool falls back to plain allocation.
	SetPool(p *flit.PacketPool)
}

// Builder describes one registered router microarchitecture.
type Builder struct {
	// Name is the registry key ("vc-wormhole", "bufferless", "ring-lite").
	Name string
	// Description is one line for -list-routers and GET /v1/routers.
	Description string

	// New constructs one unwired node. The network package wires links,
	// installs the pool/deliver/kernel hooks, and registers it. ar, when
	// non-nil, is the construction arena the node must carve its state
	// from (batch construction for the fleet evaluator); a nil arena
	// means per-router allocation and must produce identical behavior.
	New func(id topology.NodeID, topo *topology.Topology, tb *routing.Table, cfg Config, k *sim.Kernel, ar *Arena) Engine

	// Supports rejects (topology, config) pairs the engine cannot run,
	// with a descriptive error; nil means unconstrained. network.New
	// calls it before building a single node.
	Supports func(topo *topology.Topology, cfg Config) error

	// Deflecting marks engines that never block an in-flight flit (no
	// buffers to wait on): they cannot deadlock, but need a
	// livelock-freedom argument instead of the channel-dependence check
	// (routing.VerifyDeflectionLivelockFree).
	Deflecting bool
	// AgeMonotone declares that the engine's arbitration strictly
	// prioritizes older flits, the property the livelock argument rests
	// on. Deflecting engines without it are rejected at construction.
	AgeMonotone bool

	// BufferFlitsPerPort returns the flit-buffer depth one input port
	// carries under cfg — the area model's per-engine buffer cost (the
	// wormhole's 4 VCs x 4 flits = 16; the deflection router's single
	// pipeline latch = 1; ring-lite's two-entry latch = 2).
	BufferFlitsPerPort func(cfg Config) int
}

// DefaultEngine is the microarchitecture an empty Config.Engine selects:
// the paper's VC wormhole router.
const DefaultEngine = "vc-wormhole"

// BufferFlits returns BufferFlitsPerPort(cfg), defaulting to the wormhole
// calibration point (default VCs x depth) for builders that do not model
// their buffers — area estimates then err conservative instead of
// panicking.
func (b Builder) BufferFlits(cfg Config) int {
	if b.BufferFlitsPerPort == nil {
		d := DefaultConfig()
		return d.VCsPerPC * d.BufDepth
	}
	return b.BufferFlitsPerPort(cfg)
}

var engines = map[string]Builder{}

// Register adds a router microarchitecture under a unique name. Engines
// self-register from init; registering a duplicate name, an empty name,
// or a nil constructor is a programming error and panics.
func Register(b Builder) {
	if b.Name == "" || b.New == nil {
		panic("router: Register with empty name or nil constructor")
	}
	if _, dup := engines[b.Name]; dup {
		panic(fmt.Sprintf("router: engine %q registered twice", b.Name))
	}
	engines[b.Name] = b
}

// ByName looks up a registered engine. The empty name resolves to
// DefaultEngine, so config zero values keep selecting the paper's
// wormhole router.
func ByName(name string) (Builder, error) {
	if name == "" {
		name = DefaultEngine
	}
	b, ok := engines[name]
	if !ok {
		return Builder{}, fmt.Errorf("router: unknown engine %q (registered: %v)", name, Names())
	}
	return b, nil
}

// Names returns the registered engine names, sorted.
func Names() []string {
	out := make([]string, 0, len(engines))
	for name := range engines {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

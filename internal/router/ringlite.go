package router

import (
	"fmt"

	"nucanet/internal/flit"
	"nucanet/internal/routing"
	"nucanet/internal/sim"
	"nucanet/internal/telemetry"
	"nucanet/internal/topology"
)

// ringLatchCap is the per-input packet latch depth: the "two-entry" in
// ring-lite. One entry drains downstream while the next arrives.
const ringLatchCap = 2

// RingLite is a minimal store-and-forward router in the spirit of the
// cheap ring stops of arxiv 2007.02242: per-input two-entry packet
// latches, no virtual channels, no credit wires — backpressure is the
// direct neighbor-latch occupancy check a ring stop gets for free from
// its short point-to-point links. Whole packets move as units; a hop
// costs the pipeline Stages plus link delay plus (Flits-1) serialization
// cycles, the store-and-forward penalty that is the price of the tiny
// buffers. Arbitration is oldest-first per output with ring (transit)
// traffic strictly prioritized over injection — the classic ring rule
// that keeps the stop simple and the ring drain guaranteed.
//
// It is built for the R ring topology but runs any routed design:
// a unit in a latch waits only for space in the next latch along its
// precomputed route, so its wait-for edges are exactly the consecutive-
// channel dependence edges of the routes — a subset of the
// channel-dependence graph routing.VerifyDeadlockFree has already proved
// acyclic before the network is built. Path multicast replicates at
// forward time: store-and-forward means the whole packet is present at
// every visited router, so a same-column stop hands the local bank its
// copy directly — no stolen VCs needed.
type RingLite struct {
	ID   topology.NodeID
	cfg  Config
	topo *topology.Topology
	tb   *routing.Table
	k    *sim.Kernel
	kid  int

	numPorts   int        // neighbor ports (injection is index numPorts)
	in         []flitRing // per-port unit latches; injection queue is unbounded
	neighbor   []*RingLite
	neighborIn []int
	linkDelay  []int

	deliver func(*flit.Packet, int64)
	pool    *flit.PacketPool
	tel     *telemetry.Collector

	occ   int // flits buffered here (units weighted by Flits)
	stats Stats

	usedIn []bool // per-cycle scratch: input ports already granted
}

func init() {
	Register(Builder{
		Name:        "ring-lite",
		Description: "two-entry-latch store-and-forward ring stop: no VCs, no credits, transit priority",
		New: func(id topology.NodeID, topo *topology.Topology, tb *routing.Table, cfg Config, k *sim.Kernel, ar *Arena) Engine {
			return newRingLite(id, topo, tb, cfg, k, ar)
		},
		BufferFlitsPerPort: func(Config) int { return ringLatchCap },
	})
}

func newRingLite(id topology.NodeID, topo *topology.Topology, tb *routing.Table, cfg Config, k *sim.Kernel, ar *Arena) *RingLite {
	cfg = cfg.withDefaults()
	np := topo.NumPorts(id)
	return &RingLite{
		ID: id, cfg: cfg, topo: topo, tb: tb, k: k,
		numPorts:   np,
		in:         ar.ringSlab(np + 1),
		neighbor:   make([]*RingLite, np),
		neighborIn: ar.intSlab(np),
		linkDelay:  ar.intSlab(np),
		usedIn:     ar.boolSlab(np + 1),
	}
}

// Wire connects out-port p to neighbor n.
func (r *RingLite) Wire(p int, n Engine, np, delay int) {
	nb, ok := n.(*RingLite)
	if !ok {
		panic(fmt.Sprintf("router: ring-lite router %d wired to %T (engines cannot mix within one network)", r.ID, n))
	}
	r.neighbor[p] = nb
	r.neighborIn[p] = np
	r.linkDelay[p] = delay
}

// SetDeliver installs the local ejection callback.
func (r *RingLite) SetDeliver(f func(*flit.Packet, int64)) { r.deliver = f }

// SetKernelID records the component id for activations.
func (r *RingLite) SetKernelID(id int) { r.kid = id }

// KernelID returns the registered component id.
func (r *RingLite) KernelID() int { return r.kid }

// SetTelemetry installs the probe collector (nil disables all probes).
func (r *RingLite) SetTelemetry(c *telemetry.Collector) { r.tel = c }

// SetPool installs the packet freelist for multicast replicas; nil falls
// back to plain allocation.
func (r *RingLite) SetPool(p *flit.PacketPool) { r.pool = p }

// Stats returns a copy of the router's counters.
func (r *RingLite) Stats() Stats { return r.stats }

// Occupancy returns the flits buffered here, injection queue included.
func (r *RingLite) Occupancy() int { return r.occ }

// Inject queues a packet at the injection interface (unbounded: the NI is
// the source).
func (r *RingLite) Inject(p *flit.Packet, now int64) {
	n := p.Flits()
	for i := 0; i < n; i++ {
		r.tel.FlitInjected(now, flit.Flit{Pkt: p, Seq: i, Head: i == 0, Tail: i == n-1}, int(r.ID))
	}
	r.in[r.numPorts].push(entry{f: flit.Flit{Pkt: p, Head: true, Tail: true}, arrived: now})
	r.occ += n
	r.k.Activate(r.kid)
}

// Tick runs one ring-stop cycle: eject self-addressed fronts, then for
// each output in fixed order grant the oldest transit unit routed to it
// (injection only when no transit unit wants the port), moving a unit
// only if the downstream latch has a free entry.
func (r *RingLite) Tick(now int64) bool {
	usedIn := r.usedIn
	for i := range usedIn {
		usedIn[i] = false
	}

	// Phase A: ejection, one unit per port (the endpoint interface is as
	// wide as the input side, matching the wormhole router).
	for pi := range r.in {
		q := &r.in[pi]
		if q.len() == 0 {
			continue
		}
		e := *q.front()
		if e.arrived+int64(r.cfg.Stages) > now {
			continue
		}
		if e.f.Pkt.Dst == r.ID {
			q.pop()
			usedIn[pi] = true
			r.eject(e, pi, now)
		}
	}

	// Phase B: per-output arbitration, ascending port order.
	for o := 0; o < r.numPorts; o++ {
		nb := r.neighbor[o]
		if nb == nil {
			continue
		}
		cp := r.pickOldest(o, now, usedIn)
		if cp < 0 {
			continue
		}
		if nb.in[r.neighborIn[o]].len() >= ringLatchCap {
			r.stats.CreditStalls++ // downstream latch full: backpressure
			continue
		}
		usedIn[cp] = true
		r.forward(cp, o, now)
	}

	return r.occ > 0
}

// pickOldest returns the input port whose eligible front unit routes to
// output o and is oldest, or -1. Transit ports are scanned first;
// injection is considered only when no transit unit wants the port.
func (r *RingLite) pickOldest(o int, now int64, usedIn []bool) int {
	best := -1
	var bestPkt *flit.Packet
	for pi := 0; pi < r.numPorts; pi++ {
		if usedIn[pi] || r.in[pi].len() == 0 {
			continue
		}
		e := r.in[pi].front()
		if e.arrived+int64(r.cfg.Stages) > now {
			continue
		}
		if p, ok := r.tb.NextPort(r.topo, r.ID, e.f.Pkt.Dst); !ok || p != o {
			continue
		}
		if best < 0 || olderUnit(e.f.Pkt, bestPkt) {
			best, bestPkt = pi, e.f.Pkt
		}
	}
	if best >= 0 {
		return best
	}
	pi := r.numPorts
	if !usedIn[pi] && r.in[pi].len() > 0 {
		e := r.in[pi].front()
		if e.arrived+int64(r.cfg.Stages) <= now {
			if p, ok := r.tb.NextPort(r.topo, r.ID, e.f.Pkt.Dst); ok && p == o {
				return pi
			}
		}
	}
	return -1
}

// forward moves the front unit of input cp through output o, replicating
// to the local bank first when this stop lies on a multicast path. The
// store-and-forward hop: the unit becomes eligible downstream after link
// delay plus (Flits-1) serialization cycles.
func (r *RingLite) forward(cp, o int, now int64) {
	e := r.in[cp].pop()
	pkt := e.f.Pkt
	r.occ -= pkt.Flits()
	r.stats.FlitsRouted += uint64(pkt.Flits())

	// Path multicast: the whole packet is latched here, so a same-column
	// stop hands the local bank its copy directly as the unit departs —
	// each visited column router replicates exactly once, the same
	// replication points as the wormhole router's route assignment.
	if pkt.PathDeliver && r.topo.SameColumn(r.ID, pkt.Dst) {
		rp := r.pool.Get()
		rp.ID, rp.Kind, rp.Src, rp.Dst = pkt.ID, pkt.Kind, pkt.Src, r.ID
		rp.DstEp, rp.DstPos, rp.Addr = flit.ToBank, pkt.DstPos, pkt.Addr
		rp.Payload, rp.Injected = pkt.Payload, pkt.Injected
		rp.Delivered = now
		r.stats.ReplicasSpawned += uint64(rp.Flits())
		r.stats.PacketsEjected++
		rf := flit.Flit{Pkt: rp, Head: true, Tail: true}
		r.tel.ReplicaForked(now, rf, int(r.ID), cp, 0)
		r.tel.FlitEjected(now, rf, int(r.ID), cp)
		if r.deliver == nil {
			panic(fmt.Sprintf("router %d: replica delivery with no endpoint for %v", r.ID, rp))
		}
		r.deliver(rp, now)
		r.pool.Put(rp)
	}

	r.tel.FlitRouted(now, e.f, int(r.ID), o, 0)
	nb := r.neighbor[o]
	e.arrived = now + int64(r.linkDelay[o]-1) + int64(pkt.Flits()-1)
	nb.in[r.neighborIn[o]].push(e)
	nb.occ += pkt.Flits()
	r.k.Activate(nb.kid)
}

// eject delivers a unit to the local endpoint; pooled replicas are
// recycled (consumed synchronously by their agents).
func (r *RingLite) eject(e entry, pi int, now int64) {
	pkt := e.f.Pkt
	r.occ -= pkt.Flits()
	r.stats.FlitsRouted += uint64(pkt.Flits())
	r.tel.FlitEjected(now, e.f, int(r.ID), pi)
	pkt.Delivered = now
	r.stats.PacketsEjected++
	if r.deliver == nil {
		panic(fmt.Sprintf("router %d: ejection with no endpoint for %v", r.ID, pkt))
	}
	r.deliver(pkt, now)
	r.pool.Put(pkt)
}

package router

import (
	"math/rand"
	"testing"

	"nucanet/internal/flit"
)

func seqEntry(i int) entry {
	return entry{f: flit.Flit{Seq: i}, arrived: int64(i)}
}

func TestRingFillDrain(t *testing.T) {
	var r flitRing
	for n := 1; n <= 37; n++ {
		for i := 0; i < n; i++ {
			r.push(seqEntry(i))
		}
		if r.len() != n {
			t.Fatalf("after %d pushes: len=%d", n, r.len())
		}
		for i := 0; i < n; i++ {
			if got := r.front(); got.f.Seq != i {
				t.Fatalf("n=%d front: got seq %d, want %d", n, got.f.Seq, i)
			}
			if got := r.pop(); got.f.Seq != i || got.arrived != int64(i) {
				t.Fatalf("n=%d pop %d: got %+v", n, i, got)
			}
		}
		if r.len() != 0 {
			t.Fatalf("n=%d: not empty after drain: len=%d", n, r.len())
		}
	}
}

// TestRingWraparound drives the head pointer around the buffer many times
// with a mixed push/pop workload and checks FIFO order against a model
// slice the whole way.
func TestRingWraparound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var r flitRing
	var model []int
	next := 0
	for step := 0; step < 20000; step++ {
		if r.len() != len(model) {
			t.Fatalf("step %d: len=%d model=%d", step, r.len(), len(model))
		}
		if len(model) > 0 && rng.Intn(2) == 0 {
			want := model[0]
			model = model[1:]
			if got := r.pop(); got.f.Seq != want {
				t.Fatalf("step %d: pop got %d, want %d", step, got.f.Seq, want)
			}
		} else {
			r.push(seqEntry(next))
			model = append(model, next)
			next++
		}
	}
	for _, want := range model {
		if got := r.pop(); got.f.Seq != want {
			t.Fatalf("final drain: got %d, want %d", got.f.Seq, want)
		}
	}
}

// TestRingGrowPreservesOrder forces growth while the contents straddle
// the wrap point, the case grow's linearization exists for.
func TestRingGrowPreservesOrder(t *testing.T) {
	var r flitRing
	// Fill to 4 (first growth quantum), drain 3, refill past capacity so
	// the live window wraps and then grows.
	for i := 0; i < 4; i++ {
		r.push(seqEntry(i))
	}
	for i := 0; i < 3; i++ {
		r.pop()
	}
	for i := 4; i < 12; i++ {
		r.push(seqEntry(i))
	}
	for i := 3; i < 12; i++ {
		if got := r.pop(); got.f.Seq != i {
			t.Fatalf("pop: got %d, want %d", got.f.Seq, i)
		}
	}
}

// TestRingPopClearsSlot checks that pop zeroes the vacated slot so the
// ring does not pin packet pointers for the garbage collector.
func TestRingPopClearsSlot(t *testing.T) {
	var r flitRing
	p := &flit.Packet{Kind: flit.ReadReq}
	r.push(entry{f: flit.Flit{Pkt: p}})
	head := r.head
	r.pop()
	if r.buf[head].f.Pkt != nil {
		t.Fatal("pop left a packet pointer in the vacated slot")
	}
}

// TestRingSlabCarvedCapacity checks that carved rings never alias: two
// rings carved from one slab must not see each other's entries.
func TestRingSlabCarvedCapacity(t *testing.T) {
	slab := make([]entry, 8)
	var a, b flitRing
	a.buf, slab = slab[:4:4], slab[4:]
	b.buf = slab[:4:4]
	for i := 0; i < 4; i++ {
		a.push(seqEntry(i))
	}
	for i := 10; i < 14; i++ {
		b.push(seqEntry(i))
	}
	// Push past a's carved capacity: it must grow into fresh memory, not
	// run over b's slab region.
	a.push(seqEntry(100))
	for i := 10; i < 14; i++ {
		if got := b.pop(); got.f.Seq != i {
			t.Fatalf("b corrupted by a's growth: got %d, want %d", got.f.Seq, i)
		}
	}
}

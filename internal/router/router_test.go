package router

import (
	"testing"

	"nucanet/internal/flit"
	"nucanet/internal/routing"
	"nucanet/internal/sim"
	"nucanet/internal/topology"
)

// pair wires two routers of a 2x1 mesh directly (no network package).
type pair struct {
	k      *sim.Kernel
	topo   *topology.Topology
	a, b   *Router
	gotA   []*flit.Packet
	gotB   []*flit.Packet
	timesB []int64
}

func mustTable(topo *topology.Topology, alg routing.Algorithm) *routing.Table {
	tb, err := routing.Precompute(topo, alg)
	if err != nil {
		panic(err)
	}
	return tb
}

func newPair(cfg Config) *pair {
	p := &pair{k: sim.NewKernel()}
	p.topo = topology.NewMesh(topology.MeshSpec{W: 2, H: 1, CoreX: 0, MemX: 1})
	tb := mustTable(p.topo, routing.XY{})
	p.a = New(0, p.topo, tb, cfg, p.k, nil)
	p.b = New(1, p.topo, tb, cfg, p.k, nil)
	p.a.Wire(topology.PortEast, p.b, topology.PortWest, 1)
	p.b.Wire(topology.PortWest, p.a, topology.PortEast, 1)
	p.a.SetKernelID(p.k.Register(p.a))
	p.b.SetKernelID(p.k.Register(p.b))
	p.a.SetDeliver(func(pkt *flit.Packet, now int64) { p.gotA = append(p.gotA, pkt) })
	p.b.SetDeliver(func(pkt *flit.Packet, now int64) {
		p.gotB = append(p.gotB, pkt)
		p.timesB = append(p.timesB, now)
	})
	return p
}

func TestDirectDelivery(t *testing.T) {
	p := newPair(DefaultConfig())
	pkt := &flit.Packet{Kind: flit.ReadReq, Src: 0, Dst: 1, DstEp: flit.ToBank}
	p.a.Inject(pkt, 0)
	p.k.Run(100)
	if len(p.gotB) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(p.gotB))
	}
	// Inject at 0 -> depart a at 1 -> arrive b (delay 1) -> eject at 2.
	if p.timesB[0] != 2 {
		t.Fatalf("delivered at %d, want 2", p.timesB[0])
	}
	if p.a.Occupancy() != 0 || p.b.Occupancy() != 0 {
		t.Fatal("buffers must drain")
	}
}

func TestCreditBackpressureTinyBuffers(t *testing.T) {
	cfg := Config{VCsPerPC: 1, BufDepth: 1, Stages: 1}
	p := newPair(cfg)
	// Three 5-flit packets through a single 1-flit-deep VC: progress
	// requires credit returns every cycle; everything must still arrive
	// in order.
	for i := 0; i < 3; i++ {
		p.a.Inject(&flit.Packet{Kind: flit.HitData, Src: 0, Dst: 1,
			DstEp: flit.ToBank, Addr: uint64(i)}, 0)
	}
	if _, idle := p.k.Run(10000); !idle {
		t.Fatal("did not drain (credit loss or deadlock)")
	}
	if len(p.gotB) != 3 {
		t.Fatalf("deliveries = %d, want 3", len(p.gotB))
	}
	for i, pkt := range p.gotB {
		if pkt.Addr != uint64(i) {
			t.Fatalf("out of order: %v", p.gotB)
		}
	}
	st := p.a.Stats()
	if st.FlitsRouted != 15 {
		t.Fatalf("router a moved %d flits, want 15", st.FlitsRouted)
	}
}

func TestSelfEjection(t *testing.T) {
	p := newPair(DefaultConfig())
	pkt := &flit.Packet{Kind: flit.ReadReq, Src: 0, Dst: 0, DstEp: flit.ToBank}
	p.a.Inject(pkt, 0)
	p.k.Run(100)
	if len(p.gotA) != 1 {
		t.Fatal("self-addressed packet must eject locally")
	}
}

func TestStagesDelayEachHop(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stages = 4
	p := newPair(cfg)
	p.a.Inject(&flit.Packet{Kind: flit.ReadReq, Src: 0, Dst: 1, DstEp: flit.ToBank}, 0)
	p.k.Run(1000)
	// 4 cycles in a, then 4 in b before ejection.
	if p.timesB[0] != 8 {
		t.Fatalf("delivered at %d, want 8", p.timesB[0])
	}
}

func TestNoRoutePanics(t *testing.T) {
	// A packet addressed beyond the wired ports must fail loudly.
	p := newPair(DefaultConfig())
	topo3 := topology.NewMesh(topology.MeshSpec{W: 3, H: 1, CoreX: 0, MemX: 2})
	// Router built over a 3-wide topology but wired only to one neighbor:
	r := New(0, topo3, mustTable(topo3, routing.XY{}), DefaultConfig(), p.k, nil)
	r.SetKernelID(p.k.Register(r))
	r.Inject(&flit.Packet{Kind: flit.ReadReq, Src: 0, Dst: 2, DstEp: flit.ToBank}, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unwired route")
		}
	}()
	p.k.Run(100)
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.VCsPerPC != 4 || c.BufDepth != 4 || c.Stages != 1 {
		t.Fatalf("defaults = %+v", c)
	}
	d := DefaultConfig()
	if d != (Config{VCsPerPC: 4, BufDepth: 4, Stages: 1}) {
		t.Fatalf("DefaultConfig = %+v", d)
	}
}

func TestOccupancyTracksBufferedFlits(t *testing.T) {
	p := newPair(DefaultConfig())
	pkt := &flit.Packet{Kind: flit.HitData, Src: 0, Dst: 1, DstEp: flit.ToBank}
	p.a.Inject(pkt, 0)
	if p.a.Occupancy() != 5 {
		t.Fatalf("occupancy after inject = %d, want 5", p.a.Occupancy())
	}
	p.k.Run(100)
	if p.a.Occupancy()+p.b.Occupancy() != 0 {
		t.Fatal("flits leaked")
	}
}

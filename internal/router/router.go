// Package router holds the registry of router microarchitectures
// (registry.go): pluggable Engine implementations the network layer
// selects by name — the paper's VC wormhole router (this file, the
// default), a bufferless deflection router (bufferless.go), and a
// minimal two-entry-latch ring router (ringlite.go).
//
// The default engine is the paper's single-cycle multicasting wormhole
// router (Section 3.1). Each physical channel (PC) holds several virtual
// channels (VCs) of small flit buffers with credit-based flow control.
// Lookahead routing, buffer bypassing, speculative switch allocation and
// arbitration precomputation are abstracted into a configurable pipeline
// depth of one cycle: an uncontended flit spends exactly Stages cycles per
// hop plus the link's wire delay beyond the first cycle.
//
// Multicast uses the paper's hybrid replication: when a path-multicast
// packet must both continue downstream and be delivered to the local bank,
// the replicator copies the flit into a free VC of a *different* PC of the
// same router — exploiting underutilized input buffers instead of adding
// dedicated multicast storage. If no VC is free the forward blocks (the
// paper observes this is rare; the router counts it).
//
// The router's steady-state cycle is allocation-free: VC queues are ring
// buffers carved from one per-router slab, the switch-allocation scratch
// is reused across cycles, request masks make arbitration scan only the
// VCs actually requesting an output, credit returns go through the
// kernel's typed DeferIncr, and multicast replica packets are recycled
// through a per-run flit.PacketPool. All of it is decision-for-decision
// identical to the straightforward implementation it replaced — the
// byte-identical determinism regression in internal/core is the proof.
package router

import (
	"fmt"
	"math/bits"

	"nucanet/internal/flit"
	"nucanet/internal/routing"
	"nucanet/internal/sim"
	"nucanet/internal/telemetry"
	"nucanet/internal/topology"
)

// Config sets the router microarchitecture parameters (Table 1 defaults).
type Config struct {
	VCsPerPC int // virtual channels per physical channel (4)
	BufDepth int // flit buffer depth per VC (4)
	// Stages is the per-hop router latency in cycles. 1 models the
	// paper's single-cycle router; larger values model a conventional
	// pipelined router for ablations.
	Stages int
	// Engine names the registered router microarchitecture ("vc-wormhole",
	// "bufferless", "ring-lite", or any engine the embedding program
	// registered). Empty selects DefaultEngine, so existing configs keep
	// simulating the paper's wormhole router unchanged.
	Engine string
}

// DefaultConfig returns the Table 1 router parameters.
func DefaultConfig() Config {
	return Config{VCsPerPC: 4, BufDepth: 4, Stages: 1}
}

func init() {
	Register(Builder{
		Name:        DefaultEngine,
		Description: "credit-based VC wormhole router with hybrid multicast replication (Table 1)",
		New: func(id topology.NodeID, topo *topology.Topology, tb *routing.Table, cfg Config, k *sim.Kernel, ar *Arena) Engine {
			return New(id, topo, tb, cfg, k, ar)
		},
		BufferFlitsPerPort: func(cfg Config) int {
			cfg = cfg.withDefaults()
			return cfg.VCsPerPC * cfg.BufDepth
		},
	})
}

func (c Config) withDefaults() Config {
	if c.VCsPerPC <= 0 {
		c.VCsPerPC = 4
	}
	if c.BufDepth <= 0 {
		c.BufDepth = 4
	}
	if c.Stages <= 0 {
		c.Stages = 1
	}
	return c
}

// Stats counts router activity. Engines fill the counters that apply to
// their microarchitecture: the wormhole router never deflects, the
// bufferless router has no credits to stall on.
type Stats struct {
	FlitsRouted     uint64 // flits granted switch traversal
	PacketsEjected  uint64
	ReplicasSpawned uint64 // multicast flit copies placed into stolen VCs
	ReplicaBlocked  uint64 // cycles a multicast flit stalled with no free VC
	CreditStalls    uint64 // cycles the switch winner had no downstream credit
	Deflections     uint64 // flits granted a non-productive port (bufferless misroutes)
}

// Merge adds o's counters into s. Commutative and associative, so
// aggregates over routers or over runs combine in any order.
func (s *Stats) Merge(o Stats) {
	s.FlitsRouted += o.FlitsRouted
	s.PacketsEjected += o.PacketsEjected
	s.ReplicasSpawned += o.ReplicasSpawned
	s.ReplicaBlocked += o.ReplicaBlocked
	s.CreditStalls += o.CreditStalls
	s.Deflections += o.Deflections
}

// Clone returns an independent copy. Stats is a plain value today; Clone
// keeps the aggregation API uniform with stats.Latency if reference
// fields are ever added.
func (s Stats) Clone() Stats { return s }

const unassigned = -1

// entry is one buffered flit plus the cycle it became available here.
type entry struct {
	f       flit.Flit
	arrived int64
}

// vcState is one virtual channel of an input port.
type vcState struct {
	port  int // input port index
	idx   int // VC index within the port
	q     flitRing
	route int // assigned output (port index, ejectOut) or unassigned
	outVC int // downstream VC for neighbor routes
	// Multicast replication state for the packet at the head.
	replNeed bool
	replPort int // input port holding the stolen VC, unassigned if none yet
	replVC   int
	replPkt  *flit.Packet
}

// outState tracks the downstream VC pool of one neighbor output port.
type outState struct {
	credits []int
	owner   []*flit.Packet
}

// Router is one node of the interconnect. Wire one with the network
// package; it is a sim.Component ticked on active cycles.
type Router struct {
	ID   topology.NodeID
	cfg  Config
	topo *topology.Topology
	tb   *routing.Table
	k    *sim.Kernel
	kid  int

	numPorts int          // neighbor ports (injection is index numPorts)
	in       [][]*vcState // [port][vc]; last port is injection
	out      []*outState  // [neighbor port]

	neighbor   []*Router // per out port, nil if no link
	neighborIn []int     // in-port index at the neighbor
	linkDelay  []int
	upstream   []*Router // per in port, nil if none feeds it
	upstreamOP []int     // upstream's out-port index

	deliver func(*flit.Packet, int64)

	rrOut  []int // round-robin pointer per output (incl. eject)
	injVC  int   // round-robin injection VC
	replRR int

	// Hot-path state, all reused across cycles.
	occ     int        // flits buffered anywhere in the router
	portOcc []int      // flits buffered per input port
	usedIn  []bool     // per-cycle switch-allocation scratch
	reqMask [][]uint64 // [neighbor out][bit pi*VCs+vi]: VCs routed to that output
	pool    *flit.PacketPool

	stats Stats
	tel   *telemetry.Collector // nil when probes are disabled
}

// New creates an unwired router; the network package connects neighbors,
// sets the deliver callback, and registers it with the kernel. Routers
// consume routing only through a precomputed table (routing.Precompute),
// never a raw algorithm: route lookup is a flat array index regardless
// of the topology family. A non-nil arena supplies the backing storage
// for every construction-time slice (see Arena); nil allocates directly.
func New(id topology.NodeID, topo *topology.Topology, tb *routing.Table, cfg Config, k *sim.Kernel, ar *Arena) *Router {
	cfg = cfg.withDefaults()
	np := topo.NumPorts(id)
	r := &Router{
		ID: id, cfg: cfg, topo: topo, tb: tb, k: k,
		numPorts:   np,
		neighbor:   make([]*Router, np),
		neighborIn: ar.intSlab(np),
		linkDelay:  ar.intSlab(np),
		upstream:   make([]*Router, np+1),
		upstreamOP: ar.intSlab(np + 1),
		rrOut:      ar.intSlab(np + 1),
		portOcc:    ar.intSlab(np + 1),
		usedIn:     ar.boolSlab(np + 1),
	}
	// All VC rings share one backing slab: one allocation per router,
	// and neighbor-fed VCs (bounded at BufDepth by credit flow control)
	// never grow past their carved slice.
	slab := ar.entrySlab((np + 1) * cfg.VCsPerPC * cfg.BufDepth)
	words := ((np+1)*cfg.VCsPerPC + 63) / 64
	r.reqMask = make([][]uint64, np)
	for o := range r.reqMask {
		r.reqMask[o] = ar.wordSlab(words)
	}
	r.in = make([][]*vcState, np+1)
	for p := range r.in {
		vcSlab := ar.vcSlab(cfg.VCsPerPC)
		vcs := make([]*vcState, cfg.VCsPerPC)
		for v := range vcs {
			vcs[v] = &vcSlab[v]
			*vcs[v] = vcState{port: p, idx: v, route: unassigned}
			vcs[v].q.buf, slab = slab[:cfg.BufDepth:cfg.BufDepth], slab[cfg.BufDepth:]
			r.resetRoute(vcs[v])
		}
		r.in[p] = vcs
	}
	outSlab := ar.outSlab(np)
	r.out = make([]*outState, np)
	for p := range r.out {
		r.out[p] = &outSlab[p]
		*r.out[p] = outState{
			credits: ar.intSlab(cfg.VCsPerPC),
			owner:   ar.pktSlab(cfg.VCsPerPC),
		}
		for v := range r.out[p].credits {
			r.out[p].credits[v] = cfg.BufDepth
		}
	}
	return r
}

// Wire connects this router's out-port p to neighbor n (entering n's
// in-port np over a link of the given delay) and records the reverse
// upstream reference for credit return. The neighbor must be another
// wormhole router: credits flow over dedicated wires between peer
// instances, so a heterogeneous network is a wiring bug, not a mode.
func (r *Router) Wire(p int, n Engine, np, delay int) {
	nb, ok := n.(*Router)
	if !ok {
		panic(fmt.Sprintf("router: wormhole router %d wired to %T (engines cannot mix within one network)", r.ID, n))
	}
	r.neighbor[p] = nb
	r.neighborIn[p] = np
	r.linkDelay[p] = delay
	nb.upstream[np] = r
	nb.upstreamOP[np] = p
}

// SetDeliver installs the local ejection callback.
func (r *Router) SetDeliver(f func(*flit.Packet, int64)) { r.deliver = f }

// SetKernelID records the component id for activations.
func (r *Router) SetKernelID(id int) { r.kid = id }

// SetTelemetry installs the probe collector (nil disables all probes).
func (r *Router) SetTelemetry(c *telemetry.Collector) { r.tel = c }

// SetPool installs the packet freelist for multicast replicas. The
// network installs one shared pool per run; a nil pool (the default for
// unwired routers) falls back to plain allocation.
func (r *Router) SetPool(p *flit.PacketPool) { r.pool = p }

// KernelID returns the registered component id.
func (r *Router) KernelID() int { return r.kid }

// Stats returns a copy of the router's counters.
func (r *Router) Stats() Stats { return r.stats }

// resetRoute clears a VC's routing state, removing it from its output's
// request mask.
func (r *Router) resetRoute(v *vcState) {
	if v.route >= 0 && v.route != ejectOut {
		idx := v.port*r.cfg.VCsPerPC + v.idx
		r.reqMask[v.route][idx>>6] &^= 1 << uint(idx&63)
	}
	v.route = unassigned
	v.outVC = unassigned
	v.replNeed = false
	v.replPort = unassigned
	v.replVC = unassigned
	v.replPkt = nil
}

// pushFlit buffers e into VC (pi, vi), maintaining occupancy counters.
func (r *Router) pushFlit(pi, vi int, e entry) {
	r.in[pi][vi].q.push(e)
	r.occ++
	r.portOcc[pi]++
}

// Inject queues a packet's flits at the injection port (called by the
// network on Send). Injection queues are unbounded: the NI is the source.
func (r *Router) Inject(p *flit.Packet, now int64) {
	v := r.injVC
	r.injVC++
	if r.injVC == r.cfg.VCsPerPC {
		r.injVC = 0
	}
	n := p.Flits()
	for i := 0; i < n; i++ {
		f := flit.Flit{Pkt: p, Seq: i, Head: i == 0, Tail: i == n-1}
		r.pushFlit(r.numPorts, v, entry{f: f, arrived: now})
		r.tel.FlitInjected(now, f, int(r.ID))
	}
	r.k.Activate(r.kid)
}

// Occupancy returns the number of flits buffered in the router (all input
// VCs including injection).
func (r *Router) Occupancy() int { return r.occ }

const ejectOut = 1 << 20 // sentinel route value for local ejection

// Tick performs one router cycle: route computation + VC allocation for
// head flits, then switch allocation and traversal (one grant per output,
// at most one flit per input PC — VCs of a PC share a crossbar port).
func (r *Router) Tick(now int64) bool {
	// Phase A: routing, VC allocation, multicast replica allocation for
	// the flit at the front of each VC.
	for pi, port := range r.in {
		if r.portOcc[pi] == 0 {
			continue
		}
		for _, v := range port {
			if v.q.len() == 0 {
				continue
			}
			e := v.q.front()
			if e.arrived+int64(r.cfg.Stages) > now {
				continue
			}
			if e.f.Head && v.route == unassigned {
				r.assignRoute(v, e.f.Pkt)
			}
			if v.route != unassigned && v.route != ejectOut && v.outVC == unassigned {
				r.allocVC(v, e.f.Pkt, now)
			}
			if v.replNeed && v.replPort == unassigned {
				r.allocReplica(v, pi)
			}
		}
	}

	// Phase B1: ejection. Each input PC has its own channel into the
	// local endpoint interface (the NI is as wide as the input side, and
	// the halo hub's controller exposes one interface per spike), so any
	// number of ports may eject concurrently — one flit per PC.
	usedIn := r.usedIn
	for i := range usedIn {
		usedIn[i] = false
	}
	for pi, port := range r.in {
		if r.portOcc[pi] == 0 {
			continue
		}
		for _, v := range port {
			if v.q.len() == 0 || v.route != ejectOut {
				continue
			}
			if v.q.front().arrived+int64(r.cfg.Stages) > now {
				continue
			}
			usedIn[pi] = true
			r.traverse(v, pi, 0, true, now)
			break
		}
	}

	// Phase B2: switch allocation for neighbor outputs.
	for o := 0; o < r.numPorts; o++ {
		if r.neighbor[o] == nil {
			continue
		}
		v, pi := r.pickWinner(o, now)
		if v == nil {
			continue
		}
		usedIn[pi] = true
		r.traverse(v, pi, o, false, now)
	}

	// Stay active while any flit is buffered.
	return r.occ > 0
}

// assignRoute computes the output for a head flit (lookahead routing is
// folded into the single-cycle budget) and sets up multicast delivery.
func (r *Router) assignRoute(v *vcState, pkt *flit.Packet) {
	if pkt.Dst == r.ID {
		v.route = ejectOut
	} else {
		p, ok := r.tb.NextPort(r.topo, r.ID, pkt.Dst)
		if !ok || r.neighbor[p] == nil {
			panic(fmt.Sprintf("router %d: no route for %v (port %d)", r.ID, pkt, p))
		}
		v.route = p
		idx := v.port*r.cfg.VCsPerPC + v.idx
		r.reqMask[p][idx>>6] |= 1 << uint(idx&63)
		// Path multicast: deliver a replica to the local bank when this
		// router lies on the destination column/spike.
		if pkt.PathDeliver && r.topo.SameColumn(r.ID, pkt.Dst) {
			v.replNeed = true
			rp := r.pool.Get()
			rp.ID, rp.Kind, rp.Src, rp.Dst = pkt.ID, pkt.Kind, pkt.Src, r.ID
			rp.DstEp, rp.DstPos, rp.Addr = flit.ToBank, pkt.DstPos, pkt.Addr
			rp.Payload, rp.Injected = pkt.Payload, pkt.Injected
			v.replPkt = rp
		}
	}
}

// allocVC claims a free downstream VC for the packet.
func (r *Router) allocVC(v *vcState, pkt *flit.Packet, now int64) {
	o := r.out[v.route]
	for i := range o.owner {
		if o.owner[i] == nil {
			o.owner[i] = pkt
			v.outVC = i
			r.tel.VCAllocated(now, pkt, int(r.ID), v.route, i)
			return
		}
	}
}

// allocReplica implements the hybrid replication scheme: steal a free VC
// of a different PC of this router. Only ports fed by a real link have
// buffers; a VC is free when its queue is empty, it has no route in
// progress, and the upstream router is not using it (full credits, no
// owner). Stealing claims the VC at the upstream to keep credit accounting
// exact; the claim is released when the replica's tail flit ejects.
func (r *Router) allocReplica(v *vcState, inPort int) {
	n := r.numPorts
	for k := 0; k < n; k++ {
		p := (r.replRR + k) % n
		if p == inPort || r.upstream[p] == nil {
			continue // must be a different, physically present PC
		}
		uo := r.upstream[p].out[r.upstreamOP[p]]
		for _, cand := range r.in[p] {
			if cand.q.len() != 0 || cand.route != unassigned {
				continue
			}
			if uo.owner[cand.idx] != nil || uo.credits[cand.idx] != r.cfg.BufDepth {
				continue
			}
			uo.owner[cand.idx] = v.replPkt
			v.replPort = p
			v.replVC = cand.idx
			r.replRR = (p + 1) % n
			return
		}
	}
	r.stats.ReplicaBlocked++
}

// pickWinner round-robin arbitrates input VCs requesting neighbor output
// o. The request mask holds exactly the VCs with an assigned route to o,
// so arbitration touches only actual requesters (usually zero or one)
// instead of scanning every VC of every port; iteration order over the
// mask is the same circular (port, VC) order as the full scan, so grants
// — and therefore simulation results — are unchanged.
func (r *Router) pickWinner(o int, now int64) (*vcState, int) {
	words := r.reqMask[o]
	nVC := r.cfg.VCsPerPC
	total := len(r.in) * nVC
	start := r.rrOut[o]
	sw, sb := start>>6, uint(start&63)
	nw := len(words)
	for step := 0; step <= nw; step++ {
		wi := sw + step
		if wi >= nw {
			wi -= nw
		}
		w := words[wi]
		if step == 0 {
			w &= ^uint64(0) << sb // bits at or after the RR pointer
		} else if step == nw {
			if sb == 0 {
				break
			}
			w &= 1<<sb - 1 // wrapped: bits before the RR pointer
		}
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &= w - 1
			idx := wi<<6 | b
			pi := idx / nVC
			if r.usedIn[pi] {
				continue
			}
			v := r.in[pi][idx%nVC]
			if v.q.len() == 0 {
				continue
			}
			e := v.q.front()
			if e.arrived+int64(r.cfg.Stages) > now {
				continue
			}
			if v.outVC == unassigned {
				continue
			}
			if r.out[o].credits[v.outVC] <= 0 {
				r.stats.CreditStalls++
				continue
			}
			if v.replNeed {
				if v.replPort == unassigned {
					continue // replication blocked: hold the flit
				}
				if r.in[v.replPort][v.replVC].q.len() >= r.cfg.BufDepth {
					continue // stolen VC momentarily full
				}
			}
			next := idx + 1
			if next == total {
				next = 0
			}
			r.rrOut[o] = next
			return v, pi
		}
	}
	return nil, 0
}

// traverse moves the winning flit through the crossbar: to the neighbor's
// input buffer or to local ejection, spawning the multicast replica and
// returning the drained slot's credit upstream.
func (r *Router) traverse(v *vcState, pi, o int, isEject bool, now int64) {
	e := v.q.pop()
	r.occ--
	r.portOcc[pi]--
	r.stats.FlitsRouted++

	// Credit return for the drained slot (visible next cycle).
	if up := r.upstream[pi]; up != nil {
		uo := up.out[r.upstreamOP[pi]]
		r.k.DeferIncr(&uo.credits[v.idx])
		r.k.Activate(up.kid)
	}

	// Multicast replica: copy the flit into the stolen VC. The slot is
	// charged against the upstream's credits for that VC so the stolen
	// buffer space stays consistent; the drain path returns it.
	if v.replNeed && v.replPort != unassigned {
		rf := e.f
		rf.Pkt = v.replPkt
		r.pushFlit(v.replPort, v.replVC, entry{f: rf, arrived: now})
		up := r.upstream[v.replPort]
		up.out[r.upstreamOP[v.replPort]].credits[v.replVC]--
		r.stats.ReplicasSpawned++
		r.tel.ReplicaForked(now, rf, int(r.ID), v.replPort, v.replVC)
		r.k.Activate(r.kid)
		if e.f.Tail {
			// Replica complete; upstream claim is released when the
			// replica's tail ejects (see below).
			v.replNeed = false
		}
	}

	if isEject {
		pkt := e.f.Pkt
		// Emit before deliver: delivery can synchronously inject a
		// response, and the trace must stay in chronological order.
		r.tel.FlitEjected(now, e.f, int(r.ID), pi)
		if e.f.Head {
			// Cut-through endpoint interface: the endpoint starts
			// processing at head arrival; body flits drain behind it
			// (they still hold buffers and links until ejected).
			pkt.Delivered = now
			r.stats.PacketsEjected++
			if r.deliver == nil {
				panic(fmt.Sprintf("router %d: ejection with no endpoint for %v", r.ID, pkt))
			}
			r.deliver(pkt, now)
		}
		if e.f.Tail {
			// Release an upstream claim made for a stolen (replica) VC:
			// the replica packet owns the upstream out-VC entry.
			if up := r.upstream[pi]; up != nil {
				uo := up.out[r.upstreamOP[pi]]
				if uo.owner[v.idx] == pkt {
					uo.owner[v.idx] = nil
				}
			}
			r.resetRoute(v)
			// Replica packets were minted from the pool in assignRoute
			// and are fully consumed at tail ejection; recycle them.
			// Put ignores packets that did not come from the pool.
			r.pool.Put(pkt)
		}
		return
	}

	n := r.neighbor[o]
	out := r.out[o]
	r.tel.FlitRouted(now, e.f, int(r.ID), o, v.outVC)
	out.credits[v.outVC]--
	arr := now + int64(r.linkDelay[o]-1)
	n.pushFlit(r.neighborIn[o], v.outVC, entry{f: e.f, arrived: arr})
	r.k.Activate(n.kid)
	if e.f.Tail {
		out.owner[v.outVC] = nil
		r.resetRoute(v)
	}
}

package router

import (
	"fmt"

	"nucanet/internal/flit"
	"nucanet/internal/routing"
	"nucanet/internal/sim"
	"nucanet/internal/telemetry"
	"nucanet/internal/topology"
)

// Bufferless is a deflection router (BLESS-style): no virtual channels,
// no credit loop, no switch-allocation state — just route computation and
// age-based output arbitration every cycle. Packets move as single
// deflection units (the whole packet advances one hop per cycle, flit
// accounting scaled by Flits()); each input port carries only a pipeline
// latch, so buffer area is a single flit slot per port.
//
// The cycle is: eject every unit addressed to this node (one per port —
// the endpoint interface is as wide as the input side, matching the
// wormhole router's ejection model), then allocate output ports to the
// remaining arrivals oldest-first. A unit whose productive port (the
// routing table's next hop) is taken is *deflected* to the first free
// wired port scanning cyclically from the productive one, and counted in
// Stats.Deflections. Because links are bidirectional (out-degree >=
// in-degree, enforced by the engine's Supports check), every arrival is
// guaranteed some output: nothing ever waits, so the router cannot
// deadlock. Injection has lowest priority and claims a port only when one
// is left over.
//
// Livelock freedom is the age argument verified statically by
// routing.VerifyDeflectionLivelockFree: arbitration is strictly
// age-monotone — units are served oldest (Injected, ID, Dst) first — so
// the globally oldest unit in the network is also the locally oldest
// wherever it is, always wins its productive port, advances monotonically
// along its (verified loop-free) table route, and ejects within diameter
// hops. Induction on age bounds every unit's network time.
//
// Path multicast has no home in a router without buffers (a deflected
// route may skip or revisit column nodes, and the protocol requires
// exactly-once probe delivery per bank position), so PathDeliver packets
// are expanded at the source instead: Inject mints one unicast replica
// per distinct column router, each routed and delivered independently.
type Bufferless struct {
	ID   topology.NodeID
	cfg  Config
	topo *topology.Topology
	tb   *routing.Table
	k    *sim.Kernel
	kid  int

	numPorts   int        // neighbor ports (injection is index numPorts)
	in         []flitRing // per-port unit latches; injection queue is unbounded
	neighbor   []*Bufferless
	neighborIn []int
	linkDelay  []int
	wired      []int // wired out-port indices, ascending

	deliver func(*flit.Packet, int64)
	pool    *flit.PacketPool
	tel     *telemetry.Collector

	occ   int // flits buffered here (units weighted by Flits)
	stats Stats

	// Per-cycle scratch, reused — the hot path allocates nothing.
	cand    []blCand
	outUsed []bool
}

// blCand is one transit unit competing for an output this cycle.
type blCand struct {
	port int
	e    entry
}

func init() {
	Register(Builder{
		Name:        "bufferless",
		Description: "bufferless deflection router: age-based arbitration, no VCs, no credits",
		New: func(id topology.NodeID, topo *topology.Topology, tb *routing.Table, cfg Config, k *sim.Kernel, ar *Arena) Engine {
			return newBufferless(id, topo, tb, cfg, k, ar)
		},
		Supports:    bufferlessSupports,
		Deflecting:  true,
		AgeMonotone: true,
		// One pipeline latch per port — the whole point of going bufferless.
		BufferFlitsPerPort: func(Config) int { return 1 },
	})
}

// bufferlessSupports requires every node's wired out-degree to cover its
// in-degree: at most one unit arrives per in-link per cycle, so equal (or
// greater) out capacity guarantees every arrival an output and the router
// never has to hold a unit — the no-wait property deflection rests on.
func bufferlessSupports(topo *topology.Topology, _ Config) error {
	n := topo.NumNodes()
	inDeg := make([]int, n)
	outDeg := make([]int, n)
	for v := 0; v < n; v++ {
		for p := 0; p < topo.NumPorts(v); p++ {
			if l, ok := topo.Link(v, p); ok {
				outDeg[v]++
				inDeg[l.To]++
			}
		}
	}
	for v := 0; v < n; v++ {
		if outDeg[v] < inDeg[v] {
			return fmt.Errorf("node %d has in-degree %d but out-degree %d; deflection needs an output for every arriving unit", v, inDeg[v], outDeg[v])
		}
	}
	return nil
}

func newBufferless(id topology.NodeID, topo *topology.Topology, tb *routing.Table, cfg Config, k *sim.Kernel, ar *Arena) *Bufferless {
	cfg = cfg.withDefaults()
	np := topo.NumPorts(id)
	b := &Bufferless{
		ID: id, cfg: cfg, topo: topo, tb: tb, k: k,
		numPorts:   np,
		in:         ar.ringSlab(np + 1),
		neighbor:   make([]*Bufferless, np),
		neighborIn: ar.intSlab(np),
		linkDelay:  ar.intSlab(np),
		cand:       make([]blCand, 0, np+1),
		outUsed:    ar.boolSlab(np),
	}
	return b
}

// Wire connects out-port p to neighbor n and records it in the wired-port
// scan order used by deflection.
func (b *Bufferless) Wire(p int, n Engine, np, delay int) {
	nb, ok := n.(*Bufferless)
	if !ok {
		panic(fmt.Sprintf("router: bufferless router %d wired to %T (engines cannot mix within one network)", b.ID, n))
	}
	b.neighbor[p] = nb
	b.neighborIn[p] = np
	b.linkDelay[p] = delay
	b.wired = b.wired[:0]
	for o := 0; o < b.numPorts; o++ {
		if b.neighbor[o] != nil {
			b.wired = append(b.wired, o)
		}
	}
}

// SetDeliver installs the local ejection callback.
func (b *Bufferless) SetDeliver(f func(*flit.Packet, int64)) { b.deliver = f }

// SetKernelID records the component id for activations.
func (b *Bufferless) SetKernelID(id int) { b.kid = id }

// KernelID returns the registered component id.
func (b *Bufferless) KernelID() int { return b.kid }

// SetTelemetry installs the probe collector (nil disables all probes).
func (b *Bufferless) SetTelemetry(c *telemetry.Collector) { b.tel = c }

// SetPool installs the packet freelist for source-expanded multicast
// replicas; nil falls back to plain allocation.
func (b *Bufferless) SetPool(p *flit.PacketPool) { b.pool = p }

// Stats returns a copy of the router's counters.
func (b *Bufferless) Stats() Stats { return b.stats }

// Occupancy returns the flits buffered here, injection queue included.
func (b *Bufferless) Occupancy() int { return b.occ }

// Inject queues a packet at the injection interface. PathDeliver packets
// are expanded here into one unicast replica per distinct column router
// (exactly-once delivery per bank position is a protocol requirement that
// in-flight replication cannot honor once routes may deflect).
func (b *Bufferless) Inject(p *flit.Packet, now int64) {
	if p.PathDeliver {
		if col, _, ok := b.topo.ColumnOf(p.Dst); ok {
			prev := topology.NodeID(-1) // column repeats are consecutive (concentrated nodes)
			for _, n := range b.topo.Column(col) {
				if n == p.Dst || n == prev {
					continue
				}
				prev = n
				rp := b.pool.Get()
				rp.ID, rp.Kind, rp.Src, rp.Dst = p.ID, p.Kind, p.Src, n
				rp.DstEp, rp.DstPos, rp.Addr = flit.ToBank, p.DstPos, p.Addr
				rp.Payload, rp.Injected = p.Payload, p.Injected
				b.stats.ReplicasSpawned += uint64(rp.Flits())
				b.tel.ReplicaForked(now, flit.Flit{Pkt: rp, Head: true, Tail: true}, int(b.ID), b.numPorts, 0)
				b.enqueue(rp, now)
			}
		}
	}
	b.enqueue(p, now)
	b.k.Activate(b.kid)
}

func (b *Bufferless) enqueue(p *flit.Packet, now int64) {
	n := p.Flits()
	for i := 0; i < n; i++ {
		b.tel.FlitInjected(now, flit.Flit{Pkt: p, Seq: i, Head: i == 0, Tail: i == n-1}, int(b.ID))
	}
	b.in[b.numPorts].push(entry{f: flit.Flit{Pkt: p, Head: true, Tail: true}, arrived: now})
	b.occ += n
}

// Tick runs one deflection cycle: eject, then allocate outputs to transit
// units oldest-first, then inject into a leftover port if any.
func (b *Bufferless) Tick(now int64) bool {
	// Phase A: ejection and candidate collection. Each port contributes
	// its front unit; self-addressed units leave through the port's own
	// endpoint channel, the rest compete for outputs.
	cands := b.cand[:0]
	for pi := range b.in {
		q := &b.in[pi]
		if q.len() == 0 {
			continue
		}
		e := *q.front()
		if e.arrived+int64(b.cfg.Stages) > now {
			continue
		}
		if e.f.Pkt.Dst == b.ID {
			q.pop()
			b.eject(e, pi, now)
			continue
		}
		if pi == b.numPorts {
			continue // injection joins only after transit traffic is placed
		}
		cands = append(cands, blCand{port: pi, e: e})
	}

	// Oldest-first: the age-monotone order the livelock argument needs.
	// Insertion sort — the slice is at most one unit per port.
	for i := 1; i < len(cands); i++ {
		c := cands[i]
		j := i - 1
		for j >= 0 && olderUnit(c.e.f.Pkt, cands[j].e.f.Pkt) {
			cands[j+1] = cands[j]
			j--
		}
		cands[j+1] = c
	}

	// Phase B: output allocation. Transit arrivals are guaranteed a port
	// (out-degree >= in-degree); whoever misses its productive port is
	// deflected, never held.
	outUsed := b.outUsed
	for i := range outUsed {
		outUsed[i] = false
	}
	granted := 0
	for _, c := range cands {
		b.in[c.port].pop()
		b.route(c.e, now)
		granted++
	}

	// Phase C: injection claims a leftover output, productive if possible.
	if q := &b.in[b.numPorts]; q.len() > 0 && granted < len(b.wired) {
		e := *q.front()
		if e.arrived+int64(b.cfg.Stages) <= now {
			q.pop()
			b.route(e, now)
		}
	}

	return b.occ > 0
}

// olderUnit orders units by age: injection cycle, then packet ID, then
// destination (source-expanded replicas share their parent's ID and
// injection cycle but address distinct nodes). A strict total order over
// every unit in flight, so arbitration is deterministic and age-monotone.
func olderUnit(a, p *flit.Packet) bool {
	if a.Injected != p.Injected {
		return a.Injected < p.Injected
	}
	if a.ID != p.ID {
		return a.ID < p.ID
	}
	return a.Dst < p.Dst
}

// route sends one unit out: through its productive port when free,
// deflected to the next free wired port otherwise.
func (b *Bufferless) route(e entry, now int64) {
	pkt := e.f.Pkt
	desired := -1
	if p, ok := b.tb.NextPort(b.topo, b.ID, pkt.Dst); ok && p < b.numPorts && b.neighbor[p] != nil {
		desired = p
	}
	o := desired
	if o < 0 || b.outUsed[o] {
		o = b.firstFree(desired)
		b.stats.Deflections += uint64(pkt.Flits())
	}
	b.outUsed[o] = true
	b.occ -= pkt.Flits()
	b.stats.FlitsRouted += uint64(pkt.Flits())
	b.tel.FlitRouted(now, e.f, int(b.ID), o, 0)
	nb := b.neighbor[o]
	e.arrived = now + int64(b.linkDelay[o]-1)
	nb.in[b.neighborIn[o]].push(e)
	nb.occ += pkt.Flits()
	b.k.Activate(nb.kid)
}

// firstFree scans the wired ports cyclically from the one after desired
// (from the first wired port when there is no productive hop) and returns
// the first unclaimed output. The capacity invariant guarantees one.
func (b *Bufferless) firstFree(desired int) int {
	n := len(b.wired)
	start := 0
	if desired >= 0 {
		for i, p := range b.wired {
			if p == desired {
				start = i + 1
				break
			}
		}
	}
	for k := 0; k < n; k++ {
		o := b.wired[(start+k)%n]
		if !b.outUsed[o] {
			return o
		}
	}
	panic(fmt.Sprintf("router: bufferless router %d out of outputs (capacity invariant violated)", b.ID))
}

// eject delivers a unit to the local endpoint and recycles pooled
// replicas (probe replicas are consumed synchronously by their agents).
func (b *Bufferless) eject(e entry, pi int, now int64) {
	pkt := e.f.Pkt
	b.occ -= pkt.Flits()
	b.stats.FlitsRouted += uint64(pkt.Flits())
	b.tel.FlitEjected(now, e.f, int(b.ID), pi)
	pkt.Delivered = now
	b.stats.PacketsEjected++
	if b.deliver == nil {
		panic(fmt.Sprintf("router %d: ejection with no endpoint for %v", b.ID, pkt))
	}
	b.deliver(pkt, now)
	b.pool.Put(pkt)
}

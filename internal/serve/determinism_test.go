package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// detReq is a small real run (design F is the fastest full
// configuration) used by the determinism and benchmark tests.
const detReq = `{"design":"F","policy":"fastlru","mode":"multicast","benchmark":"gcc","accesses":400,"seed":7}`

func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func postRun(t testing.TB, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/run: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, b
}

// TestServeDeterministicBodies pins the serving layer's core promise:
// the same request served cold (fresh server), warm (cache hit), and
// concurrently from 8 goroutines returns byte-identical JSON bodies.
// Runs under -race via the serverace make target.
func TestServeDeterministicBodies(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})

	resp, cold := postRun(t, ts, detReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold: status %d: %s", resp.StatusCode, cold)
	}
	if got := resp.Header.Get("X-Nucad-Cache"); got != "miss" {
		t.Fatalf("cold: X-Nucad-Cache = %q, want miss", got)
	}

	resp, warm := postRun(t, ts, detReq)
	if got := resp.Header.Get("X-Nucad-Cache"); got != "hit" {
		t.Fatalf("warm: X-Nucad-Cache = %q, want hit", got)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("cold and warm bodies differ:\ncold: %s\nwarm: %s", cold, warm)
	}

	// A second, independent server must produce the same bytes (the
	// content address is a pure function of the configuration), and 8
	// concurrent requests against it must all agree.
	_, ts2 := newTestServer(t, Config{Workers: 4})
	var wg sync.WaitGroup
	bodies := make([][]byte, 8)
	sources := make([]string, 8)
	for i := range bodies {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, b := postRun(t, ts2, detReq)
			bodies[i] = b
			sources[i] = resp.Header.Get("X-Nucad-Cache")
		}(i)
	}
	wg.Wait()
	for i, b := range bodies {
		if !bytes.Equal(cold, b) {
			t.Fatalf("concurrent body %d (source %s) differs from cold:\ncold: %s\ngot:  %s",
				i, sources[i], cold, b)
		}
	}

	// Sanity on the payload itself.
	var rr RunResponse
	if err := json.Unmarshal(cold, &rr); err != nil {
		t.Fatalf("body is not a RunResponse: %v", err)
	}
	if rr.ConfigHash == "" || rr.Cycles <= 0 || rr.IPC <= 0 || rr.Design != "F" {
		t.Fatalf("implausible response: %+v", rr)
	}
}

// TestServeCoalescesConcurrentIdenticalRequests pins that concurrent
// identical cold requests share one execution: with a single worker and
// 8 simultaneous requests, the cache+coalescing layer serves all of
// them while executing at most one simulation.
func TestServeCoalescesConcurrentIdenticalRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, b := postRun(t, ts, detReq)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d: %s", resp.StatusCode, b)
			}
		}()
	}
	wg.Wait()
	if runs := s.runs.Load(); runs != 1 {
		t.Fatalf("executed %d simulations for 8 identical requests, want 1", runs)
	}
	if served := s.served.Load(); served != 8 {
		t.Fatalf("served = %d, want 8", served)
	}
}

// TestServeTelemetryResponse exercises the heatmap/series path end to
// end: artifacts arrive in the body and remain deterministic.
func TestServeTelemetryResponse(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := `{"design":"F","accesses":300,"telemetry":{"heatmap":true,"sample_every":50}}`
	resp, b1 := postRun(t, ts, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, b1)
	}
	var rr RunResponse
	if err := json.Unmarshal(b1, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Telemetry == nil {
		t.Fatal("telemetry requested but absent from response")
	}
	if len(rr.Telemetry.BankAccesses) == 0 || rr.Telemetry.Samples == 0 {
		t.Fatalf("telemetry payload empty: %+v", rr.Telemetry)
	}
	_, b2 := postRun(t, ts, req)
	if !bytes.Equal(b1, b2) {
		t.Fatal("telemetry-bearing bodies differ between cold and warm")
	}
}

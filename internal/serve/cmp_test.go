package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// cmpReq is a small CMP run on the two-chiplet hierarchical design under
// the directory policy — the full-system configuration the CMP
// experiment sweeps, shrunk to test size.
const cmpReq = `{"design":"H2","policy":"directory","benchmark":"gcc","accesses":300,"seed":7,"cores":4}`

// TestServeCMPRun pins the serving layer's CMP path end to end: a
// multi-core directory run on the hierarchical design executes, returns
// per-core rows and the ownership report, and the warm replay is a
// byte-identical cache hit (the content address sees Cores).
func TestServeCMPRun(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	resp, cold := postRun(t, ts, cmpReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold: status %d: %s", resp.StatusCode, cold)
	}
	if got := resp.Header.Get("X-Nucad-Cache"); got != "miss" {
		t.Fatalf("cold: X-Nucad-Cache = %q, want miss", got)
	}

	var rr RunResponse
	if err := json.Unmarshal(cold, &rr); err != nil {
		t.Fatalf("body is not a RunResponse: %v", err)
	}
	if rr.Design != "H2" || rr.Cores != 4 || len(rr.PerCore) != 4 {
		t.Fatalf("CMP identity wrong: design=%q cores=%d per_core=%d", rr.Design, rr.Cores, len(rr.PerCore))
	}
	var remote float64
	for i, c := range rr.PerCore {
		if c.Core != i || c.IPC <= 0 || c.Cycles <= 0 {
			t.Fatalf("implausible per-core row %d: %+v", i, c)
		}
		remote += c.RemoteShare
	}
	if remote == 0 {
		t.Fatal("4 cores on H2 produced no remote traffic; the fabric is not being shared")
	}
	if rr.Directory == nil {
		t.Fatal("directory policy ran but no ownership report in response")
	}
	if len(rr.Directory.Owners) != 4 {
		t.Fatalf("directory owners = %d, want 4", len(rr.Directory.Owners))
	}

	// The same run a second time must be a warm cache hit serving the
	// identical bytes.
	resp, warm := postRun(t, ts, cmpReq)
	if got := resp.Header.Get("X-Nucad-Cache"); got != "hit" {
		t.Fatalf("warm: X-Nucad-Cache = %q, want hit", got)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatalf("cold and warm CMP bodies differ:\ncold: %s\nwarm: %s", cold, warm)
	}

	// A different core count is a different configuration: it must miss
	// the cache and carry a different content address.
	resp, other := postRun(t, ts, strings.Replace(cmpReq, `"cores":4`, `"cores":2`, 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cores=2: status %d: %s", resp.StatusCode, other)
	}
	if got := resp.Header.Get("X-Nucad-Cache"); got != "miss" {
		t.Fatalf("cores=2: X-Nucad-Cache = %q, want miss (Cores must be part of the key)", got)
	}
	var rr2 RunResponse
	if err := json.Unmarshal(other, &rr2); err != nil {
		t.Fatal(err)
	}
	if rr2.ConfigHash == rr.ConfigHash {
		t.Fatal("cores=2 and cores=4 share a config hash")
	}
}

// TestServeCMPRejectsBadCores pins the field-scoped 400s of the cores
// field: negative counts, radial designs, and counts past the grid
// width.
func TestServeCMPRejectsBadCores(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		name, body string
	}{
		{"negative", `{"cores":-1}`},
		{"radial design", `{"design":"E","cores":2}`},
		{"past grid width", `{"design":"A","cores":200}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, b := postRun(t, ts, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, b)
			}
			var ae struct {
				Error struct {
					Field string `json:"field"`
				} `json:"error"`
			}
			if err := json.Unmarshal(b, &ae); err != nil {
				t.Fatalf("error body is not structured: %v: %s", err, b)
			}
			if ae.Error.Field != "cores" {
				t.Fatalf("error field = %q, want cores: %s", ae.Error.Field, b)
			}
		})
	}
}

package serve

import (
	"container/list"
	"sync"

	"nucanet/internal/core"
)

// Cache is the content-addressed result cache: a bounded LRU keyed by
// core.CanonicalKey. Determinism makes this sound — the key covers the
// fully resolved configuration, and equal configurations produce
// byte-identical results — so an entry can be served forever and a hit
// is indistinguishable from a fresh run, bytes included. Entries hold
// both the marshaled response body (served verbatim, preserving
// byte-identity between cold and warm responses) and the core.Result
// (merged into the server's running aggregate on every hit, so
// /v1/stats reflects served traffic rather than just executed runs).
type Cache struct {
	mu   sync.Mutex
	cap  int
	ll   *list.List // front = most recently used
	byID map[string]*list.Element

	hits, misses, evictions uint64
}

type cacheEntry struct {
	key  string
	body []byte
	res  core.Result
}

// NewCache returns a cache bounded to capacity entries (<= 0 selects
// 1024).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Cache{cap: capacity, ll: list.New(), byID: map[string]*list.Element{}}
}

// Get returns the cached body and result for a key, refreshing its LRU
// position. Every call counts as a hit or a miss.
func (c *Cache) Get(key string) ([]byte, core.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byID[key]
	if !ok {
		c.misses++
		return nil, core.Result{}, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.body, e.res, true
}

// Put stores a completed run, evicting the least recently used entry
// when full. Re-putting an existing key refreshes it in place.
func (c *Cache) Put(key string, body []byte, res core.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byID[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		e.body, e.res = body, res
		return
	}
	c.byID[key] = c.ll.PushFront(&cacheEntry{key: key, body: body, res: res})
	for c.ll.Len() > c.cap {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.byID, tail.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// CacheStats is the counter snapshot surfaced by /v1/stats.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Size      int    `json:"size"`
	Capacity  int    `json:"capacity"`
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Size: c.ll.Len(), Capacity: c.cap,
	}
}

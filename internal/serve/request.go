package serve

import (
	"encoding/json"
	"sort"
	"strings"

	"nucanet/internal/cache"
	"nucanet/internal/cmp"
	"nucanet/internal/config"
	"nucanet/internal/core"
	"nucanet/internal/router"
	"nucanet/internal/stats"
	"nucanet/internal/telemetry"
	"nucanet/internal/trace"
)

// RunRequest is the POST /v1/run body. Every field is optional; the
// zero request runs the baseline configuration (core.DefaultOptions).
type RunRequest struct {
	Design    string  `json:"design,omitempty"`
	Policy    string  `json:"policy,omitempty"`
	Mode      string  `json:"mode,omitempty"`
	Router    string  `json:"router,omitempty"`
	Benchmark string  `json:"benchmark,omitempty"`
	Accesses  int     `json:"accesses,omitempty"`
	Seed      *uint64 `json:"seed,omitempty"`
	// Cores switches the run to full-system CMP mode (core.Options.Cores):
	// N trace-driven cores sharing the fabric. 0 is the classic
	// single-core run.
	Cores     int               `json:"cores,omitempty"`
	Telemetry *TelemetryRequest `json:"telemetry,omitempty"`
}

// TelemetryRequest selects the probes whose artifacts are embedded in
// the response. The flit-level event trace is deliberately not exposed
// over HTTP (unbounded body growth); use cmd/nucasim -trace for that.
type TelemetryRequest struct {
	Heatmap     bool `json:"heatmap,omitempty"`
	SampleEvery int  `json:"sample_every,omitempty"`
}

// knownDesignIDs lists the catalogue ids for error messages.
func knownDesignIDs() []string {
	var ids []string
	for _, d := range append(config.Designs(), config.ExtraDesigns()...) {
		ids = append(ids, d.ID)
	}
	sort.Strings(ids)
	return ids
}

// options validates the request field by field and builds the
// core.Options it denotes. Every rejection is a field-scoped 400 whose
// message is composed from registry knowledge (never from internal
// error strings), satisfying the no-leak contract of errors.go.
func (r RunRequest) options(maxAccesses int) (core.Options, *apiError) {
	o := core.DefaultOptions()
	if r.Design != "" {
		if _, err := config.DesignByID(r.Design); err != nil {
			return o, badField("design", "unknown design %q; known designs: %s",
				r.Design, strings.Join(knownDesignIDs(), ", "))
		}
		o.DesignID = r.Design
	}
	if r.Policy != "" {
		p, err := cache.ParsePolicy(r.Policy)
		if err != nil {
			return o, badField("policy", "unknown policy %q; known policies: %s",
				r.Policy, strings.Join(cache.PolicyNames(), ", "))
		}
		o.Policy = p
	}
	if r.Mode != "" {
		m, err := cache.ParseMode(r.Mode)
		if err != nil {
			return o, badField("mode", "unknown mode %q; known modes: unicast, multicast", r.Mode)
		}
		o.Mode = m
	}
	if r.Router != "" {
		if _, err := router.ByName(r.Router); err != nil {
			return o, badField("router", "unknown router %q; known routers: %s",
				r.Router, strings.Join(router.Names(), ", "))
		}
		o.Router = r.Router
	}
	if r.Benchmark != "" {
		if _, err := trace.ProfileByName(r.Benchmark); err != nil {
			return o, badField("benchmark", "unknown benchmark %q; known benchmarks: %s",
				r.Benchmark, strings.Join(trace.Names(), ", "))
		}
		o.Benchmark = r.Benchmark
	}
	if r.Accesses != 0 {
		if r.Accesses < 0 {
			return o, badField("accesses", "accesses must be positive, got %d", r.Accesses)
		}
		if r.Accesses > maxAccesses {
			return o, badField("accesses", "accesses must be at most %d, got %d", maxAccesses, r.Accesses)
		}
		o.Accesses = r.Accesses
	}
	if r.Seed != nil {
		o.Seed = *r.Seed
	}
	if r.Cores != 0 {
		if r.Cores < 0 {
			return o, badField("cores", "cores must be non-negative, got %d", r.Cores)
		}
		// The grid-hosting constraint is design-dependent; rebuild the
		// (cheap, structural) topology to check it here so the rejection
		// stays a field-scoped 400 instead of a run failure.
		d, _ := config.DesignByID(o.DesignID)
		if topo, err := d.Build(); err == nil {
			if err := cmp.SupportsHost(topo, d.ID, r.Cores); err != nil {
				return o, badField("cores", "design %q cannot host %d cores: a CMP run needs a full router grid with width >= cores",
					o.DesignID, r.Cores)
			}
		}
		o.Cores = r.Cores
	}
	if r.Telemetry != nil {
		if r.Telemetry.SampleEvery < 0 {
			return o, badField("telemetry.sample_every", "sample_every must be >= 0, got %d", r.Telemetry.SampleEvery)
		}
		o.Telemetry = telemetry.Config{
			Heatmap:     r.Telemetry.Heatmap,
			SampleEvery: r.Telemetry.SampleEvery,
		}
	}
	// Defense in depth: the checks above should have covered everything
	// Validate checks; a residual failure is reported without the
	// internal error text.
	if err := o.Validate(); err != nil {
		return o, badField("", "invalid run configuration")
	}
	return o, nil
}

// RunResponse is the POST /v1/run body on success: the request's
// resolved identity (including its content address) plus the paper's
// headline measurements. Marshaling is deterministic — plain structs,
// no maps — so equal configurations always serve byte-identical bodies,
// cold or cached (pinned by TestServeDeterministicBodies).
type RunResponse struct {
	ConfigHash string `json:"config_hash"`
	Design     string `json:"design"`
	Topology   string `json:"topology"`
	Router     string `json:"router"`
	Policy     string `json:"policy"`
	Mode       string `json:"mode"`
	Benchmark  string `json:"benchmark"`
	Accesses   int    `json:"accesses"`
	Seed       uint64 `json:"seed"`

	IPC          float64 `json:"ipc"`
	PerfectIPC   float64 `json:"perfect_ipc"`
	Instructions int64   `json:"instructions"`
	Cycles       int64   `json:"cycles"`

	AvgLatency     float64 `json:"avg_latency"`
	AvgHitLatency  float64 `json:"avg_hit_latency"`
	AvgMissLatency float64 `json:"avg_miss_latency"`
	HitRate        float64 `json:"hit_rate"`
	P50            int64   `json:"p50"`
	P90            int64   `json:"p90"`
	P99            int64   `json:"p99"`

	BankShare    float64 `json:"bank_share"`
	NetworkShare float64 `json:"network_share"`
	MemShare     float64 `json:"mem_share"`

	FlitsInjected    uint64 `json:"flits_injected"`
	PacketsDelivered uint64 `json:"packets_delivered"`
	MemReads         uint64 `json:"mem_reads"`
	MemWriteBacks    uint64 `json:"mem_writebacks"`

	EnergyPJ          float64 `json:"energy_pj"`
	EnergyPerAccessNJ float64 `json:"energy_per_access_nj"`

	// Cores echoes the CMP core count (0 on classic runs); PerCore holds
	// the per-core outcomes of a CMP run, and Directory the ownership
	// summary when the directory policy ran. All slices, no maps, so
	// bodies stay byte-deterministic.
	Cores     int                `json:"cores,omitempty"`
	PerCore   []CoreResponse     `json:"per_core,omitempty"`
	Directory *DirectoryResponse `json:"directory,omitempty"`

	Telemetry *TelemetryResponse `json:"telemetry,omitempty"`
}

// CoreResponse is one CMP core's outcome in a RunResponse.
type CoreResponse struct {
	Core        int     `json:"core"`
	IPC         float64 `json:"ipc"`
	AvgLatency  float64 `json:"avg_latency"`
	HitRate     float64 `json:"hit_rate"`
	RemoteShare float64 `json:"remote_share"`
	Cycles      int64   `json:"cycles"`
}

// DirectoryResponse condenses the directory policy's ownership report:
// per-owner rows ascending plus the eviction split.
type DirectoryResponse struct {
	Owners     []DirectoryOwner `json:"owners"`
	SelfDrops  int64            `json:"self_drops"`
	CrossDrops int64            `json:"cross_drops"`
}

// DirectoryOwner is one owner's row of the directory report.
type DirectoryOwner struct {
	Owner uint64 `json:"owner"`
	Live  int64  `json:"live"`
	Fills int64  `json:"fills"`
	Hits  int64  `json:"hits"`
	Drops int64  `json:"drops"`
}

// TelemetryResponse embeds the probe artifacts a request asked for.
type TelemetryResponse struct {
	// BankAccesses and BankHits are [column][position] counters from the
	// heatmap probe.
	BankAccesses [][]uint64 `json:"bank_accesses,omitempty"`
	BankHits     [][]uint64 `json:"bank_hits,omitempty"`
	// Samples is the queue-occupancy time-series length; MaxInFlight and
	// MaxPending are its peaks.
	Samples     int   `json:"samples,omitempty"`
	MaxInFlight int32 `json:"max_in_flight,omitempty"`
	MaxPending  int32 `json:"max_pending,omitempty"`
}

// buildResponse marshals one completed run. The bytes are what the
// cache stores and every subsequent hit serves verbatim.
func buildResponse(key string, res core.Result) ([]byte, error) {
	resp := RunResponse{
		ConfigHash: key,
		Design:     res.Design.ID,
		Topology:   res.Design.Topology,
		Router:     res.Design.Router.Engine,
		Policy:     res.Options.Policy.String(),
		Mode:       res.Options.Mode.String(),
		Benchmark:  res.Options.Benchmark,
		Accesses:   res.Options.Accesses,
		Seed:       res.Options.Seed,

		IPC:          res.IPC,
		PerfectIPC:   res.PerfectIPC,
		Instructions: res.Instructions,
		Cycles:       res.Cycles,

		AvgLatency:     res.AvgLatency,
		AvgHitLatency:  res.AvgHit,
		AvgMissLatency: res.AvgMiss,
		HitRate:        res.HitRate,

		BankShare:    res.BankShare,
		NetworkShare: res.NetworkShare,
		MemShare:     res.MemShare,

		FlitsInjected:    res.Network.FlitsInjected,
		PacketsDelivered: res.Network.PacketsDelivered,
		MemReads:         res.Memory.Reads,
		MemWriteBacks:    res.Memory.WriteBacks,

		EnergyPJ:          res.Energy.TotalPJ(),
		EnergyPerAccessNJ: res.Energy.PerAccessNJ(),
	}
	if res.Latency != nil {
		resp.P50 = res.Latency.Percentile(0.50)
		resp.P90 = res.Latency.Percentile(0.90)
		resp.P99 = res.Latency.Percentile(0.99)
	}
	if len(res.Cores) > 0 {
		resp.Cores = res.Options.Cores
		for _, c := range res.Cores {
			resp.PerCore = append(resp.PerCore, CoreResponse{
				Core: c.Core, IPC: c.IPC, AvgLatency: c.AvgLatency,
				HitRate: c.HitRate, RemoteShare: c.RemoteShare, Cycles: c.Cycles,
			})
		}
	}
	if d := res.Directory; d != nil {
		dr := &DirectoryResponse{SelfDrops: d.SelfDrops, CrossDrops: d.CrossDrops}
		for _, o := range d.Owners {
			dr.Owners = append(dr.Owners, DirectoryOwner{
				Owner: o, Live: d.Live[o], Fills: d.Fills[o], Hits: d.Hits[o], Drops: d.Drops[o],
			})
		}
		resp.Directory = dr
	}
	if tel := res.Telemetry; tel != nil {
		tr := &TelemetryResponse{}
		if tel.Heat != nil {
			tr.BankAccesses = tel.Heat.BankAccesses
			tr.BankHits = tel.Heat.BankHits
		}
		if tel.Series != nil {
			tr.Samples = tel.Series.Len()
			tr.MaxInFlight, _ = stats32Max(tel.Series.InFlight)
			tr.MaxPending, _ = stats32Max(tel.Series.Pending)
		}
		resp.Telemetry = tr
	}
	body, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}

func stats32Max(v []int32) (max int32, ok bool) {
	for _, x := range v {
		if x > max {
			max = x
		}
	}
	return max, len(v) > 0
}

// latencySummary condenses a merged stats.Latency for /v1/stats.
type latencySummary struct {
	Count      int64   `json:"count"`
	AvgLatency float64 `json:"avg_latency"`
	HitRate    float64 `json:"hit_rate"`
	P50        int64   `json:"p50"`
	P90        int64   `json:"p90"`
	P99        int64   `json:"p99"`
}

func summarize(l *stats.Latency) latencySummary {
	return latencySummary{
		Count:      l.Count,
		AvgLatency: l.Avg(),
		HitRate:    l.HitRate(),
		P50:        l.Percentile(0.50),
		P90:        l.Percentile(0.90),
		P99:        l.Percentile(0.99),
	}
}

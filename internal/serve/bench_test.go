package serve

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

// The BenchmarkServe* family measures the serving layer end to end over
// real HTTP (loopback TCP) with real simulations, reporting three
// custom units next to ns/op:
//
//   - req/s      — request throughput;
//   - p99-ns     — 99th-percentile request latency;
//   - hitrate    — result-cache hit rate over the measured window.
//
// `make bench` runs them and writes BENCH_serve.json via cmd/benchjson,
// giving serving performance the same committed trajectory as the
// cycle kernel's BENCH_kernel.json. The acceptance bar for the service
// is the Cold/Warm ns/op ratio: warm (content-addressed cache hit)
// must beat cold (full simulation) by >= 50x.

// benchPost issues one request and returns its latency.
func benchPost(b *testing.B, ts *httptest.Server, body string) time.Duration {
	t0 := time.Now()
	resp, err := ts.Client().Post(ts.URL+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		b.Fatalf("status %d", resp.StatusCode)
	}
	return time.Since(t0)
}

func reportLatencies(b *testing.B, lats []time.Duration, elapsed time.Duration) {
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p99 := lats[len(lats)*99/100]
	b.ReportMetric(float64(p99.Nanoseconds()), "p99-ns")
	if elapsed > 0 {
		b.ReportMetric(float64(len(lats))/elapsed.Seconds(), "req/s")
	}
}

func reportHitRate(b *testing.B, ts *httptest.Server) {
	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		b.Fatal(err)
	}
	total := st.Cache.Hits + st.Cache.Misses
	if total > 0 {
		b.ReportMetric(float64(st.Cache.Hits)/float64(total), "hitrate")
	}
}

// BenchmarkServeCold measures the miss path: every request is a
// distinct configuration (the seed varies), so each one runs a full
// design-F simulation through the scheduler.
func BenchmarkServeCold(b *testing.B) {
	_, ts := newTestServer(b, Config{Workers: 1})
	lats := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	t0 := time.Now()
	for i := 0; i < b.N; i++ {
		lats = append(lats, benchPost(b, ts, runBodyN(i)))
	}
	b.StopTimer()
	reportLatencies(b, lats, time.Since(t0))
	reportHitRate(b, ts)
}

// BenchmarkServeWarm measures the hot path of a shared service: the
// same configuration requested repeatedly, served from the
// content-addressed cache after one priming run.
func BenchmarkServeWarm(b *testing.B) {
	_, ts := newTestServer(b, Config{Workers: 1})
	benchPost(b, ts, runBodyN(0)) // prime
	lats := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	t0 := time.Now()
	for i := 0; i < b.N; i++ {
		lats = append(lats, benchPost(b, ts, runBodyN(0)))
	}
	b.StopTimer()
	reportLatencies(b, lats, time.Since(t0))
	reportHitRate(b, ts)
}

// BenchmarkServeMixed is the realistic blend: 90% of requests revisit a
// small working set of 8 configurations, 10% are new — the hit-rate
// column shows what the cache buys at that blend.
func BenchmarkServeMixed(b *testing.B) {
	_, ts := newTestServer(b, Config{Workers: 2})
	for i := 0; i < 8; i++ { // prime the working set
		benchPost(b, ts, runBodyN(i))
	}
	lats := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	t0 := time.Now()
	for i := 0; i < b.N; i++ {
		n := i % 8
		if i%10 == 9 {
			n = 1000 + i // a fresh configuration
		}
		lats = append(lats, benchPost(b, ts, runBodyN(n)))
	}
	b.StopTimer()
	reportLatencies(b, lats, time.Since(t0))
	reportHitRate(b, ts)
}

// runBodyN is the benchmark request family: design F (the fastest full
// configuration), 400 accesses, seed n.
func runBodyN(n int) string {
	return `{"design":"F","accesses":400,"seed":` + strconv.Itoa(n) + `}`
}

package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"nucanet/internal/cache"
	"nucanet/internal/core"
	"nucanet/internal/router"
	"nucanet/internal/routing"
	"nucanet/internal/trace"
)

func getJSON(t *testing.T, ts *httptest.Server, path string, dst any) *http.Response {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		t.Fatalf("GET %s: decode: %v", path, err)
	}
	return resp
}

// TestCatalogueEndpoints pins that the GET catalogues are derived from
// the live registries, not hand-maintained lists.
func TestCatalogueEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var ds struct {
		Designs []DesignInfo `json:"designs"`
	}
	getJSON(t, ts, "/v1/designs", &ds)
	byID := map[string]DesignInfo{}
	for _, d := range ds.Designs {
		byID[d.ID] = d
	}
	for _, id := range []string{"A", "B", "C", "D", "E", "F", "R", "G"} {
		if _, ok := byID[id]; !ok {
			t.Errorf("/v1/designs missing catalogue design %s", id)
		}
	}
	if a := byID["A"]; a.Topology != "mesh" || a.Routing != "xy" || a.CapacityKB != 16384 {
		t.Errorf("design A row wrong: %+v", a)
	}
	if f := byID["F"]; f.Routing != "spike" || f.Ways != 16 {
		t.Errorf("design F row wrong: %+v", f)
	}

	var ps struct {
		Policies []string `json:"policies"`
	}
	getJSON(t, ts, "/v1/policies", &ps)
	if !reflect.DeepEqual(ps.Policies, cache.PolicyNames()) {
		t.Errorf("/v1/policies = %v, want registry %v", ps.Policies, cache.PolicyNames())
	}

	var rs struct {
		Routings []string `json:"routings"`
	}
	getJSON(t, ts, "/v1/routings", &rs)
	if !reflect.DeepEqual(rs.Routings, routing.AlgorithmNames()) {
		t.Errorf("/v1/routings = %v, want registry %v", rs.Routings, routing.AlgorithmNames())
	}

	var rts struct {
		Routers []RouterInfo `json:"routers"`
	}
	getJSON(t, ts, "/v1/routers", &rts)
	var names []string
	for _, r := range rts.Routers {
		names = append(names, r.Name)
		if r.Default != (r.Name == router.DefaultEngine) {
			t.Errorf("/v1/routers: %s default flag = %v", r.Name, r.Default)
		}
		if r.Description == "" {
			t.Errorf("/v1/routers: %s has empty description", r.Name)
		}
	}
	if !reflect.DeepEqual(names, router.Names()) {
		t.Errorf("/v1/routers = %v, want registry %v", names, router.Names())
	}

	var bs struct {
		Benchmarks []string `json:"benchmarks"`
	}
	getJSON(t, ts, "/v1/benchmarks", &bs)
	if !reflect.DeepEqual(bs.Benchmarks, trace.Names()) {
		t.Errorf("/v1/benchmarks = %v, want registry %v", bs.Benchmarks, trace.Names())
	}

	var es struct {
		Experiments []ExperimentInfo `json:"experiments"`
	}
	getJSON(t, ts, "/v1/experiments", &es)
	var expNames []string
	inAll := map[string]bool{}
	for _, e := range es.Experiments {
		expNames = append(expNames, e.Name)
		inAll[e.Name] = e.InAll
		if e.About == "" {
			t.Errorf("/v1/experiments: %s has empty about", e.Name)
		}
	}
	if !reflect.DeepEqual(expNames, core.ExperimentNames()) {
		t.Errorf("/v1/experiments = %v, want registry %v", expNames, core.ExperimentNames())
	}
	if all, ok := inAll["telemetry"]; !ok || all {
		t.Errorf("/v1/experiments: telemetry in_all = %v, want listed false", inAll["telemetry"])
	}
	if all, ok := inAll["f9"]; !ok || !all {
		t.Errorf("/v1/experiments: f9 in_all = %v, want listed true", inAll["f9"])
	}
}

// TestStatsReflectsTraffic pins the /v1/stats counters and the merged
// aggregate across a miss and a hit of the same configuration.
func TestStatsReflectsTraffic(t *testing.T) {
	g := newGatedRun()
	close(g.release) // never block; gatedRun still records and resolves
	_, ts := newTestServer(t, Config{Workers: 2, Run: g.run})

	body := runBody(1)
	if resp, b := postAs(t, ts, "c", body); resp.StatusCode != 200 {
		t.Fatalf("miss: %d %s", resp.StatusCode, b)
	}
	if resp, _ := postAs(t, ts, "c", body); resp.Header.Get("X-Nucad-Cache") != "hit" {
		t.Fatal("second request was not a cache hit")
	}

	var st StatsResponse
	getJSON(t, ts, "/v1/stats", &st)
	if st.Served != 2 || st.Cache.Hits != 1 || st.Cache.Size != 1 {
		t.Fatalf("served/hits/size = %d/%d/%d, want 2/1/1", st.Served, st.Cache.Hits, st.Cache.Size)
	}
	// Both responses (the run and its cache hit) merge into the served
	// aggregate: 2 runs x 100 accesses.
	if st.Aggregate.Runs != 2 || st.Aggregate.Accesses != 200 {
		t.Fatalf("aggregate runs/accesses = %d/%d, want 2/200", st.Aggregate.Runs, st.Aggregate.Accesses)
	}
	if st.Workers != 2 || st.QueueDepth != 16 {
		t.Fatalf("workers/depth = %d/%d, want 2/16", st.Workers, st.QueueDepth)
	}

	var hz struct {
		Status string `json:"status"`
	}
	if resp := getJSON(t, ts, "/v1/healthz", &hz); resp.StatusCode != 200 || hz.Status != "ok" {
		t.Fatalf("healthz = %d %q, want 200 ok", resp.StatusCode, hz.Status)
	}
}

package serve

import (
	"fmt"
	"testing"

	"nucanet/internal/core"
)

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	put := func(k string) { c.Put(k, []byte(k), core.Result{}) }
	get := func(k string) bool { _, _, ok := c.Get(k); return ok }

	put("a")
	put("b")
	if !get("a") { // refresh a; b is now LRU
		t.Fatal("a missing")
	}
	put("c") // evicts b
	if get("b") {
		t.Fatal("b should have been evicted (LRU)")
	}
	if !get("a") || !get("c") {
		t.Fatal("a and c should survive")
	}

	st := c.Stats()
	if st.Evictions != 1 || st.Size != 2 || st.Capacity != 2 {
		t.Fatalf("stats = %+v, want 1 eviction, size 2/2", st)
	}
	// get(a) hit, get(b) miss, get(a) hit, get(c) hit.
	if st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 3/1", st.Hits, st.Misses)
	}
}

func TestCacheBodyRoundTrip(t *testing.T) {
	c := NewCache(0) // default capacity
	res := core.Result{Cycles: 123}
	c.Put("k", []byte("body"), res)
	body, got, ok := c.Get("k")
	if !ok || string(body) != "body" || got.Cycles != 123 {
		t.Fatalf("Get = %q, %+v, %v", body, got, ok)
	}
	// Re-put refreshes in place without growing.
	c.Put("k", []byte("body2"), res)
	if body, _, _ := c.Get("k"); string(body) != "body2" {
		t.Fatalf("re-put did not replace body: %q", body)
	}
	if st := c.Stats(); st.Size != 1 {
		t.Fatalf("size = %d, want 1", st.Size)
	}
}

func TestCacheBoundedUnderChurn(t *testing.T) {
	c := NewCache(8)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%d", i), nil, core.Result{})
	}
	st := c.Stats()
	if st.Size != 8 || st.Evictions != 92 {
		t.Fatalf("size/evictions = %d/%d, want 8/92", st.Size, st.Evictions)
	}
	// Only the 8 most recent keys remain.
	for i := 92; i < 100; i++ {
		if _, _, ok := c.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Fatalf("recent key k%d evicted", i)
		}
	}
}

package serve

import (
	"errors"
	"runtime"
	"sync"
)

// ErrBusy is returned by Submit when the client's queue is at its bound;
// the HTTP layer maps it to 429 with a Retry-After hint.
var ErrBusy = errors.New("serve: client queue full")

// ErrClosed is returned by Submit after Close; the HTTP layer maps it to
// 503.
var ErrClosed = errors.New("serve: scheduler closed")

// Sched fans jobs out to a bounded worker pool with per-client fair
// queuing: each client gets its own FIFO of at most depth pending jobs,
// and workers drain the queues round-robin, so a client flooding its
// queue delays only itself — a light client's next job is at most one
// round-robin lap away, never behind the heavy client's whole backlog.
// Submissions beyond a client's depth are rejected immediately (ErrBusy)
// instead of queued, which is the service's backpressure signal.
//
// Close drains: it stops new submissions and returns only after every
// queued and in-flight job has run, so no accepted request ever loses
// its response during graceful shutdown.
type Sched struct {
	mu      sync.Mutex
	cond    *sync.Cond
	depth   int
	workers int

	queues   map[string]*clientQ
	ring     []*clientQ // clients with pending jobs, round-robin order
	next     int        // ring cursor
	pending  int
	inflight int
	rejected uint64
	closed   bool

	wg sync.WaitGroup
}

type clientQ struct {
	id   string
	jobs []func()
}

// NewSched starts a scheduler with the given worker count (<= 0 selects
// GOMAXPROCS) and per-client queue depth (<= 0 selects 16).
func NewSched(workers, depth int) *Sched {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if depth <= 0 {
		depth = 16
	}
	s := &Sched{
		depth:   depth,
		workers: workers,
		queues:  map[string]*clientQ{},
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

// Workers returns the pool size.
func (s *Sched) Workers() int { return s.workers }

// Depth returns the per-client queue bound.
func (s *Sched) Depth() int { return s.depth }

// Submit enqueues a job for a client. It never blocks: the job is either
// accepted (and will eventually run, even across Close) or rejected with
// ErrBusy (queue bound hit) or ErrClosed (shutting down).
func (s *Sched) Submit(client string, job func()) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	q := s.queues[client]
	if q == nil {
		q = &clientQ{id: client}
		s.queues[client] = q
	}
	if len(q.jobs) >= s.depth {
		s.rejected++
		return ErrBusy
	}
	if len(q.jobs) == 0 {
		s.ring = append(s.ring, q)
	}
	q.jobs = append(q.jobs, job)
	s.pending++
	s.cond.Signal()
	return nil
}

// Closed reports whether Close has started (the scheduler is draining
// or drained); healthz uses it to signal load balancers.
func (s *Sched) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Load reports the queued and in-flight job counts plus the lifetime
// rejection count (for stats and Retry-After estimation).
func (s *Sched) Load() (pending, inflight int, rejected uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending, s.inflight, s.rejected
}

// Close stops new submissions, waits for every queued and in-flight job
// to finish, and stops the workers. Safe to call once.
func (s *Sched) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	for s.pending > 0 || s.inflight > 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *Sched) worker() {
	defer s.wg.Done()
	s.mu.Lock()
	for {
		for s.pending == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.pending == 0 && s.closed {
			s.mu.Unlock()
			return
		}
		// One job from the next client in the ring. Removing an emptied
		// client leaves next pointing at its successor, so the lap
		// continues where it left off either way.
		if s.next >= len(s.ring) {
			s.next = 0
		}
		q := s.ring[s.next]
		job := q.jobs[0]
		q.jobs = q.jobs[1:]
		if len(q.jobs) == 0 {
			s.ring = append(s.ring[:s.next], s.ring[s.next+1:]...)
		} else {
			s.next++
		}
		s.pending--
		s.inflight++
		s.mu.Unlock()

		job()

		s.mu.Lock()
		s.inflight--
		if s.closed && s.pending == 0 && s.inflight == 0 {
			s.cond.Broadcast() // wake Close and idle workers
		}
	}
}

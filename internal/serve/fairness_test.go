package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"nucanet/internal/config"
	"nucanet/internal/core"
)

// gatedRun is an injectable fake simulation: every call records its
// seed in start order, and calls block until release is closed (the
// first call additionally signals started). The returned Result carries
// enough state to marshal.
type gatedRun struct {
	mu      sync.Mutex
	order   []uint64
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func newGatedRun() *gatedRun {
	return &gatedRun{started: make(chan struct{}), release: make(chan struct{})}
}

func (g *gatedRun) run(o core.Options) (core.Result, error) {
	g.mu.Lock()
	g.order = append(g.order, o.Seed)
	g.mu.Unlock()
	g.once.Do(func() { close(g.started) })
	<-g.release
	res, err := fakeResult(o)
	return res, err
}

// fakeResult builds a marshalable Result without simulating.
func fakeResult(o core.Options) (core.Result, error) {
	d, err := config.Resolve(o.DesignID, o.Design)
	if err != nil {
		return core.Result{}, err
	}
	return core.Result{Options: o, Design: *d, IPC: 0.25, Cycles: int64(o.Accesses)}, nil
}

// runBody builds a /v1/run request for one seed.
func runBody(seed int) string {
	return fmt.Sprintf(`{"design":"F","accesses":100,"seed":%d}`, seed)
}

// postAs POSTs a run body under a client identity.
func postAs(t *testing.T, ts *httptest.Server, client, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/v1/run", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Client", client)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("POST as %s: %v", client, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// serverPending reads the scheduler backlog through the public stats
// endpoint.
func serverPending(t *testing.T, ts *httptest.Server) int {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st.Pending
}

// TestServeFairnessAndBackpressure is the serving-layer table test of
// the fairness contract, against a gated fake simulation on a single
// worker so scheduling order is deterministic:
//
//   - a heavy client saturating its queue gets 429 with Retry-After;
//   - a light client is still accepted at that moment (per-client
//     bound, not global) and its run starts after at most one more
//     heavy run (round-robin, no starvation);
//   - every accepted request completes with 200.
func TestServeFairnessAndBackpressure(t *testing.T) {
	g := newGatedRun()
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2, Run: g.run})

	type reply struct {
		status int
		body   []byte
	}
	replies := make(chan reply, 8)
	post := func(client string, seed int) {
		resp, b := postAs(t, ts, client, runBody(seed))
		replies <- reply{resp.StatusCode, b}
	}

	// Seed 1 occupies the worker. Seeds 2, 3 then fill heavy's queue
	// (depth 2), submitted one at a time so enqueue order is pinned.
	go post("heavy", 1)
	<-g.started
	go post("heavy", 2)
	waitFor(t, "first heavy job to queue", func() bool { return serverPending(t, ts) == 1 })
	go post("heavy", 3)
	waitFor(t, "heavy backlog to queue", func() bool { return serverPending(t, ts) == 2 })

	// Heavy is at its bound: the next distinct request is rejected with
	// 429 and a Retry-After hint.
	resp, body := postAs(t, ts, "heavy", runBody(4))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-bound heavy request: status %d, body %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	var e struct {
		Error struct {
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error.Message == "" {
		t.Fatalf("429 body is not a structured error: %s", body)
	}

	// The light client is under its own bound: accepted.
	go post("light", 9)
	waitFor(t, "light request to queue", func() bool { return serverPending(t, ts) == 3 })

	close(g.release)
	for i := 0; i < 4; i++ {
		r := <-replies
		if r.status != http.StatusOK {
			t.Fatalf("accepted request got status %d: %s", r.status, r.body)
		}
	}

	// Round-robin pinned: after the in-flight run (seed 1), the worker
	// alternates heavy/light — the light run (seed 9) starts after one
	// heavy run, not after the whole heavy backlog.
	g.mu.Lock()
	order := append([]uint64(nil), g.order...)
	g.mu.Unlock()
	want := []uint64{1, 2, 9, 3}
	if len(order) != len(want) {
		t.Fatalf("run order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("run order %v, want %v (light client starved)", order, want)
		}
	}

	// The rejection shows up in /v1/stats.
	respS, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer respS.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(respS.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Rejected != 1 || st.Served != 4 {
		t.Fatalf("stats rejected/served = %d/%d, want 1/4", st.Rejected, st.Served)
	}
}

// TestServeGracefulShutdownDrains pins that Close waits for accepted
// runs: an in-flight request completes with its full 200 response, and
// requests arriving after Close get 503.
func TestServeGracefulShutdownDrains(t *testing.T) {
	g := newGatedRun()
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, Run: g.run})

	type reply struct {
		status int
		body   []byte
	}
	replies := make(chan reply, 1)
	go func() {
		resp, b := postAs(t, ts, "c", runBody(1))
		replies <- reply{resp.StatusCode, b}
	}()
	<-g.started

	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	select {
	case <-closed:
		t.Fatal("Close returned with a run in flight")
	default:
	}

	// Wait until the scheduler has observably entered draining (healthz
	// flips to 503) before probing — probing /v1/run earlier could race
	// Close and enqueue a blocked run, deadlocking the test.
	waitFor(t, "healthz to report draining", func() bool {
		resp, err := ts.Client().Get(ts.URL + "/v1/healthz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusServiceUnavailable
	})
	resp, body := postAs(t, ts, "d", runBody(2))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: status %d, body %s", resp.StatusCode, body)
	}

	close(g.release)
	<-closed
	r := <-replies
	if r.status != http.StatusOK {
		t.Fatalf("drained request lost its response: status %d, body %s", r.status, r.body)
	}
	var rr RunResponse
	if err := json.Unmarshal(r.body, &rr); err != nil {
		t.Fatalf("drained response body corrupt: %v: %s", err, r.body)
	}
}

package serve

import (
	"sync"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSchedRoundRobinInterleavesClients pins the fairness property at
// the scheduler level with one worker, where execution order is fully
// deterministic: with a heavy client's backlog queued ahead of a light
// client's single job, the light job runs after exactly one heavy job,
// not after the whole backlog.
func TestSchedRoundRobinInterleavesClients(t *testing.T) {
	s := NewSched(1, 8)
	defer s.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	var mu sync.Mutex
	var order []string
	job := func(name string, gate bool) func() {
		return func() {
			if gate {
				close(started)
				<-release
			}
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
		}
	}

	// h0 occupies the single worker; h1..h3 queue for "heavy"; then one
	// job queues for "light".
	if err := s.Submit("heavy", job("h0", true)); err != nil {
		t.Fatal(err)
	}
	<-started
	for _, n := range []string{"h1", "h2", "h3"} {
		if err := s.Submit("heavy", job(n, false)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Submit("light", job("l0", false)); err != nil {
		t.Fatal(err)
	}
	close(release)
	waitFor(t, "all jobs to finish", func() bool {
		p, i, _ := s.Load()
		return p == 0 && i == 0
	})

	mu.Lock()
	defer mu.Unlock()
	want := []string{"h0", "h1", "l0", "h2", "h3"}
	if len(order) != len(want) {
		t.Fatalf("ran %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("round-robin order %v, want %v (light client starved behind heavy backlog)", order, want)
		}
	}
}

// TestSchedDepthBoundPerClient pins that the queue bound is per client:
// a heavy client at its bound is rejected while a light client is still
// accepted.
func TestSchedDepthBoundPerClient(t *testing.T) {
	s := NewSched(1, 2)
	defer s.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	if err := s.Submit("heavy", func() { close(started); <-release }); err != nil {
		t.Fatal(err)
	}
	<-started

	// The in-flight job freed heavy's queue; two more fill it.
	for i := 0; i < 2; i++ {
		if err := s.Submit("heavy", func() {}); err != nil {
			t.Fatalf("queued submit %d: %v", i, err)
		}
	}
	if err := s.Submit("heavy", func() {}); err != ErrBusy {
		t.Fatalf("over-bound submit: got %v, want ErrBusy", err)
	}
	if err := s.Submit("light", func() {}); err != nil {
		t.Fatalf("light client rejected while under its own bound: %v", err)
	}
	if _, _, rejected := s.Load(); rejected != 1 {
		t.Fatalf("rejected counter = %d, want 1", rejected)
	}
}

// TestSchedCloseDrains pins graceful shutdown: queued and in-flight
// jobs all run before Close returns, and later submissions fail with
// ErrClosed.
func TestSchedCloseDrains(t *testing.T) {
	s := NewSched(2, 8)
	started := make(chan struct{})
	release := make(chan struct{})
	var ran sync.WaitGroup
	ran.Add(5)
	if err := s.Submit("a", func() { close(started); <-release; ran.Done() }); err != nil {
		t.Fatal(err)
	}
	<-started
	for i := 0; i < 4; i++ {
		client := "a"
		if i%2 == 0 {
			client = "b"
		}
		if err := s.Submit(client, func() { ran.Done() }); err != nil {
			t.Fatal(err)
		}
	}

	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	select {
	case <-closed:
		t.Fatal("Close returned while a job was still in flight")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	<-closed
	ran.Wait() // every accepted job ran

	if err := s.Submit("a", func() {}); err != ErrClosed {
		t.Fatalf("submit after Close: got %v, want ErrClosed", err)
	}
}

package serve

import (
	"bytes"
	"net/http"
	"testing"
)

// TestServeShardedServerIsCacheAndBodyInvariant pins the two halves of
// the server-side sharding contract: a server configured with kernel
// shards produces bodies byte-identical to a sequential server (the
// content address keys the model, not the execution), and its warm
// cache serves hits exactly like a sequential one — the shard setting
// never invalidates or forks the cache.
func TestServeShardedServerIsCacheAndBodyInvariant(t *testing.T) {
	_, seqTS := newTestServer(t, Config{Workers: 2})
	_, seqBody := postRun(t, seqTS, detReq)

	_, shTS := newTestServer(t, Config{Workers: 2, Shards: 4})
	resp, cold := postRun(t, shTS, detReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sharded cold: status %d: %s", resp.StatusCode, cold)
	}
	if got := resp.Header.Get("X-Nucad-Cache"); got != "miss" {
		t.Fatalf("sharded cold: X-Nucad-Cache = %q, want miss", got)
	}
	if !bytes.Equal(seqBody, cold) {
		t.Fatalf("sharded server body differs from sequential server:\nseq:     %s\nsharded: %s",
			seqBody, cold)
	}

	resp, warm := postRun(t, shTS, detReq)
	if got := resp.Header.Get("X-Nucad-Cache"); got != "hit" {
		t.Fatalf("sharded warm: X-Nucad-Cache = %q, want hit", got)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("sharded warm hit differs from its own cold body")
	}
}

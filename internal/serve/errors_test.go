package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"nucanet/internal/cache"
	"nucanet/internal/router"
)

// TestRunErrorsAreStructured enumerates every invalid-field case of the
// run request (the latent-gap satellite: config.Resolve /
// Options.Validate error paths must surface to HTTP clients as
// structured 400 JSON, never as raw internal error strings). Each case
// checks status, the error's field attribution, a message fragment, and
// — via assertNoInternalLeak — that no internal package prefix, module
// path, or Go syntax leaks into the payload.
func TestRunErrorsAreStructured(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxAccesses: 1000})

	cases := []struct {
		name     string
		body     string
		wantCode int
		field    string
		fragment string
	}{
		{"malformed json", `{"design":`, 400, "", "malformed JSON"},
		{"empty body", ``, 400, "", "empty request body"},
		{"trailing garbage", `{} {}`, 400, "", "unexpected data"},
		{"unknown field", `{"designn":"A"}`, 400, "designn", `unknown field "designn"`},
		{"wrong type", `{"accesses":"ten"}`, 400, "accesses", "wrong JSON type"},
		{"unknown design", `{"design":"Z"}`, 400, "design", `unknown design "Z"`},
		{"unknown policy", `{"policy":"mru"}`, 400, "policy", `unknown policy "mru"`},
		{"unknown mode", `{"mode":"broadcast"}`, 400, "mode", `unknown mode "broadcast"`},
		{"unknown router", `{"router":"optical"}`, 400, "router", `unknown router "optical"`},
		{"unknown benchmark", `{"benchmark":"linpack"}`, 400, "benchmark", `unknown benchmark "linpack"`},
		{"negative accesses", `{"accesses":-5}`, 400, "accesses", "must be positive"},
		{"excessive accesses", `{"accesses":5000000}`, 400, "accesses", "at most 1000"},
		{"negative sample_every", `{"telemetry":{"sample_every":-1}}`, 400, "telemetry.sample_every", ">= 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postRun(t, ts, tc.body)
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("status %d, want %d; body: %s", resp.StatusCode, tc.wantCode, body)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("Content-Type %q, want application/json", ct)
			}
			var e struct {
				Error struct {
					Field   string `json:"field"`
					Message string `json:"message"`
				} `json:"error"`
			}
			if err := json.Unmarshal(body, &e); err != nil {
				t.Fatalf("body is not a structured error: %v: %s", err, body)
			}
			if e.Error.Field != tc.field {
				t.Errorf("field = %q, want %q", e.Error.Field, tc.field)
			}
			if !strings.Contains(e.Error.Message, tc.fragment) {
				t.Errorf("message %q does not contain %q", e.Error.Message, tc.fragment)
			}
			assertNoInternalLeak(t, string(body))
		})
	}
}

// assertNoInternalLeak fails when an HTTP payload carries internal
// error text: package error prefixes, the module path, file locations,
// or Go formatting artifacts.
func assertNoInternalLeak(t *testing.T, body string) {
	t.Helper()
	for _, leak := range []string{
		"config:", "core:", "cache:", "routing:", "router:", "topology:", "trace:",
		"network:", "place:", "fleet:", "area:", "sim:",
		"nucanet/", "internal/", ".go:", "%!",
	} {
		if strings.Contains(body, leak) {
			t.Errorf("response leaks internal detail %q: %s", leak, body)
		}
	}
}

// TestRunErrorMessagesNameTheCatalogue pins that rejections teach the
// caller the valid vocabulary (from the registries) instead of echoing
// internals.
func TestRunErrorMessagesNameTheCatalogue(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, body := postRun(t, ts, `{"design":"Z"}`)
	for _, id := range []string{"A", "B", "C", "D", "E", "F", "G", "R"} {
		if !strings.Contains(string(body), id) {
			t.Fatalf("design rejection does not list catalogue id %s: %s", id, body)
		}
	}
	_, body = postRun(t, ts, `{"policy":"mru"}`)
	for _, p := range cache.PolicyNames() {
		if !strings.Contains(string(body), p) {
			t.Fatalf("policy rejection does not list %s: %s", p, body)
		}
	}
	_, body = postRun(t, ts, `{"router":"optical"}`)
	for _, name := range router.Names() {
		if !strings.Contains(string(body), name) {
			t.Fatalf("router rejection does not list %s: %s", name, body)
		}
	}
}

// TestUnknownPathAndMethod pins the mux behavior for bad routes.
func TestUnknownPathAndMethod(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := ts.Client().Get(ts.URL + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path: status %d, want 404", resp.StatusCode)
	}
	resp, err = ts.Client().Get(ts.URL + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/run: status %d, want 405", resp.StatusCode)
	}
}

// Package serve is the simulation-as-a-service layer: it turns the
// deterministic core.Run into a shared HTTP service (cmd/nucad) that can
// absorb heavy repeat traffic.
//
// Three properties carry the design:
//
//   - Content addressing. A run is fully keyed by core.CanonicalKey of
//     its resolved configuration, so completed results live in a bounded
//     LRU (cache.go) and repeat queries — the hot path of a shared
//     service — are O(1) lookups whose responses are byte-identical to a
//     fresh run.
//   - Fairness and backpressure. Cache misses are scheduled onto a
//     bounded worker pool (sized by core.Engine's parallelism) through
//     per-client round-robin queues with a per-client depth bound
//     (sched.go); a client exceeding its bound gets 429 + Retry-After
//     instead of queue time, and can never starve another client.
//   - Coalescing. Concurrent identical requests share one execution:
//     the first becomes the leader, the rest wait for its bytes.
//
// Graceful shutdown (Close) stops new work and drains every accepted
// run, so no in-flight client loses its response.
package serve

import (
	"encoding/json"
	"fmt"
	"log"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"nucanet/internal/cache"
	"nucanet/internal/config"
	"nucanet/internal/core"
	"nucanet/internal/router"
	"nucanet/internal/routing"
	"nucanet/internal/trace"
)

// Config sizes a Server. Zero values select defaults.
type Config struct {
	// Workers is the simulation pool size; <= 0 selects GOMAXPROCS.
	Workers int
	// QueueDepth bounds each client's pending runs; <= 0 selects 16.
	QueueDepth int
	// CacheEntries bounds the result cache; <= 0 selects 1024.
	CacheEntries int
	// MaxAccesses caps the per-request access count; <= 0 selects 200000.
	MaxAccesses int
	// Shards runs every cache-miss simulation on N kernel shards — a
	// server-side execution knob (nucad -shards). It never enters the
	// content address: results are bit-identical at any shard count, so a
	// cached body stays valid whatever value the server runs with, and a
	// warm hit is served regardless of the current setting.
	Shards int
	// Run executes one simulation; nil selects core.Run. Tests inject
	// gated fakes here to exercise fairness and shutdown deterministically.
	Run func(core.Options) (core.Result, error)
}

// Server owns the scheduler, the result cache, and the service
// counters. Build one with New, expose it with Handler, drain it with
// Close.
type Server struct {
	cfg   Config
	eng   *core.Engine
	sched *Sched
	cache *Cache
	run   func(core.Options) (core.Result, error)
	start time.Time

	mu       sync.Mutex
	inflight map[string]*call // coalescing: canonical key -> leader's call
	agg      core.Aggregate   // over every *served* response (hits re-merge)

	served    atomic.Uint64 // 200 responses to /v1/run
	coalesced atomic.Uint64 // responses served by joining a leader's run
	failed    atomic.Uint64 // 5xx responses to /v1/run
	runNS     atomic.Int64  // cumulative simulation time, for Retry-After
	runs      atomic.Int64
}

// call is one in-flight execution; followers block on done and then
// read body/err.
type call struct {
	done chan struct{}
	body []byte
	res  core.Result
	err  error
}

// New builds a Server. The worker pool is the existing parallel
// experiment engine's: core.NewEngine resolves the worker count and the
// scheduler runs that many simulations concurrently.
func New(cfg Config) *Server {
	if cfg.MaxAccesses <= 0 {
		cfg.MaxAccesses = 200000
	}
	run := cfg.Run
	if run == nil {
		run = core.Run
	}
	eng := core.NewEngine(cfg.Workers)
	return &Server{
		cfg:      cfg,
		eng:      eng,
		sched:    NewSched(eng.Workers(), cfg.QueueDepth),
		cache:    NewCache(cfg.CacheEntries),
		run:      run,
		start:    time.Now(),
		inflight: map[string]*call{},
	}
}

// Close drains the scheduler: accepted runs complete and respond, new
// submissions get 503.
func (s *Server) Close() { s.sched.Close() }

// Workers returns the simulation pool size.
func (s *Server) Workers() int { return s.sched.Workers() }

// Handler returns the service mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("GET /v1/designs", s.handleDesigns)
	mux.HandleFunc("GET /v1/policies", s.handlePolicies)
	mux.HandleFunc("GET /v1/routings", s.handleRoutings)
	mux.HandleFunc("GET /v1/routers", s.handleRouters)
	mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

// clientID identifies the requester for fair queuing: the X-Client
// header when present (the load driver and tests set it), else the
// remote address without the ephemeral port.
func clientID(r *http.Request) string {
	if c := r.Header.Get("X-Client"); c != "" {
		return c
	}
	host := r.RemoteAddr
	for i := len(host) - 1; i >= 0; i-- {
		if host[i] == ':' {
			return host[:i]
		}
	}
	return host
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if aerr := decodeBody(r, &req); aerr != nil {
		writeError(w, aerr)
		return
	}
	opts, aerr := req.options(s.cfg.MaxAccesses)
	if aerr != nil {
		writeError(w, aerr)
		return
	}
	// Applied after validation and before keying: CanonicalKey excludes
	// Shards, so the address (and any cached entry) is shard-invariant.
	opts.Shards = s.cfg.Shards
	key, err := core.CanonicalKey(opts)
	if err != nil {
		// options() validated everything CanonicalKey resolves, so this
		// is unreachable; still, never forward the internal text.
		writeError(w, badField("", "invalid run configuration"))
		return
	}

	// Flight map and cache are checked under one lock acquisition. The
	// execute() ordering — cache.Put strictly before the flight closes,
	// which is strictly before the leader deletes the flight entry —
	// makes this airtight: if the flight is absent here, the cache
	// lookup below cannot miss a completed identical run, so an
	// identical burst executes exactly one simulation (pinned by
	// TestServeCoalescesConcurrentIdenticalRequests).
	s.mu.Lock()
	if c, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		<-c.done
		s.coalesced.Add(1)
		s.finish(w, "coalesced", c)
		return
	}
	if body, res, ok := s.cache.Get(key); ok {
		s.mu.Unlock()
		s.respond(w, "hit", body, res)
		return
	}
	c := &call{done: make(chan struct{})}
	if err := s.sched.Submit(clientID(r), func() { s.execute(key, opts, c) }); err != nil {
		s.mu.Unlock()
		s.reject(w, err)
		return
	}
	s.inflight[key] = c
	s.mu.Unlock()

	<-c.done
	s.mu.Lock()
	delete(s.inflight, key)
	s.mu.Unlock()
	s.finish(w, "miss", c)
}

// execute runs one simulation on a scheduler worker, publishes the
// result to the cache (before releasing waiters, so a late requester
// can never miss both the flight and the cache), and releases the
// leader and any coalesced followers.
func (s *Server) execute(key string, opts core.Options, c *call) {
	t0 := time.Now()
	res, err := s.run(opts)
	if err != nil {
		c.err = err
		close(c.done)
		return
	}
	s.runNS.Add(int64(time.Since(t0)))
	s.runs.Add(1)
	body, err := buildResponse(key, res)
	if err != nil {
		c.err = err
		close(c.done)
		return
	}
	c.body, c.res = body, res
	s.cache.Put(key, body, res)
	close(c.done)
}

// finish responds for a completed call.
func (s *Server) finish(w http.ResponseWriter, source string, c *call) {
	if c.err != nil {
		// Options were validated before scheduling, so a failure here is
		// a service-side defect: log the detail, return a clean 500.
		log.Printf("serve: run failed: %v", c.err)
		s.failed.Add(1)
		writeError(w, &apiError{status: http.StatusInternalServerError, Message: "simulation failed"})
		return
	}
	s.respond(w, source, c.body, c.res)
}

// respond serves a completed run body and folds its statistics into the
// running aggregate. The cache source travels in a header so hit and
// miss bodies stay byte-identical.
func (s *Server) respond(w http.ResponseWriter, source string, body []byte, res core.Result) {
	s.mu.Lock()
	s.agg.Add(res)
	s.mu.Unlock()
	s.served.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Nucad-Cache", source)
	w.Write(body)
}

// reject maps scheduler refusals: a full client queue becomes 429 with
// a Retry-After estimated from the observed mean run time and the
// current backlog; a draining scheduler becomes 503.
func (s *Server) reject(w http.ResponseWriter, err error) {
	if err == ErrClosed {
		writeError(w, &apiError{status: http.StatusServiceUnavailable, Message: "server is shutting down"})
		return
	}
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	writeError(w, &apiError{
		status:  http.StatusTooManyRequests,
		Message: fmt.Sprintf("client queue full (depth %d); retry after the indicated delay", s.sched.Depth()),
	})
}

// retryAfterSeconds estimates when a queue slot frees: the backlog
// ahead, spread over the workers, at the observed mean run time.
func (s *Server) retryAfterSeconds() int {
	mean := time.Second
	if n := s.runs.Load(); n > 0 {
		mean = time.Duration(s.runNS.Load() / n)
	}
	pending, inflight, _ := s.sched.Load()
	laps := (pending+inflight)/s.sched.Workers() + 1
	secs := int(math.Ceil((time.Duration(laps) * mean).Seconds()))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// DesignInfo is one /v1/designs row.
type DesignInfo struct {
	ID          string `json:"id"`
	Description string `json:"description"`
	Topology    string `json:"topology"`
	Routing     string `json:"routing"`
	Columns     int    `json:"columns"`
	Ways        int    `json:"ways"`
	CapacityKB  int    `json:"capacity_kb"`
}

func (s *Server) handleDesigns(w http.ResponseWriter, r *http.Request) {
	var out []DesignInfo
	for _, d := range append(config.Designs(), config.ExtraDesigns()...) {
		info := DesignInfo{
			ID: d.ID, Description: d.Description, Topology: d.Topology,
			Columns: d.Columns(), Ways: d.Ways(), CapacityKB: d.CapacityKB(),
		}
		if topo, err := d.Build(); err == nil {
			info.Routing = topo.Routing
		}
		out = append(out, info)
	}
	writeJSON(w, struct {
		Designs []DesignInfo `json:"designs"`
	}{out})
}

func (s *Server) handlePolicies(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, struct {
		Policies []string `json:"policies"`
	}{cache.PolicyNames()})
}

func (s *Server) handleRoutings(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, struct {
		Routings []string `json:"routings"`
	}{routing.AlgorithmNames()})
}

// RouterInfo is one /v1/routers row.
type RouterInfo struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Deflecting  bool   `json:"deflecting"`
	Default     bool   `json:"default"`
}

func (s *Server) handleRouters(w http.ResponseWriter, r *http.Request) {
	var out []RouterInfo
	for _, name := range router.Names() {
		b, err := router.ByName(name)
		if err != nil {
			continue
		}
		out = append(out, RouterInfo{
			Name: name, Description: b.Description,
			Deflecting: b.Deflecting, Default: name == router.DefaultEngine,
		})
	}
	writeJSON(w, struct {
		Routers []RouterInfo `json:"routers"`
	}{out})
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, struct {
		Benchmarks []string `json:"benchmarks"`
	}{trace.Names()})
}

// ExperimentInfo is one /v1/experiments row, straight from the core
// experiment registry: whatever the serving binary registered (including
// extension experiments like "placement") is what the catalogue lists.
type ExperimentInfo struct {
	Name  string `json:"name"`
	About string `json:"about"`
	// InAll marks experiments paperbench's "-exp all" includes.
	InAll bool `json:"in_all"`
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	var out []ExperimentInfo
	for _, name := range core.ExperimentNames() {
		e, err := core.ExperimentByName(name)
		if err != nil {
			continue
		}
		out = append(out, ExperimentInfo{Name: e.Name, About: e.About, InAll: e.InAll})
	}
	writeJSON(w, struct {
		Experiments []ExperimentInfo `json:"experiments"`
	}{out})
}

// handleHealthz reports ok while serving and 503/"draining" once Close
// has started, so load balancers stop routing to a stopping instance.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	w.Header().Set("Content-Type", "application/json")
	if s.sched.Closed() {
		status = "draining"
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(struct {
		Status string `json:"status"`
	}{status})
}

// StatsResponse is the /v1/stats body: service counters, cache
// counters, queue state, and the aggregate over every served response
// (cache hits merge the cached run's stats again, so the aggregate
// reflects traffic served, not just simulations executed).
type StatsResponse struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Workers       int     `json:"workers"`
	QueueDepth    int     `json:"queue_depth"`
	Pending       int     `json:"pending"`
	Inflight      int     `json:"inflight"`
	Rejected      uint64  `json:"rejected"`
	Served        uint64  `json:"served"`
	Coalesced     uint64  `json:"coalesced"`
	Failed        uint64  `json:"failed"`

	Cache CacheStats `json:"cache"`

	Aggregate AggregateStats `json:"aggregate"`
}

// AggregateStats is the merged-stats rollup of served traffic.
type AggregateStats struct {
	Runs          int            `json:"runs"`
	Accesses      int64          `json:"accesses"`
	Latency       latencySummary `json:"latency"`
	FlitsInjected uint64         `json:"flits_injected"`
	MemReads      uint64         `json:"mem_reads"`
	MemWriteBacks uint64         `json:"mem_writebacks"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	pending, inflight, rejected := s.sched.Load()
	s.mu.Lock()
	agg := AggregateStats{
		Runs:          s.agg.Runs,
		Accesses:      s.agg.Accesses,
		Latency:       summarize(&s.agg.Latency),
		FlitsInjected: s.agg.Network.FlitsInjected,
		MemReads:      s.agg.MemReads,
		MemWriteBacks: s.agg.MemWB,
	}
	s.mu.Unlock()
	writeJSON(w, StatsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workers:       s.sched.Workers(),
		QueueDepth:    s.sched.Depth(),
		Pending:       pending,
		Inflight:      inflight,
		Rejected:      rejected,
		Served:        s.served.Load(),
		Coalesced:     s.coalesced.Load(),
		Failed:        s.failed.Load(),
		Cache:         s.cache.Stats(),
		Aggregate:     agg,
	})
}

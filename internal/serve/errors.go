package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// apiError is the structured error clients receive. It is built from
// registry knowledge (known design ids, policy names, ...) rather than
// by forwarding internal error chains, so package prefixes, file paths,
// and implementation details never leak to HTTP clients (pinned by
// TestRunErrorsAreStructured).
type apiError struct {
	status  int    // HTTP status; not serialized
	Field   string `json:"field,omitempty"`
	Message string `json:"message"`
}

func (e *apiError) Error() string { return e.Message }

// badField builds a 400 for one request field.
func badField(field, format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, Field: field, Message: fmt.Sprintf(format, args...)}
}

// writeError emits the structured JSON error body.
func writeError(w http.ResponseWriter, e *apiError) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.status)
	json.NewEncoder(w).Encode(struct {
		Error *apiError `json:"error"`
	}{e})
}

// writeJSON emits a 200 JSON body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// decodeBody strictly decodes a JSON request body into dst, mapping the
// decoder's error zoo to field-level 400s: syntax errors, wrong-typed
// fields, unknown fields, and trailing garbage each get a message that
// names the problem without echoing Go type names or package paths.
func decodeBody(r *http.Request, dst any) *apiError {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var typeErr *json.UnmarshalTypeError
		var syntaxErr *json.SyntaxError
		var maxErr *http.MaxBytesError
		switch {
		case errors.As(err, &typeErr):
			return badField(typeErr.Field, "wrong JSON type for field %q", typeErr.Field)
		case errors.As(err, &syntaxErr), errors.Is(err, io.ErrUnexpectedEOF):
			return badField("", "malformed JSON body")
		case errors.Is(err, io.EOF):
			return badField("", "empty request body; expected a JSON run request")
		case errors.As(err, &maxErr):
			return &apiError{status: http.StatusRequestEntityTooLarge, Message: "request body too large"}
		case strings.HasPrefix(err.Error(), "json: unknown field "):
			f := strings.Trim(strings.TrimPrefix(err.Error(), "json: unknown field "), `"`)
			return badField(f, "unknown field %q", f)
		default:
			return badField("", "malformed JSON body")
		}
	}
	if dec.More() {
		return badField("", "unexpected data after JSON body")
	}
	return nil
}

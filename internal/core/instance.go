package core

import (
	"encoding/json"
	"fmt"

	"nucanet/internal/cache"
	"nucanet/internal/cmp"
	"nucanet/internal/config"
	"nucanet/internal/cpu"
	"nucanet/internal/energy"
	"nucanet/internal/network"
	"nucanet/internal/router"
	"nucanet/internal/routing"
	"nucanet/internal/sim"
	"nucanet/internal/telemetry"
	"nucanet/internal/topology"
	"nucanet/internal/trace"
)

// This file splits Run into the two halves batch evaluation needs:
// Prepare produces the run's immutable artifacts (resolved design,
// topology, routing table, warm-state table, access stream) and
// NewInstance assembles the mutable simulation state (kernel, cache
// system, core) over them. Run is Prepare + NewInstance + run-to-idle,
// preserving the pre-split construction sequence exactly — the 48
// regression goldens and the fleet bit-identity table are the proof.
// The fleet evaluator (internal/fleet) shares one PrepCache across a
// batch and steps many Instances in lockstep.

// Artifacts is everything about a run that is immutable once prepared.
// All reference fields are shared read-only: many Instances — on one
// goroutine or several — may be built over the same Artifacts, and
// Artifacts of different runs may alias the same Topo/Table/Warm/Accs
// through a PrepCache.
type Artifacts struct {
	Opt    Options       // original options, recorded in Result.Options
	Design config.Design // resolved, router-normalized, validated
	Prof   trace.Profile
	Topo   *topology.Topology
	Table  *routing.Table
	Warm   [][]uint64     // WarmBlocks table for the design's 16 ways
	Accs   []trace.Access // the measured access stream (single-core runs)
	CPU    cpu.Config     // normalized core model config

	// CoreAccs holds the per-core access streams of a CMP run (Options.
	// Cores >= 1): core i's stream, already offset into its private tag
	// range. Accs is nil in that mode, and Warm is the cores' interleaved
	// warm table (cmp.MergeWarm).
	CoreAccs [][]trace.Access

	// WarmImg, when non-nil, is the precomputed post-warm-up bank state
	// for (bank stack, Warm); NewInstance clones it instead of replaying
	// Warm's insert stream. Only cached Prepares carry one — a single run
	// would pay the image build just to use it once.
	WarmImg *cache.WarmImage
}

// PrepCache shares Prepare's expensive immutable artifacts across the
// runs of a batch: the (topology, routing table, static verification)
// triple per distinct design, and the (warm table, access stream) pair
// per distinct (benchmark, seed, geometry, accesses) key. A nil
// *PrepCache disables sharing. Not safe for concurrent use; the fleet
// evaluator prepares its whole batch on one goroutine before fanning
// out.
type PrepCache struct {
	designs map[string]*designEntry
	traces  map[traceKey]*traceEntry
	images  map[imageKey]*cache.WarmImage
}

// NewPrepCache returns an empty artifact cache.
func NewPrepCache() *PrepCache {
	return &PrepCache{
		designs: map[string]*designEntry{},
		traces:  map[traceKey]*traceEntry{},
		images:  map[imageKey]*cache.WarmImage{},
	}
}

// designEntry caches per-design construction: valErr reproduces
// d.Validate's verdict (surfaced at the same point in Prepare's error
// order), chkErr the network-construction gates (engine progress proof +
// Supports) that cache/network construction would raise.
type designEntry struct {
	topo   *topology.Topology
	tb     *routing.Table
	valErr error
	chkErr error
}

type traceKey struct {
	bench    string
	seed     uint64
	columns  int
	sets     int
	ways     int
	accesses int
	cores    int // 0 = classic single-core stream
}

type traceEntry struct {
	warm     [][]uint64
	accs     []trace.Access
	coreAccs [][]trace.Access
}

// imageKey identifies a warm image: the trace entry pins the address
// geometry and warm-table content, the bank-stack string pins how the
// 16 ways split into banks. Designs differing only in placement (e.g.
// an optimizer wave sweeping CoreX) share one image per benchmark.
type imageKey struct {
	banks string
	te    *traceEntry
}

// design resolves the per-design entry, computing and (when pc is
// non-nil) caching it.
func (pc *PrepCache) design(d config.Design) *designEntry {
	var key string
	if pc != nil {
		raw, err := json.Marshal(d)
		if err != nil {
			panic(fmt.Sprintf("core: design not marshalable: %v", err))
		}
		key = string(raw)
		if e, ok := pc.designs[key]; ok {
			return e
		}
	}
	e := &designEntry{}
	if e.valErr = d.Validate(); e.valErr == nil {
		if e.topo, e.valErr = d.Build(); e.valErr == nil {
			var alg routing.Algorithm
			if alg, e.chkErr = routing.For(e.topo); e.chkErr == nil {
				e.tb, e.chkErr = network.Check(e.topo, alg, d.Router)
			}
		}
	}
	if pc != nil {
		pc.designs[key] = e
	}
	return e
}

// traceFor resolves the warm table and access stream, sharing across
// designs with the same address geometry and total ways. cores >= 1
// produces the CMP form: per-core streams offset into private tag
// ranges (seeded by cpu.CoreSeed so core 0 replays the classic stream)
// and one interleaved warm table.
func (pc *PrepCache) traceFor(d config.Design, prof trace.Profile, seed uint64, accesses, cores int) *traceEntry {
	am := d.AddrMap()
	key := traceKey{prof.Name, seed, am.Columns, am.Sets, d.Ways(), accesses, cores}
	if pc != nil {
		if e, ok := pc.traces[key]; ok {
			return e
		}
	}
	var e *traceEntry
	if cores < 1 {
		gen := trace.NewSynthetic(prof, am, seed)
		e = &traceEntry{warm: gen.WarmBlocks(d.Ways()), accs: trace.Take(gen, accesses)}
	} else {
		warms := make([][][]uint64, cores)
		coreAccs := make([][]trace.Access, cores)
		for i := 0; i < cores; i++ {
			gen := trace.NewSynthetic(prof, am, cpu.CoreSeed(seed, i))
			warms[i] = gen.WarmBlocks(d.Ways())
			coreAccs[i] = trace.Take(gen, accesses)
			for j := range coreAccs[i] {
				coreAccs[i][j].Addr = cmp.OffsetAddr(am, coreAccs[i][j].Addr, i)
			}
		}
		e = &traceEntry{warm: cmp.MergeWarm(am, d.Ways(), warms), coreAccs: coreAccs}
	}
	if pc != nil {
		pc.traces[key] = e
	}
	return e
}

// Prepare resolves and validates opt into the run's immutable artifacts.
// Its validation order — design resolution, router engine lookup, design
// validation, benchmark lookup, accesses bound, policy/mode check,
// network construction gates — matches the order the monolithic Run
// surfaced the same errors in.
func Prepare(opt Options, pc *PrepCache) (*Artifacts, error) {
	dp, err := config.Resolve(opt.DesignID, opt.Design)
	if err != nil {
		return nil, err
	}
	d := *dp
	if opt.Router != "" {
		d.Router.Engine = opt.Router
	}
	// Normalize the engine to its registered name (empty selects the
	// default) so Result.Design records what actually simulated, and fail
	// fast on unknown engines or unsupported (engine, topology) pairs.
	eng, err := router.ByName(d.Router.Engine)
	if err != nil {
		return nil, err
	}
	d.Router.Engine = eng.Name
	de := pc.design(d)
	if de.valErr != nil {
		return nil, de.valErr
	}
	prof, err := trace.ProfileByName(opt.Benchmark)
	if err != nil {
		return nil, err
	}
	if opt.Accesses <= 0 {
		return nil, fmt.Errorf("core: accesses must be positive, got %d", opt.Accesses)
	}
	if opt.Shards < 0 {
		return nil, fmt.Errorf("core: shards must be non-negative, got %d", opt.Shards)
	}
	if opt.Cores < 0 {
		return nil, fmt.Errorf("core: cores must be non-negative, got %d", opt.Cores)
	}
	if opt.Cores > 0 && de.topo != nil {
		if err := cmp.SupportsHost(de.topo, d.ID, opt.Cores); err != nil {
			return nil, err
		}
	}
	if opt.Shards > 1 && opt.Telemetry.Trace {
		return nil, fmt.Errorf("core: the flit trace probe requires the sequential kernel (shards=%d with trace)", opt.Shards)
	}
	if err := cache.ValidatePair(opt.Policy, opt.Mode); err != nil {
		return nil, err
	}
	if de.chkErr != nil {
		return nil, de.chkErr
	}
	te := pc.traceFor(d, prof, opt.Seed, opt.Accesses, opt.Cores)
	cpuCfg := opt.CPU
	if cpuCfg.Window == 0 {
		cpuCfg = cpu.DefaultConfig()
	}
	cpuCfg.Seed = opt.Seed
	art := &Artifacts{
		Opt: opt, Design: d, Prof: prof,
		Topo: de.topo, Table: de.tb,
		Warm: te.warm, Accs: te.accs, CoreAccs: te.coreAccs,
		CPU: cpuCfg,
	}
	if pc != nil {
		art.WarmImg = pc.imageFor(d, te)
	}
	return art, nil
}

// imageFor resolves the cached warm image for (bank stack, warm table),
// building and warming the template banks on first use.
func (pc *PrepCache) imageFor(d config.Design, te *traceEntry) *cache.WarmImage {
	key := imageKey{banks: fmt.Sprint(d.Banks), te: te}
	if img, ok := pc.images[key]; ok {
		return img
	}
	img := cache.BuildWarmImage(d, te.warm)
	pc.images[key] = img
	return img
}

// Instance is one assembled simulation: a kernel, the cache system, and
// the trace-driven core (or, in CMP mode, the fabric and one core per
// port), built over shared Artifacts. Drive it either with
// RunToCompletion (the single-run path) or with Start plus external
// kernel stepping (the fleet's lockstep path) followed by FinishIdle.
type Instance struct {
	Art *Artifacts
	K   *sim.Kernel
	Sys *cache.System
	C   *cpu.Core // the classic single core; nil in CMP mode
	// Fab and cores are the CMP form (Options.Cores >= 1): the fabric
	// attachment over Sys and one trace-driven core per port.
	Fab   *cmp.Fabric
	cores []*cpu.Core
	tel   *telemetry.Collector
}

// NewInstance assembles the mutable simulation state over art. ar, when
// non-nil, is the router-construction arena lanes of a fleet batch share
// (see router.Arena); it must not be shared across goroutines.
func NewInstance(art *Artifacts, ar *router.Arena) (*Instance, error) {
	var k *sim.Kernel
	var plan *topology.Plan
	if art.Opt.Shards > 1 {
		// Partition the fabric; the planner clamps to what the graph
		// supports and may come back with a single shard, in which case
		// the plain sequential kernel is the same machine with less
		// bookkeeping.
		if plan = topology.Partition(art.Topo, art.Opt.Shards); plan.Shards > 1 {
			k = sim.NewShardedKernel(plan.Shards)
		} else {
			plan = nil
		}
	}
	if k == nil {
		k = sim.NewKernel()
	}
	sys, err := cache.NewPrebuilt(k, art.Design, art.Opt.Policy, art.Opt.Mode, cache.Prebuilt{
		Topo: art.Topo, Alg: art.Table, Arena: ar, Prechecked: true, Plan: plan,
	})
	if err != nil {
		return nil, err
	}
	// The CMP fabric attaches its controllers before any warm state or
	// core registers, mirroring the construction order the analytic cmp
	// runner used (its Cores=1 goldens pin the resulting event order).
	var fab *cmp.Fabric
	if art.Opt.Cores > 0 {
		if fab, err = cmp.Attach(sys, art.Opt.Cores); err != nil {
			return nil, err
		}
	}
	if art.WarmImg != nil {
		sys.WarmClone(art.WarmImg)
	} else {
		sys.Warm(art.Warm)
	}
	var c *cpu.Core
	var cores []*cpu.Core
	if fab != nil {
		cores = make([]*cpu.Core, art.Opt.Cores)
		for i := range cores {
			cfg := art.CPU
			cfg.Seed = cpu.CoreSeed(art.Opt.Seed, i)
			cores[i] = cpu.New(k, fab.Port(i), art.Prof, art.CoreAccs[i], cfg)
		}
	} else {
		c = cpu.New(k, sys, art.Prof, art.Accs, art.CPU)
	}
	// Telemetry is wired after every working component so its sampling
	// observer registers with the highest component id and ticks last
	// within a cycle (see sim.Observer).
	tel := telemetry.New(art.Opt.Telemetry, sys.Topo)
	if tel != nil {
		sys.EnableTelemetry(tel)
	}
	return &Instance{Art: art, K: k, Sys: sys, C: c, Fab: fab, cores: cores, tel: tel}, nil
}

// Start arms every core's first access. Call exactly once, before
// stepping the kernel externally; RunToCompletion calls it itself.
func (in *Instance) Start() {
	if in.Fab != nil {
		for _, c := range in.cores {
			c.Start()
		}
		return
	}
	in.C.Start()
}

// RunToCompletion drives the instance to quiescence and assembles the
// Result — the single-run path Run uses.
func (in *Instance) RunToCompletion() (Result, error) {
	if in.Fab != nil {
		in.Start()
		if _, idle := in.K.Run(1 << 40); !idle {
			return Result{}, in.wrapErr(fmt.Errorf("cmp run did not complete"))
		}
		return in.FinishIdle()
	}
	res, err := in.C.Run(1 << 40)
	if err != nil {
		return Result{}, in.wrapErr(err)
	}
	return in.finish(res)
}

// FinishIdle collects the Result after external stepping drove the
// kernel idle (the fleet path). It errors — like the single-run path —
// when the access stream did not complete.
func (in *Instance) FinishIdle() (Result, error) {
	if in.Fab != nil {
		rs := make([]cpu.Result, len(in.cores))
		for i, c := range in.cores {
			r, err := c.Result()
			if err != nil {
				return Result{}, in.wrapErr(fmt.Errorf("core %d: %w", i, err))
			}
			rs[i] = r
		}
		return in.finishCMP(rs)
	}
	res, err := in.C.Result()
	if err != nil {
		return Result{}, in.wrapErr(err)
	}
	return in.finish(res)
}

func (in *Instance) wrapErr(err error) error {
	return fmt.Errorf("core: %s/%v/%v/%s: %w",
		in.Art.Design.ID, in.Art.Opt.Policy, in.Art.Opt.Mode, in.Art.Opt.Benchmark, err)
}

// finishCMP drains the fabric and assembles the CMP Result: per-core
// rows from the ports' core-observed accumulators, aggregates over them
// (IPC and instructions sum, cycles take the slowest core), and the
// shared cache's protocol-side statistics for the scalar latency fields.
func (in *Instance) finishCMP(rs []cpu.Result) (Result, error) {
	opt, d, sys := in.Art.Opt, in.Art.Design, in.Sys
	if err := sys.Drain(1 << 30); err != nil {
		return Result{}, err
	}
	// Drain checks the primary controller; the fabric's extra controllers
	// and ports need their own quiescence proof.
	if p := in.Fab.Pending(); p != 0 {
		return Result{}, fmt.Errorf("core: %d requests stuck across the CMP fabric after quiescence", p)
	}
	in.tel.Finish(in.K.Now())

	bank, net, memShare := sys.Lat.Shares()
	netStats := sys.Net.Stats()
	memStats := sys.Memory.Stats()
	erep := energy.DefaultModel().Estimate(energy.Activity{
		FlitHops:     netStats.Router.FlitsRouted,
		BankAccesses: sys.BankAccessesBySize(),
		MemBlocks:    memStats.Reads + memStats.WriteBacks,
		Accesses:     uint64(opt.Accesses) * uint64(len(rs)),
	})
	res := Result{
		Options:      opt,
		Design:       d,
		PerfectIPC:   in.Art.Prof.PerfectIPC,
		AvgLatency:   sys.Lat.Avg(),
		AvgHit:       sys.Lat.AvgHit(),
		AvgMiss:      sys.Lat.AvgMiss(),
		AvgOccupancy: sys.Lat.AvgOccupancy(),
		HitRate:      sys.Lat.HitRate(),
		MRUHitShare:  sys.Lat.HitWayShare(0),
		BankShare:    bank,
		NetworkShare: net,
		MemShare:     memShare,
		BankAccesses: sys.BankAccesses(),
		Network:      netStats,
		Memory:       memStats,
		Latency:      sys.Lat.Clone(),
		Energy:       erep,
		Telemetry:    in.tel,
	}
	for i, cr := range rs {
		p := in.Fab.Port(i)
		total := p.RemoteIssues + p.LocalIssues
		res.Cores = append(res.Cores, CoreResult{
			Core:         i,
			IPC:          cr.IPC(),
			AvgLatency:   p.Lat.Avg(),
			HitRate:      p.Lat.HitRate(),
			RemoteShare:  float64(p.RemoteIssues) / float64(total),
			Instructions: cr.Instructions,
			Cycles:       cr.Cycles,
		})
		res.IPC += cr.IPC()
		res.Instructions += cr.Instructions
		if cr.Cycles > res.Cycles {
			res.Cycles = cr.Cycles
		}
	}
	if sys.Dir != nil {
		rep := sys.Dir.Report()
		res.Directory = &rep
	}
	return res, nil
}

// finish drains the system and assembles the Result exactly as the
// monolithic Run did.
func (in *Instance) finish(res cpu.Result) (Result, error) {
	opt, d, sys := in.Art.Opt, in.Art.Design, in.Sys
	if err := sys.Drain(1 << 30); err != nil {
		return Result{}, err
	}
	in.tel.Finish(in.K.Now())

	bank, net, memShare := sys.Lat.Shares()
	netStats := sys.Net.Stats()
	memStats := sys.Memory.Stats()
	erep := energy.DefaultModel().Estimate(energy.Activity{
		FlitHops:     netStats.Router.FlitsRouted,
		BankAccesses: sys.BankAccessesBySize(),
		MemBlocks:    memStats.Reads + memStats.WriteBacks,
		Accesses:     uint64(opt.Accesses),
	})
	out := Result{
		Options:      opt,
		Design:       d,
		IPC:          res.IPC(),
		PerfectIPC:   in.Art.Prof.PerfectIPC,
		Instructions: res.Instructions,
		Cycles:       res.Cycles,
		AvgLatency:   sys.Lat.Avg(),
		AvgHit:       sys.Lat.AvgHit(),
		AvgMiss:      sys.Lat.AvgMiss(),
		AvgOccupancy: sys.Lat.AvgOccupancy(),
		HitRate:      sys.Lat.HitRate(),
		MRUHitShare:  sys.Lat.HitWayShare(0),
		BankShare:    bank,
		NetworkShare: net,
		MemShare:     memShare,
		BankAccesses: sys.BankAccesses(),
		Network:      netStats,
		Memory:       memStats,
		Latency:      sys.Lat.Clone(),
		Energy:       erep,
		Telemetry:    in.tel,
	}
	if sys.Dir != nil {
		rep := sys.Dir.Report()
		out.Directory = &rep
	}
	return out, nil
}

package core

import (
	"fmt"
	"io"

	"nucanet/internal/area"
	"nucanet/internal/bank"
	"nucanet/internal/config"
	"nucanet/internal/mem"
	"nucanet/internal/telemetry"
)

// This file renders every built-in experiment's rows exactly as
// cmd/paperbench printed them before the experiment registry existed
// (the registry goldens pin the bytes), and registers the twelve
// built-ins in the paper's presentation order.

// schemeLabel names the scheme a single-scheme experiment actually ran
// under (the -policy/-mode override, or the paper default).
func schemeLabel(cfg ExpConfig) string {
	p, m := cfg.PolicyName, cfg.ModeName
	if p == "" {
		p = "fastLRU"
	}
	if m == "" {
		m = "multicast"
	}
	return m + "+" + p
}

// Table1Rows renders the static system parameters of Table 1.
type Table1Rows struct{}

func (Table1Rows) Render(w io.Writer) {
	fmt.Fprintln(w, "memory: block 64B; latency 130 cycles + 4 cycles per 8B (pipelined)")
	fmt.Fprintln(w, "router: 4-flit buffers, 4 VCs per PC, 128-bit flits, 1 cycle per stage")
	fmt.Fprintln(w, "bank size    wire delay   tag only   tag+replacement")
	for _, kb := range []int{64, 128, 256, 512} {
		l := bank.LatencyFor(kb)
		fmt.Fprintf(w, "  %4d KB     %d cycle(s)   %d cycles   %d cycles\n",
			kb, l.Wire, l.TagOnly, l.TagRepl)
	}
	c := mem.DefaultConfig()
	fmt.Fprintf(w, "derived: 64B block read = %d cycles at the pins\n", c.ReadLatency())
}

// Table2Rows renders the generator self-check against Table 2.
type Table2Rows []Table2Row

func (rows Table2Rows) Render(w io.Writer) {
	fmt.Fprintln(w, "name     instr   perfIPC  reads(M) writes(M)  acc/instr | gen acc/instr  gen wr%   gen hit% (16-way LRU)")
	for _, row := range rows {
		p := row.Profile
		fmt.Fprintf(w, "%-8s %5.2gB  %5.2f   %8.3f %8.3f   %8.3f | %12.4f  %6.1f%%  %6.1f%%\n",
			p.Name, float64(p.InstrTotal)/1e9, p.PerfectIPC, p.ReadsM, p.WritesM,
			p.AccPerInstr, row.GenAccPerInst, 100*row.GenWriteFrac, 100*row.GenHitRate16)
	}
}

// Table3Rows renders the design catalogue of Table 3.
type Table3Rows []config.Design

func (rows Table3Rows) Render(w io.Writer) {
	for _, d := range rows {
		fmt.Fprintf(w, "  %s: %-55s banks/column: %v\n", d.ID, d.Description, d.Banks)
	}
}

// Table4Rows renders the area analysis of Table 4.
type Table4Rows []area.Report

func (rows Table4Rows) Render(w io.Writer) {
	fmt.Fprintln(w, "design   bank%   router%   link%     L2 mm2    chip mm2")
	for _, r := range rows {
		fmt.Fprintf(w, "  %s     %5.1f     %5.1f   %5.1f   %8.2f   %9.2f\n",
			r.DesignID, r.BankPct(), r.RouterPct(), r.LinkPct(), r.L2MM2(), r.ChipMM2)
	}
	fmt.Fprintln(w, "paper:  A 47.8/20.8/31.4 567.70/567.70 | B 58.4/13.0/28.6 464.60/521.99")
	fmt.Fprintln(w, "        E 67.5/14.1/18.4 402.30/1602.22 | F 78.7/5.7/15.7 312.19/517.61")
}

// Fig7Rows renders the latency-split bars of Figure 7.
type Fig7Rows []Fig7Row

func (rows Fig7Rows) Render(w io.Writer) {
	fmt.Fprintln(w, "benchmark   bank%   network%   memory%     p50     p99")
	var b, nw, m float64
	for _, r := range rows {
		fmt.Fprintf(w, "  %-9s %5.1f      %5.1f     %5.1f   %5d   %5d\n",
			r.Benchmark, r.BankPct, r.NetPct, r.MemPct, r.P50, r.P99)
		b += r.BankPct
		nw += r.NetPct
		m += r.MemPct
	}
	k := float64(len(rows))
	fmt.Fprintf(w, "  %-9s %5.1f      %5.1f     %5.1f   (paper avg: 25 / 65 / 10)\n",
		"avg", b/k, nw/k, m/k)
}

// Fig8Rows renders the scheme comparison of Figure 8.
type Fig8Rows []Fig8Cell

func (rows Fig8Rows) Render(w io.Writer) {
	fmt.Fprintln(w, "(a) average / (b) hit / (c) miss latency in cycles; IPC")
	fmt.Fprintf(w, "%-9s", "benchmark")
	for _, s := range Fig8Schemes() {
		fmt.Fprintf(w, " | %-19s", s.Name)
	}
	fmt.Fprintln(w)
	byBench := map[string][]Fig8Cell{}
	var names []string
	for _, c := range rows {
		if len(byBench[c.Benchmark]) == 0 {
			names = append(names, c.Benchmark)
		}
		byBench[c.Benchmark] = append(byBench[c.Benchmark], c)
	}
	for _, b := range names {
		fmt.Fprintf(w, "%-9s", b)
		for _, c := range byBench[b] {
			fmt.Fprintf(w, " | %5.1f %5.1f %6.1f", c.AvgLat, c.HitLat, c.MissLat)
		}
		fmt.Fprintln(w)
	}
	// Summary ratios the paper quotes. Two readings: the CPU-visible
	// access latency (request -> data) and the column occupancy
	// (request -> replacement complete); the paper's hop-count examples
	// (Fig. 2: 21 vs 12 hops) count the full occupancy, which is where
	// Fast-LRU's structural win lives at any load level. Averages sum in
	// benchmark order so the rendered bytes never depend on map order.
	avgOf := func(scheme string, occ bool) float64 {
		var s float64
		for _, b := range names {
			for _, c := range byBench[b] {
				if c.Scheme == scheme {
					if occ {
						s += c.OccLat
					} else {
						s += c.AvgLat
					}
				}
			}
		}
		return s / float64(len(names))
	}
	uLRU, uFast := avgOf("unicast+LRU", false), avgOf("unicast+fastLRU", false)
	mPromo, mFast := avgOf("multicast+promotion", false), avgOf("multicast+fastLRU", false)
	uLRUo, uFasto := avgOf("unicast+LRU", true), avgOf("unicast+fastLRU", true)
	mFasto := avgOf("multicast+fastLRU", true)
	fmt.Fprintf(w, "\naccess latency (request->data):\n")
	fmt.Fprintf(w, "  multicast fastLRU vs unicast LRU:       %+.1f%%\n", 100*(mFast-uLRU)/uLRU)
	fmt.Fprintf(w, "  multicast fastLRU vs multicast promo:   %+.1f%%\n", 100*(mFast-mPromo)/mPromo)
	fmt.Fprintf(w, "  unicast fastLRU vs unicast LRU:         %+.1f%%\n", 100*(uFast-uLRU)/uLRU)
	fmt.Fprintf(w, "column occupancy (request->replacement done; the paper's hop metric):\n")
	fmt.Fprintf(w, "  multicast fastLRU vs unicast LRU:       %+.1f%% (paper -46%%)\n", 100*(mFasto-uLRUo)/uLRUo)
	fmt.Fprintf(w, "  unicast fastLRU vs unicast LRU:         %+.1f%% (paper -30%%)\n",
		100*(uFasto-uLRUo)/uLRUo)
}

// Fig9Rows renders the normalized-IPC matrix of Figure 9.
type Fig9Rows []Fig9Cell

func (rows Fig9Rows) Render(w io.Writer) {
	fmt.Fprintf(w, "%-9s", "benchmark")
	for _, d := range config.Designs() {
		fmt.Fprintf(w, "   %s  ", d.ID)
	}
	fmt.Fprintln(w)
	sums := map[string]float64{}
	p50s := map[string]int64{}
	p99s := map[string]int64{}
	count := 0
	var cur string
	for _, c := range rows {
		if c.Benchmark != cur {
			if cur != "" {
				fmt.Fprintln(w)
			}
			fmt.Fprintf(w, "%-9s", c.Benchmark)
			cur = c.Benchmark
			count++
		}
		fmt.Fprintf(w, " %5.3f", c.NormalizedIPC)
		sums[c.DesignID] += c.NormalizedIPC
		p50s[c.DesignID] += c.P50
		p99s[c.DesignID] += c.P99
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-9s", "avg")
	for _, d := range config.Designs() {
		fmt.Fprintf(w, " %5.3f", sums[d.ID]/float64(count))
	}
	fmt.Fprintln(w, "\n(paper avgs: A 1.00, B ~1.00, C 0.86, D 0.88, E 1.12, F 1.13)")
	// Tail view: per-design access-latency percentiles averaged over the
	// benchmarks (mean of the per-run percentile estimates, not the
	// percentile of a pooled distribution).
	k := int64(count)
	fmt.Fprintf(w, "%-9s", "p50 avg")
	for _, d := range config.Designs() {
		fmt.Fprintf(w, " %5d", p50s[d.ID]/k)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-9s", "p99 avg")
	for _, d := range config.Designs() {
		fmt.Fprintf(w, " %5d", p99s[d.ID]/k)
	}
	fmt.Fprintln(w)
}

// Render prints the recomputed abstract claims.
func (h Headline) Render(w io.Writer) {
	fmt.Fprintf(w, "halo+fastLRU IPC vs mesh+multicast-promotion: %+.1f%%  (paper +38%%)\n",
		100*(h.IPCGainVsMeshPromotion-1))
	fmt.Fprintf(w, "multicast fastLRU IPC vs multicast promotion: %+.1f%%  (paper +20%%)\n",
		100*(h.FastLRUIPCGain-1))
	fmt.Fprintf(w, "halo (F) IPC vs mesh (A), same policy:        %+.1f%%  (paper +18%%/+13%%)\n",
		100*(h.HaloIPCGain-1))
	fmt.Fprintf(w, "interconnect area, F as a share of A:          %.1f%%  (paper 23%%)\n",
		100*h.InterconnectAreaRatio)
}

// EnergyRows renders the per-design energy comparison; Bench and Scheme
// caption what the cells measured.
type EnergyRows struct {
	Bench  string
	Scheme string
	Cells  []EnergyCell
}

func (rows EnergyRows) Render(w io.Writer) {
	fmt.Fprintf(w, "design    nJ/access   network%%   banks%%   memory%%     IPC   (%s, %s)\n", rows.Bench, rows.Scheme)
	for _, c := range rows.Cells {
		r := c.Report
		fmt.Fprintf(w, "  %s       %7.2f      %5.1f    %5.1f     %5.1f   %5.3f\n",
			c.DesignID, r.PerAccessNJ(), 100*r.NetworkShare(),
			100*r.BankPJ/r.TotalPJ(), 100*r.MemoryPJ/r.TotalPJ(), c.IPC)
	}
}

// PowerRows renders the power-gating operating points.
type PowerRows struct {
	Bench string
	Cells []PowerCell
}

func (rows PowerRows) Render(w io.Writer) {
	fmt.Fprintf(w, "ways on   capacity   hit rate     IPC   nJ/access   (%s, Design A columns gated from the far end)\n", rows.Bench)
	for _, c := range rows.Cells {
		fmt.Fprintf(w, "   %2d      %5d KB    %5.1f%%   %5.3f     %7.2f\n",
			c.WaysOn, c.CapacityKB, 100*c.HitRate, c.IPC, c.Energy.PerAccessNJ())
	}
}

// ParetoRows renders the router/design/scheme cost-performance sweep.
type ParetoRows []ParetoPoint

func (rows ParetoRows) Render(w io.Writer) {
	fmt.Fprintln(w, "   router        design  scheme                 L2 mm2   net mm2   avg lat   nJ/acc     IPC")
	for _, p := range rows {
		if p.Skipped != "" {
			fmt.Fprintf(w, "   %-13s %-7s %-21s skipped: %s\n", p.RouterName, p.DesignID, p.Scheme, p.Skipped)
			continue
		}
		mark := " "
		if p.Frontier {
			mark = "*"
		}
		fmt.Fprintf(w, " %s %-13s %-7s %-21s %7.1f   %7.2f   %7.1f   %6.2f   %5.3f\n",
			mark, p.RouterName, p.DesignID, p.Scheme,
			p.AreaMM2, p.NetMM2, p.AvgLat, p.EnergyNJ, p.IPC)
	}
	fmt.Fprintln(w, "('*' = on the area/latency/energy frontier: no point is better on all three axes)")
}

// TelemetryRows renders the probe comparison; callers wanting the raw
// traces (paperbench's -trace flag) type-assert the Rows to this type
// and read each run's Result.Telemetry.
type TelemetryRows []TelemetryRun

func (rows TelemetryRows) Render(w io.Writer) {
	for _, tr := range rows {
		r := tr.Result
		fmt.Fprintf(w, "-- design %s: IPC %.4f, avg latency %.1f, p50 %d, p99 %d, max %d\n",
			tr.DesignID, r.IPC, r.AvgLatency,
			r.Latency.Percentile(0.50), r.Latency.Percentile(0.99), r.Latency.MaxLat)
		if tel := r.Telemetry; tel != nil {
			if tel.Heat != nil {
				tel.Heat.Render(w)
			}
			if tel.Series != nil {
				tel.Series.Render(w)
			}
		}
	}
}

// Render writes the sharing-contention table and the largest run's
// link-traffic view (on hierarchical designs that includes the
// inter-chiplet bridge hops).
func (r CMPResult) Render(w io.Writer) {
	fmt.Fprintf(w, "%5s %10s %10s %9s %8s %7s %8s %9s\n",
		"cores", "IPC", "IPC/core", "hit rate", "avg lat", "p99", "remote", "x-evict")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%5d %10.4f %10.4f %8.1f%% %8.1f %7d %7.0f%% %8.0f%%\n",
			c.Cores, c.IPC, c.PerCoreIPC, 100*c.HitRate, c.AvgLat, c.P99,
			100*c.RemoteShare, 100*c.CrossDropShare)
	}
	if r.Heat != nil && len(r.Cells) > 0 {
		fmt.Fprintf(w, "\nlink heatmap, %d-core run (bridge-ring hops included):\n",
			r.Cells[len(r.Cells)-1].Cores)
		r.Heat.RenderLinks(w, 16)
	}
}

func staticTitle(s string) func(ExpConfig) string {
	return func(ExpConfig) string { return s }
}

func init() {
	RegisterExperiment(Experiment{
		Name: "t1", About: "Table 1 system parameters (bank latencies, memory, router)",
		Title: staticTitle("Table 1: system parameters"), InAll: true,
		Run: func(ExpConfig) (Rows, SweepReport, error) { return Table1Rows{}, SweepReport{}, nil },
	})
	RegisterExperiment(Experiment{
		Name: "t2", About: "Table 2 benchmark profiles vs generator self-check",
		Title: staticTitle("Table 2: benchmarks (profile vs generator self-check)"), InAll: true,
		Run: func(cfg ExpConfig) (Rows, SweepReport, error) {
			return Table2Rows(Table2Check(40000, cfg.Seed)), SweepReport{}, nil
		},
	})
	RegisterExperiment(Experiment{
		Name: "t3", About: "Table 3 network design catalogue",
		Title: staticTitle("Table 3: network designs"), InAll: true,
		Run: func(ExpConfig) (Rows, SweepReport, error) {
			return Table3Rows(config.Designs()), SweepReport{}, nil
		},
	})
	RegisterExperiment(Experiment{
		Name: "t4", About: "Table 4 area analysis (cacti-lite model)",
		Title: staticTitle("Table 4: area analysis (cacti-lite model)"), InAll: true,
		Run: func(ExpConfig) (Rows, SweepReport, error) {
			reps, err := Table4()
			return Table4Rows(reps), SweepReport{}, err
		},
	})
	RegisterExperiment(Experiment{
		Name: "f7", About: "Figure 7 latency split of the unicast LRU baseline",
		Title: staticTitle("Figure 7: L2 access latency split, unicast LRU, Design A"), InAll: true,
		Run: func(cfg ExpConfig) (Rows, SweepReport, error) {
			rows, rep, err := Fig7(cfg)
			return Fig7Rows(rows), rep, err
		},
	})
	RegisterExperiment(Experiment{
		Name: "f8", About: "Figure 8 access latency across the five replacement schemes",
		Title: staticTitle("Figure 8: access latency by scheme, Design A"), InAll: true,
		Run: func(cfg ExpConfig) (Rows, SweepReport, error) {
			cells, rep, err := Fig8(cfg)
			return Fig8Rows(cells), rep, err
		},
	})
	RegisterExperiment(Experiment{
		Name: "f9", About: "Figure 9 normalized IPC across designs A-F",
		Title: func(cfg ExpConfig) string { return "Figure 9: normalized IPC by design, " + schemeLabel(cfg) },
		InAll: true,
		Run: func(cfg ExpConfig) (Rows, SweepReport, error) {
			cells, rep, err := Fig9(cfg)
			return Fig9Rows(cells), rep, err
		},
	})
	RegisterExperiment(Experiment{
		Name: "headline", About: "abstract's headline claims, recomputed",
		Title: staticTitle("Headline claims (abstract)"), InAll: true,
		Run: func(cfg ExpConfig) (Rows, SweepReport, error) {
			h, rep, err := ComputeHeadline(cfg)
			return h, rep, err
		},
	})
	RegisterExperiment(Experiment{
		Name: "energy", About: "per-design energy estimate (extension: the paper's stated future work)",
		Title: staticTitle("Energy comparison (extension: the paper's stated future work)"), InAll: true,
		Run: func(cfg ExpConfig) (Rows, SweepReport, error) {
			cells, rep, err := EnergyComparison(cfg, cfg.bench())
			return EnergyRows{Bench: cfg.bench(), Scheme: schemeLabel(cfg), Cells: cells}, rep, err
		},
	})
	RegisterExperiment(Experiment{
		Name: "power", About: "power-gating sweep (extension: on-demand power control)",
		Title: staticTitle("Power-gating sweep (extension: the paper's on-demand power control)"), InAll: true,
		Run: func(cfg ExpConfig) (Rows, SweepReport, error) {
			cells, rep, err := PowerGatingSweep(cfg, cfg.bench())
			return PowerRows{Bench: cfg.bench(), Cells: cells}, rep, err
		},
	})
	RegisterExperiment(Experiment{
		Name: "pareto", About: "router engine x design x scheme cost/performance frontier",
		Title: func(cfg ExpConfig) string {
			return fmt.Sprintf("Pareto sweep: router engine x design x scheme (%s)", cfg.bench())
		},
		InAll: true,
		Run: func(cfg ExpConfig) (Rows, SweepReport, error) {
			pts, rep, err := ParetoSweep(cfg, cfg.bench())
			return ParetoRows(pts), rep, err
		},
	})
	RegisterExperiment(Experiment{
		Name: "telemetry", About: "cycle-level probe comparison of designs A, D, F",
		Title: func(cfg ExpConfig) string {
			return "Telemetry: spatial and temporal view, designs A / D / F on " + cfg.bench() + ", " + schemeLabel(cfg)
		},
		InAll: false, // runs when named or when probe flags are set
		Run: func(cfg ExpConfig) (Rows, SweepReport, error) {
			tcfg := cfg.Telemetry
			if !tcfg.Enabled() {
				tcfg = telemetry.Config{Heatmap: true, SampleEvery: 200}
			}
			runs, rep, err := TelemetryCompare(cfg, cfg.bench(), tcfg)
			return TelemetryRows(runs), rep, err
		},
	})
	RegisterExperiment(Experiment{
		Name: "cmp", About: "sharing-contention sweep: 1-8 cores on the two-chiplet hierarchy (extension: the paper's CMP future work)",
		Title: func(cfg ExpConfig) string {
			return "CMP sharing contention: design H2 (mesh chiplets + bridge ring), " +
				cfg.bench() + ", directory policy, 1-8 cores"
		},
		InAll: false, // CMP fabric study; runs when named
		Run: func(cfg ExpConfig) (Rows, SweepReport, error) {
			res, rep, err := CMPSharing(cfg, "H2", cfg.bench())
			return res, rep, err
		},
	})
}

package core

import (
	"runtime"
	"time"

	"nucanet/internal/network"
	"nucanet/internal/sim"
	"nucanet/internal/stats"
)

// Engine fans independent simulation runs out to a bounded pool of
// worker goroutines. Each run owns its own kernel, RNG streams, and
// stats (see Run), so the only cross-goroutine traffic is the job index
// going out and the Result coming back; results land in submission
// order regardless of completion order, which keeps every sweep
// bit-identical to its sequential execution.
type Engine struct {
	workers int
}

// NewEngine returns an engine with the given parallelism. workers <= 0
// selects runtime.GOMAXPROCS(0); workers == 1 is the sequential
// reference execution.
func NewEngine(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{workers: workers}
}

// Workers returns the engine's parallelism.
func (e *Engine) Workers() int { return e.workers }

// SweepReport accounts one parallel sweep: per-run wall-clock times in
// submission order, the summed sequential work, and the sweep's actual
// wall time. Work/Wall is the realized speedup.
type SweepReport struct {
	Runs    int
	Workers int
	Wall    time.Duration
	Work    time.Duration // sum of per-run durations
	PerRun  []time.Duration
}

// Speedup returns summed-work over wall-clock — 1.0 for a sequential
// sweep, approaching Workers for a perfectly parallel one.
func (r SweepReport) Speedup() float64 {
	if r.Wall <= 0 {
		return 1
	}
	return float64(r.Work) / float64(r.Wall)
}

// RunAll executes every Options on the pool and returns the results in
// submission order. On error it returns the lowest-index run's error,
// exactly as a sequential loop would.
func (e *Engine) RunAll(opts []Options) ([]Result, SweepReport, error) {
	rep := SweepReport{Runs: len(opts), Workers: e.workers}
	out, durs, wall, err := sim.TimedParMap(e.workers, len(opts), func(i int) (Result, error) {
		return Run(opts[i])
	})
	if err != nil {
		return nil, rep, err
	}
	rep.Wall = wall
	rep.PerRun = durs
	for _, d := range durs {
		rep.Work += d
	}
	return out, rep, nil
}

// Aggregate merges the statistics of many runs into one rollup, using
// the Merge methods of stats.Latency and network.Stats. Adding results
// in submission order makes aggregates reproducible; the Merge methods
// are additionally order-invariant, so any combination tree yields the
// same aggregate (pinned by TestAggregateMergeOrderInvariance).
type Aggregate struct {
	Runs     int
	Accesses int64
	Latency  stats.Latency
	Network  network.Stats
	MemReads uint64
	MemWB    uint64
}

// Add folds one run's statistics into the aggregate.
func (a *Aggregate) Add(r Result) {
	a.Runs++
	a.Accesses += int64(r.Options.Accesses)
	if r.Latency != nil {
		a.Latency.Merge(r.Latency)
	}
	a.Network.Merge(r.Network)
	a.MemReads += r.Memory.Reads
	a.MemWB += r.Memory.WriteBacks
}

// AggregateOf rolls up a result slice in submission order.
func AggregateOf(rs []Result) Aggregate {
	var a Aggregate
	for _, r := range rs {
		a.Add(r)
	}
	return a
}

package core

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGoldens = flag.Bool("update", false, "rewrite experiment golden files")

// TestExperimentCatalogue pins the registry contents: the built-ins in
// the paper's presentation order, with the special-purpose telemetry
// and CMP experiments excluded from "all".
func TestExperimentCatalogue(t *testing.T) {
	want := []string{"t1", "t2", "t3", "t4", "f7", "f8", "f9", "headline", "energy", "power", "pareto", "telemetry", "cmp"}
	names := ExperimentNames()
	if len(names) < len(want) {
		t.Fatalf("ExperimentNames() = %v, want at least %v", names, want)
	}
	for i, name := range want {
		if names[i] != name {
			t.Fatalf("ExperimentNames()[%d] = %q, want %q (full: %v)", i, names[i], name, names)
		}
	}
	for _, name := range want {
		e, err := ExperimentByName(name)
		if err != nil {
			t.Fatalf("ExperimentByName(%q): %v", name, err)
		}
		wantInAll := name != "telemetry" && name != "cmp"
		if e.InAll != wantInAll {
			t.Errorf("experiment %q InAll = %v, want %v", name, e.InAll, wantInAll)
		}
		if e.About == "" || e.Title(DefaultExpConfig()) == "" {
			t.Errorf("experiment %q missing About or Title", name)
		}
	}
	if _, err := ExperimentByName("no-such-experiment"); err == nil {
		t.Error("ExperimentByName on an unknown name did not error")
	}
}

// TestExperimentGoldens locks the registry-dispatched output bytes to
// the committed goldens — the proof that folding the ad-hoc paperbench
// drivers into Experiment.Run/Rows.Render changed no output. Regenerate
// with: go test ./internal/core/ -run TestExperimentGoldens -update
func TestExperimentGoldens(t *testing.T) {
	cfg := ExpConfig{Accesses: 200, Seed: 42}
	for _, name := range []string{"t1", "t2", "t3", "t4", "f7", "energy", "power"} {
		t.Run(name, func(t *testing.T) {
			e, err := ExperimentByName(name)
			if err != nil {
				t.Fatal(err)
			}
			rows, _, err := e.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			fmt.Fprintf(&buf, "=== %s ===\n", e.Title(cfg))
			rows.Render(&buf)
			path := filepath.Join("testdata", "exp_"+name+".golden")
			if *updateGoldens {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("experiment %q output drifted from golden %s\ngot:\n%s", name, path, buf.String())
			}
		})
	}
}

// TestExperimentSchemeOverride pins that the registry path still honors
// the scheme override plumbing (the -policy/-mode flags).
func TestExperimentSchemeOverride(t *testing.T) {
	cfg := ExpConfig{Accesses: 100, Seed: 42, PolicyName: "no-such-policy"}
	e, err := ExperimentByName("energy")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Run(cfg); err == nil || !strings.Contains(err.Error(), "no-such-policy") {
		t.Errorf("energy with bad policy override: err = %v, want mention of the name", err)
	}
}

// TestExperimentGoldensShardInvariant reruns a slice of the experiment
// goldens with ExpConfig.Shards set: the registry output bytes must
// match the sequential goldens exactly, proving the -shards flag can
// never move a published table or figure.
func TestExperimentGoldensShardInvariant(t *testing.T) {
	cfg := ExpConfig{Accesses: 200, Seed: 42, Shards: 4}
	for _, name := range []string{"f7", "energy", "power"} {
		t.Run(name, func(t *testing.T) {
			e, err := ExperimentByName(name)
			if err != nil {
				t.Fatal(err)
			}
			rows, _, err := e.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			fmt.Fprintf(&buf, "=== %s ===\n", e.Title(cfg))
			rows.Render(&buf)
			want, err := os.ReadFile(filepath.Join("testdata", "exp_"+name+".golden"))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("experiment %q at 4 shards drifted from sequential golden\ngot:\n%s", name, buf.String())
			}
		})
	}
}

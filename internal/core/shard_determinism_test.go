package core

import (
	"bytes"
	"fmt"
	"testing"

	"nucanet/internal/router"
	"nucanet/internal/telemetry"
)

// shardFingerprint extends the determinism fingerprint with the
// telemetry channels sharded runs keep — the spatial heatmap and the
// occupancy time series, rendered to bytes. (The flit trace requires
// the sequential kernel and is gated off by Prepare.)
func shardFingerprint(t *testing.T, r Result) []byte {
	t.Helper()
	buf := bytes.NewBuffer(fingerprint(t, []Result{r}))
	tel := r.Telemetry
	if tel == nil {
		t.Fatal("nil telemetry collector")
	}
	if tel.Heat == nil || tel.Series == nil {
		t.Fatal("heatmap/series probes not wired")
	}
	tel.Heat.Render(buf)
	tel.Heat.RenderLinks(buf, 16)
	tel.Heat.RenderBanks(buf)
	tel.Series.Render(buf)
	return buf.Bytes()
}

// TestShardedRunMatchesSequential is the sharded kernel's determinism
// matrix: every Table 3 topology family crossed with every registered
// router engine, run at 2, 4, and 8 shards with the parallel worker
// path forced on, must reproduce the sequential (shards=0) Result —
// every measurement, the full latency accumulator, and the telemetry
// heatmap and time series — byte for byte. Run under -race (make
// raceshard) this doubles as the data-race audit of the wavefront and
// mailbox machinery.
func TestShardedRunMatchesSequential(t *testing.T) {
	accesses := 400
	if testing.Short() {
		accesses = 120
	}
	// One representative per topology family, including the two-chiplet
	// hierarchical fabric (H2), whose bridge-ring links cross shard cuts.
	for _, id := range []string{"A", "D", "F", "R", "H2"} {
		for _, engine := range router.Names() {
			id, engine := id, engine
			t.Run(fmt.Sprintf("%s/%s", id, engine), func(t *testing.T) {
				t.Parallel()
				opt := DefaultOptions()
				opt.DesignID = id
				opt.Router = engine
				opt.Accesses = accesses
				opt.Telemetry = telemetry.Config{Heatmap: true, SampleEvery: 64}
				if _, err := Prepare(opt, nil); err != nil {
					t.Skipf("combination rejected statically: %v", err)
				}
				seq, err := Run(opt)
				if err != nil {
					t.Fatal(err)
				}
				want := shardFingerprint(t, seq)
				for _, shards := range []int{2, 4, 8} {
					o := opt
					o.Shards = shards
					art, err := Prepare(o, nil)
					if err != nil {
						t.Fatalf("shards=%d: %v", shards, err)
					}
					in, err := NewInstance(art, nil)
					if err != nil {
						t.Fatalf("shards=%d: %v", shards, err)
					}
					// Force the worker-pool path even on one CPU so the
					// wavefront protocol itself is what this matrix (and
					// its -race runs) exercises; inline windows are the
					// merge-walk of the same schedule.
					in.K.SetParallel(true)
					res, err := in.RunToCompletion()
					if err != nil {
						t.Fatalf("shards=%d: %v", shards, err)
					}
					if got := shardFingerprint(t, res); !bytes.Equal(got, want) {
						t.Errorf("shards=%d diverged from sequential run (kernel shards: %d)\nsequential:\n%s\nsharded:\n%s",
							shards, in.K.Shards(), want, got)
					}
				}
			})
		}
	}
}

package core

import (
	"fmt"
	"strings"
	"testing"

	"nucanet/internal/cache"
)

func engineJobs(accesses int) []Options {
	var opts []Options
	for _, bench := range []string{"gcc", "art", "mcf"} {
		opts = append(opts, Options{
			DesignID: "A", Policy: cache.FastLRU, Mode: cache.Multicast,
			Benchmark: bench, Accesses: accesses, Seed: 11,
		})
	}
	return opts
}

func TestEngineRunAllMatchesDirectRuns(t *testing.T) {
	opts := engineJobs(200)
	got, rep, err := NewEngine(4).RunAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Runs != len(opts) || rep.Workers != 4 || len(rep.PerRun) != len(opts) {
		t.Fatalf("report shape wrong: %+v", rep)
	}
	if rep.Work <= 0 || rep.Wall <= 0 {
		t.Fatalf("report did not account time: %+v", rep)
	}
	for i, opt := range opts {
		want, err := Run(opt)
		if err != nil {
			t.Fatal(err)
		}
		if got[i].IPC != want.IPC || got[i].AvgLatency != want.AvgLatency ||
			got[i].Network != want.Network {
			t.Errorf("job %d (%s): engine result differs from direct Run", i, opt.Benchmark)
		}
	}
}

func TestEngineErrorPropagation(t *testing.T) {
	opts := engineJobs(100)
	opts[1].Benchmark = "no-such-benchmark"
	for _, workers := range []int{1, 4} {
		_, _, err := NewEngine(workers).RunAll(opts)
		if err == nil || !strings.Contains(err.Error(), "no-such-benchmark") {
			t.Errorf("workers=%d: err = %v, want the bad-benchmark error", workers, err)
		}
	}
}

func TestEngineWorkerDefaults(t *testing.T) {
	if w := NewEngine(0).Workers(); w < 1 {
		t.Errorf("default workers = %d, want >= 1", w)
	}
	if w := NewEngine(3).Workers(); w != 3 {
		t.Errorf("workers = %d, want 3", w)
	}
}

func TestSweepReportSpeedup(t *testing.T) {
	r := SweepReport{Wall: 2e9, Work: 6e9}
	if s := r.Speedup(); s < 2.9 || s > 3.1 {
		t.Errorf("speedup = %v, want 3", s)
	}
	if s := (SweepReport{}).Speedup(); s != 1 {
		t.Errorf("zero-wall speedup = %v, want 1", s)
	}
}

// TestAggregateMergeOrderInvariance pins the property that lets the
// engine combine run statistics in submission order while workers finish
// in any order: the merged aggregate is independent of merge order.
func TestAggregateMergeOrderInvariance(t *testing.T) {
	rs, _, err := NewEngine(0).RunAll(engineJobs(200))
	if err != nil {
		t.Fatal(err)
	}
	fwd := AggregateOf(rs)
	rev := Aggregate{}
	for i := len(rs) - 1; i >= 0; i-- {
		rev.Add(rs[i])
	}
	fa := fmt.Sprintf("%v %v %+v ways=%v", fwd.Runs, fwd.Latency.String(), fwd.Network, fwd.Latency.HitWays())
	fb := fmt.Sprintf("%v %v %+v ways=%v", rev.Runs, rev.Latency.String(), rev.Network, rev.Latency.HitWays())
	if fa != fb {
		t.Errorf("aggregate depends on merge order:\nfwd: %s\nrev: %s", fa, fb)
	}
	if fwd.Runs != 3 || fwd.Latency.Count == 0 || fwd.Network.FlitsInjected == 0 {
		t.Errorf("aggregate empty: %+v", fwd)
	}
	// The merged accumulator must equal the sum of its parts.
	var wantCount, wantSum int64
	for _, r := range rs {
		wantCount += r.Latency.Count
		wantSum += r.Latency.Sum
	}
	if fwd.Latency.Count != wantCount || fwd.Latency.Sum != wantSum {
		t.Errorf("merged latency %d/%d, want %d/%d",
			fwd.Latency.Count, fwd.Latency.Sum, wantCount, wantSum)
	}
}

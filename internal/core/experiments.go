package core

import (
	"math"

	"nucanet/internal/area"
	"nucanet/internal/bank"
	"nucanet/internal/cache"
	"nucanet/internal/config"
	"nucanet/internal/cpu"
	"nucanet/internal/energy"
	"nucanet/internal/sim"
	"nucanet/internal/trace"
)

// Scheme pairs a replacement policy with a request mode — the five bars
// of Figure 8.
type Scheme struct {
	Name   string
	Policy cache.Policy
	Mode   cache.Mode
}

// Fig8Schemes returns the five evaluated schemes in the paper's order.
func Fig8Schemes() []Scheme {
	return []Scheme{
		{"unicast+promotion", cache.Promotion, cache.Unicast},
		{"unicast+LRU", cache.LRU, cache.Unicast},
		{"unicast+fastLRU", cache.FastLRU, cache.Unicast},
		{"multicast+promotion", cache.Promotion, cache.Multicast},
		{"multicast+fastLRU", cache.FastLRU, cache.Multicast},
	}
}

// ExpConfig bounds the experiment size.
type ExpConfig struct {
	Accesses int
	Seed     uint64
}

// DefaultExpConfig keeps the full figure sweeps to a few minutes.
func DefaultExpConfig() ExpConfig { return ExpConfig{Accesses: 8000, Seed: 42} }

// Fig7Row is one bar of Figure 7: the latency split of the unicast LRU
// baseline (Design A).
type Fig7Row struct {
	Benchmark               string
	BankPct, NetPct, MemPct float64
}

// Fig7 regenerates Figure 7.
func Fig7(cfg ExpConfig) ([]Fig7Row, error) {
	var out []Fig7Row
	for _, name := range trace.Names() {
		r, err := Run(Options{
			DesignID: "A", Policy: cache.LRU, Mode: cache.Unicast,
			Benchmark: name, Accesses: cfg.Accesses, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, Fig7Row{
			Benchmark: name,
			BankPct:   100 * r.BankShare,
			NetPct:    100 * r.NetworkShare,
			MemPct:    100 * r.MemShare,
		})
	}
	return out, nil
}

// Fig8Cell is one (benchmark, scheme) measurement of Figure 8.
type Fig8Cell struct {
	Benchmark string
	Scheme    string
	AvgLat    float64 // Figure 8(a)
	HitLat    float64 // Figure 8(b)
	MissLat   float64 // Figure 8(c)
	OccLat    float64 // column occupancy: issue -> replacement complete
	IPC       float64
	HitRate   float64
	MRUShare  float64
}

// Fig8 regenerates Figure 8: all five schemes on Design A per benchmark.
func Fig8(cfg ExpConfig) ([]Fig8Cell, error) {
	var out []Fig8Cell
	for _, name := range trace.Names() {
		for _, s := range Fig8Schemes() {
			r, err := Run(Options{
				DesignID: "A", Policy: s.Policy, Mode: s.Mode,
				Benchmark: name, Accesses: cfg.Accesses, Seed: cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			out = append(out, Fig8Cell{
				Benchmark: name, Scheme: s.Name,
				AvgLat: r.AvgLatency, HitLat: r.AvgHit, MissLat: r.AvgMiss,
				OccLat: r.AvgOccupancy,
				IPC:    r.IPC, HitRate: r.HitRate, MRUShare: r.MRUHitShare,
			})
		}
	}
	return out, nil
}

// Fig9Cell is one (benchmark, design) measurement of Figure 9.
type Fig9Cell struct {
	Benchmark     string
	DesignID      string
	IPC           float64
	NormalizedIPC float64 // relative to Design A on the same benchmark
	AvgLat        float64
}

// Fig9 regenerates Figure 9: Designs A-F with multicast Fast-LRU.
func Fig9(cfg ExpConfig) ([]Fig9Cell, error) {
	var out []Fig9Cell
	for _, name := range trace.Names() {
		var baseIPC float64
		for _, d := range config.Designs() {
			r, err := Run(Options{
				DesignID: d.ID, Policy: cache.FastLRU, Mode: cache.Multicast,
				Benchmark: name, Accesses: cfg.Accesses, Seed: cfg.Seed,
			})
			if err != nil {
				return nil, err
			}
			if d.ID == "A" {
				baseIPC = r.IPC
			}
			out = append(out, Fig9Cell{
				Benchmark: name, DesignID: d.ID,
				IPC: r.IPC, NormalizedIPC: r.IPC / baseIPC, AvgLat: r.AvgLatency,
			})
		}
	}
	return out, nil
}

// Table4 regenerates the area analysis.
func Table4() []area.Report {
	return area.Table4(area.DefaultModel())
}

// Headline carries the abstract's three claims, recomputed.
type Headline struct {
	// IPCGainVsMeshPromotion: halo (F) multicast Fast-LRU vs mesh (A)
	// multicast Promotion — the paper reports +38% on average.
	IPCGainVsMeshPromotion float64
	// InterconnectAreaRatio: design F network area over design A's —
	// the paper reports 23%.
	InterconnectAreaRatio float64
	// FastLRUIPCGain: multicast Fast-LRU vs multicast Promotion on the
	// mesh — the paper reports +20%.
	FastLRUIPCGain float64
	// HaloIPCGain: design F vs design A, both multicast Fast-LRU — the
	// abstract attributes +18% to the halo topology.
	HaloIPCGain float64
}

// ComputeHeadline reruns the relevant configurations and aggregates the
// geometric-mean gains across all benchmarks.
func ComputeHeadline(cfg ExpConfig) (Headline, error) {
	var h Headline
	gm := func(ratios []float64) float64 {
		p := 1.0
		for _, r := range ratios {
			p *= r
		}
		return math.Pow(p, 1/float64(len(ratios)))
	}
	var vsPromo, fastGain, haloGain []float64
	for _, name := range trace.Names() {
		base, err := Run(Options{DesignID: "A", Policy: cache.Promotion, Mode: cache.Multicast,
			Benchmark: name, Accesses: cfg.Accesses, Seed: cfg.Seed})
		if err != nil {
			return h, err
		}
		meshFast, err := Run(Options{DesignID: "A", Policy: cache.FastLRU, Mode: cache.Multicast,
			Benchmark: name, Accesses: cfg.Accesses, Seed: cfg.Seed})
		if err != nil {
			return h, err
		}
		haloFast, err := Run(Options{DesignID: "F", Policy: cache.FastLRU, Mode: cache.Multicast,
			Benchmark: name, Accesses: cfg.Accesses, Seed: cfg.Seed})
		if err != nil {
			return h, err
		}
		vsPromo = append(vsPromo, haloFast.IPC/base.IPC)
		fastGain = append(fastGain, meshFast.IPC/base.IPC)
		haloGain = append(haloGain, haloFast.IPC/meshFast.IPC)
	}
	h.IPCGainVsMeshPromotion = gm(vsPromo)
	h.FastLRUIPCGain = gm(fastGain)
	h.HaloIPCGain = gm(haloGain)

	reps := Table4()
	var aNet, fNet float64
	for _, r := range reps {
		switch r.DesignID {
		case "A":
			aNet = r.NetworkMM2()
		case "F":
			fNet = r.NetworkMM2()
		}
	}
	h.InterconnectAreaRatio = fNet / aNet
	return h, nil
}

// EnergyCell is one design's energy estimate (extension experiment: the
// paper names energy analysis as future work).
type EnergyCell struct {
	DesignID string
	Report   energy.Report
	IPC      float64
}

// EnergyComparison estimates the energy of all six designs under
// multicast Fast-LRU for one benchmark.
func EnergyComparison(cfg ExpConfig, bench string) ([]EnergyCell, error) {
	var out []EnergyCell
	for _, d := range config.Designs() {
		r, err := Run(Options{
			DesignID: d.ID, Policy: cache.FastLRU, Mode: cache.Multicast,
			Benchmark: bench, Accesses: cfg.Accesses, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, EnergyCell{DesignID: d.ID, Report: r.Energy, IPC: r.IPC})
	}
	return out, nil
}

// PowerCell is one operating point of the power-gating sweep (extension:
// the paper's "on-demand power control scheme that can dynamically turn
// on/off a subset of cache systems").
type PowerCell struct {
	WaysOn     int // banks powered per column (rows kept)
	CapacityKB int
	IPC        float64
	HitRate    float64
	Energy     energy.Report
}

// PowerGatingSweep gates the farthest banks of every Design A column,
// shrinking the powered cache from 16 ways down to 2, and measures the
// performance/energy operating points of the resulting curve: gated banks
// contribute neither capacity nor network/bank activity.
func PowerGatingSweep(cfg ExpConfig, bench string) ([]PowerCell, error) {
	base, err := config.DesignByID("A")
	if err != nil {
		return nil, err
	}
	var out []PowerCell
	for _, ways := range []int{16, 12, 8, 4, 2} {
		d := base
		d.ID = "A-gated"
		d.H = ways
		d.Banks = d.Banks[:ways]
		d.MemX = d.CoreX // keep the memory column valid for short meshes
		gated, err := runDesign(d, bench, cfg)
		if err != nil {
			return nil, err
		}
		gated.WaysOn = ways
		gated.CapacityKB = d.CapacityKB()
		out = append(out, gated)
	}
	return out, nil
}

// runDesign runs an ad-hoc design (not in Table 3) with multicast
// Fast-LRU and collects the power-sweep measurements.
func runDesign(d config.Design, bench string, cfg ExpConfig) (PowerCell, error) {
	prof, err := trace.ProfileByName(bench)
	if err != nil {
		return PowerCell{}, err
	}
	k := sim.NewKernel()
	sys := cache.New(k, d, cache.FastLRU, cache.Multicast)
	gen := trace.NewSynthetic(prof, sys.AM, cfg.Seed)
	sys.Warm(gen.WarmBlocks(d.Ways()))
	c := cpu.New(k, sys, prof, trace.Take(gen, cfg.Accesses), cpu.DefaultConfig())
	res, err := c.Run(1 << 40)
	if err != nil {
		return PowerCell{}, err
	}
	if err := sys.Drain(1 << 30); err != nil {
		return PowerCell{}, err
	}
	memStats := sys.Memory.Stats()
	erep := energy.DefaultModel().Estimate(energy.Activity{
		FlitHops:     sys.Net.Stats().Router.FlitsRouted,
		BankAccesses: sys.BankAccessesBySize(),
		MemBlocks:    memStats.Reads + memStats.WriteBacks,
		Accesses:     uint64(cfg.Accesses),
	})
	return PowerCell{IPC: res.IPC(), HitRate: sys.Lat.HitRate(), Energy: erep}, nil
}

// Table2Row reports the generator's self-check against the Table 2
// profile it models.
type Table2Row struct {
	Profile       trace.Profile
	GenWriteFrac  float64
	GenAccPerInst float64
	GenHitRate16  float64 // reference 16-way LRU hit rate of the stream
}

// Table2Check drives each generator and measures the quantities Table 2
// pins down plus the modeled hit rate.
func Table2Check(n int, seed uint64) []Table2Row {
	am := trace.AddrMap{Columns: 16, Sets: 1024}
	var out []Table2Row
	for _, p := range trace.Profiles() {
		g := trace.NewSynthetic(p, am, seed)
		ref := cache.NewGolden(cache.LRU, uniformSpecs(16), am.Columns, am.Sets)
		warm := g.WarmBlocks(16)
		for set := 0; set < am.Sets; set++ {
			for c := 0; c < am.Columns; c++ {
				ref.Warm(c, set, warm[set*am.Columns+c])
			}
		}
		writes, hits := 0, 0
		var instr int64
		for i := 0; i < n; i++ {
			a := g.Next()
			instr += a.Gap
			if a.Write {
				writes++
			}
			hit, _, _, _ := ref.Access(am.ColumnOf(a.Addr), am.SetOf(a.Addr), am.TagOf(a.Addr))
			if hit {
				hits++
			}
		}
		out = append(out, Table2Row{
			Profile:       p,
			GenWriteFrac:  float64(writes) / float64(n),
			GenAccPerInst: float64(n) / float64(instr),
			GenHitRate16:  float64(hits) / float64(n),
		})
	}
	return out
}

func uniformSpecs(n int) []bank.Spec {
	out := make([]bank.Spec, n)
	for i := range out {
		out[i] = bank.Spec{SizeKB: 64, Ways: 1}
	}
	return out
}

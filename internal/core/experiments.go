package core

import (
	"math"

	"nucanet/internal/area"
	"nucanet/internal/bank"
	"nucanet/internal/cache"
	"nucanet/internal/config"
	"nucanet/internal/energy"
	"nucanet/internal/router"
	"nucanet/internal/telemetry"
	"nucanet/internal/trace"
)

// Scheme pairs a replacement policy with a request mode — the five bars
// of Figure 8.
type Scheme struct {
	Name   string
	Policy cache.Policy
	Mode   cache.Mode
}

// Fig8Schemes returns the five evaluated schemes in the paper's order.
func Fig8Schemes() []Scheme {
	return []Scheme{
		{"unicast+promotion", cache.Promotion, cache.Unicast},
		{"unicast+LRU", cache.LRU, cache.Unicast},
		{"unicast+fastLRU", cache.FastLRU, cache.Unicast},
		{"multicast+promotion", cache.Promotion, cache.Multicast},
		{"multicast+fastLRU", cache.FastLRU, cache.Multicast},
	}
}

// ExpConfig bounds the experiment size and its parallelism.
type ExpConfig struct {
	Accesses int
	Seed     uint64
	// Workers is the sweep parallelism (the -j flag): 0 runs one worker
	// per core, 1 forces the sequential reference execution. Runs are
	// independent and results are combined in submission order, so every
	// value of Workers produces byte-identical experiment output (pinned
	// by the determinism regression test).
	Workers int
	// PolicyName and ModeName override the replacement scheme of the
	// single-scheme experiments (Fig9, energy, power gating, telemetry);
	// empty keeps each experiment's paper configuration (multicast
	// Fast-LRU). Names resolve through the cache registry, so a policy
	// added with cache.RegisterPolicy works here — and on the CLIs — with
	// no further plumbing. Fixed-scheme reproductions (Fig7's unicast-LRU
	// baseline, Fig8's five-scheme comparison, the headline claims)
	// ignore the override by design.
	PolicyName string
	ModeName   string
	// RouterName overrides the router microarchitecture of every run in
	// an experiment (the -router flag); empty keeps each design's engine.
	// Names resolve through the router registry, like PolicyName through
	// the cache registry.
	RouterName string
	// Bench selects the benchmark of the single-benchmark experiments
	// (energy, power, pareto, telemetry, placement); empty keeps the
	// paper's gcc. The all-benchmark sweeps (f7-f9, headline) ignore it.
	Bench string
	// Telemetry configures the probes of the telemetry experiment; the
	// zero value selects its default probe set. Other experiments ignore
	// it.
	Telemetry telemetry.Config
	// Fleet routes sweeps through the bulk-synchronous fleet evaluator
	// when one is linked in (see SetBulkRunner) — bit-identical results,
	// shared preparation. False keeps the per-run goroutine engine.
	Fleet bool
	// Shards runs every simulation in the sweep on N kernel shards (the
	// -shards flag). Purely an execution knob: any value produces
	// byte-identical experiment output, pinned by the determinism matrix.
	Shards int
	// Cores runs every simulation with N trace-driven cores on the CMP
	// fabric (the -cores flag); 0 keeps the classic single-core path.
	// Experiments over designs that cannot host cores (the radial halos)
	// reject the combination. The cmp experiment ignores it: sweeping
	// core counts is the experiment.
	Cores int
}

// bench resolves the single-benchmark experiments' benchmark.
func (cfg ExpConfig) bench() string {
	if cfg.Bench == "" {
		return "gcc"
	}
	return cfg.Bench
}

// bulkRunner is the fleet evaluator's entry point, registered by
// internal/fleet's init through SetBulkRunner. The indirection exists
// because fleet builds on core: core cannot import it back.
var bulkRunner func(opts []Options, workers int) ([]Result, SweepReport, error)

// SetBulkRunner installs the batch evaluator ExpConfig.Fleet selects.
// The runner must return results bit-identical to Engine.RunAll in
// submission order with the same error semantics; internal/fleet
// registers its lockstep evaluator here.
func SetBulkRunner(fn func(opts []Options, workers int) ([]Result, SweepReport, error)) {
	bulkRunner = fn
}

// DefaultExpConfig keeps the full figure sweeps to a few minutes.
func DefaultExpConfig() ExpConfig { return ExpConfig{Accesses: 8000, Seed: 42} }

// scheme resolves the configured override against an experiment's paper
// defaults, erroring on names no registered policy or mode answers to.
func (cfg ExpConfig) scheme(p cache.Policy, m cache.Mode) (cache.Policy, cache.Mode, error) {
	var err error
	if cfg.PolicyName != "" {
		if p, err = cache.PolicyByName(cfg.PolicyName); err != nil {
			return p, m, err
		}
	}
	if cfg.ModeName != "" {
		if m, err = cache.ParseMode(cfg.ModeName); err != nil {
			return p, m, err
		}
	}
	return p, m, nil
}

// run builds the Options for one (design, scheme, benchmark) cell.
func (cfg ExpConfig) run(designID string, p cache.Policy, m cache.Mode, bench string) Options {
	return Options{
		DesignID: designID, Policy: p, Mode: m, Router: cfg.RouterName,
		Benchmark: bench, Accesses: cfg.Accesses, Seed: cfg.Seed,
		Shards: cfg.Shards, Cores: cfg.Cores,
	}
}

// sweep fans the job list out on the engine configured by cfg: the
// per-run goroutine engine, or the registered fleet evaluator when
// cfg.Fleet asks for it (identical results either way).
func (cfg ExpConfig) sweep(opts []Options) ([]Result, SweepReport, error) {
	if cfg.Fleet && bulkRunner != nil {
		return bulkRunner(opts, cfg.Workers)
	}
	return NewEngine(cfg.Workers).RunAll(opts)
}

// Fig7Row is one bar of Figure 7: the latency split of the unicast LRU
// baseline (Design A).
type Fig7Row struct {
	Benchmark               string
	BankPct, NetPct, MemPct float64
	// P50 and P99 are the access-latency percentiles from the run's
	// log-bucketed histogram (cycles).
	P50, P99 int64
}

// Fig7 regenerates Figure 7.
func Fig7(cfg ExpConfig) ([]Fig7Row, SweepReport, error) {
	names := trace.Names()
	opts := make([]Options, len(names))
	for i, name := range names {
		opts[i] = cfg.run("A", cache.LRU, cache.Unicast, name)
	}
	rs, rep, err := cfg.sweep(opts)
	if err != nil {
		return nil, rep, err
	}
	out := make([]Fig7Row, len(rs))
	for i, r := range rs {
		out[i] = Fig7Row{
			Benchmark: names[i],
			BankPct:   100 * r.BankShare,
			NetPct:    100 * r.NetworkShare,
			MemPct:    100 * r.MemShare,
			P50:       r.Latency.Percentile(0.50),
			P99:       r.Latency.Percentile(0.99),
		}
	}
	return out, rep, nil
}

// Fig8Cell is one (benchmark, scheme) measurement of Figure 8.
type Fig8Cell struct {
	Benchmark string
	Scheme    string
	AvgLat    float64 // Figure 8(a)
	HitLat    float64 // Figure 8(b)
	MissLat   float64 // Figure 8(c)
	OccLat    float64 // column occupancy: issue -> replacement complete
	IPC       float64
	HitRate   float64
	MRUShare  float64
}

// Fig8 regenerates Figure 8: all five schemes on Design A per benchmark.
func Fig8(cfg ExpConfig) ([]Fig8Cell, SweepReport, error) {
	schemes := Fig8Schemes()
	var opts []Options
	var cells []Fig8Cell
	for _, name := range trace.Names() {
		for _, s := range schemes {
			opts = append(opts, cfg.run("A", s.Policy, s.Mode, name))
			cells = append(cells, Fig8Cell{Benchmark: name, Scheme: s.Name})
		}
	}
	rs, rep, err := cfg.sweep(opts)
	if err != nil {
		return nil, rep, err
	}
	for i, r := range rs {
		c := &cells[i]
		c.AvgLat, c.HitLat, c.MissLat = r.AvgLatency, r.AvgHit, r.AvgMiss
		c.OccLat = r.AvgOccupancy
		c.IPC, c.HitRate, c.MRUShare = r.IPC, r.HitRate, r.MRUHitShare
	}
	return cells, rep, nil
}

// Fig9Cell is one (benchmark, design) measurement of Figure 9.
type Fig9Cell struct {
	Benchmark     string
	DesignID      string
	IPC           float64
	NormalizedIPC float64 // relative to Design A on the same benchmark
	AvgLat        float64
	// P50 and P99 are the access-latency percentiles (cycles): the tail
	// view the averages hide — halo designs shorten the tail, not just
	// the mean.
	P50, P99 int64
}

// Fig9 regenerates Figure 9: Designs A-F with multicast Fast-LRU (or the
// config's scheme override).
func Fig9(cfg ExpConfig) ([]Fig9Cell, SweepReport, error) {
	p, m, err := cfg.scheme(cache.FastLRU, cache.Multicast)
	if err != nil {
		return nil, SweepReport{}, err
	}
	designs := config.Designs()
	var opts []Options
	var cells []Fig9Cell
	for _, name := range trace.Names() {
		for _, d := range designs {
			opts = append(opts, cfg.run(d.ID, p, m, name))
			cells = append(cells, Fig9Cell{Benchmark: name, DesignID: d.ID})
		}
	}
	rs, rep, err := cfg.sweep(opts)
	if err != nil {
		return nil, rep, err
	}
	// Normalization runs after the sweep, in submission order: each
	// benchmark's block leads with Design A, its IPC is that block's base.
	var baseIPC float64
	for i, r := range rs {
		if cells[i].DesignID == "A" {
			baseIPC = r.IPC
		}
		cells[i].IPC = r.IPC
		cells[i].NormalizedIPC = r.IPC / baseIPC
		cells[i].AvgLat = r.AvgLatency
		cells[i].P50 = r.Latency.Percentile(0.50)
		cells[i].P99 = r.Latency.Percentile(0.99)
	}
	return cells, rep, nil
}

// Table4 regenerates the area analysis.
func Table4() ([]area.Report, error) {
	return area.Table4(area.DefaultModel())
}

// Headline carries the abstract's three claims, recomputed.
type Headline struct {
	// IPCGainVsMeshPromotion: halo (F) multicast Fast-LRU vs mesh (A)
	// multicast Promotion — the paper reports +38% on average.
	IPCGainVsMeshPromotion float64
	// InterconnectAreaRatio: design F network area over design A's —
	// the paper reports 23%.
	InterconnectAreaRatio float64
	// FastLRUIPCGain: multicast Fast-LRU vs multicast Promotion on the
	// mesh — the paper reports +20%.
	FastLRUIPCGain float64
	// HaloIPCGain: design F vs design A, both multicast Fast-LRU — the
	// abstract attributes +18% to the halo topology.
	HaloIPCGain float64
}

// ComputeHeadline reruns the relevant configurations and aggregates the
// geometric-mean gains across all benchmarks.
func ComputeHeadline(cfg ExpConfig) (Headline, SweepReport, error) {
	var h Headline
	names := trace.Names()
	// Three runs per benchmark: mesh Promotion base, mesh Fast-LRU,
	// halo Fast-LRU — flattened so the engine sees one job list.
	var opts []Options
	for _, name := range names {
		opts = append(opts,
			cfg.run("A", cache.Promotion, cache.Multicast, name),
			cfg.run("A", cache.FastLRU, cache.Multicast, name),
			cfg.run("F", cache.FastLRU, cache.Multicast, name))
	}
	rs, rep, err := cfg.sweep(opts)
	if err != nil {
		return h, rep, err
	}
	gm := func(ratios []float64) float64 {
		p := 1.0
		for _, r := range ratios {
			p *= r
		}
		return math.Pow(p, 1/float64(len(ratios)))
	}
	var vsPromo, fastGain, haloGain []float64
	for i := range names {
		base, meshFast, haloFast := rs[3*i], rs[3*i+1], rs[3*i+2]
		vsPromo = append(vsPromo, haloFast.IPC/base.IPC)
		fastGain = append(fastGain, meshFast.IPC/base.IPC)
		haloGain = append(haloGain, haloFast.IPC/meshFast.IPC)
	}
	h.IPCGainVsMeshPromotion = gm(vsPromo)
	h.FastLRUIPCGain = gm(fastGain)
	h.HaloIPCGain = gm(haloGain)

	reps, err := Table4()
	if err != nil {
		return h, rep, err
	}
	var aNet, fNet float64
	for _, r := range reps {
		switch r.DesignID {
		case "A":
			aNet = r.NetworkMM2()
		case "F":
			fNet = r.NetworkMM2()
		}
	}
	h.InterconnectAreaRatio = fNet / aNet
	return h, rep, nil
}

// EnergyCell is one design's energy estimate (extension experiment: the
// paper names energy analysis as future work).
type EnergyCell struct {
	DesignID string
	Report   energy.Report
	IPC      float64
}

// EnergyComparison estimates the energy of all six designs under
// multicast Fast-LRU (or the config's scheme override) for one benchmark.
func EnergyComparison(cfg ExpConfig, bench string) ([]EnergyCell, SweepReport, error) {
	p, m, err := cfg.scheme(cache.FastLRU, cache.Multicast)
	if err != nil {
		return nil, SweepReport{}, err
	}
	designs := config.Designs()
	opts := make([]Options, len(designs))
	for i, d := range designs {
		opts[i] = cfg.run(d.ID, p, m, bench)
	}
	rs, rep, err := cfg.sweep(opts)
	if err != nil {
		return nil, rep, err
	}
	out := make([]EnergyCell, len(rs))
	for i, r := range rs {
		out[i] = EnergyCell{DesignID: designs[i].ID, Report: r.Energy, IPC: r.IPC}
	}
	return out, rep, nil
}

// PowerCell is one operating point of the power-gating sweep (extension:
// the paper's "on-demand power control scheme that can dynamically turn
// on/off a subset of cache systems").
type PowerCell struct {
	WaysOn     int // banks powered per column (rows kept)
	CapacityKB int
	IPC        float64
	HitRate    float64
	Energy     energy.Report
}

// PowerGatingSweep gates the farthest banks of every Design A column,
// shrinking the powered cache from 16 ways down to 2, and measures the
// performance/energy operating points of the resulting curve: gated banks
// contribute neither capacity nor network/bank activity. The gated
// designs run through the engine via the Options.Design override.
func PowerGatingSweep(cfg ExpConfig, bench string) ([]PowerCell, SweepReport, error) {
	base, err := config.DesignByID("A")
	if err != nil {
		return nil, SweepReport{}, err
	}
	p, m, err := cfg.scheme(cache.FastLRU, cache.Multicast)
	if err != nil {
		return nil, SweepReport{}, err
	}
	waysOn := []int{16, 12, 8, 4, 2}
	opts := make([]Options, len(waysOn))
	out := make([]PowerCell, len(waysOn))
	for i, ways := range waysOn {
		d := base
		d.ID = "A-gated"
		d.Params.H = ways
		d.Banks = d.Banks[:ways]       // re-slice only: the backing array is shared read-only
		d.Params.MemX = d.Params.CoreX // keep the memory column valid for short meshes
		gated := d
		opts[i] = Options{
			Design: &gated, Policy: p, Mode: m,
			Benchmark: bench, Accesses: cfg.Accesses, Seed: cfg.Seed,
			Shards: cfg.Shards,
		}
		out[i] = PowerCell{WaysOn: ways, CapacityKB: d.CapacityKB()}
	}
	rs, rep, err := cfg.sweep(opts)
	if err != nil {
		return nil, rep, err
	}
	for i, r := range rs {
		out[i].IPC = r.IPC
		out[i].HitRate = r.HitRate
		out[i].Energy = r.Energy
	}
	return out, rep, nil
}

// ParetoPoint is one (router, design, scheme) operating point of the
// cost/performance sweep: silicon cost from the area model, energy and
// latency from the simulation. Points no engine can run carry the reason
// in Skipped instead of measurements.
type ParetoPoint struct {
	RouterName string
	DesignID   string
	Scheme     string

	IPC      float64
	AvgLat   float64 // average L2 access latency (cycles)
	AreaMM2  float64 // L2 area: banks + routers + links
	NetMM2   float64 // interconnect share of AreaMM2
	EnergyNJ float64 // nJ per L2 access

	// Frontier marks points no other point dominates (lower area, lower
	// latency, and lower energy, strictly better in at least one).
	Frontier bool
	// Skipped carries the constructor's rejection for combinations the
	// engine declared unsupported; the point has no measurements.
	Skipped string
}

// dominated reports whether q beats p on every Pareto axis (area,
// latency, energy) and strictly on at least one.
func (p ParetoPoint) dominated(q ParetoPoint) bool {
	if q.AreaMM2 > p.AreaMM2 || q.AvgLat > p.AvgLat || q.EnergyNJ > p.EnergyNJ {
		return false
	}
	return q.AreaMM2 < p.AreaMM2 || q.AvgLat < p.AvgLat || q.EnergyNJ < p.EnergyNJ
}

// ParetoSweep crosses every registered router microarchitecture with the
// mesh (A), simplified mesh (D), halo (F), and ring (R) representatives
// and both multicast schemes on one benchmark, then marks the
// area/latency/energy frontier. Combinations an engine rejects (its
// Supports declaration) are reported as skipped rather than failing the
// sweep, so registering a constrained engine never breaks the experiment.
func ParetoSweep(cfg ExpConfig, bench string) ([]ParetoPoint, SweepReport, error) {
	schemes := []Scheme{
		{"multicast+promotion", cache.Promotion, cache.Multicast},
		{"multicast+fastLRU", cache.FastLRU, cache.Multicast},
	}
	ids := []string{"A", "D", "F", "R"}
	model := area.DefaultModel()
	var opts []Options
	var pts []ParetoPoint
	for _, rt := range router.Names() {
		for _, id := range ids {
			for _, s := range schemes {
				o := cfg.run(id, s.Policy, s.Mode, bench)
				o.Router = rt
				pt := ParetoPoint{RouterName: rt, DesignID: id, Scheme: s.Name}
				if err := o.Validate(); err != nil {
					pt.Skipped = err.Error()
					pts = append(pts, pt)
					continue
				}
				d, err := config.DesignByID(id)
				if err != nil {
					return nil, SweepReport{}, err
				}
				d.Router.Engine = rt
				rep, err := model.Analyze(d)
				if err != nil {
					return nil, SweepReport{}, err
				}
				pt.AreaMM2, pt.NetMM2 = rep.L2MM2(), rep.NetworkMM2()
				opts = append(opts, o)
				pts = append(pts, pt)
			}
		}
	}
	rs, rep, err := cfg.sweep(opts)
	if err != nil {
		return nil, rep, err
	}
	// Results map back in submission order; skipped points consumed none.
	j := 0
	for i := range pts {
		if pts[i].Skipped != "" {
			continue
		}
		r := rs[j]
		j++
		pts[i].IPC = r.IPC
		pts[i].AvgLat = r.AvgLatency
		pts[i].EnergyNJ = r.Energy.PerAccessNJ()
	}
	for i := range pts {
		if pts[i].Skipped != "" {
			continue
		}
		dom := false
		for k := range pts {
			if k != i && pts[k].Skipped == "" && pts[i].dominated(pts[k]) {
				dom = true
				break
			}
		}
		pts[i].Frontier = !dom
	}
	return pts, rep, nil
}

// Table2Row reports the generator's self-check against the Table 2
// profile it models.
type Table2Row struct {
	Profile       trace.Profile
	GenWriteFrac  float64
	GenAccPerInst float64
	GenHitRate16  float64 // reference 16-way LRU hit rate of the stream
}

// Table2Check drives each generator and measures the quantities Table 2
// pins down plus the modeled hit rate.
func Table2Check(n int, seed uint64) []Table2Row {
	am := trace.AddrMap{Columns: 16, Sets: 1024}
	var out []Table2Row
	for _, p := range trace.Profiles() {
		g := trace.NewSynthetic(p, am, seed)
		ref := cache.NewGolden(cache.LRU, uniformSpecs(16), am.Columns, am.Sets)
		warm := g.WarmBlocks(16)
		for set := 0; set < am.Sets; set++ {
			for c := 0; c < am.Columns; c++ {
				ref.Warm(c, set, warm[set*am.Columns+c])
			}
		}
		writes, hits := 0, 0
		var instr int64
		for i := 0; i < n; i++ {
			a := g.Next()
			instr += a.Gap
			if a.Write {
				writes++
			}
			hit, _, _, _ := ref.Access(am.ColumnOf(a.Addr), am.SetOf(a.Addr), am.TagOf(a.Addr))
			if hit {
				hits++
			}
		}
		out = append(out, Table2Row{
			Profile:       p,
			GenWriteFrac:  float64(writes) / float64(n),
			GenAccPerInst: float64(n) / float64(instr),
			GenHitRate16:  float64(hits) / float64(n),
		})
	}
	return out
}

func uniformSpecs(n int) []bank.Spec {
	out := make([]bank.Spec, n)
	for i := range out {
		out[i] = bank.Spec{SizeKB: 64, Ways: 1}
	}
	return out
}

// CMPCell is one core-count operating point of the sharing-contention
// sweep: aggregate and per-core throughput, the tail latency, and the
// directory's interference attribution.
type CMPCell struct {
	Cores      int
	IPC        float64 // aggregate throughput
	PerCoreIPC float64
	HitRate    float64 // shared protocol-side hit rate
	AvgLat     float64
	P99        int64
	// RemoteShare is the mean fraction of issues homed on another
	// controller — the traffic the fabric (and on hierarchical designs,
	// the bridge ring) carries.
	RemoteShare float64
	// CrossDropShare is the fraction of capacity evictions where one
	// core's block was pushed out by another core's access, from the
	// directory policy's ownership matrix.
	CrossDropShare float64
}

// CMPResult bundles the sweep's cells with the largest run's telemetry
// (the link heatmap showing the bridge traffic).
type CMPResult struct {
	DesignID string
	Bench    string
	Cells    []CMPCell
	// Heat is the largest core count's spatial telemetry; on the
	// hierarchical designs its link view includes the bridge-ring hops.
	Heat *telemetry.Heatmap
}

// CMPSharing runs the sharing-contention sweep (extension: the paper's
// primary stated future work): 1, 2, 4, and 8 trace-driven cores on the
// two-chiplet hierarchical design under the directory policy, measuring
// how aggregate throughput, tail latency, and cross-core interference
// scale as the fabric is shared.
func CMPSharing(cfg ExpConfig, designID, bench string) (CMPResult, SweepReport, error) {
	// The policy is part of the experiment's definition: the x-evict
	// column exists only under the directory policy's ownership
	// bookkeeping, so the -policy override is ignored here (the mode
	// override still applies).
	m := cache.Multicast
	if cfg.ModeName != "" {
		var err error
		if m, err = cache.ParseMode(cfg.ModeName); err != nil {
			return CMPResult{}, SweepReport{}, err
		}
	}
	p := cache.Directory
	counts := []int{1, 2, 4, 8}
	opts := make([]Options, len(counts))
	for i, n := range counts {
		opts[i] = Options{
			DesignID: designID, Policy: p, Mode: m, Router: cfg.RouterName,
			Benchmark: bench, Accesses: cfg.Accesses, Seed: cfg.Seed,
			Shards: cfg.Shards, Cores: n,
			Telemetry: telemetry.Config{Heatmap: true},
		}
	}
	rs, rep, err := cfg.sweep(opts)
	if err != nil {
		return CMPResult{}, rep, err
	}
	out := CMPResult{DesignID: designID, Bench: bench}
	for i, r := range rs {
		cell := CMPCell{
			Cores:   counts[i],
			IPC:     r.IPC,
			HitRate: r.HitRate,
			AvgLat:  r.AvgLatency,
			P99:     r.Latency.Percentile(0.99),
		}
		k := float64(len(r.Cores))
		cell.PerCoreIPC = r.IPC / k
		for _, c := range r.Cores {
			cell.RemoteShare += c.RemoteShare / k
		}
		if d := r.Directory; d != nil && d.SelfDrops+d.CrossDrops > 0 {
			cell.CrossDropShare = float64(d.CrossDrops) / float64(d.SelfDrops+d.CrossDrops)
		}
		out.Cells = append(out.Cells, cell)
		if tel := r.Telemetry; tel != nil && tel.Heat != nil {
			out.Heat = tel.Heat // keep the last (largest) run's view
		}
	}
	return out, rep, nil
}

// TelemetryRun is one design's telemetry capture from TelemetryCompare.
type TelemetryRun struct {
	DesignID string
	Result   Result
}

// TelemetryCompare runs a mesh (A), a simplified mesh (D), and a halo
// (F) on one benchmark with the given probes under multicast Fast-LRU —
// the side-by-side spatial view of how the three topologies spread the
// same workload's traffic.
func TelemetryCompare(cfg ExpConfig, bench string, tcfg telemetry.Config) ([]TelemetryRun, SweepReport, error) {
	p, m, err := cfg.scheme(cache.FastLRU, cache.Multicast)
	if err != nil {
		return nil, SweepReport{}, err
	}
	ids := []string{"A", "D", "F"}
	opts := make([]Options, len(ids))
	for i, id := range ids {
		opts[i] = cfg.run(id, p, m, bench)
		opts[i].Telemetry = tcfg
	}
	rs, rep, err := cfg.sweep(opts)
	if err != nil {
		return nil, rep, err
	}
	out := make([]TelemetryRun, len(rs))
	for i, r := range rs {
		out[i] = TelemetryRun{DesignID: ids[i], Result: r}
	}
	return out, rep, nil
}

package core

import (
	"math"
	"testing"

	"nucanet/internal/cache"
)

const testN = 2500 // accesses per run: keeps the full suite under a minute

func run(t *testing.T, design string, p cache.Policy, m cache.Mode, bench string) Result {
	t.Helper()
	r, err := Run(Options{
		DesignID: design, Policy: p, Mode: m,
		Benchmark: bench, Accesses: testN, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunBasics(t *testing.T) {
	r := run(t, "A", cache.FastLRU, cache.Multicast, "gcc")
	if r.IPC <= 0 || r.IPC >= r.PerfectIPC {
		t.Fatalf("IPC %.3f out of (0, %.2f)", r.IPC, r.PerfectIPC)
	}
	if r.AvgLatency <= 0 || r.AvgHit <= 0 || r.AvgMiss <= r.AvgHit {
		t.Fatalf("latencies inconsistent: %+v", r)
	}
	if s := r.BankShare + r.NetworkShare + r.MemShare; math.Abs(s-1) > 1e-9 {
		t.Fatalf("shares sum to %v", s)
	}
	if r.HitRate < 0.85 || r.HitRate > 1 {
		t.Fatalf("gcc hit rate %.3f out of expected band", r.HitRate)
	}
	if r.Memory.Reads == 0 {
		t.Fatal("expected some memory reads")
	}
	if r.AvgOccupancy < r.AvgLatency {
		t.Fatal("occupancy must not be below the access latency")
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(Options{DesignID: "Z", Benchmark: "gcc", Accesses: 10}); err == nil {
		t.Fatal("bad design must error")
	}
	if _, err := Run(Options{DesignID: "A", Benchmark: "doom", Accesses: 10}); err == nil {
		t.Fatal("bad benchmark must error")
	}
	if _, err := Run(Options{DesignID: "A", Benchmark: "gcc", Accesses: 0}); err == nil {
		t.Fatal("zero accesses must error")
	}
}

func TestRunDeterminism(t *testing.T) {
	a := run(t, "A", cache.FastLRU, cache.Multicast, "twolf")
	b := run(t, "A", cache.FastLRU, cache.Multicast, "twolf")
	if a.IPC != b.IPC || a.Cycles != b.Cycles || a.AvgLatency != b.AvgLatency {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

// TestFig8ShapeHolds is the integration form of the paper's Section 6.1
// claims on the real Design A, with the CPU model pacing requests.
func TestFig8ShapeHolds(t *testing.T) {
	for _, bench := range []string{"gcc", "mcf"} {
		uPromo := run(t, "A", cache.Promotion, cache.Unicast, bench)
		uLRU := run(t, "A", cache.LRU, cache.Unicast, bench)
		uFast := run(t, "A", cache.FastLRU, cache.Unicast, bench)
		mPromo := run(t, "A", cache.Promotion, cache.Multicast, bench)
		mFast := run(t, "A", cache.FastLRU, cache.Multicast, bench)

		// Multicast Fast-LRU has the best IPC and the lowest hit latency.
		for _, other := range []Result{uPromo, uLRU, uFast, mPromo} {
			if mFast.IPC < other.IPC {
				t.Errorf("%s: multicast fastLRU IPC %.3f below %s/%s %.3f",
					bench, mFast.IPC, other.Options.Mode, other.Options.Policy, other.IPC)
			}
		}
		if mFast.AvgHit >= mPromo.AvgHit {
			t.Errorf("%s: multicast fastLRU hit latency %.1f not below promotion %.1f",
				bench, mFast.AvgHit, mPromo.AvgHit)
		}
		// Fast-LRU frees the column earlier than classic LRU.
		if uFast.AvgOccupancy >= uLRU.AvgOccupancy {
			t.Errorf("%s: unicast fastLRU occupancy %.1f not below LRU %.1f",
				bench, uFast.AvgOccupancy, uLRU.AvgOccupancy)
		}
		// LRU-ordered policies concentrate hits at the MRU banks.
		if uLRU.MRUHitShare <= uPromo.MRUHitShare {
			t.Errorf("%s: LRU MRU share %.3f not above promotion %.3f",
				bench, uLRU.MRUHitShare, uPromo.MRUHitShare)
		}
	}
}

// TestFig7NetworkDominates: under unicast LRU the network is the largest
// latency component (the paper's motivating observation).
func TestFig7NetworkDominates(t *testing.T) {
	for _, bench := range []string{"gcc", "twolf", "art"} {
		r := run(t, "A", cache.LRU, cache.Unicast, bench)
		if r.NetworkShare <= r.BankShare || r.NetworkShare <= r.MemShare {
			t.Errorf("%s: network share %.2f not dominant (bank %.2f, mem %.2f)",
				bench, r.NetworkShare, r.BankShare, r.MemShare)
		}
	}
}

// TestFig9ShapeHolds: the simplified mesh matches the baseline and the
// halo beats it; the non-uniform halo is the best design.
func TestFig9ShapeHolds(t *testing.T) {
	for _, bench := range []string{"gcc", "mcf"} {
		a := run(t, "A", cache.FastLRU, cache.Multicast, bench)
		b := run(t, "B", cache.FastLRU, cache.Multicast, bench)
		e := run(t, "E", cache.FastLRU, cache.Multicast, bench)
		f := run(t, "F", cache.FastLRU, cache.Multicast, bench)
		if b.IPC < 0.97*a.IPC {
			t.Errorf("%s: design B IPC %.3f fell below A %.3f", bench, b.IPC, a.IPC)
		}
		if e.IPC <= a.IPC {
			t.Errorf("%s: halo E IPC %.3f not above mesh A %.3f", bench, e.IPC, a.IPC)
		}
		if f.IPC <= a.IPC {
			t.Errorf("%s: halo F IPC %.3f not above mesh A %.3f", bench, f.IPC, a.IPC)
		}
		// Halo hit latency beats the mesh (every MRU bank one hop away).
		if f.AvgHit >= a.AvgHit {
			t.Errorf("%s: halo F hit latency %.1f not below mesh %.1f", bench, f.AvgHit, a.AvgHit)
		}
	}
}

func TestTable2Check(t *testing.T) {
	rows := Table2Check(20000, 42)
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	for _, r := range rows {
		p := r.Profile
		if math.Abs(r.GenAccPerInst-p.AccPerInstr)/p.AccPerInstr > 0.10 {
			t.Errorf("%s: generator acc/instr %.4f vs table %.4f", p.Name, r.GenAccPerInst, p.AccPerInstr)
		}
		if math.Abs(r.GenWriteFrac-p.WriteFrac()) > 0.03 {
			t.Errorf("%s: write frac %.3f vs table %.3f", p.Name, r.GenWriteFrac, p.WriteFrac())
		}
		if math.Abs(r.GenHitRate16-(1-p.MissRate)) > 0.04 {
			t.Errorf("%s: 16-way hit rate %.3f vs target %.3f", p.Name, r.GenHitRate16, 1-p.MissRate)
		}
	}
}

func TestTable4Rows(t *testing.T) {
	reps, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 4 {
		t.Fatalf("rows = %d", len(reps))
	}
	if reps[0].DesignID != "A" || reps[3].DesignID != "F" {
		t.Fatalf("row order wrong: %v", reps)
	}
}

func TestFig8SchemesOrder(t *testing.T) {
	s := Fig8Schemes()
	if len(s) != 5 || s[0].Name != "unicast+promotion" || s[4].Name != "multicast+fastLRU" {
		t.Fatalf("scheme list wrong: %+v", s)
	}
}

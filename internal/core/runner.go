package core

import (
	"fmt"

	"nucanet/internal/cache"
	"nucanet/internal/config"
	"nucanet/internal/telemetry"
	"nucanet/internal/trace"
)

// Validate checks that the options describe a runnable simulation:
// a resolvable design, a known Table 2 benchmark, defined policy/mode
// values, and a positive access count. Run performs the same checks; use
// Validate to fail fast before queuing work (e.g. building a sweep).
func (o Options) Validate() error {
	d, err := config.Resolve(o.DesignID, o.Design)
	if err != nil {
		return err
	}
	if o.Router != "" {
		// Re-validate with the router override applied: unknown engine
		// names and unsupported (engine, topology) pairs fail here.
		d.Router.Engine = o.Router
		if err := d.Validate(); err != nil {
			return err
		}
	}
	if _, err := trace.ProfileByName(o.Benchmark); err != nil {
		return err
	}
	if !o.Policy.Valid() {
		return fmt.Errorf("core: invalid policy %v", o.Policy)
	}
	if !o.Mode.Valid() {
		return fmt.Errorf("core: invalid mode %v", o.Mode)
	}
	if o.Accesses <= 0 {
		return fmt.Errorf("core: accesses must be positive, got %d", o.Accesses)
	}
	if o.Shards < 0 {
		return fmt.Errorf("core: shards must be non-negative, got %d", o.Shards)
	}
	if o.Shards > 1 && o.Telemetry.Trace {
		return fmt.Errorf("core: the flit trace probe requires the sequential kernel (shards=%d with trace)", o.Shards)
	}
	return nil
}

// Runner is the stable entry point for configuring and executing one
// simulation: start from the baseline defaults, apply typed options, and
// Run — which validates before simulating. Prefer this over poking
// Options fields directly; new configuration surface is added here
// without breaking callers.
//
//	r, err := core.NewRunner(core.WithBenchmark("mcf"), core.WithAccesses(5000)).Run()
type Runner struct {
	opts Options
}

// An Option mutates the run configuration; apply them with NewRunner or
// Runner.With.
type Option func(*Options)

// WithDesignID selects a Table 3 design ("A".."F").
func WithDesignID(id string) Option {
	return func(o *Options) { o.DesignID = id; o.Design = nil }
}

// WithDesign supplies an ad-hoc design, overriding any id.
func WithDesign(d *config.Design) Option {
	return func(o *Options) { o.Design = d }
}

// WithScheme selects the replacement policy and delivery mode together
// (the paper's experiments always vary them as a pair).
func WithScheme(p cache.Policy, m cache.Mode) Option {
	return func(o *Options) { o.Policy = p; o.Mode = m }
}

// WithRouter selects a registered router microarchitecture by name,
// overriding the design's engine ("" keeps the design default).
func WithRouter(name string) Option {
	return func(o *Options) { o.Router = name }
}

// WithBenchmark selects a Table 2 workload profile.
func WithBenchmark(name string) Option {
	return func(o *Options) { o.Benchmark = name }
}

// WithAccesses sets the measured L2 access count.
func WithAccesses(n int) Option {
	return func(o *Options) { o.Accesses = n }
}

// WithSeed sets the workload/CPU RNG seed.
func WithSeed(s uint64) Option {
	return func(o *Options) { o.Seed = s }
}

// WithTelemetry enables cycle-level probes.
func WithTelemetry(tc telemetry.Config) Option {
	return func(o *Options) { o.Telemetry = tc }
}

// WithShards sets the intra-run shard count (0 or 1 = sequential
// kernel). Results are bit-identical at every value; see Options.Shards.
func WithShards(n int) Option {
	return func(o *Options) { o.Shards = n }
}

// NewRunner builds a Runner from DefaultOptions with opts applied in
// order (later options win).
func NewRunner(opts ...Option) *Runner {
	r := &Runner{opts: DefaultOptions()}
	return r.With(opts...)
}

// With applies further options and returns r for chaining.
func (r *Runner) With(opts ...Option) *Runner {
	for _, f := range opts {
		f(&r.opts)
	}
	return r
}

// Options returns a copy of the accumulated configuration.
func (r *Runner) Options() Options { return r.opts }

// Run validates the configuration and executes the simulation.
func (r *Runner) Run() (Result, error) {
	if err := r.opts.Validate(); err != nil {
		return Result{}, err
	}
	return Run(r.opts)
}

package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"nucanet/internal/config"
	"nucanet/internal/cpu"
	"nucanet/internal/router"
	"nucanet/internal/telemetry"
)

// hashedOptionFields lists every Options field the canonical hash
// covers, in struct order. TestCanonicalKeyCoversAllOptionFields
// compares this list against the Options struct via reflection, so a
// field added to Options without a matching canonicalRun extension (and
// an entry here) fails the build's tests instead of silently aliasing
// distinct configurations in the result cache.
var hashedOptionFields = []string{
	"DesignID", "Design", "Policy", "Mode", "Benchmark", "Router",
	"Accesses", "Seed", "CPU", "Telemetry", "Cores",
}

// unhashedOptionFields lists the Options fields the canonical hash
// deliberately ignores: execution knobs that cannot change the Result.
// Shards is excluded because sharded runs are bit-identical to
// sequential ones (the determinism matrix in shard_determinism_test.go
// pins this), so a nucad cache entry computed at any shard count
// serves every other. The coverage test asserts every Options field
// appears in exactly one of the two lists.
var unhashedOptionFields = []string{"Shards"}

// canonicalRun is the normalized image of one Options value: the design
// resolved through config.Resolve (so a catalogue id and a byte-equal
// ad-hoc override hash identically) and the CPU config normalized the
// way Run normalizes it before simulating. Two Options values that
// produce this same image produce bit-identical simulations — the
// property the serving cache is built on.
type canonicalRun struct {
	Design    config.Design
	Policy    string
	Mode      string
	Benchmark string
	Accesses  int
	Seed      uint64
	CPU       cpu.Config
	Telemetry telemetry.Config
	Cores     int
}

// CanonicalKey returns the content address of a run: a hex SHA-256 over
// the deterministic encoding of the fully resolved configuration.
// Because Run is deterministic in its resolved configuration, equal keys
// imply byte-identical Results; the serving layer uses the key to
// collapse repeat requests into cache hits. Unresolvable options (the
// same ones Validate rejects) return an error.
func CanonicalKey(o Options) (string, error) {
	d, err := config.Resolve(o.DesignID, o.Design)
	if err != nil {
		return "", err
	}
	// Mirror Run's router normalization: the Options override folds into
	// the resolved design and the engine name canonicalizes through the
	// registry, so an empty engine and an explicit default engine name
	// share one cache line while distinct engines never alias.
	if o.Router != "" {
		d.Router.Engine = o.Router
	}
	eng, err := router.ByName(d.Router.Engine)
	if err != nil {
		return "", err
	}
	d.Router.Engine = eng.Name
	if !o.Policy.Valid() {
		return "", fmt.Errorf("core: invalid policy %v", o.Policy)
	}
	if !o.Mode.Valid() {
		return "", fmt.Errorf("core: invalid mode %v", o.Mode)
	}
	// Mirror Run's CPU normalization so configurations that simulate
	// identically share one cache line.
	cpuCfg := o.CPU
	if cpuCfg.Window == 0 {
		cpuCfg = cpu.DefaultConfig()
	}
	cpuCfg.Seed = o.Seed
	c := canonicalRun{
		Design:    *d,
		Policy:    o.Policy.String(),
		Mode:      o.Mode.String(),
		Benchmark: o.Benchmark,
		Accesses:  o.Accesses,
		Seed:      o.Seed,
		CPU:       cpuCfg,
		Telemetry: o.Telemetry,
		Cores:     o.Cores,
	}
	// encoding/json over plain structs is deterministic: fields emit in
	// declaration order and there are no maps anywhere in canonicalRun.
	buf, err := json.Marshal(c)
	if err != nil {
		return "", fmt.Errorf("core: canonical encoding: %w", err)
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:]), nil
}

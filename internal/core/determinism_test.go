package core

import (
	"bytes"
	"fmt"
	"testing"

	"nucanet/internal/cache"
	"nucanet/internal/telemetry"
)

// fingerprint serializes every measurement of a result slice into a
// stable byte form, including the full latency accumulator. Two sweeps
// are "the same experiment" exactly when their fingerprints are
// byte-identical.
func fingerprint(t *testing.T, rs []Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	for i, r := range rs {
		fmt.Fprintf(&buf, "run %d %s/%v/%v/%s seed=%d\n",
			i, r.Design.ID, r.Options.Policy, r.Options.Mode, r.Options.Benchmark, r.Options.Seed)
		fmt.Fprintf(&buf, "  ipc=%v instr=%d cycles=%d\n", r.IPC, r.Instructions, r.Cycles)
		fmt.Fprintf(&buf, "  lat=%v hit=%v miss=%v occ=%v hitrate=%v mru=%v\n",
			r.AvgLatency, r.AvgHit, r.AvgMiss, r.AvgOccupancy, r.HitRate, r.MRUHitShare)
		fmt.Fprintf(&buf, "  shares=%v/%v/%v banks=%d\n",
			r.BankShare, r.NetworkShare, r.MemShare, r.BankAccesses)
		fmt.Fprintf(&buf, "  net=%+v mem=%+v energy=%+v\n", r.Network, r.Memory, r.Energy)
		if r.Latency == nil {
			t.Fatalf("run %d: nil latency snapshot", i)
		}
		fmt.Fprintf(&buf, "  acc=%s max=%d ways=%v occ=%d/%d split=%d/%d/%d\n",
			r.Latency, r.Latency.MaxLat, r.Latency.HitWays(),
			r.Latency.OccSum, r.Latency.OccCount,
			r.Latency.Bank, r.Latency.Network, r.Latency.Memory)
	}
	return buf.Bytes()
}

// TestParallelEngineDeterminism is the regression harness of the parallel
// engine: for every topology family (mesh A, simplified mesh B, halo F)
// crossed with every replacement policy, the same job list run
// sequentially (Workers=1) and through the worker pool (Workers=8) must
// produce byte-identical stats. Any shared mutable state between runs —
// a package-level counter, an aliased slice, a global RNG — shows up
// here as a fingerprint mismatch (or as a -race report).
func TestParallelEngineDeterminism(t *testing.T) {
	accesses := 400
	if testing.Short() {
		accesses = 120
	}
	designs := []string{"A", "B", "F"} // mesh, simplified mesh (XYX), halo
	policies := []cache.Policy{cache.Promotion, cache.LRU, cache.FastLRU}
	for _, id := range designs {
		for _, pol := range policies {
			t.Run(fmt.Sprintf("%s-%v", id, pol), func(t *testing.T) {
				t.Parallel()
				mode := cache.Multicast
				if pol == cache.LRU {
					mode = cache.Unicast // LRU is only evaluated unicast in the paper
				}
				var opts []Options
				for _, bench := range []string{"gcc", "mcf"} {
					for _, seed := range []uint64{7, 42} {
						opts = append(opts, Options{
							DesignID: id, Policy: pol, Mode: mode,
							Benchmark: bench, Accesses: accesses, Seed: seed,
						})
					}
				}
				seq, _, err := NewEngine(1).RunAll(opts)
				if err != nil {
					t.Fatal(err)
				}
				par, _, err := NewEngine(8).RunAll(opts)
				if err != nil {
					t.Fatal(err)
				}
				fpSeq, fpPar := fingerprint(t, seq), fingerprint(t, par)
				if !bytes.Equal(fpSeq, fpPar) {
					t.Errorf("sequential and parallel sweeps diverge:\n--- j=1 ---\n%s--- j=8 ---\n%s",
						fpSeq, fpPar)
				}
			})
		}
	}
}

// telemetryFingerprint serializes every telemetry artifact of a result
// slice — the JSONL trace, the rendered heatmap, and the rendered time
// series — into one stable byte form.
func telemetryFingerprint(t *testing.T, rs []Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	for i, r := range rs {
		tel := r.Telemetry
		if tel == nil || tel.Trace == nil || tel.Heat == nil || tel.Series == nil {
			t.Fatalf("run %d: telemetry artifacts missing: %+v", i, tel)
		}
		fmt.Fprintf(&buf, "run %d: %d events\n", i, tel.Trace.Len())
		if err := tel.Trace.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		tel.Heat.Render(&buf)
		tel.Series.Render(&buf)
	}
	return buf.Bytes()
}

// TestTelemetryDeterministicAcrossWorkers pins the telemetry subsystem's
// two guarantees at once: (1) for a fixed seed the full probe output —
// event trace JSONL, heatmap render, time series render — is
// byte-identical whether the sweep runs sequentially or on 8 workers;
// (2) turning the probes on does not perturb the simulation itself (the
// measurement fingerprints with and without telemetry match).
func TestTelemetryDeterministicAcrossWorkers(t *testing.T) {
	accesses := 300
	if testing.Short() {
		accesses = 100
	}
	var plain, probed []Options
	for _, id := range []string{"A", "F"} { // mesh and halo topologies
		for _, seed := range []uint64{7, 42} {
			o := Options{
				DesignID: id, Policy: cache.FastLRU, Mode: cache.Multicast,
				Benchmark: "gcc", Accesses: accesses, Seed: seed,
			}
			plain = append(plain, o)
			o.Telemetry = telemetry.Config{Trace: true, Heatmap: true, SampleEvery: 50}
			probed = append(probed, o)
		}
	}
	seq, _, err := NewEngine(1).RunAll(probed)
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := NewEngine(8).RunAll(probed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(telemetryFingerprint(t, seq), telemetryFingerprint(t, par)) {
		t.Error("telemetry output differs between j=1 and j=8")
	}

	// Zero perturbation: the observed runs report the same measurements
	// as unobserved ones.
	base, _, err := NewEngine(8).RunAll(plain)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fingerprint(t, base), fingerprint(t, seq)) {
		t.Error("enabling telemetry perturbed the simulation measurements")
	}
}

// TestExperimentDriversDeterministicAcrossWorkers pins the user-visible
// guarantee: paperbench -exp f9 -j 1 and -j 8 print identical rows.
func TestExperimentDriversDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full driver sweep; skipped in -short")
	}
	cfgSeq := ExpConfig{Accesses: 150, Seed: 7, Workers: 1}
	cfgPar := ExpConfig{Accesses: 150, Seed: 7, Workers: 8}
	seq, _, err := Fig9(cfgSeq)
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := Fig9(cfgPar)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", seq) != fmt.Sprintf("%+v", par) {
		t.Errorf("Fig9 rows differ between j=1 and j=8:\n%+v\n%+v", seq, par)
	}
}

package core

import (
	"bytes"
	"fmt"
	"testing"

	"nucanet/internal/cache"
	"nucanet/internal/config"
	"nucanet/internal/router"
)

// TestRouterEnginesRunCatalogue is the engine x design conformance
// sweep: every registered router microarchitecture must run every
// catalogue design to completion, and repeating a run must reproduce it
// byte-identically (the fingerprint covers every measurement, stats
// rollup, and the full latency accumulator).
func TestRouterEnginesRunCatalogue(t *testing.T) {
	accesses := 300
	if testing.Short() {
		accesses = 120
	}
	for _, eng := range router.Names() {
		for _, d := range append(config.Designs(), config.ExtraDesigns()...) {
			eng, id := eng, d.ID
			t.Run(eng+"-"+id, func(t *testing.T) {
				t.Parallel()
				opt := Options{
					DesignID: id, Policy: cache.FastLRU, Mode: cache.Multicast,
					Benchmark: "gcc", Accesses: accesses, Seed: 42, Router: eng,
				}
				r1, err := Run(opt)
				if err != nil {
					t.Fatal(err)
				}
				r2, err := Run(opt)
				if err != nil {
					t.Fatal(err)
				}
				fp1 := fingerprint(t, []Result{r1})
				fp2 := fingerprint(t, []Result{r2})
				if !bytes.Equal(fp1, fp2) {
					t.Errorf("repeat run diverges:\n--- run 1 ---\n%s--- run 2 ---\n%s", fp1, fp2)
				}
				if r1.Design.Router.Engine != eng {
					t.Errorf("result records engine %q, want %q", r1.Design.Router.Engine, eng)
				}
				if eng == "bufferless" && id != "R" && r1.Network.Router.Deflections == 0 {
					t.Errorf("bufferless run on %s recorded no deflections; the deflection path did not run", id)
				}
			})
		}
	}
}

// TestRouterEnginesDeterministicAcrossWorkers extends the parallel
// engine's determinism regression to the router registry: designs A, D,
// and F (mesh, simplified mesh, halo) crossed with every registered
// engine, the same job list run sequentially and on 8 workers, must
// produce byte-identical stats.
func TestRouterEnginesDeterministicAcrossWorkers(t *testing.T) {
	accesses := 300
	if testing.Short() {
		accesses = 120
	}
	for _, eng := range router.Names() {
		eng := eng
		t.Run(eng, func(t *testing.T) {
			t.Parallel()
			var opts []Options
			for _, id := range []string{"A", "D", "F"} {
				for _, seed := range []uint64{7, 42} {
					opts = append(opts, Options{
						DesignID: id, Policy: cache.FastLRU, Mode: cache.Multicast,
						Benchmark: "gcc", Accesses: accesses, Seed: seed, Router: eng,
					})
				}
			}
			seq, _, err := NewEngine(1).RunAll(opts)
			if err != nil {
				t.Fatal(err)
			}
			par, _, err := NewEngine(8).RunAll(opts)
			if err != nil {
				t.Fatal(err)
			}
			fpSeq, fpPar := fingerprint(t, seq), fingerprint(t, par)
			if !bytes.Equal(fpSeq, fpPar) {
				t.Errorf("sequential and parallel sweeps diverge:\n--- j=1 ---\n%s--- j=8 ---\n%s",
					fpSeq, fpPar)
			}
		})
	}
}

// TestDefaultRouterAliasesWormhole pins the compatibility contract of the
// registry refactor: an empty router selection, the explicit default
// engine name, and a design left entirely alone must simulate
// byte-identically and share one canonical cache key — existing configs
// see the exact pre-registry wormhole router.
func TestDefaultRouterAliasesWormhole(t *testing.T) {
	base := Options{
		DesignID: "A", Policy: cache.FastLRU, Mode: cache.Multicast,
		Benchmark: "gcc", Accesses: 200, Seed: 42,
	}
	explicit := base
	explicit.Router = router.DefaultEngine

	rBase, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	rExp, err := Run(explicit)
	if err != nil {
		t.Fatal(err)
	}
	// Options differ by construction; compare the measurements only.
	rBase.Options, rExp.Options = Options{}, Options{}
	fp1, fp2 := fingerprint(t, []Result{rBase}), fingerprint(t, []Result{rExp})
	if !bytes.Equal(fp1, fp2) {
		t.Errorf("empty and explicit default engine diverge:\n--- empty ---\n%s--- explicit ---\n%s", fp1, fp2)
	}

	k1, err := CanonicalKey(base)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := CanonicalKey(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("empty and explicit default engine hash differently:\n empty: %s\n explicit: %s", k1, k2)
	}
}

// TestRouterOptionValidation covers the fail-fast path: unknown engine
// names are rejected by Validate, Run, and CanonicalKey alike, and the
// error names the registry's contents.
func TestRouterOptionValidation(t *testing.T) {
	opt := DefaultOptions()
	opt.Router = "optical"
	if err := opt.Validate(); err == nil {
		t.Error("Validate accepted unknown router engine")
	}
	if _, err := Run(opt); err == nil {
		t.Error("Run accepted unknown router engine")
	}
	if _, err := CanonicalKey(opt); err == nil {
		t.Error("CanonicalKey accepted unknown router engine")
	}
	_, err := Run(opt)
	want := fmt.Sprintf("%v", router.Names())
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Errorf("error %q does not list registered engines %s", err, want)
	}
}

// TestParetoSweepShape runs the Pareto experiment at smoke size and pins
// its structure: full coverage of the engine x design x scheme grid, a
// non-empty frontier, no dominated point marked, and measurements on
// every point the engines accept.
func TestParetoSweepShape(t *testing.T) {
	cfg := DefaultExpConfig()
	cfg.Accesses = 120
	pts, _, err := ParetoSweep(cfg, "gcc")
	if err != nil {
		t.Fatal(err)
	}
	want := len(router.Names()) * 4 * 2
	if len(pts) != want {
		t.Fatalf("points = %d, want %d (engines x 4 designs x 2 schemes)", len(pts), want)
	}
	frontier := 0
	for _, p := range pts {
		if p.Skipped != "" {
			if p.RouterName == router.DefaultEngine {
				t.Errorf("reference engine skipped %s/%s: %s", p.DesignID, p.Scheme, p.Skipped)
			}
			continue
		}
		if p.AreaMM2 <= 0 || p.AvgLat <= 0 || p.IPC <= 0 || p.EnergyNJ <= 0 {
			t.Errorf("point %s/%s/%s has empty measurements: %+v", p.RouterName, p.DesignID, p.Scheme, p)
		}
		if p.Frontier {
			frontier++
		}
	}
	if frontier == 0 {
		t.Fatal("no frontier points")
	}
	for i, p := range pts {
		if p.Skipped != "" || !p.Frontier {
			continue
		}
		for k, q := range pts {
			if k != i && q.Skipped == "" && p.dominated(q) {
				t.Errorf("frontier point %s/%s/%s is dominated by %s/%s/%s",
					p.RouterName, p.DesignID, p.Scheme, q.RouterName, q.DesignID, q.Scheme)
			}
		}
	}
}

package core

import (
	"reflect"
	"testing"

	"nucanet/internal/cache"
	"nucanet/internal/config"
	"nucanet/internal/router"
	"nucanet/internal/routing"
	"nucanet/internal/telemetry"
)

func catalogue(t *testing.T) []config.Design {
	t.Helper()
	return append(config.Designs(), config.ExtraDesigns()...)
}

func allPolicies(t *testing.T) []cache.Policy {
	t.Helper()
	names := cache.PolicyNames()
	out := make([]cache.Policy, len(names))
	for i, n := range names {
		p, err := cache.ParsePolicy(n)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", n, err)
		}
		out[i] = p
	}
	return out
}

// TestCanonicalKeyDeterministic pins the two equalities the cache needs:
// independently constructed equal options hash equal, and a catalogue id
// hashes identically to a byte-equal ad-hoc override (content addressing,
// not name addressing).
func TestCanonicalKeyDeterministic(t *testing.T) {
	a1, err := CanonicalKey(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	a2, err := CanonicalKey(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatalf("equal options hash unequal: %s vs %s", a1, a2)
	}

	da, err := config.DesignByID("A")
	if err != nil {
		t.Fatal(err)
	}
	byID := DefaultOptions()
	byOverride := DefaultOptions()
	byOverride.DesignID = ""
	byOverride.Design = &da
	k1, err := CanonicalKey(byID)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := CanonicalKey(byOverride)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("catalogue id and equal override hash differently:\n id: %s\n ov: %s", k1, k2)
	}
}

// TestCanonicalKeyInjectiveOverRegistries enumerates the full registry
// product — every catalogue design (which determines the routing
// algorithm via its topology) x every registered policy x both modes —
// and requires the hash to be total (no errors) and injective (all keys
// distinct). It also requires the catalogue to exercise every registered
// routing algorithm, so the routing dimension is genuinely covered.
func TestCanonicalKeyInjectiveOverRegistries(t *testing.T) {
	designs := catalogue(t)
	policies := allPolicies(t)
	modes := []cache.Mode{cache.Unicast, cache.Multicast}

	routings := map[string]bool{}
	seen := map[string]string{} // key -> config label
	for _, d := range designs {
		topo, err := d.Build()
		if err != nil {
			t.Fatalf("design %s: %v", d.ID, err)
		}
		routings[topo.Routing] = true
		for _, p := range policies {
			for _, m := range modes {
				for _, eng := range router.Names() {
					o := DefaultOptions()
					o.DesignID = d.ID
					o.Policy, o.Mode = p, m
					o.Router = eng
					key, err := CanonicalKey(o)
					if err != nil {
						t.Fatalf("CanonicalKey(%s/%v/%v/%s): %v", d.ID, p, m, eng, err)
					}
					label := d.ID + "/" + p.String() + "/" + m.String() + "/" + eng
					if prev, dup := seen[key]; dup {
						t.Fatalf("hash collision: %s and %s both map to %s", prev, label, key)
					}
					seen[key] = label
				}
			}
		}
	}
	for _, alg := range routing.AlgorithmNames() {
		if !routings[alg] {
			t.Errorf("registered routing algorithm %q not exercised by any catalogue design; extend the catalogue (or this test) so hashing stays proven over the whole registry", alg)
		}
	}
}

// TestCanonicalKeySensitivity checks the remaining option axes each
// perturb the key.
func TestCanonicalKeySensitivity(t *testing.T) {
	base := DefaultOptions()
	baseKey, err := CanonicalKey(base)
	if err != nil {
		t.Fatal(err)
	}
	perturb := map[string]Options{}
	o := base
	o.Benchmark = "mcf"
	perturb["benchmark"] = o
	o = base
	o.Accesses = base.Accesses + 1
	perturb["accesses"] = o
	o = base
	o.Seed = base.Seed + 1
	perturb["seed"] = o
	o = base
	o.CPU.Window = base.CPU.Window + 1
	perturb["cpu.window"] = o
	o = base
	o.Telemetry = telemetry.Config{Heatmap: true}
	perturb["telemetry.heatmap"] = o
	o = base
	o.Telemetry = telemetry.Config{SampleEvery: 100}
	perturb["telemetry.sample"] = o
	o = base
	o.Router = "bufferless"
	perturb["router.bufferless"] = o
	o = base
	o.Router = "ring-lite"
	perturb["router.ring-lite"] = o
	for name, opt := range perturb {
		key, err := CanonicalKey(opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if key == baseKey {
			t.Errorf("changing %s did not change the canonical key", name)
		}
	}
}

// TestCanonicalKeyCoversAllOptionFields fails when core.Options gains a
// field that hashedOptionFields (and therefore canonicalRun) does not
// account for — the guard that keeps the content-addressed cache from
// aliasing configurations that differ in the new field.
func TestCanonicalKeyCoversAllOptionFields(t *testing.T) {
	covered := map[string]bool{}
	for _, f := range hashedOptionFields {
		covered[f] = true
	}
	for _, f := range unhashedOptionFields {
		if covered[f] {
			t.Errorf("Options.%s appears in both hashedOptionFields and unhashedOptionFields", f)
		}
		covered[f] = true
	}
	typ := reflect.TypeOf(Options{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if !covered[name] {
			t.Errorf("Options.%s is not covered by CanonicalKey: extend canonicalRun and hashedOptionFields in hash.go (or justify excluding it in unhashedOptionFields)", name)
		}
		delete(covered, name)
	}
	for name := range covered {
		t.Errorf("hash.go lists %q, which Options no longer has", name)
	}
}

// TestCanonicalKeyShardInvariance pins the Shards exclusion: the same
// configuration hashes identically at every shard count, so a nucad
// result cached at one setting serves requests at any other. This is
// sound because sharded execution is bit-identical (see
// TestShardedRunMatchesSequential).
func TestCanonicalKeyShardInvariance(t *testing.T) {
	base := DefaultOptions()
	want, err := CanonicalKey(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4} {
		o := base
		o.Shards = shards
		got, err := CanonicalKey(o)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("shards=%d: key %s != shards=0 key %s", shards, got, want)
		}
	}
}

// TestCanonicalKeyErrors pins that unresolvable options error instead of
// hashing (totality is over *valid* configurations only).
func TestCanonicalKeyErrors(t *testing.T) {
	bad := DefaultOptions()
	bad.DesignID = "no-such-design"
	if _, err := CanonicalKey(bad); err == nil {
		t.Error("unknown design: want error")
	}
	bad = DefaultOptions()
	bad.Policy = cache.Policy(250)
	if _, err := CanonicalKey(bad); err == nil {
		t.Error("invalid policy: want error")
	}
	bad = DefaultOptions()
	bad.Mode = cache.Mode(250)
	if _, err := CanonicalKey(bad); err == nil {
		t.Error("invalid mode: want error")
	}
}

package core

import (
	"testing"

	"nucanet/internal/trace"
)

// tiny keeps the full-sweep drivers testable in seconds.
var tiny = ExpConfig{Accesses: 250, Seed: 7}

func TestFig7Driver(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep; skipped in -short")
	}
	rows, _, err := Fig7(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d, want 12", len(rows))
	}
	for _, r := range rows {
		sum := r.BankPct + r.NetPct + r.MemPct
		if sum < 99.9 || sum > 100.1 {
			t.Errorf("%s: split sums to %.2f", r.Benchmark, sum)
		}
	}
	if rows[0].Benchmark != "applu" {
		t.Errorf("row order must follow Table 2: got %s first", rows[0].Benchmark)
	}
}

func TestFig8Driver(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep; skipped in -short")
	}
	cells, _, err := Fig8(ExpConfig{Accesses: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 12*5 {
		t.Fatalf("cells = %d, want 60", len(cells))
	}
	for _, c := range cells {
		if c.AvgLat <= 0 || c.IPC <= 0 {
			t.Errorf("%s/%s: empty measurement", c.Benchmark, c.Scheme)
		}
		if c.OccLat < c.AvgLat {
			t.Errorf("%s/%s: occupancy %.1f below latency %.1f", c.Benchmark, c.Scheme, c.OccLat, c.AvgLat)
		}
	}
}

func TestFig9Driver(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep; skipped in -short")
	}
	cells, _, err := Fig9(ExpConfig{Accesses: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 12*6 {
		t.Fatalf("cells = %d, want 72", len(cells))
	}
	for _, c := range cells {
		if c.DesignID == "A" && c.NormalizedIPC != 1.0 {
			t.Errorf("%s: design A must normalize to 1, got %v", c.Benchmark, c.NormalizedIPC)
		}
		if c.NormalizedIPC <= 0 {
			t.Errorf("%s/%s: bad normalized IPC", c.Benchmark, c.DesignID)
		}
	}
}

func TestEnergyComparisonDriver(t *testing.T) {
	cells, _, err := EnergyComparison(ExpConfig{Accesses: 600, Seed: 7}, "gcc")
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 {
		t.Fatalf("cells = %d, want 6", len(cells))
	}
	var a, f EnergyCell
	for _, c := range cells {
		if c.Report.TotalPJ() <= 0 {
			t.Errorf("%s: no energy accounted", c.DesignID)
		}
		switch c.DesignID {
		case "A":
			a = c
		case "F":
			f = c
		}
	}
	// The halo moves far fewer flit-hops per access than the mesh: its
	// network energy (and total) must come in below Design A's.
	if f.Report.NetworkPJ >= a.Report.NetworkPJ {
		t.Errorf("halo F network energy %.0f not below mesh A %.0f",
			f.Report.NetworkPJ, a.Report.NetworkPJ)
	}
	if f.Report.PerAccessNJ() >= a.Report.PerAccessNJ() {
		t.Errorf("halo F %.2f nJ/access not below mesh A %.2f",
			f.Report.PerAccessNJ(), a.Report.PerAccessNJ())
	}
}

func TestComputeHeadlineSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep; skipped in -short")
	}
	h, _, err := ComputeHeadline(ExpConfig{Accesses: 300, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if h.IPCGainVsMeshPromotion <= 1.0 {
		t.Errorf("halo fastLRU vs mesh promotion gain = %.3f, want > 1", h.IPCGainVsMeshPromotion)
	}
	if h.FastLRUIPCGain <= 1.0 {
		t.Errorf("fastLRU vs promotion gain = %.3f, want > 1", h.FastLRUIPCGain)
	}
	if h.InterconnectAreaRatio <= 0.1 || h.InterconnectAreaRatio >= 0.4 {
		t.Errorf("area ratio = %.3f, want ~0.23", h.InterconnectAreaRatio)
	}
}

func TestPowerGatingSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep; skipped in -short")
	}
	cells, _, err := PowerGatingSweep(ExpConfig{Accesses: 800, Seed: 7}, "gcc")
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 5 || cells[0].WaysOn != 16 || cells[4].WaysOn != 2 {
		t.Fatalf("sweep shape wrong: %+v", cells)
	}
	for i := 1; i < len(cells); i++ {
		// Gating banks can only lose capacity, hits and performance.
		if cells[i].HitRate > cells[i-1].HitRate+0.01 {
			t.Errorf("hit rate rose when gating: %v -> %v", cells[i-1], cells[i])
		}
		if cells[i].IPC > cells[i-1].IPC+0.01 {
			t.Errorf("IPC rose when gating: %v -> %v", cells[i-1], cells[i])
		}
		if cells[i].CapacityKB >= cells[i-1].CapacityKB {
			t.Error("capacity must shrink")
		}
	}
	// The network+bank energy of a 16-deep column dwarfs a 4-deep one.
	if cells[3].Energy.NetworkPJ >= cells[0].Energy.NetworkPJ {
		t.Error("gating must cut network energy")
	}
}

func TestTable2CheckCoversAllProfiles(t *testing.T) {
	rows := Table2Check(5000, 1)
	names := trace.Names()
	for i, r := range rows {
		if r.Profile.Name != names[i] {
			t.Fatalf("row %d is %s, want %s", i, r.Profile.Name, names[i])
		}
	}
}

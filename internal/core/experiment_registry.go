package core

import (
	"fmt"
	"io"
	"sort"
)

// Rows is a rendered experiment result: every experiment returns its
// typed row slice (Fig7Rows, ParetoRows, ...) behind this interface, and
// Render writes the exact human-readable table cmd/paperbench prints.
// Callers needing the underlying data type-assert to the concrete type.
type Rows interface {
	Render(w io.Writer)
}

// Experiment is one registered experiment driver: a named, uniformly
// invocable reproduction of a paper table/figure or an extension study.
// The registry is the fifth of the repo's registries (topologies,
// routing algorithms, replacement policies, router engines,
// experiments): cmd/paperbench's -exp dispatch, nucad's experiment
// catalogue, and the optimizer's objective all derive from it, so
// registering an experiment — from any package — makes it reachable
// everywhere with no further plumbing.
type Experiment struct {
	// Name is the registry key (the -exp argument), e.g. "f9".
	Name string
	// About is a one-line description for catalogues (-exp listings,
	// nucad's GET /v1/experiments).
	About string
	// Title renders the section header; it may fold cfg into the text
	// (scheme override, benchmark).
	Title func(cfg ExpConfig) string
	// InAll marks experiments "-exp all" includes. Interactive or
	// special-purpose experiments (telemetry, placement) register false
	// and run only when named.
	InAll bool
	// Run executes the experiment. The SweepReport is zero for
	// experiments that do not drive the simulation engine.
	Run func(cfg ExpConfig) (Rows, SweepReport, error)
}

var (
	experiments     = map[string]Experiment{}
	experimentOrder []string
)

// RegisterExperiment adds an experiment to the registry. Like the other
// registries it panics on an invalid or duplicate registration — a
// programming error, not a runtime condition.
func RegisterExperiment(e Experiment) {
	if e.Name == "" || e.Run == nil || e.Title == nil {
		panic(fmt.Sprintf("core: experiment registration missing name, title, or runner: %+v", e))
	}
	if _, dup := experiments[e.Name]; dup {
		panic(fmt.Sprintf("core: duplicate experiment %q", e.Name))
	}
	experiments[e.Name] = e
	experimentOrder = append(experimentOrder, e.Name)
}

// ExperimentByName resolves a registered experiment, erroring with the
// full catalogue on a miss.
func ExperimentByName(name string) (Experiment, error) {
	e, ok := experiments[name]
	if !ok {
		known := append([]string(nil), experimentOrder...)
		sort.Strings(known)
		return Experiment{}, fmt.Errorf("core: unknown experiment %q (registered: %v)", name, known)
	}
	return e, nil
}

// ExperimentNames lists registered experiments in registration order —
// the paper's own presentation order for the built-ins, with extensions
// after.
func ExperimentNames() []string {
	return append([]string(nil), experimentOrder...)
}

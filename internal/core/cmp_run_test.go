package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nucanet/internal/cache"
)

func cmpOpts(design string, cores, n int) Options {
	return Options{
		DesignID: design, Policy: cache.FastLRU, Mode: cache.Multicast,
		Benchmark: "gcc", Accesses: n, Seed: 9, Cores: cores,
	}
}

// TestCMPAnalyticGolden pins the refactor that replaced the analytic cmp
// runner (its own kernel + cache construction) with the fabric layer
// threaded through Prepare/NewInstance: the degenerate single-core CMP
// must reproduce the old runner's numbers bit for bit. The golden rows
// in testdata/cmp_analytic_golden.json were captured from the analytic
// cmp.Run before the refactor (FastLRU, multicast, gcc, 2000 accesses,
// seed 42).
func TestCMPAnalyticGolden(t *testing.T) {
	type goldenRow struct {
		Design        string       `json:"design"`
		Cores         int          `json:"cores"`
		ThroughputIPC float64      `json:"throughput_ipc"`
		CacheHitRate  float64      `json:"cache_hit_rate"`
		PerCore       []CoreResult `json:"per_core"`
	}
	buf, err := os.ReadFile(filepath.Join("testdata", "cmp_analytic_golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rows []goldenRow
	if err := json.Unmarshal(buf, &rows); err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		res, err := Run(Options{
			DesignID: row.Design, Policy: cache.FastLRU, Mode: cache.Multicast,
			Benchmark: "gcc", Accesses: 2000, Seed: 42, Cores: row.Cores,
		})
		if err != nil {
			t.Fatalf("%s/%d cores: %v", row.Design, row.Cores, err)
		}
		if res.IPC != row.ThroughputIPC {
			t.Errorf("%s: throughput IPC %v, analytic golden %v", row.Design, res.IPC, row.ThroughputIPC)
		}
		if res.HitRate != row.CacheHitRate {
			t.Errorf("%s: hit rate %v, analytic golden %v", row.Design, res.HitRate, row.CacheHitRate)
		}
		if len(res.Cores) != len(row.PerCore) {
			t.Fatalf("%s: %d core rows, golden has %d", row.Design, len(res.Cores), len(row.PerCore))
		}
		for i, cr := range res.Cores {
			if cr != row.PerCore[i] {
				t.Errorf("%s core %d drifted from analytic golden\n got %+v\nwant %+v",
					row.Design, i, cr, row.PerCore[i])
			}
		}
	}
}

func TestCMPSingleCore(t *testing.T) {
	res, err := Run(cmpOpts("A", 1, 800))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cores) != 1 {
		t.Fatalf("cores = %d", len(res.Cores))
	}
	c := res.Cores[0]
	if c.IPC <= 0 || c.AvgLatency <= 0 {
		t.Fatalf("bad core result: %+v", c)
	}
	// One core homes every column: nothing is remote.
	if c.RemoteShare != 0 {
		t.Fatalf("single core remote share = %v, want 0", c.RemoteShare)
	}
	if res.IPC != c.IPC || res.Instructions != c.Instructions || res.Cycles != c.Cycles {
		t.Fatalf("aggregates disagree with the only core: %+v vs %+v", res, c)
	}
}

func TestCMPRemoteIssuesCrossTheRow(t *testing.T) {
	res, err := Run(cmpOpts("A", 4, 600))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cores {
		// With 16 columns over 4 cores, ~3/4 of uniformly spread
		// accesses are remote.
		if c.RemoteShare < 0.4 || c.RemoteShare > 0.95 {
			t.Errorf("core %d remote share = %.2f, want ~0.75", c.Core, c.RemoteShare)
		}
	}
}

func TestCMPInterferenceRaisesMissRate(t *testing.T) {
	one, err := Run(cmpOpts("A", 1, 900))
	if err != nil {
		t.Fatal(err)
	}
	four, err := Run(cmpOpts("A", 4, 900))
	if err != nil {
		t.Fatal(err)
	}
	// Four disjoint working sets share 16 ways: hit rates drop.
	if four.HitRate >= one.HitRate {
		t.Errorf("4-core hit rate %.3f not below 1-core %.3f", four.HitRate, one.HitRate)
	}
	// But aggregate throughput still rises with cores.
	if four.IPC <= one.IPC {
		t.Errorf("4-core throughput %.3f not above 1-core %.3f", four.IPC, one.IPC)
	}
}

// TestCMPHierarchicalSharding is the full-system determinism proof on
// the two-chiplet fabric: a 4-core run on H2 must be bit-identical
// across the sequential kernel and every sharded partition, cores and
// bridge traffic included.
func TestCMPHierarchicalSharding(t *testing.T) {
	base, err := Run(cmpOpts("H2", 4, 600))
	if err != nil {
		t.Fatal(err)
	}
	if base.IPC <= 0 {
		t.Fatal("no throughput on H2")
	}
	remote := false
	for _, c := range base.Cores {
		if c.RemoteShare > 0 {
			remote = true
		}
	}
	if !remote {
		t.Fatal("4-core H2 run produced no cross-home traffic; the fabric is not exercised")
	}
	for _, shards := range []int{2, 4} {
		o := cmpOpts("H2", 4, 600)
		o.Shards = shards
		res, err := Run(o)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if res.IPC != base.IPC || res.Cycles != base.Cycles || res.HitRate != base.HitRate {
			t.Fatalf("shards=%d drifted: IPC %v vs %v, cycles %d vs %d",
				shards, res.IPC, base.IPC, res.Cycles, base.Cycles)
		}
		for i := range base.Cores {
			if res.Cores[i] != base.Cores[i] {
				t.Fatalf("shards=%d core %d drifted: %+v vs %+v", shards, i, res.Cores[i], base.Cores[i])
			}
		}
		if res.Network != base.Network || res.BankAccesses != base.BankAccesses {
			t.Fatalf("shards=%d network/bank stats drifted", shards)
		}
	}
}

// TestCMPPrepCacheMatchesPlainRun: the engine path (shared PrepCache,
// warm-image cloning of the merged CMP warm table) must be bit-identical
// to the uncached single run.
func TestCMPPrepCacheMatchesPlainRun(t *testing.T) {
	opt := cmpOpts("H2", 2, 500)
	plain, err := Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	results, _, err := NewEngine(1).RunAll([]Options{opt, opt})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.IPC != plain.IPC || res.Cycles != plain.Cycles {
			t.Fatalf("engine run %d drifted from plain Run: IPC %v vs %v", i, res.IPC, plain.IPC)
		}
		for j := range plain.Cores {
			if res.Cores[j] != plain.Cores[j] {
				t.Fatalf("engine run %d core %d drifted: %+v vs %+v", i, j, res.Cores[j], plain.Cores[j])
			}
		}
	}
}

// TestCMPDirectoryPolicyRun drives the ownership-tracking policy
// through a full trace-driven multi-core run and reconciles the
// directory against the resident blocks afterwards — the end-to-end
// complement of the scripted conformance matrix in internal/cmp.
func TestCMPDirectoryPolicyRun(t *testing.T) {
	opt := cmpOpts("A", 4, 600)
	opt.Policy = cache.Directory
	art, err := Prepare(opt, NewPrepCache())
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewInstance(art, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := in.RunToCompletion()
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 || len(res.Cores) != 4 {
		t.Fatalf("bad result: %+v", res)
	}
	dir := in.Sys.Dir
	if dir == nil {
		t.Fatal("directory policy ran without directory state")
	}
	if v := dir.Verify(in.Sys); len(v) != 0 {
		t.Fatalf("directory out of sync after full run: %v", v)
	}
	rep := dir.Report()
	if len(rep.Owners) != 4 {
		t.Fatalf("directory saw owners %v, want 4 cores", rep.Owners)
	}
	if rep.CrossDrops == 0 {
		t.Error("600 accesses x 4 overlapping working sets produced no cross-core evictions")
	}
}

func TestCMPRejectsBadOptions(t *testing.T) {
	bad := cmpOpts("A", -1, 100)
	if _, err := Run(bad); err == nil || !strings.Contains(err.Error(), "cores") {
		t.Errorf("negative cores: got %v", err)
	}
	radial := cmpOpts("E", 2, 100)
	if _, err := Run(radial); err == nil || !strings.Contains(err.Error(), "radial") {
		t.Errorf("radial design: got %v", err)
	}
	wide := cmpOpts("A", 17, 100)
	if _, err := Run(wide); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("cores beyond the row: got %v", err)
	}
}

// TestCMPCanonicalKeySeesCores: Cores is a configuration, not an
// execution knob — distinct core counts must hash to distinct keys so
// the serving cache never aliases them.
func TestCMPCanonicalKeySeesCores(t *testing.T) {
	a, err := CanonicalKey(cmpOpts("A", 0, 500))
	if err != nil {
		t.Fatal(err)
	}
	b, err := CanonicalKey(cmpOpts("A", 2, 500))
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("Cores=0 and Cores=2 share a canonical key")
	}
}

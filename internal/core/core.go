// Package core is the top-level API of the nucanet reproduction: it
// assembles a networked L2 cache (Table 3 design + replacement policy +
// unicast/multicast mode), drives it with a Table 2 benchmark workload
// through the CPU model, and returns the measurements the paper reports.
//
// The experiment drivers in experiments.go regenerate every table and
// figure of the evaluation section; cmd/paperbench formats them.
package core

import (
	"fmt"

	"nucanet/internal/cache"
	"nucanet/internal/config"
	"nucanet/internal/cpu"
	"nucanet/internal/energy"
	"nucanet/internal/mem"
	"nucanet/internal/network"
	"nucanet/internal/router"
	"nucanet/internal/sim"
	"nucanet/internal/stats"
	"nucanet/internal/telemetry"
	"nucanet/internal/trace"
)

// Options configures one simulation run.
type Options struct {
	// DesignID selects a Table 3 configuration ("A".."F").
	DesignID string
	// Design, when non-nil, overrides the DesignID lookup with an ad-hoc
	// configuration not in Table 3 (e.g. the power-gating sweep's
	// truncated columns).
	Design *config.Design
	Policy cache.Policy
	Mode   cache.Mode
	// Benchmark names a Table 2 profile.
	Benchmark string
	// Router, when non-empty, overrides the design's router
	// microarchitecture with a registered engine name ("vc-wormhole",
	// "bufferless", "ring-lite"). Empty keeps the design's own engine
	// (itself defaulting to the VC wormhole router).
	Router string
	// Accesses is the measured L2 access count (after warm-up).
	Accesses int
	Seed     uint64
	CPU      cpu.Config
	// Telemetry selects cycle-level probes (flit trace, heatmaps, time
	// series). The zero value disables them all at zero cost.
	Telemetry telemetry.Config
}

// DefaultOptions returns the baseline configuration: Design A, multicast
// Fast-LRU, gcc, 10k accesses.
func DefaultOptions() Options {
	return Options{
		DesignID:  "A",
		Policy:    cache.FastLRU,
		Mode:      cache.Multicast,
		Benchmark: "gcc",
		Accesses:  10000,
		Seed:      42,
		CPU:       cpu.DefaultConfig(),
	}
}

// Result is the outcome of one run.
type Result struct {
	Options Options
	Design  config.Design

	IPC          float64
	PerfectIPC   float64
	Instructions int64
	Cycles       int64

	AvgLatency   float64
	AvgHit       float64
	AvgMiss      float64
	AvgOccupancy float64 // issue -> replacement-chain completion
	HitRate      float64
	MRUHitShare  float64 // fraction of hits at the MRU bank

	BankShare, NetworkShare, MemShare float64 // Figure 7 split

	BankAccesses uint64
	Network      network.Stats
	Memory       mem.Stats

	// Latency is a snapshot of the run's full latency accumulator; use
	// Latency.Merge to combine runs of a sweep into one aggregate.
	Latency *stats.Latency

	// Energy is the activity-based energy estimate of the run (the
	// paper's stated future-work analysis; see internal/energy).
	Energy energy.Report

	// Telemetry holds the run's probe data when Options.Telemetry enabled
	// any probe; nil otherwise.
	Telemetry *telemetry.Collector
}

// Run executes one simulation to completion. Each run owns its kernel,
// RNG streams, and stats, so concurrent Run calls on distinct Options
// never share mutable state (the property the parallel engine depends
// on; see engine.go and the determinism regression test).
func Run(opt Options) (Result, error) {
	dp, err := config.Resolve(opt.DesignID, opt.Design)
	if err != nil {
		return Result{}, err
	}
	d := *dp
	if opt.Router != "" {
		d.Router.Engine = opt.Router
	}
	// Normalize the engine to its registered name (empty selects the
	// default) so Result.Design records what actually simulated, and fail
	// fast on unknown engines or unsupported (engine, topology) pairs.
	eng, err := router.ByName(d.Router.Engine)
	if err != nil {
		return Result{}, err
	}
	d.Router.Engine = eng.Name
	if err := d.Validate(); err != nil {
		return Result{}, err
	}
	prof, err := trace.ProfileByName(opt.Benchmark)
	if err != nil {
		return Result{}, err
	}
	if opt.Accesses <= 0 {
		return Result{}, fmt.Errorf("core: accesses must be positive, got %d", opt.Accesses)
	}

	k := sim.NewKernel()
	sys, err := cache.New(k, d, opt.Policy, opt.Mode)
	if err != nil {
		return Result{}, err
	}
	gen := trace.NewSynthetic(prof, sys.AM, opt.Seed)
	sys.Warm(gen.WarmBlocks(d.Ways()))
	accs := trace.Take(gen, opt.Accesses)

	cpuCfg := opt.CPU
	if cpuCfg.Window == 0 {
		cpuCfg = cpu.DefaultConfig()
	}
	cpuCfg.Seed = opt.Seed
	c := cpu.New(k, sys, prof, accs, cpuCfg)
	// Telemetry is wired after every working component so its sampling
	// observer registers with the highest component id and ticks last
	// within a cycle (see sim.Observer).
	tel := telemetry.New(opt.Telemetry, sys.Topo)
	if tel != nil {
		sys.EnableTelemetry(tel)
	}
	res, err := c.Run(1 << 40)
	if err != nil {
		return Result{}, fmt.Errorf("core: %s/%v/%v/%s: %w",
			d.ID, opt.Policy, opt.Mode, opt.Benchmark, err)
	}
	if err := sys.Drain(1 << 30); err != nil {
		return Result{}, err
	}
	tel.Finish(k.Now())

	bank, net, memShare := sys.Lat.Shares()
	netStats := sys.Net.Stats()
	memStats := sys.Memory.Stats()
	erep := energy.DefaultModel().Estimate(energy.Activity{
		FlitHops:     netStats.Router.FlitsRouted,
		BankAccesses: sys.BankAccessesBySize(),
		MemBlocks:    memStats.Reads + memStats.WriteBacks,
		Accesses:     uint64(opt.Accesses),
	})
	return Result{
		Options:      opt,
		Design:       d,
		IPC:          res.IPC(),
		PerfectIPC:   prof.PerfectIPC,
		Instructions: res.Instructions,
		Cycles:       res.Cycles,
		AvgLatency:   sys.Lat.Avg(),
		AvgHit:       sys.Lat.AvgHit(),
		AvgMiss:      sys.Lat.AvgMiss(),
		AvgOccupancy: sys.Lat.AvgOccupancy(),
		HitRate:      sys.Lat.HitRate(),
		MRUHitShare:  sys.Lat.HitWayShare(0),
		BankShare:    bank,
		NetworkShare: net,
		MemShare:     memShare,
		BankAccesses: sys.BankAccesses(),
		Network:      netStats,
		Memory:       memStats,
		Latency:      sys.Lat.Clone(),
		Energy:       erep,
		Telemetry:    tel,
	}, nil
}

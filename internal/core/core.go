// Package core is the top-level API of the nucanet reproduction: it
// assembles a networked L2 cache (Table 3 design + replacement policy +
// unicast/multicast mode), drives it with a Table 2 benchmark workload
// through the CPU model, and returns the measurements the paper reports.
//
// The experiment drivers in experiments.go regenerate every table and
// figure of the evaluation section; cmd/paperbench formats them.
package core

import (
	"nucanet/internal/cache"
	"nucanet/internal/config"
	"nucanet/internal/cpu"
	"nucanet/internal/energy"
	"nucanet/internal/mem"
	"nucanet/internal/network"
	"nucanet/internal/stats"
	"nucanet/internal/telemetry"
)

// Options configures one simulation run.
type Options struct {
	// DesignID selects a Table 3 configuration ("A".."F").
	DesignID string
	// Design, when non-nil, overrides the DesignID lookup with an ad-hoc
	// configuration not in Table 3 (e.g. the power-gating sweep's
	// truncated columns).
	Design *config.Design
	Policy cache.Policy
	Mode   cache.Mode
	// Benchmark names a Table 2 profile.
	Benchmark string
	// Router, when non-empty, overrides the design's router
	// microarchitecture with a registered engine name ("vc-wormhole",
	// "bufferless", "ring-lite"). Empty keeps the design's own engine
	// (itself defaulting to the VC wormhole router).
	Router string
	// Accesses is the measured L2 access count (after warm-up).
	Accesses int
	Seed     uint64
	CPU      cpu.Config
	// Telemetry selects cycle-level probes (flit trace, heatmaps, time
	// series). The zero value disables them all at zero cost.
	Telemetry telemetry.Config
	// Cores switches the run to full-system CMP mode: N trace-driven
	// cores spread along the fabric's top row (see internal/cmp), each
	// replaying its own Accesses-long stream on a private tag range with
	// a seed derived by cpu.CoreSeed. 0 — the default — is the classic
	// single-core path, attached at the design's CoreX, bit-identical to
	// every pre-CMP golden. Cores >= 1 measures sharing contention on
	// the simulated fabric; Cores == 1 is the degenerate CMP (one core
	// at the row's midpoint) the analytic cmp layer used to model.
	Cores int
	// Shards splits this one run's fabric across up to N goroutines
	// advancing in conservative windows (see sim.NewShardedKernel and
	// topology.Partition). Results are bit-identical to the sequential
	// kernel at every value, so Shards is an execution knob, not a
	// configuration: it is excluded from CanonicalKey (hash.go) and from
	// Result comparability. 0 and 1 select the sequential kernel. The
	// flit trace probe requires the sequential kernel (Telemetry.Trace
	// with Shards > 1 is rejected).
	Shards int
}

// DefaultOptions returns the baseline configuration: Design A, multicast
// Fast-LRU, gcc, 10k accesses.
func DefaultOptions() Options {
	return Options{
		DesignID:  "A",
		Policy:    cache.FastLRU,
		Mode:      cache.Multicast,
		Benchmark: "gcc",
		Accesses:  10000,
		Seed:      42,
		CPU:       cpu.DefaultConfig(),
	}
}

// Result is the outcome of one run.
type Result struct {
	Options Options
	Design  config.Design

	IPC          float64
	PerfectIPC   float64
	Instructions int64
	Cycles       int64

	AvgLatency   float64
	AvgHit       float64
	AvgMiss      float64
	AvgOccupancy float64 // issue -> replacement-chain completion
	HitRate      float64
	MRUHitShare  float64 // fraction of hits at the MRU bank

	BankShare, NetworkShare, MemShare float64 // Figure 7 split

	BankAccesses uint64
	Network      network.Stats
	Memory       mem.Stats

	// Latency is a snapshot of the run's full latency accumulator; use
	// Latency.Merge to combine runs of a sweep into one aggregate.
	Latency *stats.Latency

	// Energy is the activity-based energy estimate of the run (the
	// paper's stated future-work analysis; see internal/energy).
	Energy energy.Report

	// Telemetry holds the run's probe data when Options.Telemetry enabled
	// any probe; nil otherwise.
	Telemetry *telemetry.Collector

	// Cores holds the per-core outcomes of a CMP run (Options.Cores >=
	// 1); nil on the classic single-core path. The scalar fields above
	// aggregate: IPC and Instructions sum over the cores, Cycles is the
	// slowest core's finish, and the latency statistics keep the shared
	// cache's protocol-side view.
	Cores []CoreResult

	// Directory is the merged ownership report of a run under the
	// directory policy (per-owner occupancy and the cross-core eviction
	// matrix); nil under every other policy.
	Directory *cache.DirReport
}

// CoreResult is one CMP core's outcome. Latency and hit rate are the
// core-observed view (including trips to and from remote home
// controllers), unlike Result's shared protocol-side accumulator.
type CoreResult struct {
	Core         int
	IPC          float64
	AvgLatency   float64
	HitRate      float64
	RemoteShare  float64 // fraction of issues homed on another controller
	Instructions int64
	Cycles       int64
}

// Run executes one simulation to completion. Each run owns its kernel,
// RNG streams, and stats, so concurrent Run calls on distinct Options
// never share mutable state (the property the parallel engine depends
// on; see engine.go and the determinism regression test). Run is the
// composition of the batch-evaluation API in instance.go: Prepare the
// immutable artifacts, assemble an Instance, drive it to quiescence.
func Run(opt Options) (Result, error) {
	art, err := Prepare(opt, nil)
	if err != nil {
		return Result{}, err
	}
	in, err := NewInstance(art, nil)
	if err != nil {
		return Result{}, err
	}
	return in.RunToCompletion()
}

package core

import (
	"strings"
	"testing"

	"nucanet/internal/cache"
	"nucanet/internal/config"
)

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatalf("defaults invalid: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Options)
		want string
	}{
		{"unknown design", func(o *Options) { o.DesignID = "Z" }, "unknown design"},
		{"unknown benchmark", func(o *Options) { o.Benchmark = "nope" }, "unknown"},
		{"bad policy", func(o *Options) { o.Policy = Options{}.Policy + 99 }, "invalid policy"},
		{"bad mode", func(o *Options) { o.Mode = Options{}.Mode + 99 }, "invalid mode"},
		{"zero accesses", func(o *Options) { o.Accesses = 0 }, "positive"},
		{"negative accesses", func(o *Options) { o.Accesses = -5 }, "positive"},
	}
	for _, tc := range cases {
		o := DefaultOptions()
		tc.mut(&o)
		err := o.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

// TestRunnerMatchesRun pins the Runner as a pure front-end: the same
// options through NewRunner and through Run produce identical results.
func TestRunnerMatchesRun(t *testing.T) {
	direct := DefaultOptions()
	direct.DesignID = "F"
	direct.Benchmark = "mcf"
	direct.Accesses = 800
	direct.Seed = 7
	want, err := Run(direct)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewRunner(
		WithDesignID("F"),
		WithScheme(cache.FastLRU, cache.Multicast),
		WithBenchmark("mcf"),
		WithAccesses(800),
		WithSeed(7),
	).Run()
	if err != nil {
		t.Fatal(err)
	}
	if got.IPC != want.IPC || got.Cycles != want.Cycles || got.HitRate != want.HitRate {
		t.Fatalf("runner diverged from Run: IPC %v/%v cycles %v/%v",
			got.IPC, want.IPC, got.Cycles, want.Cycles)
	}
}

func TestRunnerValidatesBeforeRunning(t *testing.T) {
	if _, err := NewRunner(WithAccesses(0)).Run(); err == nil {
		t.Fatal("Runner ran with zero accesses")
	}
	if _, err := NewRunner(WithDesignID("Z")).Run(); err == nil {
		t.Fatal("Runner ran with an unknown design")
	}
}

// TestRunnerOptionsCompose checks option ordering (later wins) and that
// WithDesign overrides an earlier id.
func TestRunnerOptionsCompose(t *testing.T) {
	r := NewRunner(WithBenchmark("gcc"), WithBenchmark("art"))
	if got := r.Options().Benchmark; got != "art" {
		t.Fatalf("later option did not win: %q", got)
	}
	ad, err := config.DesignByID("D")
	if err != nil {
		t.Fatal(err)
	}
	ad.ID = "D-adhoc"
	r = NewRunner(WithDesignID("A"), WithDesign(&ad))
	if err := r.Options().Validate(); err != nil {
		t.Fatal(err)
	}
	d, err := config.Resolve(r.Options().DesignID, r.Options().Design)
	if err != nil {
		t.Fatal(err)
	}
	if d.ID != "D-adhoc" {
		t.Fatalf("WithDesign lost to WithDesignID: resolved %q", d.ID)
	}
	// And the reverse order: a later WithDesignID clears the override.
	r = NewRunner(WithDesign(&ad), WithDesignID("A"))
	d, err = config.Resolve(r.Options().DesignID, r.Options().Design)
	if err != nil {
		t.Fatal(err)
	}
	if d.ID != "A" {
		t.Fatalf("WithDesignID did not clear the override: resolved %q", d.ID)
	}
}

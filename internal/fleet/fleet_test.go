package fleet

import (
	"reflect"
	"testing"

	"nucanet/internal/cache"
	"nucanet/internal/core"
	"nucanet/internal/telemetry"
)

// combos builds the bit-identity table: designs x policies x router
// engines, skipping pairs the static gates reject (that rejection is
// pinned elsewhere; here we only compare successful runs).
func combos(t *testing.T, accesses int) []core.Options {
	t.Helper()
	var opts []core.Options
	for _, designID := range []string{"A", "F", "R"} {
		for _, policy := range []cache.Policy{cache.FastLRU, cache.Promotion, cache.Static} {
			for _, engine := range []string{"", "bufferless", "ring-lite"} {
				opt := core.DefaultOptions()
				opt.DesignID = designID
				opt.Policy = policy
				opt.Router = engine
				opt.Accesses = accesses
				opt.Benchmark = "gcc"
				if _, err := core.Prepare(opt, nil); err != nil {
					continue // engine does not support this topology
				}
				opts = append(opts, opt)
			}
		}
	}
	if len(opts) < 9 {
		t.Fatalf("only %d valid (design, policy, engine) combos; expected at least 9", len(opts))
	}
	return opts
}

// TestFleetBitIdentity is the fleet's core contract: lockstep batch
// evaluation returns results bit-identical to independent core.Run
// calls, across designs x policies x router engines, at any worker
// count, with results in submission order.
func TestFleetBitIdentity(t *testing.T) {
	accesses := 300
	if testing.Short() {
		accesses = 150
	}
	opts := combos(t, accesses)
	want, err := Sequential(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		got, rep, err := RunAll(opts, Config{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.Runs != len(opts) {
			t.Fatalf("workers=%d: report runs = %d, want %d", workers, rep.Runs, len(opts))
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("workers=%d lane %d (%s/%v/%q): fleet result differs from core.Run",
					workers, i, opts[i].DesignID, opts[i].Policy, opts[i].Router)
			}
		}
	}
}

// TestFleetSharedArtifacts pins that sharing actually happens: lanes of
// one design+benchmark reuse one topology and one access stream.
func TestFleetSharedArtifacts(t *testing.T) {
	pc := core.NewPrepCache()
	opt := core.DefaultOptions()
	opt.DesignID = "F"
	opt.Accesses = 100
	a1, err := core.Prepare(opt, pc)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := core.Prepare(opt, pc)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Topo != a2.Topo {
		t.Error("same design prepared twice did not share the topology")
	}
	if a1.Table != a2.Table {
		t.Error("same design prepared twice did not share the routing table")
	}
	if &a1.Accs[0] != &a2.Accs[0] {
		t.Error("same trace key prepared twice did not share the access stream")
	}
	// A different design with the same geometry shares the trace but not
	// the topology.
	opt2 := opt
	opt2.DesignID = "D"
	a3, err := core.Prepare(opt2, pc)
	if err != nil {
		t.Fatal(err)
	}
	if a3.Topo == a1.Topo {
		t.Error("distinct designs share a topology")
	}
	if &a3.Accs[0] != &a1.Accs[0] {
		t.Error("same-geometry designs did not share the access stream")
	}
}

// TestFleetTelemetryFallback pins the escape hatch: a probe-carrying
// lane takes the core.Run path inside its stripe and still lands in
// submission order with its telemetry attached.
func TestFleetTelemetryFallback(t *testing.T) {
	plain := core.DefaultOptions()
	plain.DesignID = "F"
	plain.Accesses = 200
	probed := plain
	probed.Telemetry = telemetry.Config{Heatmap: true}

	got, _, err := RunAll([]core.Options{plain, probed, plain}, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Telemetry != nil || got[2].Telemetry != nil {
		t.Error("plain lanes grew telemetry")
	}
	if got[1].Telemetry == nil {
		t.Error("probed lane lost its telemetry")
	}
	want, err := core.Run(probed)
	if err != nil {
		t.Fatal(err)
	}
	if got[1].IPC != want.IPC || got[1].Cycles != want.Cycles {
		t.Errorf("probed lane IPC/cycles = %v/%v, want %v/%v",
			got[1].IPC, got[1].Cycles, want.IPC, want.Cycles)
	}
}

// TestFleetErrorLowestIndex pins Engine.RunAll-compatible error
// semantics: the lowest-index failing lane's error is returned.
func TestFleetErrorLowestIndex(t *testing.T) {
	ok := core.DefaultOptions()
	ok.Accesses = 100
	bad := ok
	bad.Benchmark = "no-such-benchmark"
	if _, _, err := RunAll([]core.Options{ok, bad, ok}, Config{}); err == nil {
		t.Fatal("bad lane did not fail the batch")
	}
}

// TestFleetEmpty pins the trivial batch.
func TestFleetEmpty(t *testing.T) {
	got, rep, err := RunAll(nil, Config{})
	if err != nil || got != nil || rep.Runs != 0 {
		t.Fatalf("empty batch: got %v, %+v, %v", got, rep, err)
	}
}

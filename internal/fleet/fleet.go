// Package fleet evaluates a batch of independent simulations in
// bulk-synchronous lockstep — the evaluation engine behind the
// topology-placement optimizer (cmd/nucaopt).
//
// The per-run goroutine path (core.Engine.RunAll) pays each run's full
// setup — topology build, routing precompute, static verification, trace
// generation, cache warm-up — even when a sweep evaluates hundreds of
// near-identical candidates. For short screening runs that setup
// dominates the simulation itself. The fleet trades the general path's
// flexibility for batch locality:
//
//   - Shared immutable artifacts. One core.PrepCache deduplicates the
//     (topology, routing table, static verification) triple per distinct
//     design and the (warm table, access stream) pair per distinct
//     (benchmark, seed, geometry) key. An optimizer wave of N candidates
//     over one benchmark mix prepares each artifact once, not N times.
//   - Structure-of-arrays construction. Each worker carves every lane's
//     router/VC state — flit rings, credit counters, arbitration scratch
//     — from one router.Arena, laying the whole stripe out contiguously
//     instead of scattering thousands of small heap objects.
//   - Lockstep windows. Each worker advances its lanes through fixed
//     cycle horizons (sim.Kernel.RunUntil) in rotation, bounding how far
//     any lane's working set drifts from its stripe-mates'.
//
// Every lane still executes exactly the cycles core.Run would — lanes
// share no mutable state, so the results are bit-identical to N
// independent core.Run calls (pinned by TestFleetBitIdentity across
// designs x policies x router engines). Lanes with telemetry probes
// enabled fall back to core.Run inside their worker: probes need the
// general path, and the fleet's contract is completeness, not uniform
// speed.
package fleet

import (
	"fmt"
	"runtime"

	"nucanet/internal/core"
	"nucanet/internal/router"
	"nucanet/internal/sim"
	"nucanet/internal/telemetry"
)

// init registers the fleet as core's bulk runner, so experiment sweeps
// with ExpConfig.Fleet set — and any other core.SetBulkRunner consumer —
// evaluate through the lockstep path in every binary that links this
// package.
func init() {
	core.SetBulkRunner(func(opts []core.Options, workers int) ([]core.Result, core.SweepReport, error) {
		return RunAll(opts, Config{Workers: workers})
	})
}

// Config tunes fleet execution; the zero value is a sensible default.
type Config struct {
	// Workers is the worker-goroutine count; <= 0 selects GOMAXPROCS.
	Workers int
	// Window is the lockstep horizon in cycles; <= 0 selects 4096.
	Window int64
	// Cohort is how many lanes a worker constructs and locksteps at a
	// time; <= 0 selects 8. Cohorts bound the live heap to cohort-many
	// systems per worker, and each cohort reuses the worker's arena
	// memory (router.Arena.Reset) instead of allocating afresh.
	Cohort int
}

// maxLaneCycles mirrors core.Run's cycle budget: a lane that has not
// completed within it is reported with the same did-not-complete error.
const maxLaneCycles = 1 << 40

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Window <= 0 {
		c.Window = 4096
	}
	if c.Cohort <= 0 {
		c.Cohort = 8
	}
	return c
}

// RunAll executes every Options in lockstep batches and returns results
// in submission order, bit-identical to running each through core.Run.
// On error it returns the lowest-index lane's error, exactly as
// core.Engine.RunAll would. The SweepReport's Work is the summed
// per-worker stripe time (per-lane times do not exist under lockstep, so
// PerRun stays nil).
func RunAll(opts []core.Options, cfg Config) ([]core.Result, core.SweepReport, error) {
	cfg = cfg.withDefaults()
	rep := core.SweepReport{Runs: len(opts), Workers: cfg.Workers}
	if len(opts) == 0 {
		return nil, rep, nil
	}

	// Prepare every lane's artifacts on this goroutine: the PrepCache is
	// single-threaded by design, and preparation is exactly the shared
	// setup the fleet exists to deduplicate.
	pc := core.NewPrepCache()
	arts := make([]*core.Artifacts, len(opts))
	for i, opt := range opts {
		art, err := core.Prepare(opt, pc)
		if err != nil {
			return nil, rep, err
		}
		arts[i] = art
	}

	// Contiguous stripes: worker w owns lanes [w*per, min((w+1)*per, n)).
	// Stripe membership only affects scheduling, never results.
	n := len(arts)
	workers := cfg.Workers
	if workers > n {
		workers = n
	}
	per := (n + workers - 1) / workers

	results := make([]core.Result, n)
	errs := make([]error, n)
	_, durs, wall, err := sim.TimedParMap(workers, workers, func(w int) (struct{}, error) {
		lo, hi := w*per, (w+1)*per
		if hi > n {
			hi = n
		}
		if lo < hi {
			runStripe(arts[lo:hi], results[lo:hi], errs[lo:hi], cfg)
		}
		return struct{}{}, nil
	})
	if err != nil {
		return nil, rep, err // unreachable: stripes report per-lane errors
	}
	rep.Wall = wall
	for _, d := range durs {
		rep.Work += d
	}
	for _, e := range errs {
		if e != nil {
			return nil, rep, e
		}
	}
	return results, rep, nil
}

// runStripe drives one worker's lanes to completion, one cohort at a
// time. All of the stripe's construction state — router slices and bank
// frame slabs — carves from one arena; finishing a cohort drops every
// reference into it, so the next cohort resets and reuses the same
// memory. Cohort boundaries only affect scheduling, never results.
func runStripe(arts []*core.Artifacts, results []core.Result, errs []error, cfg Config) {
	ar := &router.Arena{}
	for lo := 0; lo < len(arts); lo += cfg.Cohort {
		hi := lo + cfg.Cohort
		if hi > len(arts) {
			hi = len(arts)
		}
		ar.Reset()
		runCohort(arts[lo:hi], results[lo:hi], errs[lo:hi], cfg.Window, ar)
	}
}

// runCohort drives one cohort of lanes to completion in lockstep
// windows.
func runCohort(arts []*core.Artifacts, results []core.Result, errs []error, window int64, ar *router.Arena) {
	lanes := make([]*core.Instance, len(arts))
	live := 0
	for i, art := range arts {
		if art.Opt.Telemetry != (telemetry.Config{}) {
			// Probe-carrying lanes take the general path (see package
			// comment); results are identical either way.
			results[i], errs[i] = core.Run(art.Opt)
			continue
		}
		in, err := core.NewInstance(art, ar)
		if err != nil {
			errs[i] = err
			continue
		}
		in.Start()
		lanes[i] = in
		live++
	}

	for horizon := window; live > 0; horizon += window {
		for i, in := range lanes {
			if in == nil {
				continue
			}
			if in.K.RunUntil(horizon) || horizon >= maxLaneCycles {
				results[i], errs[i] = in.FinishIdle()
				lanes[i] = nil
				live--
			}
		}
	}
}

// Sequential is the reference execution the bit-identity tests compare
// against: every lane through core.Run, one at a time, same signature.
func Sequential(opts []core.Options) ([]core.Result, error) {
	out := make([]core.Result, len(opts))
	for i, opt := range opts {
		r, err := core.Run(opt)
		if err != nil {
			return nil, fmt.Errorf("lane %d: %w", i, err)
		}
		out[i] = r
	}
	return out, nil
}

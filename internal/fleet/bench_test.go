package fleet

import (
	"runtime"
	"testing"

	"nucanet/internal/config"
	"nucanet/internal/core"
)

// optimizerBatch models the workload the fleet exists for: one optimizer
// wave of candidate placements, each scored on a small benchmark mix
// with short screening runs (cmd/nucaopt screens every mutation this
// way before re-scoring survivors with long runs). 16 candidates
// (design D with the core/mem column swept across the die) x 4
// benchmarks = 64 lanes; lanes of one candidate share its topology and
// routing table, lanes of one benchmark share the access stream, warm
// table, and warm image.
func optimizerBatch(b *testing.B, accesses int) []core.Options {
	b.Helper()
	base, err := config.DesignByID("D")
	if err != nil {
		b.Fatal(err)
	}
	var opts []core.Options
	for cx := 0; cx < 16; cx++ {
		d := base
		d.ID = "D*"
		d.Params.CoreX = cx
		d.Params.MemX = cx
		for _, bench := range []string{"gcc", "mcf", "art", "apsi"} {
			opt := core.DefaultOptions()
			opt.DesignID = d.ID
			opt.Design = &d
			opt.Benchmark = bench
			opt.Accesses = accesses
			opts = append(opts, opt)
		}
	}
	return opts[:64]
}

// BenchmarkFleetStep compares the fleet's lockstep batch evaluation
// against the per-run goroutine path on the same 64-lane optimizer wave
// (the acceptance target is >=2x at batch >= 64). The runs/s metric is
// completed simulations per second of wall clock.
func BenchmarkFleetStep(b *testing.B) {
	const accesses = 150
	opts := optimizerBatch(b, accesses)
	workers := runtime.GOMAXPROCS(0)

	b.Run("fleet-64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := RunAll(opts, Config{Workers: workers}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(opts)*b.N)/b.Elapsed().Seconds(), "runs/s")
	})
	b.Run("goroutines-64", func(b *testing.B) {
		b.ReportAllocs()
		eng := core.NewEngine(workers)
		for i := 0; i < b.N; i++ {
			if _, _, err := eng.RunAll(opts); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(opts)*b.N)/b.Elapsed().Seconds(), "runs/s")
	})
}

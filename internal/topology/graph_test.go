package topology

import (
	"strings"
	"testing"
)

func TestRegistryNames(t *testing.T) {
	names := Names()
	for _, want := range []string{"mesh", "simplified-mesh", "minimal-mesh", "halo", "ring", "cmesh"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("registry missing %q (have %v)", want, names)
		}
	}
}

func TestRegistryUnknownName(t *testing.T) {
	_, err := Build("torus", Params{W: 4, H: 4})
	if err == nil {
		t.Fatal("expected error for unregistered topology name")
	}
	if !strings.Contains(err.Error(), "torus") {
		t.Fatalf("error should name the unknown topology: %v", err)
	}
}

func TestRegistryBuildMatchesConstructors(t *testing.T) {
	// The registered builders must produce the same graphs as the typed
	// constructors: same node/bank/link counts and endpoints.
	built, err := Build("mesh", Params{W: 8, H: 8, CoreX: 3, MemX: 4,
		HorizDelay: 1, VertDelay: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	direct := NewMesh(MeshSpec{W: 8, H: 8, CoreX: 3, MemX: 4,
		HorizDelay: 1, VertDelay: []int{1}})
	if built.NumNodes() != direct.NumNodes() || built.CountLinks() != direct.CountLinks() ||
		built.Core != direct.Core || built.Mem != direct.Mem || built.Name != direct.Name {
		t.Fatalf("registry mesh differs from NewMesh: %+v vs %+v", built, direct)
	}
}

func TestRingStructure(t *testing.T) {
	r, err := Build("ring", Params{W: 8, H: 1, CoreX: 0, MemX: 4, HorizDelay: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.NumNodes() != 8 || r.NumBanks() != 8 {
		t.Fatalf("nodes=%d banks=%d, want 8/8", r.NumNodes(), r.NumBanks())
	}
	if r.Columns() != 8 || r.Ways() != 1 {
		t.Fatalf("columns=%d ways=%d, want 8/1", r.Columns(), r.Ways())
	}
	// A cycle of bidirectional links: 2 per node, east wraps around.
	if got := r.CountLinks(); got != 16 {
		t.Fatalf("links = %d, want 16", got)
	}
	for i := 0; i < 8; i++ {
		l, ok := r.Link(NodeID(i), PortEast)
		if !ok || l.To != NodeID((i+1)%8) || l.Delay != 2 {
			t.Fatalf("node %d east link = %+v ok=%v, want to %d delay 2", i, l, ok, (i+1)%8)
		}
		back, ok := r.Link(NodeID((i+1)%8), PortWest)
		if !ok || back.To != NodeID(i) {
			t.Fatalf("node %d west link broken", (i+1)%8)
		}
		if r.BanksAt(NodeID(i)) != 1 {
			t.Fatalf("node %d hosts %d banks, want 1", i, r.BanksAt(NodeID(i)))
		}
	}
	if r.Core != 0 || r.Mem != 4 {
		t.Fatalf("core=%d mem=%d, want 0/4", r.Core, r.Mem)
	}
	// A ring is a complete W x 1 grid of routers: NodeAt stays usable
	// (CMP core placement spreads along it).
	if !r.HasGrid() {
		t.Fatal("ring must keep its W x 1 router grid")
	}
	if r.NodeAt(3, 0) != 3 {
		t.Fatalf("NodeAt(3,0) = %d, want 3", r.NodeAt(3, 0))
	}
}

func TestRingRenderFoldsIntoTwoRows(t *testing.T) {
	r, err := Build("ring", Params{W: 9, H: 1, CoreX: 0, MemX: 4})
	if err != nil {
		t.Fatal(err)
	}
	w, h := r.RenderSize()
	if w != 5 || h != 2 {
		t.Fatalf("RenderSize = %dx%d, want 5x2", w, h)
	}
	seen := make(map[[2]int]bool)
	for n := 0; n < r.NumNodes(); n++ {
		x, y := r.RenderCoord(NodeID(n))
		if x < 0 || x >= w || y < 0 || y >= h {
			t.Fatalf("node %d renders out of bounds at (%d,%d)", n, x, y)
		}
		if seen[[2]int{x, y}] {
			t.Fatalf("node %d shares render cell (%d,%d)", n, x, y)
		}
		seen[[2]int{x, y}] = true
	}
	// First half left-to-right on top, second half folded underneath.
	if x, y := r.RenderCoord(0); x != 0 || y != 0 {
		t.Fatalf("node 0 renders at (%d,%d), want (0,0)", x, y)
	}
	// Node 5 folds under its ring neighbor 4: the fold keeps render
	// neighbors (mostly) ring neighbors.
	if x, y := r.RenderCoord(5); x != 4 || y != 1 {
		t.Fatalf("node 5 renders at (%d,%d), want (4,1)", x, y)
	}
}

func TestCMeshStructure(t *testing.T) {
	c, err := Build("cmesh", Params{W: 4, H: 16, CoreX: 1, MemX: 2,
		HorizDelay: 1, VertDelay: []int{1}, Concentration: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// 16 ways at concentration 4 -> 4 router rows of 4 routers.
	if c.NumNodes() != 16 {
		t.Fatalf("nodes = %d, want 16", c.NumNodes())
	}
	if c.NumBanks() != 64 || c.Columns() != 4 || c.Ways() != 16 {
		t.Fatalf("banks=%d columns=%d ways=%d, want 64/4/16", c.NumBanks(), c.Columns(), c.Ways())
	}
	for n := 0; n < c.NumNodes(); n++ {
		if got := c.BanksAt(NodeID(n)); got != 4 {
			t.Fatalf("node %d hosts %d banks, want 4", n, got)
		}
	}
	// Full 4x4 mesh link structure.
	if got, want := c.CountLinks(), 2*(4*3+4*3); got != want {
		t.Fatalf("links = %d, want %d", got, want)
	}
	if !c.HasGrid() {
		t.Fatal("cmesh must expose its full router grid (CMP placement)")
	}
	// Column positions map to routers top-to-bottom, Concentration at a
	// time: column 2 positions 0-3 on router (2,0), 4-7 on (2,1), ...
	col := c.Column(2)
	if len(col) != 16 {
		t.Fatalf("column length = %d, want 16", len(col))
	}
	for pos, node := range col {
		wantNode := c.NodeAt(2, pos/4)
		if node != wantNode {
			t.Fatalf("column 2 pos %d on node %d, want %d", pos, node, wantNode)
		}
	}
	if c.Core != c.NodeAt(1, 0) || c.Mem != c.NodeAt(2, 3) {
		t.Fatalf("core=%d mem=%d, want %d/%d", c.Core, c.Mem, c.NodeAt(1, 0), c.NodeAt(2, 3))
	}
}

func TestCMeshBadConcentration(t *testing.T) {
	_, err := Build("cmesh", Params{W: 4, H: 16, CoreX: 1, MemX: 2, Concentration: 3})
	if err == nil || !strings.Contains(err.Error(), "concentration") {
		t.Fatalf("expected concentration-divisibility error, got %v", err)
	}
}

func TestRingTooSmall(t *testing.T) {
	_, err := Build("ring", Params{W: 2, H: 1})
	if err == nil {
		t.Fatal("a 2-node ring must be rejected")
	}
}

func TestHaloRenderNonUniform(t *testing.T) {
	// Design F's shape: 16 spikes of length 5 with non-uniform wire
	// delays. Render coordinates must stay a compact distinct grid
	// regardless of the delays.
	h := NewHalo(HaloSpec{Spikes: 16, Length: 5, LinkDelay: []int{1, 1, 2, 2, 3}, MemWireDelay: 9})
	w, ht := h.RenderSize()
	if w != 16 || ht != 6 {
		t.Fatalf("RenderSize = %dx%d, want 16x6 (spikes x length+hub row)", w, ht)
	}
	if x, y := h.RenderCoord(h.Hub()); x != 8 || y != 0 {
		t.Fatalf("hub renders at (%d,%d), want (8,0)", x, y)
	}
	seen := make(map[[2]int]bool)
	for n := 0; n < h.NumNodes(); n++ {
		x, y := h.RenderCoord(NodeID(n))
		if x < 0 || x >= w || y < 0 || y >= ht {
			t.Fatalf("node %d out of bounds at (%d,%d)", n, x, y)
		}
		if seen[[2]int{x, y}] {
			t.Fatalf("duplicate render cell (%d,%d)", x, y)
		}
		seen[[2]int{x, y}] = true
	}
	// Spike s position p renders at (s, p+1).
	for s := 0; s < 16; s++ {
		for p := 0; p < 5; p++ {
			x, y := h.RenderCoord(h.Column(s)[p])
			if x != s || y != p+1 {
				t.Fatalf("spike %d pos %d renders at (%d,%d), want (%d,%d)", s, p, x, y, s, p+1)
			}
		}
	}
}

func TestBuilderRejectsBadGraphs(t *testing.T) {
	// No columns at all.
	b := NewBuilder("bad", "xy", 1, 1)
	b.AddNode(0, 0, 2)
	b.Endpoints(0, 0)
	if _, err := b.Build(); err == nil {
		t.Fatal("builder must reject a topology without bank columns")
	}
	// Unequal column lengths.
	b2 := NewBuilder("bad2", "xy", 2, 2)
	n0 := b2.AddNode(0, 0, 2)
	n1 := b2.AddNode(1, 0, 2)
	b2.Column(n0, n1)
	b2.Column(n0)
	b2.Endpoints(n0, n1)
	if _, err := b2.Build(); err == nil {
		t.Fatal("builder must reject unequal column lengths")
	}
}

package topology

// Partition cuts a registered graph into shards for the sharded
// simulation kernel (sim.NewShardedKernel): every node is assigned a
// home shard, and the plan reports each directed link crossing a shard
// boundary plus the minimum latency over those cut links. The cut-link
// latency is the conservative-window bound — neighbor shards cannot
// influence each other faster than their slowest coupling, so a window
// of MinCutDelay cycles is safe to run without cross-shard ordering
// (the sharded kernel additionally orders adjacent cut routers within a
// cycle; see internal/sim).
//
// The planner works on render coordinates, which every builder assigns:
// it slices the graph into vertical stripes of contiguous render-X
// values, balanced by node count. Mesh node ids are row-major, so
// X-stripes interleave ids across shards — within one cycle each shard
// ticks a slice of every row, and the cut routers form a wavefront that
// pipelines instead of serializing (a Y-cut would put all of shard 0's
// ids before shard 1's and force the shards to run back to back). When
// the shard count is even, a quadrant split (half as many stripes, each
// cut in two by render-Y) is also scored and wins if it balances nodes
// strictly better.
//
// Partition is deterministic and never fails: degenerate requests
// (shards < 2, graphs narrower than the shard count) clamp down, so
// Plan.Shards is the effective count and may be less than requested —
// including 1, meaning "run sequentially".

// CutLink is one directed link crossing a shard boundary.
type CutLink struct {
	From, To NodeID
	Delay    int
}

// Plan is a shard assignment over one topology.
type Plan struct {
	// Shards is the effective shard count (may be less than requested).
	Shards int
	// ShardOf maps node id -> home shard in [0, Shards).
	ShardOf []int
	// CutLinks lists every directed link whose endpoints live on
	// different shards, in (From, port) order.
	CutLinks []CutLink
	// MinCutDelay is the minimum Delay over CutLinks — the safe
	// conservative-window bound in cycles. 0 when there are no cut
	// links (fully decoupled shards).
	MinCutDelay int
}

// Partition assigns every node of t to one of up to `shards` shards.
func Partition(t *Topology, shards int) *Plan {
	n := t.NumNodes()
	if shards > n {
		shards = n
	}
	if shards < 2 {
		return &Plan{Shards: 1, ShardOf: make([]int, n)}
	}
	assign := stripeAssign(t, shards)
	if shards%2 == 0 {
		if quad := quadrantAssign(t, shards); quad != nil &&
			maxShardSize(quad, shards) < maxShardSize(assign, shards) {
			assign = quad
		}
	}
	return finishPlan(t, assign, shards)
}

// stripeAssign slices nodes into vertical stripes of contiguous
// render-X, balancing by node count: a node goes to the shard indicated
// by the fraction of nodes in strictly-lower X columns.
func stripeAssign(t *Topology, shards int) []int {
	n := t.NumNodes()
	maxX := 0
	for id := 0; id < n; id++ {
		if x, _ := t.RenderCoord(NodeID(id)); x > maxX {
			maxX = x
		}
	}
	colCount := make([]int, maxX+1)
	for id := 0; id < n; id++ {
		x, _ := t.RenderCoord(NodeID(id))
		colCount[x]++
	}
	// shard of each X = floor(prefix * shards / total), monotone in X.
	colShard := make([]int, maxX+1)
	prefix := 0
	for x := 0; x <= maxX; x++ {
		s := prefix * shards / n
		if s >= shards {
			s = shards - 1
		}
		colShard[x] = s
		prefix += colCount[x]
	}
	assign := make([]int, n)
	for id := 0; id < n; id++ {
		x, _ := t.RenderCoord(NodeID(id))
		assign[id] = colShard[x]
	}
	return assign
}

// quadrantAssign splits into shards/2 stripes, each cut into a top and
// bottom half by render-Y at the balanced median. Returns nil when the
// graph has a single render row (no Y split possible).
func quadrantAssign(t *Topology, shards int) []int {
	n := t.NumNodes()
	maxY := 0
	for id := 0; id < n; id++ {
		if _, y := t.RenderCoord(NodeID(id)); y > maxY {
			maxY = y
		}
	}
	if maxY == 0 {
		return nil
	}
	rowCount := make([]int, maxY+1)
	for id := 0; id < n; id++ {
		_, y := t.RenderCoord(NodeID(id))
		rowCount[y]++
	}
	// Y halves: rows [0, splitY) on top, the rest below, split at the
	// first prefix reaching half the nodes.
	splitY, prefix := maxY, 0
	for y := 0; y <= maxY; y++ {
		prefix += rowCount[y]
		if prefix*2 >= n {
			splitY = y + 1
			break
		}
	}
	stripes := stripeAssign(t, shards/2)
	assign := make([]int, n)
	for id := 0; id < n; id++ {
		_, y := t.RenderCoord(NodeID(id))
		half := 0
		if y >= splitY {
			half = 1
		}
		assign[id] = stripes[id]*2 + half
	}
	return assign
}

func maxShardSize(assign []int, shards int) int {
	size := make([]int, shards)
	for _, s := range assign {
		size[s]++
	}
	max := 0
	for _, c := range size {
		if c > max {
			max = c
		}
	}
	return max
}

// finishPlan compacts empty shards out of the assignment and computes
// the cut set.
func finishPlan(t *Topology, assign []int, shards int) *Plan {
	used := make([]int, shards)
	for _, s := range assign {
		used[s] = 1
	}
	renum := make([]int, shards)
	eff := 0
	for s := 0; s < shards; s++ {
		if used[s] == 1 {
			renum[s] = eff
			eff++
		}
	}
	p := &Plan{Shards: eff, ShardOf: make([]int, len(assign))}
	for id, s := range assign {
		p.ShardOf[id] = renum[s]
	}
	if eff < 2 {
		p.Shards = 1
		for i := range p.ShardOf {
			p.ShardOf[i] = 0
		}
		return p
	}
	for id := 0; id < t.NumNodes(); id++ {
		for port := 0; port < t.NumPorts(NodeID(id)); port++ {
			l, ok := t.Link(NodeID(id), port)
			if !ok {
				continue
			}
			if p.ShardOf[id] != p.ShardOf[l.To] {
				p.CutLinks = append(p.CutLinks, CutLink{From: NodeID(id), To: l.To, Delay: l.Delay})
				if p.MinCutDelay == 0 || l.Delay < p.MinCutDelay {
					p.MinCutDelay = l.Delay
				}
			}
		}
	}
	return p
}

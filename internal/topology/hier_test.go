package topology

import (
	"strings"
	"testing"
)

// hierForTest is the H2 shape: two 8x4 chiplet meshes plus a 4-bridge
// ring, with the core column chosen so the dateline lands on an interior
// mesh link.
func hierForTest() *Topology {
	return NewHier(HierSpec{W: 16, H: 4, Chiplets: 2, CoreX: 3, MemX: 3,
		HorizDelay: 2, VertDelay: []int{2}})
}

func TestHierStructure(t *testing.T) {
	topo := hierForTest()
	const W, H, C = 16, 4, 2
	if got, want := topo.NumNodes(), W*H+2*C; got != want {
		t.Fatalf("NumNodes = %d, want %d (mesh + bridges)", got, want)
	}
	if !topo.HasGrid() {
		t.Fatal("hier must keep the mesh grid (bridges sit off it)")
	}
	if got := HierChiplets(topo); got != C {
		t.Fatalf("HierChiplets = %d, want %d", got, C)
	}
	bridges := 0
	for id, nd := range topo.Nodes {
		if nd.Y >= 0 {
			continue
		}
		bridges++
		if topo.NumPorts(NodeID(id)) != 2 {
			t.Errorf("bridge %d has %d ports, want 2", id, topo.NumPorts(NodeID(id)))
		}
		if nd.Col >= 0 {
			t.Errorf("bridge %d assigned to bank column %d, want bankless", id, nd.Col)
		}
		if n := topo.BanksAt(NodeID(id)); n != 0 {
			t.Errorf("bridge %d hosts %d banks, want 0", id, n)
		}
	}
	if bridges != 2*C {
		t.Fatalf("%d off-grid bridge nodes, want %d", bridges, 2*C)
	}
	if err := topo.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

// TestHierRingClosure follows PortEast from a bridge around the full ring:
// it must return to the start in exactly W + 2*Chiplets hops, visiting
// every bridge and every row-0 mesh router once, in increasing ring
// position order.
func TestHierRingClosure(t *testing.T) {
	topo := hierForTest()
	ring := topo.W + 2*HierChiplets(topo)
	// West bridge of chiplet 0: ring position 0.
	var start NodeID = -1
	for id, nd := range topo.Nodes {
		if nd.Y < 0 && HierRingPos(topo, NodeID(id)) == 0 {
			start = NodeID(id)
			break
		}
		_ = nd
	}
	if start < 0 {
		t.Fatal("no bridge at ring position 0")
	}
	cur := start
	for hop := 0; hop < ring; hop++ {
		if got := HierRingPos(topo, cur); got != hop {
			t.Fatalf("hop %d lands on ring position %d", hop, got)
		}
		l, ok := topo.Link(cur, PortEast)
		if !ok {
			t.Fatalf("ring broken: no PortEast link at node %d (ring position %d)", cur, hop)
		}
		cur = l.To
	}
	if cur != start {
		t.Fatalf("ring of %d hops does not close: ended at %d, started at %d", ring, cur, start)
	}
}

// TestHierRingPositions pins the projection: bridges carry their logical
// X, a mesh column x of chiplet i projects to i*(cw+2) + 1 + x%cw.
func TestHierRingPositions(t *testing.T) {
	topo := hierForTest()
	cw := 8
	for id, nd := range topo.Nodes {
		got := HierRingPos(topo, NodeID(id))
		var want int
		if nd.Y < 0 {
			want = nd.X
		} else {
			want = (nd.X/cw)*(cw+2) + 1 + nd.X%cw
		}
		if got != want {
			t.Errorf("node %d (X=%d, Y=%d): ring position %d, want %d", id, nd.X, nd.Y, got, want)
		}
	}
}

func TestHierRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name string
		spec HierSpec
		want string
	}{
		{"one chiplet", HierSpec{W: 16, H: 4, Chiplets: 1}, "chiplets"},
		{"uneven split", HierSpec{W: 15, H: 4, Chiplets: 2}, "split"},
		{"narrow chiplets", HierSpec{W: 4, H: 2, Chiplets: 4}, "columns"},
		{"core out of range", HierSpec{W: 16, H: 4, Chiplets: 2, CoreX: 16}, "out of range"},
		{"vdelay mismatch", HierSpec{W: 16, H: 4, Chiplets: 2, VertDelay: []int{1, 2}}, "vertical delays"},
	}
	for _, c := range cases {
		_, err := Build("hier", Params{W: c.spec.W, H: c.spec.H, Chiplets: c.spec.Chiplets,
			CoreX: c.spec.CoreX, MemX: c.spec.MemX,
			HorizDelay: c.spec.HorizDelay, VertDelay: c.spec.VertDelay})
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

// TestPartitionHierKeepsBridgesWithEdgeColumns: the stripe planner works
// on render coordinates, and each bridge renders at its chiplet's edge
// mesh column — so a bridge always shards with the routers it feeds, and
// a packet crossing chiplets pays at least one cut-link wait.
func TestPartitionHierKeepsBridgesWithEdgeColumns(t *testing.T) {
	topo := hierForTest()
	for _, shards := range []int{2, 4} {
		p := Partition(topo, shards)
		if p.Shards != shards {
			t.Fatalf("shards=%d: effective %d", shards, p.Shards)
		}
		for id, nd := range topo.Nodes {
			if nd.Y >= 0 {
				continue
			}
			// The adjacent row-0 mesh router shares the bridge's render X.
			bx, _ := topo.RenderCoord(NodeID(id))
			var adj NodeID = -1
			for mid, mnd := range topo.Nodes {
				if mnd.Y != 0 {
					continue
				}
				if x, _ := topo.RenderCoord(NodeID(mid)); x == bx {
					adj = NodeID(mid)
					break
				}
			}
			if adj < 0 {
				t.Fatalf("bridge %d: no row-0 router at render X %d", id, bx)
			}
			if p.ShardOf[id] != p.ShardOf[adj] {
				t.Errorf("shards=%d: bridge %d on shard %d, its edge router %d on shard %d",
					shards, id, p.ShardOf[id], adj, p.ShardOf[adj])
			}
		}
	}
}

// TestPartitionHierCutCoversRingHops: when a chiplet's bridge pair lands
// on different shards, the bridge-to-bridge ring links appear in the cut
// set and MinCutDelay — the conservative-window bound — is no larger than
// any ring-hop delay, so the distance-2 cut wait covers the ring hop.
func TestPartitionHierCutCoversRingHops(t *testing.T) {
	topo := hierForTest()
	p := Partition(topo, 2)
	split := false
	for id, nd := range topo.Nodes {
		if nd.Y >= 0 {
			continue
		}
		l, ok := topo.Link(NodeID(id), PortEast)
		if !ok || topo.Nodes[l.To].Y >= 0 {
			continue // not a bridge-to-bridge hop
		}
		if p.ShardOf[id] == p.ShardOf[l.To] {
			continue
		}
		split = true
		found := false
		for _, cl := range p.CutLinks {
			if cl.From == NodeID(id) && cl.To == l.To {
				found = true
				if cl.Delay < p.MinCutDelay {
					t.Errorf("ring cut link %d->%d delay %d below MinCutDelay %d",
						cl.From, cl.To, cl.Delay, p.MinCutDelay)
				}
			}
		}
		if !found {
			t.Errorf("ring link %d->%d crosses shards but is missing from the cut set", id, l.To)
		}
	}
	if !split {
		t.Fatal("2-shard split of a 2-chiplet hier left every bridge pair intact; the test exercises nothing")
	}
	// Completeness over the whole graph, bridges included.
	want := 0
	for id := 0; id < topo.NumNodes(); id++ {
		for port := 0; port < topo.NumPorts(NodeID(id)); port++ {
			if l, ok := topo.Link(NodeID(id), port); ok && p.ShardOf[id] != p.ShardOf[l.To] {
				want++
			}
		}
	}
	if len(p.CutLinks) != want {
		t.Errorf("cut set has %d links, topology has %d crossing links", len(p.CutLinks), want)
	}
}

package topology

import "fmt"

// HierSpec configures the two-level hierarchical topology: Chiplets
// intra-chiplet simplified meshes (horizontal links only in row 0)
// stitched by an inter-chiplet bridge ring. Each chiplet gets two bridge
// routers — a west bridge feeding its first row-0 router and an east
// bridge fed by its last — and the bridges close into one bidirectional
// ring, so row-0 lateral traffic inside a chiplet stays on the mesh while
// cross-chiplet traffic hops bridge to bridge.
//
// The bridges are ordinary nodes of the graph (two ports, no banks, off
// the logical grid like the halo hub), so routing precompute, the static
// verifiers, sharding partitions, and every router engine compose with
// the hierarchy unchanged.
type HierSpec struct {
	W, H       int // total columns across all chiplets x mesh height
	Chiplets   int
	HorizDelay int
	VertDelay  []int
	// CoreX and MemX are global row-0 columns (the CMP fabric ignores
	// CoreX and spreads its cores; the single-core path uses it as is).
	CoreX, MemX int
}

func init() {
	Register("hier", func(p Params) (*Topology, error) {
		return newHier(HierSpec{W: p.W, H: p.H, Chiplets: p.Chiplets,
			CoreX: p.CoreX, MemX: p.MemX,
			HorizDelay: p.HorizDelay, VertDelay: p.VertDelay})
	})
}

func (s *HierSpec) check() error {
	if s.Chiplets < 2 {
		return fmt.Errorf("topology: hierarchical topology needs >= 2 chiplets, got %d", s.Chiplets)
	}
	if s.W < 1 || s.H < 1 {
		return fmt.Errorf("topology: bad hier %dx%d", s.W, s.H)
	}
	if s.W%s.Chiplets != 0 {
		return fmt.Errorf("topology: %d columns do not split into %d chiplets", s.W, s.Chiplets)
	}
	if s.W/s.Chiplets < 2 {
		return fmt.Errorf("topology: chiplets need >= 2 columns, got %d", s.W/s.Chiplets)
	}
	if s.CoreX < 0 || s.CoreX >= s.W || s.MemX < 0 || s.MemX >= s.W {
		return fmt.Errorf("topology: core/mem column out of range")
	}
	if len(s.VertDelay) > 1 && len(s.VertDelay) != s.H {
		return fmt.Errorf("topology: %d vertical delays for %d rows", len(s.VertDelay), s.H)
	}
	return nil
}

func (s *HierSpec) vdelay(y int) int {
	switch {
	case len(s.VertDelay) == 0:
		return 1
	case len(s.VertDelay) == 1:
		return s.VertDelay[0]
	default:
		return s.VertDelay[y]
	}
}

func (s *HierSpec) hdelay() int {
	if s.HorizDelay <= 0 {
		return 1
	}
	return s.HorizDelay
}

// HierRingPos returns the bridge ring position of a node: bridges carry
// their position directly (their logical X; they sit off the grid at
// Y = -1), and a mesh node's column projects between its chiplet's two
// bridges. The ring has W + 2*Chiplets positions; the routing algorithm
// and its channel order both steer by this projection.
func HierRingPos(t *Topology, n NodeID) int {
	nd := t.Nodes[n]
	if nd.Y < 0 {
		return nd.X
	}
	cw := t.W / HierChiplets(t)
	return (nd.X/cw)*(cw+2) + 1 + nd.X%cw
}

// HierChiplets counts the chiplets of a hier topology from its bridge
// nodes (the off-grid pairs).
func HierChiplets(t *Topology) int {
	nb := 0
	for _, nd := range t.Nodes {
		if nd.Y < 0 {
			nb++
		}
	}
	return nb / 2
}

func newHier(spec HierSpec) (*Topology, error) {
	if err := spec.check(); err != nil {
		return nil, err
	}
	W, H, C := spec.W, spec.H, spec.Chiplets
	cw := W / C
	b := NewBuilder("hier", "hier", W, H)
	// Render with one extra top row for the bridge ring: mesh row y draws
	// at render row y+1, each chiplet's bridges at its edge columns of
	// render row 0.
	b.RenderSize(W, H+1)
	at := func(x, y int) NodeID { return y*W + x }
	for y := 0; y < H; y++ {
		for x := 0; x < W; x++ {
			id := b.AddNode(x, y, 4)
			b.PlaceAt(id, x, y+1)
		}
	}
	// Vertical links in every global column, as in the simplified mesh.
	for y := 1; y < H; y++ {
		d := spec.vdelay(y)
		for x := 0; x < W; x++ {
			b.Connect(at(x, y-1), PortSouth, at(x, y), PortNorth, d)
		}
	}
	hd := spec.hdelay()
	// Row-0 horizontal links stay inside each chiplet.
	for x := 0; x+1 < W; x++ {
		if x/cw == (x+1)/cw {
			b.Connect(at(x, 0), PortEast, at(x+1, 0), PortWest, hd)
		}
	}
	// Bridge pairs: chiplet i's west bridge sits at ring position
	// i*(cw+2), its east bridge at i*(cw+2)+cw+1, with the chiplet's row-0
	// routers projecting between them. PortEast is always the clockwise
	// (increasing ring position) direction, matching the mesh row.
	west := make([]NodeID, C)
	east := make([]NodeID, C)
	for i := 0; i < C; i++ {
		west[i] = b.AddNode(i*(cw+2), -1, 2)
		b.PlaceAt(west[i], i*cw, 0)
		east[i] = b.AddNode(i*(cw+2)+cw+1, -1, 2)
		b.PlaceAt(east[i], i*cw+cw-1, 0)
		b.Connect(west[i], PortEast, at(i*cw, 0), PortWest, hd)
		b.Connect(at(i*cw+cw-1, 0), PortEast, east[i], PortWest, hd)
	}
	for i := 0; i < C; i++ {
		b.Connect(east[i], PortEast, west[(i+1)%C], PortWest, hd)
	}
	for x := 0; x < W; x++ {
		col := make([]NodeID, H)
		for y := 0; y < H; y++ {
			col[y] = at(x, y)
		}
		b.Column(col...)
	}
	b.Endpoints(at(spec.CoreX, 0), at(spec.MemX, 0))
	return b.Build()
}

// NewHier builds a hierarchical multi-chiplet topology, panicking on a
// malformed spec; Build("hier", params) returns errors instead.
func NewHier(spec HierSpec) *Topology { return must(newHier(spec)) }

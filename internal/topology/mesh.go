package topology

import "fmt"

// MeshSpec configures a mesh-family topology.
type MeshSpec struct {
	W, H int
	// HorizDelay is the wire delay of horizontal links (cycles).
	HorizDelay int
	// VertDelay[y] is the wire delay of the vertical link between row
	// y-1 and row y (VertDelay[0] is unused). A nil slice means delay 1
	// everywhere; a single-element slice is broadcast.
	VertDelay []int
	// CoreX and MemX are the columns of the core (top row) and the
	// memory controller (bottom row). MemAtCore attaches the memory
	// controller to the core router instead (Designs B-D move it there).
	CoreX, MemX int
	MemAtCore   bool
}

func (s *MeshSpec) check() error {
	if s.W < 1 || s.H < 1 {
		return fmt.Errorf("topology: bad mesh %dx%d", s.W, s.H)
	}
	if s.CoreX < 0 || s.CoreX >= s.W || s.MemX < 0 || s.MemX >= s.W {
		return fmt.Errorf("topology: core/mem column out of range")
	}
	if len(s.VertDelay) > 1 && len(s.VertDelay) != s.H {
		return fmt.Errorf("topology: %d vertical delays for %d rows", len(s.VertDelay), s.H)
	}
	return nil
}

func (s *MeshSpec) vdelay(y int) int {
	switch {
	case len(s.VertDelay) == 0:
		return 1
	case len(s.VertDelay) == 1:
		return s.VertDelay[0]
	default:
		return s.VertDelay[y]
	}
}

func (s *MeshSpec) hdelay() int {
	if s.HorizDelay <= 0 {
		return 1
	}
	return s.HorizDelay
}

func init() {
	Register("mesh", func(p Params) (*Topology, error) {
		return newMesh(meshSpecOf(p))
	})
	Register("simplified-mesh", func(p Params) (*Topology, error) {
		return newSimplifiedMesh(meshSpecOf(p))
	})
	Register("minimal-mesh", func(p Params) (*Topology, error) {
		return newMinimalMesh(meshSpecOf(p))
	})
}

func meshSpecOf(p Params) MeshSpec {
	return MeshSpec{W: p.W, H: p.H, CoreX: p.CoreX, MemX: p.MemX,
		HorizDelay: p.HorizDelay, VertDelay: p.VertDelay}
}

// meshGraph assembles the nodes, vertical links, columns, and endpoints
// shared by all mesh variants on a Builder; the caller adds the family's
// horizontal links and finalizes. Node ids are y*W + x; with the full
// grid present, NodeAt(x, y) recovers them.
func meshGraph(name, routing string, spec MeshSpec) (*Builder, error) {
	if err := spec.check(); err != nil {
		return nil, err
	}
	b := NewBuilder(name, routing, spec.W, spec.H)
	at := func(x, y int) NodeID { return y*spec.W + x }
	for y := 0; y < spec.H; y++ {
		for x := 0; x < spec.W; x++ {
			b.AddNode(x, y, 4)
		}
	}
	for y := 1; y < spec.H; y++ {
		d := spec.vdelay(y)
		for x := 0; x < spec.W; x++ {
			b.Connect(at(x, y-1), PortSouth, at(x, y), PortNorth, d)
		}
	}
	for x := 0; x < spec.W; x++ {
		col := make([]NodeID, spec.H)
		for y := 0; y < spec.H; y++ {
			col[y] = at(x, y)
		}
		b.Column(col...)
	}
	mem := at(spec.MemX, spec.H-1)
	if spec.MemAtCore {
		mem = at(spec.CoreX, 0)
	}
	b.Endpoints(at(spec.CoreX, 0), mem)
	return b, nil
}

func newMesh(spec MeshSpec) (*Topology, error) {
	b, err := meshGraph("mesh", "xy", spec)
	if err != nil {
		return nil, err
	}
	at := func(x, y int) NodeID { return y*spec.W + x }
	for y := 0; y < spec.H; y++ {
		for x := 0; x+1 < spec.W; x++ {
			b.Connect(at(x, y), PortEast, at(x+1, y), PortWest, spec.hdelay())
		}
	}
	return b.Build()
}

// NewMesh builds a full 2D mesh (Design A): bidirectional links between all
// neighbors. The core injects at (CoreX, 0) and the memory at (MemX, H-1)
// unless MemAtCore. It panics on a malformed spec; Build("mesh", params)
// returns errors instead.
func NewMesh(spec MeshSpec) *Topology { return must(newMesh(spec)) }

func newSimplifiedMesh(spec MeshSpec) (*Topology, error) {
	spec.MemAtCore = true
	b, err := meshGraph("simplified-mesh", "xyx", spec)
	if err != nil {
		return nil, err
	}
	for x := 0; x+1 < spec.W; x++ {
		b.Connect(x, PortEast, x+1, PortWest, spec.hdelay())
	}
	return b.Build()
}

// NewSimplifiedMesh builds the Design B-D topology (Figure 6(b)):
// horizontal links only in row 0; everything else travels vertically.
// Requires XYX routing; the memory controller moves next to the core.
func NewSimplifiedMesh(spec MeshSpec) *Topology { return must(newSimplifiedMesh(spec)) }

func newMinimalMesh(spec MeshSpec) (*Topology, error) {
	b, err := meshGraph("minimal-mesh", "xy", spec)
	if err != nil {
		return nil, err
	}
	at := func(x, y int) NodeID { return y*spec.W + x }
	hd := spec.hdelay()
	for y := 0; y < spec.H; y++ {
		for x := 0; x+1 < spec.W; x++ {
			a, n := at(x, y), at(x+1, y)
			switch {
			case y == 0 || y == spec.H-1:
				b.Connect(a, PortEast, n, PortWest, hd)
			case (x >= spec.CoreX && x+1 <= spec.MemX) || (x >= spec.MemX && x+1 <= spec.CoreX):
				// Between the core-attached and memory-attached columns.
				b.Connect(a, PortEast, n, PortWest, hd)
			case x+1 <= spec.CoreX:
				// West of the core column: eastbound only (toward core).
				b.OneWay(a, PortEast, n, PortWest, hd)
			case x >= spec.CoreX:
				// East of the core column: westbound only (toward core).
				b.OneWay(n, PortWest, a, PortEast, hd)
			}
		}
	}
	return b.Build()
}

// NewMinimalMesh builds Figure 4(b): full horizontal links in the first and
// last rows and between the core and memory columns; in middle rows only
// unidirectional horizontal links pointing toward the core column (used by
// replies under XY routing). Removes (n-2)^2 of the 4(n-1)^2 mesh links.
func NewMinimalMesh(spec MeshSpec) *Topology { return must(newMinimalMesh(spec)) }

// must unwraps builder results for the panicking constructors, which keep
// the original all-or-nothing contract for in-package callers and tests.
func must(t *Topology, err error) *Topology {
	if err != nil {
		panic(err.Error())
	}
	return t
}

package topology

import "fmt"

// MeshSpec configures a mesh-family topology.
type MeshSpec struct {
	W, H int
	// HorizDelay is the wire delay of horizontal links (cycles).
	HorizDelay int
	// VertDelay[y] is the wire delay of the vertical link between row
	// y-1 and row y (VertDelay[0] is unused). A nil slice means delay 1
	// everywhere; a single-element slice is broadcast.
	VertDelay []int
	// CoreX and MemX are the columns of the core (top row) and the
	// memory controller (bottom row). MemAtCore attaches the memory
	// controller to the core router instead (Designs B-D move it there).
	CoreX, MemX int
	MemAtCore   bool
}

func (s *MeshSpec) vdelay(y int) int {
	switch {
	case len(s.VertDelay) == 0:
		return 1
	case len(s.VertDelay) == 1:
		return s.VertDelay[0]
	default:
		return s.VertDelay[y]
	}
}

func (s *MeshSpec) hdelay() int {
	if s.HorizDelay <= 0 {
		return 1
	}
	return s.HorizDelay
}

// NewMesh builds a full 2D mesh (Design A): bidirectional links between all
// neighbors. The core injects at (CoreX, 0) and the memory at (MemX, H-1)
// unless MemAtCore.
func NewMesh(spec MeshSpec) *Topology {
	t := meshBase(Mesh, spec)
	for y := 0; y < spec.H; y++ {
		for x := 0; x+1 < spec.W; x++ {
			t.connect(t.NodeAt(x, y), PortEast, t.NodeAt(x+1, y), PortWest, spec.hdelay())
		}
	}
	return t
}

// NewSimplifiedMesh builds the Design B-D topology (Figure 6(b)):
// horizontal links only in row 0; everything else travels vertically.
// Requires XYX routing; the memory controller moves next to the core.
func NewSimplifiedMesh(spec MeshSpec) *Topology {
	spec.MemAtCore = true
	t := meshBase(SimplifiedMesh, spec)
	for x := 0; x+1 < spec.W; x++ {
		t.connect(t.NodeAt(x, 0), PortEast, t.NodeAt(x+1, 0), PortWest, spec.hdelay())
	}
	return t
}

// NewMinimalMesh builds Figure 4(b): full horizontal links in the first and
// last rows and between the core and memory columns; in middle rows only
// unidirectional horizontal links pointing toward the core column (used by
// replies under XY routing). Removes (n-2)^2 of the 4(n-1)^2 mesh links.
func NewMinimalMesh(spec MeshSpec) *Topology {
	t := meshBase(MinimalMesh, spec)
	hd := spec.hdelay()
	for y := 0; y < spec.H; y++ {
		for x := 0; x+1 < spec.W; x++ {
			a, b := t.NodeAt(x, y), t.NodeAt(x+1, y)
			switch {
			case y == 0 || y == spec.H-1:
				t.connect(a, PortEast, b, PortWest, hd)
			case (x >= spec.CoreX && x+1 <= spec.MemX) || (x >= spec.MemX && x+1 <= spec.CoreX):
				// Between the core-attached and memory-attached columns.
				t.connect(a, PortEast, b, PortWest, hd)
			case x+1 <= spec.CoreX:
				// West of the core column: eastbound only (toward core).
				t.oneWay(a, PortEast, b, PortWest, hd)
			case x >= spec.CoreX:
				// East of the core column: westbound only (toward core).
				t.oneWay(b, PortWest, a, PortEast, hd)
			}
		}
	}
	return t
}

// meshBase creates nodes, vertical links, columns, and endpoints shared by
// all mesh variants.
func meshBase(kind Kind, spec MeshSpec) *Topology {
	if spec.W < 1 || spec.H < 1 {
		panic(fmt.Sprintf("topology: bad mesh %dx%d", spec.W, spec.H))
	}
	if spec.CoreX < 0 || spec.CoreX >= spec.W || spec.MemX < 0 || spec.MemX >= spec.W {
		panic("topology: core/mem column out of range")
	}
	n := spec.W * spec.H
	t := &Topology{Kind: kind, W: spec.W, H: spec.H}
	t.Nodes = make([]Node, n)
	t.Ports = make([][]PortLink, n)
	t.nodeAt = make([][]NodeID, spec.H)
	for y := 0; y < spec.H; y++ {
		t.nodeAt[y] = make([]NodeID, spec.W)
		for x := 0; x < spec.W; x++ {
			id := y*spec.W + x
			t.Nodes[id] = Node{ID: id, X: x, Y: y, Bank: id}
			ports := make([]PortLink, 4)
			for p := range ports {
				ports[p].To = NoLink
			}
			t.Ports[id] = ports
			t.nodeAt[y][x] = id
		}
	}
	t.banks = n
	for y := 1; y < spec.H; y++ {
		d := spec.vdelay(y)
		for x := 0; x < spec.W; x++ {
			t.connect(t.NodeAt(x, y-1), PortSouth, t.NodeAt(x, y), PortNorth, d)
		}
	}
	t.columns = make([][]NodeID, spec.W)
	for x := 0; x < spec.W; x++ {
		col := make([]NodeID, spec.H)
		for y := 0; y < spec.H; y++ {
			col[y] = t.NodeAt(x, y)
		}
		t.columns[x] = col
	}
	t.Core = t.NodeAt(spec.CoreX, 0)
	if spec.MemAtCore {
		t.Mem = t.Core
	} else {
		t.Mem = t.NodeAt(spec.MemX, spec.H-1)
	}
	return t
}

func (t *Topology) connect(a NodeID, ap int, b NodeID, bp int, delay int) {
	t.Ports[a][ap] = PortLink{To: b, ToPort: bp, Delay: delay}
	t.Ports[b][bp] = PortLink{To: a, ToPort: ap, Delay: delay}
}

func (t *Topology) oneWay(a NodeID, ap int, b NodeID, bp int, delay int) {
	t.Ports[a][ap] = PortLink{To: b, ToPort: bp, Delay: delay}
}

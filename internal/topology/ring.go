package topology

import "fmt"

// RingSpec configures a bidirectional ring: N routers in a cycle, one
// bank per router (single-way bank-set columns), with the cache
// controller and memory controller at chosen positions. Rings exercise
// 2-port routers and the dateline-avoiding ring routing algorithm.
type RingSpec struct {
	N int // ring size (= number of bank-set columns)
	// LinkDelay is the wire delay of every ring link (<= 0 means 1).
	LinkDelay int
	// CoreX and MemX are the ring positions of the cache controller and
	// the memory controller.
	CoreX, MemX int
	// MemWireDelay is the extra per-direction wire delay to the pins.
	MemWireDelay int
}

func (s *RingSpec) check() error {
	if s.N < 3 {
		return fmt.Errorf("topology: ring needs >= 3 nodes, got %d", s.N)
	}
	if s.CoreX < 0 || s.CoreX >= s.N || s.MemX < 0 || s.MemX >= s.N {
		return fmt.Errorf("topology: core/mem position out of range")
	}
	return nil
}

func (s *RingSpec) delay() int {
	if s.LinkDelay <= 0 {
		return 1
	}
	return s.LinkDelay
}

func init() {
	Register("ring", func(p Params) (*Topology, error) {
		if p.H > 1 {
			return nil, fmt.Errorf("topology: ring has one bank per node, H must be 1 (got %d)", p.H)
		}
		return newRing(RingSpec{N: p.W, LinkDelay: p.HorizDelay,
			CoreX: p.CoreX, MemX: p.MemX, MemWireDelay: p.MemWireDelay})
	})
}

func newRing(spec RingSpec) (*Topology, error) {
	if err := spec.check(); err != nil {
		return nil, err
	}
	n := spec.N
	b := NewBuilder("ring", "ring", n, 1)
	// Render the cycle folded into two rows: the first half left to
	// right on top, the second half right to left underneath, so render
	// neighbors are (mostly) ring neighbors.
	top := (n + 1) / 2
	b.RenderSize(top, 2)
	for i := 0; i < n; i++ {
		id := b.AddNode(i, 0, 2)
		if i < top {
			b.PlaceAt(id, i, 0)
		} else {
			b.PlaceAt(id, top-1-(i-top), 1)
		}
		b.Column(id)
	}
	for i := 0; i < n; i++ {
		b.Connect(i, PortEast, (i+1)%n, PortWest, spec.delay())
	}
	b.Endpoints(spec.CoreX, spec.MemX)
	b.MemWire(spec.MemWireDelay)
	return b.Build()
}

// NewRing builds a bidirectional ring. It panics on a malformed spec;
// Build("ring", params) returns errors instead.
func NewRing(spec RingSpec) *Topology { return must(newRing(spec)) }

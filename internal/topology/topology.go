// Package topology builds the interconnect graphs evaluated in the paper:
// the full 2D mesh (Design A), the simplified mesh with horizontal links
// only in the core row (Designs B, C, D), the minimal-link mesh of
// Figure 4(b), and the halo network (Designs E, F) where every MRU bank is
// one hop from the hub.
//
// A topology is a set of router nodes connected by directed port-to-port
// links, each with a wire delay in cycles. Every bank-bearing node hosts
// one cache bank; the core (cache controller) and the memory controller
// attach to designated routers as local endpoints.
package topology

import "fmt"

// NodeID identifies a router.
type NodeID = int

// Kind tags the topology family; routing algorithms dispatch on it.
type Kind uint8

const (
	// Mesh is a full 2D mesh (Design A).
	Mesh Kind = iota
	// SimplifiedMesh keeps horizontal links only in row 0 (Designs B-D,
	// Figure 6(b)); it requires XYX routing.
	SimplifiedMesh
	// MinimalMesh is Figure 4(b): full horizontal links in the first and
	// last rows and in the core/memory columns; unidirectional
	// horizontal links toward the core column elsewhere.
	MinimalMesh
	// Halo is the hub-and-spike network of Figure 6(c)/(d) (Designs E, F).
	Halo
)

func (k Kind) String() string {
	switch k {
	case Mesh:
		return "mesh"
	case SimplifiedMesh:
		return "simplified-mesh"
	case MinimalMesh:
		return "minimal-mesh"
	case Halo:
		return "halo"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Mesh port numbers. Halo uses PortUp/PortDown on spike nodes and one port
// per spike on the hub.
const (
	PortEast  = 0 // X+
	PortWest  = 1 // X-
	PortSouth = 2 // Y+ (away from the core row)
	PortNorth = 3 // Y- (toward the core row)

	PortUp   = 0 // halo spike: toward the hub
	PortDown = 1 // halo spike: away from the hub
)

// NoLink marks an absent port.
const NoLink = -1

// PortLink is one directed link leaving a node.
type PortLink struct {
	To     NodeID
	ToPort int
	Delay  int // wire traversal cycles (>= 1)
}

// Node is one router.
type Node struct {
	ID NodeID
	// X, Y locate the node: mesh coordinates, or (spike, position) on a
	// halo. The halo hub has X = -1, Y = -1.
	X, Y int
	// Bank is the index of the cache bank at this router, or -1.
	Bank int
}

// Topology is an immutable interconnect graph.
type Topology struct {
	Kind  Kind
	W, H  int // mesh width/height, or halo (#spikes, spike length)
	Nodes []Node
	// Ports[n][p] describes the link leaving node n through port p.
	Ports [][]PortLink
	// Core and Mem are the routers hosting the cache controller and the
	// memory controller endpoints.
	Core, Mem NodeID
	// MemWireDelay is the extra wire delay (cycles, each way) between the
	// memory controller and the off-chip pins; large for halos whose
	// memory controller sits at the die centre (16 for E, 9 for F).
	MemWireDelay int

	nodeAt  [][]NodeID // mesh: nodeAt[y][x]; halo: nodeAt[pos][spike]
	columns [][]NodeID // bank-set columns in distance order from the core
	banks   int
}

// NumNodes returns the router count.
func (t *Topology) NumNodes() int { return len(t.Nodes) }

// NumBanks returns the cache bank count.
func (t *Topology) NumBanks() int { return t.banks }

// NumPorts returns how many neighbor ports node n has (including absent ones).
func (t *Topology) NumPorts(n NodeID) int { return len(t.Ports[n]) }

// Link returns the directed link leaving n via port p and whether it exists.
func (t *Topology) Link(n NodeID, p int) (PortLink, bool) {
	if p < 0 || p >= len(t.Ports[n]) || t.Ports[n][p].To == NoLink {
		return PortLink{}, false
	}
	return t.Ports[n][p], true
}

// NodeAt returns the node at mesh coordinates (x, y), or for halos the
// node on spike x at position y (the hub is not addressable this way).
func (t *Topology) NodeAt(x, y int) NodeID {
	return t.nodeAt[y][x]
}

// Columns returns the number of bank-set columns (mesh width / spike count).
func (t *Topology) Columns() int { return len(t.columns) }

// Column returns the routers of bank-set column c ordered by distance from
// the core: Column(c)[0] hosts the MRU bank, the last element the LRU bank.
func (t *Topology) Column(c int) []NodeID { return t.columns[c] }

// Ways returns the number of banks in each bank-set column.
func (t *Topology) Ways() int { return len(t.columns[0]) }

// ColumnOf returns the bank-set column of node n and its position within
// the column (0 = MRU). ok is false for nodes without a bank (the hub).
func (t *Topology) ColumnOf(n NodeID) (col, pos int, ok bool) {
	nd := t.Nodes[n]
	if nd.Bank < 0 {
		return 0, 0, false
	}
	return nd.X, nd.Y, true
}

// SameColumn reports whether a and b are bank-bearing routers of the same
// bank-set column (mesh column or halo spike). Used by path multicast to
// decide local delivery.
func (t *Topology) SameColumn(a, b NodeID) bool {
	na, nb := t.Nodes[a], t.Nodes[b]
	return na.Bank >= 0 && nb.Bank >= 0 && na.X == nb.X
}

// RenderSize returns the grid dimensions for rendering per-node spatial
// data (telemetry heatmaps): meshes render as W x H at their mesh
// coordinates; halos render the spikes as columns with an extra hub row
// on top.
func (t *Topology) RenderSize() (w, h int) {
	if t.Kind == Halo {
		return t.W, t.H + 1
	}
	return t.W, t.H
}

// RenderCoord places node n in the RenderSize grid. Mesh nodes map to
// their (X, Y); a halo's spike s position p maps to (s, p+1) with the
// hub centered in row 0. Every node gets a distinct cell.
func (t *Topology) RenderCoord(n NodeID) (x, y int) {
	nd := t.Nodes[n]
	if t.Kind != Halo {
		return nd.X, nd.Y
	}
	if nd.Bank < 0 { // the hub
		return t.W / 2, 0
	}
	return nd.X, nd.Y + 1
}

// CountLinks returns the number of directed links in the topology.
func (t *Topology) CountLinks() int {
	c := 0
	for n := range t.Ports {
		for p := range t.Ports[n] {
			if t.Ports[n][p].To != NoLink {
				c++
			}
		}
	}
	return c
}

// Validate checks structural invariants: link symmetry of the port tables
// (every link's ToPort refers back or is at least a valid port), positive
// delays, in-range ids. It returns the first problem found.
func (t *Topology) Validate() error {
	for n := range t.Ports {
		for p, l := range t.Ports[n] {
			if l.To == NoLink {
				continue
			}
			if l.To < 0 || l.To >= len(t.Nodes) {
				return fmt.Errorf("node %d port %d: bad target %d", n, p, l.To)
			}
			if l.Delay < 1 {
				return fmt.Errorf("node %d port %d: delay %d < 1", n, p, l.Delay)
			}
			if l.ToPort < 0 || l.ToPort >= len(t.Ports[l.To]) {
				return fmt.Errorf("node %d port %d: bad ToPort %d", n, p, l.ToPort)
			}
		}
	}
	if t.Core < 0 || t.Core >= len(t.Nodes) {
		return fmt.Errorf("bad core node %d", t.Core)
	}
	if t.Mem < 0 || t.Mem >= len(t.Nodes) {
		return fmt.Errorf("bad mem node %d", t.Mem)
	}
	for c, col := range t.columns {
		if len(col) == 0 {
			return fmt.Errorf("column %d empty", c)
		}
		for pos, n := range col {
			if t.Nodes[n].Bank < 0 {
				return fmt.Errorf("column %d pos %d: node %d has no bank", c, pos, n)
			}
		}
	}
	return nil
}

// Package topology builds the interconnect graphs evaluated in the paper
// and beyond: the full 2D mesh (Design A), the simplified mesh with
// horizontal links only in the core row (Designs B, C, D), the
// minimal-link mesh of Figure 4(b), the halo network (Designs E, F) where
// every MRU bank is one hop from the hub, plus registered extensions (a
// bidirectional ring, a concentrated mesh with several banks per router).
//
// A topology is a first-class directed graph: router nodes with typed
// ports of arbitrary degree, directed port-to-port links with wire delays,
// bank-set columns mapping cache banks onto nodes, endpoint placement
// (core and memory routers), and render coordinates for spatial telemetry.
// Families are produced by builders registered by name (see registry.go);
// nothing downstream switches on a topology enum — consumers read the
// graph (and the Routing/Radial annotations) instead.
package topology

import "fmt"

// NodeID identifies a router.
type NodeID = int

// Canonical mesh port numbers. Halo uses PortUp/PortDown on spike nodes
// and one port per spike on the hub; rings use PortEast (clockwise) and
// PortWest (counter-clockwise). These are conventions of the builders,
// not structural requirements: a node may have any number of ports.
const (
	PortEast  = 0 // X+
	PortWest  = 1 // X-
	PortSouth = 2 // Y+ (away from the core row)
	PortNorth = 3 // Y- (toward the core row)

	PortUp   = 0 // halo spike: toward the hub
	PortDown = 1 // halo spike: away from the hub
)

// NoLink marks an absent port.
const NoLink = -1

// PortLink is one directed link leaving a node.
type PortLink struct {
	To     NodeID
	ToPort int
	Delay  int // wire traversal cycles (>= 1)
}

// Node is one router.
type Node struct {
	ID NodeID
	// X, Y locate the node logically: mesh coordinates, (spike, position)
	// on a halo, (ring position, 0) on a ring. The halo hub has X = -1,
	// Y = -1. Routing algorithms steer by these.
	X, Y int
	// Col is the bank-set column whose banks this node hosts, or -1 for
	// nodes without banks (the halo hub). A node may host several
	// consecutive positions of its column (concentrated meshes).
	Col int
	// RX, RY place the node in the RenderSize grid for spatial telemetry;
	// every node occupies a distinct cell.
	RX, RY int
}

// Topology is an immutable interconnect graph.
type Topology struct {
	// Name is the registered family name ("mesh", "halo", "ring", ...).
	Name string
	// Routing names the routing algorithm this graph is designed for
	// (resolved via the routing package's registry).
	Routing string
	// W, H are the family's logical dimensions: mesh width/height, halo
	// (#spikes, spike length), ring (size, 1), cmesh router grid.
	W, H  int
	Nodes []Node
	// Ports[n][p] describes the link leaving node n through port p.
	Ports [][]PortLink
	// Core and Mem are the routers hosting the cache controller and the
	// memory controller endpoints.
	Core, Mem NodeID
	// MemWireDelay is the extra wire delay (cycles, each way) between the
	// memory controller and the off-chip pins; large for halos whose
	// memory controller sits at the die centre (16 for E, 9 for F).
	MemWireDelay int
	// Radial marks hub-and-spike die layouts (halo): the area model packs
	// radial topologies around a central core instead of into rows.
	Radial bool

	renderW, renderH int
	nodeAt           [][]NodeID // nodeAt[y][x] for nodes with in-range (X, Y)
	columns          [][]NodeID // bank-set columns in distance order from the core
	banks            int
}

// NumNodes returns the router count.
func (t *Topology) NumNodes() int { return len(t.Nodes) }

// NumBanks returns the cache bank count (total column positions).
func (t *Topology) NumBanks() int { return t.banks }

// NumPorts returns how many neighbor ports node n has (including absent ones).
func (t *Topology) NumPorts(n NodeID) int { return len(t.Ports[n]) }

// Link returns the directed link leaving n via port p and whether it exists.
func (t *Topology) Link(n NodeID, p int) (PortLink, bool) {
	if p < 0 || p >= len(t.Ports[n]) || t.Ports[n][p].To == NoLink {
		return PortLink{}, false
	}
	return t.Ports[n][p], true
}

// HasGrid reports whether the topology populates the full W x H logical
// grid, i.e. NodeAt is defined for every (x, y). Halos have a grid for
// their spike nodes but the hub lives outside it.
func (t *Topology) HasGrid() bool { return t.nodeAt != nil }

// NodeAt returns the node at logical coordinates (x, y): mesh position,
// or for halos the node on spike x at position y (the hub is not
// addressable this way).
func (t *Topology) NodeAt(x, y int) NodeID {
	return t.nodeAt[y][x]
}

// Columns returns the number of bank-set columns (mesh width / spike count).
func (t *Topology) Columns() int { return len(t.columns) }

// Column returns the routers of bank-set column c ordered by distance from
// the core: Column(c)[0] hosts the MRU bank, the last element the LRU
// bank. A router may appear several times when it hosts consecutive
// positions (concentrated meshes).
func (t *Topology) Column(c int) []NodeID { return t.columns[c] }

// Ways returns the number of banks in each bank-set column.
func (t *Topology) Ways() int { return len(t.columns[0]) }

// ColumnOf returns the bank-set column of node n and its first position
// within the column (0 = MRU). ok is false for nodes without a bank (the
// hub).
func (t *Topology) ColumnOf(n NodeID) (col, pos int, ok bool) {
	nd := t.Nodes[n]
	if nd.Col < 0 {
		return 0, 0, false
	}
	for p, id := range t.columns[nd.Col] {
		if id == n {
			return nd.Col, p, true
		}
	}
	return 0, 0, false
}

// BanksAt returns how many bank positions node n hosts: 0 for bankless
// nodes (the halo hub), 1 on ordinary topologies, >1 on concentrated
// nodes.
func (t *Topology) BanksAt(n NodeID) int {
	nd := t.Nodes[n]
	if nd.Col < 0 {
		return 0
	}
	c := 0
	for _, id := range t.columns[nd.Col] {
		if id == n {
			c++
		}
	}
	return c
}

// SameColumn reports whether a and b are bank-bearing routers of the same
// bank-set column (mesh column or halo spike). Used by path multicast to
// decide local delivery.
func (t *Topology) SameColumn(a, b NodeID) bool {
	na, nb := t.Nodes[a], t.Nodes[b]
	return na.Col >= 0 && na.Col == nb.Col
}

// RenderSize returns the grid dimensions for rendering per-node spatial
// data (telemetry heatmaps).
func (t *Topology) RenderSize() (w, h int) { return t.renderW, t.renderH }

// RenderCoord places node n in the RenderSize grid. Coordinates are part
// of the graph (set by the builder): meshes render at their mesh
// coordinates, halos hang the spikes below a centered hub row, rings
// fold into two rows. Every node gets a distinct cell.
func (t *Topology) RenderCoord(n NodeID) (x, y int) {
	nd := t.Nodes[n]
	return nd.RX, nd.RY
}

// Hub returns the hub node of a radial (halo) topology.
func (t *Topology) Hub() NodeID {
	if !t.Radial {
		panic("topology: Hub on non-radial topology")
	}
	return 0
}

// CountLinks returns the number of directed links in the topology.
func (t *Topology) CountLinks() int {
	c := 0
	for n := range t.Ports {
		for p := range t.Ports[n] {
			if t.Ports[n][p].To != NoLink {
				c++
			}
		}
	}
	return c
}

// Validate checks structural invariants: link symmetry of the port tables
// (every link's ToPort refers back or is at least a valid port), positive
// delays, in-range ids, well-formed columns, and distinct in-range render
// coordinates. It returns the first problem found.
func (t *Topology) Validate() error {
	for n := range t.Ports {
		for p, l := range t.Ports[n] {
			if l.To == NoLink {
				continue
			}
			if l.To < 0 || l.To >= len(t.Nodes) {
				return fmt.Errorf("node %d port %d: bad target %d", n, p, l.To)
			}
			if l.Delay < 1 {
				return fmt.Errorf("node %d port %d: delay %d < 1", n, p, l.Delay)
			}
			if l.ToPort < 0 || l.ToPort >= len(t.Ports[l.To]) {
				return fmt.Errorf("node %d port %d: bad ToPort %d", n, p, l.ToPort)
			}
		}
	}
	if t.Core < 0 || t.Core >= len(t.Nodes) {
		return fmt.Errorf("bad core node %d", t.Core)
	}
	if t.Mem < 0 || t.Mem >= len(t.Nodes) {
		return fmt.Errorf("bad mem node %d", t.Mem)
	}
	for c, col := range t.columns {
		if len(col) == 0 {
			return fmt.Errorf("column %d empty", c)
		}
		for pos, n := range col {
			if n < 0 || n >= len(t.Nodes) {
				return fmt.Errorf("column %d pos %d: bad node %d", c, pos, n)
			}
			if t.Nodes[n].Col != c {
				return fmt.Errorf("column %d pos %d: node %d tagged column %d", c, pos, n, t.Nodes[n].Col)
			}
		}
	}
	seen := make(map[[2]int]NodeID, len(t.Nodes))
	for _, nd := range t.Nodes {
		if nd.RX < 0 || nd.RX >= t.renderW || nd.RY < 0 || nd.RY >= t.renderH {
			return fmt.Errorf("node %d: render coord (%d,%d) outside %dx%d",
				nd.ID, nd.RX, nd.RY, t.renderW, t.renderH)
		}
		at := [2]int{nd.RX, nd.RY}
		if prev, dup := seen[at]; dup {
			return fmt.Errorf("nodes %d and %d share render cell (%d,%d)", prev, nd.ID, nd.RX, nd.RY)
		}
		seen[at] = nd.ID
	}
	return nil
}

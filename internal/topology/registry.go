package topology

import (
	"fmt"
	"sort"
)

// Params names every knob a registered topology family may consume; a
// family reads what it needs and validates the rest. One parameter set
// covers the whole catalogue, so configurations (internal/config) carry a
// family name plus one Params value instead of per-family fields.
type Params struct {
	// W, H are the logical dimensions. For meshes W x H routers; for
	// halos W spikes of H banks; for rings W routers (H must be 1); for
	// concentrated meshes W columns of H banks packed Concentration per
	// router.
	W, H int
	// CoreX and MemX select the columns (or ring positions) hosting the
	// cache controller and the memory controller. Ignored by halos, whose
	// hub hosts both.
	CoreX, MemX int
	// HorizDelay is the wire delay of horizontal (or ring) links.
	HorizDelay int
	// VertDelay[y] is the per-row vertical link delay (meshes), the
	// per-position spike link delay (halos, [0] = hub link), or the
	// per-router-row delay (concentrated meshes). nil means 1 cycle
	// everywhere; a single element is broadcast.
	VertDelay []int
	// MemWireDelay is the extra per-direction wire delay between the
	// memory controller and the off-chip pins.
	MemWireDelay int
	// Concentration is how many consecutive column positions one router
	// hosts (concentrated meshes; 0/1 elsewhere).
	Concentration int
	// Chiplets splits a hierarchical topology into this many W/Chiplets-
	// column chiplet meshes stitched by an inter-chiplet bridge ring
	// (hierarchical topologies; 0 elsewhere).
	Chiplets int
}

// BuilderFunc constructs one topology family from its parameters.
type BuilderFunc func(Params) (*Topology, error)

var families = map[string]BuilderFunc{}

// Register adds a topology family under a unique name. Families
// self-register from init; registering a duplicate name is a programming
// error and panics.
func Register(name string, fn BuilderFunc) {
	if name == "" || fn == nil {
		panic("topology: Register with empty name or nil builder")
	}
	if _, dup := families[name]; dup {
		panic(fmt.Sprintf("topology: family %q registered twice", name))
	}
	families[name] = fn
}

// Build constructs the named family from p.
func Build(name string, p Params) (*Topology, error) {
	fn, ok := families[name]
	if !ok {
		return nil, fmt.Errorf("topology: unknown family %q (registered: %v)", name, Names())
	}
	return fn(p)
}

// Names returns the registered family names, sorted.
func Names() []string {
	out := make([]string, 0, len(families))
	for name := range families {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

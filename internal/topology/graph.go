package topology

import "fmt"

// Builder assembles a Topology as an explicit directed graph: add nodes,
// give them ports, connect ports with links, declare bank-set columns and
// endpoint placement, then Build. All registered families (mesh, halo,
// ring, cmesh) are constructed through this API, and custom topologies
// register builders that use it the same way (see registry.go).
//
// Errors accumulate: the first problem is reported by Build, so call
// sites chain mutations without per-call checks.
type Builder struct {
	t   *Topology
	err error
}

// NewBuilder starts a topology of the named family with logical
// dimensions (w, h) and its routing algorithm's registered name. The
// render grid defaults to w x h; override with RenderSize.
func NewBuilder(name, routing string, w, h int) *Builder {
	b := &Builder{t: &Topology{Name: name, Routing: routing, W: w, H: h,
		renderW: w, renderH: h}}
	if w < 1 || h < 1 {
		b.fail("bad dimensions %dx%d", w, h)
	}
	return b
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("topology %s: %s", b.t.Name, fmt.Sprintf(format, args...))
	}
}

func (b *Builder) validNode(n NodeID) bool {
	if n < 0 || n >= len(b.t.Nodes) {
		b.fail("no node %d", n)
		return false
	}
	return true
}

// AddNode appends a node at logical coordinates (x, y) with the given
// number of (initially unconnected) ports and returns its id. The render
// coordinate defaults to (x, y); override with PlaceAt.
func (b *Builder) AddNode(x, y, ports int) NodeID {
	id := len(b.t.Nodes)
	if ports < 0 {
		b.fail("node %d: negative port count %d", id, ports)
		ports = 0
	}
	b.t.Nodes = append(b.t.Nodes, Node{ID: id, X: x, Y: y, Col: -1, RX: x, RY: y})
	pl := make([]PortLink, ports)
	for p := range pl {
		pl[p].To = NoLink
	}
	b.t.Ports = append(b.t.Ports, pl)
	return id
}

// PlaceAt overrides node n's render coordinate.
func (b *Builder) PlaceAt(n NodeID, rx, ry int) {
	if b.validNode(n) {
		b.t.Nodes[n].RX, b.t.Nodes[n].RY = rx, ry
	}
}

// RenderSize overrides the render grid dimensions.
func (b *Builder) RenderSize(w, h int) { b.t.renderW, b.t.renderH = w, h }

func (b *Builder) validPort(n NodeID, p int) bool {
	if !b.validNode(n) {
		return false
	}
	if p < 0 || p >= len(b.t.Ports[n]) {
		b.fail("node %d has no port %d", n, p)
		return false
	}
	return true
}

// OneWay adds the directed link a.ap -> bn.bp with the given wire delay.
func (b *Builder) OneWay(a NodeID, ap int, bn NodeID, bp int, delay int) {
	if !b.validPort(a, ap) || !b.validPort(bn, bp) {
		return
	}
	if b.t.Ports[a][ap].To != NoLink {
		b.fail("node %d port %d already connected", a, ap)
		return
	}
	b.t.Ports[a][ap] = PortLink{To: bn, ToPort: bp, Delay: delay}
}

// Connect adds the bidirectional link pair a.ap <-> bn.bp.
func (b *Builder) Connect(a NodeID, ap int, bn NodeID, bp int, delay int) {
	b.OneWay(a, ap, bn, bp, delay)
	b.OneWay(bn, bp, a, ap, delay)
}

// Column appends one bank-set column: nodes in distance order from the
// core (position 0 = MRU bank). A node may appear several times to host
// consecutive positions, but only in the column being declared.
func (b *Builder) Column(nodes ...NodeID) {
	c := len(b.t.columns)
	for _, n := range nodes {
		if !b.validNode(n) {
			return
		}
		if b.t.Nodes[n].Col >= 0 && b.t.Nodes[n].Col != c {
			b.fail("node %d in columns %d and %d", n, b.t.Nodes[n].Col, c)
			return
		}
		b.t.Nodes[n].Col = c
	}
	b.t.columns = append(b.t.columns, append([]NodeID(nil), nodes...))
	b.t.banks += len(nodes)
}

// Endpoints places the cache controller (core) and memory controller.
func (b *Builder) Endpoints(core, mem NodeID) {
	if b.validNode(core) && b.validNode(mem) {
		b.t.Core, b.t.Mem = core, mem
	}
}

// Radial marks the topology as hub-and-spike for die layout purposes;
// node 0 must be the hub.
func (b *Builder) Radial() { b.t.Radial = true }

// MemWire sets the extra per-direction wire delay between the memory
// controller and the off-chip pins.
func (b *Builder) MemWire(delay int) { b.t.MemWireDelay = delay }

// Build finalizes the graph: derives the NodeAt grid from the nodes'
// logical coordinates (kept only when the full W x H grid is covered),
// validates the structure, and returns the immutable topology.
func (b *Builder) Build() (*Topology, error) {
	if b.err != nil {
		return nil, b.err
	}
	t := b.t
	grid := make([][]NodeID, t.H)
	filled := 0
	for y := range grid {
		grid[y] = make([]NodeID, t.W)
		for x := range grid[y] {
			grid[y][x] = NoLink
		}
	}
	for _, nd := range t.Nodes {
		if nd.X < 0 || nd.X >= t.W || nd.Y < 0 || nd.Y >= t.H {
			continue // off-grid node (the halo hub)
		}
		if grid[nd.Y][nd.X] != NoLink {
			return nil, fmt.Errorf("topology %s: nodes %d and %d share cell (%d,%d)",
				t.Name, grid[nd.Y][nd.X], nd.ID, nd.X, nd.Y)
		}
		grid[nd.Y][nd.X] = nd.ID
		filled++
	}
	if filled == t.W*t.H {
		t.nodeAt = grid
	}
	if len(t.columns) == 0 {
		return nil, fmt.Errorf("topology %s: no bank-set columns", t.Name)
	}
	ways := len(t.columns[0])
	for c, col := range t.columns {
		if len(col) != ways {
			return nil, fmt.Errorf("topology %s: column %d has %d banks, column 0 has %d",
				t.Name, c, len(col), ways)
		}
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("topology %s: %w", t.Name, err)
	}
	return t, nil
}

package topology

import (
	"testing"
	"testing/quick"
)

func std16() MeshSpec {
	return MeshSpec{W: 16, H: 16, CoreX: 7, MemX: 8}
}

func TestMeshStructure(t *testing.T) {
	m := NewMesh(std16())
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() != 256 || m.NumBanks() != 256 {
		t.Fatalf("nodes=%d banks=%d, want 256/256", m.NumNodes(), m.NumBanks())
	}
	// Full mesh: 2*(W*(H-1) + H*(W-1)) directed links.
	want := 2 * (16*15 + 16*15)
	if got := m.CountLinks(); got != want {
		t.Fatalf("links = %d, want %d", got, want)
	}
	if m.Core != m.NodeAt(7, 0) {
		t.Fatal("core must attach at (7,0)")
	}
	if m.Mem != m.NodeAt(8, 15) {
		t.Fatal("memory must attach at (8,15)")
	}
}

func TestMeshColumnsAreBankSets(t *testing.T) {
	m := NewMesh(std16())
	if m.Columns() != 16 || m.Ways() != 16 {
		t.Fatalf("columns=%d ways=%d, want 16/16", m.Columns(), m.Ways())
	}
	for c := 0; c < 16; c++ {
		col := m.Column(c)
		for pos, n := range col {
			if m.Nodes[n].X != c || m.Nodes[n].Y != pos {
				t.Fatalf("column %d pos %d is node (%d,%d)", c, pos,
					m.Nodes[n].X, m.Nodes[n].Y)
			}
			cc, pp, ok := m.ColumnOf(n)
			if !ok || cc != c || pp != pos {
				t.Fatalf("ColumnOf(%d) = %d,%d,%v", n, cc, pp, ok)
			}
		}
	}
}

func TestSimplifiedMeshRemovesHorizontalLinks(t *testing.T) {
	s := NewSimplifiedMesh(std16())
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Horizontal links only in row 0.
	for y := 1; y < 16; y++ {
		for x := 0; x < 16; x++ {
			n := s.NodeAt(x, y)
			if _, ok := s.Link(n, PortEast); ok {
				t.Fatalf("(%d,%d) must have no east link", x, y)
			}
			if _, ok := s.Link(n, PortWest); ok {
				t.Fatalf("(%d,%d) must have no west link", x, y)
			}
		}
	}
	// Memory controller moves next to the core.
	if s.Mem != s.Core {
		t.Fatal("simplified mesh must co-locate memory with the core")
	}
	// Link savings: full mesh has 960 directed links; simplified removes
	// horizontal ones except row 0: 2*15*15 = 450 directed.
	full := NewMesh(std16()).CountLinks()
	if got := full - s.CountLinks(); got != 2*15*15 {
		t.Fatalf("removed %d directed links, want %d", got, 2*15*15)
	}
}

func TestMinimalMeshLinkCount(t *testing.T) {
	// Paper: we can remove (n-2)^2 of the 4(n-1)^2 links of an n x n mesh.
	for _, n := range []int{4, 8, 16} {
		spec := MeshSpec{W: n, H: n, CoreX: n/2 - 1, MemX: n / 2}
		m := NewMinimalMesh(spec)
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		full := 4 * (n - 1) * (n - 1) // paper counts bidirectional pairs as 2? it counts total links
		_ = full
		// Structure checks: first/last rows fully bidirectional,
		// middle rows one-way toward the core column.
		for x := 0; x+1 < n; x++ {
			for _, y := range []int{0, n - 1} {
				a := m.NodeAt(x, y)
				if _, ok := m.Link(a, PortEast); !ok {
					t.Fatalf("n=%d: row %d must keep east link at x=%d", n, y, x)
				}
			}
		}
		for y := 1; y < n-1; y++ {
			// West of core column: east-only.
			if spec.CoreX >= 1 {
				a := m.NodeAt(0, y)
				if _, ok := m.Link(a, PortEast); !ok {
					t.Fatalf("n=%d: middle row %d lost eastbound link toward core", n, y)
				}
				b := m.NodeAt(1, y)
				if spec.CoreX >= 2 {
					if _, ok := m.Link(b, PortWest); ok {
						t.Fatalf("n=%d: middle row %d must drop westbound link away from core", n, y)
					}
				}
			}
		}
	}
}

func TestHaloStructure(t *testing.T) {
	h := NewHalo(HaloSpec{Spikes: 16, Length: 16, MemWireDelay: 16})
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.NumNodes() != 257 || h.NumBanks() != 256 {
		t.Fatalf("nodes=%d banks=%d, want 257/256", h.NumNodes(), h.NumBanks())
	}
	if h.Core != h.Hub() || h.Mem != h.Hub() {
		t.Fatal("core and memory must attach at the hub")
	}
	if h.Nodes[h.Hub()].Col != -1 || h.BanksAt(h.Hub()) != 0 {
		t.Fatal("hub must have no bank")
	}
	// Defining property: every MRU bank exactly one hop from the hub.
	for s := 0; s < 16; s++ {
		l, ok := h.Link(h.Hub(), s)
		if !ok {
			t.Fatalf("hub missing spike port %d", s)
		}
		if l.To != h.Column(s)[0] {
			t.Fatalf("hub port %d connects to %d, want MRU bank router %d",
				s, l.To, h.Column(s)[0])
		}
	}
	// Directed links: per spike, 2*Length.
	if got, want := h.CountLinks(), 16*2*16; got != want {
		t.Fatalf("links = %d, want %d", got, want)
	}
}

func TestHaloNonUniformDelays(t *testing.T) {
	// Design F: 5 banks per spike (64,64,128,256,512 KB) with wire
	// delays 1,1,2,2,3.
	h := NewHalo(HaloSpec{Spikes: 16, Length: 5, LinkDelay: []int{1, 1, 2, 2, 3}, MemWireDelay: 9})
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	col := h.Column(3)
	wants := []int{1, 1, 2, 2, 3}
	l, _ := h.Link(h.Hub(), 3)
	if l.Delay != wants[0] {
		t.Fatalf("hub link delay = %d, want %d", l.Delay, wants[0])
	}
	for p := 1; p < 5; p++ {
		l, ok := h.Link(col[p-1], PortDown)
		if !ok || l.Delay != wants[p] {
			t.Fatalf("spike link into pos %d delay = %d, want %d", p, l.Delay, wants[p])
		}
	}
	if h.MemWireDelay != 9 {
		t.Fatalf("MemWireDelay = %d, want 9", h.MemWireDelay)
	}
}

func TestVerticalDelayBroadcast(t *testing.T) {
	m := NewMesh(MeshSpec{W: 4, H: 4, CoreX: 1, MemX: 2, VertDelay: []int{2}})
	l, ok := m.Link(m.NodeAt(0, 0), PortSouth)
	if !ok || l.Delay != 2 {
		t.Fatalf("broadcast vertical delay = %d, want 2", l.Delay)
	}
}

func TestPerRowVerticalDelay(t *testing.T) {
	// Design D rows: 64,64,128,256,512 KB with delays 1,1,2,2,3 entering
	// each row.
	m := NewSimplifiedMesh(MeshSpec{W: 16, H: 5, CoreX: 7, MemX: 7,
		HorizDelay: 3, VertDelay: []int{0, 1, 2, 2, 3}})
	for y := 1; y < 5; y++ {
		want := []int{0, 1, 2, 2, 3}[y]
		l, ok := m.Link(m.NodeAt(0, y-1), PortSouth)
		if !ok || l.Delay != want {
			t.Fatalf("vertical link into row %d delay = %d, want %d", y, l.Delay, want)
		}
	}
	l, _ := m.Link(m.NodeAt(0, 0), PortEast)
	if l.Delay != 3 {
		t.Fatalf("horizontal delay = %d, want 3", l.Delay)
	}
}

func TestLinkSymmetry(t *testing.T) {
	check := func(tp *Topology) {
		for n := range tp.Ports {
			for p := range tp.Ports[n] {
				l, ok := tp.Link(n, p)
				if !ok {
					continue
				}
				back, bok := tp.Link(l.To, l.ToPort)
				if tp.Name == "minimal-mesh" && !bok {
					continue // one-way links allowed
				}
				if !bok || back.To != n {
					t.Fatalf("%v: link %d.%d -> %d.%d has no symmetric return",
						tp.Name, n, p, l.To, l.ToPort)
				}
				if back.Delay != l.Delay {
					t.Fatalf("asymmetric delay on %d<->%d", n, l.To)
				}
			}
		}
	}
	check(NewMesh(std16()))
	check(NewSimplifiedMesh(std16()))
	check(NewHalo(HaloSpec{Spikes: 16, Length: 5}))
	check(NewMinimalMesh(std16()))
}

func TestMeshPropertyDimensions(t *testing.T) {
	if err := quick.Check(func(w8, h8 uint8) bool {
		w := int(w8%10) + 2
		h := int(h8%10) + 2
		m := NewMesh(MeshSpec{W: w, H: h, CoreX: w / 2, MemX: w / 2})
		if m.Validate() != nil {
			return false
		}
		return m.NumNodes() == w*h && m.Columns() == w && m.Ways() == h &&
			m.CountLinks() == 2*(w*(h-1)+h*(w-1))
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBadSpecsPanic(t *testing.T) {
	cases := []func(){
		func() { NewMesh(MeshSpec{W: 0, H: 4, CoreX: 0, MemX: 0}) },
		func() { NewMesh(MeshSpec{W: 4, H: 4, CoreX: 9, MemX: 0}) },
		func() { NewHalo(HaloSpec{Spikes: 0, Length: 4}) },
		func() { NewHalo(HaloSpec{Spikes: 4, Length: 0}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestHubPanicsOnMesh(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Hub on mesh should panic")
		}
	}()
	NewMesh(std16()).Hub()
}

// TestRenderCoords pins the telemetry heatmap coordinate export: every
// node of every topology family maps to a distinct in-bounds grid cell.
func TestRenderCoords(t *testing.T) {
	topos := map[string]*Topology{
		"mesh":       NewMesh(std16()),
		"simplified": NewSimplifiedMesh(std16()),
		"halo":       NewHalo(HaloSpec{Spikes: 16, Length: 4}),
	}
	for name, topo := range topos {
		w, h := topo.RenderSize()
		if w <= 0 || h <= 0 {
			t.Fatalf("%s: RenderSize = %dx%d", name, w, h)
		}
		seen := make(map[[2]int]NodeID)
		for n := 0; n < topo.NumNodes(); n++ {
			x, y := topo.RenderCoord(n)
			if x < 0 || x >= w || y < 0 || y >= h {
				t.Fatalf("%s: node %d renders out of bounds at (%d,%d) in %dx%d", name, n, x, y, w, h)
			}
			if prev, dup := seen[[2]int{x, y}]; dup {
				t.Fatalf("%s: nodes %d and %d share cell (%d,%d)", name, prev, n, x, y)
			}
			seen[[2]int{x, y}] = n
		}
	}
	// Halo specifics: the hub sits centered in its own top row, spikes
	// below it.
	halo := topos["halo"]
	if x, y := halo.RenderCoord(halo.Hub()); x != 8 || y != 0 {
		t.Fatalf("hub renders at (%d,%d), want (8,0)", x, y)
	}
	if _, h := halo.RenderSize(); h != 5 {
		t.Fatalf("halo render height = %d, want spike length + hub row = 5", h)
	}
}

package topology

import "fmt"

// HaloSpec configures a halo network (Figure 6(c)/(d)).
type HaloSpec struct {
	Spikes int
	Length int // banks per spike
	// LinkDelay[p] is the wire delay of the link entering spike position
	// p (LinkDelay[0] connects the hub to the MRU bank). nil means 1
	// cycle everywhere; a single element is broadcast.
	LinkDelay []int
	// MemWireDelay is the extra per-direction wire delay to off-chip
	// memory (the memory controller sits at the die centre): 16 cycles
	// in Design E, 9 in Design F.
	MemWireDelay int
}

func (s *HaloSpec) delay(p int) int {
	switch {
	case len(s.LinkDelay) == 0:
		return 1
	case len(s.LinkDelay) == 1:
		return s.LinkDelay[0]
	default:
		return s.LinkDelay[p]
	}
}

// NewHalo builds a halo: a hub router (hosting the core and the memory
// controller) with one port per spike, and each spike a chain of
// bank-bearing routers. Every MRU bank is exactly one hop from the hub,
// which is the topology's defining property.
func NewHalo(spec HaloSpec) *Topology {
	if spec.Spikes < 1 || spec.Length < 1 {
		panic(fmt.Sprintf("topology: bad halo %dx%d", spec.Spikes, spec.Length))
	}
	t := &Topology{Kind: Halo, W: spec.Spikes, H: spec.Length, MemWireDelay: spec.MemWireDelay}
	n := 1 + spec.Spikes*spec.Length
	t.Nodes = make([]Node, n)
	t.Ports = make([][]PortLink, n)

	// Node 0 is the hub; it has no bank.
	hub := 0
	t.Nodes[hub] = Node{ID: hub, X: -1, Y: -1, Bank: -1}
	hubPorts := make([]PortLink, spec.Spikes)
	for p := range hubPorts {
		hubPorts[p].To = NoLink
	}
	t.Ports[hub] = hubPorts

	t.nodeAt = make([][]NodeID, spec.Length)
	for p := 0; p < spec.Length; p++ {
		t.nodeAt[p] = make([]NodeID, spec.Spikes)
	}
	t.columns = make([][]NodeID, spec.Spikes)
	bank := 0
	for s := 0; s < spec.Spikes; s++ {
		col := make([]NodeID, spec.Length)
		for p := 0; p < spec.Length; p++ {
			id := 1 + s*spec.Length + p
			t.Nodes[id] = Node{ID: id, X: s, Y: p, Bank: bank}
			bank++
			ports := make([]PortLink, 2)
			ports[PortUp].To = NoLink
			ports[PortDown].To = NoLink
			t.Ports[id] = ports
			t.nodeAt[p][s] = id
			col[p] = id
		}
		t.columns[s] = col
		// Hub to spike head.
		t.Ports[hub][s] = PortLink{To: col[0], ToPort: PortUp, Delay: spec.delay(0)}
		t.Ports[col[0]][PortUp] = PortLink{To: hub, ToPort: s, Delay: spec.delay(0)}
		// Chain down the spike.
		for p := 1; p < spec.Length; p++ {
			t.connect(col[p-1], PortDown, col[p], PortUp, spec.delay(p))
		}
	}
	t.banks = bank
	t.Core = hub
	t.Mem = hub
	return t
}

// Hub returns the hub node of a halo.
func (t *Topology) Hub() NodeID {
	if t.Kind != Halo {
		panic("topology: Hub on non-halo")
	}
	return 0
}

package topology

import "fmt"

// HaloSpec configures a halo network (Figure 6(c)/(d)).
type HaloSpec struct {
	Spikes int
	Length int // banks per spike
	// LinkDelay[p] is the wire delay of the link entering spike position
	// p (LinkDelay[0] connects the hub to the MRU bank). nil means 1
	// cycle everywhere; a single element is broadcast.
	LinkDelay []int
	// MemWireDelay is the extra per-direction wire delay to off-chip
	// memory (the memory controller sits at the die centre): 16 cycles
	// in Design E, 9 in Design F.
	MemWireDelay int
}

func (s *HaloSpec) check() error {
	if s.Spikes < 1 || s.Length < 1 {
		return fmt.Errorf("topology: bad halo %dx%d", s.Spikes, s.Length)
	}
	if len(s.LinkDelay) > 1 && len(s.LinkDelay) != s.Length {
		return fmt.Errorf("topology: %d spike delays for length %d", len(s.LinkDelay), s.Length)
	}
	return nil
}

func (s *HaloSpec) delay(p int) int {
	switch {
	case len(s.LinkDelay) == 0:
		return 1
	case len(s.LinkDelay) == 1:
		return s.LinkDelay[0]
	default:
		return s.LinkDelay[p]
	}
}

func init() {
	Register("halo", func(p Params) (*Topology, error) {
		return newHalo(HaloSpec{Spikes: p.W, Length: p.H,
			LinkDelay: p.VertDelay, MemWireDelay: p.MemWireDelay})
	})
}

func newHalo(spec HaloSpec) (*Topology, error) {
	if err := spec.check(); err != nil {
		return nil, err
	}
	b := NewBuilder("halo", "spike", spec.Spikes, spec.Length)
	// Node 0 is the hub: no bank, one port per spike, rendered centered
	// in an extra top row with the spikes hanging below it.
	b.RenderSize(spec.Spikes, spec.Length+1)
	hub := b.AddNode(-1, -1, spec.Spikes)
	b.PlaceAt(hub, spec.Spikes/2, 0)
	for s := 0; s < spec.Spikes; s++ {
		col := make([]NodeID, spec.Length)
		for p := 0; p < spec.Length; p++ {
			id := b.AddNode(s, p, 2)
			b.PlaceAt(id, s, p+1)
			col[p] = id
		}
		b.Connect(hub, s, col[0], PortUp, spec.delay(0))
		for p := 1; p < spec.Length; p++ {
			b.Connect(col[p-1], PortDown, col[p], PortUp, spec.delay(p))
		}
		b.Column(col...)
	}
	b.Endpoints(hub, hub)
	b.Radial()
	b.MemWire(spec.MemWireDelay)
	return b.Build()
}

// NewHalo builds a halo: a hub router (hosting the core and the memory
// controller) with one port per spike, and each spike a chain of
// bank-bearing routers. Every MRU bank is exactly one hop from the hub,
// which is the topology's defining property. It panics on a malformed
// spec; Build("halo", params) returns errors instead.
func NewHalo(spec HaloSpec) *Topology { return must(newHalo(spec)) }

package topology

import (
	"reflect"
	"testing"
)

func meshForPartition(w, h int) *Topology {
	return NewMesh(MeshSpec{W: w, H: h, CoreX: w/2 - 1, MemX: w / 2})
}

func shardSizes(p *Plan) []int {
	sizes := make([]int, p.Shards)
	for _, s := range p.ShardOf {
		sizes[s]++
	}
	return sizes
}

func TestPartitionMeshStripes(t *testing.T) {
	topo := meshForPartition(16, 16)
	p := Partition(topo, 4)
	if p.Shards != 4 {
		t.Fatalf("Shards = %d, want 4", p.Shards)
	}
	for s, size := range shardSizes(p) {
		if size != 64 {
			t.Errorf("shard %d holds %d nodes, want 64", s, size)
		}
	}
	// Stripes: the shard is a monotone function of render X alone.
	shardOfX := map[int]int{}
	for id, s := range p.ShardOf {
		x, _ := topo.RenderCoord(NodeID(id))
		if prev, ok := shardOfX[x]; ok && prev != s {
			t.Fatalf("render column %d split across shards %d and %d", x, prev, s)
		}
		shardOfX[x] = s
	}
	for x := 1; x < 16; x++ {
		if shardOfX[x] < shardOfX[x-1] {
			t.Errorf("shard of column %d (%d) below column %d (%d): stripes not monotone",
				x, shardOfX[x], x-1, shardOfX[x-1])
		}
	}
	if p.MinCutDelay < 1 {
		t.Errorf("MinCutDelay = %d, want >= 1 (mesh links are >= 1 cycle)", p.MinCutDelay)
	}
	if len(p.CutLinks) == 0 {
		t.Fatal("no cut links on a 4-way mesh split")
	}
	for _, cl := range p.CutLinks {
		if p.ShardOf[cl.From] == p.ShardOf[cl.To] {
			t.Errorf("cut link %d->%d does not cross shards", cl.From, cl.To)
		}
		if cl.Delay < p.MinCutDelay {
			t.Errorf("cut link %d->%d delay %d below MinCutDelay %d", cl.From, cl.To, cl.Delay, p.MinCutDelay)
		}
	}
	// Completeness: every directed link with endpoints on different
	// shards is in the cut set.
	want := 0
	for id := 0; id < topo.NumNodes(); id++ {
		for port := 0; port < topo.NumPorts(NodeID(id)); port++ {
			if l, ok := topo.Link(NodeID(id), port); ok && p.ShardOf[id] != p.ShardOf[l.To] {
				want++
			}
		}
	}
	if len(p.CutLinks) != want {
		t.Errorf("cut set has %d links, topology has %d crossing links", len(p.CutLinks), want)
	}
}

func TestPartitionQuadrantsOnNarrowMesh(t *testing.T) {
	// Two render columns cannot make four stripes; the quadrant split
	// (2 stripes x 2 render-Y halves) balances perfectly and must win.
	topo := NewMesh(MeshSpec{W: 2, H: 8, CoreX: 0, MemX: 1})
	p := Partition(topo, 4)
	if p.Shards != 4 {
		t.Fatalf("Shards = %d, want 4 via the quadrant split", p.Shards)
	}
	for s, size := range shardSizes(p) {
		if size != 4 {
			t.Errorf("shard %d holds %d nodes, want 4", s, size)
		}
	}
}

func TestPartitionClampsDegenerateRequests(t *testing.T) {
	topo := meshForPartition(4, 4)
	if p := Partition(topo, 1); p.Shards != 1 || len(p.CutLinks) != 0 {
		t.Errorf("shards=1: got %d shards, %d cut links", p.Shards, len(p.CutLinks))
	}
	if p := Partition(topo, 0); p.Shards != 1 {
		t.Errorf("shards=0: got %d shards", p.Shards)
	}
	p := Partition(topo, 1000)
	if p.Shards > topo.NumNodes() {
		t.Errorf("shards=1000: got %d shards for %d nodes", p.Shards, topo.NumNodes())
	}
	for _, s := range p.ShardOf {
		if s < 0 || s >= p.Shards {
			t.Fatalf("shard %d outside [0,%d)", s, p.Shards)
		}
	}
}

func TestPartitionDeterministic(t *testing.T) {
	topo := meshForPartition(16, 16)
	a, b := Partition(topo, 4), Partition(topo, 4)
	if !reflect.DeepEqual(a, b) {
		t.Error("two Partition calls over the same inputs differ")
	}
}

package topology

import "fmt"

// CMeshSpec configures a concentrated mesh: a full W x rows router grid
// where every router hosts Concentration consecutive positions of its
// bank-set column, so a column of Ways = rows * Concentration banks needs
// only rows routers. Concentration amortizes router and link area over
// several banks — the standard CMP NUCA layout.
type CMeshSpec struct {
	W int // columns (= bank-set columns)
	// Ways is the banks per column; Concentration must divide it.
	Ways          int
	Concentration int
	// HorizDelay is the horizontal link delay; VertDelay[r] the delay of
	// the vertical link entering router row r (nil = 1, single element
	// broadcast).
	HorizDelay int
	VertDelay  []int
	// CoreX and MemX are the columns of the core (top router row) and
	// the memory controller (bottom router row).
	CoreX, MemX  int
	MemWireDelay int
}

func (s *CMeshSpec) check() error {
	if s.W < 1 || s.Ways < 1 {
		return fmt.Errorf("topology: bad cmesh %dx%d", s.W, s.Ways)
	}
	if s.Concentration < 1 || s.Ways%s.Concentration != 0 {
		return fmt.Errorf("topology: concentration %d does not divide %d ways",
			s.Concentration, s.Ways)
	}
	if s.CoreX < 0 || s.CoreX >= s.W || s.MemX < 0 || s.MemX >= s.W {
		return fmt.Errorf("topology: core/mem column out of range")
	}
	rows := s.Ways / s.Concentration
	if len(s.VertDelay) > 1 && len(s.VertDelay) != rows {
		return fmt.Errorf("topology: %d vertical delays for %d router rows", len(s.VertDelay), rows)
	}
	return nil
}

func (s *CMeshSpec) vdelay(r int) int {
	switch {
	case len(s.VertDelay) == 0:
		return 1
	case len(s.VertDelay) == 1:
		return s.VertDelay[0]
	default:
		return s.VertDelay[r]
	}
}

func (s *CMeshSpec) hdelay() int {
	if s.HorizDelay <= 0 {
		return 1
	}
	return s.HorizDelay
}

func init() {
	Register("cmesh", func(p Params) (*Topology, error) {
		return newCMesh(CMeshSpec{W: p.W, Ways: p.H, Concentration: p.Concentration,
			HorizDelay: p.HorizDelay, VertDelay: p.VertDelay,
			CoreX: p.CoreX, MemX: p.MemX, MemWireDelay: p.MemWireDelay})
	})
}

func newCMesh(spec CMeshSpec) (*Topology, error) {
	if err := spec.check(); err != nil {
		return nil, err
	}
	rows := spec.Ways / spec.Concentration
	b := NewBuilder("cmesh", "xy", spec.W, rows)
	at := func(x, r int) NodeID { return r*spec.W + x }
	for r := 0; r < rows; r++ {
		for x := 0; x < spec.W; x++ {
			b.AddNode(x, r, 4)
		}
	}
	for r := 1; r < rows; r++ {
		d := spec.vdelay(r)
		for x := 0; x < spec.W; x++ {
			b.Connect(at(x, r-1), PortSouth, at(x, r), PortNorth, d)
		}
	}
	for r := 0; r < rows; r++ {
		for x := 0; x+1 < spec.W; x++ {
			b.Connect(at(x, r), PortEast, at(x+1, r), PortWest, spec.hdelay())
		}
	}
	for x := 0; x < spec.W; x++ {
		col := make([]NodeID, 0, spec.Ways)
		for r := 0; r < rows; r++ {
			for c := 0; c < spec.Concentration; c++ {
				col = append(col, at(x, r))
			}
		}
		b.Column(col...)
	}
	b.Endpoints(at(spec.CoreX, 0), at(spec.MemX, rows-1))
	b.MemWire(spec.MemWireDelay)
	return b.Build()
}

// NewCMesh builds a concentrated mesh. It panics on a malformed spec;
// Build("cmesh", params) returns errors instead.
func NewCMesh(spec CMeshSpec) *Topology { return must(newCMesh(spec)) }

package telemetry

import (
	"fmt"
	"io"
	"sort"

	"nucanet/internal/topology"
)

// Heatmap accumulates the spatial counters of one run over a topology:
// flits per directed link, per-router ejections, multicast forks, and
// per-bank access/hit counts. Render writes deterministic ASCII views —
// iteration is always in index order and ties sort by (node, port), so
// equal runs render byte-identically.
type Heatmap struct {
	// Cycles is the run length, stamped by Collector.Finish; the
	// denominator for link utilization.
	Cycles int64
	// LinkFlits[n][p] counts flits granted switch traversal out of node
	// n through neighbor port p; the extra last slot counts local
	// ejections at n.
	LinkFlits [][]uint64
	// Forks counts multicast replicas spawned per node.
	Forks []uint64
	// BankAccesses and BankHits count per-bank activity as
	// [column][position] (position 0 = MRU bank).
	BankAccesses [][]uint64
	BankHits     [][]uint64

	topo *topology.Topology
}

// NewHeatmap sizes every counter for topo.
func NewHeatmap(topo *topology.Topology) *Heatmap {
	h := &Heatmap{topo: topo}
	h.LinkFlits = make([][]uint64, topo.NumNodes())
	for n := range h.LinkFlits {
		h.LinkFlits[n] = make([]uint64, topo.NumPorts(n)+1)
	}
	h.Forks = make([]uint64, topo.NumNodes())
	h.BankAccesses = make([][]uint64, topo.Columns())
	h.BankHits = make([][]uint64, topo.Columns())
	for c := range h.BankAccesses {
		h.BankAccesses[c] = make([]uint64, topo.Ways())
		h.BankHits[c] = make([]uint64, topo.Ways())
	}
	return h
}

func (h *Heatmap) link(n, p int) { h.LinkFlits[n][p]++ }
func (h *Heatmap) eject(n int) {
	lf := h.LinkFlits[n]
	lf[len(lf)-1]++
}
func (h *Heatmap) fork(n int)          { h.Forks[n]++ }
func (h *Heatmap) bankAccess(c, p int) { h.BankAccesses[c][p]++ }
func (h *Heatmap) bankHit(c, p int)    { h.BankHits[c][p]++ }

// NodeFlits returns the total flits node n moved (links + ejections).
func (h *Heatmap) NodeFlits(n int) uint64 {
	var s uint64
	for _, c := range h.LinkFlits[n] {
		s += c
	}
	return s
}

// Link is one directed link's count, exported by HotLinks.
type Link struct {
	Node, Port int
	To         int
	Flits      uint64
}

// HotLinks returns the topology's directed links sorted hottest-first
// (ties break by ascending node then port, keeping the order total).
func (h *Heatmap) HotLinks() []Link {
	var out []Link
	for n := range h.LinkFlits {
		for p := 0; p < len(h.LinkFlits[n])-1; p++ {
			l, ok := h.topo.Link(n, p)
			if !ok {
				continue
			}
			out = append(out, Link{Node: n, Port: p, To: l.To, Flits: h.LinkFlits[n][p]})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Flits != out[j].Flits {
			return out[i].Flits > out[j].Flits
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Port < out[j].Port
	})
	return out
}

// heatRamp maps intensity 0..9 to a character.
const heatRamp = " .:-=+*#%@"

func rampChar(v, max uint64) byte {
	if max == 0 || v == 0 {
		return heatRamp[0]
	}
	i := int(v * 9 / max)
	if i > 9 {
		i = 9
	}
	if i == 0 {
		i = 1 // non-zero activity always renders visibly
	}
	return heatRamp[i]
}

// Render writes the full ASCII heatmap report: the per-node flit grid,
// the hottest links, and the per-bank access/hit table.
func (h *Heatmap) Render(w io.Writer) {
	h.RenderNodes(w)
	h.RenderLinks(w, 8)
	h.RenderBanks(w)
}

// RenderNodes draws the per-node flit-throughput grid at the topology's
// render coordinates (row 0 on top; for halos that row is the hub).
func (h *Heatmap) RenderNodes(w io.Writer) {
	gw, gh := h.topo.RenderSize()
	grid := make([][]int, gh) // node id per cell, -1 = empty
	for y := range grid {
		grid[y] = make([]int, gw)
		for x := range grid[y] {
			grid[y][x] = -1
		}
	}
	var max uint64
	for n := 0; n < h.topo.NumNodes(); n++ {
		x, y := h.topo.RenderCoord(n)
		grid[y][x] = n
		if f := h.NodeFlits(n); f > max {
			max = f
		}
	}
	fmt.Fprintf(w, "node flit heatmap (%s %dx%d, max %d flits/node, %d cycles)\n",
		h.topo.Name, gw, gh, max, h.Cycles)
	row := make([]byte, gw)
	for y := 0; y < gh; y++ {
		for x := 0; x < gw; x++ {
			if n := grid[y][x]; n >= 0 {
				row[x] = rampChar(h.NodeFlits(n), max)
			} else {
				row[x] = ' '
			}
		}
		fmt.Fprintf(w, "  |%s|\n", row)
	}
	fmt.Fprintf(w, "  scale \"%s\" = 0..%d\n", heatRamp, max)
}

// RenderLinks lists the topN hottest directed links with utilization
// (flits per cycle) when the run length is known.
func (h *Heatmap) RenderLinks(w io.Writer, topN int) {
	links := h.HotLinks()
	if len(links) > topN {
		links = links[:topN]
	}
	fmt.Fprintf(w, "hottest links (of %d)\n", h.topo.CountLinks())
	for _, l := range links {
		fx, fy := h.topo.RenderCoord(l.Node)
		tx, ty := h.topo.RenderCoord(l.To)
		if h.Cycles > 0 {
			fmt.Fprintf(w, "  (%2d,%2d)->(%2d,%2d) port %d  %8d flits  %5.1f%% util\n",
				fx, fy, tx, ty, l.Port, l.Flits, 100*float64(l.Flits)/float64(h.Cycles))
		} else {
			fmt.Fprintf(w, "  (%2d,%2d)->(%2d,%2d) port %d  %8d flits\n",
				fx, fy, tx, ty, l.Port, l.Flits)
		}
	}
}

// RenderBanks draws the bank access grid (rows = column position, MRU
// first) plus per-position totals and hit rates — the spatial view of
// the paper's MRU-concentration argument.
func (h *Heatmap) RenderBanks(w io.Writer) {
	cols := len(h.BankAccesses)
	if cols == 0 {
		return
	}
	ways := len(h.BankAccesses[0])
	var max uint64
	for c := 0; c < cols; c++ {
		for p := 0; p < ways; p++ {
			if v := h.BankAccesses[c][p]; v > max {
				max = v
			}
		}
	}
	fmt.Fprintf(w, "bank access heatmap (%d columns x %d ways, max %d accesses/bank)\n",
		cols, ways, max)
	row := make([]byte, cols)
	for p := 0; p < ways; p++ {
		var acc, hits uint64
		for c := 0; c < cols; c++ {
			row[c] = rampChar(h.BankAccesses[c][p], max)
			acc += h.BankAccesses[c][p]
			hits += h.BankHits[c][p]
		}
		rate := 0.0
		if acc > 0 {
			rate = 100 * float64(hits) / float64(acc)
		}
		fmt.Fprintf(w, "  way %2d |%s| %8d acc  %5.1f%% hit\n", p, row, acc, rate)
	}
}

package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"nucanet/internal/flit"
	"nucanet/internal/topology"
)

func mesh4() *topology.Topology {
	return topology.NewMesh(topology.MeshSpec{W: 4, H: 4, CoreX: 1, MemX: 2})
}

func TestNewDisabledIsNil(t *testing.T) {
	if c := New(Config{}, mesh4()); c != nil {
		t.Fatalf("zero Config must yield a nil collector, got %+v", c)
	}
	if (Config{}).Enabled() {
		t.Fatal("zero Config reports Enabled")
	}
	for _, cfg := range []Config{{Trace: true}, {Heatmap: true}, {SampleEvery: 8}} {
		if !cfg.Enabled() || New(cfg, mesh4()) == nil {
			t.Fatalf("config %+v must enable a collector", cfg)
		}
	}
}

func TestNilCollectorProbesAreNoOps(t *testing.T) {
	var c *Collector
	f := flit.Flit{Pkt: &flit.Packet{ID: 1, Kind: flit.ReadReq}}
	// Every probe must be callable on nil without panicking.
	c.FlitInjected(1, f, 0)
	c.VCAllocated(1, f.Pkt, 0, 1, 2)
	c.FlitRouted(1, f, 0, 1, 2)
	c.FlitEjected(1, f, 0, 1)
	c.ReplicaForked(1, f, 0, 1, 2)
	c.BankAccess(0, 0)
	c.BankHit(0, 0)
	c.Sample(1, 2, 3)
	c.Finish(10)
	if c.SampleEvery() != 0 {
		t.Fatal("nil collector reports a sampling period")
	}
}

func TestTraceJSONL(t *testing.T) {
	tr := NewTrace()
	pkt := &flit.Packet{ID: 7, Kind: flit.HitData}
	tr.add(12, EvInject, pkt, 0, 3, -1, -1)
	tr.add(13, EvRoute, pkt, 1, 3, 2, 1)
	tr.add(20, EvEject, pkt, 4, 9, 3, -1)

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 || tr.Len() != 3 {
		t.Fatalf("got %d lines / %d events, want 3", len(lines), tr.Len())
	}
	// Exact first line pins the schema and the field order.
	want := `{"cycle":12,"ev":"inject","pkt":7,"kind":"HitData","flit":0,"node":3,"port":-1,"vc":-1}`
	if lines[0] != want {
		t.Fatalf("line 0 = %s\nwant     %s", lines[0], want)
	}
	// Every line is valid JSON with the expected keys.
	for i, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i, err, ln)
		}
		for _, k := range []string{"cycle", "ev", "pkt", "kind", "flit", "node", "port", "vc"} {
			if _, ok := m[k]; !ok {
				t.Fatalf("line %d missing key %q: %s", i, k, ln)
			}
		}
	}
}

func TestHeatmapCountersAndRender(t *testing.T) {
	topo := mesh4()
	h := NewHeatmap(topo)
	f := flit.Flit{Pkt: &flit.Packet{ID: 1}}
	c := &Collector{Heat: h}
	c.FlitRouted(1, f, 0, topology.PortEast, 0)
	c.FlitRouted(2, f, 0, topology.PortEast, 0)
	c.FlitRouted(2, f, 5, topology.PortSouth, 1)
	c.FlitEjected(3, f, 5, topology.PortNorth)
	c.ReplicaForked(3, f, 5, 0, 1)
	c.BankAccess(1, 0)
	c.BankAccess(1, 0)
	c.BankHit(1, 0)
	c.Finish(100)

	if got := h.LinkFlits[0][topology.PortEast]; got != 2 {
		t.Errorf("link (0,east) = %d flits, want 2", got)
	}
	if got := h.NodeFlits(5); got != 2 { // 1 routed + 1 ejected
		t.Errorf("node 5 flits = %d, want 2", got)
	}
	if h.Forks[5] != 1 || h.BankAccesses[1][0] != 2 || h.BankHits[1][0] != 1 {
		t.Errorf("counters: forks=%d acc=%d hit=%d", h.Forks[5], h.BankAccesses[1][0], h.BankHits[1][0])
	}
	hot := h.HotLinks()
	if len(hot) == 0 || hot[0].Node != 0 || hot[0].Port != topology.PortEast || hot[0].Flits != 2 {
		t.Errorf("hottest link = %+v, want node 0 east with 2 flits", hot[0])
	}

	var a, b bytes.Buffer
	h.Render(&a)
	h.Render(&b)
	if a.String() != b.String() {
		t.Error("Render is not deterministic")
	}
	for _, frag := range []string{"node flit heatmap", "hottest links", "bank access heatmap", "4x4"} {
		if !strings.Contains(a.String(), frag) {
			t.Errorf("render output missing %q:\n%s", frag, a.String())
		}
	}
}

func TestHeatmapHaloRender(t *testing.T) {
	topo := topology.NewHalo(topology.HaloSpec{Spikes: 8, Length: 2})
	h := NewHeatmap(topo)
	f := flit.Flit{Pkt: &flit.Packet{ID: 1}}
	h.link(topo.Hub(), 0)
	_ = f
	var buf bytes.Buffer
	h.Render(&buf)
	if !strings.Contains(buf.String(), "halo 8x3") {
		t.Errorf("halo render should use the hub-row grid:\n%s", buf.String())
	}
}

func TestSeriesSparkAndRender(t *testing.T) {
	s := &Series{Every: 10}
	for i := 0; i < 200; i++ {
		s.add(int64(10*(i+1)), i%50, i%7)
	}
	if s.Len() != 200 {
		t.Fatalf("len = %d", s.Len())
	}
	var buf bytes.Buffer
	s.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "200 samples") || !strings.Contains(out, "max   49") {
		t.Errorf("series render:\n%s", out)
	}
	if got := spark(s.InFlight, 64); len(got) > 64 || len(got) == 0 {
		t.Errorf("spark width = %d, want 1..64", len(got))
	}
	if spark(nil, 64) != "" {
		t.Error("spark of empty series must be empty")
	}
}

// TestDisabledProbesAllocationFree is the package-local allocation guard;
// the repository root's bench_test.go carries the same guard next to the
// throughput benchmarks.
func TestDisabledProbesAllocationFree(t *testing.T) {
	var c *Collector
	f := flit.Flit{Pkt: &flit.Packet{ID: 1, Kind: flit.ReadReq}}
	n := testing.AllocsPerRun(1000, func() {
		c.FlitInjected(5, f, 1)
		c.VCAllocated(5, f.Pkt, 1, 2, 3)
		c.FlitRouted(5, f, 1, 2, 3)
		c.FlitEjected(5, f, 1, 2)
		c.ReplicaForked(5, f, 1, 2, 3)
		c.BankAccess(0, 1)
		c.BankHit(0, 1)
		c.Sample(5, 1, 2)
	})
	if n != 0 {
		t.Fatalf("disabled probe path allocates %.1f per op, want 0", n)
	}
}

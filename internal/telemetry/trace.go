package telemetry

import (
	"bufio"
	"io"
	"strconv"

	"nucanet/internal/flit"
)

// EventType tags one trace event.
type EventType uint8

const (
	// EvInject is a flit entering the network at its source router.
	EvInject EventType = iota
	// EvRoute is a flit granted switch traversal toward a neighbor.
	EvRoute
	// EvVCAlloc is a head flit claiming a downstream virtual channel.
	EvVCAlloc
	// EvEject is a flit leaving the network into a local endpoint.
	EvEject
	// EvFork is a multicast replica copied into a stolen VC.
	EvFork
	numEvents
)

var evNames = [numEvents]string{"inject", "route", "vcalloc", "eject", "fork"}

func (e EventType) String() string { return evNames[e] }

// Event is one flit-level occurrence. Fields are sized for density: a
// trace holds millions of these.
type Event struct {
	Cycle int64
	Pkt   uint64 // packet id (0 before injection stamps it)
	Kind  flit.Kind
	Type  EventType
	Seq   int16 // flit position within the packet
	Node  int32
	Port  int32 // out port (route/fork), in port (eject), -1 otherwise
	VC    int32 // virtual channel, -1 when not applicable
}

// Trace buffers the event stream of one run in emission order — which
// is kernel tick order, hence deterministic for a fixed seed.
type Trace struct {
	events []Event
}

// NewTrace returns an empty trace buffer.
func NewTrace() *Trace { return &Trace{} }

func (t *Trace) add(now int64, ev EventType, pkt *flit.Packet, seq, node, port, vc int) {
	t.events = append(t.events, Event{
		Cycle: now, Pkt: pkt.ID, Kind: pkt.Kind, Type: ev,
		Seq: int16(seq), Node: int32(node), Port: int32(port), VC: int32(vc),
	})
}

// Len returns the number of buffered events.
func (t *Trace) Len() int { return len(t.events) }

// Events returns the buffered events in emission order (shared slice —
// read only).
func (t *Trace) Events() []Event { return t.events }

// WriteJSONL serializes the trace as one JSON object per line with a
// fixed field order, so equal traces produce byte-identical output:
//
//	{"cycle":12,"ev":"route","pkt":3,"kind":"ReadReq","flit":0,"node":119,"port":2,"vc":1}
func (t *Trace) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	buf := make([]byte, 0, 128)
	for i := range t.events {
		e := &t.events[i]
		buf = buf[:0]
		buf = append(buf, `{"cycle":`...)
		buf = strconv.AppendInt(buf, e.Cycle, 10)
		buf = append(buf, `,"ev":"`...)
		buf = append(buf, evNames[e.Type]...)
		buf = append(buf, `","pkt":`...)
		buf = strconv.AppendUint(buf, e.Pkt, 10)
		buf = append(buf, `,"kind":"`...)
		buf = append(buf, e.Kind.String()...)
		buf = append(buf, `","flit":`...)
		buf = strconv.AppendInt(buf, int64(e.Seq), 10)
		buf = append(buf, `,"node":`...)
		buf = strconv.AppendInt(buf, int64(e.Node), 10)
		buf = append(buf, `,"port":`...)
		buf = strconv.AppendInt(buf, int64(e.Port), 10)
		buf = append(buf, `,"vc":`...)
		buf = strconv.AppendInt(buf, int64(e.VC), 10)
		buf = append(buf, '}', '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

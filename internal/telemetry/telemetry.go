// Package telemetry is the cycle-level observability layer of the
// simulator: a pluggable probe collector that the routers, the network,
// and the cache protocol emit into. It produces three artifacts —
//
//   - a flit-level event trace (inject / route / vc-alloc / eject /
//     multicast fork) serialized as deterministic JSONL (trace.go);
//   - spatial heatmaps: per-link flit counts, per-router port
//     utilization, per-bank access and hit counts (heatmap.go);
//   - a time series of queue occupancy and in-flight operations sampled
//     every N cycles through a sim.Observer (series.go).
//
// Percentile latency (p50/p90/p99) is not collected here: it lives in
// stats.Latency's always-on log-bucketed histogram, which merges exactly
// across parallel sweeps.
//
// The disabled path is a nil *Collector: every probe method nil-checks
// its receiver and returns, so a run without telemetry pays one
// predictable branch per probe site, allocates nothing, and stays within
// noise of the pre-telemetry simulator (the allocation guard in the
// repository root pins this). A Collector belongs to exactly one
// simulation run and is only touched from the goroutine driving that
// run's kernel, so parallel sweeps need no synchronization — the same
// ownership discipline as the rest of the per-run state.
//
// Determinism: all probe emission happens in kernel tick order and all
// serialization iterates in fixed index order, so equal seeds produce
// byte-identical traces, heatmaps, and series regardless of the sweep's
// worker count (pinned by TestTelemetryDeterministicAcrossWorkers).
package telemetry

import (
	"nucanet/internal/flit"
	"nucanet/internal/topology"
)

// Config selects which probes a run collects. The zero value disables
// everything.
type Config struct {
	// Trace records the flit-level event trace. Memory grows with
	// traffic (~40 B/event); intended for focused runs, not full sweeps.
	Trace bool
	// Heatmap collects the spatial counters.
	Heatmap bool
	// SampleEvery samples queue occupancy and in-flight operations every
	// N cycles; 0 disables the time series.
	SampleEvery int
}

// Enabled reports whether any probe is on.
func (c Config) Enabled() bool { return c.Trace || c.Heatmap || c.SampleEvery > 0 }

// ProtocolProbe observes cache-protocol lifecycle events: operation
// issue, the CPU-visible data arrival, final completion (replacement
// chain drained), and every block entering or leaving a bank set. The
// conformance harness implements it to check runtime protocol
// invariants (exactly-once completion, replacement-chain block
// conservation); id correlates the events of one operation.
type ProtocolProbe interface {
	OpIssued(now int64, id uint64, col, set int, write bool)
	OpData(now int64, id uint64, hit bool, hitBank int)
	OpFinished(now int64, id uint64)
	BlockInserted(col, pos, set int, tag uint64)
	BlockEvicted(col, pos, set int, tag uint64)
}

// Collector receives probe emissions for one simulation run. A nil
// Collector is the disabled probe layer; all methods accept it.
type Collector struct {
	Trace  *Trace
	Heat   *Heatmap
	Series *Series
	// Protocol, when set, receives the cache-protocol lifecycle events.
	// It is not part of Config: callers wanting protocol invariant
	// checking construct a Collector directly.
	Protocol ProtocolProbe
}

// New builds a collector for cfg over topo, or nil when cfg disables
// every probe — callers pass the nil straight into the probe sites.
func New(cfg Config, topo *topology.Topology) *Collector {
	if !cfg.Enabled() {
		return nil
	}
	c := &Collector{}
	if cfg.Trace {
		c.Trace = NewTrace()
	}
	if cfg.Heatmap {
		c.Heat = NewHeatmap(topo)
	}
	if cfg.SampleEvery > 0 {
		c.Series = &Series{Every: int64(cfg.SampleEvery)}
	}
	return c
}

// SampleEvery returns the configured sampling period, 0 when the time
// series is off (or the collector is nil).
func (c *Collector) SampleEvery() int64 {
	if c == nil || c.Series == nil {
		return 0
	}
	return c.Series.Every
}

// Finish stamps the run's final cycle, the denominator for utilization
// reporting. Call once after the kernel drains.
func (c *Collector) Finish(now int64) {
	if c == nil {
		return
	}
	if c.Heat != nil {
		c.Heat.Cycles = now
	}
}

// FlitInjected records one flit entering the network at its source
// router's injection port.
func (c *Collector) FlitInjected(now int64, f flit.Flit, node int) {
	if c == nil || c.Trace == nil {
		return
	}
	c.Trace.add(now, EvInject, f.Pkt, f.Seq, node, -1, -1)
}

// VCAllocated records a head flit claiming a downstream virtual channel.
func (c *Collector) VCAllocated(now int64, pkt *flit.Packet, node, port, vc int) {
	if c == nil || c.Trace == nil {
		return
	}
	c.Trace.add(now, EvVCAlloc, pkt, 0, node, port, vc)
}

// FlitRouted records one flit granted switch traversal toward a
// neighbor: out of node through port into downstream VC vc.
func (c *Collector) FlitRouted(now int64, f flit.Flit, node, port, vc int) {
	if c == nil {
		return
	}
	if c.Heat != nil {
		c.Heat.link(node, port)
	}
	if c.Trace != nil {
		c.Trace.add(now, EvRoute, f.Pkt, f.Seq, node, port, vc)
	}
}

// FlitEjected records one flit leaving the network into the local
// endpoint at node (arriving through input port).
func (c *Collector) FlitEjected(now int64, f flit.Flit, node, port int) {
	if c == nil {
		return
	}
	if c.Heat != nil {
		c.Heat.eject(node)
	}
	if c.Trace != nil {
		c.Trace.add(now, EvEject, f.Pkt, f.Seq, node, port, -1)
	}
}

// ReplicaForked records a multicast fork point: the hybrid replicator
// copying a flit into the stolen VC (port, vc) at node.
func (c *Collector) ReplicaForked(now int64, f flit.Flit, node, port, vc int) {
	if c == nil {
		return
	}
	if c.Heat != nil {
		c.Heat.fork(node)
	}
	if c.Trace != nil {
		c.Trace.add(now, EvFork, f.Pkt, f.Seq, node, port, vc)
	}
}

// BankAccess records one booked bank access at (column, position).
func (c *Collector) BankAccess(col, pos int) {
	if c == nil || c.Heat == nil {
		return
	}
	c.Heat.bankAccess(col, pos)
}

// BankHit records a tag-match hit at (column, position).
func (c *Collector) BankHit(col, pos int) {
	if c == nil || c.Heat == nil {
		return
	}
	c.Heat.bankHit(col, pos)
}

// OpIssued records a column operation entering the protocol.
func (c *Collector) OpIssued(now int64, id uint64, col, set int, write bool) {
	if c == nil || c.Protocol == nil {
		return
	}
	c.Protocol.OpIssued(now, id, col, set, write)
}

// OpData records the operation's CPU-visible completion (data or write
// acknowledgment at the core).
func (c *Collector) OpData(now int64, id uint64, hit bool, hitBank int) {
	if c == nil || c.Protocol == nil {
		return
	}
	c.Protocol.OpData(now, id, hit, hitBank)
}

// OpFinished records the operation fully complete: data delivered and
// every replacement chain drained.
func (c *Collector) OpFinished(now int64, id uint64) {
	if c == nil || c.Protocol == nil {
		return
	}
	c.Protocol.OpFinished(now, id)
}

// BlockInserted records a block entering the set of bank (col, pos).
func (c *Collector) BlockInserted(col, pos, set int, tag uint64) {
	if c == nil || c.Protocol == nil {
		return
	}
	c.Protocol.BlockInserted(col, pos, set, tag)
}

// BlockEvicted records a block leaving the set of bank (col, pos) — an
// LRU eviction or a hit block departing for another bank.
func (c *Collector) BlockEvicted(col, pos, set int, tag uint64) {
	if c == nil || c.Protocol == nil {
		return
	}
	c.Protocol.BlockEvicted(col, pos, set, tag)
}

// Sample appends one time-series point (called from the sim.Observer).
func (c *Collector) Sample(now int64, inFlight, pending int) {
	if c == nil || c.Series == nil {
		return
	}
	c.Series.add(now, inFlight, pending)
}

package telemetry

import (
	"fmt"
	"io"
)

// Series is the time-series channel of the probe layer: network queue
// occupancy (flits buffered anywhere) and in-flight operations at the
// cache controller, sampled every Every cycles by a sim.Observer.
type Series struct {
	Every    int64
	Cycle    []int64
	InFlight []int32 // flits buffered in the network
	Pending  []int32 // operations queued or active at the controller
}

func (s *Series) add(now int64, inFlight, pending int) {
	s.Cycle = append(s.Cycle, now)
	s.InFlight = append(s.InFlight, int32(inFlight))
	s.Pending = append(s.Pending, int32(pending))
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Cycle) }

func stats32(v []int32) (max int32, avg float64) {
	if len(v) == 0 {
		return 0, 0
	}
	var sum int64
	for _, x := range v {
		if x > max {
			max = x
		}
		sum += int64(x)
	}
	return max, float64(sum) / float64(len(v))
}

// spark downsamples v to at most width points and renders each as a
// digit 0-9 scaled to the series maximum — a dependency-free sparkline.
func spark(v []int32, width int) string {
	if len(v) == 0 {
		return ""
	}
	step := (len(v) + width - 1) / width
	max, _ := stats32(v)
	out := make([]byte, 0, width)
	for i := 0; i < len(v); i += step {
		// Peak within the window, so bursts survive downsampling.
		var peak int32
		for j := i; j < i+step && j < len(v); j++ {
			if v[j] > peak {
				peak = v[j]
			}
		}
		d := byte('0')
		if max > 0 {
			d = byte('0' + int(int64(peak)*9/int64(max)))
		}
		out = append(out, d)
	}
	return string(out)
}

// Render writes a deterministic summary: sample count, max/mean of each
// channel, and 0-9 sparklines over the run.
func (s *Series) Render(w io.Writer) {
	fmt.Fprintf(w, "time series (%d samples, every %d cycles)\n", s.Len(), s.Every)
	if s.Len() == 0 {
		return
	}
	ifMax, ifAvg := stats32(s.InFlight)
	pdMax, pdAvg := stats32(s.Pending)
	span := s.Cycle[len(s.Cycle)-1]
	fmt.Fprintf(w, "  net flits in flight  max %4d  avg %7.2f  [%s]\n", ifMax, ifAvg, spark(s.InFlight, 64))
	fmt.Fprintf(w, "  ops in flight        max %4d  avg %7.2f  [%s]\n", pdMax, pdAvg, spark(s.Pending, 64))
	fmt.Fprintf(w, "  span: cycles %d..%d\n", s.Cycle[0], span)
}

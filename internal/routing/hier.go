package routing

import (
	"fmt"

	"nucanet/internal/topology"
)

func init() {
	RegisterAlgorithm("hier", Hier{})
}

// Hier routes on hierarchical multi-chiplet topologies (topology family
// "hier"): XYX-style inside a chiplet — vertical traffic climbs to row 0
// before moving laterally — with the lateral phase running on the bridge
// ring that stitches the chiplets. Row-0 routers and bridges project onto
// one ring of W + 2*Chiplets positions; lateral hops go clockwise
// (PortEast) unless that would cross the dateline link diametrically
// opposite the core, exactly like the plain Ring algorithm.
//
// Deadlock freedom is constructive (ChannelRank): routes are Y- climbs,
// then a single-direction ring run, then Y+ descents, and each phase's
// channels occupy a strictly increasing rank band — the dateline keeps
// each ring direction an open chain, so no cyclic channel dependency can
// form even with every core of a CMP injecting row-0 forwarding traffic.
type Hier struct{}

// Name implements Algorithm.
func (Hier) Name() string { return "Hier" }

// hierGeom captures the ring geometry the algorithm steers by.
type hierGeom struct {
	ring int // ring positions: W + 2*Chiplets
	dl   int // dateline position: the clockwise link dl -> dl+1 is excluded
}

func hierGeomOf(t *topology.Topology) hierGeom {
	ring := t.W + 2*topology.HierChiplets(t)
	dl := (topology.HierRingPos(t, t.Core) + ring/2) % ring
	return hierGeom{ring: ring, dl: dl}
}

// NextPort implements Algorithm. It is total: every (cur, dst) pair with
// cur != dst has a productive next hop, the property the deflection-
// livelock verifier demands of every node a packet can be deflected to.
func (Hier) NextPort(t *topology.Topology, cur, dst topology.NodeID) (int, bool) {
	if cur == dst {
		return 0, false
	}
	a, b := t.Nodes[cur], t.Nodes[dst]
	if a.Y >= 0 && b.Y >= 0 && a.X == b.X {
		// Same global column: pure vertical, as in the simplified mesh.
		if a.Y < b.Y {
			return topology.PortSouth, true
		}
		return topology.PortNorth, true
	}
	if a.Y > 0 {
		// Lateral movement happens on the ring row only: climb out first.
		return topology.PortNorth, true
	}
	// On the ring row (mesh row 0 or a bridge): dateline-avoiding step
	// toward the destination's ring projection.
	g := hierGeomOf(t)
	rpa := topology.HierRingPos(t, cur)
	rpb := topology.HierRingPos(t, dst)
	cw := (rpb - rpa + g.ring) % g.ring    // clockwise hops to dst
	toDL := (g.dl - rpa + g.ring) % g.ring // clockwise hops to the dateline link
	if toDL < cw {
		return topology.PortWest, true
	}
	return topology.PortEast, true
}

// ChannelRank implements Ranker, generalizing the XYX channel enumeration
// to the two-level fabric. Rank bands, low to high:
//
//	Y- channels:       x*H + (H-y), in [0, W*H) — climbs rank upward
//	clockwise ring:    W*H + hops past the dateline — an open chain
//	counter-clockwise: W*H + R + hops past the dateline — an open chain
//	Y+ channels:       W*H + 2R + x*H + y — descents rank downward
//
// Every route is a Y- climb, then hops in one ring direction (NextPort's
// direction choice is stable along a route), then a Y+ descent, so its
// channels climb the order strictly. The two dateline channels get their
// bands' maxima; no route uses them.
func (Hier) ChannelRank(t *topology.Topology, from topology.NodeID, port int) (int, error) {
	if !t.HasGrid() {
		return 0, fmt.Errorf("routing: hier ChannelRank needs the mesh grid, %s has none", t.Name)
	}
	n := t.Nodes[from]
	h := t.H
	g := hierGeomOf(t)
	baseRing := t.W * h
	baseYPlus := baseRing + 2*g.ring
	switch port {
	case topology.PortNorth:
		if n.Y <= 0 {
			return 0, fmt.Errorf("routing: no Y- channel leaving the ring row at node %d", from)
		}
		return n.X*h + (h - n.Y), nil
	case topology.PortEast: // clockwise: position rp -> rp+1
		if n.Y > 0 {
			return 0, fmt.Errorf("routing: ring channel outside the ring row at (%d,%d)", n.X, n.Y)
		}
		rp := topology.HierRingPos(t, from)
		return baseRing + (rp-(g.dl+1)+g.ring)%g.ring, nil
	case topology.PortWest: // counter-clockwise: position rp -> rp-1
		if n.Y > 0 {
			return 0, fmt.Errorf("routing: ring channel outside the ring row at (%d,%d)", n.X, n.Y)
		}
		rp := topology.HierRingPos(t, from)
		return baseRing + g.ring + (g.dl-rp+g.ring)%g.ring, nil
	case topology.PortSouth:
		if n.Y < 0 {
			return 0, fmt.Errorf("routing: no Y+ channel leaving bridge node %d", from)
		}
		return baseYPlus + n.X*h + n.Y, nil
	}
	return 0, fmt.Errorf("routing: unknown port %d", port)
}

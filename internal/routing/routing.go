// Package routing implements the routing algorithms of the paper and the
// machinery that connects them to the network layer: standard
// dimension-ordered XY for full meshes, the deadlock-free XYX algorithm
// of Figure 5 for simplified meshes (horizontal links only in the core
// row), spike routing for halo networks, and dateline-avoiding ring
// routing for bidirectional rings.
//
// Algorithms register by name; a topology names the algorithm it is
// designed for (Topology.Routing) and For resolves it. The network layer
// consumes algorithms only through Precompute's flat next-port tables,
// and VerifyDeadlockFree (verify.go) checks any (topology, algorithm)
// pair for cyclic channel dependencies at network-construction time.
//
// XYX deadlock freedom is additionally established constructively:
// ChannelRank assigns every directed link a rank in a total order, and
// every XYX route follows strictly increasing ranks (property-tested for
// all source/destination pairs, and re-proved by the verifier's rank
// pass). The order is: all Y- (toward the core row) channels, then the
// row-0 X channels, then all Y+ channels; within a class, ranks grow in
// the direction of travel.
package routing

import (
	"fmt"
	"sort"

	"nucanet/internal/topology"
)

// Algorithm computes, hop by hop, the output port toward a destination.
// Implementations are stateless and safe for concurrent use.
type Algorithm interface {
	Name() string
	// NextPort returns the output port at cur on the route to dst.
	// ok is false if dst is unreachable from cur under this algorithm
	// (or cur == dst, which has no next hop).
	NextPort(t *topology.Topology, cur, dst topology.NodeID) (port int, ok bool)
}

var algorithms = map[string]Algorithm{}

// RegisterAlgorithm adds an algorithm under a unique key (the name
// topologies reference via Topology.Routing). Registering a duplicate
// key is a programming error and panics.
func RegisterAlgorithm(key string, alg Algorithm) {
	if key == "" || alg == nil {
		panic("routing: RegisterAlgorithm with empty key or nil algorithm")
	}
	if _, dup := algorithms[key]; dup {
		panic(fmt.Sprintf("routing: algorithm %q registered twice", key))
	}
	algorithms[key] = alg
}

// AlgorithmByName resolves a registered algorithm key.
func AlgorithmByName(key string) (Algorithm, error) {
	alg, ok := algorithms[key]
	if !ok {
		return nil, fmt.Errorf("routing: unknown algorithm %q (registered: %v)", key, AlgorithmNames())
	}
	return alg, nil
}

// AlgorithmNames returns the registered algorithm keys, sorted.
func AlgorithmNames() []string {
	out := make([]string, 0, len(algorithms))
	for k := range algorithms {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// For returns the algorithm a topology was designed for (its Routing
// annotation, filled in by the topology builder).
func For(t *topology.Topology) (Algorithm, error) {
	alg, err := AlgorithmByName(t.Routing)
	if err != nil {
		return nil, fmt.Errorf("routing: topology %s: %w", t.Name, err)
	}
	return alg, nil
}

func init() {
	RegisterAlgorithm("xy", XY{})
	RegisterAlgorithm("xyx", XYX{})
	RegisterAlgorithm("spike", Spike{})
	RegisterAlgorithm("ring", Ring{})
}

// XY is dimension-ordered routing: X to the destination column, then Y.
// Deadlock-free on full meshes.
type XY struct{}

func (XY) Name() string { return "XY" }

func (XY) NextPort(t *topology.Topology, cur, dst topology.NodeID) (int, bool) {
	a, b := t.Nodes[cur], t.Nodes[dst]
	switch {
	case a.X < b.X:
		return topology.PortEast, true
	case a.X > b.X:
		return topology.PortWest, true
	case a.Y < b.Y:
		return topology.PortSouth, true
	case a.Y > b.Y:
		return topology.PortNorth, true
	}
	return 0, false
}

// XYX is the paper's Figure 5 algorithm for simplified meshes: downward
// traffic routes X first (in row 0, the only row with horizontal links)
// then Y+; upward traffic routes Y- first, reaching row 0 before moving
// in X. Deadlock-free by the channel enumeration in ChannelRank.
type XYX struct{}

func (XYX) Name() string { return "XYX" }

func (XYX) NextPort(t *topology.Topology, cur, dst topology.NodeID) (int, bool) {
	if cur == dst {
		return 0, false
	}
	a, b := t.Nodes[cur], t.Nodes[dst]
	if a.X != b.X && a.Y != 0 {
		// Horizontal links exist only in the core row: head there first.
		// (Routes stay Y- then X then Y+, matching ChannelRank's order.)
		return topology.PortNorth, true
	}
	switch {
	case a.X < b.X:
		return topology.PortEast, true
	case a.X > b.X:
		return topology.PortWest, true
	case a.Y < b.Y:
		return topology.PortSouth, true
	}
	return topology.PortNorth, true
}

// ChannelRank makes XYX a Ranker: the verifier re-derives the paper's
// deadlock-freedom proof by checking rank monotonicity over every edge
// of the channel-dependence graph.
func (XYX) ChannelRank(t *topology.Topology, from topology.NodeID, port int) (int, error) {
	return ChannelRank(t, from, port)
}

// Spike routes on halo networks: everything funnels through the hub.
type Spike struct{}

func (Spike) Name() string { return "Spike" }

func (Spike) NextPort(t *topology.Topology, cur, dst topology.NodeID) (int, bool) {
	if cur == dst {
		return 0, false
	}
	hub := t.Hub()
	if cur == hub {
		// Port s leads to spike s; dst.X is its spike.
		return t.Nodes[dst].X, true
	}
	a, b := t.Nodes[cur], t.Nodes[dst]
	if dst == hub || a.X != b.X || b.Y < a.Y {
		return topology.PortUp, true
	}
	return topology.PortDown, true
}

// Ring routes on bidirectional rings, avoiding the dateline: the link
// pair opposite the core (between positions dl and dl+1, where
// dl = CoreX + N/2 mod N) is excluded from every route, so each
// direction's channels form an open chain instead of a cycle and no
// cyclic channel dependency can exist — the link-level analogue of a VC
// dateline, suited to this simulator's single-class virtual channels.
// Routes go clockwise (PortEast) unless that would cross the dateline;
// core-to-bank and bank-to-core traffic is always minimal because the
// dateline sits diametrically opposite the core.
type Ring struct{}

func (Ring) Name() string { return "Ring" }

func (Ring) NextPort(t *topology.Topology, cur, dst topology.NodeID) (int, bool) {
	n := t.W
	a, b := t.Nodes[cur].X, t.Nodes[dst].X
	if a == b {
		return 0, false
	}
	dl := (t.Nodes[t.Core].X + n/2) % n
	cw := (b - a + n) % n    // clockwise hops to dst
	toDL := (dl - a + n) % n // clockwise hops to the dateline link
	if toDL < cw {
		// The clockwise path would use the dateline link dl -> dl+1;
		// go counter-clockwise (which provably avoids dl+1 -> dl).
		return topology.PortWest, true
	}
	return topology.PortEast, true
}

// Hop is one step of a walked route.
type Hop struct {
	From topology.NodeID
	Port int
	To   topology.NodeID
}

// Walk traces the route from src to dst under alg, validating that every
// hop uses an existing link. It errors if the route exceeds maxHops or
// uses a missing link — the test harness for topology/routing agreement.
func Walk(t *topology.Topology, alg Algorithm, src, dst topology.NodeID, maxHops int) ([]Hop, error) {
	var hops []Hop
	cur := src
	for cur != dst {
		if len(hops) >= maxHops {
			return nil, fmt.Errorf("routing: %s route %d->%d exceeds %d hops", alg.Name(), src, dst, maxHops)
		}
		p, ok := alg.NextPort(t, cur, dst)
		if !ok {
			return nil, fmt.Errorf("routing: %s has no route %d->%d at %d", alg.Name(), src, dst, cur)
		}
		l, ok := t.Link(cur, p)
		if !ok {
			return nil, fmt.Errorf("routing: %s route %d->%d uses missing link at node %d port %d",
				alg.Name(), src, dst, cur, p)
		}
		hops = append(hops, Hop{From: cur, Port: p, To: l.To})
		cur = l.To
	}
	return hops, nil
}

// PathLatency sums the wire delays along the route from src to dst, the
// zero-load network latency in cycles.
func PathLatency(t *topology.Topology, alg Algorithm, src, dst topology.NodeID) (int, error) {
	hops, err := Walk(t, alg, src, dst, t.NumNodes())
	if err != nil {
		return 0, err
	}
	total := 0
	for _, h := range hops {
		l, _ := t.Link(h.From, h.Port)
		total += l.Delay
	}
	return total, nil
}

// Package routing implements the routing algorithms of the paper: standard
// dimension-ordered XY for the full mesh, the deadlock-free XYX algorithm
// of Figure 5 for simplified meshes (horizontal links only in the core
// row), and spike routing for halo networks.
//
// XYX deadlock freedom is established constructively: ChannelRank assigns
// every directed link a rank in a total order, and every XYX route follows
// strictly increasing ranks (property-tested for all source/destination
// pairs). The order is: all Y- (toward the core row) channels, then the
// row-0 X channels, then all Y+ channels; within a class, ranks grow in
// the direction of travel.
package routing

import (
	"fmt"

	"nucanet/internal/topology"
)

// Algorithm computes, hop by hop, the output port toward a destination.
// Implementations are stateless and safe for concurrent use.
type Algorithm interface {
	Name() string
	// NextPort returns the output port at cur on the route to dst.
	// ok is false if dst is unreachable from cur under this algorithm
	// (or cur == dst, which has no next hop).
	NextPort(t *topology.Topology, cur, dst topology.NodeID) (port int, ok bool)
}

// XY is dimension-ordered routing: X to the destination column, then Y.
// Deadlock-free on full meshes.
type XY struct{}

func (XY) Name() string { return "XY" }

func (XY) NextPort(t *topology.Topology, cur, dst topology.NodeID) (int, bool) {
	a, b := t.Nodes[cur], t.Nodes[dst]
	switch {
	case a.X < b.X:
		return topology.PortEast, true
	case a.X > b.X:
		return topology.PortWest, true
	case a.Y < b.Y:
		return topology.PortSouth, true
	case a.Y > b.Y:
		return topology.PortNorth, true
	}
	return 0, false
}

// XYX is the paper's Figure 5 algorithm for simplified meshes: downward
// traffic routes X first (in row 0, the only row with horizontal links)
// then Y+; upward traffic routes Y- first, reaching row 0 before moving
// in X. Deadlock-free by the channel enumeration in ChannelRank.
type XYX struct{}

func (XYX) Name() string { return "XYX" }

func (XYX) NextPort(t *topology.Topology, cur, dst topology.NodeID) (int, bool) {
	a, b := t.Nodes[cur], t.Nodes[dst]
	xoff := b.X - a.X
	yoff := b.Y - a.Y
	if yoff >= 0 {
		switch {
		case xoff > 0:
			return topology.PortEast, true
		case xoff < 0:
			return topology.PortWest, true
		case yoff > 0:
			return topology.PortSouth, true
		}
		return 0, false // cur == dst
	}
	return topology.PortNorth, true
}

// Spike routes on halo networks: everything funnels through the hub.
type Spike struct{}

func (Spike) Name() string { return "Spike" }

func (Spike) NextPort(t *topology.Topology, cur, dst topology.NodeID) (int, bool) {
	if cur == dst {
		return 0, false
	}
	hub := t.Hub()
	if cur == hub {
		// Port s leads to spike s; dst.X is its spike.
		return t.Nodes[dst].X, true
	}
	a, b := t.Nodes[cur], t.Nodes[dst]
	if dst == hub || a.X != b.X || b.Y < a.Y {
		return topology.PortUp, true
	}
	return topology.PortDown, true
}

// ForKind returns the natural algorithm for a topology kind: XY for full
// and minimal meshes, XYX for simplified meshes, Spike for halos.
func ForKind(k topology.Kind) Algorithm {
	switch k {
	case topology.Mesh, topology.MinimalMesh:
		return XY{}
	case topology.SimplifiedMesh:
		return XYX{}
	case topology.Halo:
		return Spike{}
	}
	panic(fmt.Sprintf("routing: no algorithm for %v", k))
}

// Hop is one step of a walked route.
type Hop struct {
	From topology.NodeID
	Port int
	To   topology.NodeID
}

// Walk traces the route from src to dst under alg, validating that every
// hop uses an existing link. It errors if the route exceeds maxHops or
// uses a missing link — the test harness for topology/routing agreement.
func Walk(t *topology.Topology, alg Algorithm, src, dst topology.NodeID, maxHops int) ([]Hop, error) {
	var hops []Hop
	cur := src
	for cur != dst {
		if len(hops) >= maxHops {
			return nil, fmt.Errorf("routing: %s route %d->%d exceeds %d hops", alg.Name(), src, dst, maxHops)
		}
		p, ok := alg.NextPort(t, cur, dst)
		if !ok {
			return nil, fmt.Errorf("routing: %s has no route %d->%d at %d", alg.Name(), src, dst, cur)
		}
		l, ok := t.Link(cur, p)
		if !ok {
			return nil, fmt.Errorf("routing: %s route %d->%d uses missing link at node %d port %d",
				alg.Name(), src, dst, cur, p)
		}
		hops = append(hops, Hop{From: cur, Port: p, To: l.To})
		cur = l.To
	}
	return hops, nil
}

// PathLatency sums the wire delays along the route from src to dst, the
// zero-load network latency in cycles.
func PathLatency(t *topology.Topology, alg Algorithm, src, dst topology.NodeID) (int, error) {
	hops, err := Walk(t, alg, src, dst, t.NumNodes())
	if err != nil {
		return 0, err
	}
	total := 0
	for _, h := range hops {
		l, _ := t.Link(h.From, h.Port)
		total += l.Delay
	}
	return total, nil
}

package routing

import (
	"fmt"
	"strings"

	"nucanet/internal/topology"
)

// Ranker is implemented by algorithms carrying a constructive
// deadlock-freedom proof: ChannelRank assigns every directed link
// (channel) a rank in a total order that all routes must climb strictly.
// When the verified algorithm is a Ranker, VerifyDeadlockFree checks
// rank monotonicity over every channel-dependence edge — re-deriving the
// paper-style proof — in addition to the general cycle search.
type Ranker interface {
	ChannelRank(t *topology.Topology, from topology.NodeID, port int) (int, error)
}

// channel identifies one directed link by its origin (node, port).
type channel struct {
	from topology.NodeID
	port int
}

// trafficPairs returns the ordered communication relation the cache
// protocols use over t: the core reaches every bank router (requests and
// probes) and every bank router answers it, replacement chains and
// promotions move blocks between the routers of one column, memory
// fills land at each column's MRU bank, writebacks leave from its LRU
// bank, and the controller exchanges requests with the memory port.
// Restricting verification to this relation matters: topologies like the
// minimal mesh (Figure 4(b)) deliberately drop links that only
// protocol-irrelevant routes would need.
func trafficPairs(t *topology.Topology) [][2]topology.NodeID {
	var ps [][2]topology.NodeID
	add := func(a, b topology.NodeID) {
		if a != b {
			ps = append(ps, [2]topology.NodeID{a, b})
		}
	}
	seenBank := make(map[topology.NodeID]bool)
	for c := 0; c < t.Columns(); c++ {
		col := t.Column(c)
		for _, n := range col {
			if !seenBank[n] {
				seenBank[n] = true
				add(t.Core, n)
				add(n, t.Core)
			}
		}
		add(t.Mem, col[0])          // fills land at the MRU bank
		add(col[len(col)-1], t.Mem) // writebacks leave from the LRU bank
		for i, u := range col {
			for j, v := range col {
				if i != j {
					add(u, v) // replacement chains and promotions
				}
			}
		}
	}
	add(t.Core, t.Mem)
	add(t.Mem, t.Core)
	return ps
}

// VerifyDeadlockFree statically checks that routing alg over topology t
// cannot deadlock, by the Dally/Seitz criterion: build the
// channel-dependence graph — channels are the directed links, and
// channel c1 depends on c2 when some in-flight packet holding c1 can
// wait for c2 (a route crosses c1 and then c2; ejection at the
// destination ends the chain) — and reject any cycle. Wormhole routes
// hold their whole path, so an acyclic dependence graph guarantees some
// packet can always drain.
//
// The check walks, over the precomputed next-port table (i.e. exactly
// the routes the network layer will use), every route of the protocol
// traffic relation (trafficPairs). It also rejects tables that route a
// required pair over a missing link, dead-end short of the destination,
// or loop without reaching it, and when alg is a Ranker it additionally
// proves the used routes follow the algorithm's declared total channel
// order.
func VerifyDeadlockFree(t *topology.Topology, alg Algorithm) error {
	tb, err := Precompute(t, alg)
	if err != nil {
		return err
	}
	n := t.NumNodes()

	// Dense channel ids for the directed links.
	chID := make([][]int, n)
	var chans []channel
	for v := 0; v < n; v++ {
		chID[v] = make([]int, t.NumPorts(v))
		for p := range chID[v] {
			if _, ok := t.Link(v, p); ok {
				chID[v][p] = len(chans)
				chans = append(chans, channel{from: v, port: p})
			} else {
				chID[v][p] = -1
			}
		}
	}

	// Dependence edges induced by walking every protocol route over the
	// table: consecutive channels of one route depend on each other.
	adj := make([][]int32, len(chans))
	edgeSeen := make(map[int64]struct{})
	maxHops := n + 1 // any valid route is a simple path
	for _, pr := range trafficPairs(t) {
		src, dst := pr[0], pr[1]
		cur, prev := src, -1
		for hop := 0; cur != dst; hop++ {
			if hop >= maxHops {
				return fmt.Errorf("routing: %s route %d->%d exceeds %d hops without arriving (cyclic route)",
					tb.Name(), src, dst, maxHops)
			}
			p, ok := tb.NextPort(t, cur, dst)
			if !ok {
				return fmt.Errorf("routing: %s route %d->%d dead-ends at node %d",
					tb.Name(), src, dst, cur)
			}
			l, ok := t.Link(cur, p)
			if !ok {
				return fmt.Errorf("routing: %s routes %d->%d over missing link (node %d port %d)",
					tb.Name(), src, dst, cur, p)
			}
			c := chID[cur][p]
			if prev >= 0 {
				key := int64(prev)<<32 | int64(c)
				if _, dup := edgeSeen[key]; !dup {
					edgeSeen[key] = struct{}{}
					adj[prev] = append(adj[prev], int32(c))
				}
			}
			prev, cur = c, l.To
		}
	}

	// Constructive pass: a Ranker's total channel order must strictly
	// increase across every dependence edge.
	if rk, ok := baseOf(tb).(Ranker); ok {
		for c1, outs := range adj {
			r1, err := rk.ChannelRank(t, chans[c1].from, chans[c1].port)
			if err != nil {
				return fmt.Errorf("routing: %s uses unranked channel %s: %w",
					tb.Name(), chanDesc(t, chans[c1]), err)
			}
			for _, c2 := range outs {
				r2, err := rk.ChannelRank(t, chans[c2].from, chans[c2].port)
				if err != nil {
					return fmt.Errorf("routing: %s uses unranked channel %s: %w",
						tb.Name(), chanDesc(t, chans[c2]), err)
				}
				if r1 >= r2 {
					return fmt.Errorf("routing: %s violates its channel order: %s (rank %d) -> %s (rank %d)",
						tb.Name(), chanDesc(t, chans[c1]), r1, chanDesc(t, chans[c2]), r2)
				}
			}
		}
	}

	// General pass: depth-first search for a dependence cycle.
	if cyc := findCycle(adj); cyc != nil {
		var b strings.Builder
		for i, c := range cyc {
			if i > 0 {
				b.WriteString(" -> ")
			}
			b.WriteString(chanDesc(t, chans[c]))
		}
		return fmt.Errorf("routing: %s on %s has a channel-dependence cycle: %s",
			tb.Name(), t.Name, b.String())
	}
	return nil
}

// VerifyDeflectionLivelockFree statically checks the livelock-freedom
// argument for a deflection (bufferless) router running alg over t.
// Deflection routers cannot deadlock — nothing ever waits on a buffer —
// but they can livelock: a packet could be deflected away from its
// destination forever. The classic BLESS argument rules this out when
// two properties hold, and this function verifies both before a single
// cycle is simulated:
//
//  1. Arbitration is age-monotone (declared by the engine): ports are
//     allocated strictly oldest-packet-first. Then the globally oldest
//     packet in the network is also the locally oldest wherever it is,
//     so it always wins its productive port, advances one hop along its
//     table route every cycle it moves, and ejects within the route
//     length. Once it ejects, the next-oldest packet inherits the
//     guarantee — induction on age bounds every packet's network time by
//     (packets ahead of it) x (longest route). Engines whose arbiter is
//     not age-monotone are rejected: a younger packet could displace the
//     oldest indefinitely and the bound evaporates.
//
//  2. Productive routes are total: deflection can strand a packet at
//     *any* node, not just the nodes on its intended route, so the table
//     must supply a next hop over an existing link from every node to
//     every protocol destination, and following those hops must reach
//     the destination (no cyclic routes). Otherwise a deflected packet
//     could reach a node with no productive direction and circulate
//     forever.
//
// The destination set is the protocol traffic relation's (trafficPairs),
// matching VerifyDeadlockFree's scope.
func VerifyDeflectionLivelockFree(t *topology.Topology, alg Algorithm, ageMonotone bool) error {
	if !ageMonotone {
		return fmt.Errorf("routing: deflecting engine without an age-monotone arbiter: livelock-freedom is unprovable (a younger packet could displace the oldest forever)")
	}
	tb, err := Precompute(t, alg)
	if err != nil {
		return err
	}
	n := t.NumNodes()
	isDst := make([]bool, n)
	for _, pr := range trafficPairs(t) {
		isDst[pr[1]] = true
	}
	// For each destination, follow the table's next-hop pointers from
	// every node, memoizing nodes already proven to reach it.
	const (
		unknown = iota
		visiting
		reaches
	)
	state := make([]uint8, n)
	path := make([]topology.NodeID, 0, n)
	for dst := 0; dst < n; dst++ {
		if !isDst[dst] {
			continue
		}
		for i := range state {
			state[i] = unknown
		}
		state[dst] = reaches
		for cur := 0; cur < n; cur++ {
			if state[cur] != unknown {
				continue
			}
			path = path[:0]
			v := cur
			for state[v] == unknown {
				state[v] = visiting
				path = append(path, v)
				p, ok := tb.NextPort(t, v, dst)
				if !ok {
					return fmt.Errorf("routing: %s has no productive route from node %d to %d: a deflected packet stranded at %d could never make progress",
						tb.Name(), v, dst, v)
				}
				l, ok := t.Link(v, p)
				if !ok {
					return fmt.Errorf("routing: %s routes %d->%d over missing link (node %d port %d)",
						tb.Name(), v, dst, v, p)
				}
				v = l.To
			}
			if state[v] == visiting {
				return fmt.Errorf("routing: %s route to %d loops through node %d without arriving (cyclic route)",
					tb.Name(), dst, v)
			}
			for _, u := range path {
				state[u] = reaches
			}
		}
	}
	return nil
}

// baseOf unwraps a precomputed table to the algorithm it was built from.
func baseOf(alg Algorithm) Algorithm {
	if tb, ok := alg.(*Table); ok {
		return tb.base
	}
	return alg
}

// chanDesc renders a channel as from->to node ids.
func chanDesc(t *topology.Topology, c channel) string {
	l, _ := t.Link(c.from, c.port)
	return fmt.Sprintf("%d->%d", c.from, l.To)
}

// findCycle runs an iterative three-color DFS over adj and returns one
// cycle (as a channel id sequence, first == entry point) or nil.
func findCycle(adj [][]int32) []int {
	const (
		white = iota // unvisited
		gray         // on the current DFS path
		black        // fully explored
	)
	color := make([]uint8, len(adj))
	type frame struct {
		node int
		next int // next out-edge index to explore
	}
	var stack []frame
	for start := range adj {
		if color[start] != white {
			continue
		}
		color[start] = gray
		stack = append(stack[:0], frame{node: start})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(adj[f.node]) {
				to := int(adj[f.node][f.next])
				f.next++
				switch color[to] {
				case white:
					color[to] = gray
					stack = append(stack, frame{node: to})
				case gray:
					// Cycle: slice the path from to's frame onward.
					var cyc []int
					for i := range stack {
						if stack[i].node == to {
							for _, fr := range stack[i:] {
								cyc = append(cyc, fr.node)
							}
							break
						}
					}
					return append(cyc, to)
				}
				continue
			}
			color[f.node] = black
			stack = stack[:len(stack)-1]
		}
	}
	return nil
}

package routing_test

// External test package: the verifier acceptance tests exercise the
// real design catalogue (config imports router which imports routing,
// so an internal test would cycle).

import (
	"strings"
	"testing"

	"nucanet/internal/config"
	"nucanet/internal/routing"
	"nucanet/internal/topology"
)

// TestVerifyAllCatalogueDesigns re-derives the paper's deadlock-freedom
// arguments as verifier runs: every design the repo ships — Table 3's
// A-F plus the extra registered families (ring R, concentrated mesh G,
// hierarchical H2) — must pass the static channel-dependence check with
// its default routing algorithm.
func TestVerifyAllCatalogueDesigns(t *testing.T) {
	designs := append(config.Designs(), config.ExtraDesigns()...)
	if len(designs) != 9 {
		t.Fatalf("catalogue has %d designs, want 9 (A-F, R, G, H2)", len(designs))
	}
	for _, d := range designs {
		d := d
		t.Run(d.ID, func(t *testing.T) {
			topo, err := d.Build()
			if err != nil {
				t.Fatal(err)
			}
			alg, err := routing.For(topo)
			if err != nil {
				t.Fatal(err)
			}
			if err := routing.VerifyDeadlockFree(topo, alg); err != nil {
				t.Fatalf("design %s (%s/%s): %v", d.ID, topo.Name, alg.Name(), err)
			}
		})
	}
}

// TestVerifyMinimalMesh covers the one shipped family with no catalogue
// entry: XY over the minimal mesh (Figure 4(b)) with its one-way middle
// rows.
func TestVerifyMinimalMesh(t *testing.T) {
	m := topology.NewMinimalMesh(topology.MeshSpec{W: 16, H: 16, CoreX: 7, MemX: 8})
	if err := routing.VerifyDeadlockFree(m, routing.XY{}); err != nil {
		t.Fatal(err)
	}
}

// allEast always routes clockwise, straight through the ring's dateline
// link: its channel-dependence graph is the full east cycle.
type allEast struct{}

func (allEast) Name() string { return "all-east" }

func (allEast) NextPort(t *topology.Topology, cur, dst topology.NodeID) (int, bool) {
	if cur == dst {
		return 0, false
	}
	return topology.PortEast, true
}

// yx routes Y-first-then-X: on the simplified mesh it dives into rows
// that have no horizontal links, so protocol routes hit missing links.
type yx struct{}

func (yx) Name() string { return "YX" }

func (yx) NextPort(t *topology.Topology, cur, dst topology.NodeID) (int, bool) {
	a, b := t.Nodes[cur], t.Nodes[dst]
	switch {
	case a.Y < b.Y:
		return topology.PortSouth, true
	case a.Y > b.Y:
		return topology.PortNorth, true
	case a.X < b.X:
		return topology.PortEast, true
	case a.X > b.X:
		return topology.PortWest, true
	}
	return 0, false
}

// quitter routes like XY but gives up (no next port) at row 1 on the way
// down: protocol routes dead-end mid-path.
type quitter struct{}

func (quitter) Name() string { return "quitter" }

func (quitter) NextPort(t *topology.Topology, cur, dst topology.NodeID) (int, bool) {
	if t.Nodes[cur].Y == 1 && t.Nodes[dst].Y > 1 {
		return 0, false
	}
	return routing.XY{}.NextPort(t, cur, dst)
}

// badRank routes like XYX but declares a constant channel rank, so every
// dependence edge violates the claimed strict order.
type badRank struct{ routing.XYX }

func (badRank) Name() string { return "bad-rank" }

func (badRank) ChannelRank(t *topology.Topology, from topology.NodeID, port int) (int, error) {
	return 0, nil
}

// TestVerifyRejectsBadRouting is the negative acceptance table: each
// deliberately broken table must be rejected with a descriptive error.
func TestVerifyRejectsBadRouting(t *testing.T) {
	ring := func() *topology.Topology {
		tp, err := topology.Build("ring", topology.Params{W: 8, H: 1, CoreX: 0, MemX: 4, HorizDelay: 1})
		if err != nil {
			t.Fatal(err)
		}
		return tp
	}
	mesh := func() *topology.Topology {
		return topology.NewMesh(topology.MeshSpec{W: 6, H: 6, CoreX: 2, MemX: 3})
	}
	simplified := func() *topology.Topology {
		return topology.NewSimplifiedMesh(topology.MeshSpec{W: 6, H: 6, CoreX: 2, MemX: 2})
	}
	cases := []struct {
		name    string
		topo    *topology.Topology
		alg     routing.Algorithm
		wantErr string
	}{
		{"cyclic-ring", ring(), allEast{}, "channel-dependence cycle"},
		{"missing-link", simplified(), yx{}, "missing link"},
		{"dead-end", mesh(), quitter{}, "dead-ends"},
		{"rank-violation", simplified(), badRank{}, "violates its channel order"},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			err := routing.VerifyDeadlockFree(c.topo, c.alg)
			if err == nil {
				t.Fatalf("%s on %s: expected rejection", c.alg.Name(), c.topo.Name)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

// TestVerifyRingAvoidsDateline pins the ring algorithm's safety
// argument at the route level: no route ever crosses the dateline link
// pair opposite the core.
func TestVerifyRingAvoidsDateline(t *testing.T) {
	tp, err := topology.Build("ring", topology.Params{W: 16, H: 1, CoreX: 3, MemX: 11, HorizDelay: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := tp.W
	dl := (tp.Nodes[tp.Core].X + n/2) % n
	for src := 0; src < tp.NumNodes(); src++ {
		for dst := 0; dst < tp.NumNodes(); dst++ {
			if src == dst {
				continue
			}
			hops, err := routing.Walk(tp, routing.Ring{}, src, dst, 2*n)
			if err != nil {
				t.Fatalf("%d->%d: %v", src, dst, err)
			}
			for _, h := range hops {
				a, b := tp.Nodes[h.From].X, tp.Nodes[h.To].X
				if (a == dl && b == (dl+1)%n) || (a == (dl+1)%n && b == dl) {
					t.Fatalf("route %d->%d crosses the dateline link %d<->%d",
						src, dst, dl, (dl+1)%n)
				}
			}
		}
	}
}

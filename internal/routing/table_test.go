package routing

import (
	"testing"

	"nucanet/internal/topology"
)

// TestTablePrecomputeMatchesAlgorithm is the faithfulness pin for route
// precomputation: for every algorithm/topology pair used by the designs,
// the table returns exactly the (port, ok) the base algorithm computes
// for every (cur, dst) pair. Any divergence would silently change
// simulation results, so this is exhaustive, not sampled.
func TestTablePrecomputeMatchesAlgorithm(t *testing.T) {
	cases := []struct {
		name string
		topo *topology.Topology
		alg  Algorithm
	}{
		{"XY/mesh", mesh16(), XY{}},
		{"XYX/simplified", simpl16(), XYX{}},
		{"Spike/halo", topology.NewHalo(topology.HaloSpec{Spikes: 16, Length: 16}), Spike{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tb, err := Precompute(tc.topo, tc.alg)
			if err != nil {
				t.Fatal(err)
			}
			if tb.Name() != tc.alg.Name() {
				t.Fatalf("table name %q, want %q", tb.Name(), tc.alg.Name())
			}
			n := tc.topo.NumNodes()
			for cur := 0; cur < n; cur++ {
				for dst := 0; dst < n; dst++ {
					wantP, wantOK := tc.alg.NextPort(tc.topo, cur, dst)
					gotP, gotOK := tb.NextPort(tc.topo, cur, dst)
					if gotOK != wantOK || (wantOK && gotP != wantP) {
						t.Fatalf("%d->%d: table (%d,%v), algorithm (%d,%v)",
							cur, dst, gotP, gotOK, wantP, wantOK)
					}
				}
			}
		})
	}
}

// TestPrecomputeIdempotent checks that wrapping a table returns the same
// table, so callers can precompute defensively without stacking lookups.
func TestPrecomputeIdempotent(t *testing.T) {
	m := mesh16()
	tb, err := Precompute(m, XY{})
	if err != nil {
		t.Fatal(err)
	}
	tb2, err := Precompute(m, tb)
	if err != nil {
		t.Fatal(err)
	}
	if tb2 != tb {
		t.Fatal("Precompute of a *Table built a new table")
	}
	if _, ok := tb.Base().(XY); !ok {
		t.Fatalf("Base: got %T, want XY", tb.Base())
	}
}

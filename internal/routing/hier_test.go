package routing

import (
	"testing"

	"nucanet/internal/topology"
)

func hierTestTopos() map[string]*topology.Topology {
	return map[string]*topology.Topology{
		// The H2 catalogue shape: dateline on an interior chiplet-1 link.
		"2x(8x4)": topology.NewHier(topology.HierSpec{W: 16, H: 4, Chiplets: 2,
			CoreX: 3, MemX: 3, HorizDelay: 2, VertDelay: []int{2}}),
		// Narrow chiplets: every mesh column touches a bridge. CoreX 5
		// projects to ring position 10, so the dateline (position 2 -> 3)
		// is a mesh-to-bridge link — the asymmetric case where one open
		// chain ends on a bridge.
		"4x(2x2)": topology.NewHier(topology.HierSpec{W: 8, H: 2, Chiplets: 4,
			CoreX: 5, MemX: 0}),
	}
}

// TestHierRouteProperties checks every ordered (src, dst) pair of each
// hier test topology — including the row-0 to row-0 pairs the CMP fabric
// adds when cores forward requests to remote home columns:
//
//  1. the route terminates over existing links;
//  2. it follows the phase discipline N* ring(E*|W*) S* with the ring
//     segment never mixing directions (the dateline-avoidance argument
//     needs a single-direction run);
//  3. ChannelRank strictly increases hop over hop, so the constructive
//     deadlock-freedom proof covers the full pair set, not just the
//     verifier's traffic pairs;
//  4. no hop crosses the dateline link pair diametrically opposite the
//     core's ring projection.
func TestHierRouteProperties(t *testing.T) {
	for name, topo := range hierTestTopos() {
		alg := Hier{}
		g := hierGeomOf(topo)
		n := topo.NumNodes()
		for src := topology.NodeID(0); int(src) < n; src++ {
			for dst := topology.NodeID(0); int(dst) < n; dst++ {
				if src == dst {
					continue
				}
				hops, err := Walk(topo, alg, src, dst, n)
				if err != nil {
					t.Fatalf("%s %d->%d: %v", name, src, dst, err)
				}
				const (
					phaseYMinus = iota
					phaseRing
					phaseYPlus
				)
				phase := phaseYMinus
				sawEast, sawWest := false, false
				prev := -1
				for _, h := range hops {
					switch h.Port {
					case topology.PortNorth:
						if phase != phaseYMinus {
							t.Fatalf("%s %d->%d: Y- hop after leaving the climb phase (%v)", name, src, dst, hops)
						}
					case topology.PortEast, topology.PortWest:
						if phase > phaseRing {
							t.Fatalf("%s %d->%d: ring hop after the descent began (%v)", name, src, dst, hops)
						}
						phase = phaseRing
						if h.Port == topology.PortEast {
							sawEast = true
						} else {
							sawWest = true
						}
						if sawEast && sawWest {
							t.Fatalf("%s %d->%d: route mixes ring directions (%v)", name, src, dst, hops)
						}
						rp := topology.HierRingPos(topo, h.From)
						if h.Port == topology.PortEast && rp == g.dl {
							t.Fatalf("%s %d->%d: clockwise hop crosses the dateline at position %d (%v)",
								name, src, dst, rp, hops)
						}
						if h.Port == topology.PortWest && rp == (g.dl+1)%g.ring {
							t.Fatalf("%s %d->%d: counter-clockwise hop crosses the dateline at position %d (%v)",
								name, src, dst, rp, hops)
						}
					case topology.PortSouth:
						phase = phaseYPlus
					default:
						t.Fatalf("%s %d->%d: unexpected port %d", name, src, dst, h.Port)
					}
					rank, err := alg.ChannelRank(topo, h.From, h.Port)
					if err != nil {
						t.Fatalf("%s %d->%d: hop %+v has no rank: %v", name, src, dst, h, err)
					}
					if rank <= prev {
						t.Fatalf("%s %d->%d: rank not increasing at hop %+v (%d after %d)",
							name, src, dst, h, rank, prev)
					}
					prev = rank
				}
			}
		}
	}
}

// TestHierPassesStaticVerifiers runs both whole-graph checks the
// simulator applies before accepting a design, on both hier geometries.
func TestHierPassesStaticVerifiers(t *testing.T) {
	for name, topo := range hierTestTopos() {
		if err := VerifyDeadlockFree(topo, Hier{}); err != nil {
			t.Errorf("%s: VerifyDeadlockFree: %v", name, err)
		}
		if err := VerifyDeflectionLivelockFree(topo, Hier{}, true); err != nil {
			t.Errorf("%s: VerifyDeflectionLivelockFree: %v", name, err)
		}
	}
}

// TestHierRanksEveryChannel: the deadlock verifier calls ChannelRank on
// every existing channel of the graph, so each real link must rank
// without error and no two channels may share a rank.
func TestHierRanksEveryChannel(t *testing.T) {
	for name, topo := range hierTestTopos() {
		seen := map[int]string{}
		for id := 0; id < topo.NumNodes(); id++ {
			for port := 0; port < topo.NumPorts(topology.NodeID(id)); port++ {
				if _, ok := topo.Link(topology.NodeID(id), port); !ok {
					continue
				}
				rank, err := (Hier{}).ChannelRank(topo, topology.NodeID(id), port)
				if err != nil {
					t.Fatalf("%s: channel (%d, port %d): %v", name, id, port, err)
				}
				key := name + "/" + string(rune(id)) + "/" + string(rune(port))
				if prev, dup := seen[rank]; dup {
					t.Errorf("%s: channels %s and %s share rank %d", name, prev, key, rank)
				}
				seen[rank] = key
			}
		}
	}
}

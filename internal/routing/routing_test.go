package routing

import (
	"testing"
	"testing/quick"

	"nucanet/internal/topology"
)

func mesh16() *topology.Topology {
	return topology.NewMesh(topology.MeshSpec{W: 16, H: 16, CoreX: 7, MemX: 8})
}

func simpl16() *topology.Topology {
	return topology.NewSimplifiedMesh(topology.MeshSpec{W: 16, H: 16, CoreX: 7, MemX: 7})
}

func TestXYReachesAllPairsMinimally(t *testing.T) {
	m := mesh16()
	alg := XY{}
	for src := 0; src < m.NumNodes(); src += 7 {
		for dst := 0; dst < m.NumNodes(); dst += 5 {
			if src == dst {
				continue
			}
			hops, err := Walk(m, alg, src, dst, 64)
			if err != nil {
				t.Fatal(err)
			}
			a, b := m.Nodes[src], m.Nodes[dst]
			manhattan := abs(a.X-b.X) + abs(a.Y-b.Y)
			if len(hops) != manhattan {
				t.Fatalf("XY %d->%d took %d hops, want %d", src, dst, len(hops), manhattan)
			}
		}
	}
}

func TestXYOrdersXFirst(t *testing.T) {
	m := mesh16()
	hops, err := Walk(m, XY{}, m.NodeAt(2, 3), m.NodeAt(6, 9), 64)
	if err != nil {
		t.Fatal(err)
	}
	sawY := false
	for _, h := range hops {
		if h.Port == topology.PortSouth || h.Port == topology.PortNorth {
			sawY = true
		} else if sawY {
			t.Fatal("XY used an X link after a Y link")
		}
	}
}

// xyxPairs enumerates the (src,dst) pairs the cache traffic pattern uses on
// a simplified mesh: core row <-> banks, and within-column neighbors.
func xyxPairs(m *topology.Topology) [][2]int {
	var pairs [][2]int
	core := m.Core
	for n := 0; n < m.NumNodes(); n++ {
		if n != core {
			pairs = append(pairs, [2]int{core, n}, [2]int{n, core})
		}
	}
	for c := 0; c < m.Columns(); c++ {
		col := m.Column(c)
		for i := 0; i+1 < len(col); i++ {
			pairs = append(pairs, [2]int{col[i], col[i+1]}, [2]int{col[i+1], col[i]})
		}
	}
	return pairs
}

func TestXYXRoutesCacheTrafficOnSimplifiedMesh(t *testing.T) {
	m := simpl16()
	alg := XYX{}
	for _, pr := range xyxPairs(m) {
		if _, err := Walk(m, alg, pr[0], pr[1], 64); err != nil {
			t.Fatal(err)
		}
	}
}

func TestXYWouldBreakOnSimplifiedMesh(t *testing.T) {
	// Sanity: plain XY needs horizontal links in bank rows, which the
	// simplified mesh lacks — the very reason the paper introduces XYX.
	m := simpl16()
	src := m.NodeAt(2, 5) // a bank off the core column
	_, err := Walk(m, XY{}, src, m.Core, 64)
	if err == nil {
		t.Fatal("XY should fail from a middle-row bank to the core on a simplified mesh")
	}
}

func TestXYXRepliesGoYFirst(t *testing.T) {
	m := simpl16()
	hops, err := Walk(m, XYX{}, m.NodeAt(3, 9), m.Core, 64)
	if err != nil {
		t.Fatal(err)
	}
	sawX := false
	for _, h := range hops {
		if h.Port == topology.PortEast || h.Port == topology.PortWest {
			sawX = true
		} else if h.Port == topology.PortNorth && sawX {
			t.Fatal("XYX reply used Y- after X")
		}
	}
	if !sawX {
		t.Fatal("route should cross columns in row 0")
	}
}

// TestXYXChannelOrderTotal is the deadlock-freedom proof obligation: every
// XYX route over the cache traffic pattern must follow strictly increasing
// channel ranks, and ranks must be unique per directed channel.
func TestXYXChannelOrderTotal(t *testing.T) {
	for _, dims := range [][2]int{{4, 4}, {16, 16}, {16, 5}, {3, 3}} {
		m := topology.NewSimplifiedMesh(topology.MeshSpec{
			W: dims[0], H: dims[1], CoreX: dims[0] / 2, MemX: dims[0] / 2})
		seen := map[int]bool{}
		for n := 0; n < m.NumNodes(); n++ {
			for p := 0; p < m.NumPorts(n); p++ {
				if _, ok := m.Link(n, p); !ok {
					continue
				}
				r, err := ChannelRank(m, n, p)
				if err != nil {
					t.Fatalf("%dx%d node %d port %d: %v", dims[0], dims[1], n, p, err)
				}
				if seen[r] {
					t.Fatalf("%dx%d: duplicate channel rank %d", dims[0], dims[1], r)
				}
				seen[r] = true
			}
		}
		for _, pr := range xyxPairs(m) {
			hops, err := Walk(m, XYX{}, pr[0], pr[1], m.NumNodes())
			if err != nil {
				t.Fatal(err)
			}
			last := -1
			for _, h := range hops {
				r, err := ChannelRank(m, h.From, h.Port)
				if err != nil {
					t.Fatal(err)
				}
				if r <= last {
					t.Fatalf("%dx%d route %d->%d: rank %d after %d (not increasing)",
						dims[0], dims[1], pr[0], pr[1], r, last)
				}
				last = r
			}
		}
	}
}

func TestXYXChannelOrderProperty(t *testing.T) {
	if err := quick.Check(func(w8, h8, s8, d8 uint8) bool {
		w := int(w8%12) + 2
		h := int(h8%12) + 2
		m := topology.NewSimplifiedMesh(topology.MeshSpec{W: w, H: h, CoreX: w / 2, MemX: w / 2})
		// Random bank -> core and core -> bank routes stay monotone.
		n := (int(s8)*int(d8) + int(s8)) % m.NumNodes()
		for _, pr := range [][2]int{{m.Core, n}, {n, m.Core}} {
			if pr[0] == pr[1] {
				continue
			}
			hops, err := Walk(m, XYX{}, pr[0], pr[1], m.NumNodes())
			if err != nil {
				return false
			}
			last := -1
			for _, hp := range hops {
				r, err := ChannelRank(m, hp.From, hp.Port)
				if err != nil || r <= last {
					return false
				}
				last = r
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSpikeRouting(t *testing.T) {
	h := topology.NewHalo(topology.HaloSpec{Spikes: 16, Length: 16})
	alg := Spike{}
	hub := h.Hub()
	// Hub to every bank and back.
	for s := 0; s < 16; s++ {
		col := h.Column(s)
		for pos, n := range col {
			down, err := Walk(h, alg, hub, n, 64)
			if err != nil {
				t.Fatal(err)
			}
			if len(down) != pos+1 {
				t.Fatalf("hub->spike %d pos %d took %d hops, want %d", s, pos, len(down), pos+1)
			}
			up, err := Walk(h, alg, n, hub, 64)
			if err != nil {
				t.Fatal(err)
			}
			if len(up) != pos+1 {
				t.Fatalf("bank->hub took %d hops, want %d", len(up), pos+1)
			}
		}
	}
	// Cross-spike routes funnel through the hub.
	hops, err := Walk(h, alg, h.Column(2)[5], h.Column(9)[3], 64)
	if err != nil {
		t.Fatal(err)
	}
	viaHub := false
	for _, hp := range hops {
		if hp.To == hub {
			viaHub = true
		}
	}
	if !viaHub {
		t.Fatal("cross-spike route must pass the hub")
	}
}

func TestHaloMRUOneHop(t *testing.T) {
	// The halo's raison d'etre: every MRU bank is one hop, equal latency.
	h := topology.NewHalo(topology.HaloSpec{Spikes: 16, Length: 5})
	for s := 0; s < 16; s++ {
		lat, err := PathLatency(h, Spike{}, h.Hub(), h.Column(s)[0])
		if err != nil {
			t.Fatal(err)
		}
		if lat != 1 {
			t.Fatalf("hub->MRU bank of spike %d latency = %d, want 1", s, lat)
		}
	}
	// Contrast: on a mesh the leftmost MRU bank is far from the core.
	m := mesh16()
	far, _ := PathLatency(m, XY{}, m.Core, m.NodeAt(0, 0))
	if far <= 1 {
		t.Fatalf("mesh corner MRU bank latency = %d, expected > 1", far)
	}
}

func TestPathLatencySumsWireDelays(t *testing.T) {
	m := topology.NewSimplifiedMesh(topology.MeshSpec{W: 16, H: 5, CoreX: 7, MemX: 7,
		HorizDelay: 3, VertDelay: []int{0, 1, 2, 2, 3}})
	// Core (7,0) to LRU bank of column 9: 2 horizontal (3 each) + 1+2+2+3.
	lat, err := PathLatency(m, XYX{}, m.Core, m.NodeAt(9, 4))
	if err != nil {
		t.Fatal(err)
	}
	if want := 2*3 + 1 + 2 + 2 + 3; lat != want {
		t.Fatalf("latency = %d, want %d", lat, want)
	}
}

func TestForPicksDefaultAlgorithm(t *testing.T) {
	std := topology.MeshSpec{W: 8, H: 8, CoreX: 3, MemX: 4}
	cases := []struct {
		topo *topology.Topology
		want string
	}{
		{topology.NewMesh(std), "XY"},
		{topology.NewMinimalMesh(std), "XY"},
		{topology.NewSimplifiedMesh(std), "XYX"},
		{topology.NewHalo(topology.HaloSpec{Spikes: 8, Length: 8}), "Spike"},
	}
	for _, c := range cases {
		alg, err := For(c.topo)
		if err != nil {
			t.Fatalf("For(%s): %v", c.topo.Name, err)
		}
		if got := alg.Name(); got != c.want {
			t.Errorf("For(%s) = %s, want %s", c.topo.Name, got, c.want)
		}
	}
}

func TestAlgorithmRegistry(t *testing.T) {
	for _, name := range []string{"xy", "xyx", "spike", "ring"} {
		alg, err := AlgorithmByName(name)
		if err != nil {
			t.Fatalf("AlgorithmByName(%q): %v", name, err)
		}
		if alg == nil {
			t.Fatalf("AlgorithmByName(%q) returned nil", name)
		}
	}
	if _, err := AlgorithmByName("no-such-algorithm"); err == nil {
		t.Fatal("expected error for unknown algorithm name")
	}
	names := AlgorithmNames()
	if len(names) < 4 {
		t.Fatalf("AlgorithmNames() = %v, want at least xy/xyx/spike/ring", names)
	}
}

func TestXYOnMinimalMeshCacheTraffic(t *testing.T) {
	// Figure 4(b)'s minimal mesh must still route the cache communication
	// patterns under XY: requests along row 0, replies X-toward-core then
	// Y-, memory traffic along the bottom row.
	m := topology.NewMinimalMesh(topology.MeshSpec{W: 8, H: 8, CoreX: 3, MemX: 4})
	alg := XY{}
	for n := 0; n < m.NumNodes(); n++ {
		if n == m.Core {
			continue
		}
		// Replies: bank -> core must work (X toward core exists).
		if _, err := Walk(m, alg, n, m.Core, 64); err != nil {
			t.Fatalf("reply route from %d: %v", n, err)
		}
		// Bank -> memory: X toward memory column... only guaranteed via
		// bottom row and core/mem corridor; check LRU banks only.
		if m.Nodes[n].Y == m.H-1 {
			if _, err := Walk(m, alg, n, m.Mem, 64); err != nil {
				t.Fatalf("writeback route from %d: %v", n, err)
			}
		}
	}
	// Requests: core -> any bank via row 0 then down.
	for c := 0; c < m.Columns(); c++ {
		for _, n := range m.Column(c) {
			if n == m.Core {
				continue
			}
			if _, err := Walk(m, alg, m.Core, n, 64); err != nil {
				t.Fatalf("request route to %d: %v", n, err)
			}
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

package routing

import (
	"testing"

	"nucanet/internal/sim"
	"nucanet/internal/topology"
)

// TestXYXRouteProperties property-tests XYX on a 16x16 simplified mesh:
// for random (src, dst) pairs it asserts that every route
//
//  1. is minimal: |dy| within a column, src.Y + |dx| + dst.Y when the
//     route must transit the core row (the only row with X links);
//  2. follows the X-then-Y-then-X phase discipline of Figure 5 — the
//     port sequence factors into a Y- prefix, one X segment that never
//     mixes East and West, and a Y+ suffix, with no phase re-entered;
//  3. never takes a forbidden turn: ChannelRank (the constructive
//     deadlock-freedom argument) must strictly increase hop over hop, so
//     no cyclic channel dependency can form.
//
// Pairs are drawn from the traffic the simplified mesh actually carries:
// same-column routes plus routes with an endpoint in the core row.
func TestXYXRouteProperties(t *testing.T) {
	topo := topology.NewSimplifiedMesh(topology.MeshSpec{W: 16, H: 16, CoreX: 7, MemX: 7})
	alg := XYX{}
	rng := sim.NewRNG(20260806)
	const pairs = 4000
	tested := 0
	for tested < pairs {
		src := topology.NodeID(rng.Intn(topo.NumNodes()))
		dst := topology.NodeID(rng.Intn(topo.NumNodes()))
		a, b := topo.Nodes[src], topo.Nodes[dst]
		if src == dst {
			continue
		}
		// Off-row endpoints in different columns have no X channel to
		// cross on; the cache protocol never generates such pairs.
		if a.X != b.X && a.Y != 0 && b.Y != 0 {
			continue
		}
		tested++

		hops, err := Walk(topo, alg, src, dst, topo.NumNodes())
		if err != nil {
			t.Fatalf("%d->%d: %v", src, dst, err)
		}

		// Property 1: minimality.
		want := abs(a.Y - b.Y)
		if a.X != b.X {
			want = a.Y + abs(a.X-b.X) + b.Y
		}
		if len(hops) != want {
			t.Fatalf("%d->%d: route has %d hops, minimal is %d", src, dst, len(hops), want)
		}

		// Property 2: phase order N* (E*|W*) S*, phases never re-entered.
		const (
			phaseYMinus = iota
			phaseX
			phaseYPlus
		)
		phase := phaseYMinus
		sawEast, sawWest := false, false
		for _, h := range hops {
			switch h.Port {
			case topology.PortNorth:
				if phase != phaseYMinus {
					t.Fatalf("%d->%d: Y- hop after leaving the Y- phase (route %v)", src, dst, hops)
				}
			case topology.PortEast, topology.PortWest:
				if phase > phaseX {
					t.Fatalf("%d->%d: X hop after the Y+ phase began (route %v)", src, dst, hops)
				}
				phase = phaseX
				if h.Port == topology.PortEast {
					sawEast = true
				} else {
					sawWest = true
				}
				if sawEast && sawWest {
					t.Fatalf("%d->%d: route mixes East and West (route %v)", src, dst, hops)
				}
			case topology.PortSouth:
				phase = phaseYPlus
			default:
				t.Fatalf("%d->%d: unexpected port %d", src, dst, h.Port)
			}
		}

		// Property 3: strictly increasing channel ranks — the forbidden
		// turns are exactly those that would break monotonicity.
		prev := -1
		for _, h := range hops {
			rank, err := ChannelRank(topo, h.From, h.Port)
			if err != nil {
				t.Fatalf("%d->%d: hop %+v has no rank: %v", src, dst, h, err)
			}
			if rank <= prev {
				t.Fatalf("%d->%d: rank not increasing at hop %+v (%d after %d); deadlock-freedom violated",
					src, dst, h, rank, prev)
			}
			prev = rank
		}
	}
}

package routing

import (
	"fmt"

	"nucanet/internal/topology"
)

// noPort marks an unreachable (or self) destination in a Table.
const noPort = -1

// Table is a precomputed next-port lookup for one topology: the output
// port for every (current, destination) router pair, built once at
// network construction so the router hot path replaces algorithmic route
// computation with a flat array index. A Table implements Algorithm and
// is byte-for-byte faithful to the algorithm it was built from — the
// same ports, the same ok results — so precomputation cannot perturb
// simulation results (pinned by TestTablePrecomputeMatchesAlgorithm).
type Table struct {
	base  Algorithm
	nodes int
	ports []int8 // [cur*nodes+dst], noPort when !ok
}

// Precompute builds the next-port table for alg over t, returning an
// error when the algorithm emits a port outside the table's int8 range.
// Passing an existing *Table returns it unchanged, so wrapping is
// idempotent.
func Precompute(t *topology.Topology, alg Algorithm) (*Table, error) {
	if tb, ok := alg.(*Table); ok {
		return tb, nil
	}
	n := t.NumNodes()
	tb := &Table{base: alg, nodes: n, ports: make([]int8, n*n)}
	for cur := 0; cur < n; cur++ {
		row := tb.ports[cur*n : (cur+1)*n]
		for dst := 0; dst < n; dst++ {
			p, ok := alg.NextPort(t, cur, dst)
			if !ok {
				row[dst] = noPort
				continue
			}
			if p < 0 || p > 127 {
				return nil, fmt.Errorf("routing: %s port %d at node %d out of table range", alg.Name(), p, cur)
			}
			row[dst] = int8(p)
		}
	}
	return tb, nil
}

// Name returns the underlying algorithm's name.
func (tb *Table) Name() string { return tb.base.Name() }

// Base returns the algorithm the table was precomputed from.
func (tb *Table) Base() Algorithm { return tb.base }

// NextPort is a flat table lookup; the topology argument is ignored (the
// table was built for exactly one topology).
func (tb *Table) NextPort(_ *topology.Topology, cur, dst topology.NodeID) (int, bool) {
	p := tb.ports[cur*tb.nodes+dst]
	if p == noPort {
		return 0, false
	}
	return int(p), true
}

package routing

import (
	"fmt"

	"nucanet/internal/topology"
)

// ChannelRank assigns the directed link leaving node `from` through `port`
// a unique rank such that every XYX route follows strictly increasing
// ranks — the total channel order that makes XYX deadlock-free (the
// generalization of the paper's Figure 5(b) enumeration to any mesh size).
//
// Rank classes, low to high:
//
//	Y- channels (toward row 0): within a column, rank grows upward.
//	Row-0 X channels: eastbound ranks grow eastward, westbound westward.
//	Y+ channels (away from row 0): within a column, rank grows downward.
//
// An upward route (Y- then X in row 0) and a downward route (X in row 0
// then Y+) both climb the order; no cyclic channel dependency can form.
func ChannelRank(t *topology.Topology, from topology.NodeID, port int) (int, error) {
	if !t.HasGrid() {
		return 0, fmt.Errorf("routing: ChannelRank needs a full W x H grid, %s has none", t.Name)
	}
	n := t.Nodes[from]
	w, h := t.W, t.H
	baseX := w * h           // after all Y- ranks
	baseYPlus := baseX + 2*w // after all row-0 X ranks
	switch port {
	case topology.PortNorth: // Y-: (x,y) -> (x,y-1)
		if n.Y == 0 {
			return 0, fmt.Errorf("routing: no Y- channel leaving row 0")
		}
		return n.X*h + (h - n.Y), nil
	case topology.PortEast:
		if n.Y != 0 {
			return 0, fmt.Errorf("routing: X channel outside row 0 at (%d,%d)", n.X, n.Y)
		}
		return baseX + n.X, nil
	case topology.PortWest:
		if n.Y != 0 {
			return 0, fmt.Errorf("routing: X channel outside row 0 at (%d,%d)", n.X, n.Y)
		}
		return baseX + w + (w - 1 - n.X), nil
	case topology.PortSouth: // Y+: (x,y) -> (x,y+1)
		return baseYPlus + n.X*h + n.Y, nil
	}
	return 0, fmt.Errorf("routing: unknown port %d", port)
}

package sim

import "testing"

// burst is a component that stays active for a fixed number of cycles.
type burst struct{ left int }

func (b *burst) Tick(now int64) bool {
	b.left--
	return b.left > 0
}

func TestObserverSamplesAndParks(t *testing.T) {
	k := NewKernel()
	b := &burst{left: 100}
	id := k.Register(b)
	k.Activate(id)

	var at []int64
	o := Observe(k, 10, func(now int64) { at = append(at, now) })

	cycles, idle := k.Run(1 << 20)
	if !idle {
		t.Fatalf("kernel did not go idle (ran %d cycles): observer must park", cycles)
	}
	// The burst runs cycles 1..100; samples land on 10, 20, ..., and one
	// final sample after the burst drains (at which point the observer
	// parks instead of re-arming).
	if len(at) < 10 || len(at) > 11 {
		t.Fatalf("sampled %d times at %v, want 10-11 samples", len(at), at)
	}
	for i, c := range at {
		if want := int64(10 * (i + 1)); c != want {
			t.Fatalf("sample %d at cycle %d, want %d", i, c, want)
		}
	}
	if o.Samples() != uint64(len(at)) {
		t.Fatalf("Samples() = %d, want %d", o.Samples(), len(at))
	}
}

func TestObserverDoesNotBlockIdleKernel(t *testing.T) {
	k := NewKernel()
	fired := 0
	Observe(k, 5, func(int64) { fired++ })
	// Nothing else registered: the observer's first tick finds the
	// kernel otherwise idle and parks immediately.
	if cycles, idle := k.Run(1 << 20); !idle || cycles != 5 {
		t.Fatalf("run = (%d, %v), want idle after the single cycle-5 sample", cycles, idle)
	}
	if fired != 1 {
		t.Fatalf("observer fired %d times, want 1", fired)
	}
}

func TestObserverBadPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Observe(k, 0, ...) must panic")
		}
	}()
	Observe(NewKernel(), 0, func(int64) {})
}

// Parallel sweep infrastructure. One simulation run is strictly
// sequential (the kernel is single-threaded by design), but independent
// runs share nothing — each owns its kernel, RNG streams, and stats — so
// a sweep of runs is embarrassingly parallel. ParMap is the bounded
// fan-out primitive the experiment engine (internal/core) and the CMP
// driver (internal/cmp) build on.
package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ParMap runs fn(0..n-1) on a bounded pool of worker goroutines and
// returns the results in index (submission) order. workers <= 0 selects
// runtime.GOMAXPROCS(0); workers == 1 degenerates to a plain sequential
// loop on the calling goroutine, which is the reference execution the
// determinism tests compare the pool against.
//
// Determinism contract: fn must not share mutable state across indices.
// Output placement is by index, so result order never depends on
// completion order. If any fn errors, ParMap returns the error with the
// lowest index — the same error a sequential loop would surface first —
// and a nil slice.
func ParMap[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// TimedParMap is ParMap plus per-index wall-clock accounting: it returns
// each fn call's duration (submission order) and the total wall time of
// the whole map. Work/Wall is the observed parallel speedup.
func TimedParMap[T any](workers, n int, fn func(i int) (T, error)) (out []T, durs []time.Duration, wall time.Duration, err error) {
	durs = make([]time.Duration, n)
	start := time.Now()
	out, err = ParMap(workers, n, func(i int) (T, error) {
		t0 := time.Now()
		v, err := fn(i)
		durs[i] = time.Since(t0)
		return v, err
	})
	return out, durs, time.Since(start), err
}

package sim

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64). All stochastic behaviour in the simulator flows from
// seeded RNG instances so identical seeds yield identical runs.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0,n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Fork derives an independent generator; used to give each subsystem its
// own stream so adding draws in one place does not perturb another.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1b54a32d192ed03)
}

package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// scriptComp drives a deterministic mix of every kernel interaction —
// self-reactivation, neighbor activation (cross-shard when the
// neighbor lives elsewhere), timed self-wakeups, and deferred counter
// increments — while logging every tick it receives. Each component
// writes only its own log slot, so logs are race-free under any
// correct schedule.
type scriptComp struct {
	k       *Kernel
	id      int // logical index, not kernel id
	kid     int
	n       int
	peers   []*scriptComp
	log     []string
	counter *int
}

func (c *scriptComp) Tick(now int64) bool {
	c.log = append(c.log, fmt.Sprintf("%d@%d", c.id, now))
	if (now+int64(c.id))%3 == 0 {
		c.k.Activate(c.peers[(c.id+1)%c.n].kid)
	}
	if (now+int64(c.id))%5 == 0 {
		c.k.WakeAt(now+3+int64(c.id%4), c.kid)
	}
	c.k.DeferIncr(c.counter)
	return (now+int64(c.id))%2 == 0
}

// buildScript registers n scripted components: on a sequential kernel
// all together, on a sharded kernel round-robin across the shard
// facades so activations constantly cross shards.
func buildScript(root *Kernel, n, shards int) ([]*scriptComp, *int) {
	counter := new(int)
	comps := make([]*scriptComp, n)
	for i := range comps {
		k := root
		if shards > 1 {
			k = root.ShardFacade(i % shards)
		}
		comps[i] = &scriptComp{k: k, id: i, n: n, counter: counter}
		comps[i].kid = k.Register(comps[i])
	}
	for _, c := range comps {
		c.peers = comps
	}
	return comps, counter
}

// TestShardedKernelMatchesSequential runs the same component script on
// the sequential kernel and on sharded kernels (inline and forced-
// parallel, several shard counts) and requires identical tick logs,
// clocks, tick totals, and deferred-counter results.
func TestShardedKernelMatchesSequential(t *testing.T) {
	const n = 12
	run := func(root *Kernel, shards int, parallel bool) ([][]string, int, int64, uint64, int64, bool) {
		comps, counter := buildScript(root, n, shards)
		root.SetParallel(parallel)
		root.Activate(comps[0].kid)
		root.Activate(comps[n/2].kid)
		cycles, idle := root.Run(400)
		logs := make([][]string, n)
		for i, c := range comps {
			logs[i] = c.log
		}
		return logs, *counter, root.Now(), root.Ticks(), cycles, idle
	}
	wantLogs, wantCounter, wantNow, wantTicks, wantCycles, wantIdle := run(NewKernel(), 1, false)
	if wantTicks == 0 {
		t.Fatal("sequential reference did no work")
	}
	for _, shards := range []int{2, 3, 4} {
		for _, parallel := range []bool{false, true} {
			name := fmt.Sprintf("shards=%d/parallel=%v", shards, parallel)
			logs, counter, now, ticks, cycles, idle := run(NewShardedKernel(shards), shards, parallel)
			if !reflect.DeepEqual(logs, wantLogs) {
				t.Errorf("%s: tick logs diverge from sequential", name)
			}
			if counter != wantCounter || now != wantNow || ticks != wantTicks ||
				cycles != wantCycles || idle != wantIdle {
				t.Errorf("%s: (counter,now,ticks,cycles,idle)=(%d,%d,%d,%d,%v), want (%d,%d,%d,%d,%v)",
					name, counter, now, ticks, cycles, idle,
					wantCounter, wantNow, wantTicks, wantCycles, wantIdle)
			}
		}
	}
}

// TestShardedStepAndRunUntilMatchRun pins that the inline window paths
// (Step, RunUntil — what the fleet's lockstep schedule uses) execute
// the same schedule as Run.
func TestShardedStepAndRunUntilMatchRun(t *testing.T) {
	const n = 8
	ref := NewShardedKernel(2)
	refComps, refCounter := buildScript(ref, n, 2)
	ref.Activate(refComps[0].kid)
	ref.Run(200)

	k := NewShardedKernel(2)
	comps, counter := buildScript(k, n, 2)
	k.Activate(comps[0].kid)
	for horizon := int64(10); ; horizon += 10 {
		if k.RunUntil(horizon) {
			break
		}
	}
	if k.Now() != ref.Now() || *counter != *refCounter || k.Ticks() != ref.Ticks() {
		t.Errorf("RunUntil: (now,counter,ticks)=(%d,%d,%d), Run got (%d,%d,%d)",
			k.Now(), *counter, k.Ticks(), ref.Now(), *refCounter, ref.Ticks())
	}
	for i := range comps {
		if !reflect.DeepEqual(comps[i].log, refComps[i].log) {
			t.Fatalf("RunUntil: component %d log diverges", i)
		}
	}
}

// orderedComp appends to a log shared with a cut peer on another shard
// — safe only because the wavefront cut waits order the two ticks. The
// race detector turns any ordering hole into a failure.
type orderedComp struct {
	kid int
	tag string
	log *[]string
}

func (c *orderedComp) Tick(now int64) bool {
	*c.log = append(*c.log, fmt.Sprintf("%s@%d", c.tag, now))
	return true
}

// TestShardedWavefrontOrdersCutPeers forces the parallel worker path
// and checks that a cut pair ticks in ascending id order within every
// cycle, via a shared log that is only race-free when the wavefront
// holds.
func TestShardedWavefrontOrdersCutPeers(t *testing.T) {
	root := NewShardedKernel(2)
	root.SetParallel(true)
	var log []string
	a := &orderedComp{tag: "a", log: &log}
	b := &orderedComp{tag: "b", log: &log}
	a.kid = root.ShardFacade(0).Register(a)
	b.kid = root.ShardFacade(1).Register(b)
	root.SetCutWaits(a.kid, nil) // publisher only
	root.SetCutWaits(b.kid, []CutWait{{Shard: 0, Kid: a.kid}})
	root.Activate(a.kid)
	root.Activate(b.kid)
	const cycles = 200
	root.Run(cycles)
	if len(log) != 2*cycles {
		t.Fatalf("log has %d entries, want %d", len(log), 2*cycles)
	}
	for i := 0; i < len(log); i += 2 {
		now := int64(i/2 + 1)
		if want := fmt.Sprintf("a@%d", now); log[i] != want {
			t.Fatalf("entry %d = %q, want %q", i, log[i], want)
		}
		if want := fmt.Sprintf("b@%d", now); log[i+1] != want {
			t.Fatalf("entry %d = %q, want %q", i+1, log[i+1], want)
		}
	}
}

// TestShardedKernelIdleSkip checks that the sharded clock jumps over
// dead cycles to the earliest event across all shards, like the
// sequential kernel.
func TestShardedKernelIdleSkip(t *testing.T) {
	root := NewShardedKernel(2)
	var log []string
	a := &orderedComp{tag: "a", log: &log}
	a.kid = root.ShardFacade(0).Register(a)
	done := &orderedComp{tag: "b", log: &log}
	done.kid = root.ShardFacade(1).Register(done)
	root.ShardFacade(0).WakeAt(100, a.kid)
	root.ShardFacade(1).WakeAt(400, done.kid)
	if t0, ok := root.NextTime(); !ok || t0 != 100 {
		t.Fatalf("NextTime = %d,%v want 100,true", t0, ok)
	}
	if !root.Step() {
		t.Fatal("Step: idle")
	}
	if root.Now() != 100 {
		t.Fatalf("Now = %d after first step, want 100", root.Now())
	}
}

package sim

import (
	"testing"
	"testing/quick"
)

// counter ticks n times then parks.
type counter struct {
	k     *Kernel
	id    int
	left  int
	ticks []int64
}

func (c *counter) Tick(now int64) bool {
	c.ticks = append(c.ticks, now)
	c.left--
	return c.left > 0
}

func TestKernelTicksInOrder(t *testing.T) {
	k := NewKernel()
	var order []int
	mk := func(tag int) int {
		c := &fnComp{f: func(now int64) bool {
			order = append(order, tag)
			return false
		}}
		return k.Register(c)
	}
	a := mk(0)
	b := mk(1)
	c := mk(2)
	// Activate out of order; ticks must happen in id order.
	k.Activate(c)
	k.Activate(a)
	k.Activate(b)
	if !k.Step() {
		t.Fatal("expected a step")
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("tick order = %v, want [0 1 2]", order)
	}
	if got := k.Now(); got != 1 {
		t.Fatalf("Now = %d, want 1", got)
	}
}

type fnComp struct{ f func(int64) bool }

func (c *fnComp) Tick(now int64) bool { return c.f(now) }

func TestKernelSelfReschedule(t *testing.T) {
	k := NewKernel()
	c := &counter{left: 5}
	c.id = k.Register(c)
	k.Activate(c.id)
	cycles, idle := k.Run(100)
	if !idle {
		t.Fatal("kernel should go idle")
	}
	if cycles != 5 {
		t.Fatalf("cycles = %d, want 5", cycles)
	}
	want := []int64{1, 2, 3, 4, 5}
	for i, w := range want {
		if c.ticks[i] != w {
			t.Fatalf("ticks = %v, want %v", c.ticks, want)
		}
	}
}

func TestKernelTimeSkip(t *testing.T) {
	k := NewKernel()
	c := &counter{left: 1}
	c.id = k.Register(c)
	k.WakeAt(1000, c.id)
	if !k.Step() {
		t.Fatal("expected a step")
	}
	if k.Now() != 1000 {
		t.Fatalf("Now = %d, want 1000 (time skip)", k.Now())
	}
	if len(c.ticks) != 1 || c.ticks[0] != 1000 {
		t.Fatalf("ticks = %v, want [1000]", c.ticks)
	}
	if k.Step() {
		t.Fatal("kernel should be idle after the only event")
	}
}

func TestKernelWakeAtPastActivatesNext(t *testing.T) {
	k := NewKernel()
	c := &counter{left: 1}
	c.id = k.Register(c)
	k.Activate(c.id)
	k.Step() // now = 1
	k.WakeAt(0, c.id)
	c.left = 1
	if !k.Step() {
		t.Fatal("expected a step")
	}
	if k.Now() != 2 {
		t.Fatalf("Now = %d, want 2", k.Now())
	}
}

func TestKernelDuplicateActivationCoalesces(t *testing.T) {
	k := NewKernel()
	c := &counter{left: 10}
	c.id = k.Register(c)
	k.Activate(c.id)
	k.Activate(c.id)
	k.WakeAt(1, c.id)
	k.Step()
	if len(c.ticks) != 1 {
		t.Fatalf("component ticked %d times in one cycle, want 1", len(c.ticks))
	}
}

func TestKernelDeferRunsAfterTicks(t *testing.T) {
	k := NewKernel()
	var log []string
	a := k.Register(&fnComp{f: func(now int64) bool {
		log = append(log, "tick-a")
		k.Defer(func() { log = append(log, "defer-a") })
		return false
	}})
	b := k.Register(&fnComp{f: func(now int64) bool {
		log = append(log, "tick-b")
		return false
	}})
	k.Activate(a)
	k.Activate(b)
	k.Step()
	want := []string{"tick-a", "tick-b", "defer-a"}
	if len(log) != len(want) {
		t.Fatalf("log = %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

func TestKernelEventOrderingStable(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 8; i++ {
		tag := i
		id := k.Register(&fnComp{f: func(now int64) bool {
			order = append(order, tag)
			return false
		}})
		k.WakeAt(7, id)
	}
	k.Step()
	for i := 0; i < 8; i++ {
		if order[i] != i {
			t.Fatalf("same-cycle events out of id order: %v", order)
		}
	}
}

func TestKernelRunBudget(t *testing.T) {
	k := NewKernel()
	c := &counter{left: 1 << 30}
	c.id = k.Register(c)
	k.Activate(c.id)
	cycles, idle := k.Run(50)
	if idle {
		t.Fatal("should not go idle")
	}
	if cycles != 50 {
		t.Fatalf("cycles = %d, want 50", cycles)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint8) bool {
		m := int(n%100) + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGForkIndependent(t *testing.T) {
	r := NewRNG(1)
	f1 := r.Fork()
	r2 := NewRNG(1)
	_ = r2.Fork()
	// After forking, the parents must continue identically.
	if r.Uint64() != r2.Uint64() {
		t.Fatal("fork must not desync the parent beyond the fork draw")
	}
	_ = f1
}

func TestRNGIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}

package sim

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestParMapOrderIndependentOfCompletion(t *testing.T) {
	// A barrier forces all workers to finish out of submission order if
	// placement depended on completion; index placement must still win.
	const n = 64
	out, err := ParMap(8, n, func(i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("len = %d, want %d", len(out), n)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestParMapSequentialMatchesParallel(t *testing.T) {
	fn := func(i int) (int, error) { return 31*i + 7, nil }
	seq, err := ParMap(1, 100, fn)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ParMap(8, 100, fn)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("index %d: sequential %d != parallel %d", i, seq[i], par[i])
		}
	}
}

func TestParMapFirstErrorByIndex(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	for _, workers := range []int{1, 8} {
		out, err := ParMap(workers, 32, func(i int) (int, error) {
			switch i {
			case 5:
				return 0, errLow
			case 20:
				return 0, errHigh
			}
			return i, nil
		})
		if !errors.Is(err, errLow) {
			t.Errorf("workers=%d: err = %v, want the lowest-index error", workers, err)
		}
		if out != nil {
			t.Errorf("workers=%d: out = %v, want nil on error", workers, out)
		}
	}
}

func TestParMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	var mu sync.Mutex
	_, err := ParMap(workers, 50, func(i int) (int, error) {
		c := cur.Add(1)
		mu.Lock()
		if c > peak.Load() {
			peak.Store(c)
		}
		mu.Unlock()
		defer cur.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent calls, want <= %d", p, workers)
	}
}

func TestParMapZeroAndEmpty(t *testing.T) {
	out, err := ParMap(0, 0, func(int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty map: out=%v err=%v", out, err)
	}
}

func TestTimedParMapAccounts(t *testing.T) {
	out, durs, wall, err := TimedParMap(4, 10, func(i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 10 || len(durs) != 10 {
		t.Fatalf("lengths: out=%d durs=%d", len(out), len(durs))
	}
	if wall < 0 {
		t.Fatalf("negative wall time %v", wall)
	}
}

// Package sim provides a deterministic, activity-driven cycle simulation
// kernel. Components register with a Kernel and are ticked only on cycles
// where they have work; cycles with no active component are skipped by
// jumping the clock to the next scheduled event. This keeps long memory
// latencies (hundreds of idle cycles) free.
//
// Determinism: components are ticked in ascending registration order, flits
// carry arrival stamps so a flit moves at most one hop per cycle regardless
// of tick order, and all randomness flows from the seeded RNG in this
// package.
//
// Concurrency: a Kernel is single-threaded — one goroutine drives Step/Run
// and every component it ticks. Kernels hold no package-level state, so
// independent Kernels on different goroutines (see ParMap) share nothing.
package sim

import (
	"container/heap"
	"sort"
)

// Component is anything the kernel can tick once per active cycle.
// Tick returns true if the component wants to be ticked on the next cycle
// as well (it still has queued work); returning false parks it until it is
// re-activated by an event or by another component.
type Component interface {
	Tick(now int64) bool
}

// event wakes a component at a fixed future cycle.
type event struct {
	at  int64
	seq int // tie-break for determinism
	id  int
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h eventHeap) peek() (int64, bool) { // earliest event time
	if len(h) == 0 {
		return 0, false
	}
	return h[0].at, true
}

// Kernel drives registered components cycle by cycle.
// The zero value is not usable; call NewKernel.
type Kernel struct {
	now     int64
	comps   []Component
	pending []bool // comps scheduled for the next cycle
	next    []int  // ids scheduled for the next cycle (unsorted)
	events  eventHeap
	defers  []func()
	seq     int
	ticks   uint64
}

// NewKernel returns an empty kernel at cycle 0.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Register adds a component and returns its id. Ids order ticking within a
// cycle; register in a stable order for reproducible runs.
func (k *Kernel) Register(c Component) int {
	id := len(k.comps)
	k.comps = append(k.comps, c)
	k.pending = append(k.pending, false)
	return id
}

// Now returns the current cycle.
func (k *Kernel) Now() int64 { return k.now }

// Ticks returns the total number of component ticks executed, a measure of
// simulation work (not wall time).
func (k *Kernel) Ticks() uint64 { return k.ticks }

// Activate schedules component id to tick on the next cycle. Safe to call
// from inside a Tick. Duplicate activations coalesce.
func (k *Kernel) Activate(id int) {
	if !k.pending[id] {
		k.pending[id] = true
		k.next = append(k.next, id)
	}
}

// WakeAt schedules component id to tick at cycle t. If t is not in the
// future the component is activated for the next cycle instead.
func (k *Kernel) WakeAt(t int64, id int) {
	if t <= k.now {
		k.Activate(id)
		return
	}
	k.seq++
	heap.Push(&k.events, event{at: t, seq: k.seq, id: id})
}

// Defer runs f after all components have ticked in the current cycle.
// Used to commit state (e.g. returned credits) that must only become
// visible on the following cycle.
func (k *Kernel) Defer(f func()) {
	k.defers = append(k.defers, f)
}

// Idle reports whether no component is scheduled and no event is pending.
func (k *Kernel) Idle() bool {
	return len(k.next) == 0 && len(k.events) == 0
}

// Step advances the clock to the next cycle with work and ticks every
// scheduled component in id order. It returns false when the kernel is
// idle (nothing will ever run again without external scheduling).
func (k *Kernel) Step() bool {
	if k.Idle() {
		return false
	}
	// Decide the next cycle: now+1 if anything is scheduled for it,
	// otherwise jump to the earliest event.
	target := k.now + 1
	if len(k.next) == 0 {
		if t, ok := k.events.peek(); ok {
			target = t
		}
	}
	k.now = target

	cur := k.next
	k.next = nil
	for _, id := range cur {
		k.pending[id] = false
	}
	// Pull in events due now.
	for len(k.events) > 0 && k.events[0].at <= k.now {
		ev := heap.Pop(&k.events).(event)
		if !k.pending[ev.id] {
			cur = append(cur, ev.id)
		}
	}
	sort.Ints(cur)
	prev := -1
	for _, id := range cur {
		if id == prev { // dedupe (event + activation overlap)
			continue
		}
		prev = id
		k.ticks++
		if k.comps[id].Tick(k.now) {
			k.Activate(id)
		}
	}
	if len(k.defers) > 0 {
		for _, f := range k.defers {
			f()
		}
		k.defers = k.defers[:0]
	}
	return true
}

// Run steps until the kernel is idle or maxCycles cycles have elapsed.
// It returns the number of cycles simulated and whether the kernel went
// idle (false means the budget was exhausted first).
func (k *Kernel) Run(maxCycles int64) (cycles int64, idle bool) {
	start := k.now
	limit := start + maxCycles
	for k.now < limit {
		if !k.Step() {
			return k.now - start, true
		}
	}
	return k.now - start, false
}

// Package sim provides a deterministic, activity-driven cycle simulation
// kernel. Components register with a Kernel and are ticked only on cycles
// where they have work; cycles with no active component are skipped by
// jumping the clock to the next scheduled event. This keeps long memory
// latencies (hundreds of idle cycles) free.
//
// Determinism: components are ticked in ascending registration order, flits
// carry arrival stamps so a flit moves at most one hop per cycle regardless
// of tick order, and all randomness flows from the seeded RNG in this
// package.
//
// Concurrency: a Kernel is single-threaded — one goroutine drives Step/Run
// and every component it ticks. Kernels hold no package-level state, so
// independent Kernels on different goroutines (see ParMap) share nothing.
//
// The kernel's inner loop is allocation-free in steady state: the event
// heap is a typed slice (no interface boxing), the scheduled-id lists are
// double-buffered across cycles, and deferred credit returns go through
// DeferIncr, which records a pointer instead of capturing a closure. The
// root-level allocation guards pin this.
package sim

import "sort"

// Component is anything the kernel can tick once per active cycle.
// Tick returns true if the component wants to be ticked on the next cycle
// as well (it still has queued work); returning false parks it until it is
// re-activated by an event or by another component.
type Component interface {
	Tick(now int64) bool
}

// event wakes a component at a fixed future cycle.
type event struct {
	at  int64
	seq int // tie-break for determinism
	id  int
}

// eventHeap is a binary min-heap ordered by (at, seq). It is maintained
// with inline sift operations rather than container/heap so pushes and
// pops move typed values, never boxing through `any`.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && s.less(l, small) {
			small = l
		}
		if r < n && s.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		s[i], s[small] = s[small], s[i]
		i = small
	}
	return top
}

func (h eventHeap) peek() (int64, bool) { // earliest event time
	if len(h) == 0 {
		return 0, false
	}
	return h[0].at, true
}

// Kernel drives registered components cycle by cycle.
// The zero value is not usable; call NewKernel.
//
// A Kernel is either sequential (NewKernel) or a facade over a sharded
// kernel (NewShardedKernel): when sh is non-nil every method forwards
// to the shared sharded state, tagged with the facade's home shard, and
// the plain fields below stay nil. The sequential hot path pays one
// nil check per call.
type Kernel struct {
	now     int64
	comps   []Component
	pending []bool // comps scheduled for the next cycle
	next    []int  // ids scheduled for the next cycle (unsorted)
	spare   []int  // retired cycle list, reused as the following next
	events  eventHeap
	defers  []func()
	incrs   []*int // deferred counter increments (see DeferIncr)
	seq     int
	ticks   uint64

	sh    *sharded // nil for a sequential kernel
	shard int32    // home shard of this facade; -1 = root (see shard.go)
}

// NewKernel returns an empty kernel at cycle 0.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Register adds a component and returns its id. Ids order ticking within a
// cycle; register in a stable order for reproducible runs.
func (k *Kernel) Register(c Component) int {
	if k.sh != nil {
		return k.sh.register(k.shard, c)
	}
	id := len(k.comps)
	k.comps = append(k.comps, c)
	k.pending = append(k.pending, false)
	return id
}

// Now returns the current cycle.
func (k *Kernel) Now() int64 {
	if k.sh != nil {
		return k.sh.now
	}
	return k.now
}

// Ticks returns the total number of component ticks executed, a measure of
// simulation work (not wall time).
func (k *Kernel) Ticks() uint64 {
	if k.sh != nil {
		return k.sh.ticksTotal()
	}
	return k.ticks
}

// Activate schedules component id to tick on the next cycle. Safe to call
// from inside a Tick. Duplicate activations coalesce.
func (k *Kernel) Activate(id int) {
	if k.sh != nil {
		k.sh.activate(k.shard, id)
		return
	}
	if !k.pending[id] {
		k.pending[id] = true
		k.next = append(k.next, id)
	}
}

// WakeAt schedules component id to tick at cycle t. If t is not in the
// future the component is activated for the next cycle instead.
func (k *Kernel) WakeAt(t int64, id int) {
	if k.sh != nil {
		k.sh.wakeAt(k.shard, t, id)
		return
	}
	if t <= k.now {
		k.Activate(id)
		return
	}
	k.seq++
	k.events.push(event{at: t, seq: k.seq, id: id})
}

// Defer runs f after all components have ticked in the current cycle.
// Used to commit state that must only become visible on the following
// cycle. Each call captures a closure; hot paths deferring a bare counter
// bump should use DeferIncr instead.
func (k *Kernel) Defer(f func()) {
	if k.sh != nil {
		st := &k.sh.st[k.shard+1]
		st.defers = append(st.defers, f)
		return
	}
	k.defers = append(k.defers, f)
}

// DeferIncr increments *ctr after all components have ticked in the
// current cycle — the allocation-free form of Defer for credit returns
// and similar end-of-cycle counter commits.
func (k *Kernel) DeferIncr(ctr *int) {
	if k.sh != nil {
		st := &k.sh.st[k.shard+1]
		st.incrs = append(st.incrs, ctr)
		return
	}
	k.incrs = append(k.incrs, ctr)
}

// Idle reports whether no component is scheduled and no event is pending.
func (k *Kernel) Idle() bool {
	if k.sh != nil {
		return k.sh.idle()
	}
	return len(k.next) == 0 && len(k.events) == 0
}

// Step advances the clock to the next cycle with work and ticks every
// scheduled component in id order. It returns false when the kernel is
// idle (nothing will ever run again without external scheduling).
func (k *Kernel) Step() bool {
	if k.sh != nil {
		return k.sh.step()
	}
	if k.Idle() {
		return false
	}
	// Decide the next cycle: now+1 if anything is scheduled for it,
	// otherwise jump to the earliest event.
	target := k.now + 1
	if len(k.next) == 0 {
		if t, ok := k.events.peek(); ok {
			target = t
		}
	}
	k.now = target

	cur := k.next
	k.next = k.spare[:0]
	for _, id := range cur {
		k.pending[id] = false
	}
	// Pull in events due now.
	for len(k.events) > 0 && k.events[0].at <= k.now {
		ev := k.events.pop()
		if !k.pending[ev.id] {
			cur = append(cur, ev.id)
		}
	}
	sort.Ints(cur)
	prev := -1
	for _, id := range cur {
		if id == prev { // dedupe (event + activation overlap)
			continue
		}
		prev = id
		k.ticks++
		if k.comps[id].Tick(k.now) {
			k.Activate(id)
		}
	}
	k.spare = cur[:0]
	if len(k.incrs) > 0 {
		for _, ctr := range k.incrs {
			(*ctr)++
		}
		k.incrs = k.incrs[:0]
	}
	if len(k.defers) > 0 {
		for _, f := range k.defers {
			f()
		}
		k.defers = k.defers[:0]
	}
	return true
}

// NextTime returns the next cycle at which the kernel has work: now+1 when
// a component is scheduled for the coming cycle, otherwise the earliest
// pending event time. ok is false when the kernel is idle.
func (k *Kernel) NextTime() (t int64, ok bool) {
	if k.sh != nil {
		return k.sh.nextTime()
	}
	if len(k.next) > 0 {
		return k.now + 1, true
	}
	return k.events.peek()
}

// RunUntil steps while the next cycle with work is <= horizon, then stops.
// It returns true when the kernel went idle (nothing will ever run again
// without external scheduling). Stepping in bounded horizons lets a caller
// advance many independent kernels in lockstep windows — the fleet
// evaluator's bulk-synchronous schedule — without perturbing per-kernel
// event order: each kernel executes exactly the cycles Run would.
func (k *Kernel) RunUntil(horizon int64) (idle bool) {
	for {
		t, ok := k.NextTime()
		if !ok {
			return true
		}
		if t > horizon {
			return false
		}
		k.Step()
	}
}

// Run steps until the kernel is idle or maxCycles cycles have elapsed.
// It returns the number of cycles simulated and whether the kernel went
// idle (false means the budget was exhausted first).
func (k *Kernel) Run(maxCycles int64) (cycles int64, idle bool) {
	if k.sh != nil {
		return k.sh.run(maxCycles)
	}
	start := k.now
	limit := start + maxCycles
	for k.now < limit {
		if !k.Step() {
			return k.now - start, true
		}
	}
	return k.now - start, false
}

package sim

// Observer invokes a callback every fixed number of cycles while the
// kernel still has other work — the substrate for telemetry time-series
// sampling (queue occupancy, in-flight operations). It is a passive
// component: the callback must only read simulation state, never mutate
// it, so an observed run is cycle-for-cycle identical to an unobserved
// one.
//
// An observer re-arms itself only while some other component or event is
// still scheduled; once the rest of the kernel drains it parks, so
// Run/Drain loops that wait for idleness still terminate. Register the
// observer after every working component (ids order ticking within a
// cycle) so its idle check sees the cycle's final scheduling state.
type Observer struct {
	k     *Kernel
	kid   int
	every int64
	fn    func(now int64)
	n     uint64
}

// Observe registers a periodic observer that calls fn every `every`
// cycles, first at Now()+every.
func Observe(k *Kernel, every int64, fn func(now int64)) *Observer {
	if every <= 0 {
		panic("sim: observer period must be positive")
	}
	o := &Observer{k: k, every: every, fn: fn}
	o.kid = k.Register(o)
	k.WakeAt(k.Now()+every, o.kid)
	return o
}

// Samples returns how many times the callback has fired.
func (o *Observer) Samples() uint64 { return o.n }

// Tick samples and re-arms unless the observer is the only thing left
// keeping the kernel alive.
func (o *Observer) Tick(now int64) bool {
	o.n++
	o.fn(now)
	if o.k.Idle() {
		return false // everything else drained; let the kernel go idle
	}
	o.k.WakeAt(now+o.every, o.kid)
	return false
}

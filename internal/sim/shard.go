package sim

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// This file implements the sharded kernel: one simulation advanced by N
// goroutines with results bit-identical to the sequential Kernel.
//
// Execution model. Components are split into shard components (routers,
// registered through a ShardFacade) and root components (protocol
// agents, controller, memory, CPU, observer — registered through the
// root facade). Each active cycle is one *window* with two phases:
//
//   Phase 1 (parallel): every shard sweeps its due components in
//   ascending id order. Cut-adjacent routers on different shards are
//   pairwise ordered by a wavefront protocol (see CutWait): each shard
//   publishes its sweep progress through an atomic mark, and a cut
//   router spins until every lower-id cut peer's shard has swept past
//   that peer. Cross-shard effects that must not act until the cycle
//   completes — activations of another shard's components, endpoint
//   deliveries, deferred credit increments — are staged in per-shard
//   lists instead of applied in place.
//
//   Phase 2 (the driving goroutine, after a barrier): staged
//   activations drain in shard order, the window hook (the network's
//   staged-delivery flush) runs, root components due this cycle tick in
//   ascending id order, and the per-shard DeferIncr/Defer lists apply —
//   shards first, root last, matching the sequential kernel's
//   everything-ticks-then-commits order.
//
// Why this is bit-identical to the sequential kernel: within a cycle
// the sequential kernel ticks all due components in ascending global id
// order. Shard components (router ids) all precede root components
// (registered later), so phase 1 + phase 2 preserves the global order
// across the two groups. Within phase 1, routers only interact with
// link neighbors, every cross-shard link is a cut, and the wavefront
// wait enforces exactly the ascending-id order for each cut-adjacent
// pair — the only cross-shard orderings that matter. Staged effects are
// drained in a fixed order that reproduces the sequential outcome:
// activations target the next cycle in both schedules, deliveries
// replay in ejecting-router id order (see internal/network), and
// increments commute. Packets injected during phase 2 land in router
// queues with arrival stamps that the engines' pipeline gating
// (arrived + Stages > now, Stages >= 1) makes non-actionable until the
// next cycle, exactly as a packet injected mid-sweep sequentially.
//
// Windows and idle skipping: like the sequential kernel, the sharded
// kernel only simulates active cycles — nextTime scans all shards'
// schedules and the clock jumps to the earliest. Cross-shard links of
// >= 1 cycle latency (topology.Plan.MinCutDelay) are what make a
// single-cycle conservative window sufficient: no shard can observe
// another's same-cycle state except through the cut links the wavefront
// already orders.
//
// Step and RunUntil execute windows inline on the calling goroutine
// (phase 1 becomes a merge-walk of the shard schedules in ascending id
// order — literally the sequential order, no cut waits needed). Run
// spawns the worker pool when parallelism is available; the inline and
// parallel paths produce identical results by construction, so a
// single-CPU host or a lockstep caller (internal/fleet) silently gets
// the sequential schedule.

// CutWait names one cut-adjacent peer that must tick before the owning
// component within a cycle: the peer's shard must have swept past Kid
// (which is strictly lower than the owner's id) before the owner may
// tick. See Kernel.SetCutWaits.
type CutWait struct {
	Shard int // the peer's home shard
	Kid   int // the peer's kernel id; must be < the owner's id
}

// paddedProg keeps each shard's progress mark on its own cache line —
// workers hammer their own mark and spin on neighbors'.
type paddedProg struct {
	v atomic.Int64
	_ [56]byte
}

// shardState is one execution context's slice of kernel state. Index 0
// of sharded.st is the root context, index s+1 is shard s. All fields
// mirror the sequential Kernel's; cur/pos hold the in-flight cycle's
// sorted schedule, xact stages cross-shard activations.
type shardState struct {
	next   []int
	spare  []int
	cur    []int
	pos    int
	events eventHeap
	seq    int
	incrs  []*int
	defers []func()
	xact   []int
	ticks  uint64
}

// barrier is a sense-reversing spin barrier. wait returns once all
// parties have arrived; the spin yields the processor after a bounded
// number of iterations so oversubscribed hosts make progress.
type barrier struct {
	parties int32
	count   atomic.Int32
	sense   atomic.Uint32
}

func (b *barrier) wait() {
	gen := b.sense.Load()
	if b.count.Add(1) == b.parties {
		b.count.Store(0)
		b.sense.Add(1)
		return
	}
	for spins := 0; b.sense.Load() == gen; spins++ {
		if spins > 200 {
			runtime.Gosched()
		}
	}
}

// sharded is the shared state behind every facade of one sharded kernel.
type sharded struct {
	now     int64
	comps   []Component
	shardOf []int32 // comp id -> home shard; -1 = root
	pending []bool
	waits   [][]CutWait // comp id -> cut-wait list (nil for most)
	mark    []bool      // comp id publishes wavefront progress before ticking

	n     int          // shard count
	st    []shardState // [0] root, [1+s] shard s
	progs []paddedProg // per-shard wavefront marks

	facades  []*Kernel // [0] root, [1+s] shard s
	onWindow func(now int64)

	parallel bool // drive Run windows on worker goroutines
	inPhase1 bool // written by the coordinator between phases

	startB, endB barrier
	stop         bool
	workers      sync.WaitGroup
	started      bool
}

// NewShardedKernel returns the root facade of a kernel whose shard
// components execute on up to `shards` goroutines. Root-registered
// components behave exactly as on a sequential kernel; shard components
// are registered through ShardFacade. Results are bit-identical to
// NewKernel at any shard count. Parallel execution engages in Run when
// more than one CPU is available (override with SetParallel); Step and
// RunUntil always execute inline.
func NewShardedKernel(shards int) *Kernel {
	if shards < 1 {
		shards = 1
	}
	sh := &sharded{
		n:        shards,
		st:       make([]shardState, shards+1),
		progs:    make([]paddedProg, shards),
		parallel: runtime.GOMAXPROCS(0) > 1,
	}
	sh.facades = make([]*Kernel, shards+1)
	for i := range sh.facades {
		sh.facades[i] = &Kernel{sh: sh, shard: int32(i - 1)}
	}
	return sh.facades[0]
}

// Shards returns the kernel's shard count (1 for a sequential kernel).
func (k *Kernel) Shards() int {
	if k.sh == nil {
		return 1
	}
	return k.sh.n
}

// ShardFacade returns the facade components of shard s register
// through. Facades share one clock and id space; a component's facade
// determines which goroutine ticks it.
func (k *Kernel) ShardFacade(s int) *Kernel {
	if k.sh == nil {
		panic("sim: ShardFacade on a sequential kernel")
	}
	return k.sh.facades[s+1]
}

// SetParallel overrides whether Run drives windows on worker goroutines
// (the default is true when GOMAXPROCS > 1). Forcing it on lets race
// tests exercise the worker path on single-CPU hosts; results are
// identical either way.
func (k *Kernel) SetParallel(on bool) {
	if k.sh != nil {
		k.sh.parallel = on
	}
}

// ShardPhase reports whether the kernel is inside a window's parallel
// phase — the network's delivery wrapper stages endpoint deliveries
// during phase 1 and executes them inline otherwise.
func (k *Kernel) ShardPhase() bool {
	return k.sh != nil && k.sh.inPhase1
}

// SetCutWaits installs the within-cycle ordering constraints for one
// cut-adjacent shard component (see CutWait), and marks it as a
// wavefront publisher: its shard stores the component's id in the
// shard's progress mark before ticking it, so peers in other shards can
// order themselves against it — call with an empty wait list for a
// component that only needs to be waited *on*. Every peer must have a
// strictly lower kernel id and live on a different shard; sweeps tick
// ascending ids and only ever wait on lower ids, which keeps the
// wavefront deadlock-free. Call during construction, before the first
// Step/Run.
func (k *Kernel) SetCutWaits(kid int, waits []CutWait) {
	sh := k.sh
	if sh == nil {
		return
	}
	sh.mark[kid] = true
	own := sh.shardOf[kid]
	ws := append([]CutWait(nil), waits...)
	for _, w := range ws {
		if w.Kid >= kid {
			panic(fmt.Sprintf("sim: cut wait on %d >= owner %d", w.Kid, kid))
		}
		if int32(w.Shard) == own || w.Shard < 0 || w.Shard >= sh.n {
			panic(fmt.Sprintf("sim: cut wait for %d names shard %d (owner shard %d of %d)", kid, w.Shard, own, sh.n))
		}
	}
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].Shard != ws[j].Shard {
			return ws[i].Shard < ws[j].Shard
		}
		return ws[i].Kid < ws[j].Kid
	})
	sh.waits[kid] = ws
}

// SetOnWindow installs the window-boundary hook, run by the driving
// goroutine in phase 2 of every window after staged activations drain
// and before root components tick — the network flushes staged
// deliveries (and recycled packets) here.
func (k *Kernel) SetOnWindow(f func(now int64)) {
	if k.sh == nil {
		panic("sim: SetOnWindow on a sequential kernel")
	}
	k.sh.onWindow = f
}

func (sh *sharded) register(from int32, c Component) int {
	id := len(sh.comps)
	sh.comps = append(sh.comps, c)
	sh.shardOf = append(sh.shardOf, from)
	sh.pending = append(sh.pending, false)
	sh.waits = append(sh.waits, nil)
	sh.mark = append(sh.mark, false)
	return id
}

func (sh *sharded) activate(from int32, id int) {
	home := sh.shardOf[id]
	if from >= 0 && home != from {
		// Cross-shard activation from a phase-1 sweep: stage it in the
		// calling shard's list; the coordinator applies it at the window
		// boundary, targeting the next cycle just as a direct Activate
		// during a sequential sweep would.
		st := &sh.st[from+1]
		st.xact = append(st.xact, id)
		return
	}
	if !sh.pending[id] {
		sh.pending[id] = true
		st := &sh.st[home+1]
		st.next = append(st.next, id)
	}
}

func (sh *sharded) wakeAt(from int32, t int64, id int) {
	if t <= sh.now {
		sh.activate(from, id)
		return
	}
	home := sh.shardOf[id]
	if from >= 0 && home != from {
		// Never happens in the current system (audited: timed wakeups are
		// all self-wakes); staging timed cross-shard wakeups would need a
		// mailbox with the event payload, so fail loudly instead.
		panic("sim: cross-shard WakeAt from a shard sweep")
	}
	st := &sh.st[home+1]
	st.seq++
	st.events.push(event{at: t, seq: st.seq, id: id})
}

func (sh *sharded) idle() bool {
	for i := range sh.st {
		if len(sh.st[i].next) > 0 || len(sh.st[i].events) > 0 {
			return false
		}
	}
	return true
}

func (sh *sharded) nextTime() (int64, bool) {
	ok := false
	var best int64
	for i := range sh.st {
		st := &sh.st[i]
		if len(st.next) > 0 {
			return sh.now + 1, true
		}
		if t, e := st.events.peek(); e && (!ok || t < best) {
			best, ok = t, true
		}
	}
	return best, ok
}

func (sh *sharded) ticksTotal() uint64 {
	var total uint64
	for i := range sh.st {
		total += sh.st[i].ticks
	}
	return total
}

// collect snapshots context i's schedule for the current cycle into
// st.cur: the activation list plus events due now, sorted ascending —
// the sequential kernel's cur construction per context.
func (sh *sharded) collect(i int) {
	st := &sh.st[i]
	cur := st.next
	st.next = st.spare[:0]
	for _, id := range cur {
		sh.pending[id] = false
	}
	for len(st.events) > 0 && st.events[0].at <= sh.now {
		ev := st.events.pop()
		if !sh.pending[ev.id] {
			cur = append(cur, ev.id)
		}
	}
	sort.Ints(cur)
	st.cur = cur
	st.pos = 0
}

func (sh *sharded) retire(i int) {
	st := &sh.st[i]
	st.spare = st.cur[:0]
	st.cur = nil
}

// sweepShard is one shard's phase-1 sweep on a worker goroutine: tick
// due components ascending, publishing wavefront progress at cut
// routers and spinning on lower-id cut peers.
func (sh *sharded) sweepShard(s int) {
	sh.collect(s + 1)
	st := &sh.st[s+1]
	fac := sh.facades[s+1]
	prog := &sh.progs[s].v
	prev := -1
	for _, id := range st.cur {
		if id == prev { // dedupe (event + activation overlap)
			continue
		}
		prev = id
		if sh.mark[id] {
			prog.Store(int64(id))
			for _, cw := range sh.waits[id] {
				p := &sh.progs[cw.Shard].v
				for spins := 0; p.Load() <= int64(cw.Kid); spins++ {
					if spins > 200 {
						runtime.Gosched()
					}
				}
			}
		}
		st.ticks++
		if sh.comps[id].Tick(sh.now) {
			fac.Activate(id)
		}
	}
	prog.Store(math.MaxInt64)
	sh.retire(s + 1)
}

// windowInline executes one window's phase 1 on the calling goroutine
// by merge-walking the shard schedules in ascending id order — exactly
// the sequential tick order, so no wavefront machinery is needed.
// Effects still stage through the facades, keeping the schedule
// identical to the parallel path.
func (sh *sharded) windowInline() {
	for i := 1; i <= sh.n; i++ {
		sh.collect(i)
	}
	sh.inPhase1 = true
	prev := -1
	for {
		best := -1
		for i := 1; i <= sh.n; i++ {
			st := &sh.st[i]
			if st.pos < len(st.cur) &&
				(best < 0 || st.cur[st.pos] < sh.st[best].cur[sh.st[best].pos]) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		st := &sh.st[best]
		id := st.cur[st.pos]
		st.pos++
		if id == prev {
			continue
		}
		prev = id
		st.ticks++
		if sh.comps[id].Tick(sh.now) {
			sh.facades[best].Activate(id)
		}
	}
	for i := 1; i <= sh.n; i++ {
		sh.retire(i)
	}
	sh.inPhase1 = false
	sh.windowTail()
}

// windowTail is phase 2, always on the driving goroutine.
func (sh *sharded) windowTail() {
	// Snapshot root's due set before anything staged applies: an
	// activation staged or delivered during this window targets the next
	// cycle, exactly as in the sequential kernel.
	sh.collect(0)
	// Staged cross-shard activations, in shard order. Content matches
	// the sequential schedule; within-cycle append order is irrelevant
	// because collect sorts.
	for i := 1; i <= sh.n; i++ {
		st := &sh.st[i]
		for _, id := range st.xact {
			if !sh.pending[id] {
				sh.pending[id] = true
				home := &sh.st[sh.shardOf[id]+1]
				home.next = append(home.next, id)
			}
		}
		st.xact = st.xact[:0]
	}
	if sh.onWindow != nil {
		sh.onWindow(sh.now)
	}
	st := &sh.st[0]
	root := sh.facades[0]
	prev := -1
	for _, id := range st.cur {
		if id == prev {
			continue
		}
		prev = id
		st.ticks++
		if sh.comps[id].Tick(sh.now) {
			root.Activate(id)
		}
	}
	sh.retire(0)
	// End-of-cycle commits after every tick of the cycle, as in the
	// sequential kernel: shard-staged increments (recorded in phase 1)
	// first, root's last. Increment order across shards is immaterial —
	// they commute — and Defer ordering follows the same rule.
	for i := 1; i <= sh.n; i++ {
		sh.applyEnd(i)
	}
	sh.applyEnd(0)
}

func (sh *sharded) applyEnd(i int) {
	st := &sh.st[i]
	if len(st.incrs) > 0 {
		for _, ctr := range st.incrs {
			(*ctr)++
		}
		st.incrs = st.incrs[:0]
	}
	if len(st.defers) > 0 {
		for _, f := range st.defers {
			f()
		}
		st.defers = st.defers[:0]
	}
}

func (sh *sharded) step() bool {
	t, ok := sh.nextTime()
	if !ok {
		return false
	}
	sh.now = t
	sh.windowInline()
	return true
}

func (sh *sharded) run(maxCycles int64) (cycles int64, idle bool) {
	start := sh.now
	limit := start + maxCycles
	if sh.parallel && sh.n > 1 {
		sh.startWorkers()
		defer sh.stopWorkers()
		for sh.now < limit {
			t, ok := sh.nextTime()
			if !ok {
				return sh.now - start, true
			}
			sh.now = t
			for i := range sh.progs {
				sh.progs[i].v.Store(-1)
			}
			sh.inPhase1 = true
			sh.startB.wait() // release the workers into this window
			sh.sweepShard(0) // the driving goroutine is shard 0's worker
			sh.endB.wait()   // all sweeps complete
			sh.inPhase1 = false
			sh.windowTail()
		}
		return sh.now - start, false
	}
	for sh.now < limit {
		if !sh.step() {
			return sh.now - start, true
		}
	}
	return sh.now - start, false
}

func (sh *sharded) startWorkers() {
	if sh.started {
		return
	}
	sh.started = true
	sh.stop = false
	sh.startB.parties = int32(sh.n)
	sh.endB.parties = int32(sh.n)
	for s := 1; s < sh.n; s++ {
		sh.workers.Add(1)
		go func(s int) {
			defer sh.workers.Done()
			for {
				sh.startB.wait()
				if sh.stop {
					return
				}
				sh.sweepShard(s)
				sh.endB.wait()
			}
		}(s)
	}
}

func (sh *sharded) stopWorkers() {
	if !sh.started {
		return
	}
	sh.stop = true
	sh.startB.wait() // wake the workers; they observe stop and exit
	sh.workers.Wait()
	sh.started = false
}

package bank

import (
	"testing"
	"testing/quick"
)

func TestSpecSets(t *testing.T) {
	cases := []struct {
		spec Spec
		want int
	}{
		{Spec{64, 1}, 1024},
		{Spec{128, 2}, 1024},
		{Spec{256, 4}, 1024},
		{Spec{512, 8}, 1024},
		{Spec{256, 1}, 4096},
	}
	for _, c := range cases {
		if got := c.spec.Sets(); got != c.want {
			t.Errorf("%v.Sets() = %d, want %d", c.spec, got, c.want)
		}
	}
}

func TestLatencyTable1(t *testing.T) {
	cases := []struct {
		kb   int
		want Latency
	}{
		{64, Latency{1, 2, 3}},
		{128, Latency{2, 4, 4}},
		{256, Latency{2, 4, 5}},
		{512, Latency{3, 5, 6}},
	}
	for _, c := range cases {
		if got := LatencyFor(c.kb); got != c.want {
			t.Errorf("LatencyFor(%d) = %+v, want %+v", c.kb, got, c.want)
		}
	}
}

func TestLatencyForUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LatencyFor(96)
}

func TestInsertLookupTouch(t *testing.T) {
	b := New(Spec{512, 8})
	for i := 0; i < 8; i++ {
		b.Insert(3, Block{Tag: uint64(100 + i)})
	}
	// Insert order 100..107; each insert is MRU, so order is 107..100.
	blocks := b.Blocks(3)
	for i, blk := range blocks {
		if blk.Tag != uint64(107-i) {
			t.Fatalf("pos %d tag = %d, want %d", i, blk.Tag, 107-i)
		}
	}
	way, ok := b.Lookup(3, 103)
	if !ok || way != 4 {
		t.Fatalf("Lookup(103) = %d,%v, want 4,true", way, ok)
	}
	b.Touch(3, way)
	if got := b.Blocks(3)[0].Tag; got != 103 {
		t.Fatalf("after Touch MRU tag = %d, want 103", got)
	}
	if _, ok := b.Lookup(3, 999); ok {
		t.Fatal("phantom hit")
	}
}

func TestEvictLRU(t *testing.T) {
	b := New(Spec{128, 2})
	b.Insert(0, Block{Tag: 1})
	b.Insert(0, Block{Tag: 2})
	blk, ok := b.EvictLRU(0)
	if !ok || blk.Tag != 1 {
		t.Fatalf("EvictLRU = %v,%v, want tag 1", blk, ok)
	}
	if b.Occupancy(0) != 1 {
		t.Fatalf("occupancy = %d, want 1", b.Occupancy(0))
	}
	if _, ok := b.EvictLRU(0); !ok {
		t.Fatal("second evict should succeed")
	}
	if _, ok := b.EvictLRU(0); ok {
		t.Fatal("evict from empty set should report !ok")
	}
}

func TestInsertFullPanics(t *testing.T) {
	b := New(Spec{64, 1})
	b.Insert(5, Block{Tag: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("insert into full set must panic")
		}
	}()
	b.Insert(5, Block{Tag: 2})
}

func TestInsertLRUOrdering(t *testing.T) {
	b := New(Spec{256, 4})
	b.Insert(0, Block{Tag: 10})
	b.InsertLRU(0, Block{Tag: 20})
	got := b.Blocks(0)
	if got[0].Tag != 10 || got[1].Tag != 20 {
		t.Fatalf("order = %v, want [10 20]", got)
	}
}

func TestRemoveMiddle(t *testing.T) {
	b := New(Spec{256, 4})
	for _, tag := range []uint64{1, 2, 3, 4} {
		b.Insert(0, Block{Tag: tag})
	}
	// Order: 4 3 2 1. Remove way 1 (tag 3).
	blk := b.Remove(0, 1)
	if blk.Tag != 3 {
		t.Fatalf("removed tag %d, want 3", blk.Tag)
	}
	got := b.Blocks(0)
	want := []uint64{4, 2, 1}
	for i := range want {
		if got[i].Tag != want[i] {
			t.Fatalf("after remove: %v", got)
		}
	}
}

func TestSetDirty(t *testing.T) {
	b := New(Spec{64, 1})
	b.Insert(0, Block{Tag: 7})
	b.SetDirty(0, 0)
	if !b.Blocks(0)[0].Dirty {
		t.Fatal("block should be dirty")
	}
}

func TestSetsIsolated(t *testing.T) {
	b := New(Spec{64, 1})
	b.Insert(1, Block{Tag: 11})
	b.Insert(2, Block{Tag: 22})
	if _, ok := b.Lookup(1, 22); ok {
		t.Fatal("cross-set hit")
	}
	if w, ok := b.Lookup(2, 22); !ok || w != 0 {
		t.Fatal("missing hit in own set")
	}
}

// Property: under any sequence of insert/evict, a set never exceeds its
// ways, never holds duplicate tags, and evictions return the oldest
// non-touched block.
func TestBankInvariantsProperty(t *testing.T) {
	if err := quick.Check(func(ops []byte, seed uint16) bool {
		b := New(Spec{256, 4})
		next := uint64(1)
		resident := map[uint64]bool{}
		for _, op := range ops {
			switch op % 3 {
			case 0: // insert (evict first if full)
				if b.Occupancy(0) == 4 {
					blk, _ := b.EvictLRU(0)
					delete(resident, blk.Tag)
				}
				b.Insert(0, Block{Tag: next})
				resident[next] = true
				next++
			case 1: // evict
				if blk, ok := b.EvictLRU(0); ok {
					if !resident[blk.Tag] {
						return false
					}
					delete(resident, blk.Tag)
				}
			case 2: // touch a random resident way
				if occ := b.Occupancy(0); occ > 0 {
					b.Touch(0, int(seed)%occ)
				}
			}
			if b.Occupancy(0) > 4 {
				return false
			}
			seen := map[uint64]bool{}
			for _, blk := range b.Blocks(0) {
				if seen[blk.Tag] || !resident[blk.Tag] {
					return false
				}
				seen[blk.Tag] = true
			}
			if len(seen) != len(resident) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestProbeStoreCounters(t *testing.T) {
	b := New(Spec{64, 1})
	b.Insert(0, Block{Tag: 1})
	b.Lookup(0, 1)
	b.Lookup(0, 2)
	if b.Probes != 2 || b.Stores != 1 {
		t.Fatalf("probes=%d stores=%d, want 2/1", b.Probes, b.Stores)
	}
}

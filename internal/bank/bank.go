// Package bank models one cache bank of the networked L2: a set-indexed
// array of block frames with LRU ordering inside each set, plus the
// Table 1 access latencies and wire delays by bank capacity.
//
// Banks hold state only; timing (busy intervals, queuing) is orchestrated
// by the protocol agents in the cache package. In uniform designs every
// bank is 64 KB direct-mapped; non-uniform designs (D, F) grow capacity
// and associativity with distance from the core, keeping 1024 sets per
// bank so a bank set always stacks into a 16-way set.
package bank

import (
	"fmt"

	"nucanet/internal/slab"
)

// Arena carves bank construction state — the frame slab and the set
// headers, a lane's two largest construction allocations — from
// recyclable chunks (see internal/slab). A nil *Arena falls back to
// plain allocation. Single-goroutine, like every slab arena; batch
// construction reaches it through router.Arena.Banks.
type Arena struct {
	blocks slab.Chunk[Block]
	sets   slab.Chunk[frameSet]
}

// Reset recycles the arena's memory; see slab.Chunk.Reset for the
// aliasing contract.
func (a *Arena) Reset() {
	a.blocks.Reset()
	a.sets.Reset()
}

func (a *Arena) blockSlab(n int) []Block {
	if a == nil {
		return make([]Block, n)
	}
	return slab.Grab(&a.blocks, n)
}

func (a *Arena) setSlab(n int) []frameSet {
	if a == nil {
		return make([]frameSet, n)
	}
	return slab.Grab(&a.sets, n)
}

// BlockBytes is the cache block size (Table 1).
const BlockBytes = 64

// Spec sizes one bank.
type Spec struct {
	SizeKB int
	Ways   int
}

// Sets returns the number of sets in the bank.
func (s Spec) Sets() int { return s.SizeKB * 1024 / BlockBytes / s.Ways }

func (s Spec) String() string { return fmt.Sprintf("%dKB/%d-way", s.SizeKB, s.Ways) }

// Latency bundles the Table 1 timing of one bank size.
type Latency struct {
	Wire    int // link wire delay across this bank's tile (cycles)
	TagOnly int // tag-matching only
	TagRepl int // tag-matching + replacement (one combined access)
}

// LatencyFor returns the Table 1 latencies for a bank capacity.
func LatencyFor(sizeKB int) Latency {
	switch sizeKB {
	case 64:
		return Latency{Wire: 1, TagOnly: 2, TagRepl: 3}
	case 128:
		return Latency{Wire: 2, TagOnly: 4, TagRepl: 4}
	case 256:
		return Latency{Wire: 2, TagOnly: 4, TagRepl: 5}
	case 512:
		return Latency{Wire: 3, TagOnly: 5, TagRepl: 6}
	}
	panic(fmt.Sprintf("bank: no Table 1 latency for %d KB", sizeKB))
}

// Block is one resident cache block.
type Block struct {
	Tag   uint64
	Dirty bool
}

// frameSet holds the blocks of one set in MRU-to-LRU order.
type frameSet struct {
	blocks []Block // len <= ways; index 0 = MRU within this bank
}

// Bank is the mutable state of one cache bank.
type Bank struct {
	spec Spec
	lat  Latency
	sets []frameSet
	slab []Block // backing store of every set's frames (see New)

	// Counters for experiment reporting.
	Probes uint64 // tag-match accesses
	Stores uint64 // block installs
}

// New allocates an empty bank.
func New(spec Spec) *Bank {
	return NewIn(spec, nil)
}

// NewIn is New with its storage carved from an arena — batch
// construction lays a fleet's bank state contiguously and recycles it
// across construction rounds. A nil arena allocates normally.
func NewIn(spec Spec, ar *Arena) *Bank {
	if spec.SizeKB <= 0 || spec.Ways <= 0 {
		panic(fmt.Sprintf("bank: bad spec %+v", spec))
	}
	b := &Bank{spec: spec, lat: LatencyFor(spec.SizeKB)}
	b.sets = ar.setSlab(spec.Sets())
	// Carve every set's frame storage out of one bank-wide slab. Insert
	// and InsertLRU guarantee len < Ways before appending, so a set's
	// slice never outgrows its full-capacity window and the three-index
	// slicing keeps an overflowing append from bleeding into the next
	// set. This removes the dominant warm-up cost (one allocation per
	// set on first insert — 256 K allocations for a 256-bank design).
	b.slab = ar.blockSlab(len(b.sets) * spec.Ways)
	for i := range b.sets {
		o := i * spec.Ways
		b.sets[i].blocks = b.slab[o : o : o+spec.Ways]
	}
	return b
}

// CloneState copies another bank's full mutable state into this one —
// frames, per-set fill, and counters. Both banks must have the same
// spec. Because every set's slice aliases a fixed window of the slab,
// one slab copy moves every frame and re-slicing restores the fills;
// cloning a warmed template this way replaces the per-block insert
// replay of warm-up with a memcpy (see cache.WarmImage).
func (b *Bank) CloneState(src *Bank) {
	if b.spec != src.spec {
		panic(fmt.Sprintf("bank: clone of %s into %s", src.spec, b.spec))
	}
	copy(b.slab, src.slab)
	for i := range b.sets {
		b.sets[i].blocks = b.sets[i].blocks[:len(src.sets[i].blocks)]
	}
	b.Probes, b.Stores = src.Probes, src.Stores
}

// Spec returns the bank geometry.
func (b *Bank) Spec() Spec { return b.spec }

// Latency returns the bank's Table 1 timings.
func (b *Bank) Latency() Latency { return b.lat }

func (b *Bank) set(idx int) *frameSet {
	if idx < 0 || idx >= len(b.sets) {
		panic(fmt.Sprintf("bank: set %d out of range [0,%d)", idx, len(b.sets)))
	}
	return &b.sets[idx]
}

// Lookup tag-matches a set; it does not touch recency.
func (b *Bank) Lookup(set int, tag uint64) (way int, ok bool) {
	b.Probes++
	fs := b.set(set)
	for i := range fs.blocks {
		if fs.blocks[i].Tag == tag {
			return i, true
		}
	}
	return 0, false
}

// Touch promotes a resident way to MRU within the bank.
func (b *Bank) Touch(set, way int) {
	fs := b.set(set)
	blk := fs.blocks[way]
	copy(fs.blocks[1:way+1], fs.blocks[:way])
	fs.blocks[0] = blk
}

// Remove extracts a resident way.
func (b *Bank) Remove(set, way int) Block {
	fs := b.set(set)
	blk := fs.blocks[way]
	fs.blocks = append(fs.blocks[:way], fs.blocks[way+1:]...)
	return blk
}

// EvictLRU removes and returns the LRU block of the set; ok is false if
// the set is empty.
func (b *Bank) EvictLRU(set int) (Block, bool) {
	fs := b.set(set)
	if len(fs.blocks) == 0 {
		return Block{}, false
	}
	blk := fs.blocks[len(fs.blocks)-1]
	fs.blocks = fs.blocks[:len(fs.blocks)-1]
	return blk, true
}

// Insert installs a block as the MRU of the set. The set must have a free
// frame — replacement protocols always evict first; violating that is a
// protocol bug, so it panics.
func (b *Bank) Insert(set int, blk Block) {
	fs := b.set(set)
	if len(fs.blocks) >= b.spec.Ways {
		panic(fmt.Sprintf("bank: insert into full set %d (%s)", set, b.spec))
	}
	b.Stores++
	fs.blocks = append(fs.blocks, Block{})
	copy(fs.blocks[1:], fs.blocks)
	fs.blocks[0] = blk
}

// InsertLRU installs a block as the LRU of the set (used when a
// replacement chain pushes a block down from a closer bank: the incoming
// block is colder than everything already here under Promotion-style
// ordering; Fast-LRU inserts at MRU instead).
func (b *Bank) InsertLRU(set int, blk Block) {
	fs := b.set(set)
	if len(fs.blocks) >= b.spec.Ways {
		panic(fmt.Sprintf("bank: insertLRU into full set %d (%s)", set, b.spec))
	}
	b.Stores++
	fs.blocks = append(fs.blocks, blk)
}

// SetDirty marks a resident way dirty (a write hit).
func (b *Bank) SetDirty(set, way int) {
	b.set(set).blocks[way].Dirty = true
}

// Occupancy returns how many frames of the set are filled.
func (b *Bank) Occupancy(set int) int { return len(b.set(set).blocks) }

// Blocks returns a copy of the set's blocks in MRU-to-LRU order.
func (b *Bank) Blocks(set int) []Block {
	fs := b.set(set)
	out := make([]Block, len(fs.blocks))
	copy(out, fs.blocks)
	return out
}

// Ways returns the bank associativity.
func (b *Bank) Ways() int { return b.spec.Ways }

// NumSets returns the set count.
func (b *Bank) NumSets() int { return len(b.sets) }

// Command nucaload is the load driver for the nucad service: it fires a
// deterministic request mix at a running daemon from several synthetic
// clients, honors 429/Retry-After backpressure, and reports throughput,
// latency percentiles, and the cache-source split it observed.
//
//	nucad -addr 127.0.0.1:8080 &
//	nucaload -addr http://127.0.0.1:8080 -n 200 -c 8 -unique 20
//
// The mix cycles seeds 0..unique-1, so with n > unique every
// configuration after the first lap is a cache hit — the "millions of
// users asking the same questions" traffic shape the service is built
// for. Every third configuration additionally requests the bufferless
// deflection router, so the mix exercises more than one router engine
// (and more than one content-addressed key per seed lap) on every run.
// -require-hits makes a hitless run a failure (the CI smoke gate).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

func main() {
	var (
		addr        = flag.String("addr", "http://127.0.0.1:8080", "nucad base URL")
		n           = flag.Int("n", 100, "total requests")
		c           = flag.Int("c", 4, "concurrent requesters")
		clients     = flag.Int("clients", 4, "distinct client identities (X-Client header)")
		unique      = flag.Int("unique", 10, "distinct configurations in the mix (seeds 0..unique-1)")
		design      = flag.String("design", "F", "design id for the mix")
		bench       = flag.String("bench", "gcc", "benchmark profile for the mix")
		acc         = flag.Int("accesses", 400, "accesses per run")
		requireHits = flag.Bool("require-hits", false, "exit non-zero unless at least one cache hit was observed")
	)
	flag.Parse()

	l := &loader{
		addr: strings.TrimRight(*addr, "/"),
		http: &http.Client{Timeout: 5 * time.Minute},
	}

	// The request list is deterministic: request i uses seed i%unique
	// under client identity i%clients, and every third seed asks for the
	// bufferless router. Keying the router off the seed (not off i) keeps
	// the distinct-configuration count equal to -unique, so the cache-hit
	// math in the doc comment still holds.
	type job struct{ seed, client int }
	jobs := make(chan job)
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				routerField := ""
				if j.seed%3 == 2 {
					routerField = `,"router":"bufferless"`
				}
				body := fmt.Sprintf(`{"design":%q,"benchmark":%q,"accesses":%d,"seed":%d%s}`,
					*design, *bench, *acc, j.seed, routerField)
				l.do(body, "client-"+strconv.Itoa(j.client))
			}
		}()
	}
	for i := 0; i < *n; i++ {
		jobs <- job{seed: i % *unique, client: i % *clients}
	}
	close(jobs)
	wg.Wait()
	wall := time.Since(t0)

	l.report(os.Stdout, wall)
	if l.errors > 0 {
		fmt.Fprintf(os.Stderr, "nucaload: %d requests failed\n", l.errors)
		os.Exit(1)
	}
	if *requireHits && l.sources["hit"] == 0 {
		fmt.Fprintln(os.Stderr, "nucaload: no cache hits observed (-require-hits)")
		os.Exit(1)
	}
}

type loader struct {
	addr string
	http *http.Client

	mu      sync.Mutex
	lats    []time.Duration
	sources map[string]int // X-Nucad-Cache value -> count
	retried int            // 429s honored via Retry-After
	errors  int
}

// do issues one request, retrying up to 3 times on 429 after the
// server's Retry-After delay (capped at 2s so smoke runs stay brief).
func (l *loader) do(body, client string) {
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest("POST", l.addr+"/v1/run", strings.NewReader(body))
		if err != nil {
			l.fail(err)
			return
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Client", client)
		t0 := time.Now()
		resp, err := l.http.Do(req)
		if err != nil {
			l.fail(err)
			return
		}
		payload, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			l.fail(err)
			return
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < 3 {
			delay := time.Second
			if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
				delay = time.Duration(s) * time.Second
			}
			if delay > 2*time.Second {
				delay = 2 * time.Second
			}
			l.mu.Lock()
			l.retried++
			l.mu.Unlock()
			time.Sleep(delay)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			l.fail(fmt.Errorf("status %d: %s", resp.StatusCode, payload))
			return
		}
		l.mu.Lock()
		l.lats = append(l.lats, time.Since(t0))
		if l.sources == nil {
			l.sources = map[string]int{}
		}
		l.sources[resp.Header.Get("X-Nucad-Cache")]++
		l.mu.Unlock()
		return
	}
}

func (l *loader) fail(err error) {
	l.mu.Lock()
	l.errors++
	l.mu.Unlock()
	fmt.Fprintln(os.Stderr, "nucaload:", err)
}

func (l *loader) report(w io.Writer, wall time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	sort.Slice(l.lats, func(i, j int) bool { return l.lats[i] < l.lats[j] })
	pct := func(q float64) time.Duration {
		if len(l.lats) == 0 {
			return 0
		}
		i := int(float64(len(l.lats)) * q)
		if i >= len(l.lats) {
			i = len(l.lats) - 1
		}
		return l.lats[i]
	}
	ok := len(l.lats)
	fmt.Fprintf(w, "nucaload: %d ok, %d failed, %d retried in %v (%.1f req/s)\n",
		ok, l.errors, l.retried, wall.Round(time.Millisecond), float64(ok)/wall.Seconds())
	fmt.Fprintf(w, "  latency p50 %v  p90 %v  p99 %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond), pct(0.99).Round(time.Microsecond))
	fmt.Fprintf(w, "  cache: hit %d, miss %d, coalesced %d\n",
		l.sources["hit"], l.sources["miss"], l.sources["coalesced"])

	// The server-side view, for the smoke log.
	if resp, err := l.http.Get(l.addr + "/v1/stats"); err == nil {
		defer resp.Body.Close()
		var st struct {
			Served uint64 `json:"served"`
			Cache  struct {
				Hits   uint64 `json:"hits"`
				Misses uint64 `json:"misses"`
				Size   int    `json:"size"`
			} `json:"cache"`
		}
		if json.NewDecoder(resp.Body).Decode(&st) == nil {
			fmt.Fprintf(w, "  server: served %d, cache %d hits / %d misses, %d entries\n",
				st.Served, st.Cache.Hits, st.Cache.Misses, st.Cache.Size)
		}
	}
}

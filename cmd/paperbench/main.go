// Command paperbench regenerates every table and figure of the paper's
// evaluation section (Section 5-6) and prints the same rows/series.
//
// Usage:
//
//	paperbench -exp all          # everything (several minutes)
//	paperbench -exp f9 -n 4000   # one experiment, smaller runs
//	paperbench -exp f9 -j 8      # fan the sweep out to 8 workers
//
// Experiments: t1 t2 t3 t4 f7 f8 f9 headline all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nucanet/internal/bank"
	"nucanet/internal/config"
	"nucanet/internal/core"
	"nucanet/internal/mem"
)

func main() {
	var (
		exp  = flag.String("exp", "all", "experiment: t1 t2 t3 t4 f7 f8 f9 headline all")
		n    = flag.Int("n", 8000, "measured L2 accesses per run")
		seed = flag.Uint64("seed", 42, "random seed")
		jobs = flag.Int("j", 0, "parallel runs per sweep (0 = one per core, 1 = sequential)")
	)
	flag.Parse()
	cfg := core.ExpConfig{Accesses: *n, Seed: *seed, Workers: *jobs}

	run := map[string]func(core.ExpConfig){
		"t1": func(core.ExpConfig) { table1() },
		"t2": func(c core.ExpConfig) { table2(c) },
		"t3": func(core.ExpConfig) { table3() },
		"t4": func(core.ExpConfig) { table4() },
		"f7": fig7, "f8": fig8, "f9": fig9,
		"headline": headline,
		"energy":   energyExp,
		"power":    powerExp,
	}
	order := []string{"t1", "t2", "t3", "t4", "f7", "f8", "f9", "headline", "energy", "power"}

	if *exp == "all" {
		for _, e := range order {
			run[e](cfg)
		}
		return
	}
	f, ok := run[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "paperbench: unknown experiment %q (want %s or all)\n",
			*exp, strings.Join(order, " "))
		os.Exit(1)
	}
	f(cfg)
}

func header(s string) {
	fmt.Printf("\n=== %s ===\n", s)
}

func table1() {
	header("Table 1: system parameters")
	fmt.Println("memory: block 64B; latency 130 cycles + 4 cycles per 8B (pipelined)")
	fmt.Println("router: 4-flit buffers, 4 VCs per PC, 128-bit flits, 1 cycle per stage")
	fmt.Println("bank size    wire delay   tag only   tag+replacement")
	for _, kb := range []int{64, 128, 256, 512} {
		l := bank.LatencyFor(kb)
		fmt.Printf("  %4d KB     %d cycle(s)   %d cycles   %d cycles\n",
			kb, l.Wire, l.TagOnly, l.TagRepl)
	}
	c := mem.DefaultConfig()
	fmt.Printf("derived: 64B block read = %d cycles at the pins\n", c.ReadLatency())
}

func table2(cfg core.ExpConfig) {
	header("Table 2: benchmarks (profile vs generator self-check)")
	fmt.Println("name     instr   perfIPC  reads(M) writes(M)  acc/instr | gen acc/instr  gen wr%   gen hit% (16-way LRU)")
	for _, row := range core.Table2Check(40000, cfg.Seed) {
		p := row.Profile
		fmt.Printf("%-8s %5.2gB  %5.2f   %8.3f %8.3f   %8.3f | %12.4f  %6.1f%%  %6.1f%%\n",
			p.Name, float64(p.InstrTotal)/1e9, p.PerfectIPC, p.ReadsM, p.WritesM,
			p.AccPerInstr, row.GenAccPerInst, 100*row.GenWriteFrac, 100*row.GenHitRate16)
	}
}

func table3() {
	header("Table 3: network designs")
	for _, d := range config.Designs() {
		fmt.Printf("  %s: %-55s banks/column: %v\n", d.ID, d.Description, d.Banks)
	}
}

func table4() {
	header("Table 4: area analysis (cacti-lite model)")
	fmt.Println("design   bank%   router%   link%     L2 mm2    chip mm2")
	for _, r := range core.Table4() {
		fmt.Printf("  %s     %5.1f     %5.1f   %5.1f   %8.2f   %9.2f\n",
			r.DesignID, r.BankPct(), r.RouterPct(), r.LinkPct(), r.L2MM2(), r.ChipMM2)
	}
	fmt.Println("paper:  A 47.8/20.8/31.4 567.70/567.70 | B 58.4/13.0/28.6 464.60/521.99")
	fmt.Println("        E 67.5/14.1/18.4 402.30/1602.22 | F 78.7/5.7/15.7 312.19/517.61")
}

func fig7(cfg core.ExpConfig) {
	header("Figure 7: L2 access latency split, unicast LRU, Design A")
	rows, rep, err := core.Fig7(cfg)
	fatal(err)
	fmt.Println("benchmark   bank%   network%   memory%")
	var b, nw, m float64
	for _, r := range rows {
		fmt.Printf("  %-9s %5.1f      %5.1f     %5.1f\n", r.Benchmark, r.BankPct, r.NetPct, r.MemPct)
		b += r.BankPct
		nw += r.NetPct
		m += r.MemPct
	}
	k := float64(len(rows))
	fmt.Printf("  %-9s %5.1f      %5.1f     %5.1f   (paper avg: 25 / 65 / 10)\n",
		"avg", b/k, nw/k, m/k)
	sweepLine(rep)
}

func fig8(cfg core.ExpConfig) {
	header("Figure 8: access latency by scheme, Design A")
	cells, rep, err := core.Fig8(cfg)
	fatal(err)
	fmt.Println("(a) average / (b) hit / (c) miss latency in cycles; IPC")
	fmt.Printf("%-9s", "benchmark")
	for _, s := range core.Fig8Schemes() {
		fmt.Printf(" | %-19s", s.Name)
	}
	fmt.Println()
	byBench := map[string][]core.Fig8Cell{}
	var names []string
	for _, c := range cells {
		if len(byBench[c.Benchmark]) == 0 {
			names = append(names, c.Benchmark)
		}
		byBench[c.Benchmark] = append(byBench[c.Benchmark], c)
	}
	for _, b := range names {
		fmt.Printf("%-9s", b)
		for _, c := range byBench[b] {
			fmt.Printf(" | %5.1f %5.1f %6.1f", c.AvgLat, c.HitLat, c.MissLat)
		}
		fmt.Println()
	}
	// Summary ratios the paper quotes. Two readings: the CPU-visible
	// access latency (request -> data) and the column occupancy
	// (request -> replacement complete); the paper's hop-count examples
	// (Fig. 2: 21 vs 12 hops) count the full occupancy, which is where
	// Fast-LRU's structural win lives at any load level.
	avgOf := func(scheme string, occ bool) float64 {
		var s float64
		for _, cs := range byBench {
			for _, c := range cs {
				if c.Scheme == scheme {
					if occ {
						s += c.OccLat
					} else {
						s += c.AvgLat
					}
				}
			}
		}
		return s / float64(len(byBench))
	}
	uLRU, uFast := avgOf("unicast+LRU", false), avgOf("unicast+fastLRU", false)
	mPromo, mFast := avgOf("multicast+promotion", false), avgOf("multicast+fastLRU", false)
	uLRUo, uFasto := avgOf("unicast+LRU", true), avgOf("unicast+fastLRU", true)
	mFasto := avgOf("multicast+fastLRU", true)
	fmt.Printf("\naccess latency (request->data):\n")
	fmt.Printf("  multicast fastLRU vs unicast LRU:       %+.1f%%\n", 100*(mFast-uLRU)/uLRU)
	fmt.Printf("  multicast fastLRU vs multicast promo:   %+.1f%%\n", 100*(mFast-mPromo)/mPromo)
	fmt.Printf("  unicast fastLRU vs unicast LRU:         %+.1f%%\n", 100*(uFast-uLRU)/uLRU)
	fmt.Printf("column occupancy (request->replacement done; the paper's hop metric):\n")
	fmt.Printf("  multicast fastLRU vs unicast LRU:       %+.1f%% (paper -46%%)\n", 100*(mFasto-uLRUo)/uLRUo)
	fmt.Printf("  unicast fastLRU vs unicast LRU:         %+.1f%% (paper -30%%)\n",
		100*(uFasto-uLRUo)/uLRUo)
	sweepLine(rep)
}

func fig9(cfg core.ExpConfig) {
	header("Figure 9: normalized IPC by design, multicast Fast-LRU")
	cells, rep, err := core.Fig9(cfg)
	fatal(err)
	fmt.Printf("%-9s", "benchmark")
	for _, d := range config.Designs() {
		fmt.Printf("   %s  ", d.ID)
	}
	fmt.Println()
	sums := map[string]float64{}
	count := 0
	var cur string
	for _, c := range cells {
		if c.Benchmark != cur {
			if cur != "" {
				fmt.Println()
			}
			fmt.Printf("%-9s", c.Benchmark)
			cur = c.Benchmark
			count++
		}
		fmt.Printf(" %5.3f", c.NormalizedIPC)
		sums[c.DesignID] += c.NormalizedIPC
	}
	fmt.Println()
	fmt.Printf("%-9s", "avg")
	for _, d := range config.Designs() {
		fmt.Printf(" %5.3f", sums[d.ID]/float64(count))
	}
	fmt.Println("\n(paper avgs: A 1.00, B ~1.00, C 0.86, D 0.88, E 1.12, F 1.13)")
	sweepLine(rep)
}

func headline(cfg core.ExpConfig) {
	header("Headline claims (abstract)")
	h, rep, err := core.ComputeHeadline(cfg)
	fatal(err)
	fmt.Printf("halo+fastLRU IPC vs mesh+multicast-promotion: %+.1f%%  (paper +38%%)\n",
		100*(h.IPCGainVsMeshPromotion-1))
	fmt.Printf("multicast fastLRU IPC vs multicast promotion: %+.1f%%  (paper +20%%)\n",
		100*(h.FastLRUIPCGain-1))
	fmt.Printf("halo (F) IPC vs mesh (A), same policy:        %+.1f%%  (paper +18%%/+13%%)\n",
		100*(h.HaloIPCGain-1))
	fmt.Printf("interconnect area, F as a share of A:          %.1f%%  (paper 23%%)\n",
		100*h.InterconnectAreaRatio)
	sweepLine(rep)
}

func energyExp(cfg core.ExpConfig) {
	header("Energy comparison (extension: the paper's stated future work)")
	cells, rep, err := core.EnergyComparison(cfg, "gcc")
	fatal(err)
	fmt.Println("design    nJ/access   network%   banks%   memory%     IPC   (gcc, multicast Fast-LRU)")
	for _, c := range cells {
		r := c.Report
		fmt.Printf("  %s       %7.2f      %5.1f    %5.1f     %5.1f   %5.3f\n",
			c.DesignID, r.PerAccessNJ(), 100*r.NetworkShare(),
			100*r.BankPJ/r.TotalPJ(), 100*r.MemoryPJ/r.TotalPJ(), c.IPC)
	}
	sweepLine(rep)
}

func powerExp(cfg core.ExpConfig) {
	header("Power-gating sweep (extension: the paper's on-demand power control)")
	cells, rep, err := core.PowerGatingSweep(cfg, "gcc")
	fatal(err)
	fmt.Println("ways on   capacity   hit rate     IPC   nJ/access   (gcc, Design A columns gated from the far end)")
	for _, c := range cells {
		fmt.Printf("   %2d      %5d KB    %5.1f%%   %5.3f     %7.2f\n",
			c.WaysOn, c.CapacityKB, 100*c.HitRate, c.IPC, c.Energy.PerAccessNJ())
	}
	sweepLine(rep)
}

// sweepLine reports the engine's accounting for one sweep: total wall
// time, summed per-run work, and the realized parallel speedup.
func sweepLine(rep core.SweepReport) {
	fmt.Printf("[%d runs, j=%d: wall %.1fs, work %.1fs, speedup %.1fx]\n",
		rep.Runs, rep.Workers, rep.Wall.Seconds(), rep.Work.Seconds(), rep.Speedup())
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
}
